package activerouting

import (
	"context"
	"testing"
)

func TestPublicRunAPI(t *testing.T) {
	res, err := Run(SchemeARFtid, "mac", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("empty results: %+v", res)
	}
	if res.Scheme != SchemeARFtid || res.Workload != "mac" {
		t.Fatalf("identity fields wrong: %s/%s", res.Scheme, res.Workload)
	}
}

func TestPublicSchemeList(t *testing.T) {
	ss := Schemes()
	if len(ss) != 5 {
		t.Fatalf("headline schemes = %d, want 5", len(ss))
	}
	if ss[0] != SchemeDRAM || ss[4] != SchemeARFaddr {
		t.Fatalf("scheme order changed: %v", ss)
	}
	names := map[string]bool{}
	for _, s := range append(ss, SchemeARFtidAdaptive, SchemeARFea) {
		if names[s.String()] {
			t.Fatalf("duplicate scheme name %s", s)
		}
		names[s.String()] = true
	}
}

func TestPublicWorkloadLists(t *testing.T) {
	if len(Benchmarks()) != 5 || len(Microbenchmarks()) != 4 {
		t.Fatalf("suite sizes: %d benchmarks, %d micro", len(Benchmarks()), len(Microbenchmarks()))
	}
	for _, wl := range append(Benchmarks(), Microbenchmarks()...) {
		cfg := DefaultConfig(SchemeHMC)
		if _, err := NewSystem(cfg, wl, ScaleTiny); err != nil {
			t.Fatalf("NewSystem(%s): %v", wl, err)
		}
	}
}

func TestPublicSuiteAPI(t *testing.T) {
	s, err := RunSuite(ScaleTiny, []string{"reduce"}, Schemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 5 {
		t.Fatalf("suite ran %d of 5", len(s.Results))
	}
	base := s.Get("reduce", SchemeDRAM)
	if base.Cycles == 0 {
		t.Fatal("empty baseline run")
	}
}

func TestPublicUnknownWorkload(t *testing.T) {
	if _, err := Run(SchemeHMC, "not-a-workload", ScaleTiny); err == nil {
		t.Fatal("expected error")
	}
}

func TestDefaultConfigIsRunnable(t *testing.T) {
	for _, s := range []Scheme{SchemeDRAM, SchemeARFea} {
		cfg := DefaultConfig(s)
		if cfg.Threads != 16 || cfg.MaxCycles == 0 {
			t.Fatalf("default config implausible: %+v", cfg)
		}
	}
}

func TestPublicSweepAPI(t *testing.T) {
	g, err := SweepStudy("flowtable", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to one axis value for test time; the full grids run in CI's
	// arsweep smoke step.
	g.Axes[0].Values = g.Axes[0].Values[:1]
	res, err := RunSweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2 (one per scheme)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Cycles == 0 || p.ConfigHash == "" {
			t.Fatalf("empty point record: %+v", p)
		}
	}
	if len(SweepStudies()) < 2 {
		t.Fatalf("studies = %v", SweepStudies())
	}
	if _, err := SweepStudy("nope", ScaleTiny); err == nil {
		t.Fatal("unknown study accepted")
	}
}

func TestPublicParseScale(t *testing.T) {
	for name, want := range map[string]Scale{"tiny": ScaleTiny, "Small": ScaleSmall, "MEDIUM": ScaleMedium} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}
