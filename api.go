// Package activerouting is the public API of the Active-Routing
// reproduction: a full-system simulator of the HPCA 2019 / TAMU-thesis
// system "Active-Routing: Compute on the Way for Near-Data Processing".
//
// The library simulates a 16-core out-of-order CMP with a MESI cache
// hierarchy over either a DDR memory system (the DRAM baseline) or a
// 16-cube HMC dragonfly memory network whose logic layers host
// Active-Routing Engines: in-network compute units that build dynamic
// per-flow reduction trees, perform near-data processing at operand split
// points, and aggregate partial results along the tree (the paper's three-
// phase Update/Gather processing).
//
// Quick start:
//
//	res, err := activerouting.Run(activerouting.SchemeARFtid, "mac",
//		activerouting.ScaleTiny)
//	if err != nil { ... }
//	fmt.Printf("cycles=%d speedup-relevant IPC=%.2f\n", res.Cycles, res.IPC)
//
// Every run is functionally verified: reductions computed in the network
// must match a host-computed reference before results are returned.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package activerouting

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// Scheme selects the machine configuration (§5.1 of the thesis).
type Scheme = system.Scheme

// The evaluated schemes.
const (
	// SchemeDRAM is the DDR baseline: the whole program runs on the host.
	SchemeDRAM = system.SchemeDRAM
	// SchemeHMC swaps in the HMC dragonfly memory network, no offloading.
	SchemeHMC = system.SchemeHMC
	// SchemeART enables Active-Routing with one static tree per flow.
	SchemeART = system.SchemeART
	// SchemeARFtid builds a forest of trees interleaved by thread id.
	SchemeARFtid = system.SchemeARFtid
	// SchemeARFaddr builds the forest by operand address.
	SchemeARFaddr = system.SchemeARFaddr
	// SchemeARFtidAdaptive adds the §5.4 dynamic offloading knob.
	SchemeARFtidAdaptive = system.SchemeARFtidAdaptive
	// SchemeARFea is the §6 energy-aware scheduling extension.
	SchemeARFea = system.SchemeARFea
)

// Schemes returns the five headline configurations in figure order.
func Schemes() []Scheme { return system.Schemes() }

// Scale selects input sizing (inputs are proportionally scaled from the
// thesis's native sizes so runs finish in seconds; see DESIGN.md).
type Scale = workload.Scale

// Input scales.
const (
	ScaleTiny   = workload.ScaleTiny
	ScaleSmall  = workload.ScaleSmall
	ScaleMedium = workload.ScaleMedium
)

// ParseScale parses a CLI scale name ("tiny", "small", "medium").
func ParseScale(s string) (Scale, error) { return workload.ParseScale(s) }

// Config is the full machine configuration (Table 4.1).
type Config = system.Config

// DefaultConfig returns the evaluation machine for a scheme.
func DefaultConfig(s Scheme) Config { return system.DefaultConfig(s) }

// KernelAuto, assigned to Config.Shards or Config.Workers, resolves the
// simulation kernel and its worker-pool size from topology and host
// occupancy at build time (system.ResolveKernel). Results are bit-identical
// for every kernel choice.
const KernelAuto = system.KernelAuto

// ParseKernel parses a -shards / -workers style flag value: "auto" selects
// KernelAuto, anything else must be a non-negative integer.
func ParseKernel(s string) (int, error) { return system.ParseKernel(s) }

// Results carries a run's measurements: cycles, IPC, the Fig 5.2 latency
// breakdown, Fig 5.3 heatmaps, Fig 5.4 data movement, and the Fig 5.5-5.7
// energy model outputs.
type Results = system.Results

// System is one assembled machine bound to one workload instance.
type System = system.System

// NewSystem builds a machine for cfg running the named workload.
func NewSystem(cfg Config, workloadName string, scale Scale) (*System, error) {
	return system.New(cfg, workloadName, scale)
}

// Run builds and runs one (scheme, workload) pair with default
// configuration, verifying the final memory state.
func Run(s Scheme, workloadName string, scale Scale) (*Results, error) {
	sys, err := system.New(system.DefaultConfig(s), workloadName, scale)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// Benchmarks lists the thesis benchmark suite (Fig 5.1a order).
func Benchmarks() []string { return workload.Benchmarks() }

// Microbenchmarks lists the microbenchmark suite (Fig 5.1b order).
func Microbenchmarks() []string { return workload.Microbenchmarks() }

// Workload is the benchmark interface for user-defined workloads; use
// NewSystemWith to run one.
type Workload = workload.Workload

// NewSystemWith builds a machine around a custom workload implementation.
func NewSystemWith(cfg Config, wl Workload) (*System, error) {
	return system.NewWith(cfg, wl)
}

// Suite is a workload × scheme cross product of runs; the experiment
// figures derive from it.
type Suite = experiments.Suite

// RunSuite executes every (workload, scheme) pair in parallel.
func RunSuite(scale Scale, workloads []string, schemes []Scheme) (*Suite, error) {
	return experiments.RunSuite(scale, workloads, schemes, nil)
}

// RunSuiteCtx is RunSuite with cancellation: the first failing run (or a
// cancelled ctx) aborts the suite promptly — queued runs never start.
func RunSuiteCtx(ctx context.Context, scale Scale, workloads []string, schemes []Scheme) (*Suite, error) {
	return experiments.RunSuiteCtx(ctx, scale, workloads, schemes, nil)
}

// Sweep types: a declarative configuration grid (axes of Config mutations ×
// workloads × schemes) executed on a bounded, cancellable worker pool. See
// cmd/arsweep for the CLI and EXPERIMENTS.md for the built-in studies.
type (
	SweepGrid   = sweep.Grid
	SweepAxis   = sweep.Axis
	SweepPoint  = sweep.Point
	SweepResult = sweep.Result
)

// RunSweep expands and executes a configuration sweep grid. Points run in
// deterministic grid order with fail-fast cancellation; each point's cycle
// count is bit-identical to a direct NewSystem+Run with the same mutated
// config.
func RunSweep(ctx context.Context, g SweepGrid) (*SweepResult, error) {
	return sweep.Run(ctx, g)
}

// SweepStudies lists the built-in study names accepted by SweepStudy.
func SweepStudies() []string { return sweep.StudyNames() }

// SweepStudy resolves a built-in study (e.g. "flowtable", "linkbw") to its
// grid at the given scale.
func SweepStudy(name string, scale Scale) (SweepGrid, error) {
	return sweep.StudyGrid(name, scale)
}

// AllSchemes returns every evaluated configuration, including the §5.4
// adaptive case study and the §6 energy-aware extension.
func AllSchemes() []Scheme { return system.AllSchemes() }

// ParseScheme parses a scheme by its figure label ("DRAM", "ARF-tid", ...),
// the inverse of Scheme.String.
func ParseScheme(name string) (Scheme, error) { return system.ParseScheme(name) }

// Service types: the simulation-as-a-service layer behind cmd/arserved — a
// sharded content-addressed result cache (key: Config.Hash() + workload +
// scheme + scale) with singleflight de-duplication and one shared worker
// budget for ad-hoc jobs, figure suites and sweeps. See DESIGN.md.
type (
	ServiceOptions = service.Options
	ServiceServer  = service.Server
	ServiceJob     = service.Job
	ServiceStats   = service.Stats
	ServiceClient  = service.Client

	ServiceRunRequest   = service.RunRequest
	ServiceRunResponse  = service.RunResponse
	ServiceSweepRequest = service.SweepRequest
)

// NewService builds an embeddable service server (cache + scheduler +
// statistics); Handler() exposes it over HTTP the way cmd/arserved does.
func NewService(opts ServiceOptions) *ServiceServer { return service.New(opts) }

// NewServiceClient builds a Go client for an arserved daemon.
func NewServiceClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// ServiceRetryPolicy bounds the client's idempotent retry loop (exponential
// backoff with jitter, honouring server Retry-After hints). Safe because
// jobs are content-addressed and the simulator deterministic: a duplicate
// submission coalesces onto the cached result instead of recomputing.
type ServiceRetryPolicy = service.RetryPolicy

// ErrServiceOverloaded is returned (as an HTTP 503 with Retry-After) when
// the daemon sheds a request that would need a new simulation while its
// queue is over -max-queue or it is draining.
var ErrServiceOverloaded = service.ErrOverloaded

// Cluster types: the fault-tolerant coordinator/worker fleet behind
// arserved -mode=coordinator / -mode=worker. The coordinator implements the
// service Executor seam — single-process arserved is the degenerate cluster
// of one in-process worker — dispatching content-addressed jobs under
// heartbeat-renewed leases, re-dispatching on worker loss, and degrading to
// cache-only service at zero live workers. See DESIGN.md "Cluster &
// supervision".
type (
	ClusterCoordinator     = cluster.Coordinator
	ClusterCoordinatorOpts = cluster.CoordinatorOptions
	ClusterWorker          = cluster.Worker
	ClusterWorkerOpts      = cluster.WorkerOptions
	ClusterStats           = service.ClusterStats
	ClusterWorkerStatus    = service.WorkerStatus
)

// NewClusterCoordinator starts a job dispatcher (plug it into
// ServiceOptions.Executor and mount its Register alongside the service
// handler); Close stops its lease janitor.
func NewClusterCoordinator(opts ClusterCoordinatorOpts) *ClusterCoordinator {
	return cluster.NewCoordinator(opts)
}

// NewClusterWorker builds a worker process that joins a coordinator,
// simulates leased jobs on a local budget, and drains gracefully.
func NewClusterWorker(opts ClusterWorkerOpts) (*ClusterWorker, error) {
	return cluster.NewWorker(opts)
}

// Result-store types: the crash-safe, content-addressed persistence layer
// behind arserved's -store flag. Append-only checksummed segment files;
// recovery quarantines torn or corrupt records and never loses an intact
// one. See DESIGN.md "Durability & failure".
type (
	ResultStore      = store.Store
	ResultStoreOpts  = store.Options
	ResultStoreStats = store.Stats
)

// OpenResultStore opens (creating if needed) a result store rooted at dir,
// recovering every intact record from a previous process lifetime.
func OpenResultStore(dir string, opts ResultStoreOpts) (*ResultStore, error) {
	return store.Open(dir, opts)
}

// ServiceFigureIDs lists the figure ids /figures/{id} serves.
func ServiceFigureIDs() []string { return service.FigureIDs() }

// PortPolicy is the coordinator's tree-rooting policy (ART vs ARF-tid vs
// ARF-addr).
type PortPolicy = core.PortPolicy

// UpdateCmd and GatherCmd are the offload commands of the Update/Gather
// ISA extension (§3.1), exposed for tests and tooling that drive the flow
// coordinator directly.
type (
	UpdateCmd = core.UpdateCmd
	GatherCmd = core.GatherCmd
)

// FlowEntry mirrors the Active Flow Table entry of Table 3.1.
type FlowEntry = core.FlowEntry
