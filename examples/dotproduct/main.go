// Dot-product example: drives the simulator through the public API with a
// custom workload implementation instead of a built-in benchmark. The
// workload computes dot = Σ a[i]*b[i] with a deliberately skewed access
// pattern (all of a's pages on few cubes) to show how operand placement
// shapes Active-Routing behaviour, and demonstrates the Workload interface
// a downstream user would implement.
//
//	go run ./examples/dotproduct
package main

import (
	"fmt"
	"log"
	"math"

	activerouting "repro"
	"repro/internal/isa"
	"repro/internal/workload"
)

// dotProduct implements activerouting.Workload.
type dotProduct struct {
	n    int
	env  *workload.Env
	a, b workload.F64Array
	out  workload.F64Array
	av   []float64
	bv   []float64
	ref  float64
}

func (d *dotProduct) Name() string { return "dotproduct" }

func (d *dotProduct) Init(env *workload.Env) {
	d.env = env
	d.a = workload.NewF64Array(env, d.n)
	d.b = workload.NewF64Array(env, d.n)
	d.out = workload.NewF64Array(env, 1)
	d.av = make([]float64, d.n)
	d.bv = make([]float64, d.n)
	for i := 0; i < d.n; i++ {
		d.av[i] = env.Rand.Float64()
		d.bv[i] = env.Rand.Float64() - 0.5
		d.a.Set(i, d.av[i])
		d.b.Set(i, d.bv[i])
		d.ref += d.av[i] * d.bv[i]
	}
	d.out.Set(0, 0)
}

func (d *dotProduct) Streams(mode workload.Mode) []isa.Stream {
	streams := make([]isa.Stream, d.env.Threads)
	per := d.n / d.env.Threads
	for tid := 0; tid < d.env.Threads; tid++ {
		t := &workload.Trace{}
		lo := tid * per
		hi := lo + per
		if tid == d.env.Threads-1 {
			hi = d.n
		}
		if mode == workload.ModeBaseline {
			part := 0.0
			for i := lo; i < hi; i++ {
				t.Ld(d.a.At(i))
				t.Ld(d.b.At(i))
				t.FPMul()
				t.FP()
				part += d.av[i] * d.bv[i]
			}
			t.AtomicAdd(d.out.At(0), part)
		} else {
			for i := lo; i < hi; i++ {
				t.Update(d.a.At(i), d.b.At(i), d.out.At(0), isa.OpMac)
			}
			t.Gather(d.out.At(0), d.env.Threads)
		}
		streams[tid] = t.Stream()
	}
	return streams
}

func (d *dotProduct) Verify() error {
	got := d.out.Get(0)
	if math.Abs(got-d.ref) > 1e-6*math.Abs(d.ref)+1e-9 {
		return fmt.Errorf("dot = %g, want %g", got, d.ref)
	}
	return nil
}

func main() {
	fmt.Println("Custom-workload example: dot product through the public API")
	fmt.Println()
	for _, scheme := range []activerouting.Scheme{activerouting.SchemeHMC, activerouting.SchemeARFaddr} {
		wl := &dotProduct{n: 1 << 14}
		cfg := activerouting.DefaultConfig(scheme)
		sys, err := activerouting.NewSystemWith(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d cycles, IPC %.2f", scheme, res.Cycles, res.IPC)
		if scheme.Active() {
			fmt.Printf(", %d updates committed in-network, operand imbalance %.2f",
				res.Engine.UpdatesCommitted, res.OperandHeat.Imbalance())
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("result verified against the host-computed reference in both runs")
}
