// Adaptive offloading example: the §5.4 case study. The phase-varying LU
// workload starts with short dot products (cache-friendly: host wins) and
// ends with long strided ones (memory-bound: Active-Routing wins). The
// adaptive runtime knob offloads a flow only when its expected
// updates-per-flow exceeds the thesis threshold
// CACHE_BLK/stride1 + CACHE_BLK/stride2.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	activerouting "repro"
)

func main() {
	fmt.Println("Dynamic offloading case study (thesis §5.4, Fig 5.8)")
	fmt.Println()
	schemes := []activerouting.Scheme{
		activerouting.SchemeHMC,
		activerouting.SchemeARFtid,
		activerouting.SchemeARFtidAdaptive,
	}
	var hmcCycles uint64
	results := make([]*activerouting.Results, 0, len(schemes))
	for _, s := range schemes {
		res, err := activerouting.Run(s, "lud_phase", activerouting.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		if s == activerouting.SchemeHMC {
			hmcCycles = res.Cycles
		}
		results = append(results, res)
		fmt.Printf("%-18s %10d cycles  speedup over HMC %.2fx  (offloaded %d updates)\n",
			s, res.Cycles, float64(hmcCycles)/float64(res.Cycles), res.Coord.Updates)
	}
	fmt.Println()
	fmt.Println("IPC over time (sampled windows):")
	for i, s := range schemes {
		tr := results[i].IPCTrace
		fmt.Printf("%-18s", s)
		step := len(tr)/10 + 1
		for j := 0; j < len(tr); j += step {
			fmt.Printf(" %5.2f", tr[j].IPC)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The adaptive scheme tracks HMC in the early (cache-friendly) phase")
	fmt.Println("and Active-Routing in the late (memory-bound) phase.")
}
