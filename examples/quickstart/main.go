// Quickstart: run the walking-through example of the paper (Fig 3.6) —
// sum += A[i]*B[i] over two large vectors — on the HMC baseline and on
// Active-Routing, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	activerouting "repro"
)

func main() {
	fmt.Println("Active-Routing quickstart: multiply-accumulate over two vectors")
	fmt.Println()

	baseline, err := activerouting.Run(activerouting.SchemeHMC, "mac", activerouting.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HMC baseline      : %8d cycles (IPC %.2f)\n", baseline.Cycles, baseline.IPC)

	ar, err := activerouting.Run(activerouting.SchemeARFtid, "mac", activerouting.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ARF-tid (offload) : %8d cycles (IPC %.2f)\n", ar.Cycles, ar.IPC)
	fmt.Printf("speedup           : %.2fx\n", float64(baseline.Cycles)/float64(ar.Cycles))
	fmt.Println()

	req, stall, resp := ar.Breakdown.Means()
	fmt.Printf("offloaded updates : %d (all committed in the memory network)\n", ar.Coord.Updates)
	fmt.Printf("update roundtrip  : request %.0f + stall %.0f + response %.0f cycles\n", req, stall, resp)
	fmt.Printf("operand bypasses  : %d single-operand updates skipped the buffer pool\n",
		ar.Engine.SingleOpBypasses)
	fmt.Printf("gather trees      : updates spread over the forest, %d tree nodes forwarded traffic\n",
		ar.Engine.UpdatesForwarded)
	fmt.Println()
	fmt.Println("Both runs verified the same functional result: the in-network")
	fmt.Println("reduction matches a host-computed reference to FP tolerance.")
}
