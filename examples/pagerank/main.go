// PageRank example: the graph-analytics scenario of the paper's Fig 3.2.
// One rank-propagation iteration runs on the host in both configurations;
// the score-difference loop — abs-diff accumulation into a shared `diff`
// plus the rank rotation stores — is offloaded with Update/Gather under
// Active-Routing, exactly as the thesis's pseudocode does:
//
//	Update(&v.next_pagerank, &v.pagerank, &diff, abs);
//	Update(&v.next_pagerank, nil,        &v.pagerank, mov);
//	Update(0.15/N,           nil,        &v.next_pagerank, const_assign);
//	Gather(&diff, num_threads);
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	activerouting "repro"
)

func main() {
	fmt.Println("Active-Routing on PageRank (synthetic power-law graph)")
	fmt.Println()
	fmt.Printf("%-12s %12s %8s %14s\n", "scheme", "cycles", "IPC", "active bytes")
	var base uint64
	for _, scheme := range []activerouting.Scheme{
		activerouting.SchemeDRAM,
		activerouting.SchemeHMC,
		activerouting.SchemeARFtid,
	} {
		res, err := activerouting.Run(scheme, "pagerank", activerouting.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		active := res.Movement.ActiveReq + res.Movement.ActiveResp
		fmt.Printf("%-12s %12d %8.2f %14d   (%.2fx over DRAM)\n",
			scheme, res.Cycles, res.IPC, active, float64(base)/float64(res.Cycles))
		if scheme == activerouting.SchemeARFtid {
			fmt.Println()
			fmt.Printf("offloaded: %d reducing updates + %d active stores (mov/const_assign)\n",
				res.Coord.Updates, res.Coord.ActiveStores)
			fmt.Printf("the diff reduction met its %d-thread Gather barrier at the tree roots\n", 16)
		}
	}
	fmt.Println()
	fmt.Println("diff, pagerank[] and next_pagerank[] all verified against the reference.")
}
