// Benchmark harness: one testing.B benchmark per table and figure of the
// thesis's evaluation (Chapter 5), plus the ablations DESIGN.md calls out.
// Each benchmark regenerates its figure's series and reports the figure's
// headline numbers as custom metrics, so `go test -bench=. -benchmem`
// reproduces the entire evaluation.
//
// Benchmarks run at ScaleTiny by default so the full suite completes in
// minutes; set AR_BENCH_SCALE=small for the paper-shaped runs the
// EXPERIMENTS.md numbers were taken from.
package activerouting

import (
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/system"
	"repro/internal/workload"
)

func benchScale() workload.Scale {
	switch os.Getenv("AR_BENCH_SCALE") {
	case "small":
		return workload.ScaleSmall
	case "medium":
		return workload.ScaleMedium
	default:
		return workload.ScaleTiny
	}
}

func suite(b *testing.B, workloads []string, conf experiments.Configure) *experiments.Suite {
	b.Helper()
	s, err := experiments.RunSuite(benchScale(), workloads, system.Schemes(), conf)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable41 exercises machine construction for every scheme (the
// Table 4.1 configuration) and reports component counts.
func BenchmarkTable41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sch := range system.Schemes() {
			cfg := system.DefaultConfig(sch)
			sys, err := system.New(cfg, "reduce", workload.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			if sys.Engine().Components() == 0 {
				b.Fatal("empty machine")
			}
		}
	}
}

// BenchmarkFig51a regenerates Figure 5.1(a): benchmark speedup over DRAM.
func BenchmarkFig51a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Benchmarks(), nil)
		t, err := experiments.Fig51(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.GMean[3], "ARF-tid-gmean-speedup")
		b.ReportMetric(t.GMean[1], "HMC-gmean-speedup")
	}
}

// BenchmarkFig51aSharded regenerates Figure 5.1(a) on the sharded
// simulation kernel (4 shards per side, 4 workers per run). Results are
// bit-identical to BenchmarkFig51a — the figure derivation fails on any
// divergence — and the allocs/op ceiling CI applies to it pins the
// sharded kernel's preallocated-staging discipline.
func BenchmarkFig51aSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSuite(benchScale(), workload.Benchmarks(), system.Schemes(),
			func(cfg *system.Config) { cfg.Shards, cfg.Workers = 4, 4 })
		if err != nil {
			b.Fatal(err)
		}
		t, err := experiments.Fig51(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.GMean[3], "ARF-tid-gmean-speedup")
	}
}

// BenchmarkFig51b regenerates Figure 5.1(b): microbenchmark speedup.
func BenchmarkFig51b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t, err := experiments.Fig51(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.GMean[3], "ARF-tid-gmean-speedup")
		b.ReportMetric(t.GMean[2], "ART-gmean-speedup")
	}
}

// BenchmarkFig52a regenerates Figure 5.2(a): update roundtrip latency
// breakdown for the benchmarks.
func BenchmarkFig52a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Benchmarks(), nil)
		t := experiments.Fig52(s)
		// ART's stall component is the hotspot signature the figure shows.
		b.ReportMetric(t.Stall[0][0], "ART-stall-cycles")
		b.ReportMetric(t.Stall[0][1], "ARF-tid-stall-cycles")
	}
}

// BenchmarkFig52b regenerates Figure 5.2(b) for the microbenchmarks.
func BenchmarkFig52b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t := experiments.Fig52(s)
		b.ReportMetric(t.Req[0][0], "ART-req-cycles")
		b.ReportMetric(t.Req[0][1], "ARF-tid-req-cycles")
	}
}

// BenchmarkFig53 regenerates Figure 5.3: the lud stall/update/operand
// heatmaps, reporting the ARF-tid vs ARF-addr update imbalance the figure
// contrasts.
func BenchmarkFig53(b *testing.B) {
	imb := func(cells []uint64) float64 {
		var max, sum uint64
		for _, c := range cells {
			sum += c
			if c > max {
				max = c
			}
		}
		if sum == 0 {
			return 0
		}
		return float64(max) * float64(len(cells)) / float64(sum)
	}
	for i := 0; i < b.N; i++ {
		s := suite(b, []string{"lud"}, nil)
		sets := experiments.Fig53(s)
		b.ReportMetric(imb(sets[0].Updates), "ARF-tid-update-imbalance")
		b.ReportMetric(imb(sets[1].Updates), "ARF-addr-update-imbalance")
	}
}

// BenchmarkFig54 regenerates Figure 5.4: data movement normalized to HMC.
func BenchmarkFig54(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t, err := experiments.Fig54(s)
		if err != nil {
			b.Fatal(err)
		}
		// mac's ARF-tid total (workload index 2, scheme index: HMC,ART,
		// ARF-tid,ARF-addr -> 2).
		b.ReportMetric(t.Total(2, 2), "mac-ARF-tid-movement-vs-HMC")
	}
}

// BenchmarkFig55 regenerates Figure 5.5: normalized power breakdown.
func BenchmarkFig55(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t, err := experiments.Fig55to57(s, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Network[2][3], "mac-ARF-tid-net-power-vs-DRAM")
	}
}

// BenchmarkFig56 regenerates Figure 5.6: normalized energy breakdown.
func BenchmarkFig56(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t, err := experiments.Fig55to57(s, false)
		if err != nil {
			b.Fatal(err)
		}
		total := t.Cache[2][3] + t.Memory[2][3] + t.Network[2][3]
		b.ReportMetric(total, "mac-ARF-tid-energy-vs-DRAM")
	}
}

// BenchmarkFig57 regenerates Figure 5.7: normalized EDP (the thesis's
// headline efficiency claim: 75-88% average EDP reduction).
func BenchmarkFig57(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite(b, workload.Microbenchmarks(), nil)
		t, err := experiments.Fig55to57(s, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.EDPGM[3], "ARF-tid-gmean-EDP-vs-DRAM")
		b.ReportMetric(t.EDPGM[1], "HMC-gmean-EDP-vs-DRAM")
	}
}

// BenchmarkFig58 regenerates Figure 5.8: the dynamic-offloading case study.
func BenchmarkFig58(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig58(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[1], "ARF-tid-speedup-vs-HMC")
		b.ReportMetric(res.Speedup[2], "adaptive-speedup-vs-HMC")
	}
}

// --- Ablations (DESIGN.md) ----------------------------------------------

func runOne(b *testing.B, cfg system.Config, wl string) *system.Results {
	b.Helper()
	sys, err := system.New(cfg, wl, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationOperandBuffers sweeps the ARE operand buffer pool: the
// backpressure (Fig 5.2's stall component) sensitivity.
func BenchmarkAblationOperandBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bufs := range []int{4, 32} {
			cfg := system.DefaultConfig(system.SchemeARFtid)
			cfg.ARE.OperandBufs = bufs
			res := runOne(b, cfg, "mac")
			if bufs == 4 {
				b.ReportMetric(float64(res.Cycles), "cycles-4-bufs")
			} else {
				b.ReportMetric(float64(res.Cycles), "cycles-32-bufs")
			}
		}
	}
}

// BenchmarkAblationFlowTable sweeps the Active Flow Table capacity. The
// sweep stays above the workloads' concurrency bound (threads x gather
// batch = 128 flows): below it, table-full stalls can block the gather
// that would free the entries (DESIGN.md); "no sensitivity above the
// bound" is the point of the probe.
func BenchmarkAblationFlowTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, flows := range []int{160, 256} {
			cfg := system.DefaultConfig(system.SchemeARFtid)
			cfg.ARE.MaxFlows = flows
			res := runOne(b, cfg, "sgemm")
			if flows == 160 {
				b.ReportMetric(float64(res.Cycles), "cycles-160-flows")
			} else {
				b.ReportMetric(float64(res.Cycles), "cycles-256-flows")
			}
		}
	}
}

// BenchmarkAblationTopology compares the dragonfly memory network against
// a 4x4 mesh (the unified-memory-network design choice of §2.2).
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, topo := range []system.MemTopology{system.TopoDragonfly, system.TopoMesh} {
			cfg := system.DefaultConfig(system.SchemeARFtid)
			cfg.MemTopo = topo
			res := runOne(b, cfg, "rand_mac")
			if topo == system.TopoDragonfly {
				b.ReportMetric(float64(res.Cycles), "cycles-dragonfly")
			} else {
				b.ReportMetric(float64(res.Cycles), "cycles-mesh")
			}
		}
	}
}

// BenchmarkAblationBypass toggles the §3.2.3 single-operand operand-buffer
// bypass on the bypass-heavy reduce kernel.
func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bufs := range []int{8} {
			// The bypass matters most when buffers are scarce.
			on := system.DefaultConfig(system.SchemeARFtid)
			on.ARE.OperandBufs = bufs
			resOn := runOne(b, on, "reduce")
			b.ReportMetric(float64(resOn.Cycles), "cycles-bypass-on")
			b.ReportMetric(float64(resOn.Engine.SingleOpBypasses), "bypasses")

			off := system.DefaultConfig(system.SchemeARFtid)
			off.ARE.OperandBufs = bufs
			off.ARE.BypassOff = true
			resOff := runOne(b, off, "reduce")
			b.ReportMetric(float64(resOff.Cycles), "cycles-bypass-off")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles
// simulated per wall second) — the engineering figure of merit for the
// simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res := runOne(b, system.DefaultConfig(system.SchemeHMC), "mac")
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAblationUpdateGranularity compares scalar against vectored
// offloading (the §6 granularity extension): same in-network element
// count, eight times fewer Update packets.
func BenchmarkAblationUpdateGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scalar := runOne(b, system.DefaultConfig(system.SchemeARFtid), "mac")
		vec := runOne(b, system.DefaultConfig(system.SchemeARFtid), "mac_vec")
		b.ReportMetric(float64(scalar.Cycles), "cycles-scalar")
		b.ReportMetric(float64(vec.Cycles), "cycles-vec8")
		b.ReportMetric(float64(scalar.Coord.Updates), "packets-scalar")
		b.ReportMetric(float64(vec.Coord.Updates), "packets-vec8")
	}
}

// BenchmarkAblationEnergyAware compares ARF-tid against the §6 energy-aware
// port policy: hop-bytes (network energy) against runtime.
func BenchmarkAblationEnergyAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tid := runOne(b, system.DefaultConfig(system.SchemeARFtid), "rand_mac")
		ea := runOne(b, system.DefaultConfig(system.SchemeARFea), "rand_mac")
		b.ReportMetric(float64(tid.NetHopByte), "hopbytes-tid")
		b.ReportMetric(float64(ea.NetHopByte), "hopbytes-ea")
		b.ReportMetric(float64(tid.Cycles), "cycles-tid")
		b.ReportMetric(float64(ea.Cycles), "cycles-ea")
	}
}
