// Package service is the simulation-as-a-service layer: a content-addressed
// result cache plus a bounded shared scheduler in front of the simulator,
// exposed over HTTP by cmd/arserved.
//
// Active-Routing experiments are pure functions of (Config, workload,
// scheme, scale) — the simulator is deterministic by machine definition
// (DESIGN.md, pinned by the golden and determinism tests) — so results are
// cacheable by configuration identity: the cache key is Config.Hash() plus
// the workload name, scheme and scale. Concurrent identical requests are
// de-duplicated with singleflight so each distinct key simulates exactly
// once, and every simulation (ad-hoc job, suite run behind a figure, sweep
// point) draws a slot from one shared worker budget, so the daemon's total
// simulation parallelism is bounded no matter how requests mix.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// Job is one simulation request: a workload × scheme × scale triple with an
// optional full machine configuration (nil means DefaultConfig(Scheme)).
type Job struct {
	Workload string
	Scheme   system.Scheme
	Scale    workload.Scale
	Config   *system.Config
}

// normalize fills in the default configuration, forces the config's scheme
// to the job's, and validates everything a run would trip over.
func (j Job) normalize() (Job, error) {
	if j.Config == nil {
		cfg := system.DefaultConfig(j.Scheme)
		j.Config = &cfg
	} else {
		cfg := *j.Config // callers keep ownership of their config
		cfg.Scheme = j.Scheme
		j.Config = &cfg
	}
	if err := j.Config.Validate(); err != nil {
		return Job{}, err
	}
	// workload.New validates name, scale and thread count; constructors
	// are bare struct literals (traces build at Init), so this is cheap.
	// It is the same gate system.New applies.
	if _, err := workload.New(j.Workload, j.Scale, j.Config.Threads); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Key is the content address of a normalized job: the full-configuration
// hash joined with the workload, scheme and scale. Two jobs share a key iff
// a deterministic simulator must produce bit-identical Results for them.
func (j Job) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s", j.Config.Hash(), j.Workload, j.Scheme, j.Scale)
}

// Options configures a Server.
type Options struct {
	// Workers bounds total simulation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Shards sets the cache shard count; 0 means 16.
	Shards int
	// SimShards, when positive, runs jobs that did not pin a kernel on the
	// sharded simulation kernel with this shard count. Results are
	// bit-identical either way (the config hash ignores the kernel choice),
	// and each such job accounts for its worker count against the shared
	// budget.
	SimShards int
}

// Server is the embeddable service core: cache + scheduler + statistics.
// cmd/arserved wraps it in an HTTP daemon; tests drive it directly.
type Server struct {
	budget    *sweep.Budget
	cache     *resultCache
	start     time.Time
	simShards int

	mu       sync.Mutex
	hits     uint64
	misses   uint64
	started  uint64 // simulations begun (the singleflight test pins this)
	done     uint64 // simulations completed successfully
	failures uint64
}

// New builds a server.
func New(opts Options) *Server {
	return &Server{
		budget:    sweep.NewBudget(opts.Workers),
		cache:     newResultCache(opts.Shards),
		start:     time.Now(),
		simShards: opts.SimShards,
	}
}

// Budget exposes the shared worker budget so callers embedding the server
// can schedule their own work against the same cap.
func (s *Server) Budget() *sweep.Budget { return s.budget }

// Run executes one job through the cache: a repeat of a completed job is a
// pure lookup, concurrent identical jobs coalesce onto one simulation, and
// a fresh job acquires a budget slot and simulates. The bool reports
// whether the result came from the cache (including coalesced waits).
//
// The returned Results are shared across callers and must be treated as
// read-only.
func (s *Server) Run(ctx context.Context, job Job) (*system.Results, bool, error) {
	norm, err := job.normalize()
	if err != nil {
		return nil, false, fmt.Errorf("service: %w", err)
	}
	return s.runNormalized(ctx, norm)
}

// runNormalized is Run past the request gate; job must already be
// normalized (the HTTP handler normalizes once and calls this directly).
func (s *Server) runNormalized(ctx context.Context, job Job) (*system.Results, bool, error) {
	if s.simShards > 0 && job.Config.Shards == 0 {
		cfg := *job.Config // never mutate the caller's config
		cfg.Shards = s.simShards
		job.Config = &cfg
	}
	res, hit, err := s.cache.do(ctx, job.Key(), func() (*system.Results, error) {
		return s.simulate(ctx, job)
	})
	s.mu.Lock()
	if err != nil {
		s.failures++
	} else if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return res, hit, err
}

// jobWeight reports how many budget slots a job's simulation consumes: one
// for the sequential kernel, the worker-pool size for the sharded kernel —
// a 4-shard job accounts for 4 hardware threads.
func jobWeight(cfg *system.Config) int {
	if cfg == nil || cfg.Shards <= 0 {
		return 1
	}
	if cfg.Workers > 0 && cfg.Workers < cfg.Shards {
		return cfg.Workers
	}
	return cfg.Shards
}

// simulate runs one normalized job under the shared budget. Once slots are
// held the run goes to completion — the simulator has no mid-run preemption
// points — so cancellation only short-circuits the queue wait.
func (s *Server) simulate(ctx context.Context, job Job) (*system.Results, error) {
	held, err := s.budget.AcquireN(ctx, jobWeight(job.Config))
	if err != nil {
		return nil, err
	}
	defer s.budget.ReleaseN(held)
	s.mu.Lock()
	s.started++
	s.mu.Unlock()
	sys, err := system.New(*job.Config, job.Workload, job.Scale)
	if err != nil {
		return nil, fmt.Errorf("service: %s/%s: %w", job.Scheme, job.Workload, err)
	}
	res, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("service: %s/%s: %w", job.Scheme, job.Workload, err)
	}
	s.mu.Lock()
	s.done++
	s.mu.Unlock()
	return res, nil
}

// Sweep executes a named built-in study at the given scale on the shared
// budget. Sweep points mutate configurations away from the defaults and are
// not routed through the result cache (the cache serves the repeat-heavy
// /run and /figures traffic; a sweep is a one-shot grid).
func (s *Server) Sweep(ctx context.Context, study string, scale workload.Scale) (*sweep.Result, error) {
	grid, err := sweep.StudyGrid(study, scale)
	if err != nil {
		return nil, err
	}
	return sweep.RunOn(ctx, grid, s.budget)
}

// Stats is a point-in-time statistics snapshot.
type Stats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Workers        int     `json:"workers"`
	InFlight       int     `json:"in_flight"`
	QueueDepth     int     `json:"queue_depth"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	SimsStarted    uint64  `json:"sims_started"`
	SimsCompleted  uint64  `json:"sims_completed"`
	FailedRequests uint64  `json:"failed_requests"`

	// Allocation/GC gauges (runtime.MemStats snapshots) so operators can
	// watch the simulator's memory discipline in production: with the
	// pooled packet/message lifecycle the per-simulation allocation rate
	// should stay near-constant as traffic grows.
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	MallocsTotal    uint64  `json:"mallocs_total"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		CacheHits:      s.hits,
		CacheMisses:    s.misses,
		SimsStarted:    s.started,
		SimsCompleted:  s.done,
		FailedRequests: s.failures,
	}
	s.mu.Unlock()
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Workers = s.budget.Cap()
	st.InFlight = s.budget.InUse()
	st.QueueDepth = s.budget.Waiting()
	st.CacheEntries = s.cache.len()
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.HitRate = float64(st.CacheHits) / float64(total)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapAllocBytes = ms.HeapAlloc
	st.HeapSysBytes = ms.HeapSys
	st.TotalAllocBytes = ms.TotalAlloc
	st.MallocsTotal = ms.Mallocs
	st.NumGC = ms.NumGC
	st.GCPauseTotalMS = float64(ms.PauseTotalNs) / 1e6
	st.GCCPUFraction = ms.GCCPUFraction
	return st
}
