// Package service is the simulation-as-a-service layer: a content-addressed
// result cache plus a bounded shared scheduler in front of the simulator,
// exposed over HTTP by cmd/arserved.
//
// Active-Routing experiments are pure functions of (Config, workload,
// scheme, scale) — the simulator is deterministic by machine definition
// (DESIGN.md, pinned by the golden and determinism tests) — so results are
// cacheable by configuration identity: the cache key is Config.Hash() plus
// the workload name, scheme and scale. Concurrent identical requests are
// de-duplicated with singleflight so each distinct key simulates exactly
// once, and every simulation (ad-hoc job, suite run behind a figure, sweep
// point) draws a slot from one shared worker budget, so the daemon's total
// simulation parallelism is bounded no matter how requests mix.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// Job is one simulation request: a workload × scheme × scale triple with an
// optional full machine configuration (nil means DefaultConfig(Scheme)).
type Job struct {
	Workload string
	Scheme   system.Scheme
	Scale    workload.Scale
	Config   *system.Config
}

// normalize fills in the default configuration, forces the config's scheme
// to the job's, and validates everything a run would trip over.
func (j Job) normalize() (Job, error) {
	if j.Config == nil {
		cfg := system.DefaultConfig(j.Scheme)
		j.Config = &cfg
	} else {
		cfg := *j.Config // callers keep ownership of their config
		cfg.Scheme = j.Scheme
		j.Config = &cfg
	}
	if err := j.Config.Validate(); err != nil {
		return Job{}, err
	}
	// workload.New validates name, scale and thread count; constructors
	// are bare struct literals (traces build at Init), so this is cheap.
	// It is the same gate system.New applies.
	if _, err := workload.New(j.Workload, j.Scale, j.Config.Threads); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Normalized returns the job with its default configuration filled in and
// every field validated — the form Executor.Execute and Key require. The
// cluster worker revalidates wire-delivered jobs through this, so a
// malformed dispatch fails loudly at the worker instead of deep in the
// kernel.
func (j Job) Normalized() (Job, error) { return j.normalize() }

// Key is the content address of a normalized job: the full-configuration
// hash joined with the workload, scheme and scale. Two jobs share a key iff
// a deterministic simulator must produce bit-identical Results for them.
func (j Job) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s", j.Config.Hash(), j.Workload, j.Scheme, j.Scale)
}

// Options configures a Server.
type Options struct {
	// Workers bounds total simulation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Shards sets the cache shard count; 0 means 16.
	Shards int
	// SimShards, when non-zero, runs jobs that did not pin a kernel on the
	// sharded simulation kernel with this shard count; system.KernelAuto
	// (-1) resolves per job from topology, GOMAXPROCS and the budget's free
	// capacity at acquisition time — the daemon trades intra-run for
	// run-level parallelism as load changes. Results are bit-identical
	// either way (the config hash ignores the kernel choice), and each such
	// job accounts for its resolved worker count against the shared budget.
	SimShards int
	// Store, when non-nil, is the durable result store: every record it
	// holds at construction warm-loads into the cache (a restarted daemon
	// serves previously computed jobs with zero re-simulation), and every
	// fresh result is written through. Results are content-addressed by the
	// same job key as the in-memory cache, so determinism makes the store
	// append-only and conflict-free.
	Store *store.Store
	// JobTimeout bounds each simulation's wall-clock time; 0 disables. A
	// hung or deadlocked run is abandoned at the deadline (the kernel's
	// cancellation stride), releasing its budget slots within a bounded
	// interval even when the requester has long disconnected.
	JobTimeout time.Duration
	// MaxQueue sheds load once this many acquirers wait on the budget:
	// requests that would need a NEW simulation fail fast with
	// ErrOverloaded (HTTP 503 + Retry-After) instead of queueing without
	// bound; cached (and in-flight-coalescible) requests are always served.
	// 0 disables shedding.
	MaxQueue int
	// Snapshots, when non-nil, is the durable checkpoint store backing
	// prefix-shared sweeps: family checkpoints persist across restarts, so
	// a repeated study warm-starts its leaders instead of re-simulating
	// their prefixes. Results are unaffected — only wall clock.
	Snapshots *store.Store
	// Executor overrides the compute backend. nil means a Local executor on
	// the server's own budget — the degenerate single-process cluster. The
	// cluster coordinator plugs its lease-dispatching executor in here;
	// everything above the seam (cache, store, shedding, transport) is
	// unchanged.
	Executor Executor
}

// ErrOverloaded is returned for a request that would start a new
// simulation while the server is saturated past Options.MaxQueue or
// draining for shutdown. The job was not started; an identical retry after
// backoff is safe (jobs are deterministic and content-addressed).
var ErrOverloaded = errors.New("service: overloaded, retry later")

// Server is the embeddable service core: cache + scheduler + statistics.
// cmd/arserved wraps it in an HTTP daemon; tests drive it directly.
type Server struct {
	budget     *sweep.Budget
	cache      *resultCache
	store      *store.Store
	snaps      *store.Store
	exec       Executor
	start      time.Time
	simShards  int
	jobTimeout time.Duration
	maxQueue   int
	draining   atomic.Bool

	mu       sync.Mutex
	hits     uint64
	misses   uint64
	started  uint64 // simulations begun (the singleflight test pins this)
	done     uint64 // simulations completed successfully
	failures uint64
	// Robustness counters.
	shed        uint64 // requests refused with ErrOverloaded
	cancelled   uint64 // jobs abandoned on a cancelled context
	timedOut    uint64 // jobs abandoned at the JobTimeout deadline
	storeLoaded uint64 // records warm-loaded from the store at boot
	storeBadRec uint64 // store records that failed to decode at boot
	storeFails  uint64 // write-through Put failures (results still served)
	sweepForks  uint64 // sweep points resumed from a shared-prefix checkpoint
	sweepWarm   uint64 // sweep leaders warm-started from the snapshot store
	// Sharded-conductor scheduling counters, accumulated across every
	// sharded simulation this server completed.
	sched sim.SchedCounters
}

// New builds a server. When opts.Store is set, every decodable record it
// holds is seeded into the result cache before the first request: a
// restart costs zero re-simulation for previously computed jobs. A stored
// record that fails to decode (e.g. written by an incompatible version) is
// skipped and counted — corrupt bytes were already quarantined by the
// store's own recovery, so this is the last line of defense, not the first.
func New(opts Options) *Server {
	s := &Server{
		budget:     sweep.NewBudget(opts.Workers),
		cache:      newResultCache(opts.Shards),
		store:      opts.Store,
		snaps:      opts.Snapshots,
		start:      time.Now(),
		simShards:  opts.SimShards,
		jobTimeout: opts.JobTimeout,
		maxQueue:   opts.MaxQueue,
	}
	s.exec = opts.Executor
	if s.exec == nil {
		s.exec = &Local{Budget: s.budget, SimShards: s.simShards, Observer: (*serverObserver)(s)}
	}
	if s.store != nil {
		s.store.Range(func(key string, value []byte) bool {
			var res system.Results
			if err := json.Unmarshal(value, &res); err != nil {
				s.storeBadRec++
				return true
			}
			if s.cache.seed(key, &res) {
				s.storeLoaded++
			}
			return true
		})
	}
	return s
}

// SetDraining flips drain mode: while draining, requests needing a new
// simulation are shed with ErrOverloaded so the daemon's shutdown deadline
// is spent finishing in-flight work, while cached results keep serving.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Budget exposes the shared worker budget so callers embedding the server
// can schedule their own work against the same cap.
func (s *Server) Budget() *sweep.Budget { return s.budget }

// Run executes one job through the cache: a repeat of a completed job is a
// pure lookup, concurrent identical jobs coalesce onto one simulation, and
// a fresh job acquires a budget slot and simulates. The bool reports
// whether the result came from the cache (including coalesced waits).
//
// The returned Results are shared across callers and must be treated as
// read-only.
func (s *Server) Run(ctx context.Context, job Job) (*system.Results, bool, error) {
	norm, err := job.normalize()
	if err != nil {
		return nil, false, fmt.Errorf("service: %w", err)
	}
	return s.runNormalized(ctx, norm)
}

// runNormalized is Run past the request gate; job must already be
// normalized (the HTTP handler normalizes once and calls this directly).
func (s *Server) runNormalized(ctx context.Context, job Job) (*system.Results, bool, error) {
	if s.simShards != 0 && job.Config.Shards == 0 {
		cfg := *job.Config // never mutate the caller's config
		cfg.Shards = s.simShards
		job.Config = &cfg
	}
	key := job.Key()
	// Load shedding happens before the cache entry is created, and only for
	// requests that cannot be resolved by an existing (completed or
	// in-flight) entry: a saturated or draining server keeps serving its
	// read-mostly traffic. The has/do gap can admit a few extra leaders
	// under contention — shedding is a bound, not an exact gate.
	if !s.cache.has(key) && s.overloaded() {
		s.mu.Lock()
		s.shed++
		s.mu.Unlock()
		return nil, false, ErrOverloaded
	}
	res, hit, err := s.cache.do(ctx, key, func() (*system.Results, error) {
		return s.simulate(ctx, job)
	})
	s.mu.Lock()
	if err != nil {
		s.failures++
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut++
		case errors.Is(err, context.Canceled):
			s.cancelled++
		}
	} else if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if err == nil && !hit {
		s.persist(key, res)
	}
	return res, hit, err
}

// overloaded reports whether a new simulation should be refused right now:
// draining, an executor that cannot take new work (a coordinator with zero
// live workers), or a queue past MaxQueue. Cached traffic is never subject
// to this — the probe in runNormalized happens only on a cache miss.
func (s *Server) overloaded() bool {
	if s.draining.Load() || !s.exec.Ready() {
		return true
	}
	return s.maxQueue > 0 && s.queueDepth() >= s.maxQueue
}

// queueDepth is the scheduler's queue: budget waiters for the local
// executor, the dispatcher's capacity waiters for a cluster one.
func (s *Server) queueDepth() int {
	if q, ok := s.exec.(QueueReporter); ok {
		return q.Waiting()
	}
	return s.budget.Waiting()
}

// Ready reports whether the server should accept new simulation work: the
// transport layer's /readyz. Liveness (/healthz) is unconditional — a
// not-ready server still serves every cached result.
func (s *Server) Ready() bool { return !s.draining.Load() && s.exec.Ready() }

// serverObserver adapts the Server's counters to the Local executor's
// lifecycle callbacks without widening the Server API.
type serverObserver Server

func (o *serverObserver) JobStarted() {
	s := (*Server)(o)
	s.mu.Lock()
	s.started++
	s.mu.Unlock()
}

func (o *serverObserver) JobCompleted(sc sim.SchedCounters) {
	s := (*Server)(o)
	s.mu.Lock()
	s.done++
	s.sched.WavesRun += sc.WavesRun
	s.sched.WavesFused += sc.WavesFused
	s.sched.WavesSkipped += sc.WavesSkipped
	s.sched.BarriersElided += sc.BarriersElided
	s.sched.ParkEvents += sc.ParkEvents
	s.mu.Unlock()
}

// persist writes one fresh result through to the durable store. Storage
// failures never fail the request — the result is already computed and
// served from memory — but they are counted, and the next restart simply
// recomputes what was not durable.
func (s *Server) persist(key string, res *system.Results) {
	if s.store == nil {
		return
	}
	b, err := json.Marshal(res)
	if err == nil {
		err = s.store.Put(key, b)
	}
	if err != nil {
		s.mu.Lock()
		s.storeFails++
		s.mu.Unlock()
	}
}

// simulate runs one normalized job through the executor. Cancellation is
// cooperative end-to-end: a cancelled context short-circuits the queue
// wait, and a running simulation is abandoned at the kernel's cancellation
// stride (a remote one at its lease's next checkpoint) — so held resources
// are always released within a bounded interval, even for a deadlocked
// configuration whose requester has disconnected (JobTimeout bounds the
// worst case).
func (s *Server) simulate(ctx context.Context, job Job) (*system.Results, error) {
	if s.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.jobTimeout)
		defer cancel()
	}
	return s.exec.Execute(ctx, job)
}

// Sweep executes a named built-in study at the given scale on the shared
// budget. Sweep points mutate configurations away from the defaults and are
// not routed through the result cache (the cache serves the repeat-heavy
// /run and /figures traffic; a sweep is a one-shot grid). Studies that
// declare a PrefixCycle run prefix-shared: grid points fork from one
// checkpoint per shared-prefix family (bit-identical results, lower wall
// clock), warm-starting from the snapshot store when one is configured.
//
// With a cluster executor installed, every grid point dispatches to the
// worker fleet instead (prefix sharing is a single-process optimization;
// determinism keeps the results bit-identical either way), so a sweep
// survives worker loss: an expired lease re-dispatches its point and the
// grid completes with the same bytes.
func (s *Server) Sweep(ctx context.Context, study string, scale workload.Scale) (*sweep.Result, error) {
	grid, err := sweep.StudyGrid(study, scale)
	if err != nil {
		return nil, err
	}
	if _, local := s.exec.(*Local); !local {
		return sweep.RunVia(ctx, grid, s.sweepParallelism(), func(ctx context.Context, cfg *system.Config, wl string, sc workload.Scale) (*system.Results, error) {
			job := Job{Workload: wl, Scheme: cfg.Scheme, Scale: sc, Config: cfg}
			norm, err := job.normalize()
			if err != nil {
				return nil, err
			}
			return s.simulate(ctx, norm)
		})
	}
	if grid.PrefixCycle > 0 {
		res, st, err := sweep.RunPrefixShared(ctx, grid, s.budget, s.snaps)
		if err == nil {
			s.mu.Lock()
			s.sweepForks += uint64(st.ForkResumes)
			s.sweepWarm += uint64(st.StoreHits)
			s.mu.Unlock()
		}
		return res, err
	}
	return sweep.RunOn(ctx, grid, s.budget)
}

// sweepParallelism bounds how many sweep points a cluster sweep keeps in
// flight: twice the fleet's advertised capacity (so dispatch never starves
// while completions post back), floored to keep a degraded fleet draining.
func (s *Server) sweepParallelism() int {
	n := 0
	if r, ok := s.exec.(ClusterReporter); ok {
		n = 2 * r.ClusterStats().CapacitySlots
	}
	if n < 4 {
		n = 4
	}
	return n
}

// Stats is a point-in-time statistics snapshot.
type Stats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Workers        int     `json:"workers"`
	InFlight       int     `json:"in_flight"`
	QueueDepth     int     `json:"queue_depth"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	SimsStarted    uint64  `json:"sims_started"`
	SimsCompleted  uint64  `json:"sims_completed"`
	FailedRequests uint64  `json:"failed_requests"`

	// Robustness gauges: durable-store health, load shedding and the
	// cancellation/deadline path (mirrored in the Go client via this shared
	// type).
	Draining                bool   `json:"draining"`
	RequestsShed            uint64 `json:"requests_shed"`
	JobsCancelled           uint64 `json:"jobs_cancelled"`
	JobsTimedOut            uint64 `json:"jobs_timed_out"`
	StoreBytesOnDisk        uint64 `json:"store_bytes_on_disk"`
	StoreRecords            uint64 `json:"store_records"`
	StoreRecordsLoaded      uint64 `json:"store_records_loaded"`
	StoreCorruptQuarantined uint64 `json:"store_corrupt_quarantined"`
	StorePutFailures        uint64 `json:"store_put_failures"`
	// StoreQuarantineWriteFailures counts recovery scans that condemned
	// corrupt bytes but could not preserve them under quarantine/ (directory
	// unwritable): the intact records still loaded and startup proceeded —
	// the failure surfaces here instead of aborting the daemon.
	StoreQuarantineWriteFailures uint64 `json:"store_quarantine_write_failures"`
	SweepForkResumes             uint64 `json:"sweep_fork_resumes"`
	SweepWarmStarts              uint64 `json:"sweep_warm_starts"`

	// Cluster is the coordinator's fleet snapshot (lease traffic, worker
	// supervision); absent in single-process mode.
	Cluster *ClusterStats `json:"cluster,omitempty"`

	// Sharded-conductor scheduling totals across every sharded simulation
	// this server completed (sim.SchedCounters): how much per-cycle
	// coordination the wave scheduler actually paid vs. fused, skipped, or
	// elided — overhead made observable, not inferred.
	Sched sim.SchedCounters `json:"sched"`

	// Allocation/GC gauges (runtime.MemStats snapshots) so operators can
	// watch the simulator's memory discipline in production: with the
	// pooled packet/message lifecycle the per-simulation allocation rate
	// should stay near-constant as traffic grows.
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	MallocsTotal    uint64  `json:"mallocs_total"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		CacheHits:      s.hits,
		CacheMisses:    s.misses,
		SimsStarted:    s.started,
		SimsCompleted:  s.done,
		FailedRequests: s.failures,
		RequestsShed:   s.shed,
		JobsCancelled:  s.cancelled,
		JobsTimedOut:   s.timedOut,

		SweepForkResumes: s.sweepForks,
		SweepWarmStarts:  s.sweepWarm,
		Sched:            s.sched,
	}
	storeBad := s.storeBadRec
	st.StoreRecordsLoaded = s.storeLoaded
	st.StorePutFailures = s.storeFails
	s.mu.Unlock()
	st.Draining = s.draining.Load()
	if s.store != nil {
		ss := s.store.Stats()
		st.StoreBytesOnDisk = uint64(ss.BytesOnDisk)
		st.StoreRecords = uint64(ss.Records)
		// Quarantines seen by the store's recovery scan plus records the
		// service could not decode after a clean read.
		st.StoreCorruptQuarantined = uint64(ss.CorruptRecords) + storeBad
		st.StoreQuarantineWriteFailures = uint64(ss.QuarantineFailures)
	}
	if r, ok := s.exec.(ClusterReporter); ok {
		st.Cluster = r.ClusterStats()
	}
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Workers = s.budget.Cap()
	st.InFlight = s.budget.InUse()
	st.QueueDepth = s.queueDepth()
	st.CacheEntries = s.cache.len()
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.HitRate = float64(st.CacheHits) / float64(total)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapAllocBytes = ms.HeapAlloc
	st.HeapSysBytes = ms.HeapSys
	st.TotalAllocBytes = ms.TotalAlloc
	st.MallocsTotal = ms.Mallocs
	st.NumGC = ms.NumGC
	st.GCPauseTotalMS = float64(ms.PauseTotalNs) / 1e6
	st.GCCPUFraction = ms.GCCPUFraction
	return st
}
