package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/internal/system"
	"repro/internal/workload"
)

// Suite assembles an experiments.Suite by routing every (workload, scheme)
// run through the cached Run path: repeat figure requests re-simulate
// nothing, and a cold suite's runs are bounded by the shared budget. The
// assembled suite is bit-identical to experiments.RunSuiteCtx because both
// run system.New(DefaultConfig(scheme)) + Run on a deterministic machine.
func (s *Server) Suite(ctx context.Context, scale workload.Scale, workloads []string, schemes []system.Scheme) (*experiments.Suite, error) {
	suite := &experiments.Suite{
		Scale:     scale,
		Workloads: workloads,
		Schemes:   schemes,
		Results:   make(map[experiments.Key]*system.Results),
	}
	keys := make([]experiments.Key, 0, len(workloads)*len(schemes))
	for _, wl := range workloads {
		for _, sch := range schemes {
			keys = append(keys, experiments.Key{Workload: wl, Scheme: sch})
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One goroutine per key, not a worker pool: Run acquires the shared
	// budget itself, so simulation parallelism stays bounded while cache
	// hits resolve without queueing behind a pool slot. (Wrapping Run in
	// RunJobsOn would hold two budget slots per run and deadlock at cap 1.)
	results := make([]*system.Results, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.Run(ctx, Job{Workload: keys[i].Workload, Scheme: keys[i].Scheme, Scale: scale})
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return nil, err
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	for i, k := range keys {
		suite.Results[k] = results[i]
	}
	return suite, nil
}

// FigureIDs lists the figure ids Figure accepts, in thesis order.
func FigureIDs() []string {
	return []string{"5.1a", "5.1b", "5.2a", "5.2b", "5.3", "5.4", "5.5", "5.6", "5.7", "5.8"}
}

// Figure derives one evaluation figure at the given scale, running (or
// cache-resolving) whatever suite it needs. The returned value is the
// figure's JSON-marshalable data table, mirroring cmd/arbench's ids.
func (s *Server) Figure(ctx context.Context, id string, scale workload.Scale) (any, error) {
	bench := func() (*experiments.Suite, error) {
		return s.Suite(ctx, scale, workload.Benchmarks(), system.Schemes())
	}
	micro := func() (*experiments.Suite, error) {
		return s.Suite(ctx, scale, workload.Microbenchmarks(), system.Schemes())
	}
	pair := func(derive func(*experiments.Suite) (any, error)) (any, error) {
		b, err := bench()
		if err != nil {
			return nil, err
		}
		tb, err := derive(b)
		if err != nil {
			return nil, err
		}
		m, err := micro()
		if err != nil {
			return nil, err
		}
		tm, err := derive(m)
		if err != nil {
			return nil, err
		}
		return map[string]any{"benchmarks": tb, "microbenchmarks": tm}, nil
	}
	switch id {
	case "5.1a":
		su, err := bench()
		if err != nil {
			return nil, err
		}
		return experiments.Fig51(su)
	case "5.1b":
		su, err := micro()
		if err != nil {
			return nil, err
		}
		return experiments.Fig51(su)
	case "5.2a":
		su, err := bench()
		if err != nil {
			return nil, err
		}
		return experiments.Fig52(su), nil
	case "5.2b":
		su, err := micro()
		if err != nil {
			return nil, err
		}
		return experiments.Fig52(su), nil
	case "5.3":
		su, err := s.Suite(ctx, scale, []string{"lud"},
			[]system.Scheme{system.SchemeARFtid, system.SchemeARFaddr})
		if err != nil {
			return nil, err
		}
		return experiments.Fig53(su), nil
	case "5.4":
		return pair(func(su *experiments.Suite) (any, error) { return experiments.Fig54(su) })
	case "5.5":
		return pair(func(su *experiments.Suite) (any, error) { return experiments.Fig55to57(su, true) })
	case "5.6", "5.7":
		return pair(func(su *experiments.Suite) (any, error) { return experiments.Fig55to57(su, false) })
	case "5.8":
		return s.fig58(ctx, scale)
	default:
		return nil, fmt.Errorf("service: unknown figure %q (want one of %v)", id, FigureIDs())
	}
}

// fig58 is the §5.4 dynamic-offloading case study through the cache: the
// three lud_phase runs resolve as ordinary jobs, then the traces and
// HMC-relative speedups derive via the same experiments.Fig58From code the
// direct path uses.
func (s *Server) fig58(ctx context.Context, scale workload.Scale) (*experiments.Fig58Result, error) {
	schemes := experiments.Fig58Schemes()
	runs := make([]*system.Results, len(schemes))
	for i, sch := range schemes {
		r, _, err := s.Run(ctx, Job{Workload: "lud_phase", Scheme: sch, Scale: scale})
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	return experiments.Fig58From(schemes, runs)
}
