package service

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/system"
)

// Executor is the scheduler's compute backend: it runs one normalized,
// content-addressed job to completion and returns its Results. The service
// layering is store (resultCache + store.Store), scheduler (Server +
// Executor), transport (http.go + client.go); Executor is the seam between
// the scheduler and wherever the simulation actually happens.
//
// The default executor is Local — a single-process daemon is just the
// degenerate cluster of one in-process worker. cmd/arserved in coordinator
// mode plugs in the internal/cluster dispatcher instead, which leases jobs
// to remote worker processes with the same contract: deterministic,
// bit-identical Results for a given job key, no matter which worker (or how
// many retries) computed them.
type Executor interface {
	// Execute runs job to completion or returns an error. A context
	// cancellation/deadline must abandon the job within a bounded interval.
	// Returning an error wrapping ErrOverloaded means the job was never
	// started and a retry after backoff is safe.
	Execute(ctx context.Context, job Job) (*system.Results, error)
	// Ready reports whether the executor can take on NEW simulation work
	// right now — readiness, not liveness. A Local executor is always
	// ready; a cluster dispatcher with zero live workers is not. The
	// transport layer surfaces this as /readyz and the scheduler sheds
	// new-simulation traffic (503 + Retry-After) while it is false.
	Ready() bool
}

// ExecObserver receives job lifecycle callbacks from a Local executor; the
// Server implements it to keep the sims_started/sims_completed counters and
// scheduling totals it has always reported.
type ExecObserver interface {
	// JobStarted fires after the job's budget slots are acquired,
	// immediately before the machine is built.
	JobStarted()
	// JobCompleted fires on success with the run's conductor scheduling
	// counters (zero-valued for sequential-kernel runs).
	JobCompleted(sc sim.SchedCounters)
}

// Local runs jobs in-process on a shared worker budget: the degenerate
// one-worker cluster. It is also the execution core of a cluster worker
// process (internal/cluster.Worker wraps the same budget discipline).
type Local struct {
	// Budget bounds total simulation parallelism; required.
	Budget *sweep.Budget
	// SimShards is applied to jobs that did not pin a kernel (see
	// Options.SimShards).
	SimShards int
	// Observer, when non-nil, receives lifecycle callbacks.
	Observer ExecObserver
}

// Ready reports true: an in-process executor can always accept work (the
// budget provides backpressure, not unavailability).
func (l *Local) Ready() bool { return true }

// Execute runs one normalized job under the shared budget. Auto kernel
// knobs resolve against the budget's free capacity at this moment: a busy
// process prefers run-level parallelism (fewer shards per job), an idle one
// gives the job the machine. The job then acquires exactly the worker count
// its resolved kernel will occupy — weighted by the post-clamp pool size,
// not the declared knobs, so a 4-shard job on a 2-thread host holds 2
// slots, not 4.
func (l *Local) Execute(ctx context.Context, job Job) (*system.Results, error) {
	cfg := *job.Config
	if l.SimShards != 0 && cfg.Shards == 0 {
		cfg.Shards = l.SimShards
	}
	free := l.Budget.Cap() - l.Budget.InUse()
	if free < 1 {
		free = 1
	}
	system.ResolveKernel(&cfg, free)
	held, err := l.Budget.AcquireN(ctx, cfg.ResolvedWorkers())
	if err != nil {
		return nil, err
	}
	defer l.Budget.ReleaseN(held)
	if l.Observer != nil {
		l.Observer.JobStarted()
	}
	sys, err := system.New(cfg, job.Workload, job.Scale)
	if err != nil {
		return nil, fmt.Errorf("service: %s/%s: %w", job.Scheme, job.Workload, err)
	}
	res, err := sys.RunCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("service: %s/%s: %w", job.Scheme, job.Workload, err)
	}
	if l.Observer != nil {
		var sc sim.SchedCounters
		if got, ok := sys.SchedCounters(); ok {
			sc = got
		}
		l.Observer.JobCompleted(sc)
	}
	return res, nil
}

// QueueReporter is implemented by executors with their own dispatch queue
// (the cluster dispatcher); the scheduler folds it into load shedding and
// the queue_depth gauge.
type QueueReporter interface {
	// Waiting reports how many jobs are blocked waiting for capacity.
	Waiting() int
}

// ClusterReporter is implemented by executors that coordinate a worker
// fleet; the transport layer surfaces the snapshot as the "cluster" section
// of /stats.
type ClusterReporter interface {
	ClusterStats() *ClusterStats
}

// ClusterStats is a point-in-time snapshot of a coordinator's fleet:
// supervision state, lease traffic, and the robustness counters the chaos
// tests pin (jobs_redispatched > 0 after a worker loss, jobs_divergent
// forever 0 — retries never produce divergent results).
type ClusterStats struct {
	// Supervision: the per-worker health state machine's census.
	WorkersAlive   int `json:"workers_alive"`
	WorkersSuspect int `json:"workers_suspect"`
	WorkersDead    int `json:"workers_dead"`

	// Capacity: advertised slots across live workers vs. slots holding a
	// lease right now.
	CapacitySlots int `json:"capacity_slots"`
	LeasedSlots   int `json:"leased_slots"`
	LeasesActive  int `json:"leases_active"`

	// Lease traffic.
	JobsDispatched   uint64 `json:"jobs_dispatched"`
	JobsCompleted    uint64 `json:"jobs_completed"`
	JobsRedispatched uint64 `json:"jobs_redispatched"`
	JobsReturned     uint64 `json:"jobs_returned"`
	JobsLate         uint64 `json:"jobs_late"`
	JobsDivergent    uint64 `json:"jobs_divergent"`
	DispatchRetries  uint64 `json:"dispatch_retries"`

	// Workers is the per-worker detail, sorted by id.
	Workers []WorkerStatus `json:"workers"`
}

// WorkerStatus is one worker's supervision snapshot.
type WorkerStatus struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"` // alive | suspect | dead
	Capacity int    `json:"capacity"`
	InFlight int    `json:"in_flight"`
	// ConsecFailures is the dispatch circuit breaker's failure streak;
	// BreakerOpen reports whether it is holding dispatches off this worker.
	ConsecFailures int  `json:"consec_failures"`
	BreakerOpen    bool `json:"breaker_open"`
	// LastHeartbeatMS is milliseconds since the worker's last heartbeat.
	LastHeartbeatMS int64 `json:"last_heartbeat_ms"`
}
