package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

// TestHealthzReadyzSplit pins the liveness/readiness contract: /healthz
// answers 200 whenever the process can serve at all (even draining — it
// still holds the cache), while /readyz flips to 503 with Retry-After the
// moment the server would shed new simulation work. Orchestrators gate
// restarts on the former and routing on the latter; conflating them kills
// cache-serving processes.
func TestHealthzReadyzSplit(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) (int, string, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decoding body: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Retry-After"), body
	}

	if code, _, body := get("/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy /healthz = %d %v, want 200 ok", code, body)
	}
	if code, _, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("healthy /readyz = %d %v, want 200 ready", code, body)
	}

	svc.SetDraining(true)
	if code, _, body := get("/healthz"); code != http.StatusOK || body["status"] != "draining" {
		t.Fatalf("draining /healthz = %d %v, want 200 draining (liveness must not fail)", code, body)
	}
	code, retryAfter, body := get("/readyz")
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining /readyz = %d %v, want 503 draining", code, body)
	}
	if retryAfter == "" {
		t.Error("draining /readyz missing Retry-After hint")
	}
	if err := service.NewClient(ts.URL).Healthz(context.Background()); err != nil {
		t.Errorf("client Healthz during drain: %v, want nil", err)
	}

	svc.SetDraining(false)
	if code, _, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after drain lifted = %d, want 200", code)
	}
	if err := service.NewClient(ts.URL).Readyz(context.Background()); err != nil {
		t.Errorf("client Readyz on ready server: %v, want nil", err)
	}
}

// truncatingHandler serves the wrapped handler, except that the first /run
// response is cut off mid-body: the declared Content-Length is never
// satisfied, so the Go server closes the connection and the client observes
// a 200 followed by a truncated JSON stream — exactly what a worker killed
// between header and body flush looks like.
type truncatingHandler struct {
	inner    http.Handler
	requests atomic.Int32
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/run" && h.requests.Add(1) == 1 {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "65536")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"key": "truncated-mid-`)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestClientRetriesTruncatedResponse pins the truncation-retry contract: a
// 200 whose body is cut short is a transport fault, not a protocol error —
// the client must retry, and determinism plus content addressing make the
// retry coalesce onto the same result.
func TestClientRetriesTruncatedResponse(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	h := &truncatingHandler{inner: svc.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := &service.Client{
		BaseURL: ts.URL,
		Retry:   service.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	resp, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatalf("client must survive one truncated response: %v", err)
	}
	if got := h.requests.Load(); got != 2 {
		t.Errorf("requests = %d, want 2 (1 truncated + 1 retry)", got)
	}
	if resp.Results == nil {
		t.Fatal("retried run returned no results")
	}

	// The retried attempt hit a fully-computed server-side result, so a
	// direct re-run must be a cache hit with the same content address.
	again, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.ConfigHash != resp.ConfigHash {
		t.Errorf("rerun: hit=%v hash=%q, want cache hit with hash %q", again.CacheHit, again.ConfigHash, resp.ConfigHash)
	}
}

// TestClientDoesNotRetryMalformedBody is the negative space of the above: a
// COMPLETE body that fails to decode is a protocol bug, and retrying it
// would hammer a broken server. One attempt, hard error.
func TestClientDoesNotRetryMalformedBody(t *testing.T) {
	var requests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"key": 12, "results": "not-an-object"}`)
	}))
	defer ts.Close()

	client := &service.Client{
		BaseURL: ts.URL,
		Retry:   service.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	if _, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"}); err == nil {
		t.Fatal("malformed body must surface an error")
	}
	if got := requests.Load(); got != 1 {
		t.Errorf("requests = %d, want 1 (malformed complete bodies are not retryable)", got)
	}
}

// TestStatsSurfaceQuarantineWriteFailures pins the observability half of
// the degraded-store contract: when recovery condemns corrupt bytes but the
// quarantine/ directory refuses writes, the store still serves — and /stats
// must report the dropped forensic evidence so operators see the disk going
// bad before it takes reads with it.
func TestStatsSurfaceQuarantineWriteFailures(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Put("doomed", []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("survivor", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the segment's tail on disk, then reopen through an FS whose
	// store root refuses the quarantine/ subdirectory.
	seg := filepath.Join(dir, "seg-00000000.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	fs := faultfs.New(nil)
	fs.OnMkdirAll = func(d string) error {
		if strings.Contains(d, "quarantine") {
			return fmt.Errorf("mkdir %s: %w", d, faultfs.ErrInjected)
		}
		return nil
	}
	degraded, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatalf("degraded store must open: %v", err)
	}
	defer degraded.Close()

	svc := service.New(service.Options{Workers: 1, Store: degraded})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st, err := service.NewClient(ts.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreQuarantineWriteFailures != 1 {
		t.Errorf("store_quarantine_write_failures = %d, want 1", st.StoreQuarantineWriteFailures)
	}
	if st.StoreCorruptQuarantined == 0 {
		t.Error("store_corrupt_quarantined = 0, want the torn record counted")
	}
	if st.StoreRecords != 1 {
		t.Errorf("store_records = %d, want 1 (the intact record)", st.StoreRecords)
	}
}
