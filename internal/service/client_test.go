package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		d    time.Duration
		ok   bool
		name string
	}{
		{"", 0, false, "absent"},
		{"garbage", 0, false, "malformed"},
		{"-3", 0, false, "negative seconds"},
		{"0", 0, true, "explicit zero (immediate retry)"},
		{"2", 2 * time.Second, true, "delay-seconds"},
		{time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat), 0, true, "past HTTP-date"},
	}
	for _, c := range cases {
		d, ok := parseRetryAfter(c.in)
		if d != c.d || ok != c.ok {
			t.Errorf("%s: parseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.name, c.in, d, ok, c.d, c.ok)
		}
	}
	// Future HTTP-date: the delay is the distance from now, so assert a
	// window rather than an exact value.
	future := time.Now().UTC().Add(90 * time.Second).Format(http.TimeFormat)
	d, ok := parseRetryAfter(future)
	if !ok || d <= 80*time.Second || d > 91*time.Second {
		t.Errorf("future HTTP-date: parseRetryAfter(%q) = (%v, %v)", future, d, ok)
	}
}

// TestRetryDelayHonorsHints pins the delay policy's hint handling: an
// explicit zero hint retries immediately, a long hint floors the jittered
// backoff, and no hint leaves the backoff window intact.
func TestRetryDelayHonorsHints(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	if d := p.delay(1, 0, true); d != 0 {
		t.Errorf("explicit zero hint: delay = %v, want 0", d)
	}
	if d := p.delay(1, time.Minute, true); d != time.Minute {
		t.Errorf("long hint: delay = %v, want 1m", d)
	}
	if d := p.delay(1, 0, false); d > 4*time.Millisecond {
		t.Errorf("no hint: delay = %v beyond MaxDelay", d)
	}
}

// TestClientRetries429 checks 429 is retryable (it was not, historically:
// only 502/503/504 were) and that "Retry-After: 0" produces an immediate
// second attempt.
func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	// A prohibitive backoff proves the zero hint bypasses it: the test
	// would time out if the client slept its configured delay.
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("429 then 200: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want 2", n)
	}
}

// TestClientRetryAfterHTTPDate checks the RFC 9110 HTTP-date form is
// honored: historically it failed strconv.Atoi and was silently dropped.
func TestClientRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// A date already passed: hint decays to an immediate retry.
			w.Header().Set("Retry-After", time.Now().UTC().Add(-time.Minute).Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("503 with HTTP-date then 200: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want 2", n)
	}
}
