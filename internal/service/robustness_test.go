package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/system"
	"repro/internal/workload"
)

// openStore opens the durable store at dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// jobKey computes the content address the service will use for job,
// normalizing the nil config exactly the way the server does.
func jobKey(job service.Job) string {
	cfg := system.DefaultConfig(job.Scheme)
	job.Config = &cfg
	return job.Key()
}

// TestCrashRestartWarmLoad is the tentpole acceptance test: a server
// computes results into the store, the process dies without any shutdown
// (the handle is simply abandoned, as after SIGKILL), and a fresh server
// over the same directory serves every job as a cache hit with zero
// re-simulation and byte-identical results.
func TestCrashRestartWarmLoad(t *testing.T) {
	dir := t.TempDir()
	jobs := []service.Job{
		{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny},
		{Workload: "reduce", Scheme: system.SchemeHMC, Scale: workload.ScaleTiny},
	}

	st1 := openStore(t, dir)
	svc1 := service.New(service.Options{Workers: 2, Store: st1})
	first := make([][]byte, len(jobs))
	for i, job := range jobs {
		res, hit, err := svc1.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("job %d: first run reported a cache hit", i)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = b
	}
	// Crash: st1 is never Closed, never Synced again — just abandoned.

	st2 := openStore(t, dir)
	defer st2.Close()
	svc2 := service.New(service.Options{Workers: 2, Store: st2})
	if st := svc2.Stats(); st.StoreRecordsLoaded != uint64(len(jobs)) {
		t.Fatalf("StoreRecordsLoaded = %d after restart, want %d", st.StoreRecordsLoaded, len(jobs))
	}
	for i, job := range jobs {
		res, hit, err := svc2.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("job %d: restarted server missed the cache", i)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		// JSON comparison, not DeepEqual: a decode round trip may turn empty
		// slices into nil, but the serialized observable result must match.
		if !bytes.Equal(b, first[i]) {
			t.Errorf("job %d: restarted result differs from original", i)
		}
	}
	st := svc2.Stats()
	if st.SimsStarted != 0 {
		t.Errorf("SimsStarted = %d after restart, want 0 (warm-loaded)", st.SimsStarted)
	}
	if st.StoreBytesOnDisk == 0 || st.StoreRecords != uint64(len(jobs)) {
		t.Errorf("store gauges: bytes=%d records=%d, want bytes>0 records=%d",
			st.StoreBytesOnDisk, st.StoreRecords, len(jobs))
	}
}

// TestUndecodableStoredRecordRecomputed covers the service-level last line
// of defense: a record whose bytes are intact (store checksums pass) but
// whose value no longer decodes as Results is skipped at boot, counted, and
// the job transparently recomputes.
func TestUndecodableStoredRecordRecomputed(t *testing.T) {
	dir := t.TempDir()
	job := service.Job{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny}

	st1 := openStore(t, dir)
	if err := st1.Put(jobKey(job), []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	svc := service.New(service.Options{Workers: 2, Store: st2})
	if st := svc.Stats(); st.StoreRecordsLoaded != 0 || st.StoreCorruptQuarantined != 1 {
		t.Fatalf("loaded=%d quarantined=%d, want 0 and 1", st.StoreRecordsLoaded, st.StoreCorruptQuarantined)
	}
	res, hit, err := svc.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("undecodable record was served as a cache hit")
	}
	want := direct(t, system.SchemeARFtid, "mac")
	got, _ := json.Marshal(res)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Error("recomputed result differs from direct run")
	}
}

// faultyTransport injects connection-level failures into the first n
// round trips, then delegates to the real transport.
type faultyTransport struct {
	failures atomic.Int64 // remaining injected failures
	attempts atomic.Int64
}

func (f *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if f.failures.Add(-1) >= 0 {
		return nil, errors.New("read tcp: connection reset by peer (injected)")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestClientRetriesTransportFaults pins the degradation contract: injected
// connection resets are retried with backoff and the final result is
// unaffected by the faults; exhausting the attempt budget surfaces the
// error.
func TestClientRetriesTransportFaults(t *testing.T) {
	svc := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rt := &faultyTransport{}
	rt.failures.Store(2)
	client := &service.Client{
		BaseURL: ts.URL,
		HTTP:    &http.Client{Transport: rt},
		Retry:   service.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	resp, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if got := rt.attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (2 injected failures + 1 success)", got)
	}
	want := direct(t, system.SchemeARFtid, "mac")
	gotB, _ := json.Marshal(resp.Results)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(gotB, wantB) {
		t.Error("result served through faults differs from direct run")
	}

	// Exhausted attempts: every round trip fails, the last error surfaces.
	rt2 := &faultyTransport{}
	rt2.failures.Store(1 << 30)
	client.HTTP = &http.Client{Transport: rt2}
	_, err = client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err == nil {
		t.Fatal("expected error after exhausting retries")
	}
	if got := rt2.attempts.Load(); got != 4 {
		t.Errorf("attempts = %d, want MaxAttempts=4", got)
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("error %q does not carry the transport failure", err)
	}
}

// TestJobTimeoutReleasesBudget pins the deadline path: a job stuck behind
// a saturated worker budget is abandoned at its deadline with
// DeadlineExceeded (the slot-release guarantee for hung requests), the
// timeout counter ticks, and no budget slot leaks.
func TestJobTimeoutReleasesBudget(t *testing.T) {
	svc := service.New(service.Options{Workers: 1, JobTimeout: 5 * time.Millisecond})
	// Saturate the single worker slot so the job queues; its deadline must
	// fire while it waits, releasing the request within a bounded interval.
	if err := svc.Budget().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	job := service.Job{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny}
	_, _, err := svc.Run(context.Background(), job)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	svc.Budget().Release()
	st := svc.Stats()
	if st.JobsTimedOut != 1 {
		t.Errorf("JobsTimedOut = %d, want 1", st.JobsTimedOut)
	}
	if st.FailedRequests != 1 {
		t.Errorf("FailedRequests = %d, want 1", st.FailedRequests)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("budget leaked: InFlight=%d QueueDepth=%d, want 0/0", st.InFlight, st.QueueDepth)
	}
	// A failed computation is not cached: the same job on a healthy server
	// must run fresh.
	svc2 := service.New(service.Options{Workers: 1})
	if _, hit, err := svc2.Run(context.Background(), job); err != nil || hit {
		t.Fatalf("healthy rerun: hit=%v err=%v, want fresh success", hit, err)
	}
}

// TestDrainShedsNewWork pins the load-shedding contract over the real HTTP
// stack: while draining, cached jobs keep serving, while a job needing a
// new simulation gets 503 with a Retry-After hint; flipping drain off
// restores service.
func TestDrainShedsNewWork(t *testing.T) {
	svc := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)

	cached := service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"}
	if _, err := client.Run(context.Background(), cached); err != nil {
		t.Fatal(err)
	}

	svc.SetDraining(true)
	resp, err := client.Run(context.Background(), cached)
	if err != nil {
		t.Fatalf("cached job refused during drain: %v", err)
	}
	if !resp.CacheHit {
		t.Error("cached job re-simulated during drain")
	}

	body, _ := json.Marshal(service.RunRequest{Workload: "reduce", Scheme: "HMC", Scale: "tiny"})
	httpResp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new job during drain: HTTP %d, want 503", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestsShed == 0 {
		t.Error("RequestsShed = 0 after a shed request")
	}
	if !st.Draining {
		t.Error("Stats.Draining = false while draining")
	}

	svc.SetDraining(false)
	if _, err := client.Run(context.Background(), service.RunRequest{Workload: "reduce", Scheme: "HMC", Scale: "tiny"}); err != nil {
		t.Fatalf("job after drain lifted: %v", err)
	}
}
