package service

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// TestServerSweepWarmStarts checks the service's prefix-shared sweep path:
// the flowtable study (which declares a PrefixCycle) persists family
// checkpoints to the snapshot store, and a server restarted over the same
// store warm-starts every family leader while producing the identical
// result grid.
func TestServerSweepWarmStarts(t *testing.T) {
	dir := t.TempDir()
	snaps, err := store.Open(dir, store.Options{SegmentPrefix: "snap"})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Snapshots: snaps})
	first, err := s1.Sweep(context.Background(), "flowtable", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.SweepForkResumes == 0 || st.SweepWarmStarts != 0 {
		t.Fatalf("first sweep stats: forks=%d warm=%d", st.SweepForkResumes, st.SweepWarmStarts)
	}
	if snaps.Len() == 0 {
		t.Fatal("sweep persisted no checkpoints")
	}
	snaps.Close()

	reopened, err := store.Open(dir, store.Options{SegmentPrefix: "snap"})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Snapshots: reopened})
	second, err := s2.Sweep(context.Background(), "flowtable", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.SweepWarmStarts == 0 {
		t.Fatalf("restarted server took no warm starts: %+v", st)
	}
	if !reflect.DeepEqual(second, first) {
		t.Error("warm-started sweep diverged from the cold one")
	}
}
