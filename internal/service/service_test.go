package service_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workload"
)

// direct runs a job the way a standalone caller would, bypassing the
// service entirely; served results must be bit-identical to this.
func direct(t *testing.T, sch system.Scheme, wl string) *system.Results {
	t.Helper()
	sys, err := system.New(system.DefaultConfig(sch), wl, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunMatchesDirect pins the acceptance criterion that a served result
// is bit-identical to a direct experiments-style run, and that the repeat
// request is a cache hit returning the same result.
func TestRunMatchesDirect(t *testing.T) {
	s := service.New(service.Options{Workers: 2})
	job := service.Job{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny}

	got, hit, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request reported a cache hit")
	}
	want := direct(t, system.SchemeARFtid, "mac")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served results differ from direct run: cycles %d vs %d", got.Cycles, want.Cycles)
	}

	again, hit, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("repeat request missed the cache")
	}
	if again != got {
		t.Error("cache hit returned a different Results pointer (re-simulated?)")
	}
	if st := s.Stats(); st.SimsStarted != 1 {
		t.Errorf("SimsStarted = %d after one distinct job, want 1", st.SimsStarted)
	}
}

// TestInvalidJobs exercises the request gate.
func TestInvalidJobs(t *testing.T) {
	s := service.New(service.Options{Workers: 1})
	bad := []service.Job{
		{Workload: "no_such_benchmark", Scheme: system.SchemeHMC, Scale: workload.ScaleTiny},
		{Workload: "mac", Scheme: system.SchemeHMC, Scale: workload.Scale(99)},
		{Workload: "mac", Scheme: system.Scheme(42), Scale: workload.ScaleTiny},
	}
	for _, job := range bad {
		if _, _, err := s.Run(context.Background(), job); err == nil {
			t.Errorf("job %+v: expected error", job)
		}
	}
	cfg := system.DefaultConfig(system.SchemeHMC)
	cfg.Threads = -1
	if _, _, err := s.Run(context.Background(), service.Job{
		Workload: "mac", Scheme: system.SchemeHMC, Scale: workload.ScaleTiny, Config: &cfg,
	}); err == nil {
		t.Error("invalid config: expected error")
	}
	if st := s.Stats(); st.SimsStarted != 0 {
		t.Errorf("invalid jobs started %d simulations, want 0", st.SimsStarted)
	}
}

// TestSingleflightHTTP hammers /run through a real HTTP stack: many
// concurrent identical requests plus several distinct ones. Exactly one
// simulation must run per distinct key (the cache-hit path does zero
// simulation work — pinned by the SimsStarted counter), and every caller
// must receive the correct, bit-identical results. Run under -race this is
// also the service's data-race test.
func TestSingleflightHTTP(t *testing.T) {
	svc := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)

	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}

	const identical = 24
	distinct := []service.RunRequest{
		{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"},
		{Workload: "mac", Scheme: "HMC", Scale: "tiny"},
		{Workload: "reduce", Scheme: "ARF-tid", Scale: "tiny"},
		{Workload: "reduce", Scheme: "ART", Scale: "tiny"},
		{Workload: "backprop", Scheme: "DRAM", Scale: "tiny"},
	}
	// distinct[0] is also the identical-request target, so the distinct
	// key count is len(distinct).
	var wg sync.WaitGroup
	responses := make([]*service.RunResponse, identical+len(distinct))
	errs := make([]error, identical+len(distinct))
	for i := 0; i < identical+len(distinct); i++ {
		req := distinct[0]
		if i >= identical {
			req = distinct[i-identical]
		}
		wg.Add(1)
		go func(i int, req service.RunRequest) {
			defer wg.Done()
			responses[i], errs[i] = client.Run(context.Background(), req)
		}(i, req)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Every caller got the right answer, bit-identical to a direct run.
	for _, req := range distinct {
		sch, err := system.ParseScheme(req.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		want := direct(t, sch, req.Workload)
		for i, resp := range responses {
			if resp.Workload != req.Workload || resp.Scheme != req.Scheme {
				continue
			}
			if !reflect.DeepEqual(resp.Results, want) {
				t.Errorf("response %d (%s/%s): results differ from direct run (cycles %d vs %d)",
					i, req.Scheme, req.Workload, resp.Results.Cycles, want.Cycles)
			}
		}
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SimsStarted != uint64(len(distinct)) {
		t.Errorf("SimsStarted = %d, want %d (one per distinct key)", st.SimsStarted, len(distinct))
	}
	if st.SimsCompleted != uint64(len(distinct)) {
		t.Errorf("SimsCompleted = %d, want %d", st.SimsCompleted, len(distinct))
	}
	wantHits := uint64(identical + len(distinct) - len(distinct))
	if st.CacheHits+st.CacheMisses != uint64(identical+len(distinct)) {
		t.Errorf("hits+misses = %d, want %d requests accounted", st.CacheHits+st.CacheMisses, identical+len(distinct))
	}
	if st.CacheMisses != uint64(len(distinct)) {
		t.Errorf("CacheMisses = %d, want %d (the singleflight leaders)", st.CacheMisses, len(distinct))
	}
	if st.CacheHits != wantHits {
		t.Errorf("CacheHits = %d, want %d (every non-leader request)", st.CacheHits, wantHits)
	}
}

// TestSweepHTTP runs a built-in study through /sweep on the shared budget
// and cross-checks one point against a direct run.
func TestSweepHTTP(t *testing.T) {
	svc := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)

	res, err := client.Sweep(context.Background(), service.SweepRequest{Study: "linkbw", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("sweep returned no points")
	}
	for _, p := range res.Points {
		if p.Cycles == 0 {
			t.Errorf("point %d (%v %s/%s): zero cycles", p.Index, p.Coords, p.Scheme, p.Workload)
		}
	}
}

// TestFigureHTTP derives a figure through the cache-assembled suite and
// checks the cache absorbed the overlapping second request.
func TestFigureHTTP(t *testing.T) {
	svc := service.New(service.Options{Workers: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)

	fig, err := client.Figure(context.Background(), "5.1b", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if fig.Figure != "5.1b" || len(fig.Data) == 0 {
		t.Fatalf("unexpected figure response %+v", fig)
	}
	started := svc.Stats().SimsStarted

	// 5.2b derives from the same microbenchmark suite: zero new sims.
	if _, err := client.Figure(context.Background(), "5.2b", "tiny"); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SimsStarted != started {
		t.Errorf("figure repeat started %d new sims, want 0", st.SimsStarted-started)
	}

	if _, err := client.Figure(context.Background(), "nope", "tiny"); err == nil {
		t.Error("unknown figure id: expected error")
	}
}

// TestSimShardsKernelTransparent pins two contracts of the sharded-kernel
// daemon option: results served off the sharded kernel are bit-identical
// to direct sequential runs, and the kernel choice never fragments the
// cache — a sequential re-request of the same job is a pure hit.
func TestSimShardsKernelTransparent(t *testing.T) {
	s := service.New(service.Options{Workers: 4, SimShards: 2})
	job := service.Job{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny}
	res, hit, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run reported a cache hit")
	}
	if want := direct(t, system.SchemeARFtid, "mac"); !reflect.DeepEqual(res, want) {
		t.Fatal("sharded-kernel served result differs from a direct sequential run")
	}
	// The same job with an explicitly sequential config must hit the cache:
	// Shards/Workers are excluded from the key.
	cfg := system.DefaultConfig(system.SchemeARFtid)
	seqJob := service.Job{Workload: "mac", Scheme: system.SchemeARFtid, Scale: workload.ScaleTiny, Config: &cfg}
	res2, hit2, err := s.Run(context.Background(), seqJob)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("sequential re-request of a sharded-kernel result missed the cache")
	}
	if !reflect.DeepEqual(res2, res) {
		t.Fatal("cache returned a different result")
	}
}
