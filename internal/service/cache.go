package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/system"
)

// resultCache is a sharded, content-addressed map from job key to simulation
// result with singleflight de-duplication: the first requester of a key
// becomes the leader and computes; everyone else arriving before completion
// waits on the same entry. Sharding keeps the lock a leader holds while
// publishing an entry from serializing unrelated keys.
type resultCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is one key's slot. done is closed when res/err are final;
// until then the entry is an in-flight computation waiters block on.
type cacheEntry struct {
	done chan struct{}
	res  *system.Results
	err  error
}

func newResultCache(shards int) *resultCache {
	if shards <= 0 {
		shards = 16
	}
	c := &resultCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// do returns key's result, computing it at most once across concurrent
// callers. The bool reports a cache hit: true when the result came from an
// existing entry (completed or coalesced onto an in-flight leader), false
// for the leader that ran compute. A failed computation is not cached —
// the entry is removed before waiters are released, so the next request
// retries — but in-flight waiters do observe the leader's error.
func (c *resultCache) do(ctx context.Context, key string, compute func() (*system.Results, error)) (*system.Results, bool, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err == nil, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	// The cleanup runs via defer so a panicking compute (net/http recovers
	// handler panics and keeps the daemon up) still releases waiters with
	// an error and leaves the key retryable instead of bricked behind a
	// never-closed done channel.
	finished := false
	defer func() {
		if !finished {
			e.err = fmt.Errorf("service: computation for key %s panicked", key)
		}
		if e.err != nil {
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
		}
		close(e.done)
	}()
	e.res, e.err = compute()
	finished = true
	return e.res, false, e.err
}

// has reports whether key has an entry (completed or in-flight). It is the
// load-shedding probe: requests resolvable without a new simulation are
// admitted even when the queue is full.
func (c *resultCache) has(key string) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	_, ok := sh.m[key]
	sh.mu.Unlock()
	return ok
}

// seed installs a completed entry (a result recovered from the durable
// store at boot). First writer wins; a concurrent in-flight computation for
// the key is left alone. Reports whether the entry was installed.
func (c *resultCache) seed(key string, res *system.Results) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false
	}
	e := &cacheEntry{done: make(chan struct{}), res: res}
	close(e.done)
	sh.m[key] = e
	return true
}

// len counts completed and in-flight entries across shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
