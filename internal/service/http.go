package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/system"
	"repro/internal/workload"
)

// RunRequest is the wire form of a Job: scheme and scale travel as their
// CLI spellings, and the optional config is the full system.Config (its
// Scheme field is overridden by the request's scheme).
type RunRequest struct {
	Workload string         `json:"workload"`
	Scheme   string         `json:"scheme"`
	Scale    string         `json:"scale"`
	Config   *system.Config `json:"config,omitempty"`
}

// job parses the wire request into a Job.
func (r *RunRequest) job() (Job, error) {
	sch, err := system.ParseScheme(r.Scheme)
	if err != nil {
		return Job{}, err
	}
	scale, err := workload.ParseScale(r.Scale)
	if err != nil {
		return Job{}, err
	}
	return Job{Workload: r.Workload, Scheme: sch, Scale: scale, Config: r.Config}, nil
}

// RunResponse is /run's reply: the job echo, its content address, whether
// the cache served it, and the full simulation results.
type RunResponse struct {
	Workload   string          `json:"workload"`
	Scheme     string          `json:"scheme"`
	Scale      string          `json:"scale"`
	ConfigHash string          `json:"config_hash"`
	CacheHit   bool            `json:"cache_hit"`
	Results    *system.Results `json:"results"`
}

// SweepRequest is /sweep's wire form: a built-in study name plus a scale.
type SweepRequest struct {
	Study string `json:"study"`
	Scale string `json:"scale"`
}

// FigureResponse wraps /figures/{id}'s derived data table.
type FigureResponse struct {
	Figure string `json:"figure"`
	Scale  string `json:"scale"`
	Data   any    `json:"data"`
}

// Handler returns the service's HTTP mux:
//
//	POST /run          RunRequest -> RunResponse
//	POST /sweep        SweepRequest -> sweep.Result
//	GET  /figures/{id} ?scale=tiny -> FigureResponse
//	GET  /healthz      liveness (always 200 while the process serves)
//	GET  /readyz       readiness (503 while draining or with no live workers)
//	GET  /stats        Stats snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Register installs the service routes on mux, so cmd/arserved can mount
// additional route families (the cluster coordinator's internal protocol)
// on the same listener.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /figures/{id}", s.handleFigure)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
}

// writeJSON emits one JSON body; encoding errors after the header is out
// are connection-level and not recoverable, so they are ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an error to a JSON problem body: request-shaped failures
// (unknown workload/scheme/scale/figure, invalid config) are 400s, shed load
// a 503 with Retry-After so well-behaved clients back off, everything else
// a 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// retryAfterSeconds is the Retry-After hint sent with shed requests. Jobs
// are short at service scales; a single-digit pause clears most bursts.
const retryAfterSeconds = "2"

// errBadRequest marks request-shaped failures for status mapping.
var errBadRequest = errors.New("bad request")

// badRequest wraps err so writeError reports 400.
func badRequest(err error) error { return fmt.Errorf("%w: %w", errBadRequest, err) }

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(fmt.Errorf("decoding RunRequest: %w", err)))
		return
	}
	job, err := req.job()
	if err != nil {
		writeError(w, badRequest(err))
		return
	}
	norm, err := job.normalize()
	if err != nil {
		writeError(w, badRequest(err))
		return
	}
	res, hit, err := s.runNormalized(r.Context(), norm)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &RunResponse{
		Workload:   job.Workload,
		Scheme:     job.Scheme.String(),
		Scale:      job.Scale.String(),
		ConfigHash: norm.Config.Hash(),
		CacheHit:   hit,
		Results:    res,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(fmt.Errorf("decoding SweepRequest: %w", err)))
		return
	}
	scale, err := workload.ParseScale(req.Scale)
	if err != nil {
		writeError(w, badRequest(err))
		return
	}
	res, err := s.Sweep(r.Context(), req.Study, scale)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	scaleName := r.URL.Query().Get("scale")
	if scaleName == "" {
		scaleName = "tiny"
	}
	scale, err := workload.ParseScale(scaleName)
	if err != nil {
		writeError(w, badRequest(err))
		return
	}
	id := r.PathValue("id")
	known := false
	for _, f := range FigureIDs() {
		if f == id {
			known = true
			break
		}
	}
	if !known {
		writeError(w, badRequest(fmt.Errorf("unknown figure %q (want one of %v)", id, FigureIDs())))
		return
	}
	data, err := s.Figure(r.Context(), id, scale)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &FigureResponse{Figure: id, Scale: scale.String(), Data: data})
}

// handleHealthz is LIVENESS: it answers 200 whenever the process can serve
// at all — a draining daemon or a coordinator with zero workers still
// serves every cached result, and killing it would lose that. Orchestrators
// gate restarts on this and routing on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "workers": s.budget.Cap()})
}

// handleReadyz is READINESS: 503 (with Retry-After) while the server would
// shed new simulation work — draining for shutdown, or a cluster
// coordinator whose fleet has no live workers. Orchestrators stop routing
// NEW work here without killing the cache-serving process.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case !s.exec.Ready():
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no-live-workers"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
