package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/sweep"
)

// Client is the Go client for an arserved daemon. The zero HTTP client is
// usable; BaseURL is the daemon root (e.g. "http://localhost:8080").
type Client struct {
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call performs one JSON round trip; in decodes into out (out may be nil).
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("service client: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var problem struct {
			Error string `json:"error"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&problem); derr == nil && problem.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, problem.Error, resp.StatusCode)
		}
		return fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service client: decoding %s response: %w", path, err)
	}
	return nil
}

// Run submits one simulation job and returns the (possibly cached) result.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	if err := c.call(ctx, http.MethodPost, "/run", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep runs a named built-in study on the daemon.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*sweep.Result, error) {
	var out sweep.Result
	if err := c.call(ctx, http.MethodPost, "/sweep", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Figure fetches one derived figure; the data table is returned raw so
// callers can decode into the figure's concrete type or feed it to tooling.
func (c *Client) Figure(ctx context.Context, id, scale string) (*RawFigure, error) {
	var out RawFigure
	path := "/figures/" + url.PathEscape(id) + "?scale=" + url.QueryEscape(scale)
	if err := c.call(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RawFigure is FigureResponse with the data table left undecoded.
type RawFigure struct {
	Figure string          `json:"figure"`
	Scale  string          `json:"scale"`
	Data   json.RawMessage `json:"data"`
}

// Stats fetches the daemon's statistics snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.call(ctx, http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}
