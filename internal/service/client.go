package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/sweep"
)

// Client is the Go client for an arserved daemon. The zero HTTP client is
// usable; BaseURL is the daemon root (e.g. "http://localhost:8080").
type Client struct {
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry enables idempotent retries. Every daemon request is safe to
	// retry — jobs are content-addressed and the simulator deterministic,
	// so a duplicate submission coalesces onto the cache entry instead of
	// recomputing. The zero value disables retries.
	Retry RetryPolicy
}

// RetryPolicy bounds the client's retry loop for transport errors and
// retryable HTTP statuses (429/502/503/504). Backoff is exponential from
// BaseDelay, capped at MaxDelay, with full jitter; a server Retry-After
// hint (delay-seconds or HTTP-date) overrides the computed delay when
// longer.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; 0 or 1 means no retries.
	MaxAttempts int
	// BaseDelay is the first backoff step; 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// delay computes the backoff before attempt n (1-based count of failures so
// far): full jitter over an exponentially growing window, floored by the
// server's Retry-After hint when one was sent. An explicit zero hint
// ("Retry-After: 0") means the server invites an immediate retry, which
// overrides the jittered wait — distinct from no hint at all, where the
// client's own backoff stands.
func (p RetryPolicy) delay(n int, retryAfter time.Duration, hasHint bool) time.Duration {
	if hasHint && retryAfter == 0 {
		return 0
	}
	window := p.base() << (n - 1)
	if window <= 0 || window > p.max() {
		window = p.max()
	}
	d := time.Duration(rand.Int64N(int64(window) + 1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// NewClient builds a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call performs a JSON round trip, retrying per c.Retry; in decodes into
// out (out may be nil). The request body is rebuilt from the marshaled
// bytes on every attempt, so a half-consumed failed send never corrupts
// the retry.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("service client: encoding %s request: %w", path, err)
		}
		payload = b
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for n := 1; ; n++ {
		retryable, retryAfter, hasHint, err := c.attempt(ctx, method, path, payload, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || n >= attempts {
			return lastErr
		}
		t := time.NewTimer(c.Retry.delay(n, retryAfter, hasHint))
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("service client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds ("120", "0" meaning retry immediately) or an HTTP-date
// ("Fri, 08 Aug 2026 09:00:00 GMT"), whose delay is the distance from now
// (0 when the date already passed). ok distinguishes an explicit zero hint
// from no usable hint: absent or malformed values report false, and the
// client falls back to its own backoff — never skips the retry.
func parseRetryAfter(v string) (d time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// attempt is one HTTP round trip. retryable reports whether the failure is
// worth another try (transport error, or a 429/502/503/504 status);
// retryAfter carries the server's Retry-After hint when present.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hasBody bool, out any) (retryable bool, retryAfter time.Duration, hasHint bool, err error) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return false, 0, false, fmt.Errorf("service client: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport-level failures (connection reset, refused) are
		// retryable unless the caller's context is what gave out.
		return ctx.Err() == nil, 0, false, fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			retryable = true
			retryAfter, hasHint = parseRetryAfter(resp.Header.Get("Retry-After"))
		}
		var problem struct {
			Error string `json:"error"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&problem); derr == nil && problem.Error != "" {
			return retryable, retryAfter, hasHint, fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, problem.Error, resp.StatusCode)
		}
		return retryable, retryAfter, hasHint, fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return false, 0, false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A response truncated mid-body — the server was killed or the
		// connection reset after the 200 header — is a transport-level
		// failure, not a protocol one, and jobs are content-addressed and
		// deterministic: the retry coalesces onto the same cached result.
		return transportTruncation(err), 0, false, fmt.Errorf("service client: decoding %s response: %w", path, err)
	}
	return false, 0, false, nil
}

// transportTruncation classifies a response-body decode failure: truncation
// and connection-level resets are retryable; a complete-but-malformed body
// (a real protocol bug) is not.
func transportTruncation(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var syntax *json.SyntaxError
	// encoding/json turns a stream that ends inside a value into a
	// SyntaxError("unexpected end of JSON input") instead of wrapping
	// io.ErrUnexpectedEOF; only that truncation form is retryable.
	return errors.As(err, &syntax) && strings.Contains(syntax.Error(), "unexpected end of JSON input")
}

// Run submits one simulation job and returns the (possibly cached) result.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	if err := c.call(ctx, http.MethodPost, "/run", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep runs a named built-in study on the daemon.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*sweep.Result, error) {
	var out sweep.Result
	if err := c.call(ctx, http.MethodPost, "/sweep", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Figure fetches one derived figure; the data table is returned raw so
// callers can decode into the figure's concrete type or feed it to tooling.
func (c *Client) Figure(ctx context.Context, id, scale string) (*RawFigure, error) {
	var out RawFigure
	path := "/figures/" + url.PathEscape(id) + "?scale=" + url.QueryEscape(scale)
	if err := c.call(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RawFigure is FigureResponse with the data table left undecoded.
type RawFigure struct {
	Figure string          `json:"figure"`
	Scale  string          `json:"scale"`
	Data   json.RawMessage `json:"data"`
}

// Stats fetches the daemon's statistics snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.call(ctx, http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz probes daemon readiness: nil means the daemon accepts new
// simulation work; a draining daemon or a coordinator with zero live
// workers answers 503 (still serving cached traffic — check Healthz for
// liveness).
func (c *Client) Readyz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/readyz", nil, nil)
}
