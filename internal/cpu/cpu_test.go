package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// instantMem completes every access after a fixed latency, driven by tick.
type instantMem struct {
	lat     uint64
	pending []struct {
		at   uint64
		done func(uint64)
	}
	accesses int
	refuse   bool
}

func (m *instantMem) Access(addr mem.PAddr, write bool, cycle uint64, done func(uint64)) bool {
	if m.refuse {
		return false
	}
	m.accesses++
	m.pending = append(m.pending, struct {
		at   uint64
		done func(uint64)
	}{cycle + m.lat, done})
	return true
}

func (m *instantMem) tick(cycle uint64) {
	kept := m.pending[:0]
	for _, p := range m.pending {
		if p.at <= cycle {
			p.done(cycle)
		} else {
			kept = append(kept, p)
		}
	}
	m.pending = kept
}

// mockOffload accepts offloads and records them.
type mockOffload struct {
	updates []core.UpdateCmd
	gathers []core.GatherCmd
	refuse  bool
}

func (o *mockOffload) Update(cmd core.UpdateCmd, cycle uint64) bool {
	if o.refuse {
		return false
	}
	o.updates = append(o.updates, cmd)
	return true
}

func (o *mockOffload) Gather(cmd core.GatherCmd, cycle uint64) bool {
	if o.refuse {
		return false
	}
	o.gathers = append(o.gathers, cmd)
	return true
}

func env() (*mem.Store, *mem.AddrSpace) {
	return mem.NewStore(), mem.NewAddrSpace()
}

func runCore(c *Core, m *instantMem, budget int) int {
	for i := 0; i < budget; i++ {
		if m != nil {
			m.tick(uint64(i))
		}
		c.Tick(uint64(i))
		if c.Finished() {
			return i
		}
	}
	return budget
}

func TestCoreRetiresComputeTrace(t *testing.T) {
	st, as := env()
	insts := make([]isa.Inst, 100)
	for i := range insts {
		insts[i] = isa.Inst{Kind: isa.KindCompute, Class: isa.ClassInt}
	}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, nil, st, as, nil)
	if runCore(c, nil, 1000) >= 1000 {
		t.Fatal("core never finished")
	}
	if c.Stats.Retired != 100 || c.Stats.Computes != 100 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestStoreAppliesFunctionally(t *testing.T) {
	st, as := env()
	va := as.Alloc(8, 8)
	insts := []isa.Inst{{Kind: isa.KindStore, Addr: va, Value: 3.25}}
	m := &instantMem{lat: 5}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), m, nil, st, as, nil)
	runCore(c, m, 1000)
	if got := st.ReadF64(as.Translate(va)); got != 3.25 {
		t.Fatalf("store value = %v", got)
	}
	if c.Stats.Stores != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestAtomicAddAccumulates(t *testing.T) {
	st, as := env()
	va := as.Alloc(8, 8)
	st.WriteF64(as.Translate(va), 1)
	insts := []isa.Inst{
		{Kind: isa.KindAtomicAdd, Addr: va, Value: 2},
		{Kind: isa.KindAtomicAdd, Addr: va, Value: 0.5},
	}
	m := &instantMem{lat: 3}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), m, nil, st, as, nil)
	runCore(c, m, 1000)
	if got := st.ReadF64(as.Translate(va)); got != 3.5 {
		t.Fatalf("atomic sum = %v, want 3.5", got)
	}
}

func TestROBLimitsInFlight(t *testing.T) {
	st, as := env()
	va := as.Alloc(1<<16, 64)
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts, isa.Inst{Kind: isa.KindLoad, Addr: va + mem.VAddr(i*64)})
	}
	m := &instantMem{lat: 10000} // memory never answers within the test
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	c := NewCore(0, cfg, isa.NewSliceStream(insts), m, nil, st, as, nil)
	for i := 0; i < 100; i++ {
		c.Tick(uint64(i))
	}
	if m.accesses > cfg.ROBSize {
		t.Fatalf("%d loads in flight with ROB of %d", m.accesses, cfg.ROBSize)
	}
	if c.Stats.ROBFullCycles == 0 {
		t.Fatal("ROB-full stall not counted")
	}
}

func TestUpdateIsFireAndForget(t *testing.T) {
	st, as := env()
	va := as.Alloc(64, 8)
	insts := []isa.Inst{
		{Kind: isa.KindUpdate, Src1: va, Target: va + 8, Op: isa.OpAdd},
		{Kind: isa.KindCompute, Class: isa.ClassInt},
	}
	off := &mockOffload{}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, off, st, as, nil)
	if runCore(c, nil, 100) >= 100 {
		t.Fatal("core stalled on a fire-and-forget update")
	}
	if len(off.updates) != 1 {
		t.Fatal("update not offloaded")
	}
	if off.updates[0].Src1 != as.Translate(va) {
		t.Fatal("update operand not translated to a physical address")
	}
}

func TestGatherFencesDispatch(t *testing.T) {
	st, as := env()
	va := as.Alloc(64, 8)
	insts := []isa.Inst{
		{Kind: isa.KindGather, Target: va, Threads: 1},
		{Kind: isa.KindUpdate, Src1: va, Target: va + 8, Op: isa.OpAdd},
	}
	off := &mockOffload{}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, off, st, as, nil)
	for i := 0; i < 50; i++ {
		c.Tick(uint64(i))
	}
	if len(off.updates) != 0 {
		t.Fatal("update dispatched past an unresolved gather fence")
	}
	if c.Stats.FenceCycles == 0 {
		t.Fatal("fence stall not counted")
	}
	// Release the gather: the update must now flow.
	off.gathers[0].Wake(50)
	for i := 50; i < 100; i++ {
		c.Tick(uint64(i))
	}
	if len(off.updates) != 1 {
		t.Fatal("update never dispatched after fence release")
	}
	if !c.Finished() {
		t.Fatal("core never finished")
	}
}

func TestOffloadBackpressureStalls(t *testing.T) {
	st, as := env()
	va := as.Alloc(64, 8)
	insts := []isa.Inst{{Kind: isa.KindUpdate, Src1: va, Target: va + 8, Op: isa.OpAdd}}
	off := &mockOffload{refuse: true}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, off, st, as, nil)
	for i := 0; i < 20; i++ {
		c.Tick(uint64(i))
	}
	if c.Finished() {
		t.Fatal("core finished despite refused offload")
	}
	if c.Stats.OffloadStalls == 0 {
		t.Fatal("offload stall not counted")
	}
	off.refuse = false
	for i := 20; i < 60; i++ {
		c.Tick(uint64(i))
	}
	if !c.Finished() {
		t.Fatal("core stuck after offload unblocked")
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	st, as := env()
	b := NewBarrier(2)
	mk := func(extra int) *Core {
		var insts []isa.Inst
		for i := 0; i < extra; i++ {
			insts = append(insts, isa.Inst{Kind: isa.KindCompute, Class: isa.ClassInt})
		}
		insts = append(insts, isa.Inst{Kind: isa.KindBarrier})
		insts = append(insts, isa.Inst{Kind: isa.KindCompute, Class: isa.ClassInt})
		return NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, nil, st, as, b)
	}
	fast := mk(0)
	slow := mk(400)
	var fastDone, slowDone int
	for i := 0; i < 10000 && (!fast.Finished() || !slow.Finished()); i++ {
		fast.Tick(uint64(i))
		slow.Tick(uint64(i))
		b.Flush() // deferred release: waiters resume on the next cycle
		if fast.Finished() && fastDone == 0 {
			fastDone = i
		}
		if slow.Finished() && slowDone == 0 {
			slowDone = i
		}
	}
	if fastDone == 0 || slowDone == 0 {
		t.Fatal("cores never finished")
	}
	if b.Crossings != 1 {
		t.Fatalf("barrier crossings = %d", b.Crossings)
	}
	// The fast core must have waited for the slow one.
	if fastDone+60 < slowDone {
		t.Fatalf("fast core finished at %d long before slow core at %d (no barrier wait)", fastDone, slowDone)
	}
}

func TestIPCSeriesAdvances(t *testing.T) {
	st, as := env()
	insts := make([]isa.Inst, 1<<15)
	for i := range insts {
		insts[i] = isa.Inst{Kind: isa.KindCompute, Class: isa.ClassInt}
	}
	c := NewCore(0, DefaultConfig(), isa.NewSliceStream(insts), &instantMem{}, nil, st, as, nil)
	runCore(c, nil, 1<<20)
	if c.IPC.TotalInsts != uint64(len(insts)) {
		t.Fatalf("ipc series counted %d of %d", c.IPC.TotalInsts, len(insts))
	}
	if len(c.IPC.Points) == 0 {
		t.Fatal("no IPC windows closed")
	}
}

func TestMemPortLimit(t *testing.T) {
	st, as := env()
	va := as.Alloc(1<<16, 64)
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{Kind: isa.KindLoad, Addr: va + mem.VAddr(i*64)})
	}
	m := &instantMem{lat: 1}
	cfg := DefaultConfig()
	cfg.MemPorts = 1
	c := NewCore(0, cfg, isa.NewSliceStream(insts), m, nil, st, as, nil)
	c.Tick(0)
	if m.accesses > 1 {
		t.Fatalf("%d loads issued in one cycle with 1 port", m.accesses)
	}
}
