package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FenceKind names the primitive a fenced core is blocked on, recorded at
// issue so checkpoint restore can re-arm the fence.
type FenceKind uint8

const (
	FenceNone FenceKind = iota
	FenceBarrier
	FenceGather
)

// seekable is the stream capability checkpointing needs: every workload
// stream is an isa.SliceStream over a pre-built trace, so the replay
// cursor is the stream's whole state.
type seekable interface {
	Pos() int
	Len() int
	SetPos(int)
}

// Snapshotable reports whether the core's state is capturable: its stream
// must expose a replay cursor, and every in-flight ROB entry must be
// accounted for by a timed call or the fence (an outstanding memory access
// would hold a completion callback inside the cache hierarchy, which the
// system-level quiescence predicate rules out before asking).
func (c *Core) Snapshotable() bool {
	if _, ok := c.stream.(seekable); !ok {
		return false
	}
	pend := 0
	for i := c.robHead; i != c.robTail; i++ {
		if !c.rob[i&c.robMask].done {
			pend++
		}
	}
	if c.fenced {
		pend--
	}
	return pend == len(c.calls)
}

func encInst(e *sim.Enc, in *isa.Inst) {
	e.U32(uint32(in.Kind))
	e.U32(uint32(in.Class))
	e.U64(uint64(in.Addr))
	e.F64(in.Value)
	e.U64(uint64(in.Src1))
	e.U64(uint64(in.Src2))
	e.U64(uint64(in.Target))
	e.U32(uint32(in.Op))
	e.F64(in.Imm)
	e.Int(in.Threads)
	e.Int(in.Count)
}

func decInst(d *sim.Dec, in *isa.Inst) {
	in.Kind = isa.Kind(d.U32())
	in.Class = isa.CompClass(d.U32())
	in.Addr = mem.VAddr(d.U64())
	in.Value = d.F64()
	in.Src1 = mem.VAddr(d.U64())
	in.Src2 = mem.VAddr(d.U64())
	in.Target = mem.VAddr(d.U64())
	in.Op = isa.ALUOp(d.U32())
	in.Imm = d.F64()
	in.Threads = d.Int()
	in.Count = d.Int()
}

// Snapshot appends the core's quiescent-point state: replay cursor, ROB
// ring occupancy with completion flags, pending timed calls as (cycle,
// slot) pairs, fence provenance, stall bookkeeping, stats and IPC series.
// Completion closures are not serialized — they are recreated on restore
// (compute completions through the calls list, fence wakes through
// RearmFence, memory completions impossible at quiescence).
func (c *Core) Snapshot(e *sim.Enc) {
	e.Tag("core")
	e.Int(c.ID)
	e.Int(c.stream.(seekable).Pos())
	e.Bool(c.hasPending)
	encInst(e, &c.pending)
	e.Bool(c.exhausted)
	e.U32(c.robHead)
	e.U32(c.robTail)
	for i := c.robHead; i != c.robTail; i++ {
		e.Bool(c.rob[i&c.robMask].done)
	}
	e.Int(len(c.calls))
	for _, t := range c.calls {
		e.U64(t.at)
		idx := -1
		for j := range c.rob {
			if &c.rob[j] == t.e {
				idx = j
				break
			}
		}
		e.Int(idx)
	}
	fk := c.fenceKind
	var ft mem.PAddr
	if !c.fenced {
		fk = FenceNone
	} else {
		ft = c.fenceTarget
	}
	e.Bool(c.fenced)
	e.U32(uint32(fk))
	e.U64(uint64(ft))
	e.U64(c.lastSeen)
	e.U32(uint32(c.skipReason))
	st := &c.Stats
	for _, v := range []uint64{st.Retired, st.Loads, st.Stores, st.Updates, st.Gathers,
		st.Computes, st.Barriers, st.ROBFullCycles, st.OffloadStalls, st.MemStalls,
		st.FenceCycles, st.DoneCycle} {
		e.U64(v)
	}
	c.IPC.Snapshot(e)
}

// Restore reads the state back into a freshly constructed core. Fences are
// NOT re-armed here — the system calls RearmFence afterwards, in core-ID
// order, once the barrier and coordinator have been restored.
func (c *Core) Restore(d *sim.Dec) {
	d.Tag("core")
	if id := d.Int(); d.Err() == nil && id != c.ID {
		d.Fail("core id mismatch: snapshot %d, machine %d", id, c.ID)
	}
	sk, ok := c.stream.(seekable)
	if !ok {
		d.Fail("core %d stream is not seekable", c.ID)
		return
	}
	pos := d.Int()
	if d.Err() != nil {
		return
	}
	if pos < 0 || pos > sk.Len() {
		d.Fail("core %d stream position %d out of range [0,%d]", c.ID, pos, sk.Len())
		return
	}
	sk.SetPos(pos)
	c.hasPending = d.Bool()
	decInst(d, &c.pending)
	c.exhausted = d.Bool()
	c.robHead = d.U32()
	c.robTail = d.U32()
	if n := c.robTail - c.robHead; n > uint32(len(c.rob)) {
		d.Fail("core %d ROB occupancy %d exceeds capacity %d", c.ID, n, len(c.rob))
		return
	}
	for i := c.robHead; i != c.robTail; i++ {
		c.rob[i&c.robMask].done = d.Bool()
	}
	ncalls := d.Len(len(c.rob), "core timed calls")
	c.calls = c.calls[:0]
	for i := 0; i < ncalls && d.Err() == nil; i++ {
		at := d.U64()
		idx := d.Int()
		if d.Err() != nil {
			return
		}
		if idx < 0 || idx >= len(c.rob) {
			d.Fail("core %d timed call slot %d out of range", c.ID, idx)
			return
		}
		c.calls = append(c.calls, timedCall{at: at, e: &c.rob[idx]})
	}
	c.fenced = d.Bool()
	c.fenceKind = FenceKind(d.U32())
	c.fenceTarget = mem.PAddr(d.U64())
	c.lastSeen = d.U64()
	c.skipReason = skipReason(d.U32())
	st := &c.Stats
	for _, p := range []*uint64{&st.Retired, &st.Loads, &st.Stores, &st.Updates, &st.Gathers,
		&st.Computes, &st.Barriers, &st.ROBFullCycles, &st.OffloadStalls, &st.MemStalls,
		&st.FenceCycles, &st.DoneCycle} {
		*p = d.U64()
	}
	c.IPC.Restore(d)
	if d.Err() == nil && c.fenced {
		if c.fenceKind != FenceBarrier && c.fenceKind != FenceGather {
			d.Fail("core %d fenced with unknown fence kind %d", c.ID, c.fenceKind)
		}
		if c.robLen() == 0 {
			d.Fail("core %d fenced with an empty ROB", c.ID)
		}
	}
}

// RearmFence re-attaches a restored core's fence wake to its primitive:
// barrier fences re-arrive at the core's barrier (wake order across cores
// is commutative — each wake only raises its own core's flags — so
// re-arrival in core-ID order reproduces the original machine state
// bit-identically); gather fences re-attach to the coordinator flow via
// attach, which reports whether the flow exists. It returns false when a
// fence cannot be re-armed (a corrupt or inconsistent snapshot).
func (c *Core) RearmFence(attach func(target mem.PAddr, wake func(cycle uint64)) bool) bool {
	if !c.fenced {
		return true
	}
	e := &c.rob[(c.robTail-1)&c.robMask]
	switch c.fenceKind {
	case FenceBarrier:
		if c.barrier == nil {
			return false
		}
		if e.barrierWake == nil {
			e.barrierWake = func() {
				e.done = true
				c.fenced = false
				c.waker.Wake()
			}
		}
		c.barrier.Arrive(e.barrierWake)
		return true
	case FenceGather:
		if e.gatherWake == nil {
			e.gatherWake = func(uint64) {
				e.done = true
				c.fenced = false
				c.waker.Wake()
			}
		}
		return attach != nil && attach(c.fenceTarget, e.gatherWake)
	}
	return false
}
