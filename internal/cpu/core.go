// Package cpu models the host side of Fig 3.1: trace-driven out-of-order
// cores (ROB occupancy, issue/commit width, memory-port limits) plus the
// thread-synchronization primitives the workloads need (barriers, the
// Gather fence).
//
// Substitution note (DESIGN.md): the thesis drives McSimA+ with
// Pin-instrumented binaries, resolving register dependences exactly. This
// model approximates ILP with ROB capacity and issue/commit widths over the
// workload's instruction mix; the workloads are memory-bound, so timing
// fidelity is dominated by the cache/memory system, which is modeled in
// detail.
package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config sizes one out-of-order core (Table 4.1: 16 cores @2 GHz, 8-wide,
// ROB 64).
type Config struct {
	ROBSize     int
	IssueWidth  int
	CommitWidth int
	MemPorts    int // L1 accesses issued per cycle
	IntLat      uint64
	FPLat       uint64
	FPMulLat    uint64
}

// DefaultConfig returns the Table 4.1 core.
func DefaultConfig() Config {
	return Config{
		ROBSize:     64,
		IssueWidth:  8,
		CommitWidth: 8,
		MemPorts:    2,
		IntLat:      1,
		FPLat:       3,
		FPMulLat:    4,
	}
}

// MemPort is the core's load/store path into its L1.
type MemPort interface {
	Access(addr mem.PAddr, write bool, cycle uint64, done func(cycle uint64)) bool
}

// OffloadPort is the core's Message Interface for the Update/Gather ISA
// extension (§3.1.2). Update is fire-and-forget once accepted; Gather's
// wake callback releases the issuing thread's fence.
type OffloadPort interface {
	Update(cmd core.UpdateCmd, cycle uint64) bool
	Gather(cmd core.GatherCmd, cycle uint64) bool
}

// Stats counts per-core activity.
type Stats struct {
	Retired       uint64
	Loads         uint64
	Stores        uint64
	Updates       uint64
	Gathers       uint64
	Computes      uint64
	Barriers      uint64
	ROBFullCycles uint64
	OffloadStalls uint64
	MemStalls     uint64
	FenceCycles   uint64
	DoneCycle     uint64
}

// robEntry is one ROB slot. Slots live in a fixed ring allocated at core
// construction and are recycled in FIFO order, so the steady-state core
// allocates nothing per instruction. The completion callbacks are created
// lazily, once per slot, and reused for the slot's lifetime — they capture
// only the slot pointer (stable: the ring's backing array never moves), so
// handing them to the memory system or the offload port costs no
// allocation. A callback can never outlive its instruction: an entry is not
// retired until done, and done fires exactly once.
type robEntry struct {
	done bool

	memDone     func(cycle uint64) // load/store completion: done = true
	gatherWake  func(cycle uint64) // gather write-back: done = true, fence drops
	barrierWake func()             // barrier release: done = true, fence drops
}

// Core executes one thread's instruction stream.
type Core struct {
	ID  int
	cfg Config

	stream     isa.Stream
	ptrStream  isa.PtrStream // non-nil when stream hands out pointers (no copy)
	cur        isa.Inst      // scratch for value-based streams
	pending    isa.Inst      // dispatch-blocked instruction (valid iff hasPending)
	hasPending bool
	exhausted  bool

	// ROB ring: fixed power-of-two capacity >= cfg.ROBSize; robHead/robTail
	// wrap via robMask.
	rob     []robEntry
	robMask uint32
	robHead uint32
	robTail uint32

	mem     MemPort
	offload OffloadPort
	store   *mem.Store
	as      *mem.AddrSpace
	barrier *Barrier
	fx      *EffectLog // non-nil under the sharded kernel: staged effects

	fenced bool // Gather or barrier outstanding: dispatch stops

	// Fence provenance, recorded at issue so a checkpoint can re-arm the
	// fence on restore: which primitive holds the thread and — for a
	// Gather — the flow target whose completion wake must re-attach.
	fenceKind   FenceKind
	fenceTarget mem.PAddr

	calls      []timedCall
	callsSpare []timedCall // recycled backing array for the calls queue

	// waker invalidates the engine's cached idle hint; completion
	// callbacks (the core's only external inputs) wake the core.
	waker *sim.Waker

	// Idle-skip bookkeeping: the last cycle NextWork or Tick observed and
	// the stall counter idle-skipped cycles must be credited to, so the
	// stall statistics stay bit-identical to the lockstep kernel.
	lastSeen   uint64
	skipReason skipReason

	Stats Stats
	IPC   *stats.IPCSeries
}

// timedCall is a pending fixed-latency completion (a compute retiring): at
// cycle `at`, entry e is marked done. Storing the target entry instead of a
// closure keeps the dispatch hot path allocation-free.
type timedCall struct {
	at uint64
	e  *robEntry
}

func (c *Core) robLen() int { return int(c.robTail - c.robHead) }

// skipReason records which per-cycle stall counter an idle-skipped stretch
// belongs to, so skipping Ticks leaves the counters bit-identical to the
// lockstep kernel.
type skipReason uint8

const (
	skipNone skipReason = iota
	skipFence
	skipROBFull
)

// NewCore builds core id over the given stream and ports. barrier may be
// nil when the workload never synchronizes.
func NewCore(id int, cfg Config, stream isa.Stream, memPort MemPort, offload OffloadPort,
	store *mem.Store, as *mem.AddrSpace, barrier *Barrier) *Core {
	robCap := 1
	for robCap < cfg.ROBSize {
		robCap <<= 1
	}
	ptrStream, _ := stream.(isa.PtrStream)
	return &Core{
		ID:        id,
		cfg:       cfg,
		stream:    stream,
		ptrStream: ptrStream,
		rob:       make([]robEntry, robCap),
		robMask:   uint32(robCap - 1),
		mem:       memPort,
		offload:   offload,
		store:     store,
		as:        as,
		barrier:   barrier,
		IPC:       stats.NewIPCSeries(1 << 14),
	}
}

// SetWaker implements sim.WakeSetter.
func (c *Core) SetWaker(w *sim.Waker) { c.waker = w }

// SetEffectLog routes the core's global side effects (backing-store writes,
// barrier arrivals) into a per-core staging log instead of applying them
// inline. The sharded kernel installs one log per core and commits them in
// core order at a serial point, which reproduces the sequential kernel's
// interleaving exactly while cores tick on different workers (DESIGN.md
// "Sharded kernel"): store/atomic-add values never depend on prior memory
// contents, so per-core FIFO + core-order commit is bit-identical.
func (c *Core) SetEffectLog(fx *EffectLog) { c.fx = fx }

// Finished reports whether the thread has fully retired.
func (c *Core) Finished() bool {
	return c.exhausted && !c.hasPending && c.robLen() == 0
}

// NextWork implements sim.Idler. The core must tick whenever it can retire,
// fire a timed completion, or dispatch; it is quiescent while fenced, while
// the ROB is full with an incomplete head, or once its stream is drained.
// In the first two states the lockstep kernel's Tick would bump a per-cycle
// stall counter and nothing else, so skipping credits that counter here
// (and catchUp back-fills stretches the engine jumped over entirely),
// keeping the stall statistics bit-identical.
func (c *Core) NextWork(now uint64) uint64 {
	c.catchUp(now)
	if len(c.calls) > 0 {
		return now
	}
	if c.Finished() {
		c.skipReason = skipNone
		return sim.Never
	}
	if c.robLen() > 0 && c.rob[c.robHead&c.robMask].done {
		return now // retirement can progress
	}
	if c.fenced {
		c.skipReason = skipFence
		c.Stats.FenceCycles++
		return sim.Never
	}
	if c.robLen() >= c.cfg.ROBSize {
		c.skipReason = skipROBFull
		c.Stats.ROBFullCycles++
		return sim.Never
	}
	if c.exhausted && !c.hasPending {
		// Stream drained, ROB waiting on in-flight memory: nothing to do.
		c.skipReason = skipNone
		return sim.Never
	}
	return now // dispatch can make (or at least attempt) progress
}

// catchUp credits cycles the engine jumped over (no NextWork evaluation at
// all) to the stall counter recorded when the core last quiesced. A jump
// freezes the whole machine, so every jumped cycle had that same state.
func (c *Core) catchUp(now uint64) {
	if gap := now - c.lastSeen; gap > 1 {
		switch c.skipReason {
		case skipFence:
			c.Stats.FenceCycles += gap - 1
		case skipROBFull:
			c.Stats.ROBFullCycles += gap - 1
		}
	}
	c.lastSeen = now
}

// Tick advances the core one cycle: retire, then dispatch.
//
//ar:hotpath
func (c *Core) Tick(cycle uint64) {
	c.catchUp(cycle)
	if c.Finished() {
		return
	}
	if len(c.calls) > 0 {
		due := c.calls
		c.calls = c.callsSpare[:0]
		for _, t := range due {
			if t.at <= cycle {
				t.e.done = true
			} else {
				c.calls = append(c.calls, t) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			}
		}
		c.callsSpare = due[:0]
	}
	c.retire(cycle)
	c.dispatch(cycle)
	if c.Finished() && c.Stats.DoneCycle == 0 {
		c.Stats.DoneCycle = cycle
	}
}

// retire commits completed instructions in order.
func (c *Core) retire(cycle uint64) {
	n := 0
	for n < c.cfg.CommitWidth && c.robLen() > 0 && c.rob[c.robHead&c.robMask].done {
		c.robHead++
		c.Stats.Retired++
		n++
	}
	if n > 0 {
		c.IPC.Retire(uint64(n), cycle)
	}
}

// applyEffect applies an instruction's functional memory effect at dispatch
// time. Dispatch is in program order, so a store's value is visible in the
// backing store before any later Update of the same thread is offloaded —
// the ordering the fire-and-forget offload semantics rely on (a store still
// pays its full coherence timing separately). Under the sharded kernel the
// effect is staged in the core's log instead; neither effect kind reads a
// value that a deferral could change (a store carries its value, an atomic
// add carries its delta), so the core-order commit is bit-identical.
func (c *Core) applyEffect(in *isa.Inst) {
	switch in.Kind {
	case isa.KindStore:
		pa := c.as.Translate(in.Addr)
		if c.fx != nil {
			c.fx.ops = append(c.fx.ops, effect{kind: effStore, pa: pa, val: in.Value}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			return
		}
		c.store.WriteF64(pa, in.Value)
	case isa.KindAtomicAdd:
		pa := c.as.Translate(in.Addr)
		if c.fx != nil {
			c.fx.ops = append(c.fx.ops, effect{kind: effAtomicAdd, pa: pa, val: in.Value}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			return
		}
		c.store.WriteF64(pa, c.store.ReadF64(pa)+in.Value)
	}
}

// dispatch fills the ROB from the instruction stream.
func (c *Core) dispatch(cycle uint64) {
	memIssued := 0
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.fenced {
			c.Stats.FenceCycles++
			return
		}
		if c.robLen() >= c.cfg.ROBSize {
			c.Stats.ROBFullCycles++
			return
		}
		in, ok := c.nextInst()
		if !ok {
			return
		}
		if (in.Kind == isa.KindLoad || in.Kind == isa.KindStore || in.Kind == isa.KindAtomicAdd) &&
			memIssued >= c.cfg.MemPorts {
			c.stash(in)
			return
		}
		if !c.issue(in, cycle) {
			c.stash(in)
			return
		}
		if in.Kind == isa.KindLoad || in.Kind == isa.KindStore || in.Kind == isa.KindAtomicAdd {
			memIssued++
		}
	}
}

// nextInst returns a pointer to the next instruction to dispatch. The
// pointee lives either in the core (pending/cur scratch) or inside a
// PtrStream's storage; it is valid until the next nextInst call, which is
// long enough for the dispatch loop that consumes it immediately.
func (c *Core) nextInst() (*isa.Inst, bool) {
	if c.hasPending {
		c.hasPending = false
		return &c.pending, true
	}
	if c.exhausted {
		return nil, false
	}
	if c.ptrStream != nil {
		in, ok := c.ptrStream.NextPtr()
		if !ok {
			c.exhausted = true
			return nil, false
		}
		return in, true
	}
	in, ok := c.stream.Next()
	if !ok {
		c.exhausted = true
		return nil, false
	}
	c.cur = in
	return &c.cur, true
}

func (c *Core) stash(in *isa.Inst) {
	if c.hasPending {
		panic("cpu: dispatch stash overwrite")
	}
	c.pending = *in
	c.hasPending = true
}

// issue places one instruction in the ROB and starts its execution. It
// reports false when a downstream structure refused the instruction.
//
// The prospective ROB slot is the ring's tail; its fields are initialized
// before any downstream call and the slot is committed (tail advanced) only
// on success. A refused instruction registers no callback anywhere, so the
// uncommitted slot simply gets reinitialized on the next attempt.
func (c *Core) issue(in *isa.Inst, cycle uint64) bool {
	e := &c.rob[c.robTail&c.robMask]
	e.done = false
	switch in.Kind {
	case isa.KindCompute:
		var lat uint64
		switch in.Class {
		case isa.ClassInt:
			lat = c.cfg.IntLat
		case isa.ClassFP:
			lat = c.cfg.FPLat
		default:
			lat = c.cfg.FPMulLat
		}
		c.calls = append(c.calls, timedCall{at: cycle + lat, e: e}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
		c.Stats.Computes++
	case isa.KindLoad, isa.KindStore, isa.KindAtomicAdd:
		pa := c.as.Translate(in.Addr)
		write := in.Kind != isa.KindLoad
		if e.memDone == nil {
			e.memDone = func(uint64) { //ar:exempt(hotpath) allocated once per inflight entry, cached in the entry and reused
				e.done = true
				c.waker.Wake()
			}
		}
		if !c.mem.Access(pa, write, cycle, e.memDone) {
			c.Stats.MemStalls++
			return false
		}
		c.applyEffect(in)
		if write {
			c.Stats.Stores++
		} else {
			c.Stats.Loads++
		}
	case isa.KindUpdate:
		cmd := core.UpdateCmd{
			ThreadID: c.ID,
			Op:       in.Op,
			Target:   c.as.Translate(in.Target),
			Imm:      in.Imm,
			Count:    in.Count,
		}
		if in.Src1 != 0 {
			cmd.Src1 = c.as.Translate(in.Src1)
		}
		if in.Src2 != 0 {
			cmd.Src2 = c.as.Translate(in.Src2)
		}
		if !c.offload.Update(cmd, cycle) {
			c.Stats.OffloadStalls++
			return false
		}
		e.done = true // fire-and-forget (§3.3: offload overlaps processing)
		c.Stats.Updates++
	case isa.KindGather:
		if e.gatherWake == nil {
			e.gatherWake = func(uint64) { //ar:exempt(hotpath) allocated once per inflight entry, cached in the entry and reused
				e.done = true
				c.fenced = false
				c.waker.Wake()
			}
		}
		cmd := core.GatherCmd{
			ThreadID: c.ID,
			Target:   c.as.Translate(in.Target),
			Threads:  in.Threads,
			Wake:     e.gatherWake,
		}
		if !c.offload.Gather(cmd, cycle) {
			c.Stats.OffloadStalls++
			return false
		}
		// Gather is a thread fence: later updates of a dependent flow must
		// not overtake the reduction write-back.
		c.fenced = true
		c.fenceKind = FenceGather
		c.fenceTarget = cmd.Target
		c.Stats.Gathers++
	case isa.KindBarrier:
		if c.barrier == nil {
			panic(fmt.Sprintf("cpu: core %d hit a barrier without one configured", c.ID))
		}
		if e.barrierWake == nil {
			e.barrierWake = func() { //ar:exempt(hotpath) allocated once per inflight entry, cached in the entry and reused
				e.done = true
				c.fenced = false
				c.waker.Wake()
			}
		}
		c.fenced = true
		c.fenceKind = FenceBarrier
		c.Stats.Barriers++
		if c.fx != nil {
			c.fx.ops = append(c.fx.ops, effect{kind: effBarrier, wake: e.barrierWake}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
		} else {
			c.barrier.Arrive(e.barrierWake)
		}
	default:
		panic(fmt.Sprintf("cpu: unknown instruction kind %s", in.Kind))
	}
	c.robTail++
	return true
}

// effect is one staged global side effect of a core's dispatch.
type effect struct {
	kind effKind
	pa   mem.PAddr
	val  float64
	wake func()
}

type effKind uint8

const (
	effStore effKind = iota
	effAtomicAdd
	effBarrier
)

// EffectLog stages one core's global side effects under the sharded
// kernel. The log is owned by its core during parallel waves and flushed —
// in core order, by the serial effect-commit hook — before anything that
// reads the backing store ticks. The slice is reused; steady state
// allocates nothing.
type EffectLog struct {
	store   *mem.Store
	barrier *Barrier
	ops     []effect
}

// NewEffectLog builds a log applying to the given store and barrier
// (barrier may be nil when the workload never synchronizes).
func NewEffectLog(store *mem.Store, barrier *Barrier) *EffectLog {
	return &EffectLog{store: store, barrier: barrier}
}

// Pending reports whether staged effects await their flush.
func (l *EffectLog) Pending() bool { return len(l.ops) > 0 }

// Flush applies the staged effects in program order.
func (l *EffectLog) Flush() {
	for i := range l.ops {
		op := &l.ops[i]
		switch op.kind {
		case effStore:
			l.store.WriteF64(op.pa, op.val)
		case effAtomicAdd:
			l.store.WriteF64(op.pa, l.store.ReadF64(op.pa)+op.val)
		case effBarrier:
			l.barrier.Arrive(op.wake)
		}
		*op = effect{}
	}
	l.ops = l.ops[:0]
}

// Barrier is a reusable centralized thread barrier. Completion is deferred:
// when the n-th thread arrives the waiters move to a release list that
// Flush fires at the end of the cycle, so every waiter — regardless of its
// position in the tick order relative to the last arriver — resumes on the
// next cycle. The uniform one-cycle release latency is both closer to a
// real barrier's notification delay and required by the sharded kernel,
// where cores in different tick domains cannot observe a same-cycle
// release (DESIGN.md "Sharded kernel").
type Barrier struct {
	n         int
	arrived   int
	waiters   []func()
	release   []func()
	Crossings uint64
}

// NewBarrier creates a barrier over n threads.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Arrive registers a thread; when the n-th arrives the barrier resets and
// every waiter is queued for release at the next Flush.
func (b *Barrier) Arrive(wake func()) {
	b.arrived++
	b.waiters = append(b.waiters, wake) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	if b.arrived == b.n {
		b.release = append(b.release, b.waiters...) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
		b.arrived = 0
		b.waiters = b.waiters[:0]
		b.Crossings++
	}
}

// Pending reports whether a completed crossing awaits its Flush.
func (b *Barrier) Pending() bool { return len(b.release) > 0 }

// Flush fires the queued release wakes of a completed crossing. The system
// calls it once per cycle after every component has ticked.
func (b *Barrier) Flush() {
	for i, w := range b.release {
		b.release[i] = nil
		w()
	}
	b.release = b.release[:0]
}
