package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const grammarSrc = `package p

func f() {
	_ = 1 //ar:exempt(determinism) order cannot reach simulated state
	_ = 2
	_ = 3
	_ = 4 //ar:exempt reviewed: applies to every analyzer scope
	_ = 5
}
`

// passOver type-checks src and builds a pass for a throwaway analyzer.
func passOver(t *testing.T, src string, sink *[]Diagnostic) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Name: "test", Doc: "test analyzer"}
	return NewPass(a, fset, []*ast.File{f}, pkg, info, sink)
}

// posOnLine returns a position on the given 1-based line of the pass's file.
func posOnLine(p *Pass, line int) token.Pos {
	tf := p.Fset.File(p.Files[0].Pos())
	return tf.LineStart(line)
}

func TestExemptionSuppression(t *testing.T) {
	var diags []Diagnostic
	p := passOver(t, grammarSrc, &diags)
	cases := []struct {
		line       int
		scope      string
		suppressed bool
		why        string
	}{
		{4, "determinism", true, "scoped exemption on its own line"},
		{5, "determinism", true, "scoped exemption covers the next line"},
		{6, "determinism", false, "two lines below is out of range"},
		{4, "hotpath", false, "scope mismatch must not suppress"},
		{7, "hotpath", true, "unscoped exemption covers every scope"},
		{8, "poolown", true, "unscoped exemption covers the next line too"},
	}
	for _, c := range cases {
		diags = diags[:0]
		p.Reportf(posOnLine(p, c.line), c.scope, "finding")
		if got := len(diags) == 0; got != c.suppressed {
			t.Errorf("line %d scope %s: suppressed=%v, want %v (%s)",
				c.line, c.scope, got, c.suppressed, c.why)
		}
	}
}

func TestMalformedExemptionReported(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //ar:exempt
	_ = 2 //ar:exempt(poolown)
	_ = 3 //ar:exempt(unterminated scope never closes
}
`
	var diags []Diagnostic
	passOver(t, src, &diags)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3 (two missing reasons, one "+
			"unterminated scope):\n%v", len(diags), diags)
	}
	for _, d := range diags[:2] {
		if !strings.Contains(d.Message, "requires a reason") {
			t.Errorf("missing-reason diagnostic says %q", d.Message)
		}
	}
	if !strings.Contains(diags[2].Message, "unterminated scope") {
		t.Errorf("unterminated-scope diagnostic says %q", diags[2].Message)
	}
}

func TestIsHotAnnotated(t *testing.T) {
	src := `package p

//ar:hotpath
func hot() {}

// cold is ordinary.
func cold() {}

// doc line first.
//
//ar:hotpath
func alsoHot() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"hot": true, "cold": false, "alsoHot": true}
	for _, d := range f.Decls {
		fd := d.(*ast.FuncDecl)
		if got := IsHotAnnotated(fd); got != want[fd.Name.Name] {
			t.Errorf("IsHotAnnotated(%s) = %v, want %v", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}

func TestHasKernelMark(t *testing.T) {
	var diags []Diagnostic
	marked := passOver(t, "//ar:kernel\npackage p\n", &diags)
	if !marked.HasKernelMark() {
		t.Error("file with //ar:kernel not recognized")
	}
	plain := passOver(t, "package p\n", &diags)
	if plain.HasKernelMark() {
		t.Error("unmarked file reported as kernel")
	}
}
