// Package pool is the poolown analyzer fixture. It acquires real
// network.Pool packets (resolved through the same loader arlint uses) and
// walks each lifecycle violation the analyzer exists to catch — headed by
// the double release the runtime guard can only catch after the pool has
// already handed the packet to a second owner.
package pool

import "repro/internal/network"

// sender stands in for the fabric's conditional-transfer API: true means
// the callee took ownership of the packet, false means the caller kept it.
type sender interface {
	send(p *network.Packet) bool
}

// doubleRelease is the historical bug class: a packet Put back twice
// corrupts the free list for whoever drew it in between.
func doubleRelease(pl *network.Pool) {
	p := pl.Get(network.MemReadReq, 0, 1)
	pl.Put(p)
	pl.Put(p) // want `double release of p`
}

// useAfterRelease reads a field of a packet the pool may already have
// handed to another owner.
func useAfterRelease(pl *network.Pool) int {
	p := pl.Get(network.MemReadReq, 0, 1)
	pl.Put(p)
	return p.Src // want `use of p after release`
}

// leakOnBranch forgets the packet on the early-return path.
func leakOnBranch(pl *network.Pool, drop bool) {
	p := pl.Get(network.MemReadReq, 0, 1) // want `p may leak`
	if drop {
		return
	}
	pl.Put(p)
}

// injectAndForget drops the packet when the send is refused — the refused-
// Inject leak the conditional-transfer rule exists to catch.
func injectAndForget(pl *network.Pool, s sender) {
	p := pl.Get(network.MemReadReq, 0, 1) // want `p may leak`
	if !s.send(p) {
		return
	}
}

// injectOrRecycle is the correct shape: the refusing branch returns the
// packet to its pool. No diagnostic.
func injectOrRecycle(pl *network.Pool, s sender) {
	p := pl.Get(network.MemReadReq, 0, 1)
	if !s.send(p) {
		pl.Put(p)
	}
}

// stash transfers ownership into a longer-lived structure. No diagnostic.
func stash(pl *network.Pool, q *[]*network.Packet) {
	p := pl.Get(network.MemReadReq, 0, 1)
	*q = append(*q, p)
}

// overwrite drops an owned packet by reassigning its variable.
func overwrite(pl *network.Pool) {
	p := pl.Get(network.MemReadReq, 0, 1)
	p = pl.Get(network.MemReadReq, 0, 2) // want `p still owns the object`
	pl.Put(p)
}

// deferredRelease is the allowed defer shape, and a second Put on top of
// the pending deferred one is a double release.
func deferredRelease(pl *network.Pool, early bool) int {
	p := pl.Get(network.MemReadReq, 0, 1)
	defer pl.Put(p)
	if early {
		pl.Put(p) // want `double release of p`
	}
	return 0
}

// handoff returns the packet: ownership transfers to the caller.
func handoff(pl *network.Pool) *network.Packet {
	p := pl.Get(network.MemReadReq, 0, 1)
	p.Tag = 7
	return p
}

// exempted carries a reviewed claim that the helper releases the packet.
func exempted(pl *network.Pool, keep bool) {
	p := pl.Get(network.MemReadReq, 0, 1) //ar:exempt(poolown) recycleLater owns the tail of every path in this fixture
	if keep {
		return
	}
	pl.Put(p)
}
