package poolown_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/poolown"
)

// TestPoolFixture walks the pooled-packet lifecycle violations against real
// network.Pool types: double release (the historical bug class), use after
// release, leak on an early return, the refused-Inject leak, plus the clean
// shapes (conditional transfer, stash, handoff, defer, exemption) that must
// stay silent.
func TestPoolFixture(t *testing.T) {
	antest.Run(t, "testdata/pool", poolown.Analyzer)
}
