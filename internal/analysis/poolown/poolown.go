// Package poolown statically enforces the single-owner pooled-object
// lifecycle of DESIGN.md "Memory discipline": an object acquired from
// network.Pool or cache.MsgPool has exactly one owner, ownership moves at a
// transfer point (Inject, Deliver, a commit callback — any call the object
// is passed to, or a store into a longer-lived structure), and the object is
// released exactly once at its final consumption point. The runtime guards
// (Pool.Put's double-release panic, SetGuard poisoning) catch violations
// after they execute; this analyzer catches them in review.
//
// The analysis is intra-procedural and path-sensitive over the structured
// control flow of one function body. Within a function it reports:
//
//   - use after release: a tracked variable is read on a path after being
//     Put back into its pool;
//   - double release: a tracked variable reaches a second Put on some path
//     (including a Put after a deferred Put);
//   - leak: a path reaches a return (or falls off the end of a loop body
//     that acquired the object) with the object still owned — neither
//     released nor transferred.
//
// Ownership transfer is deliberately coarse: passing the variable to any
// call, storing it anywhere (field, slice, map, channel, another variable),
// returning it, or capturing it in a closure ends tracking. That
// under-approximates bugs but keeps false positives near zero, which is
// what lets `arlint ./...` gate CI.
package poolown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the pool-ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolown",
	Doc: "enforce the single-owner pooled packet/message lifecycle: no use after release, " +
		"no double release, no owned object leaking out of a function",
	Run: run,
}

// Scope is the exemption scope token.
const Scope = "poolown"

// poolType identifies a free-list type by package path and type name.
type poolType struct{ pkg, name string }

// pools are the recognized free-list types and their acquire/release
// method names.
var pools = map[poolType]bool{
	{"repro/internal/network", "Pool"}:  true,
	{"repro/internal/cache", "MsgPool"}: true,
}

// acquireFuncs are package-level functions that acquire from a pool passed
// as their first argument and return the acquired object.
var acquireFuncs = map[poolType]bool{
	{"repro/internal/cache", "PacketFor"}: true,
}

// state is the per-variable ownership lattice. A variable may hold several
// bits after a control-flow merge.
type state uint8

const (
	live     state = 1 << iota // owned here, must be released or transferred
	released                   // returned to its pool
)

// frame is the abstract store: tracked variables and their possible states.
// Variables not in the map are untracked (never acquired, or ownership
// moved elsewhere).
type frame map[*types.Var]varInfo

type varInfo struct {
	st       state
	acquired token.Pos // position of the acquiring call (diagnostics)
	deferred bool      // a deferred release is pending
}

func (f frame) clone() frame {
	c := make(frame, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// merge unions the states of two reachable frames.
func merge(a, b frame) frame {
	out := a.clone()
	for k, v := range b {
		if prev, ok := out[k]; ok {
			prev.st |= v.st
			prev.deferred = prev.deferred || v.deferred
			out[k] = prev
		} else {
			out[k] = v
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			an := &fnAnalysis{pass: pass}
			if an.bailout(fd.Body) {
				continue
			}
			fr := make(frame)
			reachable := an.execBlock(fd.Body.List, fr)
			if reachable {
				an.checkEnd(fr, fd.Body.Rbrace)
			}
		}
	}
	return nil
}

// fnAnalysis is the per-function interpreter state.
type fnAnalysis struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool // dedupe per acquire site for leaks
}

// bailout reports control flow the interpreter does not model precisely;
// such functions are skipped rather than analyzed wrongly.
func (a *fnAnalysis) bailout(body *ast.BlockStmt) bool {
	skip := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.GOTO || n.Tok == token.FALLTHROUGH {
				skip = true
			}
		case *ast.LabeledStmt:
			skip = true
		}
		return !skip
	})
	return skip
}

// execBlock interprets a statement list, mutating fr in place. It returns
// false if control cannot fall out of the block (every path returned,
// panicked, or branched away).
func (a *fnAnalysis) execBlock(stmts []ast.Stmt, fr frame) bool {
	for _, s := range stmts {
		if !a.execStmt(s, fr) {
			return false
		}
	}
	return true
}

// execStmt interprets one statement; false means control does not continue
// past it on any path.
func (a *fnAnalysis) execStmt(s ast.Stmt, fr frame) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		a.execExpr(s.X, fr)
		return !isPanic(a.pass, s.X)

	case *ast.AssignStmt:
		a.execAssign(s, fr)
		return true

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						a.execExpr(v, fr)
					}
				}
			}
		}
		return true

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.execExpr(r, fr)
			// Returning the object transfers ownership to the caller.
			if v := a.trackedIdent(r, fr); v != nil {
				delete(fr, v)
			}
		}
		a.checkEnd(fr, s.Return)
		return false

	case *ast.DeferStmt:
		a.execDefer(s, fr)
		return true

	case *ast.GoStmt:
		a.execExpr(s.Call, fr)
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			a.execStmt(s.Init, fr)
		}
		// `if send(p)` / `if !send(p)` on a bool-returning call models the
		// fabric's conditional-transfer contract (Inject/Deliver/Sender):
		// true means the callee took ownership, false means the caller
		// kept it. Only the accepting branch drops tracking.
		condVar, negated, conditional := a.condOwnership(s.Cond, fr)
		if conditional {
			a.checkUse(s.Cond, fr)
		} else {
			a.execExpr(s.Cond, fr)
		}
		thenFr := fr.clone()
		elseFr := fr.clone()
		if conditional {
			if negated {
				delete(elseFr, condVar) // !send(p): else-path transferred
			} else {
				delete(thenFr, condVar) // send(p): then-path transferred
			}
		}
		thenOK := a.execBlock(s.Body.List, thenFr)
		elseOK := true
		if s.Else != nil {
			elseOK = a.execStmt(s.Else, elseFr)
		}
		switch {
		case thenOK && elseOK:
			replace(fr, merge(thenFr, elseFr))
		case thenOK:
			replace(fr, thenFr)
		case elseOK:
			replace(fr, elseFr)
		default:
			return false
		}
		return true

	case *ast.BlockStmt:
		return a.execBlock(s.List, fr)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return a.execSwitch(s, fr)

	case *ast.ForStmt:
		if s.Init != nil {
			a.execStmt(s.Init, fr)
		}
		if s.Cond != nil {
			a.execExpr(s.Cond, fr)
		}
		a.execLoopBody(s.Body, fr)
		return true

	case *ast.RangeStmt:
		a.execExpr(s.X, fr)
		a.execLoopBody(s.Body, fr)
		return true

	case *ast.BranchStmt:
		// break/continue: control leaves this statement list. The merged
		// loop-exit state is approximated by the loop-entry escape rule in
		// execLoopBody, so terminating here is safe.
		return false

	case *ast.SendStmt:
		a.execExpr(s.Value, fr)
		if v := a.trackedIdent(s.Value, fr); v != nil {
			delete(fr, v) // channel send transfers ownership
		}
		a.execExpr(s.Chan, fr)
		return true

	case *ast.IncDecStmt:
		a.execExpr(s.X, fr)
		return true

	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cfr := fr.clone()
				if cc.Comm != nil {
					a.execStmt(cc.Comm, cfr)
				}
				a.execBlock(cc.Body, cfr)
				replace(fr, merge(fr, cfr))
			}
		}
		return true

	case *ast.LabeledStmt, *ast.EmptyStmt:
		return true

	default:
		return true
	}
}

// replace overwrites dst's contents with src's.
func replace(dst, src frame) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// execSwitch interprets switch/type-switch: each case body runs from the
// pre-switch state; reachable exits merge (plus the no-case-taken path when
// there is no default clause).
func (a *fnAnalysis) execSwitch(s ast.Stmt, fr frame) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.execStmt(s.Init, fr)
		}
		if s.Tag != nil {
			a.execExpr(s.Tag, fr)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.execStmt(s.Init, fr)
		}
		a.execStmt(s.Assign, fr)
		body = s.Body
	}
	var outs []frame
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cfr := fr.clone()
		for _, e := range cc.List {
			a.execExpr(e, cfr)
		}
		if a.execBlock(cc.Body, cfr) {
			outs = append(outs, cfr)
		}
	}
	if !hasDefault {
		outs = append(outs, fr.clone())
	}
	if len(outs) == 0 {
		return false
	}
	m := outs[0]
	for _, o := range outs[1:] {
		m = merge(m, o)
	}
	replace(fr, m)
	return true
}

// execLoopBody interprets a loop body conservatively: variables tracked
// before the loop stop being tracked (an iteration boundary is a merge
// point the linear interpreter cannot model), and a variable acquired
// inside the body must settle its ownership before the iteration ends.
func (a *fnAnalysis) execLoopBody(body *ast.BlockStmt, fr frame) {
	for k := range fr {
		delete(fr, k)
	}
	inner := make(frame)
	if a.execBlock(body.List, inner) {
		a.checkEnd(inner, body.Rbrace)
	}
}

// execAssign handles acquire sites, reassignment-while-owned, and stores
// that transfer ownership.
func (a *fnAnalysis) execAssign(s *ast.AssignStmt, fr frame) {
	for _, r := range s.Rhs {
		a.execExpr(r, fr)
	}
	for i, l := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		id, isIdent := ast.Unparen(l).(*ast.Ident)
		if isIdent && id.Name != "_" {
			v := a.varOf(id)
			if v != nil {
				if prev, ok := fr[v]; ok && prev.st&live != 0 && !prev.deferred {
					a.pass.Reportf(s.TokPos, Scope,
						"%s still owns the object acquired at %s when reassigned; "+
							"release or transfer it first", id.Name,
						a.pass.Fset.Position(prev.acquired))
				}
				delete(fr, v)
				if rhs != nil {
					if pos, ok := a.acquireCall(rhs); ok {
						fr[v] = varInfo{st: live, acquired: pos}
						continue
					}
				}
			}
		} else if l != nil {
			a.execExpr(l, fr)
		}
		// Storing a tracked object anywhere (field, index, map, another
		// variable) transfers ownership out of the function's view.
		if rhs != nil {
			if v := a.trackedIdent(rhs, fr); v != nil {
				delete(fr, v)
			}
		}
	}
}

// execDefer handles `defer pool.Put(p)` (a pending release) and treats any
// other deferred call mentioning tracked variables as a transfer.
func (a *fnAnalysis) execDefer(s *ast.DeferStmt, fr frame) {
	if v, ok := a.releaseCall(s.Call, fr); ok {
		info := fr[v]
		if info.deferred || info.st&released != 0 {
			a.pass.Reportf(s.Call.Pos(), Scope,
				"double release: a release of %s is already pending or done",
				v.Name())
		}
		info.deferred = true
		fr[v] = info
		return
	}
	a.execExpr(s.Call, fr)
}

// execExpr walks an expression: checks uses of released variables, handles
// release calls, and applies the transfer rule to call arguments and
// composite literals. Acquire calls in expression position (not assigned to
// a variable) immediately leak unless their result is consumed by a
// transfer, so they are treated as transfers-to-callee by the same rule.
func (a *fnAnalysis) execExpr(e ast.Expr, fr frame) {
	if e == nil {
		return
	}
	// Release call?
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if v, ok := a.releaseCall(call, fr); ok {
			info := fr[v]
			if info.st&released != 0 || info.deferred {
				a.pass.Reportf(call.Pos(), Scope,
					"double release of %s (acquired at %s)", v.Name(),
					a.pass.Fset.Position(info.acquired))
			}
			info.st = released
			fr[v] = info
			return
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure capture: every tracked variable referenced inside
			// stops being tracked (the closure may release or keep it).
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := a.varOf(id); v != nil {
						delete(fr, v)
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			// Arguments first: a use of a released variable inside a call
			// is still a use.
			for _, arg := range n.Args {
				a.checkUse(arg, fr)
			}
			// Then the transfer rule, unless this is the pool's own Put
			// (handled by the caller) or a nested acquire.
			if _, isRelease := a.releaseCall(n, fr); !isRelease {
				for _, arg := range n.Args {
					if v := a.trackedIdent(arg, fr); v != nil {
						delete(fr, v)
					}
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := a.trackedIdent(n.X, fr); v != nil {
					delete(fr, v) // address taken: aliasing defeats tracking
				}
			}
			return true
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v := a.trackedIdent(val, fr); v != nil {
					delete(fr, v) // stored into a literal: transferred
				}
			}
			return true
		case *ast.Ident:
			a.checkUseIdent(n, fr)
			return true
		}
		return true
	})
}

// checkUse flags expression e if it reads a variable in released state.
func (a *fnAnalysis) checkUse(e ast.Expr, fr frame) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			a.checkUseIdent(id, fr)
		}
		return true
	})
}

func (a *fnAnalysis) checkUseIdent(id *ast.Ident, fr frame) {
	v := a.varOf(id)
	if v == nil {
		return
	}
	if info, ok := fr[v]; ok && info.st&released != 0 {
		a.pass.Reportf(id.Pos(), Scope,
			"use of %s after release (acquired at %s): the pool may already "+
				"have handed it to another owner", id.Name,
			a.pass.Fset.Position(info.acquired))
	}
}

// checkEnd reports owned objects at a function exit point.
func (a *fnAnalysis) checkEnd(fr frame, at token.Pos) {
	if a.reported == nil {
		a.reported = make(map[token.Pos]bool)
	}
	for v, info := range fr {
		if info.st&live != 0 && !info.deferred {
			if a.reported[info.acquired] {
				continue
			}
			a.reported[info.acquired] = true
			a.pass.Reportf(info.acquired, Scope,
				"%s may leak: on the path reaching line %d it is neither released "+
					"nor ownership-transferred", v.Name(),
				a.pass.Fset.Position(at).Line)
		}
	}
}

// condOwnership recognizes `send(p)` or `!send(p)` as an if-condition,
// where send is any bool-returning call (not a pool method) with exactly
// one tracked variable among its arguments. It returns that variable and
// whether the call is negated.
func (a *fnAnalysis) condOwnership(cond ast.Expr, fr frame) (*types.Var, bool, bool) {
	negated := false
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		e = ast.Unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false, false
	}
	t := a.pass.TypesInfo.TypeOf(call)
	if t == nil {
		return nil, false, false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Bool {
		return nil, false, false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && isPoolMethod(fn) {
			return nil, false, false
		}
	}
	var tracked *types.Var
	for _, arg := range call.Args {
		if v := a.trackedIdent(arg, fr); v != nil {
			if tracked != nil {
				return nil, false, false // two tracked args: stay coarse
			}
			tracked = v
		}
	}
	if tracked == nil {
		return nil, false, false
	}
	return tracked, negated, true
}

// varOf resolves an identifier to a local/param variable object.
func (a *fnAnalysis) varOf(id *ast.Ident) *types.Var {
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		v, _ = a.pass.TypesInfo.Defs[id].(*types.Var)
	}
	return v
}

// trackedIdent returns the tracked variable behind e, if any.
func (a *fnAnalysis) trackedIdent(e ast.Expr, fr frame) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v := a.varOf(id)
	if v == nil {
		return nil
	}
	if _, ok := fr[v]; !ok {
		return nil
	}
	return v
}

// acquireCall reports whether e is a pool acquire (pool.Get(...) on a
// recognized pool type, or a recognized acquire function), returning the
// call position.
func (a *fnAnalysis) acquireCall(e ast.Expr) (token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return token.NoPos, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, ok := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return token.NoPos, false
		}
		if fn.Name() == "Get" && isPoolMethod(fn) {
			return call.Pos(), true
		}
		if pt, ok := funcKey(fn); ok && acquireFuncs[pt] {
			return call.Pos(), true
		}
	case *ast.Ident:
		fn, ok := a.pass.TypesInfo.Uses[fun].(*types.Func)
		if !ok {
			return token.NoPos, false
		}
		if pt, ok := funcKey(fn); ok && acquireFuncs[pt] {
			return call.Pos(), true
		}
	}
	return token.NoPos, false
}

// releaseCall reports whether call is pool.Put(v) on a tracked variable v.
func (a *fnAnalysis) releaseCall(call *ast.CallExpr, fr frame) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Put" || !isPoolMethod(fn) {
		return nil, false
	}
	v := a.trackedIdent(call.Args[0], fr)
	if v == nil {
		return nil, false
	}
	return v, true
}

// isPoolMethod reports whether fn is a method on a recognized pool type.
func isPoolMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return pools[poolType{named.Obj().Pkg().Path(), named.Obj().Name()}]
}

// funcKey returns the (package, name) key of a package-level function.
func funcKey(fn *types.Func) (poolType, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || fn.Pkg() == nil {
		return poolType{}, false
	}
	return poolType{fn.Pkg().Path(), fn.Name()}, true
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
