// Package cfg is the hashcov analyzer fixture. Its Config mirrors the
// field coverage states the analyzer distinguishes, headed by the
// historical bug class: a field excluded from Hash by zeroing a canonical
// copy (Shards) — a write, not a read — which silently keyed every cached
// result wrongly until the cfg hash-salt incidents forced a bump.
package cfg

// Config is the fixture configuration struct.
type Config struct {
	Threads int   // read by Hash and Validate: fully covered
	Width   int   // want `Width is not read by Validate\(\)`
	Debug   bool  // want `Debug is not read by Hash\(\)` `Debug is not read by Validate\(\)`
	Shards  int   // want `Shards is not read by Hash\(\)`
	Seed    int64 //ar:exempt(validate) every 64-bit seed keys a runnable machine
}

// Hash covers Threads and Width directly and Seed through a package-local
// helper; zeroing canon.Shards is exclusion-by-zeroing, not a read.
func (c Config) Hash() uint64 {
	canon := c
	canon.Shards = 0
	h := uint64(canon.Threads)<<16 ^ uint64(canon.Width)
	return h ^ hashTail(canon)
}

func hashTail(c Config) uint64 {
	return uint64(c.Seed) * 0x9e3779b97f4a7c15
}

// Validate covers Threads and Shards.
func (c Config) Validate() bool {
	if c.Threads <= 0 {
		return false
	}
	return c.Shards >= 0
}
