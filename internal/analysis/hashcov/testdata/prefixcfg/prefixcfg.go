// Package prefixcfg is the hashcov PrefixHash-coverage fixture. A Config
// declaring a PrefixHash method (the checkpoint content-address) must
// render every field in it, annotate the field //ar:prefix with the reason
// it cannot influence any executed cycle, or already exclude the field
// from Hash with //ar:exempt(hash) — anything else is the checkpoint
// analogue of the unhashed-field bug class: two diverging configurations
// silently sharing a warm start.
package prefixcfg

// Config is the fixture configuration struct.
type Config struct {
	Threads int // read by Hash, Validate and PrefixHash: fully covered
	//ar:prefix(cycle-inert) the budget bounds how many cycles run, never what any executed cycle computes
	Budget int
	Limit  int // want `Limit is not read by PrefixHash\(\)`
	//ar:exempt(hash) kernel choice is result-invariant; one cache entry and one checkpoint serve every kernel
	Shards int
	//ar:prefix no scope given // want `//ar:prefix requires a \(scope\)`
	Window int // want `Window is not read by PrefixHash\(\)`
}

// Hash covers everything except the deliberately excluded Shards.
func (c Config) Hash() uint64 {
	return uint64(c.Threads) ^ uint64(c.Budget)<<8 ^ uint64(c.Limit)<<16 ^ uint64(c.Window)<<24
}

// PrefixHash is the checkpoint content-address: Budget is annotated
// cycle-inert, Limit's omission is the fixture's deliberate gap, and
// Window's annotation is malformed (no scope) so it must not silence the
// coverage check.
func (c Config) PrefixHash(cycle uint64) uint64 {
	return uint64(c.Threads) ^ cycle
}

// Validate covers every field.
func (c Config) Validate() bool {
	return c.Threads > 0 && c.Budget >= 0 && c.Limit >= 0 && c.Shards >= 0 && c.Window >= 0
}
