package hashcov_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hashcov"
)

// TestCfgFixture covers the field-coverage matrix: fully covered, covered
// by one method only, covered by neither, excluded-by-zeroing (the
// historical unhashed-field bug class, which must still be flagged), and a
// scoped exemption that must silence exactly one of the two checks.
func TestCfgFixture(t *testing.T) {
	antest.Run(t, "testdata/cfg", hashcov.Analyzer)
}

// TestPrefixCfgFixture covers the PrefixHash coverage check: a rendered
// field, a field annotated //ar:prefix(cycle-inert), a field silenced by
// its existing //ar:exempt(hash), a silently escaping field that must be
// flagged, and a malformed scope-less //ar:prefix that is itself a
// grammar diagnostic and silences nothing.
func TestPrefixCfgFixture(t *testing.T) {
	antest.Run(t, "testdata/prefixcfg", hashcov.Analyzer)
}
