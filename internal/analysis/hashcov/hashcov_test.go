package hashcov_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hashcov"
)

// TestCfgFixture covers the field-coverage matrix: fully covered, covered
// by one method only, covered by neither, excluded-by-zeroing (the
// historical unhashed-field bug class, which must still be flagged), and a
// scoped exemption that must silence exactly one of the two checks.
func TestCfgFixture(t *testing.T) {
	antest.Run(t, "testdata/cfg", hashcov.Analyzer)
}
