// Package hashcov proves, at analysis time, that every field of a package's
// `Config` struct is covered by both its result-cache key (Hash) and its
// input validation (Validate) — the contract that keys the whole service
// tier. Both cfg hash-salt incidents came from this gap: a field whose
// value could change results without changing the cache key would silently
// poison every cached figure, sweep and stored result.
//
// For a package declaring a struct type named Config with methods Hash and
// Validate, the analyzer computes the set of Config fields read (selector
// in a non-assignment position) inside each method, transitively through
// package-local static calls. Every field must be read by Hash and by
// Validate, or its declaration must carry a scoped exemption:
//
//	//ar:exempt(hash) reason      — deliberately excluded from the key
//	//ar:exempt(validate) reason  — any representable value is runnable
//
// A field written inside Hash (e.g. `canon.Shards = 0` to canonicalize a
// result-invariant knob) does not count as read: exclusion-by-zeroing must
// be paired with an //ar:exempt(hash) on the field, so it can never happen
// silently again.
//
// When Config also declares a PrefixHash method — the checkpoint
// content-address keying prefix-shared warm starts — the same coverage
// discipline applies: every field must be read by PrefixHash, or carry
// //ar:exempt(hash) (excluded from both keys because it is
// result-invariant), or carry //ar:prefix(<scope>) <reason> declaring why
// the field can bound or reshape the run without influencing any cycle the
// machine actually executes. A field that silently escapes PrefixHash
// would let two diverging configurations share a checkpoint.
package hashcov

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the Config hash/validate coverage checker.
var Analyzer = &analysis.Analyzer{
	Name: "hashcov",
	Doc: "require every Config field to be read by both Hash() and Validate(), " +
		"or carry a scoped //ar:exempt on its declaration",
	Run: run,
}

// Exemption scopes.
const (
	ScopeHash     = "hash"
	ScopeValidate = "validate"
)

func run(pass *analysis.Pass) error {
	cfg := configStruct(pass)
	if cfg == nil {
		return nil
	}
	st, ok := cfg.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	hash := methodOf(pass, cfg, "Hash")
	validate := methodOf(pass, cfg, "Validate")
	if hash == nil || validate == nil {
		return nil
	}

	graph := analysis.BuildCallGraph(pass)
	hashReads := fieldReads(pass, graph, hash, st)
	validateReads := fieldReads(pass, graph, validate, st)

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !hashReads[f] {
			pass.Reportf(f.Pos(), ScopeHash,
				"Config field %s is not read by Hash(): a change to it would not "+
					"change the result-cache key (add it to Hash or //ar:exempt(hash) "+
					"with the reason it cannot affect results)", f.Name())
		}
		if !validateReads[f] {
			pass.Reportf(f.Pos(), ScopeValidate,
				"Config field %s is not read by Validate(): invalid values reach "+
					"the machine assembly unchecked (validate it or "+
					"//ar:exempt(validate) with the reason every value is runnable)",
				f.Name())
		}
	}

	// PrefixHash, when present, is held to the same standard as Hash: the
	// report carries ScopeHash so fields excluded from both digests for the
	// same result-invariance reason need only their //ar:exempt(hash), while
	// prefix-only exclusions declare themselves with //ar:prefix.
	if prefix := methodOf(pass, cfg, "PrefixHash"); prefix != nil {
		prefixReads := fieldReads(pass, graph, prefix, st)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if prefixReads[f] || pass.PrefixExempt(f.Pos()) {
				continue
			}
			pass.Reportf(f.Pos(), ScopeHash,
				"Config field %s is not read by PrefixHash(): two configurations "+
					"differing only in it would share a checkpoint content-address "+
					"(render it in PrefixHash or annotate the field "+
					"//ar:prefix(<scope>) with the reason it cannot influence any "+
					"executed cycle)", f.Name())
		}
	}
	return nil
}

// configStruct finds the package-level type named Config.
func configStruct(pass *analysis.Pass) *types.TypeName {
	obj := pass.Pkg.Scope().Lookup("Config")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	return tn
}

// methodOf returns the declared method named name on Config (either
// receiver form).
func methodOf(pass *analysis.Pass, cfg *types.TypeName, name string) *types.Func {
	named, ok := cfg.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// fieldReads returns the Config fields read inside fn and the package-local
// functions it calls, transitively. A selector that is the direct target of
// an assignment is a write, not a read.
func fieldReads(pass *analysis.Pass, graph *analysis.CallGraph, fn *types.Func, st *types.Struct) map[*types.Var]bool {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	reads := make(map[*types.Var]bool)
	for reached := range graph.Reach([]*types.Func{fn}) {
		decl := graph.Decls[reached]
		if decl == nil {
			continue
		}
		assigned := assignmentTargets(decl.Body)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || !fields[obj] {
				return true
			}
			if assigned[sel] {
				return true
			}
			reads[obj] = true
			return true
		})
	}
	return reads
}

// assignmentTargets collects selector expressions appearing as direct
// assignment LHS targets within body.
func assignmentTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}
