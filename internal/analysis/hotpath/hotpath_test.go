package hotpath_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hotpath"
)

// TestHotFixture exercises every allocation class inside an //ar:hotpath
// closure — append growth, closures, map/slice/make/new, composite-literal
// escapes, implicit and explicit interface boxing — plus the shapes that
// must stay silent: cold functions, panic arguments, interface dispatch
// (which does not extend the closure), and reasoned exemptions.
func TestHotFixture(t *testing.T) {
	antest.Run(t, "testdata/hot", hotpath.Analyzer)
}
