// Package hot is the hotpath analyzer fixture: one //ar:hotpath root, one
// transitively reached helper, one cold function, and every allocation
// class the analyzer flags — the shapes the 300k allocs/op CI ceiling used
// to catch only after the fact, as an aggregate number.
package hot

type engine struct {
	queue []uint64
	free  []uint64
	seen  map[uint64]bool
}

type ticker interface{ tick(uint64) }

//ar:hotpath
func (e *engine) Tick(cycle uint64) {
	e.queue = append(e.queue, cycle) // want `append may grow its backing array`
	e.helper(cycle)
	cb := func() { e.seen[cycle] = true } // want `closure literal allocates`
	cb()
	e.seen = map[uint64]bool{} // want `map literal allocates`
	buf := make([]uint64, 0)   // want `make\(\.\.\.\) allocates`
	box(cycle)                 // want `passing uint64 as interface`
	n := new(engine)           // want `new\(\.\.\.\) heap-allocates`
	p := &engine{}             // want `&composite literal heap-allocates`
	_ = any(cycle)             // want `conversion of uint64 to interface`
	if buf == nil || n == nil || p == nil {
		panic(append([]byte{}, 'x')) // cold: constructs inside panic arguments are not flagged
	}
	e.free = append(e.free, cycle) //ar:exempt(hotpath) free list reaches steady-state capacity
}

// helper is not annotated itself; it is hot because Tick reaches it.
func (e *engine) helper(cycle uint64) {
	e.queue = append(e.queue, cycle) // want `append may grow .*reached from //ar:hotpath Tick`
}

// cold is neither annotated nor reached from a hot root: allocation here is
// fine and must not be flagged.
func (e *engine) cold() []uint64 {
	return make([]uint64, 8)
}

// dispatch calls through an interface: the closure is static-call only, so
// t's concrete tick is NOT pulled into the hot set by this call.
//
//ar:hotpath
func dispatch(t ticker, cycle uint64) {
	t.tick(cycle)
}

func box(v any) { _ = v }
