// Package hotpath turns the CI allocs/op ceiling from a tripwire into a
// pinpointing diagnostic: functions annotated //ar:hotpath (the tick, drain
// and arbitrate paths that must stay allocation-free in steady state) are
// closed transitively over the package-local static call graph, and every
// construct that allocates — or boxes into an interface — inside that
// closure is flagged at its exact position.
//
// Flagged constructs:
//
//   - &T{...}, new(T): a heap allocation whenever the pointer escapes, and
//     an escape-analysis gamble even when it does not;
//   - slice, map and function literals;
//   - make(...) of any kind;
//   - append(...): growth allocates — preallocate capacity at construction
//     (or //ar:exempt amortized free-list growth);
//   - implicit interface conversions at call arguments and explicit
//     conversions to interface types: boxing a non-pointer allocates.
//
// Constructs inside a call to the builtin panic are not flagged: panic
// paths execute at most once per process and are the idiomatic place for
// formatted diagnostics.
//
// The closure is package-local and by static callee name only: calls
// through interfaces (sim.Ticker dispatch) or function values do not extend
// it, so each concrete Tick implementation carries its own annotation.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag allocation and interface boxing in //ar:hotpath functions and everything " +
		"they reach through package-local static calls",
	Run: run,
}

// Scope is the exemption scope token.
const Scope = "hotpath"

func run(pass *analysis.Pass) error {
	graph := analysis.BuildCallGraph(pass)
	var roots []*types.Func
	for fn, decl := range graph.Decls {
		if analysis.IsHotAnnotated(decl) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool {
		return graph.Decls[roots[i]].Pos() < graph.Decls[roots[j]].Pos()
	})
	hot := graph.Reach(roots)

	fns := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		return graph.Decls[fns[i]].Pos() < graph.Decls[fns[j]].Pos()
	})
	for _, fn := range fns {
		checkFunc(pass, graph.Decls[fn], fn, hot[fn])
	}
	return nil
}

// checkFunc walks one hot function body.
func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl, fn, root *types.Func) {
	where := "hot path " + fn.Name()
	if root != fn {
		where += " (reached from //ar:hotpath " + root.Name() + ")"
	}
	cold := panicSpans(pass, decl.Body)
	report := func(pos token.Pos, format string, args ...interface{}) {
		for _, sp := range cold {
			if pos >= sp.lo && pos < sp.hi {
				return
			}
		}
		args = append(args, where)
		pass.Reportf(pos, Scope, format+" in %s", args...)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates")
			return false // the closure body runs elsewhere
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal heap-allocates")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, report)
		}
		return true
	})
}

// checkCall flags builtin allocators and interface boxing at call sites.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	// Explicit conversion to an interface type: T(x) where T is an
	// interface boxes x.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				report(call.Pos(), "conversion of %s to interface %s boxes",
					analysis.TypeName(at, pass.Pkg), analysis.TypeName(tv.Type, pass.Pkg))
			}
			return
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(call.Pos(), "new(...) heap-allocates")
				return
			case "make":
				report(call.Pos(), "make(...) allocates")
				return
			case "append":
				report(call.Pos(), "append may grow its backing array; preallocate capacity")
				return
			case "panic", "len", "cap", "copy", "delete", "print", "println",
				"min", "max", "clear", "real", "imag", "complex", "recover":
				return
			}
		}
	}
	// Implicit interface conversions at argument positions.
	sig, ok := typeOfCallee(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic instantiation, not boxing
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		report(arg.Pos(), "passing %s as interface %s boxes",
			analysis.TypeName(at, pass.Pkg), analysis.TypeName(pt, pass.Pkg))
	}
}

// typeOfCallee returns the signature of the called function, if statically
// known.
func typeOfCallee(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

// panicSpans collects the argument ranges of every panic(...) call in body:
// diagnostics inside them are suppressed (cold path).
func panicSpans(pass *analysis.Pass, body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			spans = append(spans, span{lo: call.Lparen, hi: call.Rparen + 1})
		}
		return true
	})
	return spans
}
