// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repository's static checkers (cmd/arlint) need no network access and no
// external modules. It provides the Analyzer/Pass/Diagnostic model, the
// repository's `//ar:` annotation grammar, and diagnostic plumbing shared by
// the four invariant checkers (determinism, poolown, hotpath, hashcov).
//
// # Annotation grammar
//
//	//ar:hotpath
//	    On a function's doc comment: the function (and everything it calls
//	    statically within its package) is under the allocs/op ceiling; the
//	    hotpath analyzer flags allocation and boxing inside it.
//
//	//ar:exempt <reason>
//	//ar:exempt(<scope>) <reason>
//	    Suppresses diagnostics on the annotated line and on the line
//	    directly below it (so the comment may sit on its own line above the
//	    code it exempts, or trail it). The reason string is mandatory — an
//	    exemption without one is itself a diagnostic. The optional scope
//	    restricts the exemption to one diagnostic class ("determinism",
//	    "poolown", "hotpath", "hash", "validate"); without a scope the
//	    exemption applies to every analyzer. Prefer fixing over exempting:
//	    an exemption is a reviewed claim that the flagged construct cannot
//	    affect simulated results (see DESIGN.md "Static invariants").
//
//	//ar:prefix(<scope>) <reason>
//	    Declares a Config field deliberately excluded from PrefixHash, the
//	    checkpoint content-address (enforced by hashcov's PrefixHash
//	    coverage check). Unlike //ar:exempt, the scope is mandatory: it
//	    names the exclusion class (e.g. "cycle-inert" — the field bounds
//	    how many cycles run but can never alter what any executed cycle
//	    computes). The reason is mandatory too. The annotation covers its
//	    own line and the line directly below it, like //ar:exempt.
//
//	//ar:kernel
//	    File-level marker opting the file's package into the determinism
//	    checks outside the built-in kernel package list (used by analyzer
//	    test fixtures).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description shown by `arlint -help`.
	Doc string
	// Run executes the check against one package and reports findings
	// through the pass. A nil error with zero reports means the package is
	// clean.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags    *[]Diagnostic
	exempts  map[string][]exemption // filename -> parsed //ar:exempt comments
	prefixes map[string][]exemption // filename -> parsed //ar:prefix comments
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Scope classifies the finding for scoped exemptions; it is one of the
	// scope tokens of the annotation grammar.
	Scope   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// exemption is one parsed //ar:exempt comment.
type exemption struct {
	line   int    // line the comment sits on
	scope  string // "" = every scope
	reason string
}

const (
	exemptPrefix = "ar:exempt"
	prefixMark   = "ar:prefix"
	hotPrefix    = "ar:hotpath"
	kernelMark   = "ar:kernel"
)

// NewPass assembles a pass over a type-checked package and parses the
// exemption annotations of every file. Malformed exemptions (no reason
// string; for //ar:prefix, also no scope) are reported immediately, before
// the analyzer runs.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink *[]Diagnostic) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		diags:     sink,
		exempts:   make(map[string][]exemption),
		prefixes:  make(map[string][]exemption),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var mark string
				var into map[string][]exemption
				switch {
				case strings.HasPrefix(text, exemptPrefix):
					mark, into = "//"+exemptPrefix, p.exempts
				case strings.HasPrefix(text, prefixMark):
					mark, into = "//"+prefixMark, p.prefixes
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, mark[2:])
				scope := ""
				if strings.HasPrefix(rest, "(") {
					end := strings.Index(rest, ")")
					if end < 0 {
						p.emit(Diagnostic{Pos: pos, Analyzer: a.Name, Scope: "grammar",
							Message: "malformed " + mark + ": unterminated scope parenthesis"})
						continue
					}
					scope = rest[1:end]
					rest = rest[end+1:]
				} else if mark == "//"+prefixMark {
					p.emit(Diagnostic{Pos: pos, Analyzer: a.Name, Scope: "grammar",
						Message: "//ar:prefix requires a (scope) naming the exclusion class, e.g. //ar:prefix(cycle-inert)"})
					continue
				}
				reason := strings.TrimSpace(rest)
				if reason == "" {
					p.emit(Diagnostic{Pos: pos, Analyzer: a.Name, Scope: "grammar",
						Message: mark + " requires a reason string explaining why the construct is safe"})
					continue
				}
				into[pos.Filename] = append(into[pos.Filename],
					exemption{line: pos.Line, scope: scope, reason: reason})
			}
		}
	}
	return p
}

// Reportf records a diagnostic at pos unless an in-scope //ar:exempt
// annotation covers its line.
func (p *Pass) Reportf(pos token.Pos, scope, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, ex := range p.exempts[position.Filename] {
		if (ex.scope == "" || ex.scope == scope) &&
			(ex.line == position.Line || ex.line == position.Line-1) {
			return
		}
	}
	p.emit(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Scope:    scope,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PrefixExempt reports whether an //ar:prefix annotation covers the line
// at pos (the annotation's own line or the line directly below it, the
// same window Reportf gives //ar:exempt). The annotation's scope is a
// classification, not a filter: any //ar:prefix on the line silences the
// PrefixHash coverage check for it.
func (p *Pass) PrefixExempt(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for _, ex := range p.prefixes[position.Filename] {
		if ex.line == position.Line || ex.line == position.Line-1 {
			return true
		}
	}
	return false
}

func (p *Pass) emit(d Diagnostic) { *p.diags = append(*p.diags, d) }

// HasKernelMark reports whether any file of the pass carries the
// //ar:kernel marker comment.
func (p *Pass) HasKernelMark() bool {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == kernelMark {
					return true
				}
			}
		}
	}
	return false
}

// IsHotAnnotated reports whether the function declaration carries the
// //ar:hotpath marker in its doc comment.
func IsHotAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if t == hotPrefix || strings.HasPrefix(t, hotPrefix+" ") {
			return true
		}
	}
	return false
}

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every unit and returns the merged, sorted,
// deduplicated diagnostics. Identical findings reported by more than one
// analyzer (the shared grammar checks) collapse to one line.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			pass := NewPass(a, u.Fset, u.Files, u.Pkg, u.TypesInfo, &diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Pkg.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Pos == diags[i-1].Pos && d.Message == diags[i-1].Message {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

// TypeName returns a type's name qualified relative to pkg (imported types
// keep their package name), for diagnostics.
func TypeName(t types.Type, pkg *types.Package) string {
	return types.TypeString(t, types.RelativeTo(pkg))
}
