// Package antest is the fixture-driven test harness for the repository's
// analyzers, in the spirit of golang.org/x/tools/go/analysis/analysistest
// but built on the same stdlib-only stack as cmd/arlint. A fixture is a
// directory of Go files forming one package; expected findings are written
// in the source as trailing comments:
//
//	l.miss = append(l.miss, m) // want "append may grow"
//
// Each `want` takes one or more quoted regular expressions; every
// diagnostic the analyzers report on that line must be matched by one of
// them, and every expectation must be consumed by a diagnostic. Fixture
// directories live under testdata/, which the go tool ignores, so broken
// or deliberately buggy fixture code never reaches `go build ./...`.
package antest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run type-checks the fixture package in dir (fixtures may import real
// repository packages such as repro/internal/network; they resolve through
// the same loader arlint uses), applies the analyzers, and fails the test
// unless the reported diagnostics exactly cover the fixture's // want
// expectations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, fset, files := analyze(t, dir, analyzers...)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

// analyze loads and type-checks the fixture and returns the diagnostics.
func analyze(t *testing.T, dir string, analyzers ...*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	root, err := load.ModuleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer:    load.New(root),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	pkg, _ := conf.Check("fixture/"+filepath.Base(abs), fset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("fixture does not type-check:\n  %s", strings.Join(typeErrs, "\n  "))
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	diags, err := analysis.Run([]*analysis.Unit{unit}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags, fset, files
}

// wantRE matches the expectation syntax: `want` followed by one or more
// Go string literals (double-quoted or backquoted).
var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants parses every // want comment in the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v",
							filepath.Base(pos.Filename), pos.Line, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v",
							filepath.Base(pos.Filename), pos.Line, raw, err)
					}
					wants = append(wants, &want{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// consume marks the first unmatched expectation on the diagnostic's line
// whose pattern matches; false means the diagnostic was not expected.
func consume(wants []*want, d analysis.Diagnostic) bool {
	file := filepath.Base(d.Pos.Filename)
	msg := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if w.matched || w.file != file || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) || w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
