package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the intra-package static call graph: function/method
// declarations and the declared callees each one mentions. Calls through
// interfaces, function values and closures are not edges — the analyzers
// that use the graph (hotpath, hashcov) require annotations/reads on the
// concrete implementations instead (DESIGN.md "Static invariants").
type CallGraph struct {
	// Decls maps each declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees maps a declared function to the package-local functions it
	// calls by name (deduplicated, in first-call order).
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph scans the pass's files once.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		Callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[obj] = fd
		}
	}
	for obj, fd := range g.Decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeOf(pass, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := g.Decls[callee]; !local {
				return true
			}
			seen[callee] = true
			g.Callees[obj] = append(g.Callees[obj], callee)
			return true
		})
	}
	return g
}

// CalleeOf resolves a call expression to the statically named function or
// method, or nil for calls through values, interfaces or type conversions.
func CalleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls resolve to the interface's *types.Func,
		// which has no local declaration, so they naturally fall out when
		// the caller checks Decls membership.
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// Reach returns the transitive closure over the call graph from the given
// roots, mapping each reached function to the root that first reached it
// (roots map to themselves). Iteration order is deterministic given a
// deterministic root order.
func (g *CallGraph) Reach(roots []*types.Func) map[*types.Func]*types.Func {
	reached := make(map[*types.Func]*types.Func)
	var walk func(fn, root *types.Func)
	walk = func(fn, root *types.Func) {
		if _, ok := reached[fn]; ok {
			return
		}
		reached[fn] = root
		for _, c := range g.Callees[fn] {
			walk(c, root)
		}
	}
	for _, r := range roots {
		walk(r, r)
	}
	return reached
}
