// Package determinism flags constructs that can make simulation results
// differ between runs of the same configuration — the invariant the whole
// result-caching tier (content-addressed cache, arserved store, sweep
// dedup) is built on. Two shipped bugs motivated it: the L1 unsent-miss map
// iteration (fixed in PR 1) and the FlowEntry.Children map iteration (fixed
// in PR 4), both of which made packet order depend on Go's randomized map
// hash seed.
//
// Inside kernel packages it reports:
//
//   - range over a map: iteration order is randomized per process; results
//     that depend on it are not bit-identical. Iterate a sorted or
//     insertion-ordered slice instead, or //ar:exempt with the reason the
//     order provably cannot reach simulated state.
//   - time.Now/Since/Until: wall-clock reads differ per run.
//   - math/rand global functions: the global source is seeded per process;
//     use sim.Rand (or an explicitly seeded *rand.Rand) instead.
//   - select with two or more ready communication cases: the winner is
//     chosen uniformly at random by the runtime.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag nondeterministic constructs (map iteration, wall clock, global rand, multi-case select) " +
		"in simulation kernel packages",
	Run: run,
}

// Scope is the exemption scope token.
const Scope = "determinism"

// kernelPackages are the packages whose code feeds simulated state; the
// determinism contract is load-bearing exactly there. Other packages
// (service, sweep drivers, CLIs) opt in with a //ar:kernel file marker.
var kernelPackages = map[string]bool{
	"repro/internal/sim":     true,
	"repro/internal/network": true,
	"repro/internal/cpu":     true,
	"repro/internal/cache":   true,
	"repro/internal/core":    true,
	"repro/internal/dram":    true,
	"repro/internal/hmc":     true,
	"repro/internal/mem":     true,
	"repro/internal/system":  true,
}

func run(pass *analysis.Pass) error {
	if !kernelPackages[pass.Pkg.Path()] && !pass.HasKernelMark() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.Ident:
				checkIdent(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, n *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(n.For, Scope,
			"range over map %s iterates in randomized order; simulated state "+
				"reached from here is not bit-identical across runs — iterate a "+
				"sorted or insertion-ordered slice instead",
			analysis.TypeName(t, pass.Pkg))
	}
}

func checkSelect(pass *analysis.Pass, n *ast.SelectStmt) {
	comm := 0
	for _, c := range n.Body.List {
		if cl, ok := c.(*ast.CommClause); ok && cl.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(n.Select, Scope,
			"select with %d communication cases: the runtime picks a ready case "+
				"uniformly at random", comm)
	}
}

// wallClock lists the time package functions that read the wall clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func checkSelector(pass *analysis.Pass, n *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	reportFunc(pass, n.Sel.Pos(), fn)
}

// checkIdent catches dot-imported or aliased references (rare, but the
// check is cheap and closes the loophole).
func checkIdent(pass *analysis.Pass, n *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return
	}
	reportFunc(pass, n.Pos(), fn)
}

func reportFunc(pass *analysis.Pass, pos token.Pos, fn *types.Func) {
	sig, _ := fn.Type().(*types.Signature)
	pkgPath := fn.Pkg().Path()
	switch {
	case pkgPath == "time" && wallClock[fn.Name()] && (sig == nil || sig.Recv() == nil):
		pass.Reportf(pos, Scope,
			"time.%s reads the wall clock; simulation must run on the cycle "+
				"counter only", fn.Name())
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
		(sig == nil || sig.Recv() == nil):
		// Constructors of explicitly seeded generators are fine; the
		// hazard is the per-process-seeded global source.
		if name := fn.Name(); name != "New" && name != "NewSource" &&
			name != "NewPCG" && name != "NewChaCha8" && name != "NewZipf" {
			pass.Reportf(pos, Scope,
				"%s.%s draws from the process-seeded global source; use sim.Rand "+
					"(or an explicitly seeded *rand.Rand)", pkgPath, fn.Name())
		}
	}
}
