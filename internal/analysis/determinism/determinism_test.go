package determinism_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/determinism"
)

// TestKernelFixture exercises every diagnostic class against a fixture that
// reproduces the shipped map-iteration bugs, plus the exempted and fixed
// shapes that must stay silent.
func TestKernelFixture(t *testing.T) {
	antest.Run(t, "testdata/kernel", determinism.Analyzer)
}

// TestNonKernelSilent checks the gate: packages without the //ar:kernel
// marker (and outside the built-in kernel list) produce no diagnostics.
func TestNonKernelSilent(t *testing.T) {
	antest.Run(t, "testdata/nonkernel", determinism.Analyzer)
}
