// Package nonkernel has no //ar:kernel marker and is not in the built-in
// kernel list: the determinism analyzer must stay silent even though the
// code ranges over a map (export paths legitimately do, after sorting).
package nonkernel

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
