// Package kernel is the determinism analyzer fixture. The //ar:kernel
// marker below opts it into the kernel checks; each construct reproduces a
// bug class the analyzer exists to catch, headed by the map-iteration
// nondeterminism that shipped twice (the L1 unsent-miss queue and the
// FlowEntry children list).
//
//ar:kernel
package kernel

import (
	"math/rand"
	"time"
)

type miss struct{ sent bool }

// flushMisses is the shipped L1 bug class: draining a pending-miss map in
// hash order makes packet injection order differ run to run.
func flushMisses(pending map[uint64]*miss) {
	for _, m := range pending { // want `range over map .* randomized order`
		m.sent = true
	}
}

// flushSorted is the fixed shape: keys are collected and sorted before any
// simulated state is touched, and the collection loop is exempted.
func flushSorted(pending map[uint64]*miss, keys []uint64) {
	keys = keys[:0]
	for k := range pending { //ar:exempt(determinism) key collection only; the slice is sorted before use
		keys = append(keys, k)
	}
	sortU64(keys)
	for _, k := range keys {
		pending[k].sent = true
	}
}

func sortU64(keys []uint64) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// stamp reads the wall clock, which differs per run.
func stamp() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.UnixNano()
}

// jitter draws from the process-seeded global source.
func jitter() int {
	return rand.Intn(8) // want `math/rand\.Intn draws from the process-seeded global source`
}

// seeded constructs an explicitly seeded generator: the allowed form.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// arbitrate lets the runtime pick a ready channel uniformly at random.
func arbitrate(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll is the allowed select shape: one communication case plus default.
func poll(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}
