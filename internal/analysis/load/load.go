// Package load type-checks Go packages from source using only the standard
// library and the go command — a minimal, offline replacement for
// golang.org/x/tools/go/packages sufficient for the arlint analyzers.
//
// Packages are enumerated with `go list -json -deps`, which yields the full
// transitive closure in dependency-first order, and type-checked from source
// in that order. Dependency packages (stdlib, non-target repo packages) are
// checked with IgnoreFuncBodies for speed — the analyzers only need full
// syntax and types.Info for the target packages. The go command is invoked
// with CGO_ENABLED=0 so that cgo-capable stdlib packages (net, os/user)
// resolve to their pure-Go variants, which type-check cleanly from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Loader loads and type-checks packages on demand, caching results for the
// lifetime of the loader. It implements types.Importer, so it can also serve
// as the importer for externally parsed files (the analyzer test fixtures).
type Loader struct {
	// Dir is the directory `go list` runs in; it must be inside the module.
	Dir  string
	Fset *token.FileSet

	checked map[string]*types.Package
	astOf   map[string][]*ast.File
	infoOf  map[string]*types.Info
	seen    map[string]listPackage
}

// New returns a loader rooted at dir (the module root or any directory
// within the module).
func New(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		checked: make(map[string]*types.Package),
		astOf:   make(map[string][]*ast.File),
		infoOf:  make(map[string]*types.Info),
		seen:    make(map[string]listPackage),
	}
}

// goList runs `go list -e -json -deps` over the patterns and returns the
// package list in dependency-first order.
func (l *Loader) goList(patterns ...string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching the go list patterns (with their
// full dependency closure) and returns one analysis unit per matched
// package, in listing order. Target packages get full bodies and a complete
// types.Info; dependencies are declaration-checked only.
func (l *Loader) Load(patterns ...string) ([]*analysis.Unit, error) {
	pkgs, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var units []*analysis.Unit
	for _, p := range pkgs {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		l.seen[p.ImportPath] = p
	}
	for _, p := range pkgs {
		if err := l.check(p, !p.DepOnly); err != nil {
			if p.DepOnly {
				// A broken dependency only matters if a target needs the
				// missing piece; the target's own check will surface it.
				continue
			}
			return nil, err
		}
		if !p.DepOnly {
			units = append(units, &analysis.Unit{
				Fset:      l.Fset,
				Files:     l.astOf[p.ImportPath],
				Pkg:       l.checked[p.ImportPath],
				TypesInfo: l.infoOf[p.ImportPath],
			})
		}
	}
	return units, nil
}

// check type-checks one listed package from source, caching the result.
// With full=true, function bodies are checked and types.Info recorded.
func (l *Loader) check(p listPackage, full bool) error {
	if p.ImportPath == "unsafe" {
		l.checked["unsafe"] = types.Unsafe
		return nil
	}
	if prev, ok := l.checked[p.ImportPath]; ok && prev != nil {
		if !full || l.infoOf[p.ImportPath] != nil {
			return nil
		}
		// Previously checked as a dependency; re-check with bodies.
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("package %s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	var firstErr error
	conf := types.Config{
		Importer:         importerFunc(l.importFor(p)),
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	tpkg, err := conf.Check(p.ImportPath, l.Fset, files, info)
	if err == nil && firstErr != nil {
		err = firstErr
	}
	if err != nil && full {
		return fmt.Errorf("package %s: type error: %v", p.ImportPath, err)
	}
	// Declaration-only dependencies tolerate residual errors (e.g. bodies
	// referencing assembly stubs); the partial package is still usable.
	l.checked[p.ImportPath] = tpkg
	if full {
		l.astOf[p.ImportPath] = files
		l.infoOf[p.ImportPath] = info
	}
	return nil
}

// importFor resolves import paths as seen from package p: the ImportMap
// handles stdlib vendoring (golang.org/x/... -> vendor/golang.org/x/...).
func (l *Loader) importFor(p listPackage) func(string) (*types.Package, error) {
	return func(path string) (*types.Package, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		return l.Import(path)
	}
}

// Import implements types.Importer over the loader's cache, listing and
// checking the package (and its dependencies) on demand. External callers
// (test fixtures) use it to resolve both stdlib and repro imports.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok && pkg != nil {
		return pkg, nil
	}
	if pkg, ok := l.checked["vendor/"+path]; ok && pkg != nil {
		return pkg, nil
	}
	pkgs, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		l.seen[p.ImportPath] = p
		if err := l.check(p, false); err != nil {
			return nil, err
		}
	}
	if pkg, ok := l.checked[path]; ok && pkg != nil {
		return pkg, nil
	}
	if pkg, ok := l.checked["vendor/"+path]; ok && pkg != nil {
		return pkg, nil
	}
	return nil, fmt.Errorf("load: cannot resolve import %q", path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}
