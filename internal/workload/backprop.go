package workload

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Backprop is the neural-network training benchmark (§4.2.1, Rodinia): the
// feed-forward pass aggregates input×weight products per hidden unit (the
// optimized region), followed by an unoptimized weight-adjustment pass that
// keeps normal data movement in the trace (the Fig 5.4 "other phases"
// effect).
type Backprop struct {
	scale   Scale
	threads int

	env    *Env
	nIn    int
	nHid   int
	in     F64Array
	w      F64Array // row-major [nIn][nHid]
	hid    F64Array // gathered pre-activation sums
	out    F64Array // sigmoid(hid)
	delta  F64Array // per-hidden-unit error used by the adjust pass
	inv    []float64
	wv     []float64
	refSum []float64
	refW   []float64
}

// NewBackprop builds the benchmark.
func NewBackprop(scale Scale, threads int) *Backprop {
	return &Backprop{scale: scale, threads: threads}
}

// Name implements Workload.
func (b *Backprop) Name() string { return "backprop" }

func (b *Backprop) sizes() (nIn, nHid int) {
	switch b.scale {
	case ScaleTiny:
		return 64, 8
	case ScaleMedium:
		return 2048, 96
	default:
		return 1024, 48
	}
}

// Init implements Workload.
func (b *Backprop) Init(env *Env) {
	b.env = env
	b.nIn, b.nHid = b.sizes()
	b.in = NewF64Array(env, b.nIn)
	b.w = NewF64Array(env, b.nIn*b.nHid)
	b.hid = NewF64Array(env, b.nHid)
	b.out = NewF64Array(env, b.nHid)
	b.delta = NewF64Array(env, b.nHid)
	b.inv = make([]float64, b.nIn)
	b.wv = make([]float64, b.nIn*b.nHid)
	for i := range b.inv {
		b.inv[i] = env.Rand.Float64()
		b.in.Set(i, b.inv[i])
	}
	for i := range b.wv {
		b.wv[i] = env.Rand.Float64()*0.2 - 0.1
		b.w.Set(i, b.wv[i])
	}
	b.refSum = make([]float64, b.nHid)
	for j := 0; j < b.nHid; j++ {
		var acc float64
		for i := 0; i < b.nIn; i++ {
			acc += b.inv[i] * b.wv[i*b.nHid+j]
		}
		b.refSum[j] = acc
		b.hid.Set(j, 0)
		b.out.Set(j, 0)
		b.delta.Set(j, sigmoid(acc)*(1-sigmoid(acc)))
	}
	// Reference weight adjustment: w += eta * delta[j] * in[i].
	const eta = 0.3
	b.refW = make([]float64, len(b.wv))
	for i := 0; i < b.nIn; i++ {
		for j := 0; j < b.nHid; j++ {
			d := sigmoid(b.refSum[j]) * (1 - sigmoid(b.refSum[j]))
			b.refW[i*b.nHid+j] = b.wv[i*b.nHid+j] + eta*d*b.inv[i]
		}
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Streams implements Workload: hidden units are partitioned over threads.
func (b *Backprop) Streams(mode Mode) []isa.Stream {
	const eta = 0.3
	traces := make([]*Trace, b.env.Threads)
	for tid := range traces {
		t := &Trace{}
		lo, hi := span(b.nHid, b.env.Threads, tid)
		// Feed-forward aggregation (region of interest). The active variant
		// issues every hidden unit's updates first, overlapping the flows,
		// then fences with the gathers before the activations read the
		// aggregated sums.
		if mode == ModeBaseline {
			for j := lo; j < hi; j++ {
				acc := 0.0
				for i := 0; i < b.nIn; i++ {
					t.Int()
					t.Ld(b.in.At(i))
					t.Ld(b.w.At(i*b.nHid + j))
					t.FPMul()
					t.FP()
					acc += b.inv[i] * b.wv[i*b.nHid+j]
				}
				t.St(b.hid.At(j), acc)
			}
		} else {
			for j := lo; j < hi; j++ {
				for i := 0; i < b.nIn; i++ {
					t.Int()
					t.Update(b.in.At(i), b.w.At(i*b.nHid+j), b.hid.At(j), isa.OpMac)
				}
			}
			for j := lo; j < hi; j++ {
				t.Gather(b.hid.At(j), 1)
			}
		}
		// Activation on the host (both modes): sigmoid into out[j].
		for j := lo; j < hi; j++ {
			t.Ld(b.hid.At(j))
			t.FPMul()
			t.FP()
			t.St(b.out.At(j), sigmoid(b.refSum[j]))
		}
		t.Barrier()
		// Weight adjustment (unoptimized in both modes, §4.2.1): threads
		// take row bands and walk the weight matrix row-major, the way the
		// Rodinia kernel parallelizes this phase.
		rlo, rhi := span(b.nIn, b.env.Threads, tid)
		for i := rlo; i < rhi; i++ {
			t.Ld(b.in.At(i))
			for j := 0; j < b.nHid; j++ {
				d := sigmoid(b.refSum[j]) * (1 - sigmoid(b.refSum[j]))
				t.Int()
				t.Ld(b.delta.At(j))
				t.Ld(b.w.At(i*b.nHid + j))
				t.FPMul()
				t.FP()
				t.St(b.w.At(i*b.nHid+j), b.wv[i*b.nHid+j]+eta*d*b.inv[i])
			}
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (b *Backprop) Verify() error {
	for j := 0; j < b.nHid; j++ {
		if err := checkClose(fmt.Sprintf("backprop hid[%d]", j), b.hid.Get(j), b.refSum[j]); err != nil {
			return err
		}
		if err := checkClose(fmt.Sprintf("backprop out[%d]", j), b.out.Get(j), sigmoid(b.refSum[j])); err != nil {
			return err
		}
	}
	for i := 0; i < b.nIn*b.nHid; i++ {
		if err := checkClose(fmt.Sprintf("backprop w[%d]", i), b.w.Get(i), b.refW[i]); err != nil {
			return err
		}
	}
	return nil
}
