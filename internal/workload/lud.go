package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// LUD is the LU decomposition benchmark (§4.2.1, Rodinia): blocked
// right-looking LU without pivoting. Each step factorizes the diagonal
// block and updates the perimeter blocks on the host, then updates the
// trailing internal submatrix — dot products of perimeter rows and columns
// — which is the Active-Routing region of interest: one flow of
// block-length multiply-subtract updates per internal element.
type LUD struct {
	scale   Scale
	threads int

	env *Env
	n   int
	bs  int
	a   F64Array
	av  []float64 // generator mirror, factorized in place
	ref []float64
}

// NewLUD builds the benchmark.
func NewLUD(scale Scale, threads int) *LUD {
	return &LUD{scale: scale, threads: threads}
}

// Name implements Workload.
func (l *LUD) Name() string { return "lud" }

func (l *LUD) sizes() (n, bs int) {
	switch l.scale {
	case ScaleTiny:
		return 16, 8
	case ScaleMedium:
		return 128, 32
	default:
		return 96, 32
	}
}

// Init implements Workload: a diagonally dominant matrix keeps the
// factorization stable without pivoting.
func (l *LUD) Init(env *Env) {
	l.env = env
	l.n, l.bs = l.sizes()
	n := l.n
	l.a = NewF64Array(env, n*n)
	l.av = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := env.Rand.Float64()*2 - 1
			if i == j {
				v += float64(n)
			}
			l.av[i*n+j] = v
			l.a.Set(i*n+j, v)
		}
	}
	// Reference factorization (plain right-looking LU, in place).
	l.ref = append([]float64(nil), l.av...)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			l.ref[i*n+k] /= l.ref[k*n+k]
			for j := k + 1; j < n; j++ {
				l.ref[i*n+j] -= l.ref[i*n+k] * l.ref[k*n+j]
			}
		}
	}
}

// Streams implements Workload. The generator factorizes its mirror step by
// step in the deterministic order the barriers enforce, so store values and
// the in-network results agree with the reference.
func (l *LUD) Streams(mode Mode) []isa.Stream {
	n, bs := l.n, l.bs
	steps := n / bs
	a := append([]float64(nil), l.av...)
	traces := make([]*Trace, l.env.Threads)
	for i := range traces {
		traces[i] = &Trace{}
	}
	at := func(i, j int) mem.VAddr { return l.a.At(i*n + j) }

	for s := 0; s < steps; s++ {
		d := s * bs // diagonal block origin
		// Phase 1 (thread 0, host in all modes): factorize the diagonal
		// block in place.
		t0 := traces[0]
		for k := d; k < d+bs; k++ {
			t0.Ld(at(k, k))
			for i := k + 1; i < d+bs; i++ {
				a[i*n+k] /= a[k*n+k]
				t0.Ld(at(i, k))
				t0.FPMul()
				t0.St(at(i, k), a[i*n+k])
				for j := k + 1; j < d+bs; j++ {
					a[i*n+j] -= a[i*n+k] * a[k*n+j]
					t0.Ld(at(k, j))
					t0.FPMul()
					t0.FP()
					t0.St(at(i, j), a[i*n+j])
				}
			}
		}
		for _, t := range traces {
			t.Barrier()
		}
		if d+bs >= n {
			break
		}
		// Phase 2 (host in all modes): perimeter row and column blocks.
		// Row blocks: A[d:d+bs, d+bs:] gets L^-1 applied; column blocks:
		// A[d+bs:, d:d+bs] gets U^-1 applied. Columns are partitioned over
		// threads.
		rest := n - d - bs
		for tid := 0; tid < l.env.Threads; tid++ {
			t := traces[tid]
			lo, hi := span(rest, l.env.Threads, tid)
			for c := lo; c < hi; c++ {
				// Row perimeter: column j of A[d:d+bs, d+bs:] gets L^-1.
				j := d + bs + c
				for k := d; k < d+bs; k++ {
					for i := k + 1; i < d+bs; i++ {
						a[i*n+j] -= a[i*n+k] * a[k*n+j]
						t.Ld(at(i, k))
						t.Ld(at(k, j))
						t.FPMul()
						t.FP()
					}
				}
				for i := d; i < d+bs; i++ {
					t.St(at(i, j), a[i*n+j])
				}
				// Column perimeter: row i of A[d+bs:, d:d+bs] gets U^-1.
				i := d + bs + c
				for k := d; k < d+bs; k++ {
					a[i*n+k] /= a[k*n+k]
					t.Ld(at(i, k))
					t.Ld(at(k, k))
					t.FPMul()
					for kk := k + 1; kk < d+bs; kk++ {
						a[i*n+kk] -= a[i*n+k] * a[k*n+kk]
						t.Ld(at(k, kk))
						t.FPMul()
						t.FP()
					}
				}
				for k := d; k < d+bs; k++ {
					t.St(at(i, k), a[i*n+k])
				}
			}
		}
		for _, t := range traces {
			t.Barrier()
		}
		// Phase 3 (region of interest): trailing submatrix update,
		// A[i][j] -= sum_k A[i][k]*A[k][j] over the bs-wide band.
		cells := rest * rest
		for tid := 0; tid < l.env.Threads; tid++ {
			t := traces[tid]
			lo, hi := span(cells, l.env.Threads, tid)
			var pend []int // cells with deferred gathers (batched fences)
			flush := func() {
				for _, pc := range pend {
					t.Gather(at(d+bs+pc/rest, d+bs+pc%rest), 1)
				}
				pend = pend[:0]
			}
			for c := lo; c < hi; c++ {
				i := d + bs + c/rest
				j := d + bs + c%rest
				switch mode {
				case ModeBaseline:
					acc := a[i*n+j]
					for k := d; k < d+bs; k++ {
						t.Int()
						t.Ld(at(i, k))
						t.Ld(at(k, j))
						t.FPMul()
						t.FP()
						acc -= a[i*n+k] * a[k*n+j]
					}
					t.St(at(i, j), acc)
				default:
					for k := d; k < d+bs; k++ {
						t.Int()
						t.Update(at(i, k), at(k, j), at(i, j), isa.OpMacSub)
					}
					pend = append(pend, c)
					if len(pend) == gatherBatch {
						flush()
					}
				}
			}
			flush()
		}
		// Mirror the phase-3 arithmetic for the next step's generator state.
		for c := 0; c < cells; c++ {
			i := d + bs + c/rest
			j := d + bs + c%rest
			for k := d; k < d+bs; k++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
		for _, t := range traces {
			t.Barrier()
		}
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (l *LUD) Verify() error {
	for i := 0; i < l.n*l.n; i++ {
		if err := checkClose(fmt.Sprintf("lud A[%d]", i), l.a.Get(i), l.ref[i]); err != nil {
			return err
		}
	}
	return nil
}

// LUDPhase is the §5.4 dynamic-offloading case study: per-thread Doolittle
// LU factorizations (a batched-LU kernel; see DESIGN.md for why the phase
// behaviour matches the thesis's lud analysis). Updates per flow equal
// min(i, j) and grow as the factorization proceeds, so early flows favour
// the host's cache locality and later flows favour Active-Routing — the
// crossover Fig 5.8 plots. ModeAdaptive applies the thesis threshold
// CACHE_BLK/stride1 + CACHE_BLK/stride2 per flow.
type LUDPhase struct {
	scale   Scale
	threads int

	env  *Env
	n    int // per-thread matrix dimension
	mats []F64Array
	refs [][]float64

	// Threshold for ModeAdaptive, from the §5.4 formula.
	Threshold int
}

// NewLUDPhase builds the case-study workload.
func NewLUDPhase(scale Scale, threads int) *LUDPhase {
	return &LUDPhase{scale: scale, threads: threads}
}

// Name implements Workload.
func (l *LUDPhase) Name() string { return "lud_phase" }

func (l *LUDPhase) size() int {
	switch l.scale {
	case ScaleTiny:
		return 12
	case ScaleMedium:
		return 64
	default:
		return 40
	}
}

// Init implements Workload.
func (l *LUDPhase) Init(env *Env) {
	l.env = env
	l.n = l.size()
	n := l.n
	// §5.4: threshold = CACHE_BLK/stride1 + CACHE_BLK/stride2. Operand 1
	// walks a row (stride 8 B), operand 2 walks a column (stride 8n B,
	// beyond a block, contributing its minimum of one element).
	l.Threshold = mem.BlockSize/mem.WordSize + 1
	l.mats = make([]F64Array, env.Threads)
	l.refs = make([][]float64, env.Threads)
	for t := 0; t < env.Threads; t++ {
		m := NewF64Array(env, n*n)
		vals := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := env.Rand.Float64()*2 - 1
				if i == j {
					v += float64(n)
				}
				vals[i*n+j] = v
				m.Set(i*n+j, v)
			}
		}
		ref := append([]float64(nil), vals...)
		for k := 0; k < n; k++ {
			for i := k + 1; i < n; i++ {
				ref[i*n+k] /= ref[k*n+k]
				for j := k + 1; j < n; j++ {
					ref[i*n+j] -= ref[i*n+k] * ref[k*n+j]
				}
			}
		}
		l.mats[t] = m
		l.refs[t] = ref
	}
}

// Streams implements Workload: Doolittle (row-by-row) factorization; each
// element (i, j) is one flow of min(i, j) multiply-subtract updates.
func (l *LUDPhase) Streams(mode Mode) []isa.Stream {
	n := l.n
	traces := make([]*Trace, l.env.Threads)
	for tid := range traces {
		t := &Trace{}
		m := l.mats[tid]
		a := make([]float64, n*n)
		for i := range a {
			a[i] = m.Get(i)
		}
		at := func(i, j int) mem.VAddr { return m.At(i*n + j) }
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				depth := i
				if j < i {
					depth = j
				}
				useHost := mode == ModeBaseline || (mode == ModeAdaptive && depth <= l.Threshold)
				acc := a[i*n+j]
				if useHost {
					for k := 0; k < depth; k++ {
						t.Int()
						t.Ld(at(i, k))
						t.Ld(at(k, j))
						t.FPMul()
						t.FP()
						acc -= a[i*n+k] * a[k*n+j]
					}
				} else {
					for k := 0; k < depth; k++ {
						t.Int()
						t.Update(at(i, k), at(k, j), at(i, j), isa.OpMacSub)
					}
					if depth > 0 {
						t.Gather(at(i, j), 1)
					}
					for k := 0; k < depth; k++ {
						acc -= a[i*n+k] * a[k*n+j]
					}
				}
				if j < i {
					// L element: divide by the pivot.
					acc /= a[j*n+j]
					if !useHost && depth > 0 {
						t.Ld(at(i, j))
					}
					t.Ld(at(j, j))
					t.FPMul()
					t.St(at(i, j), acc)
				} else if useHost {
					t.St(at(i, j), acc)
				} else if depth > 0 {
					// U element: the gather write-back already produced it.
				} else {
					t.St(at(i, j), acc)
				}
				a[i*n+j] = acc
			}
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (l *LUDPhase) Verify() error {
	for tid := range l.mats {
		for i := 0; i < l.n*l.n; i++ {
			if err := checkClose(fmt.Sprintf("lud_phase t%d A[%d]", tid, i), l.mats[tid].Get(i), l.refs[tid][i]); err != nil {
				return err
			}
		}
	}
	return nil
}
