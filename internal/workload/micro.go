package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Reduce is the reduce / rand_reduce microbenchmark (§4.2.2): the parallel
// sum of a large array, sequential or random access order. It is the
// single-operand reduction that exercises the ARE's operand-buffer bypass
// (§3.2.3).
type Reduce struct {
	scale   Scale
	threads int
	random  bool

	env  *Env
	n    int
	a    F64Array
	sum  F64Array // one-element reduction target
	vals []float64
	ref  float64
}

// NewReduce builds the benchmark; random selects rand_reduce.
func NewReduce(scale Scale, threads int, random bool) *Reduce {
	return &Reduce{scale: scale, threads: threads, random: random}
}

// Name implements Workload.
func (r *Reduce) Name() string {
	if r.random {
		return "rand_reduce"
	}
	return "reduce"
}

func (r *Reduce) size() int {
	switch r.scale {
	case ScaleTiny:
		return 512
	case ScaleMedium:
		return 1 << 17
	default:
		return 1 << 14
	}
}

// Init implements Workload.
func (r *Reduce) Init(env *Env) {
	r.env = env
	r.n = r.size()
	r.a = NewF64Array(env, r.n)
	r.sum = NewF64Array(env, 1)
	r.vals = make([]float64, r.n)
	r.ref = 0
	for i := 0; i < r.n; i++ {
		v := env.Rand.Float64()*2 - 1
		r.vals[i] = v
		r.a.Set(i, v)
		r.ref += v
	}
	r.sum.Set(0, 0)
}

// order returns the element visit order for thread tid.
func (r *Reduce) order(tid int) []int {
	lo, hi := span(r.n, r.env.Threads, tid)
	idx := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		idx = append(idx, i)
	}
	if r.random {
		rng := sim.NewRand(uint64(tid)*0x9E37 + 11)
		for i := len(idx) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	return idx
}

// Streams implements Workload.
func (r *Reduce) Streams(mode Mode) []isa.Stream {
	traces := make([]*Trace, r.env.Threads)
	for tid := range traces {
		t := &Trace{}
		idx := r.order(tid)
		switch mode {
		case ModeBaseline:
			part := 0.0
			for _, i := range idx {
				t.Int() // index/address arithmetic
				t.Ld(r.a.At(i))
				t.FP()
				part += r.vals[i]
			}
			t.AtomicAdd(r.sum.At(0), part)
		default:
			for _, i := range idx {
				t.Int()
				t.Update(r.a.At(i), 0, r.sum.At(0), isa.OpAdd)
			}
			t.Gather(r.sum.At(0), r.env.Threads)
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (r *Reduce) Verify() error {
	return checkClose(r.Name()+" sum", r.sum.Get(0), r.ref)
}

// MAC is the mac / rand_mac microbenchmark (§4.2.2): multiply-accumulate
// over two large vectors, the two-operand flow of the walking-through
// example (Fig 3.6).
type MAC struct {
	scale   Scale
	threads int
	random  bool
	// vecWidth > 1 offloads vectored updates covering vecWidth
	// consecutive element pairs per packet (the §6 offload-granularity
	// extension). Only the sequential variant vectorizes.
	vecWidth int

	env   *Env
	n     int
	a, b  F64Array
	sum   F64Array
	av    []float64
	bv    []float64
	ref   float64
	pairs [][2]int // per access: (a index, b index)
}

// NewMAC builds the benchmark; random selects rand_mac.
func NewMAC(scale Scale, threads int, random bool) *MAC {
	return &MAC{scale: scale, threads: threads, random: random, vecWidth: 1}
}

// NewMACVec builds the vectored-offload variant (mac_vec): width element
// pairs per Update packet.
func NewMACVec(scale Scale, threads, width int) *MAC {
	return &MAC{scale: scale, threads: threads, vecWidth: width}
}

// Name implements Workload.
func (m *MAC) Name() string {
	switch {
	case m.random:
		return "rand_mac"
	case m.vecWidth > 1:
		return "mac_vec"
	}
	return "mac"
}

func (m *MAC) size() int {
	switch m.scale {
	case ScaleTiny:
		return 512
	case ScaleMedium:
		return 1 << 17
	default:
		return 1 << 14
	}
}

// Init implements Workload.
func (m *MAC) Init(env *Env) {
	m.env = env
	m.n = m.size()
	m.a = NewF64Array(env, m.n)
	m.b = NewF64Array(env, m.n)
	m.sum = NewF64Array(env, 1)
	m.av = make([]float64, m.n)
	m.bv = make([]float64, m.n)
	m.pairs = make([][2]int, m.n)
	for i := 0; i < m.n; i++ {
		m.av[i] = env.Rand.Float64()
		m.bv[i] = env.Rand.Float64()*2 - 1
		m.a.Set(i, m.av[i])
		m.b.Set(i, m.bv[i])
	}
	// Access pattern: sequential pairs, or random elements within the
	// thread's own segments for rand_mac (§4.2.2).
	for tid := 0; tid < env.Threads; tid++ {
		lo, hi := span(m.n, env.Threads, tid)
		rng := sim.NewRand(uint64(tid)*0xA5A5 + 77)
		for i := lo; i < hi; i++ {
			if m.random && hi > lo {
				m.pairs[i] = [2]int{lo + rng.Intn(hi-lo), lo + rng.Intn(hi-lo)}
			} else {
				m.pairs[i] = [2]int{i, i}
			}
		}
	}
	m.ref = 0
	for _, p := range m.pairs {
		m.ref += m.av[p[0]] * m.bv[p[1]]
	}
	m.sum.Set(0, 0)
}

// Streams implements Workload.
func (m *MAC) Streams(mode Mode) []isa.Stream {
	traces := make([]*Trace, m.env.Threads)
	for tid := range traces {
		t := &Trace{}
		lo, hi := span(m.n, m.env.Threads, tid)
		switch mode {
		case ModeBaseline:
			part := 0.0
			for i := lo; i < hi; i++ {
				p := m.pairs[i]
				t.Int()
				t.Ld(m.a.At(p[0]))
				t.Ld(m.b.At(p[1]))
				t.FPMul()
				t.FP()
				part += m.av[p[0]] * m.bv[p[1]]
			}
			t.AtomicAdd(m.sum.At(0), part)
		default:
			if m.vecWidth > 1 {
				for i := lo; i < hi; i += m.vecWidth {
					w := m.vecWidth
					if i+w > hi {
						w = hi - i
					}
					t.Int()
					t.UpdateVec(m.a.At(i), m.b.At(i), m.sum.At(0), isa.OpMac, w)
				}
			} else {
				for i := lo; i < hi; i++ {
					p := m.pairs[i]
					t.Int()
					t.Update(m.a.At(p[0]), m.b.At(p[1]), m.sum.At(0), isa.OpMac)
				}
			}
			t.Gather(m.sum.At(0), m.env.Threads)
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (m *MAC) Verify() error {
	if err := checkClose(m.Name()+" sum", m.sum.Get(0), m.ref); err != nil {
		return fmt.Errorf("%w (n=%d)", err, m.n)
	}
	return nil
}
