package workload

import (
	"repro/internal/isa"
)

// PageRank is the graph analytics benchmark (§4.2.1, CRONO): one iteration
// of rank propagation over a synthetic power-law graph (substituting the
// web-Google input, DESIGN.md), followed by the Fig 3.2 score-difference
// loop, which is the Active-Routing region of interest.
//
// Divergence from the Fig 3.2 listing, documented in DESIGN.md: the active
// variant issues the abs-diff Updates and their Gather first, then the
// mov/const_assign active stores. The thesis interleaves all three per
// vertex, which races the in-network reads of pagerank/next_pagerank
// against their overwrites; splitting the loop preserves the exact
// semantics (the Gather is a fence) while issuing the same operations.
type PageRank struct {
	scale   Scale
	threads int

	env     *Env
	nv      int
	off     []int // CSR in-edge offsets
	edges   []int
	pr      F64Array
	nextPr  F64Array
	diff    F64Array
	edgeArr F64Array // edge endpoints, loaded by the host
	prv     []float64
	nextv   []float64
	refDiff float64
}

// NewPageRank builds the benchmark.
func NewPageRank(scale Scale, threads int) *PageRank {
	return &PageRank{scale: scale, threads: threads}
}

// Name implements Workload.
func (p *PageRank) Name() string { return "pagerank" }

func (p *PageRank) size() int {
	switch p.scale {
	case ScaleTiny:
		return 64
	case ScaleMedium:
		return 8192
	default:
		return 4096
	}
}

// Init implements Workload: a preferential-attachment graph gives the
// power-law in-degree distribution of web graphs.
func (p *PageRank) Init(env *Env) {
	p.env = env
	p.nv = p.size()
	nv := p.nv
	const mEdges = 4
	targets := []int{0}
	ins := make([][]int, nv)
	for v := 1; v < nv; v++ {
		for e := 0; e < mEdges; e++ {
			u := targets[env.Rand.Intn(len(targets))]
			if u == v {
				u = (v + 1) % nv
			}
			ins[v] = append(ins[v], u)
			targets = append(targets, u)
		}
		targets = append(targets, v)
	}
	p.off = make([]int, nv+1)
	p.edges = p.edges[:0]
	for v := 0; v < nv; v++ {
		p.off[v] = len(p.edges)
		p.edges = append(p.edges, ins[v]...)
	}
	p.off[nv] = len(p.edges)

	p.pr = NewF64Array(env, nv)
	p.nextPr = NewF64Array(env, nv)
	p.diff = NewF64Array(env, 1)
	p.edgeArr = NewF64Array(env, len(p.edges))
	p.prv = make([]float64, nv)
	for v := 0; v < nv; v++ {
		p.prv[v] = 1 / float64(nv)
		p.pr.Set(v, p.prv[v])
		p.nextPr.Set(v, 0)
	}
	for e, u := range p.edges {
		p.edgeArr.Set(e, float64(u))
	}
	p.diff.Set(0, 0)

	// Reference: one propagation step then the diff loop.
	outDeg := make([]float64, nv)
	for _, u := range p.edges {
		outDeg[u]++
	}
	p.nextv = make([]float64, nv)
	for v := 0; v < nv; v++ {
		var acc float64
		for _, u := range p.edges[p.off[v]:p.off[v+1]] {
			acc += p.prv[u] / maxf(outDeg[u], 1)
		}
		p.nextv[v] = 0.15/float64(nv) + 0.85*acc
	}
	p.refDiff = 0
	for v := 0; v < nv; v++ {
		p.refDiff += absf(p.nextv[v] - p.prv[v])
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Streams implements Workload.
func (p *PageRank) Streams(mode Mode) []isa.Stream {
	nv := p.nv
	traces := make([]*Trace, p.env.Threads)
	for tid := range traces {
		t := &Trace{}
		lo, hi := span(nv, p.env.Threads, tid)
		// Phase A (both modes, unoptimized): pull-based rank propagation.
		// Irregular reads of neighbours' scores dominate.
		for v := lo; v < hi; v++ {
			acc := 0.0
			for e := p.off[v]; e < p.off[v+1]; e++ {
				u := p.edges[e]
				t.Ld(p.edgeArr.At(e)) // edge list walk
				t.Int()
				t.Ld(p.pr.At(u)) // neighbour score (irregular)
				t.FPMul()
				t.FP()
				_ = u
			}
			acc = p.nextv[v]
			t.FPMul()
			t.St(p.nextPr.At(v), acc)
		}
		t.Barrier()
		// Phase B (region of interest, Fig 3.2): score difference
		// accumulation and rank rotation.
		switch mode {
		case ModeBaseline:
			locDiff := 0.0
			for v := lo; v < hi; v++ {
				t.Ld(p.nextPr.At(v))
				t.Ld(p.pr.At(v))
				t.FP() // abs(next - cur)
				t.FP() // loc_diff +=
				locDiff += absf(p.nextv[v] - p.prv[v])
				t.St(p.pr.At(v), p.nextv[v])
				t.St(p.nextPr.At(v), 0.15/float64(nv))
			}
			t.AtomicAdd(p.diff.At(0), locDiff)
		default:
			for v := lo; v < hi; v++ {
				t.Int()
				t.Update(p.nextPr.At(v), p.pr.At(v), p.diff.At(0), isa.OpAbsDiffAcc)
			}
			t.Gather(p.diff.At(0), p.env.Threads)
			for v := lo; v < hi; v++ {
				t.Int()
				t.UpdateMov(p.nextPr.At(v), p.pr.At(v))
				t.UpdateConst(0.15/float64(nv), p.nextPr.At(v))
			}
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (p *PageRank) Verify() error {
	if err := checkClose("pagerank diff", p.diff.Get(0), p.refDiff); err != nil {
		return err
	}
	for v := 0; v < p.nv; v++ {
		if err := checkClose("pagerank pr", p.pr.Get(v), p.nextv[v]); err != nil {
			return err
		}
		if err := checkClose("pagerank next_pr", p.nextPr.Get(v), 0.15/float64(p.nv)); err != nil {
			return err
		}
	}
	return nil
}
