// Package workload implements the thesis's evaluation workloads (§4.2):
// five benchmarks (backprop, lud, pagerank, sgemm, spmv) and four
// microbenchmarks (reduce, rand_reduce, mac, rand_mac), each in a Baseline
// variant (plain loads/stores/computes) and an Active variant using the
// Update/Gather extension, plus the adaptive-offloading variant of §5.4.
//
// Substitution note (DESIGN.md): the thesis traces real Pthread programs
// with Pin. Here each workload is an instruction-stream generator that
// reproduces the program's per-thread memory access pattern and arithmetic.
// Generators never read the simulated backing store; every value a store or
// update needs is computed from generator-private mirrors, so traces are
// independent of simulation timing, and the final memory state is checked
// against a host-computed reference after the run.
package workload

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Mode selects the program variant.
type Mode int

// Workload variants.
const (
	// ModeBaseline runs entirely on the host (DRAM and HMC schemes).
	ModeBaseline Mode = iota
	// ModeActive offloads the region of interest with Update/Gather.
	ModeActive
	// ModeAdaptive applies the §5.4 runtime knob: flows below the
	// updates-per-flow threshold run on the host.
	ModeAdaptive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeActive:
		return "active"
	case ModeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Env is the simulated process environment a workload initializes into.
type Env struct {
	Store   *mem.Store
	AS      *mem.AddrSpace
	Rand    *sim.Rand
	Threads int
}

// NewEnv builds an environment with the given thread count and seed.
func NewEnv(threads int, seed uint64) *Env {
	return &Env{
		Store:   mem.NewStore(),
		AS:      mem.NewAddrSpace(),
		Rand:    sim.NewRand(seed),
		Threads: threads,
	}
}

// Workload is one benchmark: initialization, per-thread traces, and final
// state verification.
type Workload interface {
	// Name is the benchmark's thesis name.
	Name() string
	// Init allocates and fills the workload's data structures.
	Init(env *Env)
	// Streams builds one instruction stream per thread for the mode.
	Streams(mode Mode) []isa.Stream
	// Verify checks the simulated memory state against the reference;
	// it must pass for every mode and scheme.
	Verify() error
}

// Scale selects input sizing. The thesis runs native-scale inputs on a
// multi-day simulator; these are proportionally scaled (DESIGN.md).
type Scale int

// Input scales.
const (
	// ScaleTiny is for unit tests (sub-second full-system runs).
	ScaleTiny Scale = iota
	// ScaleSmall is the default for benchmarks and experiments.
	ScaleSmall
	// ScaleMedium stresses the memory system harder (slower runs).
	ScaleMedium
)

// String names the scale the way the CLIs spell it.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale parses a CLI scale name (case-insensitive).
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want tiny, small, medium)", s)
}

// F64Array is a simulated array of float64 living in the workload's
// address space.
type F64Array struct {
	Base mem.VAddr
	N    int
	env  *Env
}

// cubeStripe is the span of one full rotation of pages over the 16 cubes.
const cubeStripe = 16 * mem.PageSize

// NewF64Array allocates n float64s. Arrays spanning at least one full cube
// stripe are stripe-aligned (NUMA-conscious co-allocation): the i-th
// elements of two such arrays share a cube, which is the locality the
// thesis's near-data updates exploit (both operands resident at the commit
// cube, Fig 3.6's common case).
func NewF64Array(env *Env, n int) F64Array {
	bytes := uint64(n) * mem.WordSize
	align := uint64(mem.BlockSize)
	if bytes >= cubeStripe {
		align = cubeStripe
	}
	return F64Array{Base: env.AS.Alloc(bytes, align), N: n, env: env}
}

// At returns the virtual address of element i.
func (a F64Array) At(i int) mem.VAddr {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("workload: index %d out of range [0,%d)", i, a.N))
	}
	return a.Base + mem.VAddr(i*mem.WordSize)
}

// Set writes element i in the backing store (initialization only).
func (a F64Array) Set(i int, v float64) {
	a.env.Store.WriteF64(a.env.AS.Translate(a.At(i)), v)
}

// Get reads element i from the backing store (verification only).
func (a F64Array) Get(i int) float64 {
	return a.env.Store.ReadF64(a.env.AS.Translate(a.At(i)))
}

// Trace builds one thread's instruction slice.
type Trace struct {
	insts []isa.Inst
}

// Insts returns the built instructions.
func (t *Trace) Insts() []isa.Inst { return t.insts }

// Stream wraps the trace as an isa.Stream.
func (t *Trace) Stream() isa.Stream { return isa.NewSliceStream(t.insts) }

// push appends one instruction, growing the backing array by strict
// doubling. The runtime's growth factor decays toward 1.25x for large
// slices, which re-copies a multi-hundred-MB trace several times over;
// doubling bounds total copy work at one trace length.
func (t *Trace) push(in isa.Inst) {
	if len(t.insts) == cap(t.insts) {
		newCap := 2 * cap(t.insts)
		if newCap < 1024 {
			newCap = 1024
		}
		nb := make([]isa.Inst, len(t.insts), newCap)
		copy(nb, t.insts)
		t.insts = nb
	}
	t.insts = append(t.insts, in)
}

// Ld emits a load from va.
func (t *Trace) Ld(va mem.VAddr) {
	t.push(isa.Inst{Kind: isa.KindLoad, Addr: va})
}

// St emits a store of v to va; v is written functionally at commit.
func (t *Trace) St(va mem.VAddr, v float64) {
	t.push(isa.Inst{Kind: isa.KindStore, Addr: va, Value: v})
}

// AtomicAdd emits an atomic float add of v at va.
func (t *Trace) AtomicAdd(va mem.VAddr, v float64) {
	t.push(isa.Inst{Kind: isa.KindAtomicAdd, Addr: va, Value: v})
}

// Int emits integer/address arithmetic.
func (t *Trace) Int() {
	t.push(isa.Inst{Kind: isa.KindCompute, Class: isa.ClassInt})
}

// FP emits a floating-point add-class operation.
func (t *Trace) FP() {
	t.push(isa.Inst{Kind: isa.KindCompute, Class: isa.ClassFP})
}

// FPMul emits a floating-point multiply-class operation.
func (t *Trace) FPMul() {
	t.push(isa.Inst{Kind: isa.KindCompute, Class: isa.ClassFPMul})
}

// Update emits Update(src1, src2, target, op); src2 may be 0.
func (t *Trace) Update(src1, src2, target mem.VAddr, op isa.ALUOp) {
	t.push(isa.Inst{Kind: isa.KindUpdate, Src1: src1, Src2: src2, Target: target, Op: op})
}

// UpdateVec emits a vectored update covering count consecutive element
// pairs starting at (src1, src2). The elements must share a cache block
// run on one cube (guaranteed for stripe-aligned arrays and count*8 <= 64).
func (t *Trace) UpdateVec(src1, src2, target mem.VAddr, op isa.ALUOp, count int) {
	t.push(isa.Inst{Kind: isa.KindUpdate, Src1: src1, Src2: src2, Target: target, Op: op, Count: count})
}

// UpdateMov emits Update(&src, nil, &target, mov).
func (t *Trace) UpdateMov(src, target mem.VAddr) {
	t.push(isa.Inst{Kind: isa.KindUpdate, Src1: src, Target: target, Op: isa.OpMov})
}

// UpdateConst emits Update(imm, nil, &target, const_assign).
func (t *Trace) UpdateConst(imm float64, target mem.VAddr) {
	t.push(isa.Inst{Kind: isa.KindUpdate, Target: target, Op: isa.OpConstAssign, Imm: imm})
}

// Gather emits Gather(target, numThreads).
func (t *Trace) Gather(target mem.VAddr, threads int) {
	t.push(isa.Inst{Kind: isa.KindGather, Target: target, Threads: threads})
}

// Barrier emits a thread barrier.
func (t *Trace) Barrier() {
	t.push(isa.Inst{Kind: isa.KindBarrier})
}

// Len reports the number of emitted instructions.
func (t *Trace) Len() int { return len(t.insts) }

// streamsOf converts traces to streams.
func streamsOf(traces []*Trace) []isa.Stream {
	out := make([]isa.Stream, len(traces))
	for i, t := range traces {
		out[i] = t.Stream()
	}
	return out
}

// span splits n items into thread partitions.
func span(n, threads, tid int) (lo, hi int) {
	per := (n + threads - 1) / threads
	lo = tid * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// checkClose verifies a simulated value against a reference with relative
// tolerance (in-network reduction reassociates floating point sums).
func checkClose(what string, got, want float64) error {
	diff := math.Abs(got - want)
	tol := 1e-9 + 1e-6*math.Abs(want)
	if diff > tol {
		return fmt.Errorf("workload: %s = %g, want %g (|diff| = %g)", what, got, want, diff)
	}
	return nil
}

// MaxThreads bounds the thread count a workload accepts: the simulated
// machine has 16 cores, and per-thread trace construction is linear in
// threads, so an absurd count is a caller bug rather than a bigger machine.
const MaxThreads = 1024

// New constructs a workload by thesis name. All three arguments are
// validated here — an unknown name, out-of-range scale or non-positive
// thread count is an error, never a panic — so callers assembling jobs
// from untrusted input (the service layer, fuzzers) can rely on New as
// the gate.
func New(name string, scale Scale, threads int) (Workload, error) {
	if scale < ScaleTiny || scale > ScaleMedium {
		return nil, fmt.Errorf("workload: unknown scale %d (want tiny, small, medium)", int(scale))
	}
	if threads <= 0 || threads > MaxThreads {
		return nil, fmt.Errorf("workload: thread count %d out of range [1,%d]", threads, MaxThreads)
	}
	switch name {
	case "reduce":
		return NewReduce(scale, threads, false), nil
	case "rand_reduce":
		return NewReduce(scale, threads, true), nil
	case "mac":
		return NewMAC(scale, threads, false), nil
	case "mac_vec":
		return NewMACVec(scale, threads, 8), nil
	case "rand_mac":
		return NewMAC(scale, threads, true), nil
	case "sgemm":
		return NewSGEMM(scale, threads), nil
	case "spmv":
		return NewSpMV(scale, threads), nil
	case "backprop":
		return NewBackprop(scale, threads), nil
	case "pagerank":
		return NewPageRank(scale, threads), nil
	case "lud":
		return NewLUD(scale, threads), nil
	case "lud_phase":
		return NewLUDPhase(scale, threads), nil
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
}

// Registered lists every workload name New accepts: the two figure suites
// plus the variants only individual studies use (mac_vec, lud_phase). Kept
// in sync with New's switch by TestRegisteredConstructs.
func Registered() []string {
	return []string{
		"reduce", "rand_reduce", "mac", "mac_vec", "rand_mac",
		"sgemm", "spmv", "backprop", "pagerank", "lud", "lud_phase",
	}
}

// Benchmarks lists the thesis benchmark suite (Fig 5.1a order).
func Benchmarks() []string {
	return []string{"backprop", "lud", "pagerank", "sgemm", "spmv"}
}

// Microbenchmarks lists the microbenchmark suite (Fig 5.1b order).
func Microbenchmarks() []string {
	return []string{"reduce", "rand_reduce", "mac", "rand_mac"}
}
