package workload

import (
	"fmt"

	"repro/internal/isa"
)

// SGEMM is the dense matrix multiplication benchmark (§4.2.1): C = A×B with
// one Active-Routing flow per output element, the multiply-accumulate
// pattern the thesis motivates for BLAS/NNPACK.
type SGEMM struct {
	scale   Scale
	threads int

	env  *Env
	n    int
	a, b F64Array // row-major n×n
	c    F64Array
	av   []float64
	bv   []float64
	ref  []float64
}

// NewSGEMM builds the benchmark.
func NewSGEMM(scale Scale, threads int) *SGEMM {
	return &SGEMM{scale: scale, threads: threads}
}

// Name implements Workload.
func (s *SGEMM) Name() string { return "sgemm" }

func (s *SGEMM) size() int {
	switch s.scale {
	case ScaleTiny:
		return 12
	case ScaleMedium:
		return 96
	default:
		return 64
	}
}

// Init implements Workload.
func (s *SGEMM) Init(env *Env) {
	s.env = env
	s.n = s.size()
	n := s.n
	s.a = NewF64Array(env, n*n)
	s.b = NewF64Array(env, n*n)
	s.c = NewF64Array(env, n*n)
	s.av = make([]float64, n*n)
	s.bv = make([]float64, n*n)
	for i := range s.av {
		s.av[i] = env.Rand.Float64()*2 - 1
		s.bv[i] = env.Rand.Float64()*2 - 1
		s.a.Set(i, s.av[i])
		s.b.Set(i, s.bv[i])
		s.c.Set(i, 0)
	}
	s.ref = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += s.av[i*n+k] * s.bv[k*n+j]
			}
			s.ref[i*n+j] = acc
		}
	}
}

// gatherBatch is the number of flows a thread keeps in flight before
// fencing with their Gathers. Independent output elements overlap their
// trees this way (the massive-concurrency regime the thesis evaluates);
// the bound keeps system-wide concurrent flows (16 threads x 8) safely
// below the per-cube flow table capacity so exhaustion cannot deadlock
// the decoder.
const gatherBatch = 8

// Streams implements Workload: rows are partitioned over threads; the
// active variant makes each C[i][j] one flow of n two-operand updates,
// with gathers batched gatherBatch flows at a time.
func (s *SGEMM) Streams(mode Mode) []isa.Stream {
	n := s.n
	traces := make([]*Trace, s.env.Threads)
	for tid := range traces {
		t := &Trace{}
		lo, hi := span(n, s.env.Threads, tid)
		pendingGathers := 0
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				switch mode {
				case ModeBaseline:
					acc := 0.0
					for k := 0; k < n; k++ {
						t.Int()
						t.Ld(s.a.At(i*n + k))
						t.Ld(s.b.At(k*n + j))
						t.FPMul()
						t.FP()
						acc += s.av[i*n+k] * s.bv[k*n+j]
					}
					t.St(s.c.At(i*n+j), acc)
				default:
					for k := 0; k < n; k++ {
						t.Int()
						t.Update(s.a.At(i*n+k), s.b.At(k*n+j), s.c.At(i*n+j), isa.OpMac)
					}
					pendingGathers++
					if pendingGathers == gatherBatch {
						s.fenceBatch(t, i, j, pendingGathers)
						pendingGathers = 0
					}
				}
			}
		}
		if pendingGathers > 0 {
			hi2 := hi - 1
			s.fenceBatch(t, hi2, n-1, pendingGathers)
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// fenceBatch emits the deferred Gathers for the batch ending at element
// (i, j), walking backwards over the row-major order.
func (s *SGEMM) fenceBatch(t *Trace, i, j, count int) {
	n := s.n
	idx := i*n + j
	for k := count - 1; k >= 0; k-- {
		t.Gather(s.c.At(idx-k), 1)
	}
}

// Verify implements Workload.
func (s *SGEMM) Verify() error {
	for i := 0; i < s.n*s.n; i++ {
		if err := checkClose(fmt.Sprintf("sgemm C[%d]", i), s.c.Get(i), s.ref[i]); err != nil {
			return err
		}
	}
	return nil
}

// SpMV is the sparse matrix-vector multiplication benchmark (§4.2.1): CSR
// y = A·x with 0.7 sparsity. The column-index loads stay on the host in
// the active variant (the address of x[col[k]] must be computed before the
// Update can be offloaded), reproducing the paper's observation that spmv's
// irregular operand spread limits its EDP win.
type SpMV struct {
	scale   Scale
	threads int

	env    *Env
	n      int
	rowptr []int
	colIdx []int
	vals   F64Array
	cols   F64Array // column indices stored as f64 words (loaded by host)
	x      F64Array
	y      F64Array
	valv   []float64
	xv     []float64
	ref    []float64
}

// NewSpMV builds the benchmark.
func NewSpMV(scale Scale, threads int) *SpMV {
	return &SpMV{scale: scale, threads: threads}
}

// Name implements Workload.
func (s *SpMV) Name() string { return "spmv" }

func (s *SpMV) size() int {
	switch s.scale {
	case ScaleTiny:
		return 32
	case ScaleMedium:
		return 512
	default:
		return 256
	}
}

// Init implements Workload: a uniformly sparse matrix with 30% density
// ("0.7 sparsity" in §4.2.1).
func (s *SpMV) Init(env *Env) {
	s.env = env
	s.n = s.size()
	n := s.n
	s.rowptr = make([]int, n+1)
	s.colIdx = s.colIdx[:0]
	s.valv = s.valv[:0]
	for i := 0; i < n; i++ {
		s.rowptr[i] = len(s.colIdx)
		for j := 0; j < n; j++ {
			if env.Rand.Float64() < 0.3 {
				s.colIdx = append(s.colIdx, j)
				s.valv = append(s.valv, env.Rand.Float64()*2-1)
			}
		}
	}
	s.rowptr[n] = len(s.colIdx)
	nnz := len(s.colIdx)
	s.vals = NewF64Array(env, nnz)
	s.cols = NewF64Array(env, nnz)
	s.x = NewF64Array(env, n)
	s.y = NewF64Array(env, n)
	s.xv = make([]float64, n)
	for k := 0; k < nnz; k++ {
		s.vals.Set(k, s.valv[k])
		s.cols.Set(k, float64(s.colIdx[k]))
	}
	for i := 0; i < n; i++ {
		s.xv[i] = env.Rand.Float64()*2 - 1
		s.x.Set(i, s.xv[i])
		s.y.Set(i, 0)
	}
	s.ref = make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for k := s.rowptr[i]; k < s.rowptr[i+1]; k++ {
			acc += s.valv[k] * s.xv[s.colIdx[k]]
		}
		s.ref[i] = acc
	}
}

// Streams implements Workload.
func (s *SpMV) Streams(mode Mode) []isa.Stream {
	traces := make([]*Trace, s.env.Threads)
	for tid := range traces {
		t := &Trace{}
		lo, hi := span(s.n, s.env.Threads, tid)
		var pend []int // rows with deferred gathers
		for i := lo; i < hi; i++ {
			switch mode {
			case ModeBaseline:
				acc := 0.0
				for k := s.rowptr[i]; k < s.rowptr[i+1]; k++ {
					t.Int()
					t.Ld(s.cols.At(k))
					t.Ld(s.vals.At(k))
					t.Ld(s.x.At(s.colIdx[k]))
					t.FPMul()
					t.FP()
					acc += s.valv[k] * s.xv[s.colIdx[k]]
				}
				t.St(s.y.At(i), acc)
			default:
				for k := s.rowptr[i]; k < s.rowptr[i+1]; k++ {
					// The column index is loaded on the host to form the
					// x[col[k]] operand address.
					t.Ld(s.cols.At(k))
					t.Int()
					t.Update(s.vals.At(k), s.x.At(s.colIdx[k]), s.y.At(i), isa.OpMac)
				}
				if s.rowptr[i] != s.rowptr[i+1] {
					pend = append(pend, i)
				}
				if len(pend) == gatherBatch {
					for _, r := range pend {
						t.Gather(s.y.At(r), 1)
					}
					pend = pend[:0]
				}
			}
		}
		for _, r := range pend {
			t.Gather(s.y.At(r), 1)
		}
		traces[tid] = t
	}
	return streamsOf(traces)
}

// Verify implements Workload.
func (s *SpMV) Verify() error {
	for i := 0; i < s.n; i++ {
		if err := checkClose(fmt.Sprintf("spmv y[%d]", i), s.y.Get(i), s.ref[i]); err != nil {
			return err
		}
	}
	return nil
}
