package workload_test

import (
	"testing"

	"repro/internal/workload"
)

// FuzzWorkloadNew asserts the workload registry's gate: New with an
// arbitrary (name, scale, threads) triple either returns a workload or an
// error — never a panic, and never both or neither. The service layer
// feeds New directly from untrusted request bodies, so this boundary is
// load-bearing.
func FuzzWorkloadNew(f *testing.F) {
	for _, name := range workload.Registered() {
		f.Add(name, 0, 16)
	}
	f.Add("", 0, 0)
	f.Add("no_such_benchmark", 1, 16)
	f.Add("mac", -1, 16)
	f.Add("mac", 99, 16)
	f.Add("mac", 0, -3)
	f.Add("mac", 0, workload.MaxThreads+1)
	f.Add("lud\x00phase", 2, 1)
	f.Fuzz(func(t *testing.T, name string, scale int, threads int) {
		wl, err := workload.New(name, workload.Scale(scale), threads)
		if err == nil && wl == nil {
			t.Fatalf("New(%q, %d, %d) returned neither workload nor error", name, scale, threads)
		}
		if err != nil && wl != nil {
			t.Fatalf("New(%q, %d, %d) returned both a workload and error %v", name, scale, threads, err)
		}
		if err == nil {
			// Whatever New accepts must self-report a stable name and be
			// constructible again with the same answer.
			if wl.Name() == "" {
				t.Fatalf("New(%q, %d, %d): empty workload name", name, scale, threads)
			}
			if _, err2 := workload.New(name, workload.Scale(scale), threads); err2 != nil {
				t.Fatalf("New(%q, %d, %d) succeeded then failed: %v", name, scale, threads, err2)
			}
		}
	})
}
