package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func tinyEnv(t *testing.T) *Env { return NewEnv(4, 7) }

// drain executes a trace functionally the way the timed machine would:
// stores/atomics apply to the backing store; updates/gathers apply their
// reduction semantics eagerly (all reducing ops are order-insensitive).
// This validates the traces' functional content without the full machine.
func drain(t *testing.T, env *Env, streams []isa.Stream) {
	t.Helper()
	flows := map[mem.PAddr]*drainFlow{}
	for _, s := range streams {
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			switch in.Kind {
			case isa.KindStore:
				env.Store.WriteF64(env.AS.Translate(in.Addr), in.Value)
			case isa.KindAtomicAdd:
				pa := env.AS.Translate(in.Addr)
				env.Store.WriteF64(pa, env.Store.ReadF64(pa)+in.Value)
			case isa.KindUpdate:
				target := env.AS.Translate(in.Target)
				switch in.Op {
				case isa.OpMov:
					env.Store.WriteF64(target, env.Store.ReadF64(env.AS.Translate(in.Src1)))
				case isa.OpConstAssign:
					env.Store.WriteF64(target, in.Imm)
				default:
					f := flows[target]
					if f == nil {
						f = &drainFlow{op: in.Op, acc: in.Op.Identity()}
						flows[target] = f
					}
					count := in.Count
					if count < 1 {
						count = 1
					}
					for e := 0; e < count; e++ {
						off := mem.VAddr(e * mem.WordSize)
						a := env.Store.ReadF64(env.AS.Translate(in.Src1 + off))
						b := 0.0
						if in.Src2 != 0 {
							b = env.Store.ReadF64(env.AS.Translate(in.Src2 + off))
						}
						f.acc = f.op.Combine(f.acc, in.Op.Value(a, b))
					}
				}
			case isa.KindGather:
				target := env.AS.Translate(in.Target)
				if f, ok := flows[target]; ok {
					env.Store.WriteF64(target, f.op.Combine(env.Store.ReadF64(target), f.acc))
					delete(flows, target)
				}
			}
		}
	}
	if len(flows) != 0 {
		t.Fatalf("%d flows never gathered", len(flows))
	}
}

type drainFlow struct {
	op  isa.ALUOp
	acc float64
}

// drainLockstep executes per-thread traces with barrier synchronization:
// each thread runs to its next barrier (or the end), then all barriers
// release together. Phase ordering across threads therefore matches the
// timed machine, which matters for workloads (lud, backprop) whose later
// phases overwrite earlier phases' addresses.
func drainLockstep(t *testing.T, env *Env, streams []isa.Stream) {
	t.Helper()
	insts := make([][]isa.Inst, len(streams))
	for i, s := range streams {
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			insts[i] = append(insts[i], in)
		}
	}
	pos := make([]int, len(streams))
	for {
		progressed := false
		for ti := range insts {
			segEnd := pos[ti]
			for segEnd < len(insts[ti]) && insts[ti][segEnd].Kind != isa.KindBarrier {
				segEnd++
			}
			if segEnd > pos[ti] {
				drain(t, env, []isa.Stream{isa.NewSliceStream(insts[ti][pos[ti]:segEnd])})
				pos[ti] = segEnd
				progressed = true
			}
		}
		done, atBarrier := 0, 0
		for ti := range insts {
			switch {
			case pos[ti] >= len(insts[ti]):
				done++
			case insts[ti][pos[ti]].Kind == isa.KindBarrier:
				atBarrier++
			}
		}
		if done == len(insts) {
			return
		}
		if done+atBarrier == len(insts) {
			// Release the barrier.
			for ti := range insts {
				if pos[ti] < len(insts[ti]) {
					pos[ti]++
				}
			}
			continue
		}
		if !progressed {
			t.Fatal("lockstep drain stuck")
		}
	}
}

func checkWorkload(t *testing.T, name string, mode Mode) {
	t.Helper()
	env := tinyEnv(t)
	wl, err := New(name, ScaleTiny, env.Threads)
	if err != nil {
		t.Fatal(err)
	}
	wl.Init(env)
	streams := wl.Streams(mode)
	if len(streams) != env.Threads {
		t.Fatalf("%s produced %d streams for %d threads", name, len(streams), env.Threads)
	}
	drainLockstep(t, env, streams)
	if err := wl.Verify(); err != nil {
		t.Fatalf("%s/%s: %v", name, mode, err)
	}
}

func TestAllWorkloadsFunctionalBaseline(t *testing.T) {
	names := append(Benchmarks(), Microbenchmarks()...)
	names = append(names, "lud_phase")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) { checkWorkload(t, name, ModeBaseline) })
	}
}

func TestAllWorkloadsFunctionalActive(t *testing.T) {
	names := append(Benchmarks(), Microbenchmarks()...)
	names = append(names, "lud_phase", "mac_vec")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) { checkWorkload(t, name, ModeActive) })
	}
}

func TestLUDPhaseAdaptiveMixes(t *testing.T) {
	env := tinyEnv(t)
	wl := NewLUDPhase(ScaleTiny, env.Threads)
	wl.Init(env)
	streams := wl.Streams(ModeAdaptive)
	var updates, loads int
	for _, s := range streams {
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			switch in.Kind {
			case isa.KindUpdate:
				updates++
			case isa.KindLoad:
				loads++
			}
		}
	}
	if updates == 0 || loads == 0 {
		t.Fatalf("adaptive mode must mix host (%d loads) and offload (%d updates)", loads, updates)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nope", ScaleTiny, 4); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestTraceEmitters(t *testing.T) {
	env := tinyEnv(t)
	a := NewF64Array(env, 8)
	tr := &Trace{}
	tr.Ld(a.At(0))
	tr.St(a.At(1), 2)
	tr.Int()
	tr.FP()
	tr.FPMul()
	tr.Update(a.At(0), a.At(1), a.At(2), isa.OpMac)
	tr.UpdateMov(a.At(0), a.At(3))
	tr.UpdateConst(7, a.At(4))
	tr.Gather(a.At(2), 4)
	tr.AtomicAdd(a.At(5), 1)
	tr.Barrier()
	if tr.Len() != 11 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	kinds := []isa.Kind{
		isa.KindLoad, isa.KindStore, isa.KindCompute, isa.KindCompute,
		isa.KindCompute, isa.KindUpdate, isa.KindUpdate, isa.KindUpdate,
		isa.KindGather, isa.KindAtomicAdd, isa.KindBarrier,
	}
	for i, in := range tr.Insts() {
		if in.Kind != kinds[i] {
			t.Fatalf("inst %d kind = %s, want %s", i, in.Kind, kinds[i])
		}
	}
}

func TestF64ArrayBounds(t *testing.T) {
	env := tinyEnv(t)
	a := NewF64Array(env, 4)
	a.Set(3, 1.5)
	if a.Get(3) != 1.5 {
		t.Fatal("set/get roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	a.At(4)
}

func TestStripeAlignmentCoLocatesArrays(t *testing.T) {
	env := tinyEnv(t)
	geom := mem.DefaultHMCGeometry()
	n := 2 * cubeStripe / mem.WordSize // two stripes worth of elements
	a := NewF64Array(env, n)
	b := NewF64Array(env, n)
	for _, i := range []int{0, 777, n - 1} {
		ca := geom.CubeOf(env.AS.Translate(a.At(i)))
		cb := geom.CubeOf(env.AS.Translate(b.At(i)))
		if ca != cb {
			t.Fatalf("a[%d] on cube %d but b[%d] on cube %d (stripe alignment broken)", i, ca, i, cb)
		}
	}
}

func TestSpan(t *testing.T) {
	total := 0
	for tid := 0; tid < 7; tid++ {
		lo, hi := span(100, 7, tid)
		if hi < lo {
			t.Fatalf("span inverted: %d > %d", lo, hi)
		}
		total += hi - lo
	}
	if total != 100 {
		t.Fatalf("span covers %d of 100", total)
	}
}

func TestModeString(t *testing.T) {
	if ModeBaseline.String() != "baseline" || ModeActive.String() != "active" || ModeAdaptive.String() != "adaptive" {
		t.Fatal("mode names changed")
	}
}
