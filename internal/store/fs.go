package store

import (
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the store runs on. Production code
// uses OSFS; the faultfs package wraps any FS to inject torn writes, short
// reads, bit flips and sync failures, so every recovery path is testable
// without real crashes.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile creates (or truncates) name with data and syncs it.
	WriteFile(name string, data []byte) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (AppendFile, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
}

// AppendFile is an append-only file handle.
type AppendFile interface {
	// Write appends p; a short write must return an error.
	Write(p []byte) (int, error)
	// Sync flushes appended data to stable storage.
	Sync() error
	// Close releases the handle (it does not imply Sync).
	Close() error
}

// OSFS returns the real-filesystem implementation.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile writes through a same-directory temp file, syncs, then renames
// over the destination: the file either keeps its old content or has the
// complete new content, never a torn middle state.
func (osFS) WriteFile(name string, data []byte) error {
	dir, base := filepath.Split(name)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, name); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (osFS) OpenAppend(name string) (AppendFile, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }
