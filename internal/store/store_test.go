package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func mustPut(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key, want string) {
	t.Helper()
	v, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%s): missing", key)
	}
	if string(v) != want {
		t.Fatalf("Get(%s) = %q, want %q", key, v, want)
	}
}

func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "a", "alpha")
	mustPut(t, s, "b", "beta")
	mustPut(t, s, "a", "ignored") // content-addressed: re-put is a no-op
	mustGet(t, s, "a", "alpha")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.RecordsLoaded != 2 || st.CorruptRecords != 0 {
		t.Fatalf("stats after clean reopen = %+v", st)
	}
	mustGet(t, r, "a", "alpha")
	mustGet(t, r, "b", "beta")
}

// TestStoreAbandonedHandleRecovers models a SIGKILL: the first store is
// never closed, a second Open of the same directory must still load every
// synced record.
func TestStoreAbandonedHandleRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	// No Close: the process "dies" here.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 {
		t.Fatalf("recovered %d records, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		mustGet(t, r, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
}

// TestStoreTornTailQuarantined chops the last segment mid-record (a torn
// append) and checks recovery keeps every whole record, quarantines the
// tail, and leaves the repaired segment clean for the following Open.
func TestStoreTornTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "keep1", "value-one")
	mustPut(t, s, "keep2", "value-two")
	mustPut(t, s, "torn", "this-record-will-be-cut")
	s.Close()

	seg := filepath.Join(dir, s.segmentName(0))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.RecordsLoaded != 2 || st.CorruptRecords != 1 || st.QuarantinedBytes == 0 {
		t.Fatalf("stats after torn tail = %+v", st)
	}
	mustGet(t, r, "keep1", "value-one")
	mustGet(t, r, "keep2", "value-two")
	if _, ok := r.Get("torn"); ok {
		t.Fatal("torn record served")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", s.segmentName(0)+".bad")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}

	// The repair must be durable: a third Open sees a clean store.
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.RecordsLoaded != 2 || st.CorruptRecords != 0 {
		t.Fatalf("stats after repaired reopen = %+v", st)
	}
}

// TestStoreBitFlipMidSegment flips one payload byte of the FIRST record and
// checks the records after it survive: framing is preserved by the
// header's own checksum, so a corrupt payload quarantines exactly one
// record.
func TestStoreBitFlipMidSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "victim", "corrupt-me")
	mustPut(t, s, "later1", "survivor-one")
	mustPut(t, s, "later2", "survivor-two")
	s.Close()

	seg := filepath.Join(dir, s.segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderSize+2] ^= 0x40 // inside "victim"'s key bytes
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.RecordsLoaded != 2 || st.CorruptRecords != 1 {
		t.Fatalf("stats after bit flip = %+v", st)
	}
	if _, ok := r.Get("victim"); ok {
		t.Fatal("corrupt record served")
	}
	mustGet(t, r, "later1", "survivor-one")
	mustGet(t, r, "later2", "survivor-two")
}

// TestStoreHeaderCorruptionQuarantinesRest corrupts a record HEADER; the
// framing after that point is untrustworthy so the rest of the segment is
// quarantined, but records before it are kept.
func TestStoreHeaderCorruptionQuarantinesRest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "before", "kept")
	mustPut(t, s, "broken", "lost")
	mustPut(t, s, "after", "also-lost")
	s.Close()

	seg := filepath.Join(dir, s.segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Offset of record 2's magic: record 1 is header + len("before"+"kept").
	off := recordHeaderSize + len("before") + len("kept")
	data[off] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r, "before", "kept")
	if _, ok := r.Get("broken"); ok {
		t.Fatal("record behind corrupt header served")
	}
	if st := r.Stats(); st.CorruptRecords != 1 || st.RecordsLoaded != 1 {
		t.Fatalf("stats after header corruption = %+v", st)
	}
}

// TestStoreSegmentRotation forces tiny segments and checks records span
// multiple files and all reload.
func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	s.Close()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range names {
		if s.segmentRe().MatchString(e.Name()) {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", segs)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != n {
		t.Fatalf("reloaded %d records, want %d", r.Len(), n)
	}
}

// TestStoreSegmentRollover is the regression test for the segment-name
// recovery bug: once the segment counter passes 99999999, %08d widens to
// nine digits and the old `\d{8}` pattern silently skipped those files on
// the next Open — dropping every record they held. Recovery must load
// wide-numbered segments and continue numbering past them.
func TestStoreSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.segmentName(100000000); got != "seg-100000000.log" {
		t.Fatalf("segmentName(1e8) = %q", got)
	}
	// Jump the counter to the rollover boundary, then write across it.
	s.mu.Lock()
	s.nextSeg = 99999999
	s.mu.Unlock()
	mustPut(t, s, "last8", "eight-digit segment")
	s.Close() // seal so the next Put opens seg-100000000.log
	mustPut(t, s, "first9", "nine-digit segment")
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "seg-100000000.log")); err != nil {
		t.Fatalf("nine-digit segment missing: %v", err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("recovered %d records across rollover, want 2", r.Len())
	}
	mustGet(t, r, "last8", "eight-digit segment")
	mustGet(t, r, "first9", "nine-digit segment")
	if r.nextSeg != 100000001 {
		t.Fatalf("nextSeg after rollover recovery = %d, want 100000001", r.nextSeg)
	}
	// And the reopened store keeps appending past the boundary.
	mustPut(t, r, "after", "still-works")
	r.Close()
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r2, "after", "still-works")
}

// TestStoreSegmentPrefix checks two stores with distinct prefixes keep
// separate segment families: each Open only recovers its own files.
func TestStoreSegmentPrefix(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, a, "res", "result-record")
	a.Close()
	b, err := Open(dir, Options{SegmentPrefix: "snap"})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, b, "ckpt", "snapshot-record")
	b.Close()
	if _, err := os.Stat(filepath.Join(dir, "snap-00000000.log")); err != nil {
		t.Fatalf("prefixed segment missing: %v", err)
	}

	ra, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(dir, Options{SegmentPrefix: "snap"})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, ra, "res", "result-record")
	mustGet(t, rb, "ckpt", "snapshot-record")
	if _, ok := ra.Get("ckpt"); ok {
		t.Fatal("default store recovered the snap-prefixed family")
	}
	if _, ok := rb.Get("res"); ok {
		t.Fatal("snap store recovered the default family")
	}
}

// TestStoreKillRestartCycles hammers open→put→abandon cycles with a fresh
// truncation fault each round, checking monotone recovery: every record
// fully written in any earlier round is always served.
func TestStoreKillRestartCycles(t *testing.T) {
	dir := t.TempDir()
	written := map[string]string{}
	for round := 0; round < 8; round++ {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k, v := range written {
			mustGet(t, s, k, v)
		}
		k := fmt.Sprintf("round-%d", round)
		v := fmt.Sprintf("value-%d", round)
		mustPut(t, s, k, v)
		written[k] = v
		// Crash: no Close, and half the rounds tear the active tail.
		if round%2 == 0 {
			s.mu.Lock()
			if s.active != nil {
				s.active.Write([]byte(recordMagic)) // garbage partial header
			}
			s.mu.Unlock()
		}
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range written {
		mustGet(t, r, k, v)
	}
}

// TestStoreResultsSizedValues checks values the size of real serialized
// simulation results (tens of KB) round-trip across rotation and reopen.
func TestStoreResultsSizedValues(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 96 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rnd := sim.NewRand(7)
	vals := map[string]string{}
	for i := 0; i < 12; i++ {
		buf := make([]byte, 32<<10)
		for j := range buf {
			buf[j] = byte(rnd.Uint64())
		}
		k := fmt.Sprintf("big-%d", i)
		vals[k] = string(buf)
		mustPut(t, s, k, vals[k])
	}
	s.Close()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range vals {
		mustGet(t, r, k, v)
	}
	if st := r.Stats(); st.CorruptRecords != 0 || st.BytesOnDisk == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
