package store

import (
	"bytes"
	"testing"
)

// FuzzStoreRecordDecode fuzzes the record codec with arbitrary bytes: the
// decoder must never panic, must make monotone progress (so a recovery
// scan always terminates), and for bytes produced by the encoder must
// round-trip exactly.
func FuzzStoreRecordDecode(f *testing.F) {
	seed := func(key, val string) []byte {
		b, err := appendRecord(nil, []byte(key), []byte(val))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed("a", "b"))
	f.Add(seed("config|mac|ARF-tid|tiny", `{"Cycles":12345}`))
	f.Add(append(seed("k", "v"), seed("k2", "v2")...))
	f.Add([]byte(recordMagic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	corrupted := seed("victim", "payload")
	corrupted[recordHeaderSize] ^= 1
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		// A full scan in the style of recoverSegment: whatever the input,
		// it must terminate with every error class making progress.
		off := 0
		for off < len(data) {
			key, val, size, err := decodeRecord(data[off:])
			switch err {
			case nil:
				if size <= 0 || off+size > len(data) {
					t.Fatalf("good record with bad size %d at %d/%d", size, off, len(data))
				}
				// Re-encoding the decoded record must reproduce the bytes.
				enc, eerr := appendRecord(nil, key, val)
				if eerr != nil {
					t.Fatalf("decoded record fails re-encode: %v", eerr)
				}
				if !bytes.Equal(enc, data[off:off+size]) {
					t.Fatalf("round-trip mismatch at %d", off)
				}
				off += size
			case errBadPayload:
				if size <= recordHeaderSize || off+size > len(data) {
					t.Fatalf("bad-payload record with unframeable size %d at %d", size, off)
				}
				off += size
			case errTornRecord, errBadHeader:
				// Framing lost: the scan stops here (rest quarantined).
				off = len(data)
			default:
				t.Fatalf("unexpected decode error %v", err)
			}
		}
	})
}
