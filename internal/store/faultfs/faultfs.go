// Package faultfs wraps a store.FS with programmable fault injection: torn
// writes, short reads, bit flips and sync failures. The store's recovery
// invariants — a corrupt record is never served, recovery never loses an
// intact record — are proven against this package instead of real crashes.
//
// Hooks run under the caller's goroutine with no locking of their own; the
// store serializes filesystem access behind its mutex, so hooks may mutate
// shared test state freely.
package faultfs

import (
	"errors"
	"strings"
	"sync"

	"repro/internal/store"
)

// ErrInjected is the error returned by injected write/sync failures.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps Base, diverting operations through optional hooks. A nil hook
// passes the operation straight through.
type FS struct {
	Base store.FS

	// OnReadFile may transform (or replace) the bytes a read returns —
	// flip a bit, truncate to a short read, or error outright.
	OnReadFile func(name string, data []byte) ([]byte, error)
	// OnAppendWrite may transform the bytes about to be appended. Returning
	// (prefix, ErrInjected) models a torn write: the prefix reaches the
	// file, then the write fails — exactly what a crash mid-append leaves.
	OnAppendWrite func(name string, p []byte) ([]byte, error)
	// OnSync may fail an fsync.
	OnSync func(name string) error
	// OnMkdirAll may fail directory creation (an unwritable store root
	// refusing a quarantine/ subdirectory).
	OnMkdirAll func(dir string) error
	// OnWriteFile may fail a whole-file write before any bytes reach the
	// base FS — the quarantine-preservation and segment-repair paths.
	OnWriteFile func(name string) error
}

// New wraps base (nil means the real filesystem).
func New(base store.FS) *FS {
	if base == nil {
		base = store.OSFS()
	}
	return &FS{Base: base}
}

func (f *FS) MkdirAll(dir string) error {
	if f.OnMkdirAll != nil {
		if err := f.OnMkdirAll(dir); err != nil {
			return err
		}
	}
	return f.Base.MkdirAll(dir)
}

func (f *FS) ReadDir(dir string) ([]string, error) { return f.Base.ReadDir(dir) }
func (f *FS) Rename(o, n string) error             { return f.Base.Rename(o, n) }
func (f *FS) Remove(name string) error             { return f.Base.Remove(name) }

func (f *FS) ReadFile(name string) ([]byte, error) {
	data, err := f.Base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if f.OnReadFile != nil {
		return f.OnReadFile(name, data)
	}
	return data, nil
}

// WriteFile is the store's atomic whole-file path (quarantine preservation,
// segment repair), whose crash-safety comes from rename, not from write
// ordering. OnWriteFile can refuse it outright — an unwritable directory —
// but there is no torn-write modeling here; injecting into appends and
// reads is what exercises the recovery invariants.
func (f *FS) WriteFile(name string, data []byte) error {
	if f.OnWriteFile != nil {
		if err := f.OnWriteFile(name); err != nil {
			return err
		}
	}
	return f.Base.WriteFile(name, data)
}

func (f *FS) OpenAppend(name string) (store.AppendFile, error) {
	af, err := f.Base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &appendFile{fs: f, name: name, f: af}, nil
}

type appendFile struct {
	fs   *FS
	name string
	f    store.AppendFile
}

func (a *appendFile) Write(p []byte) (int, error) {
	if a.fs.OnAppendWrite != nil {
		mutated, err := a.fs.OnAppendWrite(a.name, p)
		if len(mutated) > 0 {
			if n, werr := a.f.Write(mutated); werr != nil {
				return n, werr
			}
		}
		if err != nil {
			return len(mutated), err
		}
		return len(p), nil
	}
	return a.f.Write(p)
}

func (a *appendFile) Sync() error {
	if a.fs.OnSync != nil {
		if err := a.fs.OnSync(a.name); err != nil {
			return err
		}
	}
	return a.f.Sync()
}

func (a *appendFile) Close() error { return a.f.Close() }

// Plan builds common one-shot fault schedules. The zero Plan injects
// nothing. Arm the plan's hooks onto an FS with Arm.
type Plan struct {
	mu sync.Mutex
	// tornAfter > 0: the n-th append write (1-based) keeps only tornAfter
	// bytes and fails with ErrInjected.
	tornAt, tornAfter int
	// flipByte >= 0: reads of files matching flipName flip bit 0 of this
	// byte offset.
	flipName string
	flipByte int
	// shortBy > 0: reads of files matching shortName lose their last bytes.
	shortName string
	shortBy   int
	// failSyncs > 0: the next failSyncs Syncs fail.
	failSyncs int
	writes    int
}

// NewPlan returns an empty schedule.
func NewPlan() *Plan { return &Plan{flipByte: -1} }

// TearWrite makes append-write number n (1-based) a torn write keeping
// keep bytes.
func (p *Plan) TearWrite(n, keep int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tornAt, p.tornAfter = n, keep
	return p
}

// FlipBit flips bit 0 of byte off whenever a file whose name contains
// nameSub is read.
func (p *Plan) FlipBit(nameSub string, off int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flipName, p.flipByte = nameSub, off
	return p
}

// ShortRead drops the last n bytes of reads of files containing nameSub.
func (p *Plan) ShortRead(nameSub string, n int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shortName, p.shortBy = nameSub, n
	return p
}

// FailSyncs fails the next n Sync calls.
func (p *Plan) FailSyncs(n int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failSyncs = n
	return p
}

// Arm installs the plan's hooks on fs.
func (p *Plan) Arm(fs *FS) {
	fs.OnAppendWrite = func(name string, b []byte) ([]byte, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.writes++
		if p.tornAt > 0 && p.writes == p.tornAt {
			keep := p.tornAfter
			if keep > len(b) {
				keep = len(b)
			}
			return b[:keep], ErrInjected
		}
		return b, nil
	}
	fs.OnReadFile = func(name string, data []byte) ([]byte, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		out := data
		if p.flipByte >= 0 && p.flipName != "" && strings.Contains(name, p.flipName) && p.flipByte < len(out) {
			out = append([]byte(nil), out...)
			out[p.flipByte] ^= 1
		}
		if p.shortBy > 0 && p.shortName != "" && strings.Contains(name, p.shortName) {
			n := len(out) - p.shortBy
			if n < 0 {
				n = 0
			}
			out = out[:n]
		}
		return out, nil
	}
	fs.OnSync = func(name string) error {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.failSyncs > 0 {
			p.failSyncs--
			return ErrInjected
		}
		return nil
	}
}
