package faultfs_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/store/faultfs"
)

// open opens a store at dir through a fresh faultfs armed with plan.
func open(t *testing.T, dir string, plan *faultfs.Plan) *store.Store {
	t.Helper()
	fs := faultfs.New(nil)
	if plan != nil {
		plan.Arm(fs)
	}
	s, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTornWriteNeverServesAndNeverLoses injects a torn append mid-record:
// the Put must fail, the key must not be served, the records around it
// must survive a reopen, and the torn bytes must be quarantined.
func TestTornWriteNeverServesAndNeverLoses(t *testing.T) {
	dir := t.TempDir()
	plan := faultfs.NewPlan().TearWrite(2, 13) // write #2 keeps 13 bytes
	s := open(t, dir, plan)
	if err := s.Put("good1", []byte("value-one")); err != nil {
		t.Fatal(err)
	}
	err := s.Put("torn", []byte("never-durable"))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn Put error = %v, want ErrInjected", err)
	}
	if _, ok := s.Get("torn"); ok {
		t.Fatal("failed Put is being served")
	}
	// A retry after the fault is safe and lands in a fresh segment.
	if err := s.Put("torn", []byte("now-durable")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good2", []byte("value-two")); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, nil)
	for k, v := range map[string]string{"good1": "value-one", "torn": "now-durable", "good2": "value-two"} {
		got, ok := r.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("after recovery Get(%s) = %q/%v, want %q", k, got, ok, v)
		}
	}
	if st := r.Stats(); st.CorruptRecords != 1 || st.QuarantinedBytes != 13 {
		t.Fatalf("stats after torn-write recovery = %+v", st)
	}
}

// TestBitFlipOnReadQuarantinesRecord injects a bit flip into the first
// record's payload as recovery reads the segment: that record must be
// quarantined, later records kept — the scan resyncs on the intact header.
func TestBitFlipOnReadQuarantinesRecord(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	if err := s.Put("flipped", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Byte 22 is inside the first record's key ("flipped").
	r := open(t, dir, faultfs.NewPlan().FlipBit("seg-", 22))
	if _, ok := r.Get("flipped"); ok {
		t.Fatal("bit-flipped record served")
	}
	if got, ok := r.Get("kept"); !ok || string(got) != "payload-two" {
		t.Fatalf("record after flipped one lost: %q/%v", got, ok)
	}
	if st := r.Stats(); st.RecordsLoaded != 1 || st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShortReadQuarantinesTail injects a short read (torn tail as seen by
// the reader): intact prefix records load, the tail is quarantined.
func TestShortReadQuarantinesTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := open(t, dir, faultfs.NewPlan().ShortRead("seg-", 7))
	if r.Len() != 4 {
		t.Fatalf("loaded %d records from short read, want 4", r.Len())
	}
	if st := r.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The repair rewrote the segment from the short view; a clean reopen
	// serves the 4 surviving records (the truncated one was re-put-able).
	r2 := open(t, dir, nil)
	if r2.Len() != 4 {
		t.Fatalf("clean reopen holds %d records, want 4", r2.Len())
	}
}

// TestSyncFailureFailsPut checks a failed fsync reports the Put as
// non-durable and does not serve the key from memory.
func TestSyncFailureFailsPut(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, faultfs.NewPlan().FailSyncs(1))
	if err := s.Put("unsynced", []byte("v")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Put with failing sync = %v, want ErrInjected", err)
	}
	if _, ok := s.Get("unsynced"); ok {
		t.Fatal("non-durable record served")
	}
	if err := s.Put("unsynced", []byte("v")); err != nil {
		t.Fatalf("retry after sync failure: %v", err)
	}
}

// TestQuarantineDirUnwritableStillRecovers pins the degradation contract
// for a store root that refuses the quarantine/ subdirectory: recovery must
// still load every intact record and repair the segment — losing forensic
// evidence is survivable, losing reads is not — and the dropped quarantine
// write must be counted so /stats can surface it.
func TestQuarantineDirUnwritableStillRecovers(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	if err := s.Put("corrupted", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen through an FS that corrupts the first record on read AND
	// refuses to create quarantine/ — a read-mostly disk gone read-only
	// for new directories.
	fs := faultfs.New(nil)
	faultfs.NewPlan().FlipBit("seg-", 22).Arm(fs)
	fs.OnMkdirAll = func(d string) error {
		if strings.Contains(d, "quarantine") {
			return fmt.Errorf("mkdir %s: %w", d, faultfs.ErrInjected)
		}
		return nil
	}
	r, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatalf("recovery must not fail on an unwritable quarantine dir: %v", err)
	}
	if got, ok := r.Get("kept"); !ok || string(got) != "payload-two" {
		t.Fatalf("intact record lost: %q/%v", got, ok)
	}
	st := r.Stats()
	if st.RecordsLoaded != 1 || st.CorruptRecords != 1 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if st.QuarantineFailures != 1 {
		t.Fatalf("QuarantineFailures = %d, want 1", st.QuarantineFailures)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine")); !os.IsNotExist(err) {
		t.Fatalf("quarantine dir exists despite injected mkdir failure (err=%v)", err)
	}

	// The segment repair still happened: a clean reopen (no faults) sees no
	// corruption and the same surviving record.
	r2 := open(t, dir, nil)
	if st := r2.Stats(); st.RecordsLoaded != 1 || st.CorruptRecords != 0 || st.QuarantineFailures != 0 {
		t.Fatalf("stats after repaired reopen = %+v", st)
	}
}

// TestQuarantineFileWriteFailureCounted is the sibling fault one layer
// down: the directory exists but the quarantine file itself cannot be
// written. Same contract — recovery proceeds, the failure is counted.
func TestQuarantineFileWriteFailureCounted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	if err := s.Put("corrupted", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fs := faultfs.New(nil)
	faultfs.NewPlan().FlipBit("seg-", 22).Arm(fs)
	fs.OnWriteFile = func(name string) error {
		if strings.Contains(name, "quarantine") {
			return fmt.Errorf("write %s: %w", name, faultfs.ErrInjected)
		}
		return nil
	}
	r, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatalf("recovery must not fail on an unwritable quarantine file: %v", err)
	}
	if got, ok := r.Get("kept"); !ok || string(got) != "payload-two" {
		t.Fatalf("intact record lost: %q/%v", got, ok)
	}
	if st := r.Stats(); st.QuarantineFailures != 1 {
		t.Fatalf("QuarantineFailures = %d, want 1 (stats %+v)", st.QuarantineFailures, st)
	}
}
