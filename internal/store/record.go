package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record wire format (little-endian), the unit of the append-only segment
// files:
//
//	offset  size  field
//	0       4     magic "ARS1"
//	4       4     key length
//	8       4     value length
//	12      4     CRC32 (IEEE) of key || value
//	16      4     CRC32 (IEEE) of bytes [0,16) — the header's own checksum
//	20      kLen  key bytes
//	20+kLen vLen  value bytes
//
// The header carries its own CRC so recovery can distinguish "trustworthy
// lengths, corrupt payload" (skip exactly this record and keep scanning —
// no intact record after it is lost) from "untrustworthy header" (the
// remaining bytes of the segment cannot be re-framed and are quarantined
// wholesale). Length caps bound what a corrupted-but-checksum-colliding
// header could make the scanner allocate.
const (
	recordHeaderSize = 20
	recordMagic      = "ARS1"
	maxKeyLen        = 1 << 20 // 1 MiB
	maxValueLen      = 1 << 30 // 1 GiB
)

// Scan outcomes for one record slot.
var (
	// errTornRecord: the segment ends mid-record (torn tail from a crash
	// during an append). Everything before it is intact.
	errTornRecord = errors.New("store: torn record at end of segment")
	// errBadHeader: the header fails its own checksum (or magic/length
	// sanity); the record boundary is lost and the rest of the segment
	// cannot be decoded.
	errBadHeader = errors.New("store: corrupt record header")
	// errBadPayload: the header is intact but key/value bytes fail the
	// payload checksum; exactly this record is bad and the scan can resume
	// at the next boundary.
	errBadPayload = errors.New("store: corrupt record payload")
)

// appendRecord encodes one record onto buf and returns the extended slice.
func appendRecord(buf []byte, key, value []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return buf, fmt.Errorf("store: key length %d outside (0, %d]", len(key), maxKeyLen)
	}
	if len(value) > maxValueLen {
		return buf, fmt.Errorf("store: value length %d exceeds %d", len(value), maxValueLen)
	}
	base := len(buf)
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(value)))
	crc := crc32.ChecksumIEEE(key)
	crc = crc32.Update(crc, crc32.IEEETable, value)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[base:base+16]))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf, nil
}

// decodeRecord reads the record starting at b[0].
//
// On success it returns the key, value and total encoded size. On failure
// the error is one of errTornRecord / errBadHeader / errBadPayload; for
// errBadPayload the returned size still frames the full corrupt record, so
// the caller can skip it and keep scanning.
func decodeRecord(b []byte) (key, value []byte, size int, err error) {
	if len(b) < recordHeaderSize {
		return nil, nil, 0, errTornRecord
	}
	hdr := b[:recordHeaderSize]
	if string(hdr[0:4]) != recordMagic {
		return nil, nil, 0, errBadHeader
	}
	if crc32.ChecksumIEEE(hdr[:16]) != binary.LittleEndian.Uint32(hdr[16:20]) {
		return nil, nil, 0, errBadHeader
	}
	kLen := binary.LittleEndian.Uint32(hdr[4:8])
	vLen := binary.LittleEndian.Uint32(hdr[8:12])
	if kLen == 0 || kLen > maxKeyLen || vLen > maxValueLen {
		return nil, nil, 0, errBadHeader
	}
	size = recordHeaderSize + int(kLen) + int(vLen)
	if len(b) < size {
		// The header is intact, so the lengths are real: the segment simply
		// ends before the payload does (crash mid-append).
		return nil, nil, 0, errTornRecord
	}
	key = b[recordHeaderSize : recordHeaderSize+int(kLen)]
	value = b[recordHeaderSize+int(kLen) : size]
	crc := crc32.ChecksumIEEE(key)
	crc = crc32.Update(crc, crc32.IEEETable, value)
	if crc != binary.LittleEndian.Uint32(hdr[12:16]) {
		return nil, nil, size, errBadPayload
	}
	return key, value, size, nil
}
