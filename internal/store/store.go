// Package store is a crash-safe, disk-backed, content-addressed result
// store: an append-only log of checksummed key/value records sharded into
// segment files, with startup recovery that quarantines torn or corrupt
// bytes instead of failing and never loses an intact record.
//
// It backs the simulation service's result cache (DESIGN.md "Durability &
// failure"): simulation results are pure functions of their job key, so the
// store never needs update-in-place or deletion — a record is immutable
// once written, duplicate keys are idempotent, and recovery is a single
// forward scan. Writes are appends followed by fsync; repairs (dropping a
// corrupt record from a segment) are whole-file rewrites committed with an
// atomic temp-file+rename, so a crash at any byte leaves every previously
// durable record readable.
package store

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// Options tunes a Store.
type Options struct {
	// FS overrides the filesystem (fault injection, tests); nil means OSFS.
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <= 0 means 8 MiB.
	SegmentBytes int64
	// NoSync skips the per-record fsync. Throughput over durability: a
	// crash may lose recent records (never corrupt old ones). The service
	// keeps the default because a lost record is a re-simulation.
	NoSync bool
	// SegmentPrefix names the store's segment file family; empty means
	// "seg". Files are <prefix>-<n>.log, so distinct record families (the
	// result cache, the checkpoint store) can live in separate directories
	// or share tooling without their segment numbering colliding.
	SegmentPrefix string
}

// Stats is a point-in-time snapshot of the store's robustness gauges.
type Stats struct {
	// Records is the live record count (loaded + written this process).
	Records int
	// RecordsLoaded is how many intact records recovery loaded at Open.
	RecordsLoaded int
	// CorruptRecords counts torn/corrupt stretches quarantined at Open.
	CorruptRecords int
	// QuarantinedBytes is the total size of quarantined stretches.
	QuarantinedBytes int64
	// QuarantineFailures counts recovery scans that condemned corrupt bytes
	// but could not write them under quarantine/ (directory missing and
	// uncreatable, or unwritable). Recovery proceeds regardless — intact
	// records load and the damaged segment is still repaired — but the
	// condemned bytes were discarded instead of preserved, so the failure
	// is surfaced here for operators rather than aborting startup.
	QuarantineFailures int
	// BytesOnDisk is the live segment footprint (quarantine files excluded).
	BytesOnDisk int64
	// Segments is the number of live segment files.
	Segments int
}

// Store is the disk-backed map. All methods are safe for concurrent use.
type Store struct {
	dir  string
	fs   FS
	opts Options

	mu         sync.Mutex
	index      map[string][]byte
	active     AppendFile
	activeSize int64
	nextSeg    int
	encBuf     []byte
	stats      Stats

	segPrefix string
	segRe     *regexp.Regexp
}

// segmentRe matches this store's segment files. `\d{8,}` (not `\d{8}`):
// segmentName zero-pads to 8 digits but %08d widens once the counter
// rolls past seg-99999999.log, and recovery must keep accepting those
// segments rather than silently skipping them.
func (s *Store) segmentRe() *regexp.Regexp {
	if s.segRe == nil {
		s.segRe = regexp.MustCompile(`^` + regexp.QuoteMeta(s.segPrefix) + `-(\d{8,})\.log$`)
	}
	return s.segRe
}

func (s *Store) segmentName(n int) string {
	return fmt.Sprintf("%s-%08d.log", s.segPrefix, n)
}

// Open loads (or creates) the store at dir, recovering every intact record
// from its segment files. Corrupt or torn byte stretches are moved to
// quarantine files under dir/quarantine — recovery only fails on
// directory-level I/O errors, never on bad content.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if opts.SegmentPrefix == "" {
		opts.SegmentPrefix = "seg"
	}
	s := &Store{dir: dir, fs: opts.FS, opts: opts, index: make(map[string][]byte), segPrefix: opts.SegmentPrefix}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	segs := make([]int, 0, len(names))
	for _, name := range names {
		if m := s.segmentRe().FindStringSubmatch(name); m != nil {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				// A digit run too long for int (overflow): not one of ours.
				continue
			}
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	for _, n := range segs {
		if err := s.recoverSegment(n); err != nil {
			return nil, err
		}
	}
	if len(segs) > 0 {
		s.nextSeg = segs[len(segs)-1] + 1
	}
	s.stats.RecordsLoaded = len(s.index)
	s.stats.Records = len(s.index)
	return s, nil
}

// recoverSegment scans one segment, loading intact records into the index.
// A corrupt payload is skipped at its exact boundary (the records after it
// survive); an unreadable header or torn tail quarantines the rest of the
// file. Any damage triggers an atomic rewrite of the segment containing
// only the intact records, so the next Open scans clean files.
func (s *Store) recoverSegment(n int) error {
	path := filepath.Join(s.dir, s.segmentName(n))
	data, err := s.fs.ReadFile(path)
	if err != nil {
		// The segment cannot be read at all (injected short read paths
		// return what they can; a hard error means no bytes). Quarantine by
		// counting it — the file is left in place for manual inspection —
		// and keep serving what other segments hold.
		s.stats.CorruptRecords++
		return nil
	}
	type rec struct{ key, val []byte }
	var good []rec
	var bad []byte
	off := 0
	damaged := false
	for off < len(data) {
		key, val, size, derr := decodeRecord(data[off:])
		switch derr {
		case nil:
			good = append(good, rec{key, val})
			off += size
		case errBadPayload:
			// Exact framing survives: quarantine just this record.
			s.stats.CorruptRecords++
			bad = append(bad, data[off:off+size]...)
			off += size
			damaged = true
		default: // errTornRecord, errBadHeader: framing lost
			s.stats.CorruptRecords++
			bad = append(bad, data[off:]...)
			off = len(data)
			damaged = true
		}
	}
	for _, r := range good {
		val := append([]byte(nil), r.val...)
		s.index[string(r.key)] = val
	}
	if !damaged {
		s.stats.BytesOnDisk += int64(len(data))
		s.stats.Segments++
		return nil
	}
	// Preserve the damaged bytes, then rewrite the segment with only its
	// intact records via temp-file+rename. The rewrite is atomic: a crash
	// here leaves either the old damaged file (re-repaired next Open) or
	// the clean one — never a half-written segment.
	s.stats.QuarantinedBytes += int64(len(bad))
	// Quarantine-file write failures are not fatal: the bytes are already
	// condemned, and the repair below is what protects reads. But they are
	// counted — an unwritable quarantine/ directory means forensic evidence
	// is being lost, and /stats is where that must show up.
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fs.MkdirAll(qdir); err != nil {
		s.stats.QuarantineFailures++
	} else if err := s.fs.WriteFile(filepath.Join(qdir, s.segmentName(n)+".bad"), bad); err != nil {
		s.stats.QuarantineFailures++
	}
	var clean []byte
	for _, r := range good {
		clean, err = appendRecord(clean, r.key, r.val)
		if err != nil {
			return fmt.Errorf("store: re-encoding %s: %w", path, err)
		}
	}
	if len(clean) == 0 {
		if err := s.fs.Remove(path); err != nil {
			return fmt.Errorf("store: removing fully corrupt %s: %w", path, err)
		}
		return nil
	}
	if err := s.fs.WriteFile(path, clean); err != nil {
		return fmt.Errorf("store: repairing %s: %w", path, err)
	}
	s.stats.BytesOnDisk += int64(len(clean))
	s.stats.Segments++
	return nil
}

// Get returns the stored value for key. The returned slice is shared and
// must be treated as read-only.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[key]
	return v, ok
}

// Len reports the live record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Range calls fn for every record until it returns false. Iteration order
// is unspecified; values are shared read-only slices.
func (s *Store) Range(fn func(key string, value []byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.index {
		if !fn(k, v) {
			return
		}
	}
}

// Put durably appends one record. Re-putting an existing key is a no-op
// (the store is content-addressed: a key's value never changes), so
// write-through callers need no exists-check of their own. A nil error
// means the record is on disk (fsynced unless Options.NoSync); on error
// the key stays absent and a retry is safe — the failed append's bytes, if
// any reached the disk, are quarantined by the next Open.
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return nil
	}
	var err error
	s.encBuf, err = appendRecord(s.encBuf[:0], []byte(key), value)
	if err != nil {
		return err
	}
	if s.active == nil {
		if err := s.openActiveLocked(); err != nil {
			return err
		}
	}
	if _, err := s.active.Write(s.encBuf); err != nil {
		// The segment tail is now suspect (possibly torn): abandon it and
		// let the next Put start a fresh segment; recovery quarantines the
		// tail on the next Open.
		s.dropActiveLocked()
		return fmt.Errorf("store: appending to %s: %w", s.segmentName(s.nextSeg-1), err)
	}
	if !s.opts.NoSync {
		if err := s.active.Sync(); err != nil {
			s.dropActiveLocked()
			return fmt.Errorf("store: syncing %s: %w", s.segmentName(s.nextSeg-1), err)
		}
	}
	s.activeSize += int64(len(s.encBuf))
	s.stats.BytesOnDisk += int64(len(s.encBuf))
	s.index[key] = append([]byte(nil), value...)
	s.stats.Records = len(s.index)
	if s.activeSize >= s.opts.SegmentBytes {
		s.dropActiveLocked() // seal: the next Put rotates to a new segment
	}
	return nil
}

// openActiveLocked starts the next segment file.
func (s *Store) openActiveLocked() error {
	name := filepath.Join(s.dir, s.segmentName(s.nextSeg))
	f, err := s.fs.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", name, err)
	}
	s.active = f
	s.activeSize = 0
	s.nextSeg++
	s.stats.Segments++
	return nil
}

// dropActiveLocked closes the active segment handle (sealing it).
func (s *Store) dropActiveLocked() {
	if s.active != nil {
		_ = s.active.Close()
		s.active = nil
	}
}

// Stats snapshots the robustness gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close seals the active segment. The store stays readable (the index is
// in memory) but further Puts will reopen a segment; callers normally
// Close exactly once at shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropActiveLocked()
	return nil
}
