package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// lineState is the MESI state of an L1 line.
type lineState uint8

const (
	stInv lineState = iota
	stShared
	stExcl
	stMod
)

// L1Config sizes a private L1 data cache (Table 4.1: 16 KB, 4-way).
type L1Config struct {
	SizeBytes int
	Ways      int
	HitLat    uint64
	MSHRs     int
	InQDepth  int
}

// DefaultL1Config returns the Table 4.1 L1.
func DefaultL1Config() L1Config {
	return L1Config{SizeBytes: 16 << 10, Ways: 4, HitLat: 2, MSHRs: 8, InQDepth: 8}
}

type l1Line struct {
	tag   mem.PAddr
	state lineState
	lru   uint64
}

type l1MSHR struct {
	block   mem.PAddr
	write   bool
	sent    bool
	waiters []func(cycle uint64)
}

type timedCall struct {
	at uint64
	fn func(cycle uint64)
}

type outMsg struct {
	dst int
	m   *Msg
}

// L1 is one core's private data cache.
type L1 struct {
	ID  int // core id == tile id
	cfg L1Config

	sets    int
	lines   [][]l1Line
	lruTick uint64

	// mshrs holds the live miss entries. The capacity is cfg.MSHRs (8 in
	// the evaluation machine), so a linear scan beats a map on both lookup
	// and allocation.
	mshrs    []*l1MSHR
	unsent   []*l1MSHR // misses whose request the NoC refused, in FIFO order
	mshrFree []*l1MSHR // recycled MSHR entries (waiters arrays retained)
	send     Sender
	homeBank func(block mem.PAddr) int
	pool     *MsgPool

	inQ        sim.FIFO[*Msg]
	outbox     sim.FIFO[outMsg]
	calls      []timedCall
	callsSpare []timedCall

	// waker invalidates the engine's cached idle hint on external input
	// (Access from the core, Deliver from the NoC).
	waker *sim.Waker

	Stats Stats
}

// never aliases the sim.Idler "quiescent until external input" sentinel.
const never = sim.Never

// NewL1 builds an L1 for core id. send injects messages into the NoC;
// homeBank maps a block to its S-NUCA L2 bank tile; pool is the machine's
// shared coherence-message free list.
func NewL1(id int, cfg L1Config, send Sender, homeBank func(mem.PAddr) int, pool *MsgPool) *L1 {
	sets := cfg.SizeBytes / mem.BlockSize / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: L1 set count %d must be a positive power of two", sets))
	}
	if pool == nil {
		pool = NewMsgPool()
	}
	l := &L1{
		ID:       id,
		cfg:      cfg,
		sets:     sets,
		lines:    make([][]l1Line, sets),
		send:     send,
		homeBank: homeBank,
		pool:     pool,
	}
	for i := range l.lines {
		l.lines[i] = make([]l1Line, cfg.Ways)
	}
	return l
}

func (l *L1) setOf(block mem.PAddr) int {
	return int(uint64(block)>>6) & (l.sets - 1)
}

func (l *L1) find(block mem.PAddr) *l1Line {
	set := l.lines[l.setOf(block)]
	for i := range set {
		if set[i].state != stInv && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// SetWaker implements sim.WakeSetter.
func (l *L1) SetWaker(w *sim.Waker) { l.waker = w }

// MSHRsInUse reports outstanding misses.
func (l *L1) MSHRsInUse() int { return len(l.mshrs) }

// findMSHR returns the live miss entry for block, or nil.
func (l *L1) findMSHR(block mem.PAddr) *l1MSHR {
	for _, ms := range l.mshrs {
		if ms.block == block {
			return ms
		}
	}
	return nil
}

// Busy reports whether any miss, queued message or pending send remains.
func (l *L1) Busy() bool {
	return len(l.mshrs) > 0 || l.inQ.Len() > 0 || l.outbox.Len() > 0 || len(l.calls) > 0
}

// Access performs a load (write=false) or store (write=true) at addr. done
// fires when the access completes. It reports false when the access cannot
// be accepted this cycle (MSHR pressure); the core retries.
func (l *L1) Access(addr mem.PAddr, write bool, cycle uint64, done func(cycle uint64)) bool {
	l.waker.Wake()
	block := mem.BlockAlign(addr)
	if ms := l.findMSHR(block); ms != nil {
		// Coalesce reads into any outstanding miss and writes into write
		// misses; a write behind a read miss waits for the fill.
		if write && !ms.write {
			return false
		}
		ms.waiters = append(ms.waiters, done)
		l.Stats.L1Accesses++
		return true
	}
	line := l.find(block)
	if line != nil {
		writable := line.state == stExcl || line.state == stMod
		if !write || writable {
			l.Stats.L1Accesses++
			l.Stats.L1Hits++
			if write {
				line.state = stMod
			}
			l.touch(line)
			l.after(cycle+l.cfg.HitLat, done)
			return true
		}
		// Store to a Shared line: upgrade via GetX. The line stays S until
		// the exclusive grant arrives.
	}
	if len(l.mshrs) >= l.cfg.MSHRs {
		return false
	}
	l.Stats.L1Accesses++
	l.Stats.L1Misses++
	ms := l.getMSHR()
	ms.block, ms.write = block, write
	ms.waiters = append(ms.waiters, done)
	l.mshrs = append(l.mshrs, ms)
	l.trySendMiss(ms)
	if !ms.sent {
		l.unsent = append(l.unsent, ms)
	}
	return true
}

// getMSHR returns a recycled (or fresh) MSHR entry with retained waiters
// capacity; releaseMSHR returns it after the fill completes.
func (l *L1) getMSHR() *l1MSHR {
	if n := len(l.mshrFree); n > 0 {
		ms := l.mshrFree[n-1]
		l.mshrFree = l.mshrFree[:n-1]
		return ms
	}
	return &l1MSHR{}
}

func (l *L1) releaseMSHR(ms *l1MSHR) {
	for i := range ms.waiters {
		ms.waiters[i] = nil
	}
	ms.waiters = ms.waiters[:0]
	ms.sent = false
	l.mshrFree = append(l.mshrFree, ms) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
}

func (l *L1) trySendMiss(ms *l1MSHR) {
	t := MsgGetS
	if ms.write {
		t = MsgGetX
	}
	m := l.pool.Get(t, ms.block, l.ID)
	if l.send(l.homeBank(ms.block), m) {
		ms.sent = true
	} else {
		l.pool.Put(m)
	}
}

func (l *L1) touch(line *l1Line) {
	l.lruTick++
	line.lru = l.lruTick
}

func (l *L1) after(at uint64, fn func(uint64)) {
	l.calls = append(l.calls, timedCall{at: at, fn: fn}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
}

func (l *L1) post(dst int, m *Msg) {
	if !l.send(dst, m) {
		l.outbox.Push(outMsg{dst: dst, m: m})
	}
}

// Deliver accepts a coherence message from the NoC; false refuses it
// (bounded input queue).
func (l *L1) Deliver(m *Msg, cycle uint64) bool {
	if l.inQ.Len() >= l.cfg.InQDepth {
		return false
	}
	l.inQ.Push(m)
	l.waker.Wake()
	return true
}

// NextWork implements sim.Idler: the L1 needs its Tick only while it holds
// an unsent miss, a queued send, a timed completion or a delivered message.
// Waiting on an outstanding (sent) miss is quiescent — the fill arrives via
// Deliver.
func (l *L1) NextWork(now uint64) uint64 {
	if len(l.unsent) > 0 || l.outbox.Len() > 0 || len(l.calls) > 0 || l.inQ.Len() > 0 {
		return now
	}
	return never
}

// Tick advances the cache: retries sends, fires timed completions and
// processes delivered messages.
//
//ar:hotpath
func (l *L1) Tick(cycle uint64) {
	// Retry unsent miss requests, oldest first.
	if len(l.unsent) > 0 {
		kept := l.unsent[:0]
		for _, ms := range l.unsent {
			l.trySendMiss(ms)
			if !ms.sent {
				kept = append(kept, ms) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			}
		}
		l.unsent = kept
	}
	// Retry outbox.
	for l.outbox.Len() > 0 {
		o := l.outbox.Peek()
		if !l.send(o.dst, o.m) {
			break
		}
		l.outbox.Pop()
	}
	// Fire completions.
	if len(l.calls) > 0 {
		due := l.calls
		l.calls = l.callsSpare[:0]
		for _, c := range due {
			if c.at <= cycle {
				c.fn(cycle)
			} else {
				l.calls = append(l.calls, c) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			}
		}
		l.callsSpare = due[:0]
	}
	// Process messages.
	for n := 0; n < 4 && l.inQ.Len() > 0; n++ {
		l.handle(l.inQ.Pop(), cycle)
	}
}

// handle consumes one delivered message; every case is synchronous, so the
// message is released back to the pool on return (the L1's single point of
// final consumption).
func (l *L1) handle(m *Msg, cycle uint64) {
	switch m.Type {
	case MsgData:
		l.fill(m, cycle)
	case MsgInval:
		if line := l.find(m.Block); line != nil {
			line.state = stInv
		}
		ack := l.pool.Get(MsgInvAck, m.Block, l.ID)
		l.post(m.From, ack)
	case MsgFetch:
		dirty := false
		if line := l.find(m.Block); line != nil {
			dirty = line.state == stMod
			line.state = stShared
		}
		resp := l.pool.Get(MsgFetchResp, m.Block, l.ID)
		resp.Dirty = dirty
		l.post(m.From, resp)
	case MsgFetchInv:
		dirty := false
		if line := l.find(m.Block); line != nil {
			dirty = line.state == stMod
			line.state = stInv
		}
		resp := l.pool.Get(MsgFetchResp, m.Block, l.ID)
		resp.Dirty = dirty
		l.post(m.From, resp)
	default:
		panic(fmt.Sprintf("cache: L1 %d cannot handle %s", l.ID, m.Type))
	}
	l.pool.Put(m)
}

// fill installs a granted block and wakes the miss's waiters.
func (l *L1) fill(m *Msg, cycle uint64) {
	ms := l.findMSHR(m.Block)
	if ms == nil {
		panic(fmt.Sprintf("cache: L1 %d fill for unknown block %#x", l.ID, uint64(m.Block)))
	}
	for i, cand := range l.mshrs {
		if cand == ms {
			last := len(l.mshrs) - 1
			l.mshrs[i] = l.mshrs[last]
			l.mshrs[last] = nil
			l.mshrs = l.mshrs[:last]
			break
		}
	}

	// If this was an S->M upgrade the line is already resident.
	line := l.find(m.Block)
	if line == nil {
		line = l.victim(m.Block)
		line.tag = m.Block
	}
	switch {
	case m.Excl && ms.write:
		line.state = stMod
	case m.Excl:
		line.state = stExcl
	default:
		line.state = stShared
	}
	l.touch(line)
	for _, w := range ms.waiters {
		l.after(cycle+l.cfg.HitLat, w)
	}
	l.releaseMSHR(ms)
}

// victim selects (and if needed evicts) a way for a new block.
func (l *L1) victim(block mem.PAddr) *l1Line {
	set := l.lines[l.setOf(block)]
	var v *l1Line
	for i := range set {
		if set[i].state == stInv {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	l.Stats.L1Evictions++
	if v.state == stMod {
		// Dirty writeback to the L2 home bank.
		wb := l.pool.Get(MsgPutM, v.tag, l.ID)
		wb.Dirty = true
		l.post(l.homeBank(v.tag), wb)
	}
	v.state = stInv
	return v
}
