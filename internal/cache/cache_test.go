package cache

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/network"
)

// harness wires one L1 and one L2 bank directly (no NoC): messages route by
// destination id 0 = L1's core, 100 = the bank.
type harness struct {
	l1   *L1
	l2   *L2Bank
	mem  []memOp
	mems int
	cyc  uint64
}

type memOp struct {
	block mem.PAddr
	write bool
	done  func(uint64)
}

func newHarness(t *testing.T) *harness {
	h := &harness{}
	l1Send := func(dst int, m *Msg) bool {
		if dst != 100 {
			t.Fatalf("L1 sent %s to %d", m.Type, dst)
		}
		return h.l2.Deliver(m, 0)
	}
	l2Send := func(dst int, m *Msg) bool {
		return h.l1.Deliver(m, 0)
	}
	memPort := func(block mem.PAddr, write bool, done func(uint64)) bool {
		h.mems++
		h.mem = append(h.mem, memOp{block, write, done})
		return true
	}
	cfg1 := DefaultL1Config()
	cfg1.SizeBytes = 1 << 10 // 4 sets x 4 ways
	cfg2 := DefaultL2Config()
	cfg2.BankSizeBytes = 4 << 10
	cfg2.Ways = 4
	h.l1 = NewL1(0, cfg1, l1Send, func(mem.PAddr) int { return 100 }, nil)
	h.l2 = NewL2Bank(100, cfg2, l2Send, memPort, nil)
	return h
}

// settle ticks both caches, answering memory fetches immediately. The
// clock is monotonic across calls.
func (h *harness) settle(n int) {
	for i := 0; i < n; i++ {
		h.cyc++
		for len(h.mem) > 0 {
			op := h.mem[0]
			h.mem = h.mem[1:]
			op.done(h.cyc)
		}
		h.l2.Tick(h.cyc)
		h.l1.Tick(h.cyc)
	}
}

func TestL1MissFillsAndHits(t *testing.T) {
	h := newHarness(t)
	done := 0
	if !h.l1.Access(0x1000, false, 0, func(uint64) { done++ }) {
		t.Fatal("access refused")
	}
	h.settle(100)
	if done != 1 {
		t.Fatal("miss never completed")
	}
	if h.l1.Stats.L1Misses != 1 || h.l2.Stats.L2Misses != 1 || h.mems != 1 {
		t.Fatalf("stats: l1=%+v l2=%+v", h.l1.Stats, h.l2.Stats)
	}
	// Second access hits in L1 without new messages.
	if !h.l1.Access(0x1008, false, h.cyc, func(uint64) { done++ }) {
		t.Fatal("hit refused")
	}
	h.settle(50)
	if done != 2 || h.l1.Stats.L1Hits != 1 {
		t.Fatalf("hit path broken: done=%d stats=%+v", done, h.l1.Stats)
	}
}

func TestL1CoalescesMisses(t *testing.T) {
	h := newHarness(t)
	done := 0
	h.l1.Access(0x2000, false, 0, func(uint64) { done++ })
	h.l1.Access(0x2010, false, 0, func(uint64) { done++ })
	h.settle(100)
	if done != 2 {
		t.Fatalf("coalesced waiters = %d, want 2", done)
	}
	if h.l1.Stats.L1Misses != 1 {
		t.Fatalf("misses = %d, want 1 (coalesced)", h.l1.Stats.L1Misses)
	}
}

func TestWriteGetsExclusive(t *testing.T) {
	h := newHarness(t)
	done := 0
	h.l1.Access(0x3000, true, 0, func(uint64) { done++ })
	h.settle(100)
	if done != 1 {
		t.Fatal("write never completed")
	}
	// Writing again is a silent hit (M state).
	h.l1.Access(0x3000, true, h.cyc, func(uint64) { done++ })
	h.settle(50)
	if done != 2 || h.l1.Stats.L1Hits != 1 {
		t.Fatalf("M-state write hit broken: %+v", h.l1.Stats)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newHarness(t)
	// Dirty a block, then evict it by filling its set (4 ways + 1).
	done := 0
	h.l1.Access(0x4000, true, 0, func(uint64) { done++ })
	h.settle(100)
	// Same L1 set: stride = sets(4) * 64 = 256 bytes.
	for i := 1; i <= 4; i++ {
		h.l1.Access(mem.PAddr(0x4000+i*256), false, h.cyc, func(uint64) { done++ })
		h.settle(100)
	}
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if h.l1.Stats.L1Evictions == 0 {
		t.Fatal("no eviction happened")
	}
}

func TestBackInvalMiss(t *testing.T) {
	h := newHarness(t)
	got := false
	h.l2.Deliver(&Msg{Type: MsgBackInvalQ, Block: 0x9000, From: 0, Tag: 7}, 0)
	// Intercept the response at the L1 side sender (our harness routes all
	// L2 sends to L1.Deliver; BackInvalD is not an L1 message, so check via
	// a custom sender instead).
	h.l2.send = func(dst int, m *Msg) bool {
		if m.Type == MsgBackInvalD && m.Tag == 7 {
			got = true
			return true
		}
		return h.l1.Deliver(m, 0)
	}
	h.settle(50)
	if !got {
		t.Fatal("back-invalidation query never answered")
	}
	if h.l2.Stats.BackInvalQ != 1 || h.l2.Stats.BackInvalHit != 0 {
		t.Fatalf("stats: %+v", h.l2.Stats)
	}
}

func TestBackInvalHitInvalidates(t *testing.T) {
	h := newHarness(t)
	done := 0
	h.l1.Access(0xA000, true, 0, func(uint64) { done++ }) // cached M in L1
	h.settle(100)
	got := false
	h.l2.send = func(dst int, m *Msg) bool {
		if m.Type == MsgBackInvalD {
			got = true
			return true
		}
		return h.l1.Deliver(m, 0)
	}
	h.l2.Deliver(&Msg{Type: MsgBackInvalQ, Block: 0xA000, From: 0, Tag: 8}, 0)
	h.settle(100)
	if !got {
		t.Fatal("back-invalidation with cached copy never completed")
	}
	if h.l2.Stats.BackInvalHit != 1 {
		t.Fatalf("hit not counted: %+v", h.l2.Stats)
	}
	// The L1 copy must be gone: re-access misses.
	h.l1.Access(0xA000, false, h.cyc, func(uint64) { done++ })
	h.settle(100)
	if h.l1.Stats.L1Misses != 2 {
		t.Fatalf("L1 copy survived back-invalidation: %+v", h.l1.Stats)
	}
}

func TestBankOfCoversAllBanks(t *testing.T) {
	seen := map[int]bool{}
	for b := 0; b < 64; b++ {
		seen[BankOf(mem.PAddr(b*64), 16)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("block interleave covers %d banks, want 16", len(seen))
	}
}

func TestMsgClassification(t *testing.T) {
	resp := []MsgType{MsgData, MsgInvAck, MsgFetchResp, MsgBackInvalD, MsgMemResp}
	for _, m := range resp {
		if !m.isResponse() {
			t.Fatalf("%s must be a response", m)
		}
	}
	data := []MsgType{MsgData, MsgPutM, MsgFetchResp, MsgMemWrite, MsgMemResp}
	for _, m := range data {
		if !m.carriesData() {
			t.Fatalf("%s must carry a block", m)
		}
	}
	p := PacketFor(network.NewPool(), &Msg{Type: MsgData}, 1, 2)
	if p.Size <= 16 {
		t.Fatal("data message packet must include block payload")
	}
}

// twoL1Harness exercises coherence between two cores.
type twoL1Harness struct {
	l1s [2]*L1
	l2  *L2Bank
	mem []memOp
	cyc uint64
}

func newTwoL1(t *testing.T) *twoL1Harness {
	h := &twoL1Harness{}
	send := func(dst int, m *Msg) bool {
		switch dst {
		case 0, 1:
			return h.l1s[dst].Deliver(m, 0)
		case 100:
			return h.l2.Deliver(m, 0)
		}
		t.Fatalf("message to unknown node %d", dst)
		return false
	}
	memPort := func(block mem.PAddr, write bool, done func(uint64)) bool {
		h.mem = append(h.mem, memOp{block, write, done})
		return true
	}
	cfg1 := DefaultL1Config()
	cfg1.SizeBytes = 1 << 10
	cfg2 := DefaultL2Config()
	cfg2.BankSizeBytes = 4 << 10
	cfg2.Ways = 4
	h.l1s[0] = NewL1(0, cfg1, send, func(mem.PAddr) int { return 100 }, nil)
	h.l1s[1] = NewL1(1, cfg1, send, func(mem.PAddr) int { return 100 }, nil)
	h.l2 = NewL2Bank(100, cfg2, send, memPort, nil)
	return h
}

func (h *twoL1Harness) settle(n int) {
	for i := 0; i < n; i++ {
		h.cyc++
		for len(h.mem) > 0 {
			op := h.mem[0]
			h.mem = h.mem[1:]
			op.done(h.cyc)
		}
		h.l2.Tick(h.cyc)
		h.l1s[0].Tick(h.cyc)
		h.l1s[1].Tick(h.cyc)
	}
}

func TestWriteInvalidatesSharer(t *testing.T) {
	h := newTwoL1(t)
	done := 0
	// Core 0 reads (becomes E owner), core 1 reads (both S), core 1 writes
	// (invalidates core 0).
	h.l1s[0].Access(0x5000, false, 0, func(uint64) { done++ })
	h.settle(100)
	h.l1s[1].Access(0x5000, false, h.cyc, func(uint64) { done++ })
	h.settle(100)
	if h.l2.Stats.Fetches == 0 {
		t.Fatal("reading an owned line must fetch from the owner")
	}
	h.l1s[1].Access(0x5000, true, h.cyc, func(uint64) { done++ })
	h.settle(200)
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	if h.l2.Stats.Invals == 0 {
		t.Fatal("write must invalidate the other sharer")
	}
	// Core 0's next read misses (it was invalidated).
	before := h.l1s[0].Stats.L1Misses
	h.l1s[0].Access(0x5000, false, h.cyc, func(uint64) { done++ })
	h.settle(200)
	if h.l1s[0].Stats.L1Misses != before+1 {
		t.Fatal("stale copy survived invalidation")
	}
}

func TestOwnershipMigration(t *testing.T) {
	h := newTwoL1(t)
	done := 0
	h.l1s[0].Access(0x6000, true, 0, func(uint64) { done++ }) // core 0 owns M
	h.settle(100)
	h.l1s[1].Access(0x6000, true, h.cyc, func(uint64) { done++ }) // migrate to core 1
	h.settle(200)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if h.l2.Stats.Fetches == 0 {
		t.Fatal("ownership migration must fetch-invalidate the old owner")
	}
	// Core 1 now hits.
	h.l1s[1].Access(0x6000, true, h.cyc, func(uint64) { done++ })
	h.settle(100)
	if h.l1s[1].Stats.L1Hits == 0 {
		t.Fatal("new owner must hit")
	}
}
