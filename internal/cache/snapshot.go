package cache

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Checkpoint support. Both cache levels snapshot only at system quiescence
// (Busy() false): no MSHRs, transactions, queued messages, deferred memory
// ops or timed events — so the surviving state is the line/directory
// arrays, the LRU clocks and the counters. MSHR and transaction free lists
// are rebuilt structurally fresh on restore (pool identity never affects
// simulated behavior; see DESIGN.md "Checkpointing").

func encCacheStats(e *sim.Enc, s *Stats) {
	for _, v := range []uint64{s.L1Accesses, s.L1Hits, s.L1Misses, s.L1Evictions,
		s.L2Accesses, s.L2Hits, s.L2Misses, s.L2Evictions, s.Invals, s.Fetches,
		s.BackInvalQ, s.BackInvalHit, s.MemReads, s.MemWrites} {
		e.U64(v)
	}
}

func decCacheStats(d *sim.Dec, s *Stats) {
	for _, p := range []*uint64{&s.L1Accesses, &s.L1Hits, &s.L1Misses, &s.L1Evictions,
		&s.L2Accesses, &s.L2Hits, &s.L2Misses, &s.L2Evictions, &s.Invals, &s.Fetches,
		&s.BackInvalQ, &s.BackInvalHit, &s.MemReads, &s.MemWrites} {
		*p = d.U64()
	}
}

// Snapshot implements sim.Snapshotter for a quiescent L1.
func (l *L1) Snapshot(e *sim.Enc) {
	e.Tag("l1")
	e.Int(l.ID)
	e.U64(l.lruTick)
	e.Int(l.sets)
	e.Int(l.cfg.Ways)
	for _, set := range l.lines {
		for i := range set {
			e.U64(uint64(set[i].tag))
			e.U32(uint32(set[i].state))
			e.U64(set[i].lru)
		}
	}
	encCacheStats(e, &l.Stats)
}

// Restore implements sim.Snapshotter for a freshly constructed L1.
func (l *L1) Restore(d *sim.Dec) {
	d.Tag("l1")
	if id := d.Int(); d.Err() == nil && id != l.ID {
		d.Fail("l1 id mismatch: snapshot %d, machine %d", id, l.ID)
	}
	l.lruTick = d.U64()
	sets, ways := d.Int(), d.Int()
	if d.Err() != nil {
		return
	}
	if sets != l.sets || ways != l.cfg.Ways {
		d.Fail("l1 geometry mismatch: snapshot %dx%d, machine %dx%d", sets, ways, l.sets, l.cfg.Ways)
		return
	}
	for _, set := range l.lines {
		for i := range set {
			set[i].tag = mem.PAddr(d.U64())
			set[i].state = lineState(d.U32())
			set[i].lru = d.U64()
		}
	}
	decCacheStats(d, &l.Stats)
}

// Snapshot implements sim.Snapshotter for a quiescent L2 bank.
func (b *L2Bank) Snapshot(e *sim.Enc) {
	e.Tag("l2")
	e.Int(b.ID)
	e.U64(b.lruTk)
	e.Int(b.sets)
	e.Int(b.cfg.Ways)
	for _, set := range b.lines {
		for i := range set {
			ln := &set[i]
			e.U64(uint64(ln.tag))
			e.Bool(ln.valid)
			e.Bool(ln.dirty)
			e.U64(ln.sharers)
			e.Int(ln.owner)
			e.U64(ln.lru)
		}
	}
	encCacheStats(e, &b.Stats)
}

// Restore implements sim.Snapshotter for a freshly constructed L2 bank.
func (b *L2Bank) Restore(d *sim.Dec) {
	d.Tag("l2")
	if id := d.Int(); d.Err() == nil && id != b.ID {
		d.Fail("l2 id mismatch: snapshot %d, machine %d", id, b.ID)
	}
	b.lruTk = d.U64()
	sets, ways := d.Int(), d.Int()
	if d.Err() != nil {
		return
	}
	if sets != b.sets || ways != b.cfg.Ways {
		d.Fail("l2 geometry mismatch: snapshot %dx%d, machine %dx%d", sets, ways, b.sets, b.cfg.Ways)
		return
	}
	for _, set := range b.lines {
		for i := range set {
			ln := &set[i]
			ln.tag = mem.PAddr(d.U64())
			ln.valid = d.Bool()
			ln.dirty = d.Bool()
			ln.sharers = d.U64()
			ln.owner = d.Int()
			ln.lru = d.U64()
		}
	}
	decCacheStats(d, &b.Stats)
}
