package cache

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// L2Config sizes one S-NUCA L2 bank (Table 4.1: 16 MB, 16-way over 16
// banks). Experiments scale SizeBytes together with workload inputs.
type L2Config struct {
	BankSizeBytes int
	Ways          int
	HitLat        uint64
	InQDepth      int
	MaxTxns       int
}

// DefaultL2Config returns the Table 4.1 L2 bank (1 MB per bank).
func DefaultL2Config() L2Config {
	return L2Config{BankSizeBytes: 1 << 20, Ways: 16, HitLat: 12, InQDepth: 16, MaxTxns: 16}
}

// l2Line is a cache line plus its directory entry.
type l2Line struct {
	tag     mem.PAddr
	valid   bool
	dirty   bool
	sharers uint64 // bitmask over cores
	owner   int    // exclusive owner core, -1 if none
	lru     uint64
}

func (ln *l2Line) cached() bool { return ln.sharers != 0 || ln.owner >= 0 }

// txnKind discriminates directory transactions.
type txnKind uint8

const (
	txGetS txnKind = iota
	txGetX
	txBackInval
)

// txn is one in-flight directory transaction; one per block at a time,
// later requests for the block queue behind it.
type txn struct {
	kind      txnKind
	block     mem.PAddr
	requester int
	waitAcks  int
	waitFetch bool
	needFill  bool
	filled    bool
	dirtyIn   bool
	excl      bool // grant pending as exclusive (E/M)
	queued    []*Msg
	memTag    uint64
}

// l2EventKind discriminates the bank's timed events; a typed event record
// replaces the historical per-transaction closure.
type l2EventKind uint8

const (
	evGrant     l2EventKind = iota // directory latency elapsed: send MsgData, finish
	evBackInval                    // back-inval lookup latency elapsed: ack, finish
	evInstall                      // retry installing a fetched block
)

// l2Event is one pending timed action on a transaction.
type l2Event struct {
	at   uint64
	kind l2EventKind
	t    *txn
}

// MemPort is the bank's path to main memory (wired by the system to an MC
// tile hub over the NoC or directly to a DRAM channel).
type MemPort func(block mem.PAddr, write bool, done func(cycle uint64)) bool

// L2Bank is one bank of the shared S-NUCA L2 with an inclusive MESI
// directory.
type L2Bank struct {
	ID   int // bank id == tile id
	cfg  L2Config
	sets int

	lines [][]l2Line
	lruTk uint64

	busy    map[mem.PAddr]*txn
	txnFree []*txn // recycled transactions (queued arrays retained)
	send    Sender
	mem     MemPort
	pool    *MsgPool

	inQ        sim.FIFO[*Msg]
	outbox     sim.FIFO[outMsg]
	calls      []l2Event
	callsSpare []l2Event
	memQ       []func() bool // deferred memory ops awaiting port space

	// waker invalidates the engine's cached idle hint on external input
	// (Deliver) and on work queued from memory completion callbacks
	// (after/post/memAccess run inside those callbacks too).
	waker *sim.Waker

	Stats Stats
}

// NewL2Bank builds bank id. send posts NoC messages; memPort accesses main
// memory; pool is the machine's shared coherence-message free list.
func NewL2Bank(id int, cfg L2Config, send Sender, memPort MemPort, pool *MsgPool) *L2Bank {
	sets := cfg.BankSizeBytes / mem.BlockSize / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: L2 set count %d must be a positive power of two", sets))
	}
	if pool == nil {
		pool = NewMsgPool()
	}
	b := &L2Bank{
		ID:    id,
		cfg:   cfg,
		sets:  sets,
		lines: make([][]l2Line, sets),
		busy:  make(map[mem.PAddr]*txn),
		send:  send,
		mem:   memPort,
		pool:  pool,
	}
	for i := range b.lines {
		b.lines[i] = make([]l2Line, cfg.Ways)
		for j := range b.lines[i] {
			b.lines[i][j].owner = -1
		}
	}
	return b
}

// SetWaker implements sim.WakeSetter.
func (b *L2Bank) SetWaker(w *sim.Waker) { b.waker = w }

// BankOf maps a block to its home bank among nbanks (S-NUCA block
// interleave).
func BankOf(block mem.PAddr, nbanks int) int {
	return int(uint64(block)>>6) % nbanks
}

func (b *L2Bank) setOf(block mem.PAddr) int {
	return int(uint64(block)>>6) & (b.sets - 1)
}

func (b *L2Bank) find(block mem.PAddr) *l2Line {
	set := b.lines[b.setOf(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// Busy reports in-flight work.
func (b *L2Bank) Busy() bool {
	return len(b.busy) > 0 || b.inQ.Len() > 0 || b.outbox.Len() > 0 ||
		len(b.calls) > 0 || len(b.memQ) > 0
}

// Deliver accepts a NoC message; false refuses it.
func (b *L2Bank) Deliver(m *Msg, cycle uint64) bool {
	if b.inQ.Len() >= b.cfg.InQDepth {
		return false
	}
	b.inQ.Push(m)
	b.waker.Wake()
	return true
}

// NextWork implements sim.Idler: the bank needs its Tick only while it has
// queued sends, deferred memory ops, timed completions or delivered
// messages. Transactions blocked on acks/fetches/fills advance through
// Deliver and memory callbacks, not through Tick.
func (b *L2Bank) NextWork(now uint64) uint64 {
	if b.outbox.Len() > 0 || len(b.memQ) > 0 || len(b.calls) > 0 || b.inQ.Len() > 0 {
		return now
	}
	return never
}

// Tick processes queued messages, retries sends and fires completions.
//
//ar:hotpath
func (b *L2Bank) Tick(cycle uint64) {
	for b.outbox.Len() > 0 {
		o := b.outbox.Peek()
		if !b.send(o.dst, o.m) {
			break
		}
		b.outbox.Pop()
	}
	if len(b.memQ) > 0 {
		kept := b.memQ[:0]
		for _, f := range b.memQ {
			if !f() {
				kept = append(kept, f) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			}
		}
		b.memQ = kept
	}
	if len(b.calls) > 0 {
		due := b.calls
		b.calls = b.callsSpare[:0]
		for _, c := range due {
			if c.at <= cycle {
				b.fire(c, cycle)
			} else {
				b.calls = append(b.calls, c) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			}
		}
		b.callsSpare = due[:0]
	}
	for n := 0; n < 4 && b.inQ.Len() > 0; n++ {
		b.handle(b.inQ.Pop(), cycle)
	}
}

func (b *L2Bank) post(dst int, m *Msg) {
	m.From = b.ID
	if !b.send(dst, m) {
		b.outbox.Push(outMsg{dst: dst, m: m})
		b.waker.Wake()
	}
}

func (b *L2Bank) after(at uint64, kind l2EventKind, t *txn) {
	b.calls = append(b.calls, l2Event{at: at, kind: kind, t: t}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	b.waker.Wake()
}

// fire executes one due event. Transaction fields are read before finish()
// recycles the record.
func (b *L2Bank) fire(ev l2Event, now uint64) {
	t := ev.t
	switch ev.kind {
	case evGrant:
		d := b.pool.Get(MsgData, t.block, b.ID)
		d.Excl = t.excl
		b.post(t.requester, d)
		b.finish(t, now)
	case evBackInval:
		requester, block, memTag := t.requester, t.block, t.memTag
		b.finish(t, now)
		d := b.pool.Get(MsgBackInvalD, block, b.ID)
		d.Tag = memTag
		b.post(requester, d)
	case evInstall:
		b.install(t, now)
	}
}

func (b *L2Bank) memAccess(block mem.PAddr, write bool, done func(uint64)) {
	try := func() bool { return b.mem(block, write, done) } //ar:exempt(hotpath) miss path: one closure per memory access, off the hit path
	if !try() {
		b.memQ = append(b.memQ, try) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
		b.waker.Wake()
	}
}

// handle consumes one delivered message and releases it back to the pool,
// except requests that queue behind a busy transaction — those stay owned
// by the transaction and are consumed when finish() replays them.
func (b *L2Bank) handle(m *Msg, cycle uint64) {
	switch m.Type {
	case MsgGetS, MsgGetX, MsgBackInvalQ:
		if t, ok := b.busy[m.Block]; ok {
			t.queued = append(t.queued, m) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
			return
		}
		b.start(m, cycle)
	case MsgPutM:
		b.Stats.L2Accesses++
		if line := b.find(m.Block); line != nil {
			line.dirty = true
			if line.owner == m.From {
				line.owner = -1
			}
		} else {
			// Already victimized: write straight through to memory.
			b.memAccess(m.Block, true, func(uint64) {}) //ar:exempt(hotpath) capture-free func literal is a static value, not a heap allocation
			b.Stats.MemWrites++
		}
	case MsgInvAck:
		if t, ok := b.busy[m.Block]; ok && t.waitAcks > 0 {
			t.waitAcks--
			b.advance(t, cycle)
		}
	case MsgFetchResp:
		if t, ok := b.busy[m.Block]; ok && t.waitFetch {
			t.waitFetch = false
			t.dirtyIn = t.dirtyIn || m.Dirty
			b.advance(t, cycle)
		}
	default:
		panic(fmt.Sprintf("cache: L2 bank %d cannot handle %s", b.ID, m.Type))
	}
	b.pool.Put(m)
}

// getTxn returns a recycled (or fresh) transaction with retained queued
// capacity.
func (b *L2Bank) getTxn() *txn {
	if n := len(b.txnFree); n > 0 {
		t := b.txnFree[n-1]
		b.txnFree = b.txnFree[:n-1]
		return t
	}
	return &txn{} //ar:exempt(hotpath) pool slow path: allocates only when the free list is empty, cold after warm-up
}

// start opens a directory transaction for a request message. The message
// itself is fully consumed here (the caller releases it on return).
func (b *L2Bank) start(m *Msg, cycle uint64) {
	b.Stats.L2Accesses++
	t := b.getTxn()
	t.block, t.requester = m.Block, m.From
	switch m.Type {
	case MsgGetS:
		t.kind = txGetS
	case MsgGetX:
		t.kind = txGetX
	case MsgBackInvalQ:
		t.kind = txBackInval
		t.memTag = m.Tag
		b.Stats.BackInvalQ++
	}
	b.busy[m.Block] = t

	line := b.find(m.Block)
	if t.kind == txBackInval {
		if line == nil || !line.cached() {
			// The common case (§3.4.2): nothing cached on chip, the
			// offload proceeds after the directory lookup latency.
			if line != nil && line.dirty {
				// The block itself is dirty in L2: flush it so near-data
				// processing observes fresh memory.
				line.valid = false
				b.Stats.MemWrites++
				b.memAccess(m.Block, true, func(uint64) {}) //ar:exempt(hotpath) capture-free func literal is a static value, not a heap allocation
			} else if line != nil {
				line.valid = false
			}
			b.after(cycle+b.cfg.HitLat, evBackInval, t)
			return
		}
		b.Stats.BackInvalHit++
		b.collectExclusive(t, line, -1)
		return
	}

	if line == nil {
		b.Stats.L2Misses++
		t.needFill = true
		b.fill(t, cycle)
		return
	}
	b.Stats.L2Hits++
	if t.kind == txGetS {
		if line.owner >= 0 && line.owner != t.requester {
			t.waitFetch = true
			b.Stats.Fetches++
			b.post(line.owner, b.pool.Get(MsgFetch, t.block, b.ID))
			// The owner downgrades to S and becomes a plain sharer.
			line.sharers |= 1 << uint(line.owner)
			line.owner = -1
			return
		}
		b.grantS(t, line, cycle)
		return
	}
	// GetX on a present line: collect exclusivity.
	b.collectExclusive(t, line, t.requester)
	if t.waitAcks == 0 && !t.waitFetch {
		b.grantX(t, line, cycle)
	}
}

// collectExclusive invalidates every cached copy except keep (-1 to purge
// all), arming the transaction's ack/fetch counters.
func (b *L2Bank) collectExclusive(t *txn, line *l2Line, keep int) {
	for c := 0; c < 64; c++ {
		if line.sharers&(1<<uint(c)) == 0 || c == keep {
			continue
		}
		t.waitAcks++
		b.Stats.Invals++
		b.post(c, b.pool.Get(MsgInval, t.block, b.ID))
	}
	line.sharers &= 1 << uint(max(keep, 0))
	if keep < 0 {
		line.sharers = 0
	}
	if line.owner >= 0 && line.owner != keep {
		t.waitFetch = true
		b.Stats.Fetches++
		b.post(line.owner, b.pool.Get(MsgFetchInv, t.block, b.ID))
		line.owner = -1
	}
}

// advance re-checks a transaction blocked on acks/fetches/fills.
func (b *L2Bank) advance(t *txn, cycle uint64) {
	if t.waitAcks > 0 || t.waitFetch {
		return
	}
	if t.needFill && !t.filled {
		return
	}
	line := b.find(t.block)
	switch t.kind {
	case txGetS:
		if line == nil {
			panic("cache: GetS transaction lost its line")
		}
		if t.dirtyIn {
			line.dirty = true
		}
		b.grantS(t, line, cycle)
	case txGetX:
		if line == nil {
			panic("cache: GetX transaction lost its line")
		}
		if t.dirtyIn {
			line.dirty = true
		}
		b.grantX(t, line, cycle)
	case txBackInval:
		dirty := t.dirtyIn
		if line != nil {
			dirty = dirty || line.dirty
			line.valid = false
		}
		if dirty {
			b.Stats.MemWrites++
			b.memAccess(t.block, true, func(uint64) {}) //ar:exempt(hotpath) capture-free func literal is a static value, not a heap allocation
		}
		b.fire(l2Event{kind: evBackInval, t: t}, cycle)
	}
}

// fill requests the block from memory and installs it, evicting a victim.
func (b *L2Bank) fill(t *txn, cycle uint64) {
	b.Stats.MemReads++
	b.memAccess(t.block, false, func(now uint64) { b.install(t, now) }) //ar:exempt(hotpath) miss path: one closure per memory access, off the hit path
}

// install places the fetched block, retrying next cycle when every way of
// the set is held by an in-flight transaction (victimizing a busy line
// would strand its transaction).
func (b *L2Bank) install(t *txn, now uint64) {
	line := b.installVictim(t.block)
	if line == nil {
		b.after(now+1, evInstall, t)
		return
	}
	line.tag = t.block
	line.valid = true
	line.dirty = false
	line.sharers = 0
	line.owner = -1
	t.filled = true
	b.advance(t, now)
}

// installVictim frees a way for a new block (inclusive back-invalidation of
// L1 copies, dirty writeback to memory). It returns nil when every way is
// held by an in-flight transaction.
func (b *L2Bank) installVictim(block mem.PAddr) *l2Line {
	set := b.lines[b.setOf(block)]
	var v *l2Line
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			return ln
		}
		if _, busy := b.busy[ln.tag]; busy {
			continue
		}
		if v == nil || ln.lru < v.lru {
			v = ln
		}
	}
	if v == nil {
		return nil // every way busy: caller retries
	}
	b.Stats.L2Evictions++
	for c := 0; c < 64; c++ {
		if v.sharers&(1<<uint(c)) != 0 {
			b.Stats.Invals++
			b.post(c, b.pool.Get(MsgInval, v.tag, b.ID))
		}
	}
	if v.owner >= 0 {
		b.Stats.Invals++
		b.post(v.owner, b.pool.Get(MsgFetchInv, v.tag, b.ID))
	}
	if v.dirty || v.owner >= 0 {
		b.Stats.MemWrites++
		b.memAccess(v.tag, true, func(uint64) {}) //ar:exempt(hotpath) capture-free func literal is a static value, not a heap allocation
	}
	v.valid = false
	v.sharers = 0
	v.owner = -1
	return v
}

// grantS completes a read: requester becomes a sharer (or the exclusive
// owner when it is alone, the E optimization of MESI).
func (b *L2Bank) grantS(t *txn, line *l2Line, cycle uint64) {
	b.lruTk++
	line.lru = b.lruTk
	excl := (line.sharers == 0 && line.owner < 0) || line.owner == t.requester
	if excl {
		line.owner = t.requester
	} else {
		line.sharers |= 1 << uint(t.requester)
	}
	t.excl = excl
	b.after(cycle+b.cfg.HitLat, evGrant, t)
}

// grantX completes a write: requester becomes the sole owner.
func (b *L2Bank) grantX(t *txn, line *l2Line, cycle uint64) {
	b.lruTk++
	line.lru = b.lruTk
	line.sharers = 0
	line.owner = t.requester
	t.excl = true
	b.after(cycle+b.cfg.HitLat, evGrant, t)
}

// finish closes the transaction, replays requests that queued behind it,
// and recycles the transaction record.
func (b *L2Bank) finish(t *txn, cycle uint64) {
	delete(b.busy, t.block)
	for i, q := range t.queued {
		t.queued[i] = nil
		b.handle(q, cycle)
	}
	*t = txn{queued: t.queued[:0]}
	b.txnFree = append(b.txnFree, t) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
}

// Busy2 exposes in-flight transaction blocks (debug tooling), sorted so
// the output is stable across runs.
func (b *L2Bank) Busy2() []mem.PAddr {
	out := make([]mem.PAddr, 0, len(b.busy))
	//ar:exempt(determinism) key collection only; the slice is sorted before it leaves
	for k := range b.busy {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
