// Package cache implements the host cache hierarchy of Table 4.1: private
// L1 data caches, a shared S-NUCA L2 distributed over the 4×4 mesh, and a
// directory-based MESI protocol, including the back-invalidation query path
// that Active-Routing offloads take before entering the memory network
// (§3.4.2).
//
// The protocol is a timing model: coherence state transitions, message
// traffic, queueing and latencies are simulated, but data values live in
// the functional backing store (internal/mem), which is written at
// instruction commit. That separation keeps in-network reductions
// numerically checkable without modeling data payload movement twice.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/network"
)

// MsgType enumerates coherence and memory-interface messages tunneled over
// the NoC.
type MsgType uint8

// Message types.
const (
	MsgGetS       MsgType = iota // L1 -> L2: read miss
	MsgGetX                      // L1 -> L2: write miss / upgrade
	MsgPutM                      // L1 -> L2: dirty eviction writeback
	MsgData                      // L2 -> L1: fill (Excl marks E grant)
	MsgInval                     // L2 -> L1: invalidate
	MsgInvAck                    // L1 -> L2: invalidation acknowledgement
	MsgFetch                     // L2 -> owner L1: downgrade to S and return data
	MsgFetchInv                  // L2 -> owner L1: invalidate and return data
	MsgFetchResp                 // owner L1 -> L2
	MsgBackInvalQ                // MI -> L2: Active-Routing offload coherence query
	MsgBackInvalD                // L2 -> MI: query done, offload may proceed
	MsgMemRead                   // L2 -> MC tile: fetch block from memory
	MsgMemWrite                  // L2 -> MC tile: write block to memory
	MsgMemResp                   // MC tile -> L2
)

// String returns the message mnemonic.
func (t MsgType) String() string {
	names := [...]string{"GetS", "GetX", "PutM", "Data", "Inval", "InvAck",
		"Fetch", "FetchInv", "FetchResp", "BackInvalQ", "BackInvalD",
		"MemRead", "MemWrite", "MemResp"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// isResponse reports whether the message travels in the NoC response class.
func (t MsgType) isResponse() bool {
	switch t {
	case MsgData, MsgInvAck, MsgFetchResp, MsgBackInvalD, MsgMemResp:
		return true
	}
	return false
}

// carriesData reports whether the message carries a 64-byte block payload.
func (t MsgType) carriesData() bool {
	switch t {
	case MsgData, MsgPutM, MsgFetchResp, MsgMemWrite, MsgMemResp:
		return true
	}
	return false
}

// Msg is one coherence/memory message.
type Msg struct {
	Type  MsgType
	Block mem.PAddr // block-aligned address
	From  int       // component id of sender (core id or bank id)
	Tag   uint64
	Excl  bool // MsgData: exclusive (E) grant
	Dirty bool // MsgFetchResp/MsgPutM: block was modified

	// poolFree marks a message sitting in a MsgPool free list (double
	// release guard); zero for messages built outside any pool.
	poolFree bool
}

// MsgPool is a free list for coherence messages, shared by every NoC
// component of one machine (caches, message interfaces, MC ports, tile
// hubs). Ownership follows the same contract as network.Pool: a Sender call
// returning true transfers the message to the receiver, which releases it
// at its single point of final consumption (the cache handle() commit, the
// tile hub's terminal demux cases). A Sender returning false leaves the
// message with the caller, which retries. The simulator is single-threaded
// within one machine, so no locking.
type MsgPool struct {
	free []*Msg
}

// NewMsgPool returns an empty message pool.
func NewMsgPool() *MsgPool { return &MsgPool{} }

// Get returns a zeroed message with the given header fields, reusing a
// released message when one is available.
//
//ar:hotpath
func (pl *MsgPool) Get(t MsgType, block mem.PAddr, from int) *Msg {
	var m *Msg
	if n := len(pl.free); n > 0 {
		m = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*m = Msg{}
	} else {
		m = &Msg{} //ar:exempt(hotpath) pool slow path: allocates only when the free list is empty, cold after warm-up
	}
	m.Type, m.Block, m.From = t, block, from
	return m
}

// Put releases a message back to the free list; releasing one that is
// already free panics (lifecycle bug).
//
//ar:hotpath
func (pl *MsgPool) Put(m *Msg) {
	if m.poolFree {
		panic(fmt.Sprintf("cache: double release of message %s block %#x", m.Type, uint64(m.Block)))
	}
	m.poolFree = true
	pl.free = append(pl.free, m) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
}

// Sender injects coherence messages into the NoC; the system package wires
// it to the mesh fabric. It reports false on injection backpressure.
type Sender func(dstTile int, m *Msg) bool

// PacketFor wraps m into a NoC packet from srcTile to dstTile with the
// correct traffic class and wire size, acquired from the fabric's pool.
//
//ar:hotpath
func PacketFor(pool *network.Pool, m *Msg, srcTile, dstTile int) *network.Packet {
	kind := network.HostMsg
	if m.Type.isResponse() {
		kind = network.HostMsgResp
	}
	p := pool.Get(kind, srcTile, dstTile)
	if m.Type.carriesData() {
		p.Size = network.HeaderBytes + mem.BlockSize
	}
	p.Meta = m
	return p
}

// Stats aggregates hierarchy counters for the power model and tests.
type Stats struct {
	L1Accesses   uint64
	L1Hits       uint64
	L1Misses     uint64
	L1Evictions  uint64
	L2Accesses   uint64
	L2Hits       uint64
	L2Misses     uint64
	L2Evictions  uint64
	Invals       uint64
	Fetches      uint64
	BackInvalQ   uint64
	BackInvalHit uint64
	MemReads     uint64
	MemWrites    uint64
}

// Merge adds other into s.
func (s *Stats) Merge(o Stats) {
	s.L1Accesses += o.L1Accesses
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L1Evictions += o.L1Evictions
	s.L2Accesses += o.L2Accesses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.L2Evictions += o.L2Evictions
	s.Invals += o.Invals
	s.Fetches += o.Fetches
	s.BackInvalQ += o.BackInvalQ
	s.BackInvalHit += o.BackInvalHit
	s.MemReads += o.MemReads
	s.MemWrites += o.MemWrites
}
