package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// PortPolicy selects the memory-access port (HMC controller) that roots a
// flow's tree, distinguishing the three Active-Routing schemes of §5.1.
type PortPolicy int

// Port selection policies.
const (
	// PolicyStatic sends every flow through port 0 (the ART scheme).
	PolicyStatic PortPolicy = iota
	// PolicyThreadID interleaves ports by thread id (ARF-tid).
	PolicyThreadID
	// PolicyAddress picks the port nearest the first operand's cube
	// (ARF-addr).
	PolicyAddress
	// PolicyEnergyAware picks the port minimizing the summed hop count to
	// both operand cubes — the §6 "energy-aware scheduling" future-work
	// extension, trading tree balance for network energy.
	PolicyEnergyAware
)

// String names the policy.
func (p PortPolicy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyThreadID:
		return "tid"
	case PolicyAddress:
		return "addr"
	case PolicyEnergyAware:
		return "energy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Port is one memory access port: an HMC controller edge node on the memory
// network. The hmc package implements it.
type Port interface {
	// Node is the controller's network node id.
	Node() int
	// EntryNode is the attached cube's network node id (the tree root).
	EntryNode() int
	// GroupOf maps a cube id to the port index responsible for its group
	// (used by PolicyAddress).
	Inject(p *network.Packet) bool
}

// UpdateCmd is an offloaded Update instruction after MI translation: all
// addresses are physical (§3.4.1 — offloads translate like normal
// loads/stores).
type UpdateCmd struct {
	ThreadID int
	Op       isa.ALUOp
	Src1     mem.PAddr
	Src2     mem.PAddr // 0 for single-operand ops
	Target   mem.PAddr
	Imm      float64 // OpConstAssign immediate
	// Count vectorizes the update over consecutive words (§6 granularity
	// extension); 0/1 = scalar.
	Count int
}

// GatherCmd is an offloaded Gather instruction. Wake is invoked once when
// the flow's reduction has been written back (the thread barrier of
// Gather(target, num_threads) releases).
type GatherCmd struct {
	ThreadID int
	Target   mem.PAddr
	Threads  int
	Wake     func(cycle uint64)
}

// coordFlow is the runtime's view of one flow across the forest.
type coordFlow struct {
	op          isa.ALUOp
	target      mem.PAddr
	trees       []bool // per-port: has this port rooted a tree?
	gathersSeen int
	threads     int
	gatherSent  bool
	pendingTree int
	partial     float64
	wake        []func(cycle uint64)
	finalTag    uint64
}

// CoordStats counts coordinator activity.
type CoordStats struct {
	Updates        uint64
	Gathers        uint64
	ActiveStores   uint64
	FlowsComplete  uint64
	PortStalls     uint64 // cycles a port queue head could not inject
	EnqueueRejects uint64
}

// Coordinator is the Active-Routing runtime at the host's HMC controllers:
// it picks a port per flow (the scheme policy), keeps per-port FIFO command
// queues (so Gather packets can never overtake the Updates of their flow),
// implements the Gather thread barrier, combines the partial results of the
// up-to-four trees of a forest, and writes each flow's final value to its
// target address.
type Coordinator struct {
	policy   PortPolicy
	geom     mem.HMCGeometry
	ports    []Port
	store    *mem.Store
	pool     *network.Pool // packet free list of the memory-network fabric
	queues   []sim.FIFO[*network.Packet]
	queueCap int

	flows       map[mem.PAddr]*coordFlow
	pendingAcks map[uint64]*coordFlow // final write-back acks; nil value = plain active store
	nextTag     uint64

	// dist reports hop count from a port's entry cube to a cube
	// (PolicyEnergyAware); nil falls back to the address policy.
	dist func(port, cube int) int

	// waker invalidates the engine's cached idle hint on external input
	// (Enqueue* from the MIs, controller response callbacks).
	waker *sim.Waker

	Stats CoordStats
}

// NewCoordinator builds the runtime over the given ports. pool is the
// packet free list of the fabric the ports inject into (nil allocates a
// private pool, for tests).
func NewCoordinator(policy PortPolicy, geom mem.HMCGeometry, ports []Port, store *mem.Store, pool *network.Pool, queueCap int) *Coordinator {
	if queueCap <= 0 {
		queueCap = 32
	}
	if pool == nil {
		pool = network.NewPool()
	}
	return &Coordinator{
		policy:      policy,
		geom:        geom,
		ports:       ports,
		store:       store,
		pool:        pool,
		queues:      make([]sim.FIFO[*network.Packet], len(ports)),
		queueCap:    queueCap,
		flows:       make(map[mem.PAddr]*coordFlow),
		pendingAcks: make(map[uint64]*coordFlow),
	}
}

// SetWaker implements sim.WakeSetter.
func (c *Coordinator) SetWaker(w *sim.Waker) { c.waker = w }

// portFor applies the scheme's port selection policy.
func (c *Coordinator) portFor(cmd UpdateCmd) int {
	switch c.policy {
	case PolicyStatic:
		return 0
	case PolicyThreadID:
		return cmd.ThreadID % len(c.ports)
	case PolicyAddress:
		addr := cmd.Src1
		if addr == 0 {
			addr = cmd.Target
		}
		group := c.geom.CubeOf(addr) * len(c.ports) / c.geom.Cubes
		return group
	case PolicyEnergyAware:
		return c.energyPort(cmd)
	default:
		panic("core: unknown port policy")
	}
}

// SetDistanceFn installs the port-to-cube hop metric PolicyEnergyAware
// minimizes.
func (c *Coordinator) SetDistanceFn(dist func(port, cube int) int) { c.dist = dist }

// energyPort picks the port with the minimum summed hop distance to the
// operand cubes (ties break toward the lowest port id).
func (c *Coordinator) energyPort(cmd UpdateCmd) int {
	if c.dist == nil {
		addr := cmd.Src1
		if addr == 0 {
			addr = cmd.Target
		}
		return c.geom.CubeOf(addr) * len(c.ports) / c.geom.Cubes
	}
	best, bestCost := 0, int(^uint(0)>>1)
	for port := range c.ports {
		cost := 0
		if cmd.Src1 != 0 {
			cost += c.dist(port, c.geom.CubeOf(cmd.Src1))
		}
		if cmd.Src2 != 0 {
			cost += c.dist(port, c.geom.CubeOf(cmd.Src2))
		}
		if cost < bestCost {
			best, bestCost = port, cost
		}
	}
	return best
}

// flowFor returns (creating if needed) the runtime state for a target.
func (c *Coordinator) flowFor(target mem.PAddr, op isa.ALUOp) *coordFlow {
	f, ok := c.flows[target]
	if !ok {
		f = &coordFlow{
			op:      op,
			target:  target,
			trees:   make([]bool, len(c.ports)),
			partial: op.Identity(),
		}
		c.flows[target] = f
	}
	return f
}

// EnqueueUpdate accepts an Update command from a core's Message Interface;
// false means the chosen port queue is full and the MI must retry
// (offloading backpressure).
func (c *Coordinator) EnqueueUpdate(cmd UpdateCmd, cycle uint64) bool {
	port := c.portFor(cmd)
	if !cmd.Op.Reducing() {
		// Active stores travel through the port nearest their destination
		// cube, independent of the tree policy.
		_, port = c.activeStoreRoute(cmd)
	}
	if c.queues[port].Len() >= c.queueCap {
		c.Stats.EnqueueRejects++
		return false
	}
	var p *network.Packet
	if cmd.Op.Reducing() {
		f := c.flowFor(cmd.Target, cmd.Op)
		if f.op == isa.OpNop {
			// The flow was created by an early Gather from another
			// thread; adopt the reduction op now.
			f.op = cmd.Op
			f.partial = cmd.Op.Identity()
		}
		if f.gatherSent {
			panic(fmt.Sprintf("core: update for target %#x after its gather", uint64(cmd.Target)))
		}
		f.trees[port] = true
		p = c.pool.Get(network.UpdateReq, c.ports[port].Node(), c.ports[port].EntryNode())
		p.Flow = network.FlowKey{Flow: uint64(cmd.Target), Tree: uint8(port)}
		p.Op = cmd.Op
		p.Src1, p.Src2, p.Target = cmd.Src1, cmd.Src2, cmd.Target
		p.Count = cmd.Count
		c.Stats.Updates++
	} else {
		p = c.activeStorePacket(cmd, nil)
		c.Stats.ActiveStores++
	}
	p.InjectCycle = cycle
	c.queues[port].Push(p)
	c.waker.Wake()
	return true
}

// activeStoreRoute returns the destination cube and the nearest port for a
// mov/const_assign active store.
func (c *Coordinator) activeStoreRoute(cmd UpdateCmd) (dstCube, port int) {
	if cmd.Op == isa.OpMov {
		dstCube = c.geom.CubeOf(cmd.Src1)
	} else {
		dstCube = c.geom.CubeOf(cmd.Target)
	}
	return dstCube, dstCube * len(c.ports) / c.geom.Cubes
}

// activeStorePacket builds the mov/const_assign active-store packet; f is
// non-nil for flow final write-backs.
func (c *Coordinator) activeStorePacket(cmd UpdateCmd, f *coordFlow) *network.Packet {
	dstCube, port := c.activeStoreRoute(cmd)
	p := c.pool.Get(network.ActiveStoreReq, c.ports[port].Node(), c.nodeOfCube(port, dstCube))
	p.Op = cmd.Op
	p.Src1 = cmd.Src1
	p.Target = cmd.Target
	p.Value = cmd.Imm
	c.nextTag++
	p.Tag = c.nextTag
	c.pendingAcks[p.Tag] = f
	return p
}

// nodeOfCube: cube ids equal their network node ids in the memory network.
func (c *Coordinator) nodeOfCube(port, cube int) int { return cube }

// EnqueueGather accepts a Gather command. Commands are idempotent per
// thread; the flow completes (and wakes every waiter) after all
// cmd.Threads gathers arrive and the forest reduction finishes.
func (c *Coordinator) EnqueueGather(cmd GatherCmd, cycle uint64) bool {
	f := c.flowFor(cmd.Target, isa.OpNop)
	f.gathersSeen++
	f.threads = cmd.Threads
	if cmd.Wake != nil {
		f.wake = append(f.wake, cmd.Wake)
	}
	c.Stats.Gathers++
	if f.gathersSeen > f.threads {
		panic(fmt.Sprintf("core: %d gathers for target %#x with num_threads=%d",
			f.gathersSeen, uint64(cmd.Target), f.threads))
	}
	if f.gathersSeen == f.threads {
		c.releaseGather(f, cycle)
	}
	return true
}

// EnqueueGather wakes the coordinator only through releaseGather (the
// gather barrier itself queues nothing until the last thread arrives).

// releaseGather fires the gather wave: one GatherReq down each live tree,
// queued behind that port's pending updates (FIFO order is the correctness
// argument for tree teardown — see DESIGN.md).
func (c *Coordinator) releaseGather(f *coordFlow, cycle uint64) {
	f.gatherSent = true
	c.waker.Wake()
	for port, live := range f.trees {
		if !live {
			continue
		}
		p := c.pool.Get(network.GatherReq, c.ports[port].Node(), c.ports[port].EntryNode())
		p.Flow = network.FlowKey{Flow: uint64(f.target), Tree: uint8(port)}
		p.Op = f.op
		p.InjectCycle = cycle
		c.queues[port].Push(p)
		f.pendingTree++
	}
	if f.pendingTree == 0 {
		// A flow with zero updates (possible for empty loop bounds)
		// completes immediately.
		c.finalize(f, cycle)
	}
}

// OnGatherResp folds one tree's partial result (delivered at a controller).
// The packet is consumed by value — FoldGatherResp carries the scalars — so
// the sharded kernel can stage the call across the wave barrier without
// retaining the packet.
func (c *Coordinator) OnGatherResp(p *network.Packet, cycle uint64) {
	c.FoldGatherResp(mem.PAddr(p.Flow.Flow), p.Value, cycle)
}

// FoldGatherResp folds value into the flow's forest partial.
func (c *Coordinator) FoldGatherResp(flow mem.PAddr, value float64, cycle uint64) {
	f, ok := c.flows[flow]
	if !ok {
		panic(fmt.Sprintf("core: gather response for unknown flow %#x", uint64(flow)))
	}
	f.partial = f.op.Combine(f.partial, value)
	f.pendingTree--
	if f.pendingTree < 0 {
		panic("core: more tree responses than live trees")
	}
	if f.pendingTree == 0 {
		c.finalize(f, cycle)
	}
}

// finalize writes the reduction back: the target's prior value is the
// reduction's initial accumulator, and the final value travels to the
// target's home cube as an active store.
func (c *Coordinator) finalize(f *coordFlow, cycle uint64) {
	final := f.op.Combine(c.store.ReadF64(f.target), f.partial)
	cmd := UpdateCmd{Op: isa.OpConstAssign, Target: f.target, Imm: final}
	p := c.activeStorePacket(cmd, f)
	p.InjectCycle = cycle
	_, port := c.activeStoreRoute(cmd)
	c.queues[port].Push(p)
	c.waker.Wake()
}

// OnActiveAck completes an active store; for flow write-backs it releases
// the flow's thread barrier. As with OnGatherResp, the packet is consumed
// by value (CompleteActiveAck).
func (c *Coordinator) OnActiveAck(p *network.Packet, cycle uint64) {
	c.CompleteActiveAck(p.Tag, cycle)
}

// CompleteActiveAck completes the active store identified by tag.
func (c *Coordinator) CompleteActiveAck(tag uint64, cycle uint64) {
	f, ok := c.pendingAcks[tag]
	if !ok {
		panic(fmt.Sprintf("core: active-store ack with unknown tag %d", tag))
	}
	delete(c.pendingAcks, tag)
	if f == nil {
		return // plain mov/const store
	}
	for _, w := range f.wake {
		w(cycle)
	}
	delete(c.flows, f.target)
	c.Stats.FlowsComplete++
}

// NextWork implements sim.Idler: Tick only drains the per-port command
// queues; flow completions and acks arrive through the controller
// callbacks.
func (c *Coordinator) NextWork(now uint64) uint64 {
	for port := range c.queues {
		if c.queues[port].Len() > 0 {
			return now
		}
	}
	return sim.Never
}

// Tick drains the per-port command queues into the network.
//
//ar:hotpath
func (c *Coordinator) Tick(cycle uint64) {
	for port := range c.queues {
		for n := 0; n < 4 && c.queues[port].Len() > 0; n++ {
			if !c.ports[port].Inject(c.queues[port].Peek()) {
				c.Stats.PortStalls++
				break
			}
			c.queues[port].Pop()
		}
	}
}

// Busy reports whether any flow, queued command or outstanding ack remains.
func (c *Coordinator) Busy() bool {
	if len(c.flows) > 0 || len(c.pendingAcks) > 0 {
		return true
	}
	for port := range c.queues {
		if c.queues[port].Len() > 0 {
			return true
		}
	}
	return false
}

// LiveFlows reports the number of flows the runtime is tracking.
func (c *Coordinator) LiveFlows() int { return len(c.flows) }
