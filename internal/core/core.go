package core
