package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
)

// fakePort records injected packets.
type fakePort struct {
	index   int
	entry   int
	sent    []*network.Packet
	blocked bool
}

func (p *fakePort) Node() int      { return 16 + p.index }
func (p *fakePort) EntryNode() int { return p.entry }
func (p *fakePort) Inject(pkt *network.Packet) bool {
	if p.blocked {
		return false
	}
	p.sent = append(p.sent, pkt)
	return true
}

func newCoord(policy PortPolicy) (*Coordinator, []*fakePort, *mem.Store) {
	geom := mem.DefaultHMCGeometry()
	ports := make([]Port, 4)
	fakes := make([]*fakePort, 4)
	for i := range fakes {
		fakes[i] = &fakePort{index: i, entry: i * 4}
		ports[i] = fakes[i]
	}
	store := mem.NewStore()
	return NewCoordinator(policy, geom, ports, store, nil, 8), fakes, store
}

func addrOnCube(cube int) mem.PAddr { return mem.PAddr(cube * mem.PageSize) }

func TestPolicyStaticAlwaysPortZero(t *testing.T) {
	c, fakes, _ := newCoord(PolicyStatic)
	for tid := 0; tid < 8; tid++ {
		ok := c.EnqueueUpdate(UpdateCmd{
			ThreadID: tid, Op: isa.OpAdd,
			Src1: addrOnCube(tid), Target: addrOnCube(15) + 8,
		}, 0)
		if !ok {
			break // queue cap reached, fine
		}
	}
	c.Tick(1)
	c.Tick(2)
	for i := 1; i < 4; i++ {
		if len(fakes[i].sent) != 0 {
			t.Fatalf("static policy used port %d", i)
		}
	}
	if len(fakes[0].sent) == 0 {
		t.Fatal("static policy sent nothing through port 0")
	}
}

func TestPolicyThreadIDInterleaves(t *testing.T) {
	c, fakes, _ := newCoord(PolicyThreadID)
	for tid := 0; tid < 4; tid++ {
		c.EnqueueUpdate(UpdateCmd{
			ThreadID: tid, Op: isa.OpAdd,
			Src1: addrOnCube(0), Target: addrOnCube(15) + 8,
		}, 0)
	}
	c.Tick(1)
	for i := 0; i < 4; i++ {
		if len(fakes[i].sent) != 1 {
			t.Fatalf("port %d got %d updates, want 1", i, len(fakes[i].sent))
		}
	}
}

func TestPolicyAddressPicksOperandGroup(t *testing.T) {
	c, fakes, _ := newCoord(PolicyAddress)
	// Operand on cube 9 -> group 2 -> port 2.
	c.EnqueueUpdate(UpdateCmd{
		ThreadID: 0, Op: isa.OpAdd,
		Src1: addrOnCube(9), Target: addrOnCube(15) + 8,
	}, 0)
	c.Tick(1)
	if len(fakes[2].sent) != 1 {
		t.Fatalf("address policy did not use port 2: %v", []int{
			len(fakes[0].sent), len(fakes[1].sent), len(fakes[2].sent), len(fakes[3].sent)})
	}
}

func TestGatherBarrierWaitsForAllThreads(t *testing.T) {
	c, fakes, _ := newCoord(PolicyThreadID)
	target := addrOnCube(7)
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpAdd, Src1: addrOnCube(1), Target: target}, 0)
	c.EnqueueGather(GatherCmd{ThreadID: 0, Target: target, Threads: 2}, 0)
	c.Tick(1)
	for _, f := range fakes {
		for _, p := range f.sent {
			if p.Kind == network.GatherReq {
				t.Fatal("gather released before barrier")
			}
		}
	}
	c.EnqueueGather(GatherCmd{ThreadID: 1, Target: target, Threads: 2}, 0)
	c.Tick(2)
	gathers := 0
	for _, f := range fakes {
		for _, p := range f.sent {
			if p.Kind == network.GatherReq {
				gathers++
			}
		}
	}
	if gathers != 1 {
		t.Fatalf("expected 1 gather (one live tree), got %d", gathers)
	}
}

func TestGatherOnlyToLiveTrees(t *testing.T) {
	c, fakes, _ := newCoord(PolicyThreadID)
	target := addrOnCube(3)
	// Threads 0 and 2 contribute -> ports 0 and 2 have trees.
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpMac, Src1: addrOnCube(1), Src2: addrOnCube(2), Target: target}, 0)
	c.EnqueueUpdate(UpdateCmd{ThreadID: 2, Op: isa.OpMac, Src1: addrOnCube(5), Src2: addrOnCube(6), Target: target}, 0)
	c.EnqueueGather(GatherCmd{ThreadID: 0, Target: target, Threads: 1}, 0)
	c.Tick(1)
	c.Tick(2)
	for i, f := range fakes {
		want := 0
		if i == 0 || i == 2 {
			want = 1
		}
		got := 0
		for _, p := range f.sent {
			if p.Kind == network.GatherReq {
				got++
			}
		}
		if got != want {
			t.Fatalf("port %d got %d gathers, want %d", i, got, want)
		}
	}
}

func TestForestReductionAndWriteback(t *testing.T) {
	c, fakes, store := newCoord(PolicyThreadID)
	target := addrOnCube(3)
	store.WriteF64(target, 10)
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpAdd, Src1: addrOnCube(1), Target: target}, 0)
	c.EnqueueUpdate(UpdateCmd{ThreadID: 1, Op: isa.OpAdd, Src1: addrOnCube(2), Target: target}, 0)
	woken := false
	c.EnqueueGather(GatherCmd{ThreadID: 0, Target: target, Threads: 1, Wake: func(uint64) { woken = true }}, 0)
	c.Tick(1)

	// Fake the two tree responses.
	for _, tree := range []uint8{0, 1} {
		p := network.NewPacket(0, network.GatherResp, 0, 16)
		p.Flow = network.FlowKey{Flow: uint64(target), Tree: tree}
		p.Value = 2.5
		c.OnGatherResp(p, 10)
	}
	// The write-back active store should now be queued; drain and ack it.
	c.Tick(11)
	var wb *network.Packet
	for _, f := range fakes {
		for _, p := range f.sent {
			if p.Kind == network.ActiveStoreReq {
				wb = p
			}
		}
	}
	if wb == nil {
		t.Fatal("no write-back active store")
	}
	if wb.Value != 15 { // 10 (prior) + 2.5 + 2.5
		t.Fatalf("write-back value %v, want 15", wb.Value)
	}
	if woken {
		t.Fatal("woken before the write-back was acknowledged")
	}
	ack := network.NewPacket(0, network.ActiveStoreAck, 0, 16)
	ack.Tag = wb.Tag
	c.OnActiveAck(ack, 20)
	if !woken {
		t.Fatal("gather barrier never released")
	}
	if c.Busy() {
		t.Fatal("coordinator left busy")
	}
}

func TestZeroUpdateFlowCompletes(t *testing.T) {
	c, fakes, store := newCoord(PolicyThreadID)
	target := addrOnCube(5)
	store.WriteF64(target, 3)
	woken := false
	c.EnqueueGather(GatherCmd{ThreadID: 0, Target: target, Threads: 1, Wake: func(uint64) { woken = true }}, 0)
	c.Tick(1)
	// No trees: finalize writes the unchanged value back.
	var wb *network.Packet
	for _, f := range fakes {
		for _, p := range f.sent {
			if p.Kind == network.ActiveStoreReq {
				wb = p
			}
		}
	}
	if wb == nil {
		t.Fatal("zero-update flow produced no write-back")
	}
	ack := network.NewPacket(0, network.ActiveStoreAck, 0, 16)
	ack.Tag = wb.Tag
	c.OnActiveAck(ack, 5)
	if !woken {
		t.Fatal("zero-update flow never completed")
	}
}

func TestQueueBackpressure(t *testing.T) {
	c, fakes, _ := newCoord(PolicyStatic)
	fakes[0].blocked = true
	n := 0
	for i := 0; i < 100; i++ {
		if !c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpAdd, Src1: addrOnCube(1), Target: addrOnCube(2)}, 0) {
			break
		}
		n++
		c.Tick(uint64(i))
	}
	if n == 0 || n >= 100 {
		t.Fatalf("queue never filled (accepted %d)", n)
	}
	if c.Stats.EnqueueRejects == 0 || c.Stats.PortStalls == 0 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestActiveStoreRouting(t *testing.T) {
	c, fakes, _ := newCoord(PolicyThreadID)
	// const_assign routes to the target's cube group.
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpConstAssign, Target: addrOnCube(13), Imm: 7}, 0)
	// mov routes to the source's cube group first.
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpMov, Src1: addrOnCube(2), Target: addrOnCube(13)}, 0)
	c.Tick(1)
	if len(fakes[3].sent) != 1 || fakes[3].sent[0].Kind != network.ActiveStoreReq {
		t.Fatalf("const_assign misrouted: port3=%d", len(fakes[3].sent))
	}
	if len(fakes[0].sent) != 1 || fakes[0].sent[0].Kind != network.ActiveStoreReq {
		t.Fatalf("mov misrouted: port0=%d", len(fakes[0].sent))
	}
	if c.Stats.ActiveStores != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestUpdateAfterGatherPanicsAtCoordinator(t *testing.T) {
	c, _, _ := newCoord(PolicyStatic)
	target := addrOnCube(3)
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpAdd, Src1: addrOnCube(1), Target: target}, 0)
	c.EnqueueGather(GatherCmd{ThreadID: 0, Target: target, Threads: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for update after gather release")
		}
	}()
	c.EnqueueUpdate(UpdateCmd{ThreadID: 0, Op: isa.OpAdd, Src1: addrOnCube(1), Target: target}, 0)
}
