package core

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// Checkpoint support. Both the ARE and the coordinator snapshot at system
// quiescence with their transient machinery empty; what survives is flow
// state. A quiescent ARE may hold live Active Flow Table entries (trees
// built by updates whose gather wave has not fired), but every such entry
// is provably pre-gather: Gflag and gatherReplSent are set together in
// handleGatherReq, pendingChildren>0 requires an in-flight GatherResp, and
// a complete entry is released at emit time — so with the network drained
// and the input queue empty the private fields are all zero/false and only
// the architectural Table 3.1 fields need encoding. The coordinator's
// flows map is likewise mid-construction only: gatherSent false,
// pendingTree zero, and its wake closures are re-attached from the
// gather-fenced cores (RearmFence) rather than serialized.

// SnapshotReady reports whether the engine holds only checkpointable
// state: every transient queue empty and every live flow pre-gather.
func (e *Engine) SnapshotReady() bool {
	if e.inQ.Len() > 0 || len(e.byTag) > 0 || len(e.sendQ) > 0 || e.readyQ.Len() > 0 {
		return false
	}
	for i := range e.outQ {
		if e.outQ[i].Len() > 0 {
			return false
		}
	}
	//ar:exempt(determinism) order-independent boolean reduction: the predicate ORs over every entry and mutates nothing
	for _, fe := range e.Flows.entries {
		if fe.Gflag || fe.gatherReplSent || fe.completionQd || fe.pendingChildren != 0 {
			return false
		}
	}
	return true
}

// Snapshot implements sim.Snapshotter for a quiescent ARE.
func (e *Engine) Snapshot(enc *sim.Enc) {
	enc.Tag("are")
	enc.Int(e.CubeID)
	enc.U64(e.nextTag)
	s := &e.Stats
	for _, v := range []uint64{s.UpdatesCommitted, s.UpdatesForwarded, s.OperandReqsSent,
		s.OperandBufStalls, s.FlowTableStalls, s.InjectStalls, s.GatherReqs, s.GatherResps,
		s.FlowsCompleted, s.SingleOpBypasses, s.DecodedPackets, s.VaultAccessesSent} {
		enc.U64(v)
	}
	enc.Int(s.PeakOperandInUse)
	enc.U64(e.Breakdown.Count)
	enc.U64(e.Breakdown.Req)
	enc.U64(e.Breakdown.Stall)
	enc.U64(e.Breakdown.Resp)

	t := e.Flows
	enc.Int(t.Peak)
	enc.U64(t.Registered)
	keys := make([]network.FlowKey, 0, len(t.entries))
	for k := range t.entries { //ar:exempt(determinism) key collection only; the slice is sorted before use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Flow != keys[j].Flow {
			return keys[i].Flow < keys[j].Flow
		}
		return keys[i].Tree < keys[j].Tree
	})
	enc.Int(len(keys))
	for _, k := range keys {
		fe := t.entries[k]
		enc.U64(k.Flow)
		enc.U32(uint32(k.Tree))
		enc.U32(uint32(fe.Opcode))
		enc.F64(fe.Result)
		enc.U64(fe.ReqCount)
		enc.U64(fe.RespCnt)
		enc.Int(fe.Parent)
		enc.Int(len(fe.Children))
		for _, c := range fe.Children {
			enc.Int(c)
		}
	}
}

// Restore implements sim.Snapshotter for a freshly constructed ARE. The
// restoring machine's flow-table capacity may differ from the source's
// (the MaxFlows ablation forks); restore fails if the live entries do not
// fit — the sweep layer additionally requires the source's Peak to fit so
// the fork cannot diverge from a cold run.
func (e *Engine) Restore(d *sim.Dec) {
	d.Tag("are")
	if id := d.Int(); d.Err() == nil && id != e.CubeID {
		d.Fail("are cube id mismatch: snapshot %d, machine %d", id, e.CubeID)
	}
	e.nextTag = d.U64()
	s := &e.Stats
	for _, p := range []*uint64{&s.UpdatesCommitted, &s.UpdatesForwarded, &s.OperandReqsSent,
		&s.OperandBufStalls, &s.FlowTableStalls, &s.InjectStalls, &s.GatherReqs, &s.GatherResps,
		&s.FlowsCompleted, &s.SingleOpBypasses, &s.DecodedPackets, &s.VaultAccessesSent} {
		*p = d.U64()
	}
	s.PeakOperandInUse = d.Int()
	e.Breakdown.Count = d.U64()
	e.Breakdown.Req = d.U64()
	e.Breakdown.Stall = d.U64()
	e.Breakdown.Resp = d.U64()

	t := e.Flows
	t.Peak = d.Int()
	t.Registered = d.U64()
	n := d.Len(1<<20, "are flow entries")
	if d.Err() != nil {
		return
	}
	if n > t.cap {
		d.Fail("are cube %d: %d live flows exceed table capacity %d", e.CubeID, n, t.cap)
		return
	}
	for i := 0; i < n; i++ {
		key := network.FlowKey{Flow: d.U64(), Tree: uint8(d.U32())}
		fe := &FlowEntry{
			Key:      key,
			Opcode:   isa.ALUOp(d.U32()),
			Result:   d.F64(),
			ReqCount: d.U64(),
			RespCnt:  d.U64(),
			Parent:   d.Int(),
		}
		nc := d.Len(1<<10, "are flow children")
		for j := 0; j < nc && d.Err() == nil; j++ {
			fe.Children = append(fe.Children, d.Int())
		}
		if d.Err() != nil {
			return
		}
		if _, dup := t.entries[key]; dup {
			d.Fail("are cube %d: duplicate flow key %+v", e.CubeID, key)
			return
		}
		t.entries[key] = fe
	}
}

// SnapshotReady reports whether the coordinator holds only checkpointable
// state: ports drained, no outstanding active-store acks, and every live
// flow still gathering arrivals (its wave not yet fired).
func (c *Coordinator) SnapshotReady() bool {
	if len(c.pendingAcks) > 0 {
		return false
	}
	for port := range c.queues {
		if c.queues[port].Len() > 0 {
			return false
		}
	}
	//ar:exempt(determinism) order-independent boolean reduction: the predicate ORs over every flow and mutates nothing
	for _, f := range c.flows {
		if f.gatherSent || f.pendingTree != 0 {
			return false
		}
	}
	return true
}

// Snapshot implements sim.Snapshotter for a quiescent coordinator.
func (c *Coordinator) Snapshot(e *sim.Enc) {
	e.Tag("coord")
	e.U64(c.nextTag)
	s := &c.Stats
	for _, v := range []uint64{s.Updates, s.Gathers, s.ActiveStores, s.FlowsComplete,
		s.PortStalls, s.EnqueueRejects} {
		e.U64(v)
	}
	e.Int(len(c.ports))
	targets := make([]mem.PAddr, 0, len(c.flows))
	for t := range c.flows { //ar:exempt(determinism) key collection only; the slice is sorted before use
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	e.Int(len(targets))
	for _, t := range targets {
		f := c.flows[t]
		e.U64(uint64(t))
		e.U32(uint32(f.op))
		for _, live := range f.trees {
			e.Bool(live)
		}
		e.Int(f.gathersSeen)
		e.Int(f.threads)
		e.F64(f.partial)
	}
}

// Restore implements sim.Snapshotter for a freshly constructed
// coordinator. Wake closures are not decoded: the system re-attaches them
// by calling RearmFence on each gather-fenced core, which lands in
// AttachGatherWake. Re-attachment in core-ID order is bit-identity-safe
// because each wake only raises its own core's flags.
func (c *Coordinator) Restore(d *sim.Dec) {
	d.Tag("coord")
	c.nextTag = d.U64()
	s := &c.Stats
	for _, p := range []*uint64{&s.Updates, &s.Gathers, &s.ActiveStores, &s.FlowsComplete,
		&s.PortStalls, &s.EnqueueRejects} {
		*p = d.U64()
	}
	if np := d.Int(); d.Err() == nil && np != len(c.ports) {
		d.Fail("coordinator port count mismatch: snapshot %d, machine %d", np, len(c.ports))
		return
	}
	n := d.Len(1<<20, "coordinator flows")
	for i := 0; i < n && d.Err() == nil; i++ {
		f := &coordFlow{
			target: mem.PAddr(d.U64()),
			op:     isa.ALUOp(d.U32()),
			trees:  make([]bool, len(c.ports)),
		}
		for j := range f.trees {
			f.trees[j] = d.Bool()
		}
		f.gathersSeen = d.Int()
		f.threads = d.Int()
		f.partial = d.F64()
		if d.Err() != nil {
			return
		}
		if f.gathersSeen < 0 || (f.threads > 0 && f.gathersSeen >= f.threads) ||
			(f.threads <= 0 && f.gathersSeen != 0) {
			d.Fail("coordinator flow %#x: inconsistent gather barrier %d/%d",
				uint64(f.target), f.gathersSeen, f.threads)
			return
		}
		if _, dup := c.flows[f.target]; dup {
			d.Fail("coordinator flow %#x decoded twice", uint64(f.target))
			return
		}
		c.flows[f.target] = f
	}
}

// AttachGatherWake re-registers a restored gather-fence wake with its
// flow's thread barrier; it reports false when the flow does not exist (a
// corrupt or inconsistent snapshot).
func (c *Coordinator) AttachGatherWake(target mem.PAddr, wake func(cycle uint64)) bool {
	f, ok := c.flows[target]
	if !ok {
		return false
	}
	f.wake = append(f.wake, wake)
	return true
}
