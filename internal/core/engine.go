package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Cube is the ARE's view of its host cube: local vault access, packet
// injection into the memory network, and routing/geometry queries. The hmc
// package implements it.
type Cube interface {
	// VaultAccess enqueues a word-granularity access to the local vault
	// holding pa. It reports false on vault queue backpressure. For reads
	// onDone receives the value.
	VaultAccess(pa mem.PAddr, write bool, value float64, onDone func(v float64, cycle uint64)) bool
	// Inject offers a packet to the local router; false means the
	// injection queue is full.
	Inject(p *network.Packet) bool
	// CubeOf maps a physical address to its home cube id.
	CubeOf(pa mem.PAddr) int
	// NodeOfCube maps a cube id to its network node id.
	NodeOfCube(cube int) int
	// NextHopToCube returns the next node id on the minimal route from
	// this cube to the given cube.
	NextHopToCube(cube int) int
}

// TagReader is an optional Cube extension: a tag-routed local operand read
// whose completion arrives through OperandResp(tag, value, cycle) instead
// of a per-access callback. The hmc cube implements it so the engine's
// local-fetch hot path allocates nothing; plain Cube implementations (test
// fakes) fall back to VaultAccess.
type TagReader interface {
	VaultReadTag(pa mem.PAddr, tag uint64) bool
}

// EngineConfig sizes one Active-Routing Engine.
type EngineConfig struct {
	MaxFlows    int    // Active Flow Table capacity
	OperandBufs int    // operand buffer pool size (two-operand updates)
	DecodeRate  int    // packets decoded per ARE cycle
	ALURate     int    // update commits per ARE cycle
	InQDepth    int    // ARE input queue depth (packets)
	ClockDiv    uint64 // simulator cycles per ARE cycle (logic layer @1 GHz)
	BypassOff   bool   // ablation: disable the single-operand bypass (§3.2.3)
}

// DefaultEngineConfig returns the configuration used in the evaluation.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		MaxFlows:    256,
		OperandBufs: 32,
		DecodeRate:  2,
		ALURate:     2,
		InQDepth:    16,
		ClockDiv:    2,
	}
}

// EngineStats collects the per-cube counters behind Figs 5.2 and 5.3.
type EngineStats struct {
	UpdatesCommitted  uint64 // updates that performed NDP at this cube
	UpdatesForwarded  uint64 // updates passed toward a child
	OperandReqsSent   uint64
	OperandBufStalls  uint64 // ARE-cycles stalled for an operand buffer
	FlowTableStalls   uint64 // ARE-cycles stalled for a flow entry
	InjectStalls      uint64 // ARE-cycles stalled on injection backpressure
	GatherReqs        uint64
	GatherResps       uint64
	FlowsCompleted    uint64
	SingleOpBypasses  uint64 // §3.2.3 optimization hits
	PeakOperandInUse  int
	operandBufsInUse  int
	ready             int
	DecodedPackets    uint64
	VaultAccessesSent uint64
}

// Engine is one Active-Routing Engine (Fig 3.3(a)): packet decoder, Active
// Flow Table, operand buffer pool and ALU, attached to the cube's intra-
// cube switch.
type Engine struct {
	CubeID    int
	Node      int // network node id of the host cube
	cfg       EngineConfig
	cube      Cube
	tagReader TagReader     // non-nil when cube supports tag-routed reads
	pool      *network.Pool // packet free list shared with the host fabric

	Flows *FlowTable

	inQ       sim.FIFO[*network.Packet]
	outQ      [3]sim.FIFO[*network.Packet] // per-class forwarding buffers (see emit)
	byTag     map[uint64]*OperandEntry
	sendQ     []*OperandEntry         // operand requests not yet issued
	readyQ    sim.FIFO[*OperandEntry] // operands complete, waiting for the ALU
	oeFree    []*OperandEntry         // recycled operand entries
	nextTag   uint64
	bypassOff bool // ablation: disable the single-operand bypass

	// clockMask enables mask arithmetic for the (common) power-of-two
	// ClockDiv; valid only when clockPow2.
	clockMask uint64
	clockPow2 bool

	Stats     EngineStats
	Breakdown stats.LatencyBreakdown
}

// NewEngine builds an ARE for the given cube. pool is the packet free list
// of the fabric the cube injects into (nil allocates a private pool, for
// tests).
func NewEngine(cubeID, node int, cfg EngineConfig, cube Cube, pool *network.Pool) *Engine {
	if pool == nil {
		pool = network.NewPool()
	}
	tagReader, _ := cube.(TagReader)
	return &Engine{
		CubeID:    cubeID,
		Node:      node,
		cfg:       cfg,
		cube:      cube,
		tagReader: tagReader,
		pool:      pool,
		Flows:     NewFlowTable(cfg.MaxFlows),
		byTag:     make(map[uint64]*OperandEntry),
		bypassOff: cfg.BypassOff,
		clockMask: cfg.ClockDiv - 1,
		clockPow2: cfg.ClockDiv&(cfg.ClockDiv-1) == 0,
	}
}

// SetBypass enables or disables the single-operand operand-buffer bypass
// (§3.2.3); used by the ablation benchmark.
func (e *Engine) SetBypass(on bool) { e.bypassOff = !on }

// Busy reports whether the engine still holds any in-flight state.
func (e *Engine) Busy() bool {
	if e.inQ.Len() > 0 || len(e.byTag) > 0 || len(e.sendQ) > 0 ||
		e.readyQ.Len() > 0 || e.Flows.Size() > 0 {
		return true
	}
	for i := range e.outQ {
		if e.outQ[i].Len() > 0 {
			return true
		}
	}
	return false
}

// Deliver accepts an active packet from the network; false applies
// backpressure (the fabric re-offers the packet). Response-class packets
// (gather responses) are consumed unconditionally: they only free
// resources (tree state, operand buffers), so refusing them behind a
// buffer-stalled input queue would deadlock the response traffic class.
func (e *Engine) Deliver(p *network.Packet, cycle uint64) bool {
	if p.Kind == network.GatherResp {
		if !e.handleGatherResp(p, cycle) {
			panic("core: gather response handling cannot stall")
		}
		e.Stats.DecodedPackets++
		e.pool.Put(p) // consumed synchronously
		return true
	}
	if e.inQ.Len() >= e.cfg.InQDepth {
		return false
	}
	e.inQ.Push(p)
	return true
}

// NextWork implements sim.Idler: the engine has work only on ARE clock
// edges while any of its queues hold entries. Flow-table state waiting on
// remote operands or gather responses advances through Deliver and
// OperandResp, not through Tick.
func (e *Engine) NextWork(now uint64) uint64 {
	if e.inQ.Len() == 0 && len(e.sendQ) == 0 && e.readyQ.Len() == 0 &&
		e.outQ[0].Len() == 0 && e.outQ[1].Len() == 0 && e.outQ[2].Len() == 0 {
		return sim.Never
	}
	if e.clockPow2 {
		return (now + e.clockMask) &^ e.clockMask
	}
	if rem := now % e.cfg.ClockDiv; rem != 0 {
		return now + e.cfg.ClockDiv - rem
	}
	return now
}

// Tick advances the engine one simulator cycle.
//
//ar:hotpath
func (e *Engine) Tick(cycle uint64) {
	if e.clockPow2 {
		if cycle&e.clockMask != 0 {
			return
		}
	} else if cycle%e.cfg.ClockDiv != 0 {
		return
	}
	e.drainOut(cycle)
	e.issueOperandRequests(cycle)
	e.commitReady(cycle)
	e.decode(cycle)
}

// emit queues an ARE-originated packet in the logic-layer forwarding
// buffer for its traffic class. The buffers are unbounded on purpose:
// Active-Routing's hop-by-hop consume-and-reinject of Update/Gather
// packets would otherwise create a cyclic credit dependency across cubes
// (reinjection resets the packet's VC hop class), and the deadlock-free
// argument becomes "AREs always consume". The buffers model logic-layer
// SRAM; occupancy shows up as latency, preserving the congestion
// behaviour of Figs 5.1/5.2. One buffer per traffic class keeps operand
// requests and gather responses from head-of-line blocking behind a
// congested update forward; per-edge FIFO order (updates before their
// flow's gather replica) is preserved because class-0 forwards share one
// queue.
func (e *Engine) emit(p *network.Packet) {
	class := 0
	switch {
	case p.Kind.IsResponse():
		class = 2
	case p.Kind == network.OperandReq:
		class = 1
	}
	e.outQ[class].Push(p)
}

// drainOut injects buffered packets into the local router, each class in
// FIFO order.
//
//ar:hotpath
func (e *Engine) drainOut(cycle uint64) {
	for class := 2; class >= 0; class-- {
		for e.outQ[class].Len() > 0 {
			if !e.cube.Inject(e.outQ[class].Peek()) {
				e.Stats.InjectStalls++
				break
			}
			e.outQ[class].Pop()
		}
	}
}

// issueOperandRequests retries operand fetches blocked on vault or
// injection backpressure.
func (e *Engine) issueOperandRequests(cycle uint64) {
	kept := e.sendQ[:0]
	for _, oe := range e.sendQ {
		e.tryIssue(oe, cycle)
		if !oe.sent() {
			kept = append(kept, oe) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
		}
	}
	e.sendQ = kept
}

// tryIssue attempts to send the outstanding operand fetches of oe. When the
// last one is issued it stamps the issue cycle (the end of Fig 5.2's stall
// component).
func (e *Engine) tryIssue(oe *OperandEntry, cycle uint64) {
	if !oe.sent1 && e.issueOne(oe, oe.Addr1, oe.tag1) {
		oe.sent1 = true
	}
	if oe.need2 && !oe.sent2 && e.issueOne(oe, oe.Addr2, oe.tag2) {
		oe.sent2 = true
	}
	if oe.sent() {
		oe.issueCycle = cycle
	}
}

// issueOne sends one operand fetch, either to a local vault or as an
// OperandReq packet to the operand's home cube.
func (e *Engine) issueOne(oe *OperandEntry, addr mem.PAddr, tag uint64) bool {
	home := e.cube.CubeOf(addr)
	if home == e.CubeID {
		var ok bool
		if e.tagReader != nil {
			// Tag-routed fast path: completion arrives via OperandResp, no
			// per-access callback allocation.
			ok = e.tagReader.VaultReadTag(addr, tag)
		} else {
			ok = e.cube.VaultAccess(addr, false, 0, func(v float64, c uint64) { //ar:exempt(hotpath) one completion callback per vault access; the vault API is callback-shaped and the allocs/op ceiling bounds it
				e.operandArrived(tag, v, c)
			})
		}
		if ok {
			e.Stats.VaultAccessesSent++
		}
		return ok
	}
	p := e.pool.Get(network.OperandReq, e.Node, e.cube.NodeOfCube(home))
	p.Addr = addr
	p.Tag = tag
	e.emit(p)
	e.Stats.OperandReqsSent++
	return true
}

// OperandResp delivers a remote operand value (an OperandResp packet that
// arrived at the host cube).
func (e *Engine) OperandResp(tag uint64, v float64, cycle uint64) {
	e.operandArrived(tag, v, cycle)
}

// operandArrived records a fetched operand value and moves the entry to the
// ALU queue when complete.
func (e *Engine) operandArrived(tag uint64, v float64, cycle uint64) {
	oe, ok := e.byTag[tag]
	if !ok {
		panic(fmt.Sprintf("core: operand response for unknown tag %d at cube %d", tag, e.CubeID))
	}
	delete(e.byTag, tag)
	switch tag {
	case oe.tag1:
		oe.Val1, oe.Ready1 = v, true
	case oe.tag2:
		oe.Val2, oe.Ready2 = v, true
	default:
		panic("core: operand tag mismatch")
	}
	if oe.ready() {
		e.readyQ.Push(oe)
	}
}

// commitReady runs the ALU: up to ALURate updates fold their value into
// their flow entry per ARE cycle (Fig 3.4(b) "compute and update result").
// A committed operand entry is fully consumed (its tags were unmapped when
// the operands arrived) and is recycled.
func (e *Engine) commitReady(cycle uint64) {
	n := e.cfg.ALURate
	for n > 0 && e.readyQ.Len() > 0 {
		oe := e.readyQ.Pop()
		n--
		fe := e.Flows.Lookup(oe.Key)
		if fe == nil {
			panic(fmt.Sprintf("core: commit for released flow %+v at cube %d", oe.Key, e.CubeID))
		}
		fe.Result = fe.Opcode.Combine(fe.Result, oe.Op.Value(oe.Val1, oe.Val2))
		fe.RespCnt++
		if oe.buffered {
			e.Stats.operandBufsInUse--
		}
		e.Stats.UpdatesCommitted++
		e.Breakdown.AddSample(
			oe.arriveCycle-oe.injectCycle,
			oe.issueCycle-oe.arriveCycle,
			cycle-oe.issueCycle,
		)
		e.oeFree = append(e.oeFree, oe) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
		e.maybeComplete(fe)
	}
}

// decode processes the ARE input queue in FIFO order. Head-of-line stalls
// (operand buffer exhausted, flow table full, injection backpressure) block
// the queue, which backpressures the router — the mechanism behind the
// stall component of Fig 5.2 and the stall heatmap of Fig 5.3.
func (e *Engine) decode(cycle uint64) {
	for n := e.cfg.DecodeRate; n > 0 && e.inQ.Len() > 0; n-- {
		p := e.inQ.Peek()
		var consumed bool
		switch p.Kind {
		case network.UpdateReq:
			consumed = e.handleUpdate(p, cycle)
		case network.GatherReq:
			consumed = e.handleGatherReq(p, cycle)
		default:
			panic(fmt.Sprintf("core: ARE received unexpected packet kind %s", p.Kind))
		}
		if !consumed {
			return
		}
		e.inQ.Pop()
		e.Stats.DecodedPackets++
		e.pool.Put(p) // decode commit: the packet's final consumption
	}
}

// handleUpdate implements Fig 3.4(a): register/extend the tree, then either
// commit the update here (destination or split point) or forward it toward
// the operands, recording the child edge.
func (e *Engine) handleUpdate(p *network.Packet, cycle uint64) bool {
	fe := e.Flows.Lookup(p.Flow)
	if fe == nil {
		if e.Flows.Full() {
			e.Stats.FlowTableStalls++
			return false
		}
		fe = e.Flows.Register(p.Flow, p.Op, p.Src)
	}
	if fe.Gflag {
		// The coordinator's thread barrier plus FIFO links make this
		// impossible; catching it here turns an ordering bug into a
		// diagnosable failure instead of a lost update.
		panic(fmt.Sprintf("core: update arrived after gather for flow %+v at cube %d", p.Flow, e.CubeID))
	}

	commit, next := e.updateRoute(p)
	if !commit {
		fwd := e.pool.Get(network.UpdateReq, e.Node, next)
		fwd.Flow, fwd.Op = p.Flow, p.Op
		fwd.Src1, fwd.Src2, fwd.Target = p.Src1, p.Src2, p.Target
		fwd.Count = p.Count
		fwd.InjectCycle = p.InjectCycle
		e.emit(fwd)
		fe.AddChild(next)
		e.Stats.UpdatesForwarded++
		return true
	}

	// Destination or split point: reserve operand buffer(s) and fetch the
	// operand(s). A vectored update (Count > 1, the §6 granularity
	// extension) expands one element per iteration, advancing the packet's
	// operand addresses in place; when buffers run out mid-vector the
	// packet stays at the decode head and resumes next cycle.
	for {
		need2 := p.Src2 != 0
		buffered := need2 || e.bypassOff
		if buffered && e.Stats.operandBufsInUse >= e.cfg.OperandBufs {
			e.Stats.OperandBufStalls++
			return false
		}
		e.expandElement(fe, p, cycle, need2, buffered)
		if p.Count <= 1 {
			return true
		}
		p.Count--
		p.Src1 += mem.WordSize
		if p.Src2 != 0 {
			p.Src2 += mem.WordSize
		}
		if e.cube.CubeOf(p.Src1) != e.cube.CubeOf(p.Src1-mem.WordSize) {
			panic("core: vectored update crosses a cube boundary")
		}
	}
}

// expandElement commits one (possibly vector-element) update: allocate the
// buffer, register the fetches and bump the request counter (Fig 3.4(a)).
func (e *Engine) expandElement(fe *FlowEntry, p *network.Packet, cycle uint64, need2, buffered bool) {
	var oe *OperandEntry
	if n := len(e.oeFree); n > 0 {
		oe = e.oeFree[n-1]
		e.oeFree = e.oeFree[:n-1]
		*oe = OperandEntry{}
	} else {
		oe = &OperandEntry{} //ar:exempt(hotpath) pool slow path: allocates only when the free list is empty, cold after warm-up
	}
	oe.Key = p.Flow
	oe.Op = p.Op
	oe.Addr1 = p.Src1
	oe.Addr2 = p.Src2
	oe.need2 = need2
	oe.buffered = buffered
	oe.injectCycle = p.InjectCycle
	oe.arriveCycle = p.ArriveCycle
	if buffered {
		e.Stats.operandBufsInUse++
		if e.Stats.operandBufsInUse > e.Stats.PeakOperandInUse {
			e.Stats.PeakOperandInUse = e.Stats.operandBufsInUse
		}
	} else {
		e.Stats.SingleOpBypasses++
	}
	e.nextTag++
	oe.tag1 = e.tagFor(e.nextTag)
	e.byTag[oe.tag1] = oe
	if need2 {
		e.nextTag++
		oe.tag2 = e.tagFor(e.nextTag)
		e.byTag[oe.tag2] = oe
	}
	fe.ReqCount++
	e.tryIssue(oe, cycle)
	if !oe.sent() {
		e.sendQ = append(e.sendQ, oe) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	}
}

// tagFor namespaces operand tags per cube so OperandResp packets can be
// matched at the issuing ARE even though tags travel through shared fabric.
func (e *Engine) tagFor(seq uint64) uint64 {
	return uint64(e.CubeID)<<48 | seq
}

// updateRoute decides Fig 3.4(a)'s "destination or split point" test: the
// update commits at the last cube common to the minimal routes of both
// operands (§3.3.2), which is detected hop by hop by comparing next hops.
func (e *Engine) updateRoute(p *network.Packet) (commit bool, next int) {
	c1 := e.cube.CubeOf(p.Src1)
	if p.Src2 == 0 {
		if c1 == e.CubeID {
			return true, 0
		}
		return false, e.cube.NextHopToCube(c1)
	}
	c2 := e.cube.CubeOf(p.Src2)
	local1 := c1 == e.CubeID
	local2 := c2 == e.CubeID
	if local1 || local2 {
		// At an operand's home cube the routes can share no further hop:
		// this is the destination (both local) or the split point.
		return true, 0
	}
	n1 := e.cube.NextHopToCube(c1)
	n2 := e.cube.NextHopToCube(c2)
	if n1 != n2 {
		return true, 0 // split point
	}
	return false, n1
}

// handleGatherReq implements Fig 3.4(c): mark the Gflag and replicate the
// gather wave to every recorded child. The packet is consumed only when
// every replica fits in the injection queue, preserving per-edge FIFO order
// behind earlier updates.
func (e *Engine) handleGatherReq(p *network.Packet, cycle uint64) bool {
	fe := e.Flows.Lookup(p.Flow)
	if fe == nil {
		panic(fmt.Sprintf("core: gather for unknown flow %+v at cube %d", p.Flow, e.CubeID))
	}
	fe.Gflag = true
	for _, child := range fe.Children {
		g := e.pool.Get(network.GatherReq, e.Node, child)
		g.Flow, g.Op = p.Flow, p.Op
		e.emit(g)
		fe.pendingChildren++
	}
	// Children flags are cleared as responses arrive (Fig 3.4(c)).
	fe.Children = fe.Children[:0]
	fe.gatherReplSent = true
	e.Stats.GatherReqs++
	e.maybeComplete(fe)
	return true
}

// handleGatherResp implements Fig 3.4(d): fold the child subtree's partial
// result and complete when this subtree is drained.
func (e *Engine) handleGatherResp(p *network.Packet, cycle uint64) bool {
	fe := e.Flows.Lookup(p.Flow)
	if fe == nil {
		panic(fmt.Sprintf("core: gather response for unknown flow %+v at cube %d", p.Flow, e.CubeID))
	}
	fe.Result = fe.Opcode.Combine(fe.Result, p.Value)
	fe.pendingChildren--
	if fe.pendingChildren < 0 {
		panic("core: more gather responses than children")
	}
	e.Stats.GatherResps++
	e.maybeComplete(fe)
	return true
}

// maybeComplete sends the subtree-complete response toward the parent and
// releases the flow entry. Release at emit time is safe: completion
// requires Gflag, local req==resp and all children drained, after which no
// packet for this flow can reach this node again.
func (e *Engine) maybeComplete(fe *FlowEntry) {
	if !fe.Complete() || fe.completionQd {
		return
	}
	fe.completionQd = true
	p := e.pool.Get(network.GatherResp, e.Node, fe.Parent)
	p.Flow = fe.Key
	p.Op = fe.Opcode
	p.Value = fe.Result
	e.emit(p)
	e.Flows.Release(fe.Key)
	e.Stats.FlowsCompleted++
}

// DebugState reports internal queue depths (debug tooling).
func (e *Engine) DebugState() (inQ int, out0, out1, out2 int, pendingTags int, sendQ int, readyQ int) {
	return e.inQ.Len(), e.outQ[0].Len(), e.outQ[1].Len(), e.outQ[2].Len(), len(e.byTag), len(e.sendQ), e.readyQ.Len()
}
