package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
)

// mockCube drives an Engine without a network: vault reads complete after
// a fixed delay, injections are captured for inspection.
type mockCube struct {
	id      int
	geom    mem.HMCGeometry
	store   *mem.Store
	t       *testing.T
	pending []func()
	out     []*network.Packet
	injCap  int
	vaultOK bool
}

func newMockCube(t *testing.T, id int) *mockCube {
	return &mockCube{
		id:      id,
		geom:    mem.DefaultHMCGeometry(),
		store:   mem.NewStore(),
		t:       t,
		injCap:  64,
		vaultOK: true,
	}
}

func (m *mockCube) VaultAccess(pa mem.PAddr, write bool, value float64, onDone func(v float64, cycle uint64)) bool {
	if !m.vaultOK {
		return false
	}
	m.pending = append(m.pending, func() {
		if write {
			m.store.WriteF64(pa, value)
			onDone(0, 0)
			return
		}
		onDone(m.store.ReadF64(pa), 0)
	})
	return true
}

func (m *mockCube) Inject(p *network.Packet) bool {
	if len(m.out) >= m.injCap {
		return false
	}
	m.out = append(m.out, p)
	return true
}

func (m *mockCube) CubeOf(pa mem.PAddr) int { return m.geom.CubeOf(pa) }
func (m *mockCube) NodeOfCube(cube int) int { return cube }
func (m *mockCube) NextHopToCube(c int) int { return c } // direct hop in tests

// flush completes all pending vault operations.
func (m *mockCube) flush() {
	for len(m.pending) > 0 {
		f := m.pending[0]
		m.pending = m.pending[1:]
		f()
	}
}

// addrInCube returns a word address homed at the given cube.
func addrInCube(geom mem.HMCGeometry, cube int) mem.PAddr {
	pa := mem.PAddr(cube * mem.PageSize)
	if geom.CubeOf(pa) != cube {
		panic("test geometry mismatch")
	}
	return pa
}

func tick(e *Engine, n int) {
	for i := 0; i < n; i++ {
		e.Tick(uint64(i * 2)) // ClockDiv=2: every even cycle is an ARE cycle
	}
}

func updatePacket(flow network.FlowKey, op isa.ALUOp, src1, src2, from int, geom mem.HMCGeometry) *network.Packet {
	p := network.NewPacket(0, network.UpdateReq, from, 0)
	p.Flow = flow
	p.Op = op
	p.Src1 = addrInCube(geom, src1)
	if src2 >= 0 {
		p.Src2 = addrInCube(geom, src2)
	}
	p.Src = from
	return p
}

func TestFlowTableRegisterRelease(t *testing.T) {
	ft := NewFlowTable(2)
	k1 := network.FlowKey{Flow: 1}
	k2 := network.FlowKey{Flow: 2}
	ft.Register(k1, isa.OpAdd, 9)
	ft.Register(k2, isa.OpMac, 9)
	if !ft.Full() {
		t.Fatal("table should be full")
	}
	if ft.Peak != 2 || ft.Registered != 2 {
		t.Fatalf("peak=%d registered=%d", ft.Peak, ft.Registered)
	}
	ft.Release(k1)
	if ft.Full() || ft.Size() != 1 {
		t.Fatal("release did not free an entry")
	}
}

func TestFlowTableDuplicatePanics(t *testing.T) {
	ft := NewFlowTable(4)
	k := network.FlowKey{Flow: 1}
	ft.Register(k, isa.OpAdd, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ft.Register(k, isa.OpAdd, 0)
}

func TestFlowEntryMirrorsTable31(t *testing.T) {
	// Table 3.1 fields: flowID, opcode, result, req_counter, resp_counter,
	// parent, children flags, Gflag.
	fe := NewFlowEntry(network.FlowKey{Flow: 0xABC, Tree: 1}, isa.OpMac, 7)
	if fe.Key.Flow != 0xABC || fe.Opcode != isa.OpMac || fe.Parent != 7 {
		t.Fatalf("entry fields wrong: %+v", fe)
	}
	if fe.Result != 0 || fe.ReqCount != 0 || fe.RespCnt != 0 || fe.Gflag {
		t.Fatalf("entry not at identity: %+v", fe)
	}
	if len(fe.Children) != 0 {
		t.Fatal("children set must start empty")
	}
}

// deliver pushes a packet into the engine, failing the test on refusal.
func deliver(t *testing.T, e *Engine, p *network.Packet) {
	t.Helper()
	if !e.Deliver(p, 0) {
		t.Fatal("engine refused packet")
	}
}

func TestSingleOperandUpdateCommitsLocally(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	pa := addrInCube(mc.geom, 3)
	mc.store.WriteF64(pa, 2.5)

	flow := network.FlowKey{Flow: 100}
	p := updatePacket(flow, isa.OpAdd, 3, -1, 19, mc.geom)
	deliver(t, e, p)
	tick(e, 2)
	mc.flush()
	tick(e, 2)

	fe := e.Flows.Lookup(flow)
	if fe == nil {
		t.Fatal("flow not registered")
	}
	if fe.Result != 2.5 || fe.ReqCount != 1 || fe.RespCnt != 1 {
		t.Fatalf("entry = %+v", fe)
	}
	if e.Stats.SingleOpBypasses != 1 {
		t.Fatal("single-operand update must bypass the operand buffer (§3.2.3)")
	}
	if e.Stats.PeakOperandInUse != 0 {
		t.Fatal("bypass must not consume operand buffers")
	}
	if fe.Parent != 19 {
		t.Fatalf("parent = %d, want the upstream node 19", fe.Parent)
	}
}

func TestTwoOperandLocalUpdate(t *testing.T) {
	mc := newMockCube(t, 5)
	e := NewEngine(5, 5, DefaultEngineConfig(), mc, nil)
	a := addrInCube(mc.geom, 5)
	b := a + 8
	mc.store.WriteF64(a, 3)
	mc.store.WriteF64(b, 4)

	flow := network.FlowKey{Flow: 200}
	p := updatePacket(flow, isa.OpMac, 5, 5, 16, mc.geom)
	p.Src2 = b
	deliver(t, e, p)
	tick(e, 2)
	mc.flush()
	tick(e, 2)

	fe := e.Flows.Lookup(flow)
	if fe.Result != 12 {
		t.Fatalf("mac result = %v, want 12", fe.Result)
	}
	if e.Stats.PeakOperandInUse != 1 {
		t.Fatalf("two-operand update must hold one operand buffer, got %d", e.Stats.PeakOperandInUse)
	}
}

func TestUpdateForwardsTowardOperands(t *testing.T) {
	// Both operands at cube 9: cube 5 must forward (record a child), not
	// commit.
	mc := newMockCube(t, 5)
	e := NewEngine(5, 5, DefaultEngineConfig(), mc, nil)
	flow := network.FlowKey{Flow: 300}
	p := updatePacket(flow, isa.OpMac, 9, 9, 16, mc.geom)
	deliver(t, e, p)
	tick(e, 2) // decode, then drain the forwarding buffer

	fe := e.Flows.Lookup(flow)
	if fe == nil {
		t.Fatal("tree node not registered on pass-through")
	}
	if fe.ReqCount != 0 {
		t.Fatal("pass-through must not count as local request")
	}
	if len(fe.Children) != 1 || fe.Children[0] != 9 {
		t.Fatalf("child flag not recorded: %+v", fe.Children)
	}
	if len(mc.out) != 1 || mc.out[0].Kind != network.UpdateReq || mc.out[0].Dst != 9 {
		t.Fatalf("forwarded packet wrong: %+v", mc.out)
	}
	if e.Stats.UpdatesForwarded != 1 {
		t.Fatal("forward not counted")
	}
}

func TestSplitPointDetection(t *testing.T) {
	// Operands at two different cubes, neither local, next hops differ in
	// the mock (NextHop = destination): commit here with two operand
	// requests (Fig 3.6's cube-3 example).
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	flow := network.FlowKey{Flow: 400}
	p := updatePacket(flow, isa.OpMac, 15, 12, 16, mc.geom)
	deliver(t, e, p)
	tick(e, 2)

	fe := e.Flows.Lookup(flow)
	if fe.ReqCount != 1 {
		t.Fatal("split point must commit the update locally")
	}
	reqs := 0
	for _, out := range mc.out {
		if out.Kind == network.OperandReq {
			reqs++
		}
	}
	if reqs != 2 {
		t.Fatalf("split point sent %d operand requests, want 2", reqs)
	}
}

func TestOperandResponsesCompleteUpdate(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	flow := network.FlowKey{Flow: 500}
	p := updatePacket(flow, isa.OpMac, 15, 12, 16, mc.geom)
	deliver(t, e, p)
	tick(e, 2)

	// Answer the two operand requests out of order.
	var tags []uint64
	for _, out := range mc.out {
		if out.Kind == network.OperandReq {
			tags = append(tags, out.Tag)
		}
	}
	e.OperandResp(tags[1], 7, 0)
	e.OperandResp(tags[0], 6, 0)
	tick(e, 2)

	fe := e.Flows.Lookup(flow)
	if fe.Result != 42 || fe.RespCnt != 1 {
		t.Fatalf("entry = %+v, want result 42", fe)
	}
}

func TestGatherTeardownSingleNode(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	pa := addrInCube(mc.geom, 3)
	mc.store.WriteF64(pa, 1.5)
	flow := network.FlowKey{Flow: 600}
	for i := 0; i < 4; i++ {
		deliver(t, e, updatePacket(flow, isa.OpAdd, 3, -1, 16, mc.geom))
	}
	tick(e, 4)
	mc.flush()
	tick(e, 4)

	g := network.NewPacket(0, network.GatherReq, 16, 3)
	g.Flow, g.Op = flow, isa.OpAdd
	g.Src = 16
	deliver(t, e, g)
	tick(e, 4)

	if e.Flows.Lookup(flow) != nil {
		t.Fatal("flow entry not released after gather")
	}
	var resp *network.Packet
	for _, out := range mc.out {
		if out.Kind == network.GatherResp {
			resp = out
		}
	}
	if resp == nil {
		t.Fatal("no gather response sent to parent")
	}
	if resp.Dst != 16 || resp.Value != 6 {
		t.Fatalf("gather response = %+v, want value 6 to node 16", resp)
	}
	if !e.Busy() == false && e.Flows.Size() != 0 {
		t.Fatal("engine left residual state")
	}
}

func TestGatherWaitsForPendingUpdates(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	pa := addrInCube(mc.geom, 3)
	mc.store.WriteF64(pa, 1)
	flow := network.FlowKey{Flow: 700}
	deliver(t, e, updatePacket(flow, isa.OpAdd, 3, -1, 16, mc.geom))
	tick(e, 2) // vault read pending, not yet completed

	g := network.NewPacket(0, network.GatherReq, 16, 3)
	g.Flow, g.Op = flow, isa.OpAdd
	g.Src = 16
	deliver(t, e, g)
	tick(e, 2)

	if e.Flows.Lookup(flow) == nil {
		t.Fatal("flow released while an update is in flight (req != resp)")
	}
	mc.flush()
	tick(e, 2)
	if e.Flows.Lookup(flow) != nil {
		t.Fatal("flow not released after the pending update committed")
	}
}

func TestGatherReplicatesToChildren(t *testing.T) {
	mc := newMockCube(t, 5)
	e := NewEngine(5, 5, DefaultEngineConfig(), mc, nil)
	flow := network.FlowKey{Flow: 800}
	// Two pass-through updates toward different cubes create two children.
	deliver(t, e, updatePacket(flow, isa.OpAdd, 9, -1, 16, mc.geom))
	deliver(t, e, updatePacket(flow, isa.OpAdd, 11, -1, 16, mc.geom))
	tick(e, 2)

	g := network.NewPacket(0, network.GatherReq, 16, 5)
	g.Flow, g.Op = flow, isa.OpAdd
	g.Src = 16
	deliver(t, e, g)
	tick(e, 2)

	replicas := map[int]bool{}
	for _, out := range mc.out {
		if out.Kind == network.GatherReq {
			replicas[out.Dst] = true
		}
	}
	if !replicas[9] || !replicas[11] {
		t.Fatalf("gather replicas missing: %v", replicas)
	}
	// Subtree completes only after both children respond.
	if e.Flows.Lookup(flow) == nil {
		t.Fatal("flow released before children responded")
	}
	for _, child := range []int{9, 11} {
		r := network.NewPacket(0, network.GatherResp, child, 5)
		r.Flow, r.Op, r.Value = flow, isa.OpAdd, 2.5
		r.Src = child
		deliver(t, e, r)
	}
	tick(e, 2)
	if e.Flows.Lookup(flow) != nil {
		t.Fatal("flow not released after all children responded")
	}
	var resp *network.Packet
	for _, out := range mc.out {
		if out.Kind == network.GatherResp {
			resp = out
		}
	}
	if resp == nil || resp.Value != 5 {
		t.Fatalf("aggregated subtree result wrong: %+v", resp)
	}
}

func TestOperandBufferExhaustionStalls(t *testing.T) {
	mc := newMockCube(t, 3)
	cfg := DefaultEngineConfig()
	cfg.OperandBufs = 1
	e := NewEngine(3, 3, cfg, mc, nil)
	flow := network.FlowKey{Flow: 900}
	// Two two-operand updates: the second must stall while the first holds
	// the only buffer (operand responses withheld).
	deliver(t, e, updatePacket(flow, isa.OpMac, 15, 12, 16, mc.geom))
	deliver(t, e, updatePacket(flow, isa.OpMac, 15, 12, 16, mc.geom))
	tick(e, 4)
	if e.Stats.OperandBufStalls == 0 {
		t.Fatal("no operand-buffer stall counted")
	}
	fe := e.Flows.Lookup(flow)
	if fe.ReqCount != 1 {
		t.Fatalf("second update must not commit yet (req=%d)", fe.ReqCount)
	}
	// Free the buffer: answer the first update's operands.
	var tags []uint64
	for _, out := range mc.out {
		if out.Kind == network.OperandReq {
			tags = append(tags, out.Tag)
		}
	}
	e.OperandResp(tags[0], 1, 0)
	e.OperandResp(tags[1], 1, 0)
	tick(e, 4)
	if fe.ReqCount != 2 {
		t.Fatalf("stalled update never committed (req=%d)", fe.ReqCount)
	}
}

func TestFlowTableExhaustionStalls(t *testing.T) {
	mc := newMockCube(t, 3)
	cfg := DefaultEngineConfig()
	cfg.MaxFlows = 1
	e := NewEngine(3, 3, cfg, mc, nil)
	deliver(t, e, updatePacket(network.FlowKey{Flow: 1}, isa.OpAdd, 3, -1, 16, mc.geom))
	deliver(t, e, updatePacket(network.FlowKey{Flow: 2}, isa.OpAdd, 3, -1, 16, mc.geom))
	tick(e, 4)
	if e.Stats.FlowTableStalls == 0 {
		t.Fatal("flow table exhaustion must stall the decoder")
	}
	if e.Flows.Lookup(network.FlowKey{Flow: 2}) != nil {
		t.Fatal("second flow must not be registered")
	}
}

func TestUpdateAfterGatherPanics(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	flow := network.FlowKey{Flow: 1000}
	deliver(t, e, updatePacket(flow, isa.OpAdd, 9, -1, 16, mc.geom))
	tick(e, 2)
	g := network.NewPacket(0, network.GatherReq, 16, 3)
	g.Flow, g.Op = flow, isa.OpAdd
	g.Src = 16
	deliver(t, e, g)
	tick(e, 2)
	// A late update for a gathered flow is an ordering violation the
	// engine must surface loudly.
	deliver(t, e, updatePacket(flow, isa.OpAdd, 9, -1, 16, mc.geom))
	defer func() {
		if recover() == nil {
			t.Fatal("expected ordering-violation panic")
		}
	}()
	tick(e, 2)
}

func TestBypassDisabledAblation(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	e.SetBypass(false)
	pa := addrInCube(mc.geom, 3)
	mc.store.WriteF64(pa, 1)
	deliver(t, e, updatePacket(network.FlowKey{Flow: 1}, isa.OpAdd, 3, -1, 16, mc.geom))
	tick(e, 2)
	if e.Stats.SingleOpBypasses != 0 {
		t.Fatal("bypass should be disabled")
	}
	if e.Stats.PeakOperandInUse != 1 {
		t.Fatal("disabled bypass must consume an operand buffer")
	}
}

func TestVectoredUpdateExpands(t *testing.T) {
	mc := newMockCube(t, 3)
	e := NewEngine(3, 3, DefaultEngineConfig(), mc, nil)
	base := addrInCube(mc.geom, 3)
	for i := 0; i < 4; i++ {
		mc.store.WriteF64(base+mem.PAddr(i*8), float64(i+1))
		mc.store.WriteF64(base+mem.PAddr(32+i*8), 2)
	}
	flow := network.FlowKey{Flow: 1100}
	p := updatePacket(flow, isa.OpMac, 3, 3, 16, mc.geom)
	p.Src1 = base
	p.Src2 = base + 32
	p.Count = 4
	deliver(t, e, p)
	tick(e, 4)
	mc.flush()
	tick(e, 4)

	fe := e.Flows.Lookup(flow)
	if fe.ReqCount != 4 || fe.RespCnt != 4 {
		t.Fatalf("vector expansion counts: %+v", fe)
	}
	// sum of (i+1)*2 for i in 0..3 = 20.
	if fe.Result != 20 {
		t.Fatalf("vector result = %v, want 20", fe.Result)
	}
	if e.Stats.UpdatesCommitted != 4 {
		t.Fatalf("committed %d, want 4 elements", e.Stats.UpdatesCommitted)
	}
}

func TestVectoredUpdateResumesOnBufferExhaustion(t *testing.T) {
	mc := newMockCube(t, 3)
	cfg := DefaultEngineConfig()
	cfg.OperandBufs = 2
	e := NewEngine(3, 3, cfg, mc, nil)
	base := addrInCube(mc.geom, 3)
	flow := network.FlowKey{Flow: 1200}
	p := updatePacket(flow, isa.OpMac, 3, 3, 16, mc.geom)
	p.Src1 = base
	p.Src2 = base + 32
	p.Count = 4
	deliver(t, e, p)
	tick(e, 2)
	fe := e.Flows.Lookup(flow)
	if fe.ReqCount != 2 {
		t.Fatalf("expected partial expansion with 2 buffers, got req=%d", fe.ReqCount)
	}
	if e.Stats.OperandBufStalls == 0 {
		t.Fatal("no stall counted for mid-vector buffer exhaustion")
	}
	mc.flush() // free the first two buffers
	tick(e, 4)
	mc.flush()
	tick(e, 4)
	if fe.ReqCount != 4 || fe.RespCnt != 4 {
		t.Fatalf("vector never finished: %+v", fe)
	}
}

func TestEnergyAwarePolicyPicksNearestPort(t *testing.T) {
	c, _, _ := newCoord(PolicyEnergyAware)
	// Hop metric: port i entry cube = 4i; distance = |entry - cube|.
	c.SetDistanceFn(func(port, cube int) int {
		d := 4*port - cube
		if d < 0 {
			d = -d
		}
		return d
	})
	// Both operands near cube 12 -> port 3.
	if got := c.portFor(UpdateCmd{Op: isa.OpMac, Src1: addrOnCube(12), Src2: addrOnCube(13)}); got != 3 {
		t.Fatalf("energy policy picked port %d, want 3", got)
	}
	// Operands split between cubes 0 and 4 -> port 0 or 1 (cost 4), ties
	// break low. Cube 0's address uses the second stripe: physical address
	// zero is the no-operand sentinel.
	cube0 := mem.PAddr(16 * mem.PageSize)
	if got := c.portFor(UpdateCmd{Op: isa.OpMac, Src1: cube0, Src2: addrOnCube(4)}); got != 0 {
		t.Fatalf("energy policy tie-break picked port %d, want 0", got)
	}
}

func TestEnergyAwareFallbackWithoutMetric(t *testing.T) {
	c, _, _ := newCoord(PolicyEnergyAware)
	if got := c.portFor(UpdateCmd{Op: isa.OpAdd, Src1: addrOnCube(9)}); got != 2 {
		t.Fatalf("fallback picked port %d, want address-policy port 2", got)
	}
}
