// Package core implements the paper's primary contribution: the
// Active-Routing Engine (ARE) placed in each HMC logic layer (§3.2) and the
// flow coordinator that the Message Interface runtime uses to drive the
// three-phase processing of §3.3 (tree construction, near-data processing,
// and in-network reduction along the Active-Routing tree).
package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
)

// FlowEntry is one Active Flow Table entry, mirroring Table 3.1 / Fig 3.3(b)
// field for field:
//
//	flowID         -> Key.Flow (plus the forest tree index)
//	opcode         -> Opcode
//	result         -> Result
//	req_counter    -> ReqCount
//	resp_counter   -> RespCount
//	parent         -> Parent (upstream node id; the controller for the root)
//	children flags -> Children (downstream node set)
//	Gflag          -> Gflag
type FlowEntry struct {
	Key      network.FlowKey
	Opcode   isa.ALUOp
	Result   float64
	ReqCount uint64 // updates that commit at this node
	RespCnt  uint64 // updates committed (processed) at this node
	Parent   int    // node id the first update arrived from
	// Children is the downstream node set in first-recorded order. A small
	// slice replaces the historical map: child counts are bounded by the
	// router degree, membership tests are a short linear scan, and — unlike
	// a map range — replication order is deterministic.
	Children []int
	Gflag    bool

	// pendingChildren counts children whose gather response is still
	// outstanding after the gather request was replicated.
	pendingChildren int
	gatherReplSent  bool
	completionQd    bool
}

// NewFlowEntry registers a fresh entry for key with the reduction identity
// as its initial result.
func NewFlowEntry(key network.FlowKey, op isa.ALUOp, parent int) *FlowEntry {
	return &FlowEntry{ //ar:exempt(hotpath) one entry per flow registration (control path), recycled through the table free list
		Key:    key,
		Opcode: op,
		Result: op.Identity(),
		Parent: parent,
	}
}

// AddChild records a downstream edge (idempotent).
func (fe *FlowEntry) AddChild(node int) {
	for _, c := range fe.Children {
		if c == node {
			return
		}
	}
	fe.Children = append(fe.Children, node) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
}

// LocalDone reports whether every update that committed to this node has
// been processed.
func (fe *FlowEntry) LocalDone() bool { return fe.ReqCount == fe.RespCnt }

// Complete reports whether the subtree rooted at this node has finished:
// the gather wave arrived, local NDP is done and every child subtree has
// reported (Fig 3.4(c)/(d) condition "req_count == resp_count && Gflag").
func (fe *FlowEntry) Complete() bool {
	return fe.Gflag && fe.gatherReplSent && fe.LocalDone() && fe.pendingChildren == 0
}

// FlowTable is the Active Flow Table of Fig 3.3(a): the set of concurrently
// live flows (one tree node each) in one cube's ARE.
type FlowTable struct {
	entries map[network.FlowKey]*FlowEntry
	free    []*FlowEntry // recycled entries (Children arrays retained)
	cap     int

	// Peak tracks the high-water mark of concurrent flows, reported by the
	// flow-table capacity ablation.
	Peak int
	// Registered counts total entries ever created.
	Registered uint64
}

// NewFlowTable creates a table with the given capacity (entries).
func NewFlowTable(capacity int) *FlowTable {
	if capacity <= 0 {
		capacity = 64
	}
	return &FlowTable{entries: make(map[network.FlowKey]*FlowEntry), cap: capacity}
}

// Lookup returns the entry for key, or nil.
func (t *FlowTable) Lookup(key network.FlowKey) *FlowEntry { return t.entries[key] }

// Full reports whether no entry can be registered.
func (t *FlowTable) Full() bool { return len(t.entries) >= t.cap }

// Size returns the live entry count.
func (t *FlowTable) Size() int { return len(t.entries) }

// Register creates an entry; it panics if the key exists or the table is
// full (callers must check Full first — the ARE stalls instead).
func (t *FlowTable) Register(key network.FlowKey, op isa.ALUOp, parent int) *FlowEntry {
	if t.Full() {
		panic("core: flow table overflow")
	}
	if _, ok := t.entries[key]; ok {
		panic(fmt.Sprintf("core: duplicate flow registration %+v", key))
	}
	var fe *FlowEntry
	if n := len(t.free); n > 0 {
		fe = t.free[n-1]
		t.free = t.free[:n-1]
		*fe = FlowEntry{Key: key, Opcode: op, Result: op.Identity(), Parent: parent,
			Children: fe.Children[:0]}
	} else {
		fe = NewFlowEntry(key, op, parent)
	}
	t.entries[key] = fe
	t.Registered++
	if len(t.entries) > t.Peak {
		t.Peak = len(t.entries)
	}
	return fe
}

// Release frees the entry for key (end of gather phase at this node) and
// recycles the record.
func (t *FlowTable) Release(key network.FlowKey) {
	fe, ok := t.entries[key]
	if !ok {
		panic(fmt.Sprintf("core: releasing unknown flow %+v", key))
	}
	delete(t.entries, key)
	t.free = append(t.free, fe) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
}

// OperandEntry is one operand buffer entry, mirroring Fig 3.3(c): the flow
// it belongs to plus two operand value/ready pairs. Single-operand
// reductions bypass the buffer pool (§3.2.3) but reuse the same structure
// for in-flight tracking.
type OperandEntry struct {
	Key    network.FlowKey
	Op     isa.ALUOp
	Addr1  mem.PAddr
	Addr2  mem.PAddr
	Val1   float64
	Val2   float64
	Ready1 bool
	Ready2 bool

	need2    bool
	sent1    bool
	sent2    bool
	buffered bool // occupies a pool slot (two-operand path)
	tag1     uint64
	tag2     uint64

	injectCycle uint64
	arriveCycle uint64
	issueCycle  uint64
}

// ready reports whether every needed operand has arrived.
func (oe *OperandEntry) ready() bool {
	if !oe.Ready1 {
		return false
	}
	return !oe.need2 || oe.Ready2
}

// sent reports whether every needed operand request has been issued.
func (oe *OperandEntry) sent() bool {
	if !oe.sent1 {
		return false
	}
	return !oe.need2 || oe.sent2
}
