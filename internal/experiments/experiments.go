// Package experiments regenerates every table and figure of the thesis's
// evaluation (Chapter 5): it runs the workload × scheme cross product on
// the simulated machine and derives the exact series each figure plots.
// EXPERIMENTS.md records paper-vs-measured for each one.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// Key identifies one run.
type Key struct {
	Workload string
	Scheme   system.Scheme
}

// Suite holds the results of a workload × scheme cross product; every
// figure derives from these runs.
type Suite struct {
	Scale     workload.Scale
	Workloads []string
	Schemes   []system.Scheme
	Results   map[Key]*system.Results
}

// Configure tweaks the per-run configuration before a suite run (used by
// ablation benchmarks); nil means defaults. It is the same mutator type
// the sweep axes use, so axis values and suite configurators interchange.
type Configure = sweep.Mutator

// RunSuite executes every (workload, scheme) pair, in parallel across
// available CPUs. Every run's final memory state is verified against the
// workload reference; any mismatch fails the suite.
func RunSuite(scale workload.Scale, workloads []string, schemes []system.Scheme, conf Configure) (*Suite, error) {
	return RunSuiteCtx(context.Background(), scale, workloads, schemes, conf)
}

// RunSuiteCtx is RunSuite on the sweep worker pool: runs are scheduled on
// bounded workers, the first failing run (or a cancelled ctx) cancels the
// pool, and queued runs never start — a failed suite aborts promptly
// instead of simulating the remaining cross product to completion.
func RunSuiteCtx(ctx context.Context, scale workload.Scale, workloads []string, schemes []system.Scheme, conf Configure) (*Suite, error) {
	s := &Suite{
		Scale:     scale,
		Workloads: workloads,
		Schemes:   schemes,
		Results:   make(map[Key]*system.Results),
	}
	keys := make([]Key, 0, len(workloads)*len(schemes))
	for _, wl := range workloads {
		for _, sch := range schemes {
			keys = append(keys, Key{wl, sch})
		}
	}
	results := make([]*system.Results, len(keys))
	err := sweep.RunJobs(ctx, len(keys), 0, func(ctx context.Context, i int) error {
		k := keys[i]
		cfg := system.DefaultConfig(k.Scheme)
		if conf != nil {
			conf(&cfg)
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", k.Scheme, k.Workload, err)
		}
		sys, err := system.New(cfg, k.Workload, scale)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", k.Scheme, k.Workload, err)
		}
		r, err := sys.RunCtx(ctx)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", k.Scheme, k.Workload, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		s.Results[k] = results[i]
	}
	return s, nil
}

// Get returns the run for (workload, scheme); it panics if the suite did
// not include it.
func (s *Suite) Get(wl string, sch system.Scheme) *system.Results {
	r, ok := s.Results[Key{wl, sch}]
	if !ok {
		panic(fmt.Sprintf("experiments: suite has no run for %s/%s", sch, wl))
	}
	return r
}

// gmean returns the geometric mean of positive values. A non-positive or
// non-finite value is an error — silently collapsing the whole mean to 0
// (the old behavior) corrupted every derived gmean row downstream.
func gmean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("gmean of empty set")
	}
	acc := 0.0
	for i, v := range vs {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("gmean: value %d is %v (want positive finite)", i, v)
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(vs))), nil
}

// normalize divides v by base, rejecting the zero/non-finite denominators
// that previously leaked NaN/Inf into the normalized figure tables.
func normalize(what, wl string, v, base float64) (float64, error) {
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return 0, fmt.Errorf("experiments: %s: zero or non-finite %s baseline for %s", what, what, wl)
	}
	return v / base, nil
}

// SpeedupTable is Fig 5.1: runtime speedup over the DRAM baseline.
type SpeedupTable struct {
	Workloads []string
	Schemes   []system.Scheme
	// Speedup[w][s] = cycles(DRAM) / cycles(scheme s) for workload w.
	Speedup [][]float64
	// GMean[s] is the geometric mean across workloads.
	GMean []float64
}

// Fig51 derives the Fig 5.1 speedup bars from a suite.
func Fig51(s *Suite) (*SpeedupTable, error) {
	t := &SpeedupTable{Workloads: s.Workloads, Schemes: s.Schemes}
	t.Speedup = make([][]float64, len(s.Workloads))
	for wi, wl := range s.Workloads {
		base := float64(s.Get(wl, system.SchemeDRAM).Cycles)
		if base == 0 {
			return nil, fmt.Errorf("experiments: Fig 5.1: zero DRAM cycle baseline for %s", wl)
		}
		row := make([]float64, len(s.Schemes))
		for si, sch := range s.Schemes {
			c := float64(s.Get(wl, sch).Cycles)
			if c == 0 {
				return nil, fmt.Errorf("experiments: Fig 5.1: zero cycle count for %s/%s", sch, wl)
			}
			row[si] = base / c
		}
		t.Speedup[wi] = row
	}
	t.GMean = make([]float64, len(s.Schemes))
	for si, sch := range s.Schemes {
		col := make([]float64, len(s.Workloads))
		for wi := range s.Workloads {
			col[wi] = t.Speedup[wi][si]
		}
		g, err := gmean(col)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig 5.1 %s speedup: %w", sch, err)
		}
		t.GMean[si] = g
	}
	return t, nil
}

// Print renders the table in the paper's layout.
func (t *SpeedupTable) Print(w io.Writer) {
	fmt.Fprintf(w, "%-12s", "workload")
	for _, sch := range t.Schemes {
		fmt.Fprintf(w, "%12s", sch)
	}
	fmt.Fprintln(w)
	for wi, wl := range t.Workloads {
		fmt.Fprintf(w, "%-12s", wl)
		for si := range t.Schemes {
			fmt.Fprintf(w, "%12.2f", t.Speedup[wi][si])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "gmean")
	for _, g := range t.GMean {
		fmt.Fprintf(w, "%12.2f", g)
	}
	fmt.Fprintln(w)
}

// LatencyTable is Fig 5.2: update roundtrip latency split into request,
// stall and response components (cycles).
type LatencyTable struct {
	Workloads []string
	Schemes   []system.Scheme
	Req       [][]float64
	Stall     [][]float64
	Resp      [][]float64
}

// Fig52 derives the Fig 5.2 latency breakdown for the Active-Routing
// schemes in the suite.
func Fig52(s *Suite) *LatencyTable {
	var schemes []system.Scheme
	for _, sch := range s.Schemes {
		if sch.Active() {
			schemes = append(schemes, sch)
		}
	}
	t := &LatencyTable{Workloads: s.Workloads, Schemes: schemes}
	for _, wl := range s.Workloads {
		var req, stall, resp []float64
		for _, sch := range schemes {
			r, st, rp := s.Get(wl, sch).Breakdown.Means()
			req = append(req, r)
			stall = append(stall, st)
			resp = append(resp, rp)
		}
		t.Req = append(t.Req, req)
		t.Stall = append(t.Stall, stall)
		t.Resp = append(t.Resp, resp)
	}
	return t
}

// Print renders the stacked-bar data.
func (t *LatencyTable) Print(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-10s %10s %10s %10s %10s\n", "workload", "scheme", "req", "stall", "resp", "total")
	for wi, wl := range t.Workloads {
		for si, sch := range t.Schemes {
			fmt.Fprintf(w, "%-12s %-10s %10.1f %10.1f %10.1f %10.1f\n",
				wl, sch, t.Req[wi][si], t.Stall[wi][si], t.Resp[wi][si],
				t.Req[wi][si]+t.Stall[wi][si]+t.Resp[wi][si])
		}
	}
}

// HeatmapSet is Fig 5.3: per-cube operand-buffer stalls, update
// distribution and operand distribution for lud under ARF-tid and
// ARF-addr, plus the imbalance figure of merit.
type HeatmapSet struct {
	Scheme  system.Scheme
	Stalls  []uint64
	Updates []uint64
	Operand []uint64
}

// Fig53 derives the lud heatmaps from a suite containing lud runs.
func Fig53(s *Suite) []HeatmapSet {
	var out []HeatmapSet
	for _, sch := range []system.Scheme{system.SchemeARFtid, system.SchemeARFaddr} {
		r := s.Get("lud", sch)
		out = append(out, HeatmapSet{
			Scheme:  sch,
			Stalls:  append([]uint64(nil), r.StallHeat.Cells...),
			Updates: append([]uint64(nil), r.UpdatesHeat.Cells...),
			Operand: append([]uint64(nil), r.OperandHeat.Cells...),
		})
	}
	return out
}

// PrintHeatmaps renders the Fig 5.3 grids. Cube c prints at row c/4,
// column c%4; the four controller ports attach at the left-edge cubes
// 0, 4, 8, 12 (DESIGN.md notes this cosmetic deviation from "4 corners").
func PrintHeatmaps(w io.Writer, sets []HeatmapSet) {
	grid := func(cells []uint64) string {
		var b strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&b, "%9d", c)
			if (i+1)%4 == 0 {
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	imb := func(cells []uint64) float64 {
		var max, sum uint64
		for _, c := range cells {
			sum += c
			if c > max {
				max = c
			}
		}
		if sum == 0 {
			return 0
		}
		return float64(max) * float64(len(cells)) / float64(sum)
	}
	for _, set := range sets {
		fmt.Fprintf(w, "--- %s (lud)\n", set.Scheme)
		fmt.Fprintf(w, "operand buffer stalls (imbalance %.2f):\n%s", imb(set.Stalls), grid(set.Stalls))
		fmt.Fprintf(w, "update distribution (imbalance %.2f):\n%s", imb(set.Updates), grid(set.Updates))
		fmt.Fprintf(w, "operand distribution (imbalance %.2f):\n%s", imb(set.Operand), grid(set.Operand))
	}
}

// MovementTable is Fig 5.4: off-chip data movement normalized to the HMC
// baseline, split into normal/active request/response bytes.
type MovementTable struct {
	Workloads []string
	Schemes   []system.Scheme
	// Fractions[w][s] are the four components, each normalized by the HMC
	// run's total movement for workload w.
	NormReq    [][]float64
	ActiveReq  [][]float64
	NormResp   [][]float64
	ActiveResp [][]float64
}

// Fig54 derives the Fig 5.4 movement breakdown (HMC-based schemes only).
// A workload whose HMC baseline moved zero bytes cannot be normalized and
// fails the derivation instead of emitting NaN/Inf bars.
func Fig54(s *Suite) (*MovementTable, error) {
	var schemes []system.Scheme
	for _, sch := range s.Schemes {
		if sch != system.SchemeDRAM {
			schemes = append(schemes, sch)
		}
	}
	t := &MovementTable{Workloads: s.Workloads, Schemes: schemes}
	for _, wl := range s.Workloads {
		base := float64(s.Get(wl, system.SchemeHMC).Movement.Total())
		var nr, ar, np, ap []float64
		for _, sch := range schemes {
			m := s.Get(wl, sch).Movement
			v, err := normalize("movement", wl, float64(m.NormReq), base)
			if err != nil {
				return nil, err
			}
			nr = append(nr, v)
			ar = append(ar, float64(m.ActiveReq)/base)
			np = append(np, float64(m.NormResp)/base)
			ap = append(ap, float64(m.ActiveResp)/base)
		}
		t.NormReq = append(t.NormReq, nr)
		t.ActiveReq = append(t.ActiveReq, ar)
		t.NormResp = append(t.NormResp, np)
		t.ActiveResp = append(t.ActiveResp, ap)
	}
	return t, nil
}

// Total returns the normalized total movement for (workload index, scheme
// index).
func (t *MovementTable) Total(wi, si int) float64 {
	return t.NormReq[wi][si] + t.ActiveReq[wi][si] + t.NormResp[wi][si] + t.ActiveResp[wi][si]
}

// Print renders the stacked-bar data.
func (t *MovementTable) Print(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-10s %9s %10s %10s %11s %8s\n",
		"workload", "scheme", "norm_req", "active_req", "norm_resp", "active_resp", "total")
	for wi, wl := range t.Workloads {
		for si, sch := range t.Schemes {
			fmt.Fprintf(w, "%-12s %-10s %9.3f %10.3f %10.3f %11.3f %8.3f\n",
				wl, sch, t.NormReq[wi][si], t.ActiveReq[wi][si],
				t.NormResp[wi][si], t.ActiveResp[wi][si], t.Total(wi, si))
		}
	}
}

// EnergyTable covers Figs 5.5 (power), 5.6 (energy) and 5.7 (EDP), each
// normalized to the DRAM baseline.
type EnergyTable struct {
	Workloads []string
	Schemes   []system.Scheme
	// Per workload × scheme, components normalized to the DRAM total.
	Cache   [][]float64
	Memory  [][]float64
	Network [][]float64
	EDP     [][]float64
	EDPGM   []float64
}

// Fig55to57 derives the power/energy/EDP figures. power selects Fig 5.5's
// time-normalized view; otherwise components are energies (Fig 5.6). Zero
// DRAM baselines (energy, power or EDP) fail the derivation instead of
// emitting NaN/Inf rows.
func Fig55to57(s *Suite, asPower bool) (*EnergyTable, error) {
	t := &EnergyTable{Workloads: s.Workloads, Schemes: s.Schemes}
	for _, wl := range s.Workloads {
		dram := s.Get(wl, system.SchemeDRAM)
		baseE := dram.Energy.Total()
		baseP := dram.PowerW.Total()
		baseEDP := dram.EDP
		var ca, me, ne, ed []float64
		for _, sch := range s.Schemes {
			r := s.Get(wl, sch)
			if asPower {
				v, err := normalize("power", wl, r.PowerW.CacheJ, baseP)
				if err != nil {
					return nil, err
				}
				ca = append(ca, v)
				me = append(me, r.PowerW.MemoryJ/baseP)
				ne = append(ne, r.PowerW.NetworkJ/baseP)
			} else {
				v, err := normalize("energy", wl, r.Energy.CacheJ, baseE)
				if err != nil {
					return nil, err
				}
				ca = append(ca, v)
				me = append(me, r.Energy.MemoryJ/baseE)
				ne = append(ne, r.Energy.NetworkJ/baseE)
			}
			v, err := normalize("EDP", wl, r.EDP, baseEDP)
			if err != nil {
				return nil, err
			}
			ed = append(ed, v)
		}
		t.Cache = append(t.Cache, ca)
		t.Memory = append(t.Memory, me)
		t.Network = append(t.Network, ne)
		t.EDP = append(t.EDP, ed)
	}
	t.EDPGM = make([]float64, len(s.Schemes))
	for si, sch := range s.Schemes {
		col := make([]float64, len(s.Workloads))
		for wi := range s.Workloads {
			col[wi] = t.EDP[wi][si]
		}
		g, err := gmean(col)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig 5.5-5.7 %s EDP: %w", sch, err)
		}
		t.EDPGM[si] = g
	}
	return t, nil
}

// Print renders the normalized component bars plus the EDP row.
func (t *EnergyTable) Print(w io.Writer, label string) {
	fmt.Fprintf(w, "%-12s %-10s %9s %9s %9s %9s %9s\n",
		"workload", "scheme", "cache", "memory", "network", "total", "EDP")
	for wi, wl := range t.Workloads {
		for si, sch := range t.Schemes {
			total := t.Cache[wi][si] + t.Memory[wi][si] + t.Network[wi][si]
			fmt.Fprintf(w, "%-12s %-10s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				wl, sch, t.Cache[wi][si], t.Memory[wi][si], t.Network[wi][si], total, t.EDP[wi][si])
		}
	}
	fmt.Fprintf(w, "EDP gmean (%s):", label)
	for si, sch := range t.Schemes {
		fmt.Fprintf(w, "  %s=%.3f", sch, t.EDPGM[si])
	}
	fmt.Fprintln(w)
}

// Fig58Result is the §5.4 dynamic offloading case study: aggregate IPC
// traces for HMC, ARF-tid and ARF-tid-adaptive on the phase-varying LU
// workload, plus final speedups over HMC.
type Fig58Result struct {
	Schemes []system.Scheme
	// Traces[s] is (cumulative instructions, window IPC) for scheme s.
	Traces  [][]IPCSample
	Speedup []float64 // over HMC, per scheme
}

// IPCSample is one Fig 5.8 sample point.
type IPCSample struct {
	MInsts float64 // cumulative instructions, millions
	IPC    float64
}

// Fig58Schemes lists the case study's schemes in trace order.
func Fig58Schemes() []system.Scheme {
	return []system.Scheme{system.SchemeHMC, system.SchemeARFtid, system.SchemeARFtidAdaptive}
}

// Fig58 runs the case study at the given scale.
func Fig58(scale workload.Scale) (*Fig58Result, error) {
	schemes := Fig58Schemes()
	runs := make([]*system.Results, len(schemes))
	for i, sch := range schemes {
		cfg := system.DefaultConfig(sch)
		sys, err := system.New(cfg, "lud_phase", scale)
		if err != nil {
			return nil, err
		}
		if runs[i], err = sys.Run(); err != nil {
			return nil, err
		}
	}
	return Fig58From(schemes, runs)
}

// Fig58From derives the case study tables from completed lud_phase runs,
// one per scheme in order. The direct Fig58 path and the service layer's
// cache-resolved /figures/5.8 path share this derivation, so a fix here
// reaches both. Speedups derive only after every run completed: an earlier
// version read the HMC cycle count before it was guaranteed set, so any
// scheme ordered ahead of HMC got 0/cycles = +Inf.
func Fig58From(schemes []system.Scheme, runs []*system.Results) (*Fig58Result, error) {
	if len(runs) != len(schemes) {
		return nil, fmt.Errorf("experiments: Fig 5.8: %d runs for %d schemes", len(runs), len(schemes))
	}
	out := &Fig58Result{Schemes: schemes}
	cycles := make([]uint64, len(schemes))
	for i, r := range runs {
		var tr []IPCSample
		for _, p := range r.IPCTrace {
			tr = append(tr, IPCSample{MInsts: float64(p.Insts) / 1e6, IPC: p.IPC})
		}
		out.Traces = append(out.Traces, tr)
		cycles[i] = r.Cycles
	}
	sp, err := fig58Speedups(schemes, cycles)
	if err != nil {
		return nil, err
	}
	out.Speedup = sp
	return out, nil
}

// fig58Speedups derives per-scheme speedups over the HMC baseline from the
// completed runs' cycle counts, in any scheme order.
func fig58Speedups(schemes []system.Scheme, cycles []uint64) ([]float64, error) {
	var hmc float64
	for i, sch := range schemes {
		if sch == system.SchemeHMC {
			hmc = float64(cycles[i])
		}
	}
	if hmc == 0 {
		return nil, fmt.Errorf("experiments: Fig 5.8: no HMC baseline run (or zero cycles)")
	}
	sp := make([]float64, len(schemes))
	for i, sch := range schemes {
		if cycles[i] == 0 {
			return nil, fmt.Errorf("experiments: Fig 5.8: zero cycle count for %s", sch)
		}
		sp[i] = hmc / float64(cycles[i])
	}
	return sp, nil
}

// Print renders the traces and speedup bars.
func (f *Fig58Result) Print(w io.Writer) {
	for si, sch := range f.Schemes {
		fmt.Fprintf(w, "--- %s IPC trace (Minsts, IPC)\n", sch)
		step := len(f.Traces[si])/16 + 1
		for i := 0; i < len(f.Traces[si]); i += step {
			p := f.Traces[si][i]
			fmt.Fprintf(w, "  %8.3f %6.2f\n", p.MInsts, p.IPC)
		}
	}
	fmt.Fprintf(w, "speedup over HMC:")
	for si, sch := range f.Schemes {
		fmt.Fprintf(w, "  %s=%.2fx", sch, f.Speedup[si])
	}
	fmt.Fprintln(w)
}

// Table41 renders the Table 4.1 system configuration actually simulated.
func Table41(w io.Writer) {
	cfg := system.DefaultConfig(system.SchemeARFtid)
	rows := [][2]string{
		{"CPU Core", fmt.Sprintf("%d O3cores @ 2 GHz, issue/commit width %d, ROB %d",
			cfg.Threads, cfg.Core.IssueWidth, cfg.Core.ROBSize)},
		{"L1 D-Cache", fmt.Sprintf("private, %d KB, %d-way (scaled from 16 KB with inputs)",
			cfg.L1.SizeBytes>>10, cfg.L1.Ways)},
		{"L2 Cache", fmt.Sprintf("S-NUCA, %d KB total over 16 banks, %d-way, MESI directory (scaled from 16 MB)",
			16*cfg.L2.BankSizeBytes>>10, cfg.L2.Ways)},
		{"NoC", "4x4 mesh, 4 MCs at 4 corners"},
		{"DRAM baseline", fmt.Sprintf("%d MCs, %d ranks/channel, %d banks/rank, tRCD=%d tRAS=%d tRP=%d tCL=%d tBL=%d",
			cfg.DRAMGeom.Channels, cfg.DRAMGeom.RanksPerChan, cfg.DRAMGeom.BanksPerRank,
			cfg.DRAMTiming.RCD, cfg.DRAMTiming.RAS, cfg.DRAMTiming.RP, cfg.DRAMTiming.CL, cfg.DRAMTiming.BL)},
		{"HMC", fmt.Sprintf("%d cubes, %d vaults/cube, %d banks/vault",
			cfg.HMCGeom.Cubes, cfg.HMCGeom.VaultsPerCube, cfg.HMCGeom.BanksPerVault)},
		{"HMC-Net", fmt.Sprintf("16-cube dragonfly, 4 controllers, minimal routing, virtual cut-through, %d B/cycle links, crossbar @ 1 GHz",
			cfg.MemNet.LinkBandwidth)},
		{"ARE", fmt.Sprintf("flow table %d, operand buffers %d, decode %d/cycle, ALU %d/cycle",
			cfg.ARE.MaxFlows, cfg.ARE.OperandBufs, cfg.ARE.DecodeRate, cfg.ARE.ALURate)},
	}
	fmt.Fprintln(w, "Table 4.1: System Configurations (as simulated)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %s\n", r[0], r[1])
	}
}

// SortedKeys lists the suite's runs deterministically (tooling).
func (s *Suite) SortedKeys() []Key {
	keys := make([]Key, 0, len(s.Results))
	for k := range s.Results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Workload != keys[j].Workload {
			return keys[i].Workload < keys[j].Workload
		}
		return keys[i].Scheme < keys[j].Scheme
	})
	return keys
}
