package experiments

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// microSuite runs the microbenchmarks at tiny scale once per test binary.
var microSuiteCache *Suite

func microSuite(t *testing.T) *Suite {
	t.Helper()
	if microSuiteCache == nil {
		s, err := RunSuite(workload.ScaleTiny, workload.Microbenchmarks(), system.Schemes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		microSuiteCache = s
	}
	return microSuiteCache
}

func TestFig51Structure(t *testing.T) {
	s := microSuite(t)
	tab, err := Fig51(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Speedup) != 4 || len(tab.Speedup[0]) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Speedup), len(tab.Speedup[0]))
	}
	for wi := range tab.Speedup {
		if tab.Speedup[wi][0] != 1.0 {
			t.Fatalf("DRAM speedup over itself must be 1.0, got %v", tab.Speedup[wi][0])
		}
		for si := range tab.Speedup[wi] {
			if tab.Speedup[wi][si] <= 0 {
				t.Fatal("non-positive speedup")
			}
		}
	}
	if tab.GMean[0] != 1.0 {
		t.Fatalf("DRAM gmean = %v", tab.GMean[0])
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "gmean") {
		t.Fatal("rendered table missing gmean row")
	}
}

func TestFig52Structure(t *testing.T) {
	s := microSuite(t)
	tab := Fig52(s)
	if len(tab.Schemes) != 3 {
		t.Fatalf("latency table must cover the 3 AR schemes, got %d", len(tab.Schemes))
	}
	for wi := range tab.Req {
		for si := range tab.Req[wi] {
			if tab.Req[wi][si] < 0 || tab.Resp[wi][si] <= 0 {
				t.Fatalf("latency components implausible at %d/%d", wi, si)
			}
		}
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "stall") {
		t.Fatal("render missing stall column")
	}
}

func TestFig54Structure(t *testing.T) {
	s := microSuite(t)
	tab, err := Fig54(s)
	if err != nil {
		t.Fatal(err)
	}
	// HMC normalized to itself: totals must be 1.0.
	for wi := range tab.Workloads {
		if diff := tab.Total(wi, 0) - 1.0; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("HMC total for %s = %v, want 1.0", tab.Workloads[wi], tab.Total(wi, 0))
		}
		// The HMC baseline has no active traffic.
		if tab.ActiveReq[wi][0] != 0 || tab.ActiveResp[wi][0] != 0 {
			t.Fatal("HMC row has active components")
		}
	}
}

func TestFig55to57Structure(t *testing.T) {
	s := microSuite(t)
	e, err := Fig55to57(s, false)
	if err != nil {
		t.Fatal(err)
	}
	for wi := range e.Workloads {
		// DRAM normalized to itself.
		total := e.Cache[wi][0] + e.Memory[wi][0] + e.Network[wi][0]
		if total < 0.999 || total > 1.001 {
			t.Fatalf("DRAM energy total = %v, want 1.0", total)
		}
		if e.Network[wi][0] != 0 {
			t.Fatal("DRAM has no network energy")
		}
		if e.EDP[wi][0] != 1.0 {
			t.Fatalf("DRAM EDP = %v", e.EDP[wi][0])
		}
	}
	p, err := Fig55to57(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.EDPGM[0] != 1.0 {
		t.Fatal("power table EDP gmean for DRAM must be 1.0")
	}
}

func TestFig53Heatmaps(t *testing.T) {
	s, err := RunSuite(workload.ScaleTiny, []string{"lud"},
		[]system.Scheme{system.SchemeDRAM, system.SchemeHMC, system.SchemeARFtid, system.SchemeARFaddr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets := Fig53(s)
	if len(sets) != 2 {
		t.Fatalf("want ARF-tid and ARF-addr sets, got %d", len(sets))
	}
	for _, set := range sets {
		if len(set.Updates) != 16 {
			t.Fatal("heatmap must have 16 cells")
		}
		var total uint64
		for _, c := range set.Updates {
			total += c
		}
		if total == 0 {
			t.Fatalf("%s: empty update heatmap", set.Scheme)
		}
	}
	var buf bytes.Buffer
	PrintHeatmaps(&buf, sets)
	if !strings.Contains(buf.String(), "operand buffer stalls") {
		t.Fatal("heatmap render incomplete")
	}
}

func TestFig58CaseStudy(t *testing.T) {
	res, err := Fig58(workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 3 {
		t.Fatalf("want 3 traces, got %d", len(res.Traces))
	}
	if res.Speedup[0] != 1.0 {
		t.Fatalf("HMC speedup over itself = %v", res.Speedup[0])
	}
	for i, tr := range res.Traces {
		if len(tr) == 0 {
			t.Fatalf("trace %d empty", i)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "speedup over HMC") {
		t.Fatal("case study render incomplete")
	}
}

func TestTable41Renders(t *testing.T) {
	var buf bytes.Buffer
	Table41(&buf)
	for _, want := range []string{"O3cores", "dragonfly", "banks/vault", "flow table"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 4.1 render missing %q", want)
		}
	}
}

func TestSuiteAccessors(t *testing.T) {
	s := microSuite(t)
	keys := s.SortedKeys()
	if len(keys) != len(s.Results) {
		t.Fatal("sorted keys incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get of missing run must panic")
		}
	}()
	s.Get("nonexistent", system.SchemeDRAM)
}

func TestGMean(t *testing.T) {
	g, err := gmean([]float64{2, 8})
	if err != nil || g != 4 {
		t.Fatalf("gmean(2,8) = %v, %v", g, err)
	}
	// Degenerate inputs are errors now, not a silent 0 that collapses the
	// whole mean.
	for _, vs := range [][]float64{nil, {0, 1}, {-2, 4}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := gmean(vs); err == nil {
			t.Fatalf("gmean(%v) accepted", vs)
		}
	}
}

// fakeSuite builds a suite from hand-made results (zero-denominator tests).
func fakeSuite(workloads []string, schemes []system.Scheme, make_ func(wl string, sch system.Scheme) *system.Results) *Suite {
	s := &Suite{Workloads: workloads, Schemes: schemes, Results: map[Key]*system.Results{}}
	for _, wl := range workloads {
		for _, sch := range schemes {
			s.Results[Key{wl, sch}] = make_(wl, sch)
		}
	}
	return s
}

// TestFig54ZeroBaselineErrors: a workload whose HMC run moved zero bytes
// must fail the derivation, not emit NaN/Inf bars.
func TestFig54ZeroBaselineErrors(t *testing.T) {
	s := fakeSuite([]string{"w"}, []system.Scheme{system.SchemeHMC},
		func(wl string, sch system.Scheme) *system.Results {
			return &system.Results{Scheme: sch, Workload: wl} // zero movement
		})
	if _, err := Fig54(s); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("zero HMC movement accepted: %v", err)
	}
}

// TestFig55to57ZeroBaselineErrors: zero DRAM energy/power/EDP baselines
// must fail the derivation.
func TestFig55to57ZeroBaselineErrors(t *testing.T) {
	s := fakeSuite([]string{"w"}, []system.Scheme{system.SchemeDRAM},
		func(wl string, sch system.Scheme) *system.Results {
			return &system.Results{Scheme: sch, Workload: wl} // zero energy/EDP
		})
	if _, err := Fig55to57(s, false); err == nil {
		t.Fatal("zero DRAM energy baseline accepted")
	}
	if _, err := Fig55to57(s, true); err == nil {
		t.Fatal("zero DRAM power baseline accepted")
	}
}

// TestFig58SpeedupDerivation pins the reordering bug: speedups derive from
// the completed cycle counts whatever position HMC holds in the scheme
// slice — the old code read the HMC baseline before it was set, yielding
// +Inf for schemes ordered ahead of it.
func TestFig58SpeedupDerivation(t *testing.T) {
	schemes := []system.Scheme{system.SchemeARFtid, system.SchemeHMC, system.SchemeARFtidAdaptive}
	sp, err := fig58Speedups(schemes, []uint64{500, 1000, 250})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 4}
	for i := range sp {
		if sp[i] != want[i] {
			t.Fatalf("speedup[%d] = %v, want %v", i, sp[i], want[i])
		}
		if math.IsInf(sp[i], 0) || math.IsNaN(sp[i]) {
			t.Fatalf("speedup[%d] non-finite", i)
		}
	}
	if _, err := fig58Speedups([]system.Scheme{system.SchemeARFtid}, []uint64{500}); err == nil {
		t.Fatal("missing HMC baseline accepted")
	}
}

// TestFig58TraceFinite asserts the Fig 5.8 acceptance properties at
// ScaleTiny. The aggregate trace comes from the cycle-windowed machine
// sampler, so every point must be finite and no window may record the
// IPC-equals-window-size spike signature. The per-core traces are the
// instruction-windowed stats.IPCSeries whose batched multi-window closure
// previously fabricated exactly that spike (unit-level regression in
// internal/stats); end to end, no per-core window may exceed the core's
// commit width — the spike (IPC = 2^14) violates that bound by three
// orders of magnitude.
func TestFig58TraceFinite(t *testing.T) {
	res, err := Fig58(workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	window := float64(system.DefaultConfig(system.SchemeHMC).IPCSampleCycles)
	for si, tr := range res.Traces {
		for _, p := range tr {
			if math.IsNaN(p.IPC) || math.IsInf(p.IPC, 0) || p.IPC < 0 {
				t.Fatalf("scheme %d: non-finite IPC %v", si, p.IPC)
			}
			if p.IPC == window {
				t.Fatalf("scheme %d: IPC equals the sampling window %v (spike signature)", si, p.IPC)
			}
		}
	}
	for si, sp := range res.Speedup {
		if math.IsNaN(sp) || math.IsInf(sp, 0) || sp <= 0 {
			t.Fatalf("speedup[%d] = %v", si, sp)
		}
	}

	cfg := system.DefaultConfig(system.SchemeARFtid)
	sys, err := system.New(cfg, "lud_phase", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	maxIPC := float64(cfg.Core.CommitWidth)
	for ci, tr := range r.CoreIPC {
		for _, p := range tr {
			if math.IsNaN(p.IPC) || math.IsInf(p.IPC, 0) || p.IPC < 0 || p.IPC > maxIPC {
				t.Fatalf("core %d: window IPC %v outside (0, commit width %v]", ci, p.IPC, maxIPC)
			}
		}
	}
}

// TestRunSuiteCancelled: a cancelled context aborts the suite before any
// run starts.
func TestRunSuiteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	s, err := RunSuiteCtx(ctx, workload.ScaleTiny, workload.Microbenchmarks(), system.Schemes(),
		func(cfg *system.Config) { started.Add(1) })
	if s != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned (%v, %v)", s, err)
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d runs started under a cancelled context", n)
	}
}

// TestRunSuiteFailFast: an invalid workload fails the suite with its error
// (not a hang or a full-grid run-out).
func TestRunSuiteFailFast(t *testing.T) {
	_, err := RunSuite(workload.ScaleTiny, []string{"no_such_workload"}, system.Schemes(), nil)
	if err == nil || !strings.Contains(err.Error(), "no_such_workload") {
		t.Fatalf("err = %v", err)
	}
}
