package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// microSuite runs the microbenchmarks at tiny scale once per test binary.
var microSuiteCache *Suite

func microSuite(t *testing.T) *Suite {
	t.Helper()
	if microSuiteCache == nil {
		s, err := RunSuite(workload.ScaleTiny, workload.Microbenchmarks(), system.Schemes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		microSuiteCache = s
	}
	return microSuiteCache
}

func TestFig51Structure(t *testing.T) {
	s := microSuite(t)
	tab := Fig51(s)
	if len(tab.Speedup) != 4 || len(tab.Speedup[0]) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Speedup), len(tab.Speedup[0]))
	}
	for wi := range tab.Speedup {
		if tab.Speedup[wi][0] != 1.0 {
			t.Fatalf("DRAM speedup over itself must be 1.0, got %v", tab.Speedup[wi][0])
		}
		for si := range tab.Speedup[wi] {
			if tab.Speedup[wi][si] <= 0 {
				t.Fatal("non-positive speedup")
			}
		}
	}
	if tab.GMean[0] != 1.0 {
		t.Fatalf("DRAM gmean = %v", tab.GMean[0])
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "gmean") {
		t.Fatal("rendered table missing gmean row")
	}
}

func TestFig52Structure(t *testing.T) {
	s := microSuite(t)
	tab := Fig52(s)
	if len(tab.Schemes) != 3 {
		t.Fatalf("latency table must cover the 3 AR schemes, got %d", len(tab.Schemes))
	}
	for wi := range tab.Req {
		for si := range tab.Req[wi] {
			if tab.Req[wi][si] < 0 || tab.Resp[wi][si] <= 0 {
				t.Fatalf("latency components implausible at %d/%d", wi, si)
			}
		}
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "stall") {
		t.Fatal("render missing stall column")
	}
}

func TestFig54Structure(t *testing.T) {
	s := microSuite(t)
	tab := Fig54(s)
	// HMC normalized to itself: totals must be 1.0.
	for wi := range tab.Workloads {
		if diff := tab.Total(wi, 0) - 1.0; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("HMC total for %s = %v, want 1.0", tab.Workloads[wi], tab.Total(wi, 0))
		}
		// The HMC baseline has no active traffic.
		if tab.ActiveReq[wi][0] != 0 || tab.ActiveResp[wi][0] != 0 {
			t.Fatal("HMC row has active components")
		}
	}
}

func TestFig55to57Structure(t *testing.T) {
	s := microSuite(t)
	e := Fig55to57(s, false)
	for wi := range e.Workloads {
		// DRAM normalized to itself.
		total := e.Cache[wi][0] + e.Memory[wi][0] + e.Network[wi][0]
		if total < 0.999 || total > 1.001 {
			t.Fatalf("DRAM energy total = %v, want 1.0", total)
		}
		if e.Network[wi][0] != 0 {
			t.Fatal("DRAM has no network energy")
		}
		if e.EDP[wi][0] != 1.0 {
			t.Fatalf("DRAM EDP = %v", e.EDP[wi][0])
		}
	}
	p := Fig55to57(s, true)
	if p.EDPGM[0] != 1.0 {
		t.Fatal("power table EDP gmean for DRAM must be 1.0")
	}
}

func TestFig53Heatmaps(t *testing.T) {
	s, err := RunSuite(workload.ScaleTiny, []string{"lud"},
		[]system.Scheme{system.SchemeDRAM, system.SchemeHMC, system.SchemeARFtid, system.SchemeARFaddr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets := Fig53(s)
	if len(sets) != 2 {
		t.Fatalf("want ARF-tid and ARF-addr sets, got %d", len(sets))
	}
	for _, set := range sets {
		if len(set.Updates) != 16 {
			t.Fatal("heatmap must have 16 cells")
		}
		var total uint64
		for _, c := range set.Updates {
			total += c
		}
		if total == 0 {
			t.Fatalf("%s: empty update heatmap", set.Scheme)
		}
	}
	var buf bytes.Buffer
	PrintHeatmaps(&buf, sets)
	if !strings.Contains(buf.String(), "operand buffer stalls") {
		t.Fatal("heatmap render incomplete")
	}
}

func TestFig58CaseStudy(t *testing.T) {
	res, err := Fig58(workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 3 {
		t.Fatalf("want 3 traces, got %d", len(res.Traces))
	}
	if res.Speedup[0] != 1.0 {
		t.Fatalf("HMC speedup over itself = %v", res.Speedup[0])
	}
	for i, tr := range res.Traces {
		if len(tr) == 0 {
			t.Fatalf("trace %d empty", i)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "speedup over HMC") {
		t.Fatal("case study render incomplete")
	}
}

func TestTable41Renders(t *testing.T) {
	var buf bytes.Buffer
	Table41(&buf)
	for _, want := range []string{"O3cores", "dragonfly", "banks/vault", "flow table"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 4.1 render missing %q", want)
		}
	}
}

func TestSuiteAccessors(t *testing.T) {
	s := microSuite(t)
	keys := s.SortedKeys()
	if len(keys) != len(s.Results) {
		t.Fatal("sorted keys incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get of missing run must panic")
		}
	}()
	s.Get("nonexistent", system.SchemeDRAM)
}

func TestGMean(t *testing.T) {
	if g := gmean([]float64{2, 8}); g != 4 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if gmean(nil) != 0 || gmean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate gmean handling")
	}
}
