package power

import (
	"math"
	"testing"
)

func TestEnergyComponents(t *testing.T) {
	b := Energy(Inputs{
		L1Accesses:  1000,
		L2Accesses:  100,
		HMCAccesses: 10,
		NetHopBytes: 1 << 10,
	})
	wantCache := (1000*L1AccessPJ + 100*L2AccessPJ) * pJ
	if math.Abs(b.CacheJ-wantCache) > 1e-18 {
		t.Fatalf("cache energy = %g, want %g", b.CacheJ, wantCache)
	}
	wantMem := 10 * 64 * 8 * HMCAccessPJBit * pJ
	if math.Abs(b.MemoryJ-wantMem) > 1e-18 {
		t.Fatalf("memory energy = %g, want %g", b.MemoryJ, wantMem)
	}
	wantNet := 1024 * 8 * NetHopPJPerBit * pJ
	if math.Abs(b.NetworkJ-wantNet) > 1e-18 {
		t.Fatalf("network energy = %g, want %g", b.NetworkJ, wantNet)
	}
	if math.Abs(b.Total()-(wantCache+wantMem+wantNet)) > 1e-18 {
		t.Fatal("total mismatch")
	}
}

func TestDRAMCostsMoreThanHMCPerAccess(t *testing.T) {
	h := Energy(Inputs{HMCAccesses: 100})
	d := Energy(Inputs{DRAMAccesses: 100})
	if d.MemoryJ <= h.MemoryJ {
		t.Fatal("39 pJ/bit DRAM must exceed 12 pJ/bit HMC")
	}
	if d.MemoryJ/h.MemoryJ != 39.0/12.0 {
		t.Fatalf("ratio = %v, want 39/12", d.MemoryJ/h.MemoryJ)
	}
}

func TestPowerScalesInverselyWithTime(t *testing.T) {
	b := Energy(Inputs{L1Accesses: 1_000_000})
	fast := Power(b, 1000, 2)
	slow := Power(b, 2000, 2)
	if math.Abs(fast.Total()-2*slow.Total()) > 1e-12*fast.Total() {
		t.Fatal("halving runtime must double power")
	}
}

func TestEDPDefinition(t *testing.T) {
	b := Energy(Inputs{L1Accesses: 1000})
	edp := EDP(b, 2_000_000_000, 2) // 1 second at 2 GHz
	if math.Abs(edp-b.Total()) > 1e-18 {
		t.Fatalf("EDP over 1s must equal energy: %g vs %g", edp, b.Total())
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(2_000_000_000, 2) != 1 {
		t.Fatal("2G cycles at 2 GHz must be 1 second")
	}
	if Seconds(1000, 0) != Seconds(1000, 2) {
		t.Fatal("zero clock must default to 2 GHz")
	}
}

func TestZeroCyclesPower(t *testing.T) {
	b := Energy(Inputs{L1Accesses: 1})
	if p := Power(b, 0, 2); p.Total() != 0 {
		t.Fatal("zero-cycle power must be zero, not Inf")
	}
}
