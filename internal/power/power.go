// Package power implements the energy/power/EDP model of §4.1 and §5.3:
// 5 pJ/bit per memory-network hop, 12 pJ/bit per HMC access, 39 pJ/bit per
// DRAM access, plus CACTI-order per-access cache energies (a documented
// substitution for the thesis's CACTI runs — DESIGN.md).
package power

// Constants of the thesis's energy model (§4.1).
const (
	NetHopPJPerBit  = 5.0  // memory network, per hop
	HMCAccessPJBit  = 12.0 // per bit of HMC memory access
	DRAMAccessPJBit = 39.0 // per bit of DRAM access

	// Cache per-access dynamic energies (CACTI-order constants for the
	// scaled cache sizes; the breakdown shape, not the absolute joules, is
	// what Figs 5.5-5.7 compare).
	L1AccessPJ = 10.0
	L2AccessPJ = 60.0

	pJ = 1e-12
)

// Inputs are the activity counts a simulation produces.
type Inputs struct {
	L1Accesses   uint64
	L2Accesses   uint64
	HMCAccesses  uint64 // vault accesses (64-byte granularity)
	DRAMAccesses uint64 // DDR accesses (64-byte granularity)
	NetHopBytes  uint64 // memory-network bytes × hops
	Cycles       uint64
	CoreClockGHz float64
	AccessBytes  int // bytes per memory access (64)
}

// Breakdown is the three-component energy split of Figs 5.5/5.6, in joules.
type Breakdown struct {
	CacheJ   float64
	MemoryJ  float64
	NetworkJ float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 { return b.CacheJ + b.MemoryJ + b.NetworkJ }

// Energy computes the energy breakdown for the given activity.
func Energy(in Inputs) Breakdown {
	accessBytes := in.AccessBytes
	if accessBytes == 0 {
		accessBytes = 64
	}
	bitsPerAccess := float64(accessBytes * 8)
	return Breakdown{
		CacheJ: (float64(in.L1Accesses)*L1AccessPJ + float64(in.L2Accesses)*L2AccessPJ) * pJ,
		MemoryJ: (float64(in.HMCAccesses)*bitsPerAccess*HMCAccessPJBit +
			float64(in.DRAMAccesses)*bitsPerAccess*DRAMAccessPJBit) * pJ,
		NetworkJ: float64(in.NetHopBytes) * 8 * NetHopPJPerBit * pJ,
	}
}

// Seconds converts a cycle count at the core clock into wall time.
func Seconds(cycles uint64, coreClockGHz float64) float64 {
	if coreClockGHz == 0 {
		coreClockGHz = 2
	}
	return float64(cycles) / (coreClockGHz * 1e9)
}

// Power returns the average power breakdown in watts.
func Power(b Breakdown, cycles uint64, coreClockGHz float64) Breakdown {
	t := Seconds(cycles, coreClockGHz)
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{CacheJ: b.CacheJ / t, MemoryJ: b.MemoryJ / t, NetworkJ: b.NetworkJ / t}
}

// EDP returns the energy-delay product in joule-seconds (Fig 5.7).
func EDP(b Breakdown, cycles uint64, coreClockGHz float64) float64 {
	return b.Total() * Seconds(cycles, coreClockGHz)
}
