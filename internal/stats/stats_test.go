package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("a", 2)
	s.Add("b", 5)
	if s.Get("a") != 3 || s.Get("b") != 5 || s.Get("zzz") != 0 {
		t.Fatalf("counters wrong: %v", s)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add("hits", 7)
	if !strings.Contains(s.String(), "hits") {
		t.Fatal("String() missing counter name")
	}
}

func TestLatencyBreakdownMeans(t *testing.T) {
	var l LatencyBreakdown
	l.AddSample(10, 20, 30)
	l.AddSample(20, 40, 50)
	r, s, p := l.Means()
	if r != 15 || s != 30 || p != 40 {
		t.Fatalf("means = %v %v %v", r, s, p)
	}
	if l.TotalMean() != 85 {
		t.Fatalf("total mean = %v", l.TotalMean())
	}
	var empty LatencyBreakdown
	if r, _, _ := empty.Means(); r != 0 {
		t.Fatal("empty breakdown must report zeros")
	}
}

func TestLatencyBreakdownMerge(t *testing.T) {
	var a, b LatencyBreakdown
	a.AddSample(1, 2, 3)
	b.AddSample(3, 4, 5)
	a.Merge(b)
	if a.Count != 2 || a.Req != 4 || a.Stall != 6 || a.Resp != 8 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("updates", 16, 4)
	h.Add(0, 10)
	h.Add(5, 30)
	if h.Total() != 40 || h.Max() != 30 {
		t.Fatalf("total=%d max=%d", h.Total(), h.Max())
	}
	// imbalance = max / mean = 30 / 2.5 = 12
	if h.Imbalance() != 12 {
		t.Fatalf("imbalance = %v", h.Imbalance())
	}
	if !strings.Contains(h.String(), "updates") {
		t.Fatal("render missing name")
	}
}

func TestHeatmapEmptyImbalance(t *testing.T) {
	h := NewHeatmap("empty", 16, 4)
	if h.Imbalance() != 0 {
		t.Fatal("empty heatmap imbalance must be 0")
	}
}

func TestHeatmapImbalanceBounds(t *testing.T) {
	f := func(cells [16]uint16) bool {
		h := NewHeatmap("p", 16, 4)
		for i, c := range cells {
			h.Add(i, uint64(c))
		}
		im := h.Imbalance()
		if h.Total() == 0 {
			return im == 0
		}
		return im >= 1 && im <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPCSeriesWindows(t *testing.T) {
	s := NewIPCSeries(100)
	s.Retire(50, 100)
	if len(s.Points) != 0 {
		t.Fatal("window closed early")
	}
	s.Retire(50, 200) // closes at cycle 200: 100 insts / 200 cycles
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].IPC != 0.5 {
		t.Fatalf("ipc = %v", s.Points[0].IPC)
	}
	s.Retire(250, 300) // closes two more windows
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if s.TotalInsts != 350 {
		t.Fatalf("total = %d", s.TotalInsts)
	}
}

func TestDataMovement(t *testing.T) {
	var d DataMovement
	d.NormReq, d.ActiveReq, d.NormResp, d.ActiveResp = 1, 2, 3, 4
	if d.Total() != 10 {
		t.Fatalf("total = %d", d.Total())
	}
	var e DataMovement
	e.Merge(d)
	e.Merge(d)
	if e.Total() != 20 {
		t.Fatalf("merged total = %d", e.Total())
	}
}
