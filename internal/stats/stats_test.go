package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("a", 2)
	s.Add("b", 5)
	if s.Get("a") != 3 || s.Get("b") != 5 || s.Get("zzz") != 0 {
		t.Fatalf("counters wrong: %v", s)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add("hits", 7)
	if !strings.Contains(s.String(), "hits") {
		t.Fatal("String() missing counter name")
	}
}

func TestLatencyBreakdownMeans(t *testing.T) {
	var l LatencyBreakdown
	l.AddSample(10, 20, 30)
	l.AddSample(20, 40, 50)
	r, s, p := l.Means()
	if r != 15 || s != 30 || p != 40 {
		t.Fatalf("means = %v %v %v", r, s, p)
	}
	if l.TotalMean() != 85 {
		t.Fatalf("total mean = %v", l.TotalMean())
	}
	var empty LatencyBreakdown
	if r, _, _ := empty.Means(); r != 0 {
		t.Fatal("empty breakdown must report zeros")
	}
}

func TestLatencyBreakdownMerge(t *testing.T) {
	var a, b LatencyBreakdown
	a.AddSample(1, 2, 3)
	b.AddSample(3, 4, 5)
	a.Merge(b)
	if a.Count != 2 || a.Req != 4 || a.Stall != 6 || a.Resp != 8 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("updates", 16, 4)
	h.Add(0, 10)
	h.Add(5, 30)
	if h.Total() != 40 || h.Max() != 30 {
		t.Fatalf("total=%d max=%d", h.Total(), h.Max())
	}
	// imbalance = max / mean = 30 / 2.5 = 12
	if h.Imbalance() != 12 {
		t.Fatalf("imbalance = %v", h.Imbalance())
	}
	if !strings.Contains(h.String(), "updates") {
		t.Fatal("render missing name")
	}
}

func TestHeatmapEmptyImbalance(t *testing.T) {
	h := NewHeatmap("empty", 16, 4)
	if h.Imbalance() != 0 {
		t.Fatal("empty heatmap imbalance must be 0")
	}
}

func TestHeatmapImbalanceBounds(t *testing.T) {
	f := func(cells [16]uint16) bool {
		h := NewHeatmap("p", 16, 4)
		for i, c := range cells {
			h.Add(i, uint64(c))
		}
		im := h.Imbalance()
		if h.Total() == 0 {
			return im == 0
		}
		return im >= 1 && im <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPCSeriesWindows(t *testing.T) {
	s := NewIPCSeries(100)
	s.Retire(50, 100)
	if len(s.Points) != 0 {
		t.Fatal("window closed early")
	}
	s.Retire(50, 200) // closes at cycle 200: 100 insts / 200 cycles
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].IPC != 0.5 {
		t.Fatalf("ipc = %v", s.Points[0].IPC)
	}
	s.Retire(250, 300) // closes two more windows across a 100-cycle span
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if s.TotalInsts != 350 {
		t.Fatalf("total = %d", s.TotalInsts)
	}
	// The 100-cycle span is apportioned 50/50: both windows record IPC 2,
	// not (IPC 1, IPC 100) as the old whole-span-then-clamp logic did.
	if s.Points[1].IPC != 2 || s.Points[2].IPC != 2 {
		t.Fatalf("apportioned IPCs = %v, %v, want 2, 2", s.Points[1].IPC, s.Points[2].IPC)
	}
	if s.Points[1].Insts != 200 || s.Points[2].Insts != 300 {
		t.Fatalf("window boundaries = %d, %d, want 200, 300", s.Points[1].Insts, s.Points[2].Insts)
	}
}

// TestIPCSeriesMultiWindowNoSpike is the regression test for the Fig 5.8
// spike: closing k>1 windows in one call must never record the
// spike signature IPC == Window unless the span is genuinely that short.
func TestIPCSeriesMultiWindowNoSpike(t *testing.T) {
	s := NewIPCSeries(100)
	s.Retire(500, 1000) // five windows over 1000 cycles: 200 cycles each
	if len(s.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(s.Points))
	}
	for i, p := range s.Points {
		if p.IPC != 0.5 {
			t.Fatalf("window %d IPC = %v, want 0.5", i, p.IPC)
		}
		if want := uint64(100 * (i + 1)); p.Insts != want {
			t.Fatalf("window %d boundary = %d, want %d", i, p.Insts, want)
		}
	}
	// Uneven span: 3 windows over 100 cycles -> 34, 33, 33.
	s2 := NewIPCSeries(100)
	s2.Retire(300, 100)
	want := []float64{100.0 / 34, 100.0 / 33, 100.0 / 33}
	for i, p := range s2.Points {
		if p.IPC != want[i] {
			t.Fatalf("uneven window %d IPC = %v, want %v", i, p.IPC, want[i])
		}
	}
	// Partial leftover stays pending and closes with the next span.
	s3 := NewIPCSeries(100)
	s3.Retire(250, 100) // two windows, 50 pending
	if len(s3.Points) != 2 || s3.TotalInsts != 250 {
		t.Fatalf("points = %d total = %d", len(s3.Points), s3.TotalInsts)
	}
	s3.Retire(50, 200) // pending window closes over the 100-cycle span
	if len(s3.Points) != 3 || s3.Points[2].IPC != 1 || s3.Points[2].Insts != 300 {
		t.Fatalf("leftover window = %+v", s3.Points[len(s3.Points)-1])
	}
}

func TestDataMovement(t *testing.T) {
	var d DataMovement
	d.NormReq, d.ActiveReq, d.NormResp, d.ActiveResp = 1, 2, 3, 4
	if d.Total() != 10 {
		t.Fatalf("total = %d", d.Total())
	}
	var e DataMovement
	e.Merge(d)
	e.Merge(d)
	if e.Total() != 20 {
		t.Fatalf("merged total = %d", e.Total())
	}
}
