// Package stats provides the performance counters used across the
// simulator: scalar counters, latency breakdown accumulators, per-cube
// heatmaps (Fig 5.3) and windowed IPC series (Fig 5.8).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Handle is a dense index into a Set, returned by Register. Components on
// hot paths register their counter names once at construction and bump the
// slot by handle — a bounds-checked slice increment with no hashing — while
// the string-keyed view is rebuilt only at export time (Names/Get/Merge/
// String).
type Handle int

// Set is a named collection of integer counters. The zero value is not
// usable; construct with NewSet.
type Set struct {
	vals  []uint64
	index map[string]Handle
	order []string
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{index: make(map[string]Handle)} }

// Register returns the dense handle for name, allocating the slot on first
// use. Registering the same name twice returns the same handle, so
// components may pre-register unconditionally.
func (s *Set) Register(name string) Handle {
	h, ok := s.index[name]
	if !ok {
		h = Handle(len(s.vals))
		s.vals = append(s.vals, 0)
		s.index[name] = h
		s.order = append(s.order, name)
	}
	return h
}

// AddH increments the counter behind a registered handle by v — the hot-path
// fast path: no map lookup, no string handling.
//
//ar:hotpath
func (s *Set) AddH(h Handle, v uint64) { s.vals[h] += v }

// IncH increments the counter behind a registered handle by one.
//
//ar:hotpath
func (s *Set) IncH(h Handle) { s.vals[h]++ }

// Add increments the named counter by v, creating it on first use.
func (s *Set) Add(name string, v uint64) { s.vals[s.Register(name)] += v }

// Inc increments the named counter by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the counter's value (zero if never touched).
func (s *Set) Get(name string) uint64 {
	if h, ok := s.index[name]; ok {
		return s.vals[h]
	}
	return 0
}

// Names returns counter names in first-use (registration) order.
func (s *Set) Names() []string { return append([]string(nil), s.order...) }

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for i, n := range other.order {
		s.Add(n, other.vals[i])
	}
}

// String renders the counters sorted by name, one per line.
func (s *Set) String() string {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, s.vals[s.index[n]])
	}
	return b.String()
}

// LatencyBreakdown accumulates the three-component update roundtrip latency
// of Fig 5.2: request (injection to arrival at the commit cube), stall
// (arrival to operand issue) and response (operand issue to commit).
type LatencyBreakdown struct {
	Count uint64
	Req   uint64
	Stall uint64
	Resp  uint64
}

// AddSample records one update's component latencies, in cycles.
func (l *LatencyBreakdown) AddSample(req, stall, resp uint64) {
	l.Count++
	l.Req += req
	l.Stall += stall
	l.Resp += resp
}

// Merge adds other's samples into l.
func (l *LatencyBreakdown) Merge(other LatencyBreakdown) {
	l.Count += other.Count
	l.Req += other.Req
	l.Stall += other.Stall
	l.Resp += other.Resp
}

// Means returns the average request, stall and response latencies in cycles.
// With no samples it returns zeros.
func (l *LatencyBreakdown) Means() (req, stall, resp float64) {
	if l.Count == 0 {
		return 0, 0, 0
	}
	n := float64(l.Count)
	return float64(l.Req) / n, float64(l.Stall) / n, float64(l.Resp) / n
}

// TotalMean returns the average total roundtrip latency in cycles.
func (l *LatencyBreakdown) TotalMean() float64 {
	r, s, p := l.Means()
	return r + s + p
}

// Heatmap is a per-cube event accumulator rendered as the paper's 4x4 grids
// (Fig 5.3). Cube c maps to row c/cols, column c%cols.
type Heatmap struct {
	Name  string
	Cols  int
	Cells []uint64
}

// NewHeatmap creates a heatmap with n cells arranged in rows of cols.
func NewHeatmap(name string, n, cols int) *Heatmap {
	return &Heatmap{Name: name, Cols: cols, Cells: make([]uint64, n)}
}

// Add accumulates v events at cube index.
func (h *Heatmap) Add(cube int, v uint64) { h.Cells[cube] += v }

// Total returns the sum over all cells.
func (h *Heatmap) Total() uint64 {
	var t uint64
	for _, c := range h.Cells {
		t += c
	}
	return t
}

// Max returns the largest cell value.
func (h *Heatmap) Max() uint64 {
	var m uint64
	for _, c := range h.Cells {
		if c > m {
			m = c
		}
	}
	return m
}

// Imbalance returns max/mean over the cells, a load-balance figure of merit
// (1.0 = perfectly even). With an empty map it returns 0.
func (h *Heatmap) Imbalance() float64 {
	t := h.Total()
	if t == 0 || len(h.Cells) == 0 {
		return 0
	}
	mean := float64(t) / float64(len(h.Cells))
	return float64(h.Max()) / mean
}

// String renders the grid with right-aligned cell values.
func (h *Heatmap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total=%d, imbalance=%.2f)\n", h.Name, h.Total(), h.Imbalance())
	for i, c := range h.Cells {
		fmt.Fprintf(&b, "%10d", c)
		if (i+1)%h.Cols == 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// IPCSeries records instructions retired in fixed-size instruction windows,
// timestamped with the cycle at which each window closed (Fig 5.8).
type IPCSeries struct {
	Window     uint64 // instructions per window
	retired    uint64 // within current window
	lastCycle  uint64 // cycle at which last window closed
	TotalInsts uint64
	Points     []IPCPoint
}

// IPCPoint is one window: cumulative instructions at the window boundary and
// the IPC achieved within the window.
type IPCPoint struct {
	Insts uint64
	IPC   float64
}

// NewIPCSeries creates a series with the given window size in instructions.
func NewIPCSeries(window uint64) *IPCSeries {
	if window == 0 {
		window = 1 << 20
	}
	return &IPCSeries{Window: window}
}

// Retire records n retired instructions at the given cycle, closing windows
// as they fill. When one call closes several windows, the cycle span since
// the last closure is apportioned across them (remainder to the earliest),
// so every window's IPC reflects the span it actually covered. The old code
// gave the whole span to the first window and a clamped dc=1 to the rest,
// which recorded IPC = Window for every subsequent window — a bogus spike
// in the trace.
func (s *IPCSeries) Retire(n, cycle uint64) {
	s.TotalInsts += n
	s.retired += n
	if s.retired < s.Window {
		return
	}
	k := s.retired / s.Window
	span := cycle - s.lastCycle
	base, rem := span/k, span%k
	leftover := s.retired - k*s.Window
	for i := uint64(0); i < k; i++ {
		dc := base
		if i < rem {
			dc++
		}
		if dc == 0 {
			dc = 1 // more windows than elapsed cycles: floor at 1 cycle
		}
		s.Points = append(s.Points, IPCPoint{
			Insts: s.TotalInsts - leftover - (k-1-i)*s.Window,
			IPC:   float64(s.Window) / float64(dc),
		})
	}
	s.retired = leftover
	s.lastCycle = cycle
}

// DataMovement tallies on/off-chip traffic in bytes, split the way Fig 5.4
// reports it: normal (plain memory) requests/responses and active
// (Update/Gather/operand) requests/responses.
type DataMovement struct {
	NormReq    uint64
	NormResp   uint64
	ActiveReq  uint64
	ActiveResp uint64
}

// Total returns the sum of the four components.
func (d DataMovement) Total() uint64 {
	return d.NormReq + d.NormResp + d.ActiveReq + d.ActiveResp
}

// Merge adds other into d.
func (d *DataMovement) Merge(other DataMovement) {
	d.NormReq += other.NormReq
	d.NormResp += other.NormResp
	d.ActiveReq += other.ActiveReq
	d.ActiveResp += other.ActiveResp
}

// Snapshot appends the set's counters (registration order, name + value
// pairs) for checkpointing.
func (s *Set) Snapshot(e *sim.Enc) {
	e.Tag("stats.set")
	e.Int(len(s.order))
	for i, n := range s.order {
		e.Str(n)
		e.U64(s.vals[i])
	}
}

// Restore folds snapshotted counters back into s (fresh slots are created
// for names the restored machine has not registered yet; pre-registered
// slots are overwritten from zero by addition).
func (s *Set) Restore(d *sim.Dec) {
	d.Tag("stats.set")
	n := d.Len(1<<20, "stats counters")
	for i := 0; i < n && d.Err() == nil; i++ {
		name := d.Str()
		v := d.U64()
		if d.Err() == nil {
			s.Add(name, v)
		}
	}
}

// Snapshot appends the series state for checkpointing.
func (s *IPCSeries) Snapshot(e *sim.Enc) {
	e.Tag("stats.ipc")
	e.U64(s.Window)
	e.U64(s.retired)
	e.U64(s.lastCycle)
	e.U64(s.TotalInsts)
	e.Int(len(s.Points))
	for _, p := range s.Points {
		e.U64(p.Insts)
		e.F64(p.IPC)
	}
}

// Restore reads the series state back; the restored machine must have been
// built with the same window size.
func (s *IPCSeries) Restore(d *sim.Dec) {
	d.Tag("stats.ipc")
	if w := d.U64(); d.Err() == nil && w != s.Window {
		d.Fail("IPC window mismatch: snapshot %d, machine %d", w, s.Window)
	}
	s.retired = d.U64()
	s.lastCycle = d.U64()
	s.TotalInsts = d.U64()
	n := d.Len(1<<30, "IPC points")
	if d.Err() != nil {
		return
	}
	s.Points = s.Points[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		p := IPCPoint{Insts: d.U64(), IPC: d.F64()}
		if d.Err() == nil {
			s.Points = append(s.Points, p)
		}
	}
}
