// Package hmc models the Hybrid Memory Cube side of Table 4.1: cubes with
// 32 vault controllers over 8-bank DRAM stacks, an intra-cube crossbar on
// the logic layer, SerDes-linked membership in the memory network, and the
// HMC controllers that bridge the host to it. Each cube optionally hosts an
// Active-Routing Engine (internal/core) on its logic layer.
package hmc

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// CubeConfig sizes one cube.
type CubeConfig struct {
	Geom       mem.HMCGeometry
	Timing     dram.Timing
	VaultQueue int    // requests per vault controller queue
	XbarDelay  uint64 // intra-cube crossbar latency, simulator cycles
	XbarRate   int    // crossbar operations per cycle
}

// DefaultCubeConfig returns the Table 4.1 cube.
func DefaultCubeConfig() CubeConfig {
	return CubeConfig{
		Geom:       mem.DefaultHMCGeometry(),
		Timing:     dram.DefaultVaultTiming(),
		VaultQueue: 16,
		XbarDelay:  8, // 4 crossbar cycles at 1 GHz under a 2 GHz core clock
		XbarRate:   4,
	}
}

// CubeStats counts per-cube activity (operand serves feed the Fig 5.3
// operand-distribution heatmap; vault accesses feed the energy model).
type CubeStats struct {
	MemReads      uint64
	MemWrites     uint64
	OperandServes uint64
	ActiveStores  uint64
	VaultAccesses uint64
	XbarStalls    uint64
}

// cubeOpKind discriminates the staged intra-cube operations.
type cubeOpKind uint8

const (
	opMemRead     cubeOpKind = iota // block read -> MemReadResp to src
	opMemWrite                      // block write -> MemWriteAck to src
	opOperandRead                   // remote operand fetch -> OperandResp to src
	opMovRead                       // active-store mov: read source, then write/forward
	opStoreWrite                    // value-carrying active store -> write + ack
	opAREOperand                    // ARE-local operand read -> OperandResp(tag) into the ARE
)

// cubeOp is one staged intra-cube operation: a plain value carrying
// everything its vault completion needs, so the staging pipeline and the
// vault round trip allocate nothing (the historical implementation built a
// chain of three closures per access).
type cubeOp struct {
	kind    cubeOpKind
	readyAt uint64
	addr    mem.PAddr // vault address accessed
	target  mem.PAddr // active-store destination
	value   float64
	tag     uint64
	src     int
	origin  int
}

// Cube is one memory cube: a memory-network endpoint with vaults and an
// optional ARE.
type Cube struct {
	ID     int
	cfg    CubeConfig
	fabric *network.Fabric
	pool   *network.Pool // the cube node's domain packet free list
	store  *mem.Store
	vaults []*dram.BankSet
	are    *core.Engine

	staged sim.FIFO[cubeOp]
	outbox sim.FIFO[*network.Packet]

	// pend is the token table for in-flight vault accesses: the dram layer
	// hands the token back at completion and vaultDone dispatches on the
	// recorded op. Slots are recycled through pendFree.
	pend     []cubeOp
	pendFree []uint32

	// vaultWork counts accesses enqueued at any vault and not yet
	// completed, so Busy and the idle hints are counter reads instead of a
	// 32-vault scan; vaultBusy tracks which vaults hold work (bit v) so the
	// Tick fan-out touches only occupied vaults.
	vaultWork int
	vaultBusy uint64

	// waker invalidates the engine's cached idle hint on external input
	// (Deliver; everything else advances through the cube's own Tick).
	waker *sim.Waker

	Stats CubeStats
}

// NewCube builds cube id attached to the fabric. The ARE is attached later
// (AttachARE) for Active-Routing schemes.
func NewCube(id int, cfg CubeConfig, fabric *network.Fabric, store *mem.Store) *Cube {
	c := &Cube{ID: id, cfg: cfg, fabric: fabric, pool: fabric.PoolAt(id), store: store}
	c.vaults = make([]*dram.BankSet, cfg.Geom.VaultsPerCube)
	done := c.vaultDone // one completion hook shared by every vault
	for v := range c.vaults {
		c.vaults[v] = dram.NewBankSet(cfg.Geom.BanksPerVault, cfg.Timing, cfg.VaultQueue)
		c.vaults[v].Done = done
	}
	fabric.SetEndpoint(id, c)
	return c
}

// SetWaker implements sim.WakeSetter.
func (c *Cube) SetWaker(w *sim.Waker) { c.waker = w }

// AttachARE places an Active-Routing Engine on the cube's logic layer,
// sharing the fabric's packet pool.
func (c *Cube) AttachARE(cfg core.EngineConfig) *core.Engine {
	c.are = core.NewEngine(c.ID, c.ID, cfg, c, c.pool)
	return c.are
}

// ARE returns the attached engine (nil without Active-Routing).
func (c *Cube) ARE() *core.Engine { return c.are }

// Busy reports whether any vault, staged op, outbox entry or ARE state
// remains in flight.
func (c *Cube) Busy() bool {
	if c.staged.Len() > 0 || c.outbox.Len() > 0 || c.vaultWork > 0 {
		return true
	}
	return c.are != nil && c.are.Busy()
}

// NextWork implements sim.Idler. The cube must tick while any vault access,
// response or ARE work is outstanding; with only a not-yet-ready crossbar
// head staged, the next work is its ready cycle.
func (c *Cube) NextWork(now uint64) uint64 {
	if c.vaultWork > 0 || c.outbox.Len() > 0 {
		return now
	}
	next := sim.Never
	if c.staged.Len() > 0 {
		if head := c.staged.Peek().readyAt; head > now {
			next = head
		} else {
			return now
		}
	}
	if c.are != nil {
		if w := c.are.NextWork(now); w < next {
			next = w
		}
	}
	return next
}

// Deliver implements network.Endpoint: demultiplex arriving packets to the
// vaults or the ARE. Refusals backpressure the network.
func (c *Cube) Deliver(p *network.Packet, cycle uint64) bool {
	c.waker.Wake()
	switch p.Kind {
	case network.UpdateReq, network.GatherReq, network.GatherResp:
		if c.are == nil {
			panic(fmt.Sprintf("hmc: active packet %s at cube %d without an ARE", p.Kind, c.ID))
		}
		return c.are.Deliver(p, cycle)
	case network.MemReadReq, network.MemWriteReq:
		return c.stageMemAccess(p, cycle)
	case network.OperandReq:
		return c.stageOperandRead(p, cycle)
	case network.OperandResp:
		// Remote operand values feed the ARE directly: they free operand
		// buffers, so they are never refused (deadlock freedom). The packet
		// is fully consumed here.
		if c.are == nil {
			panic(fmt.Sprintf("hmc: operand response at cube %d without an ARE", c.ID))
		}
		c.are.OperandResp(p.Tag, p.Value, cycle)
		c.pool.Put(p)
		return true
	case network.ActiveStoreReq:
		return c.stageActiveStore(p, cycle)
	default:
		panic(fmt.Sprintf("hmc: cube %d cannot handle packet kind %s", c.ID, p.Kind))
	}
}

// stage admits an operation into the crossbar pipeline; the staging queue
// is bounded to model crossbar input buffering.
func (c *Cube) stage(cycle uint64, op cubeOp) bool {
	if c.staged.Len() >= 4*c.cfg.XbarRate {
		c.Stats.XbarStalls++
		return false
	}
	op.readyAt = cycle + c.cfg.XbarDelay
	c.staged.Push(op)
	return true
}

// stageMemAccess admits a block access. The packet's fields are copied into
// the staged operation, so a successful stage is the packet's final
// consumption point and releases it; a refused stage leaves the packet with
// the fabric for a later re-offer.
func (c *Cube) stageMemAccess(p *network.Packet, cycle uint64) bool {
	kind := opMemRead
	if p.Kind == network.MemWriteReq {
		kind = opMemWrite
	}
	ok := c.stage(cycle, cubeOp{kind: kind, addr: p.Addr, src: p.Src, tag: p.Tag})
	if ok {
		c.pool.Put(p)
	}
	return ok
}

func (c *Cube) stageOperandRead(p *network.Packet, cycle uint64) bool {
	ok := c.stage(cycle, cubeOp{kind: opOperandRead, addr: p.Addr, src: p.Src, tag: p.Tag})
	if ok {
		c.pool.Put(p)
	}
	return ok
}

// stageActiveStore handles mov/const_assign stores. A mov whose source
// lives here but whose target lives elsewhere reads locally and forwards
// the value; the final write acks to the originating controller. As with
// the other stage paths, the packet's fields are copied at admission and
// the packet released.
func (c *Cube) stageActiveStore(p *network.Packet, cycle uint64) bool {
	origin := p.Origin
	if origin == 0 {
		origin = p.Src
	}
	var ok bool
	if p.Src1 != 0 { // mov: the source operand must be read first
		ok = c.stage(cycle, cubeOp{kind: opMovRead, addr: p.Src1,
			target: p.Target, tag: p.Tag, origin: origin})
	} else {
		// Value-carrying store (const_assign, flow write-back, forwarded
		// mov). The vault access targets the destination word.
		ok = c.stage(cycle, cubeOp{kind: opStoreWrite, addr: p.Target,
			target: p.Target, value: p.Value, tag: p.Tag, origin: origin})
	}
	if ok {
		c.pool.Put(p)
	}
	return ok
}

// startVault enqueues op's DRAM access at the owning vault, recording the
// op in the token table for completion dispatch. Writes are opMemWrite and
// opStoreWrite; every other kind reads.
func (c *Cube) startVault(op cubeOp) bool {
	pa := op.addr
	write := op.kind == opMemWrite || op.kind == opStoreWrite
	v := c.cfg.Geom.VaultOf(pa)
	var tok uint32
	if n := len(c.pendFree); n > 0 {
		tok = c.pendFree[n-1]
		c.pendFree = c.pendFree[:n-1]
	} else {
		tok = uint32(len(c.pend))
		c.pend = append(c.pend, cubeOp{}) //ar:exempt(hotpath) pend table grows to the in-flight high-water mark, then stops
	}
	c.pend[tok] = op
	ok := c.vaults[v].Enqueue(dram.Request{
		Addr:  pa,
		Write: write,
		Bank:  c.cfg.Geom.BankOf(pa),
		Row:   c.cfg.Geom.RowOf(pa),
		Token: uint64(tok),
	}, 0)
	if !ok {
		c.pendFree = append(c.pendFree, tok) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
		return false
	}
	c.vaultWork++
	c.vaultBusy |= 1 << uint(v)
	c.Stats.VaultAccesses++
	return true
}

// vaultDone dispatches one completed vault access (the dram bank set hands
// the token back at data-transfer completion).
func (c *Cube) vaultDone(token uint64, cycle uint64) {
	op := c.pend[token]
	c.pendFree = append(c.pendFree, uint32(token))
	c.vaultWork--
	switch op.kind {
	case opMemRead:
		c.Stats.MemReads++
		resp := c.pool.Get(network.MemReadResp, c.ID, op.src)
		resp.Addr, resp.Tag = op.addr, op.tag
		c.outbox.Push(resp)
	case opMemWrite:
		c.Stats.MemWrites++
		ack := c.pool.Get(network.MemWriteAck, c.ID, op.src)
		ack.Addr, ack.Tag = op.addr, op.tag
		c.outbox.Push(ack)
	case opOperandRead:
		c.Stats.OperandServes++
		resp := c.pool.Get(network.OperandResp, c.ID, op.src)
		resp.Addr, resp.Tag, resp.Value = op.addr, op.tag, c.store.ReadF64(op.addr&^7)
		c.outbox.Push(resp)
	case opMovRead:
		v := c.store.ReadF64(op.addr &^ 7)
		if c.cfg.Geom.CubeOf(op.target) == c.ID {
			// Local write path for a mov whose source and target share this
			// cube: stage the write behind the crossbar again, immediately
			// ready (readyAt 0) but in FIFO order.
			c.staged.Push(cubeOp{kind: opStoreWrite, addr: op.target,
				target: op.target, value: v, tag: op.tag, origin: op.origin})
			return
		}
		fwd := c.pool.Get(network.ActiveStoreReq, c.ID, c.cfg.Geom.CubeOf(op.target))
		fwd.Target, fwd.Value, fwd.Tag, fwd.Origin = op.target, v, op.tag, op.origin
		c.outbox.Push(fwd)
	case opStoreWrite:
		c.store.WriteF64(op.target, op.value)
		c.Stats.ActiveStores++
		ack := c.pool.Get(network.ActiveStoreAck, c.ID, op.origin)
		ack.Tag = op.tag
		c.outbox.Push(ack)
	case opAREOperand:
		c.are.OperandResp(op.tag, c.store.ReadF64(op.addr&^7), cycle)
	}
}

// Tick advances the cube: vaults, crossbar staging, outbox and ARE.
//
//ar:hotpath
func (c *Cube) Tick(cycle uint64) {
	if c.vaultWork > 0 {
		// Visit only vaults holding work (bit v of vaultBusy), and among
		// those only vaults whose own idle hint says the tick would do
		// anything (a vault waiting out DRAM latency is skipped exactly).
		for m := c.vaultBusy; m != 0; {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			vault := c.vaults[v]
			if vault.NextWork(cycle) > cycle {
				continue
			}
			vault.Tick(cycle)
			if vault.Pending() == 0 {
				c.vaultBusy &^= 1 << uint(v)
			}
		}
	}
	// Crossbar: admit staged operations into vaults strictly in order
	// (head-of-line blocking). FIFO order here is load-bearing: it keeps a
	// mov's source read ahead of a later store to the same address when
	// both arrived in order from the network.
	n := 0
	for c.staged.Len() > 0 && n < c.cfg.XbarRate {
		op := c.staged.Peek()
		if op.readyAt > cycle || !c.startVault(op) {
			break
		}
		c.staged.Pop()
		n++
	}
	// Drain response outbox into the network.
	for c.outbox.Len() > 0 {
		if !c.fabric.Inject(c.ID, c.outbox.Peek(), cycle) {
			break
		}
		c.outbox.Pop()
	}
	if c.are != nil {
		c.are.Tick(cycle)
	}
}

// --- core.Cube interface -------------------------------------------------

// VaultAccess implements core.Cube for the attached ARE (and tests): the
// callback-based path, kept for interface compatibility. The engine's hot
// local-operand path uses VaultReadTag instead.
func (c *Cube) VaultAccess(pa mem.PAddr, write bool, value float64, onDone func(v float64, cycle uint64)) bool {
	v := c.cfg.Geom.VaultOf(pa)
	ok := c.vaults[v].Enqueue(dram.Request{
		Addr:  pa,
		Write: write,
		Bank:  c.cfg.Geom.BankOf(pa),
		Row:   c.cfg.Geom.RowOf(pa),
		OnDone: func(done uint64) {
			c.vaultWork--
			if write {
				c.store.WriteF64(pa, value)
				onDone(0, done)
				return
			}
			onDone(c.store.ReadF64(pa&^7), done)
		},
	}, 0)
	if !ok {
		return false
	}
	c.vaultWork++
	c.vaultBusy |= 1 << uint(v)
	c.Stats.VaultAccesses++
	return true
}

// VaultReadTag implements core.TagReader: an allocation-free local operand
// read whose completion is routed to the ARE via OperandResp(tag).
func (c *Cube) VaultReadTag(pa mem.PAddr, tag uint64) bool {
	return c.startVault(cubeOp{kind: opAREOperand, addr: pa, tag: tag})
}

// Inject implements core.Cube.
func (c *Cube) Inject(p *network.Packet) bool {
	return c.fabric.Inject(c.ID, p, 0)
}

// CubeOf implements core.Cube.
func (c *Cube) CubeOf(pa mem.PAddr) int { return c.cfg.Geom.CubeOf(pa) }

// NodeOfCube implements core.Cube (cube ids are their node ids).
func (c *Cube) NodeOfCube(cube int) int { return cube }

// NextHopToCube implements core.Cube.
func (c *Cube) NextHopToCube(cube int) int {
	return network.NextHop(c.fabric.Topo, c.ID, cube)
}

// DebugState reports internal queue depths (debug tooling).
func (c *Cube) DebugState() (staged, outbox, vaultPending int) {
	for _, v := range c.vaults {
		vaultPending += v.Pending()
	}
	return c.staged.Len(), c.outbox.Len(), vaultPending
}
