// Package hmc models the Hybrid Memory Cube side of Table 4.1: cubes with
// 32 vault controllers over 8-bank DRAM stacks, an intra-cube crossbar on
// the logic layer, SerDes-linked membership in the memory network, and the
// HMC controllers that bridge the host to it. Each cube optionally hosts an
// Active-Routing Engine (internal/core) on its logic layer.
package hmc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// CubeConfig sizes one cube.
type CubeConfig struct {
	Geom       mem.HMCGeometry
	Timing     dram.Timing
	VaultQueue int    // requests per vault controller queue
	XbarDelay  uint64 // intra-cube crossbar latency, simulator cycles
	XbarRate   int    // crossbar operations per cycle
}

// DefaultCubeConfig returns the Table 4.1 cube.
func DefaultCubeConfig() CubeConfig {
	return CubeConfig{
		Geom:       mem.DefaultHMCGeometry(),
		Timing:     dram.DefaultVaultTiming(),
		VaultQueue: 16,
		XbarDelay:  8, // 4 crossbar cycles at 1 GHz under a 2 GHz core clock
		XbarRate:   4,
	}
}

// CubeStats counts per-cube activity (operand serves feed the Fig 5.3
// operand-distribution heatmap; vault accesses feed the energy model).
type CubeStats struct {
	MemReads      uint64
	MemWrites     uint64
	OperandServes uint64
	ActiveStores  uint64
	VaultAccesses uint64
	XbarStalls    uint64
}

// vaultOp is a staged intra-cube operation waiting for crossbar traversal
// and a vault queue slot.
type vaultOp struct {
	readyAt uint64
	run     func(cycle uint64) bool
}

// Cube is one memory cube: a memory-network endpoint with vaults and an
// optional ARE.
type Cube struct {
	ID     int
	cfg    CubeConfig
	fabric *network.Fabric
	store  *mem.Store
	vaults []*dram.BankSet
	are    *core.Engine

	staged []vaultOp
	outbox []*network.Packet

	// vaultWork counts accesses enqueued at any vault and not yet
	// completed, so Busy and the idle hints are counter reads instead of a
	// 32-vault scan.
	vaultWork int

	Stats CubeStats
}

// NewCube builds cube id attached to the fabric. The ARE is attached later
// (AttachARE) for Active-Routing schemes.
func NewCube(id int, cfg CubeConfig, fabric *network.Fabric, store *mem.Store) *Cube {
	c := &Cube{ID: id, cfg: cfg, fabric: fabric, store: store}
	c.vaults = make([]*dram.BankSet, cfg.Geom.VaultsPerCube)
	for v := range c.vaults {
		c.vaults[v] = dram.NewBankSet(cfg.Geom.BanksPerVault, cfg.Timing, cfg.VaultQueue)
	}
	fabric.SetEndpoint(id, c)
	return c
}

// AttachARE places an Active-Routing Engine on the cube's logic layer.
func (c *Cube) AttachARE(cfg core.EngineConfig) *core.Engine {
	c.are = core.NewEngine(c.ID, c.ID, cfg, c)
	return c.are
}

// ARE returns the attached engine (nil without Active-Routing).
func (c *Cube) ARE() *core.Engine { return c.are }

// Busy reports whether any vault, staged op, outbox entry or ARE state
// remains in flight.
func (c *Cube) Busy() bool {
	if len(c.staged) > 0 || len(c.outbox) > 0 || c.vaultWork > 0 {
		return true
	}
	return c.are != nil && c.are.Busy()
}

// NextWork implements sim.Idler. The cube must tick while any vault access,
// response or ARE work is outstanding; with only a not-yet-ready crossbar
// head staged, the next work is its ready cycle.
func (c *Cube) NextWork(now uint64) uint64 {
	if c.vaultWork > 0 || len(c.outbox) > 0 {
		return now
	}
	next := sim.Never
	if len(c.staged) > 0 {
		if head := c.staged[0].readyAt; head > now {
			next = head
		} else {
			return now
		}
	}
	if c.are != nil {
		if w := c.are.NextWork(now); w < next {
			next = w
		}
	}
	return next
}

// Deliver implements network.Endpoint: demultiplex arriving packets to the
// vaults or the ARE. Refusals backpressure the network.
func (c *Cube) Deliver(p *network.Packet, cycle uint64) bool {
	switch p.Kind {
	case network.UpdateReq, network.GatherReq, network.GatherResp:
		if c.are == nil {
			panic(fmt.Sprintf("hmc: active packet %s at cube %d without an ARE", p.Kind, c.ID))
		}
		return c.are.Deliver(p, cycle)
	case network.MemReadReq, network.MemWriteReq:
		return c.stageMemAccess(p, cycle)
	case network.OperandReq:
		return c.stageOperandRead(p, cycle)
	case network.OperandResp:
		// Remote operand values feed the ARE directly: they free operand
		// buffers, so they are never refused (deadlock freedom).
		if c.are == nil {
			panic(fmt.Sprintf("hmc: operand response at cube %d without an ARE", c.ID))
		}
		c.are.OperandResp(p.Tag, p.Value, cycle)
		return true
	case network.ActiveStoreReq:
		return c.stageActiveStore(p, cycle)
	default:
		panic(fmt.Sprintf("hmc: cube %d cannot handle packet kind %s", c.ID, p.Kind))
	}
}

// stage admits an operation into the crossbar pipeline; the staging queue
// is bounded to model crossbar input buffering.
func (c *Cube) stage(cycle uint64, run func(cycle uint64) bool) bool {
	if len(c.staged) >= 4*c.cfg.XbarRate {
		c.Stats.XbarStalls++
		return false
	}
	c.staged = append(c.staged, vaultOp{readyAt: cycle + c.cfg.XbarDelay, run: run})
	return true
}

func (c *Cube) stageMemAccess(p *network.Packet, cycle uint64) bool {
	return c.stage(cycle, func(now uint64) bool {
		write := p.Kind == network.MemWriteReq
		return c.vaultAccess(p.Addr, write, func(v float64, done uint64) {
			kind := network.MemReadResp
			if write {
				kind = network.MemWriteAck
				c.Stats.MemWrites++
			} else {
				c.Stats.MemReads++
			}
			resp := network.NewPacket(0, kind, c.ID, p.Src)
			resp.Addr, resp.Tag = p.Addr, p.Tag
			c.outbox = append(c.outbox, resp)
		})
	})
}

func (c *Cube) stageOperandRead(p *network.Packet, cycle uint64) bool {
	return c.stage(cycle, func(now uint64) bool {
		return c.vaultAccess(p.Addr, false, func(v float64, done uint64) {
			c.Stats.OperandServes++
			resp := network.NewPacket(0, network.OperandResp, c.ID, p.Src)
			resp.Addr, resp.Tag, resp.Value = p.Addr, p.Tag, v
			c.outbox = append(c.outbox, resp)
		})
	})
}

// stageActiveStore handles mov/const_assign stores. A mov whose source
// lives here but whose target lives elsewhere reads locally and forwards
// the value; the final write acks to the originating controller.
func (c *Cube) stageActiveStore(p *network.Packet, cycle uint64) bool {
	if p.Origin == 0 {
		p.Origin = p.Src
	}
	targetCube := c.cfg.Geom.CubeOf(p.Target)
	if p.Src1 != 0 { // mov: the source operand must be read first
		return c.stage(cycle, func(now uint64) bool {
			return c.vaultAccess(p.Src1, false, func(v float64, done uint64) {
				if targetCube == c.ID {
					c.localActiveWrite(p, v)
					return
				}
				fwd := network.NewPacket(0, network.ActiveStoreReq, c.ID, targetCube)
				fwd.Target, fwd.Value, fwd.Tag, fwd.Origin = p.Target, v, p.Tag, p.Origin
				c.outbox = append(c.outbox, fwd)
			})
		})
	}
	// Value-carrying store (const_assign, flow write-back, forwarded mov).
	return c.stage(cycle, func(now uint64) bool {
		v := p.Value
		ok := c.vaultAccess(p.Target, true, func(_ float64, done uint64) {
			c.store.WriteF64(p.Target, v)
			c.Stats.ActiveStores++
			ack := network.NewPacket(0, network.ActiveStoreAck, c.ID, p.Origin)
			ack.Tag = p.Tag
			c.outbox = append(c.outbox, ack)
		})
		return ok
	})
}

func (c *Cube) localActiveWrite(p *network.Packet, v float64) {
	// Local write path for a mov whose source and target share this cube:
	// stage the write behind the crossbar again.
	c.staged = append(c.staged, vaultOp{readyAt: 0, run: func(now uint64) bool {
		return c.vaultAccess(p.Target, true, func(_ float64, done uint64) {
			c.store.WriteF64(p.Target, v)
			c.Stats.ActiveStores++
			ack := network.NewPacket(0, network.ActiveStoreAck, c.ID, p.Origin)
			ack.Tag = p.Tag
			c.outbox = append(c.outbox, ack)
		})
	}})
}

// vaultAccess enqueues a DRAM access at the owning vault; reads supply the
// stored value to onDone at completion time.
func (c *Cube) vaultAccess(pa mem.PAddr, write bool, onDone func(v float64, cycle uint64)) bool {
	v := c.cfg.Geom.VaultOf(pa)
	req := &dram.Request{
		Addr:  pa,
		Write: write,
		Bank:  c.cfg.Geom.BankOf(pa),
		Row:   c.cfg.Geom.RowOf(pa),
	}
	req.OnDone = func(done uint64) {
		c.vaultWork--
		var val float64
		if !write {
			val = c.store.ReadF64(pa &^ 7)
		}
		onDone(val, done)
	}
	if !c.vaults[v].Enqueue(req, 0) {
		return false
	}
	c.vaultWork++
	c.Stats.VaultAccesses++
	return true
}

// Tick advances the cube: vaults, crossbar staging, outbox and ARE.
func (c *Cube) Tick(cycle uint64) {
	if c.vaultWork > 0 {
		for _, v := range c.vaults {
			if v.Pending() > 0 {
				v.Tick(cycle)
			}
		}
	}
	// Crossbar: admit staged operations into vaults strictly in order
	// (head-of-line blocking). FIFO order here is load-bearing: it keeps a
	// mov's source read ahead of a later store to the same address when
	// both arrived in order from the network.
	n := 0
	for len(c.staged) > 0 && n < c.cfg.XbarRate {
		op := c.staged[0]
		if op.readyAt > cycle || !op.run(cycle) {
			break
		}
		c.staged = c.staged[1:]
		n++
	}
	// Drain response outbox into the network.
	for len(c.outbox) > 0 {
		p := c.outbox[0]
		if !c.fabric.Inject(c.ID, p, cycle) {
			break
		}
		c.outbox = c.outbox[1:]
	}
	if c.are != nil {
		c.are.Tick(cycle)
	}
}

// --- core.Cube interface -------------------------------------------------

// VaultAccess implements core.Cube for the attached ARE.
func (c *Cube) VaultAccess(pa mem.PAddr, write bool, value float64, onDone func(v float64, cycle uint64)) bool {
	if write {
		return c.vaultAccess(pa, true, func(_ float64, done uint64) {
			c.store.WriteF64(pa, value)
			onDone(0, done)
		})
	}
	return c.vaultAccess(pa, false, onDone)
}

// Inject implements core.Cube.
func (c *Cube) Inject(p *network.Packet) bool {
	return c.fabric.Inject(c.ID, p, 0)
}

// CubeOf implements core.Cube.
func (c *Cube) CubeOf(pa mem.PAddr) int { return c.cfg.Geom.CubeOf(pa) }

// NodeOfCube implements core.Cube (cube ids are their node ids).
func (c *Cube) NodeOfCube(cube int) int { return cube }

// NextHopToCube implements core.Cube.
func (c *Cube) NextHopToCube(cube int) int {
	return network.NextHop(c.fabric.Topo, c.ID, cube)
}

// DebugState reports internal queue depths (debug tooling).
func (c *Cube) DebugState() (staged, outbox, vaultPending int) {
	for _, v := range c.vaults {
		vaultPending += v.Pending()
	}
	return len(c.staged), len(c.outbox), vaultPending
}
