package hmc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// Controller is one HMC controller: the host-side bridge onto the memory
// network (Fig 3.1), attached by a SerDes edge link to its entry cube. It
// carries plain memory traffic for the cache hierarchy and serves as one of
// the coordinator's memory-access ports for Active-Routing offloads.
type Controller struct {
	Index     int // port index 0..3
	node      int // network node id (16 + Index)
	entryCube int
	geom      mem.HMCGeometry
	fabric    *network.Fabric

	pool     *network.Pool // the node's domain packet free list
	queue    sim.FIFO[*network.Packet]
	queueCap int
	nextTag  uint64
	pending  map[uint64]func(cycle uint64)

	// waker invalidates the engine's cached idle hint on external input
	// (Access from the cache hierarchy; coordinator packets via Inject
	// go straight to the fabric).
	waker *sim.Waker

	// Coordinator callbacks (nil outside Active-Routing schemes).
	OnGatherResp func(p *network.Packet, cycle uint64)
	OnActiveAck  func(p *network.Packet, cycle uint64)

	// Stats.
	Reads  uint64
	Writes uint64
}

// NewController builds controller index attached at node with the given
// entry cube, and registers it as the node's endpoint.
func NewController(index, node, entryCube int, geom mem.HMCGeometry, fabric *network.Fabric, queueCap int) *Controller {
	if queueCap <= 0 {
		queueCap = 32
	}
	c := &Controller{
		Index:     index,
		node:      node,
		entryCube: entryCube,
		geom:      geom,
		fabric:    fabric,
		queueCap:  queueCap,
		pool:      fabric.PoolAt(node),
		pending:   make(map[uint64]func(uint64)),
	}
	fabric.SetEndpoint(node, c)
	return c
}

// SetWaker implements sim.WakeSetter.
func (c *Controller) SetWaker(w *sim.Waker) { c.waker = w }

// Node implements core.Port.
func (c *Controller) Node() int { return c.node }

// EntryNode implements core.Port.
func (c *Controller) EntryNode() int { return c.entryCube }

// Inject implements core.Port: direct injection of coordinator packets.
func (c *Controller) Inject(p *network.Packet) bool {
	return c.fabric.Inject(c.node, p, 0)
}

var _ core.Port = (*Controller)(nil)

// Access enqueues a block read/write for the cache hierarchy; done fires at
// response delivery. It reports false on queue backpressure. Cube ids equal
// node ids in the memory network.
func (c *Controller) Access(pa mem.PAddr, write bool, done func(cycle uint64)) bool {
	if c.queue.Len() >= c.queueCap {
		return false
	}
	c.waker.Wake()
	kind := network.MemReadReq
	if write {
		kind = network.MemWriteReq
		c.Writes++
	} else {
		c.Reads++
	}
	p := c.pool.Get(kind, c.node, c.geom.CubeOf(pa))
	p.Addr = pa
	c.nextTag++
	p.Tag = uint64(c.Index)<<56 | c.nextTag
	c.pending[p.Tag] = done
	c.queue.Push(p)
	return true
}

// Deliver implements network.Endpoint for responses arriving from the
// memory network. Every case is a reply completion — the packet's single
// point of final consumption — so the packet is released here after its
// callback returns (callbacks must not retain it; they copy what they
// need).
func (c *Controller) Deliver(p *network.Packet, cycle uint64) bool {
	switch p.Kind {
	case network.MemReadResp, network.MemWriteAck:
		done, ok := c.pending[p.Tag]
		if !ok {
			panic(fmt.Sprintf("hmc: controller %d response with unknown tag %d", c.Index, p.Tag))
		}
		delete(c.pending, p.Tag)
		done(cycle)
	case network.GatherResp:
		if c.OnGatherResp == nil {
			panic(fmt.Sprintf("hmc: controller %d gather response without coordinator", c.Index))
		}
		c.OnGatherResp(p, cycle)
	case network.ActiveStoreAck:
		if c.OnActiveAck == nil {
			panic(fmt.Sprintf("hmc: controller %d active ack without coordinator", c.Index))
		}
		c.OnActiveAck(p, cycle)
	default:
		panic(fmt.Sprintf("hmc: controller %d cannot handle packet kind %s", c.Index, p.Kind))
	}
	c.pool.Put(p)
	return true
}

// Tick drains the controller's request queue into the network.
//
//ar:hotpath
func (c *Controller) Tick(cycle uint64) {
	for n := 0; n < 4 && c.queue.Len() > 0; n++ {
		if !c.fabric.Inject(c.node, c.queue.Peek(), cycle) {
			return
		}
		c.queue.Pop()
	}
}

// Busy reports whether requests are queued or outstanding.
func (c *Controller) Busy() bool { return c.queue.Len() > 0 || len(c.pending) > 0 }

// NextWork implements sim.Idler: Tick only drains the request queue;
// outstanding responses arrive via Deliver.
func (c *Controller) NextWork(now uint64) uint64 {
	if c.queue.Len() > 0 {
		return now
	}
	return sim.Never
}
