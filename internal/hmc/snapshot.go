package hmc

import (
	"repro/internal/sim"
)

// Checkpoint support. A cube snapshots only at system quiescence: staging
// queue, outbox and every vault empty (vaultWork zero implies vaultBusy
// zero and every pend token free), so the surviving state is the per-vault
// DRAM timing/counters, the cube counters and the attached ARE. The pend
// token table and its free list are rebuilt structurally fresh on restore
// — token identity never affects simulated behavior.

// SnapshotReady reports whether the cube (and its ARE, if any) is in a
// checkpointable state.
func (c *Cube) SnapshotReady() bool {
	if c.staged.Len() > 0 || c.outbox.Len() > 0 || c.vaultWork > 0 {
		return false
	}
	return c.are == nil || c.are.SnapshotReady()
}

// Snapshot implements sim.Snapshotter for a quiescent cube.
func (c *Cube) Snapshot(e *sim.Enc) {
	e.Tag("cube")
	e.Int(c.ID)
	s := &c.Stats
	for _, v := range []uint64{s.MemReads, s.MemWrites, s.OperandServes,
		s.ActiveStores, s.VaultAccesses, s.XbarStalls} {
		e.U64(v)
	}
	e.Int(len(c.vaults))
	for _, v := range c.vaults {
		v.Snapshot(e)
	}
	e.Bool(c.are != nil)
	if c.are != nil {
		c.are.Snapshot(e)
	}
}

// Restore implements sim.Snapshotter for a freshly constructed cube (with
// its ARE already attached when the scheme calls for one).
func (c *Cube) Restore(d *sim.Dec) {
	d.Tag("cube")
	if id := d.Int(); d.Err() == nil && id != c.ID {
		d.Fail("cube id mismatch: snapshot %d, machine %d", id, c.ID)
	}
	s := &c.Stats
	for _, p := range []*uint64{&s.MemReads, &s.MemWrites, &s.OperandServes,
		&s.ActiveStores, &s.VaultAccesses, &s.XbarStalls} {
		*p = d.U64()
	}
	if n := d.Int(); d.Err() == nil && n != len(c.vaults) {
		d.Fail("cube %d vault count mismatch: snapshot %d, machine %d", c.ID, n, len(c.vaults))
		return
	}
	for _, v := range c.vaults {
		v.Restore(d)
	}
	hasARE := d.Bool()
	if d.Err() != nil {
		return
	}
	if hasARE != (c.are != nil) {
		d.Fail("cube %d ARE presence mismatch: snapshot %v, machine %v", c.ID, hasARE, c.are != nil)
		return
	}
	if c.are != nil {
		c.are.Restore(d)
	}
}

// SnapshotReady reports whether the controller is in a checkpointable
// state: request queue drained and no outstanding responses (a pending
// response's completion callback lives in the cache hierarchy and cannot
// be serialized).
func (c *Controller) SnapshotReady() bool { return !c.Busy() }

// Snapshot implements sim.Snapshotter for a quiescent controller.
func (c *Controller) Snapshot(e *sim.Enc) {
	e.Tag("hmcctl")
	e.Int(c.Index)
	e.U64(c.nextTag)
	e.U64(c.Reads)
	e.U64(c.Writes)
}

// Restore implements sim.Snapshotter for a freshly constructed controller.
func (c *Controller) Restore(d *sim.Dec) {
	d.Tag("hmcctl")
	if idx := d.Int(); d.Err() == nil && idx != c.Index {
		d.Fail("hmc controller index mismatch: snapshot %d, machine %d", idx, c.Index)
	}
	c.nextTag = d.U64()
	c.Reads = d.U64()
	c.Writes = d.U64()
}
