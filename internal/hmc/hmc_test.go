package hmc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/network"
)

// rig is a two-cube memory network with one controller.
type rig struct {
	fabric *network.Fabric
	store  *mem.Store
	cubes  []*Cube
	ctrl   *Controller
	cycle  uint64
}

func newRig(t *testing.T, withARE bool) *rig {
	t.Helper()
	topo := network.NewDragonfly([]int{0, 4, 8, 12})
	r := &rig{
		fabric: network.NewFabric(topo, network.DefaultMemNetConfig()),
		store:  mem.NewStore(),
	}
	cfg := DefaultCubeConfig()
	for c := 0; c < 16; c++ {
		cube := NewCube(c, cfg, r.fabric, r.store)
		if withARE {
			cube.AttachARE(core.DefaultEngineConfig())
		}
		r.cubes = append(r.cubes, cube)
	}
	r.ctrl = NewController(0, 16, 0, cfg.Geom, r.fabric, 32)
	// The other controller nodes still need endpoints.
	for i := 1; i < 4; i++ {
		NewController(i, 16+i, []int{0, 4, 8, 12}[i], cfg.Geom, r.fabric, 32)
	}
	return r
}

func (r *rig) run(n int) {
	for i := 0; i < n; i++ {
		r.cycle++
		r.fabric.Tick(r.cycle)
		for _, c := range r.cubes {
			c.Tick(r.cycle)
		}
		r.ctrl.Tick(r.cycle)
	}
}

func TestMemoryReadRoundTrip(t *testing.T) {
	r := newRig(t, false)
	pa := mem.PAddr(5 * mem.PageSize) // cube 5
	r.store.WriteF64(pa, 42)
	var done bool
	var lat uint64
	ok := r.ctrl.Access(pa, false, func(cycle uint64) {
		done = true
		lat = cycle
	})
	if !ok {
		t.Fatal("access rejected")
	}
	r.run(4000)
	if !done {
		t.Fatal("read never completed")
	}
	if lat == 0 || lat > 2000 {
		t.Fatalf("latency %d implausible", lat)
	}
	if r.cubes[5].Stats.MemReads != 1 {
		t.Fatalf("cube stats: %+v", r.cubes[5].Stats)
	}
}

func TestMemoryWriteRoundTrip(t *testing.T) {
	r := newRig(t, false)
	pa := mem.PAddr(9 * mem.PageSize)
	done := false
	if !r.ctrl.Access(pa, true, func(uint64) { done = true }) {
		t.Fatal("access rejected")
	}
	r.run(4000)
	if !done {
		t.Fatal("write never acknowledged")
	}
	if r.cubes[9].Stats.MemWrites != 1 {
		t.Fatalf("cube stats: %+v", r.cubes[9].Stats)
	}
}

func TestManyOutstandingReads(t *testing.T) {
	r := newRig(t, false)
	const n = 64
	done := 0
	issued := 0
	for i := 0; i < n; i++ {
		pa := mem.PAddr(i * mem.PageSize)
		if r.ctrl.Access(pa, false, func(uint64) { done++ }) {
			issued++
		}
		r.run(4)
	}
	r.run(8000)
	if done != issued || issued == 0 {
		t.Fatalf("completed %d of %d issued", done, issued)
	}
	if r.ctrl.Busy() {
		t.Fatal("controller left busy")
	}
}

// TestActiveUpdateThroughNetwork drives a full update/gather flow through
// real cubes and links via the coordinator.
func TestActiveUpdateThroughNetwork(t *testing.T) {
	r := newRig(t, true)
	geom := DefaultCubeConfig().Geom

	// Operands on cube 5, reduction target on cube 9.
	a := mem.PAddr(5 * mem.PageSize)
	b := a + 8
	target := mem.PAddr(9 * mem.PageSize)
	r.store.WriteF64(a, 6)
	r.store.WriteF64(b, 7)
	r.store.WriteF64(target, 100)

	coord := core.NewCoordinator(core.PolicyStatic, geom, []core.Port{r.ctrl, r.ctrl, r.ctrl, r.ctrl}, r.store, nil, 32)
	r.ctrl.OnGatherResp = coord.OnGatherResp
	r.ctrl.OnActiveAck = coord.OnActiveAck

	if !coord.EnqueueUpdate(core.UpdateCmd{Op: isa.OpMac, Src1: a, Src2: b, Target: target}, 0) {
		t.Fatal("update rejected")
	}
	woken := false
	coord.EnqueueGather(core.GatherCmd{Target: target, Threads: 1, Wake: func(uint64) { woken = true }}, 0)
	for i := 0; i < 20000 && !woken; i++ {
		r.cycle++
		r.fabric.Tick(r.cycle)
		for _, c := range r.cubes {
			c.Tick(r.cycle)
		}
		r.ctrl.Tick(r.cycle)
		coord.Tick(r.cycle)
	}
	if !woken {
		t.Fatal("gather never completed")
	}
	if got := r.store.ReadF64(target); got != 142 {
		t.Fatalf("target = %v, want 100 + 6*7 = 142", got)
	}
	if coord.Busy() {
		t.Fatal("coordinator left busy")
	}
}

// TestActiveStoreMovThroughNetwork reads at one cube and writes at another
// (the pagerank mov pattern).
func TestActiveStoreMovThroughNetwork(t *testing.T) {
	r := newRig(t, true)
	geom := DefaultCubeConfig().Geom
	src := mem.PAddr(3 * mem.PageSize)
	dst := mem.PAddr(11 * mem.PageSize)
	r.store.WriteF64(src, 3.75)

	coord := core.NewCoordinator(core.PolicyStatic, geom, []core.Port{r.ctrl, r.ctrl, r.ctrl, r.ctrl}, r.store, nil, 32)
	r.ctrl.OnGatherResp = coord.OnGatherResp
	r.ctrl.OnActiveAck = coord.OnActiveAck
	if !coord.EnqueueUpdate(core.UpdateCmd{Op: isa.OpMov, Src1: src, Target: dst}, 0) {
		t.Fatal("mov rejected")
	}
	for i := 0; i < 20000 && coord.Busy(); i++ {
		r.cycle++
		r.fabric.Tick(r.cycle)
		for _, c := range r.cubes {
			c.Tick(r.cycle)
		}
		r.ctrl.Tick(r.cycle)
		coord.Tick(r.cycle)
	}
	if coord.Busy() {
		t.Fatal("mov never acknowledged")
	}
	if got := r.store.ReadF64(dst); got != 3.75 {
		t.Fatalf("dst = %v, want 3.75", got)
	}
}

func TestVaultFunctionalValues(t *testing.T) {
	r := newRig(t, true)
	pa := mem.PAddr(2 * mem.PageSize)
	r.store.WriteF64(pa, 2.5)
	var got float64
	done := false
	ok := r.cubes[2].VaultAccess(pa, false, 0, func(v float64, cycle uint64) {
		got = v
		done = true
	})
	if !ok {
		t.Fatal("vault access rejected")
	}
	r.run(2000)
	if !done || got != 2.5 {
		t.Fatalf("vault read = %v (done=%v)", got, done)
	}
	// Vault write updates the store at completion.
	done = false
	r.cubes[2].VaultAccess(pa, true, 0, func(v float64, cycle uint64) { done = true })
	r.run(2000)
	if !done {
		t.Fatal("vault write never completed")
	}
}

func TestCubeGeometryHelpers(t *testing.T) {
	r := newRig(t, false)
	c := r.cubes[3]
	if c.CubeOf(mem.PAddr(7*mem.PageSize)) != 7 {
		t.Fatal("CubeOf broken")
	}
	if c.NodeOfCube(7) != 7 {
		t.Fatal("NodeOfCube broken")
	}
	next := c.NextHopToCube(7)
	if next == 3 || next < 0 || next > 15 {
		t.Fatalf("NextHopToCube(7) = %d", next)
	}
}
