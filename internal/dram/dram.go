// Package dram models DRAM bank timing: row-buffer management with
// tRCD/tRAS/tRP/tCL/tBL constraints, a shared data bus, and an FR-FCFS
// scheduler. The same model serves the DDR baseline (4 channels, 4 ranks,
// 64 banks/rank, Table 4.1) and — with different geometry — the DRAM layers
// behind each HMC vault controller.
package dram

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Timing holds the DRAM timing parameters of Table 4.1, expressed in DRAM
// command-clock cycles, plus the conversion factor to simulator cycles.
type Timing struct {
	RCD uint64 // activate to column command
	RAS uint64 // activate to precharge
	RP  uint64 // precharge to activate
	CL  uint64 // column command to first data
	BL  uint64 // burst length (data bus beats)
	RR  uint64 // rank-to-rank switch penalty

	// CyclesPerTick converts DRAM cycles to simulator (CPU) cycles. The
	// baseline DDR command clock is modeled at half the 2 GHz core clock.
	CyclesPerTick uint64
}

// DefaultDDRTiming returns the Table 4.1 baseline parameters.
func DefaultDDRTiming() Timing {
	return Timing{RCD: 14, RAS: 34, RP: 14, CL: 14, BL: 4, RR: 1, CyclesPerTick: 2}
}

// DefaultVaultTiming returns the timing used behind HMC vault controllers.
// TSV-attached DRAM layers use the same core timing family but the vault
// clock matches the 1 GHz logic-layer clock of Table 4.1.
func DefaultVaultTiming() Timing {
	return Timing{RCD: 14, RAS: 34, RP: 14, CL: 14, BL: 2, RR: 1, CyclesPerTick: 2}
}

// Request is one memory access presented to a bank set. Completion is
// reported through exactly one of two channels: OnDone (a per-request
// callback) or, when OnDone is nil, the bank set's Done hook with the
// request's Token — the allocation-free path used by the HMC vaults, whose
// per-access state lives in a caller-owned table keyed by token.
type Request struct {
	Addr  mem.PAddr
	Write bool
	Bank  int    // flat bank index within the bank set
	Row   uint64 // row within the bank
	// OnDone is invoked exactly once, at the simulator cycle when the data
	// transfer completes (nil when Token dispatch is used instead).
	OnDone func(cycle uint64)
	// Token identifies the access to the bank set's Done hook.
	Token uint64

	arrival uint64
	doneAt  uint64
}

// Stats counts row-buffer outcomes and traffic for one bank set.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	QueueFullRej uint64
	BusyCycles   uint64
}

type bankState struct {
	hasOpenRow  bool
	openRow     uint64
	freeAt      uint64
	activatedAt uint64
}

// BankSet is a group of banks behind one controller sharing a data bus,
// with a bounded request queue scheduled FR-FCFS (row hits first, then
// oldest).
type BankSet struct {
	timing    Timing
	banks     []bankState
	queue     []*Request
	inflight  []*Request
	maxQueue  int
	busFreeAt uint64
	// earliestDone is the exact minimum doneAt over inflight (sim.Never
	// when empty), so the per-tick completion scan and the idle hint are
	// O(1) while every transfer is still on the bus. banksBlockedUntil
	// caches the earliest cycle any queued request's bank frees up after a
	// scheduler pass found every candidate bank busy; until then (and
	// absent new arrivals) re-scanning the queue would pick nothing.
	earliestDone      uint64
	banksBlockedUntil uint64
	reqFree           []*Request // recycled request records (Enqueue copies into one)

	// Done receives completions for requests with a nil OnDone (set once at
	// construction by token-dispatching callers).
	Done func(token uint64, cycle uint64)

	Stats Stats
}

// NewBankSet creates a bank set with n banks and the given queue depth.
func NewBankSet(n int, timing Timing, maxQueue int) *BankSet {
	if n <= 0 {
		panic("dram: bank set needs at least one bank")
	}
	if maxQueue <= 0 {
		maxQueue = 32
	}
	return &BankSet{
		timing:       timing,
		banks:        make([]bankState, n),
		maxQueue:     maxQueue,
		earliestDone: sim.Never,
	}
}

// Enqueue presents a request by value; it reports false when the queue is
// full (the caller must retry, modeling controller backpressure). The bank
// set copies the request into an internally recycled record, so a steady
// stream of accesses allocates nothing.
func (b *BankSet) Enqueue(r Request, cycle uint64) bool {
	if len(b.queue) >= b.maxQueue {
		b.Stats.QueueFullRej++
		return false
	}
	if r.Bank < 0 || r.Bank >= len(b.banks) {
		panic("dram: request bank out of range")
	}
	var rec *Request
	if n := len(b.reqFree); n > 0 {
		rec = b.reqFree[n-1]
		b.reqFree = b.reqFree[:n-1]
	} else {
		rec = new(Request)
	}
	*rec = r
	rec.arrival = cycle
	b.queue = append(b.queue, rec)
	b.banksBlockedUntil = 0 // new candidate: the scheduler must re-scan
	return true
}

// Pending reports queued plus in-flight requests.
func (b *BankSet) Pending() int { return len(b.queue) + len(b.inflight) }

// NextWork implements sim.Idler: with requests queued the scheduler must
// run every cycle (FR-FCFS decisions and the BusyCycles counter depend on
// it); with only in-flight transfers the next work is the earliest
// completion; empty bank sets are quiescent until Enqueue.
func (b *BankSet) NextWork(now uint64) uint64 {
	if len(b.queue) > 0 {
		return now
	}
	if len(b.inflight) == 0 {
		return sim.Never
	}
	if b.earliestDone <= now {
		return now
	}
	return b.earliestDone
}

// QueueFree reports remaining queue slots.
func (b *BankSet) QueueFree() int { return b.maxQueue - len(b.queue) }

// Tick advances the bank set one simulator cycle: completes finished
// transfers and issues at most one new command (FR-FCFS).
func (b *BankSet) Tick(cycle uint64) {
	// Complete transfers; skip the scan entirely while the earliest
	// completion is still in the future.
	if b.earliestDone <= cycle {
		for i := 0; i < len(b.inflight); {
			r := b.inflight[i]
			if r.doneAt <= cycle {
				b.inflight[i] = b.inflight[len(b.inflight)-1]
				b.inflight[len(b.inflight)-1] = nil
				b.inflight = b.inflight[:len(b.inflight)-1]
				if r.OnDone != nil {
					r.OnDone(cycle)
					r.OnDone = nil
				} else {
					b.Done(r.Token, cycle)
				}
				b.reqFree = append(b.reqFree, r)
				continue
			}
			i++
		}
		b.earliestDone = sim.Never
		for _, r := range b.inflight {
			if r.doneAt < b.earliestDone {
				b.earliestDone = r.doneAt
			}
		}
	}
	if len(b.queue) == 0 {
		return
	}
	b.Stats.BusyCycles++
	if b.banksBlockedUntil > cycle {
		return // every candidate bank still busy; nothing to re-scan
	}
	// FR-FCFS: oldest row hit whose bank is free; otherwise oldest request
	// whose bank is free.
	pick := -1
	minFree := ^uint64(0)
	for i, r := range b.queue {
		bank := &b.banks[r.Bank]
		if bank.freeAt > cycle {
			if bank.freeAt < minFree {
				minFree = bank.freeAt
			}
			continue
		}
		if bank.hasOpenRow && bank.openRow == r.Row {
			pick = i
			break
		}
		if pick < 0 {
			pick = i
		}
	}
	if pick < 0 {
		b.banksBlockedUntil = minFree
		return
	}
	r := b.queue[pick]
	copy(b.queue[pick:], b.queue[pick+1:])
	b.queue = b.queue[:len(b.queue)-1]
	b.issue(r, cycle)
}

func (b *BankSet) issue(r *Request, cycle uint64) {
	t := &b.timing
	bank := &b.banks[r.Bank]
	start := cycle
	if bank.freeAt > start {
		start = bank.freeAt
	}

	var commandLat uint64
	switch {
	case bank.hasOpenRow && bank.openRow == r.Row:
		b.Stats.RowHits++
		commandLat = t.CL * t.CyclesPerTick
	case !bank.hasOpenRow:
		b.Stats.RowMisses++
		commandLat = (t.RCD + t.CL) * t.CyclesPerTick
		bank.activatedAt = start
	default:
		b.Stats.RowConflicts++
		// Precharge may not begin before tRAS expires for the open row.
		rasReady := bank.activatedAt + t.RAS*t.CyclesPerTick
		if rasReady > start {
			start = rasReady
		}
		commandLat = (t.RP + t.RCD + t.CL) * t.CyclesPerTick
		bank.activatedAt = start + t.RP*t.CyclesPerTick
	}
	burst := t.BL * t.CyclesPerTick

	dataStart := start + commandLat
	if dataStart < b.busFreeAt {
		// Wait for the shared data bus.
		delta := b.busFreeAt - dataStart
		start += delta
		dataStart += delta
	}
	done := dataStart + burst

	bank.hasOpenRow = true
	bank.openRow = r.Row
	bank.freeAt = done
	b.busFreeAt = done
	r.doneAt = done

	if r.Write {
		b.Stats.Writes++
	} else {
		b.Stats.Reads++
	}
	if done < b.earliestDone {
		b.earliestDone = done
	}
	b.inflight = append(b.inflight, r)
}

// Controller is a DDR channel controller for the baseline system: it maps
// physical addresses onto its rank/bank geometry and owns one BankSet.
type Controller struct {
	Channel int
	Geom    mem.DRAMGeometry
	Banks   *BankSet

	// waker invalidates the engine's cached idle hint when a new access
	// arrives (the controller's only external input).
	waker *sim.Waker
}

// SetWaker implements sim.WakeSetter.
func (c *Controller) SetWaker(w *sim.Waker) { c.waker = w }

// NewController builds a channel controller with the given geometry.
func NewController(channel int, geom mem.DRAMGeometry, timing Timing, queue int) *Controller {
	return &Controller{
		Channel: channel,
		Geom:    geom,
		Banks:   NewBankSet(geom.RanksPerChan*geom.BanksPerRank, timing, queue),
	}
}

// Access enqueues a block access for pa; it reports false on backpressure.
func (c *Controller) Access(pa mem.PAddr, write bool, cycle uint64, done func(uint64)) bool {
	c.waker.Wake()
	flat := c.Geom.RankOf(pa)*c.Geom.BanksPerRank + c.Geom.BankOf(pa)
	return c.Banks.Enqueue(Request{
		Addr:   pa,
		Write:  write,
		Bank:   flat,
		Row:    c.Geom.RowOf(pa),
		OnDone: done,
	}, cycle)
}

// Tick advances the controller one cycle.
func (c *Controller) Tick(cycle uint64) { c.Banks.Tick(cycle) }

// NextWork implements sim.Idler by delegating to the bank set.
func (c *Controller) NextWork(now uint64) uint64 { return c.Banks.NextWork(now) }
