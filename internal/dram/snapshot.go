package dram

import (
	"repro/internal/sim"
)

// Snapshot implements sim.Snapshotter for a drained bank set (no queued or
// in-flight requests): the surviving state is per-bank row-buffer status
// and absolute timing (freeAt/activatedAt stay valid verbatim because
// restore resumes the clock at the snapshot cycle — nothing is rebased),
// the shared bus horizon and the counters.
func (b *BankSet) Snapshot(e *sim.Enc) {
	e.Tag("dram")
	e.Int(len(b.banks))
	for i := range b.banks {
		bk := &b.banks[i]
		e.Bool(bk.hasOpenRow)
		e.U64(bk.openRow)
		e.U64(bk.freeAt)
		e.U64(bk.activatedAt)
	}
	e.U64(b.busFreeAt)
	s := &b.Stats
	for _, v := range []uint64{s.Reads, s.Writes, s.RowHits, s.RowMisses,
		s.RowConflicts, s.QueueFullRej, s.BusyCycles} {
		e.U64(v)
	}
}

// Restore implements sim.Snapshotter for a freshly constructed bank set.
// earliestDone stays Never and banksBlockedUntil zero — both are exact for
// an empty queue and re-derived as traffic arrives.
func (b *BankSet) Restore(d *sim.Dec) {
	d.Tag("dram")
	if n := d.Int(); d.Err() == nil && n != len(b.banks) {
		d.Fail("dram bank count mismatch: snapshot %d, machine %d", n, len(b.banks))
		return
	}
	for i := range b.banks {
		bk := &b.banks[i]
		bk.hasOpenRow = d.Bool()
		bk.openRow = d.U64()
		bk.freeAt = d.U64()
		bk.activatedAt = d.U64()
	}
	b.busFreeAt = d.U64()
	s := &b.Stats
	for _, p := range []*uint64{&s.Reads, &s.Writes, &s.RowHits, &s.RowMisses,
		&s.RowConflicts, &s.QueueFullRej, &s.BusyCycles} {
		*p = d.U64()
	}
	b.earliestDone = sim.Never
	b.banksBlockedUntil = 0
}
