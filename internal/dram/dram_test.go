package dram

import (
	"testing"

	"repro/internal/mem"
)

// run ticks the bank set until n requests complete or the cycle budget is
// spent, returning completion cycles in finish order.
func run(t *testing.T, b *BankSet, n int, budget uint64) []uint64 {
	t.Helper()
	var done []uint64
	for cyc := uint64(0); uint64(len(done)) < uint64(n); cyc++ {
		if cyc > budget {
			t.Fatalf("only %d of %d requests completed in %d cycles", len(done), n, budget)
		}
		b.Tick(cyc)
	}
	return done
}

func enq(t *testing.T, b *BankSet, bank int, row uint64, cycle uint64, done *[]uint64) {
	t.Helper()
	ok := b.Enqueue(Request{
		Bank: bank, Row: row,
		OnDone: func(c uint64) { *done = append(*done, c) },
	}, cycle)
	if !ok {
		t.Fatal("enqueue rejected")
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	tm := DefaultDDRTiming()
	var missDone, hitDone []uint64

	b1 := NewBankSet(2, tm, 8)
	enq(t, b1, 0, 5, 0, &missDone)
	for cyc := uint64(0); len(missDone) == 0; cyc++ {
		b1.Tick(cyc)
	}
	missLat := missDone[0]

	// Warm the row, then measure a hit.
	b2 := NewBankSet(2, tm, 8)
	var warm []uint64
	enq(t, b2, 0, 5, 0, &warm)
	cyc := uint64(0)
	for ; len(warm) == 0; cyc++ {
		b2.Tick(cyc)
	}
	start := cyc
	enq(t, b2, 0, 5, cyc, &hitDone)
	for ; len(hitDone) == 0; cyc++ {
		b2.Tick(cyc)
	}
	hitLat := hitDone[0] - start
	if hitLat >= missLat {
		t.Fatalf("row hit latency %d not faster than miss %d", hitLat, missLat)
	}
	if b2.Stats.RowHits != 1 || b2.Stats.RowMisses != 1 {
		t.Fatalf("stats = %+v", b2.Stats)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	tm := DefaultDDRTiming()
	b := NewBankSet(1, tm, 8)
	var d1, d2 []uint64
	enq(t, b, 0, 1, 0, &d1)
	cyc := uint64(0)
	for ; len(d1) == 0; cyc++ {
		b.Tick(cyc)
	}
	start := cyc
	enq(t, b, 0, 2, cyc, &d2) // different row: conflict
	for ; len(d2) == 0; cyc++ {
		b.Tick(cyc)
	}
	conflictLat := d2[0] - start
	missLat := d1[0]
	if conflictLat <= missLat {
		t.Fatalf("conflict latency %d should exceed cold miss %d", conflictLat, missLat)
	}
	if b.Stats.RowConflicts != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	tm := DefaultDDRTiming()
	// Four requests on four banks vs four on one bank (distinct rows).
	par := NewBankSet(4, tm, 16)
	ser := NewBankSet(4, tm, 16)
	var dp, ds []uint64
	for i := 0; i < 4; i++ {
		enq(t, par, i, 1, 0, &dp)
		enq(t, ser, 0, uint64(i+1), 0, &ds)
	}
	var cp, cs uint64
	for cyc := uint64(0); len(dp) < 4; cyc++ {
		par.Tick(cyc)
		cp = cyc
	}
	for cyc := uint64(0); len(ds) < 4; cyc++ {
		ser.Tick(cyc)
		cs = cyc
	}
	if cp >= cs {
		t.Fatalf("banked finish %d not faster than serial %d", cp, cs)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	tm := DefaultDDRTiming()
	b := NewBankSet(1, tm, 8)
	var warm []uint64
	enq(t, b, 0, 7, 0, &warm)
	cyc := uint64(0)
	for ; len(warm) == 0; cyc++ {
		b.Tick(cyc)
	}
	// Queue a conflict (older) and then a row hit (younger).
	order := []uint64{}
	b.Enqueue(Request{Bank: 0, Row: 9, OnDone: func(uint64) { order = append(order, 9) }}, cyc)
	b.Enqueue(Request{Bank: 0, Row: 7, OnDone: func(uint64) { order = append(order, 7) }}, cyc)
	for ; len(order) < 2; cyc++ {
		b.Tick(cyc)
	}
	if order[0] != 7 {
		t.Fatalf("FR-FCFS served row %d first, want the open-row hit 7", order[0])
	}
}

func TestQueueBackpressure(t *testing.T) {
	b := NewBankSet(1, DefaultDDRTiming(), 2)
	r := func() Request { return Request{Bank: 0, Row: 1, OnDone: func(uint64) {}} }
	if !b.Enqueue(r(), 0) || !b.Enqueue(r(), 0) {
		t.Fatal("first two enqueues must succeed")
	}
	if b.Enqueue(r(), 0) {
		t.Fatal("third enqueue must be rejected")
	}
	if b.Stats.QueueFullRej != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestControllerAddressMapping(t *testing.T) {
	c := NewController(0, mem.DefaultDRAMGeometry(), DefaultDDRTiming(), 8)
	fired := false
	ok := c.Access(0x1234000, false, 0, func(uint64) { fired = true })
	if !ok {
		t.Fatal("access rejected")
	}
	for cyc := uint64(0); !fired && cyc < 10000; cyc++ {
		c.Tick(cyc)
	}
	if !fired {
		t.Fatal("access never completed")
	}
	if c.Banks.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", c.Banks.Stats)
	}
}

func TestWritesCounted(t *testing.T) {
	b := NewBankSet(1, DefaultDDRTiming(), 8)
	var d []uint64
	b.Enqueue(Request{Bank: 0, Row: 0, Write: true, OnDone: func(c uint64) { d = append(d, c) }}, 0)
	for cyc := uint64(0); len(d) == 0; cyc++ {
		b.Tick(cyc)
	}
	if b.Stats.Writes != 1 || b.Stats.Reads != 0 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBadBankPanics(t *testing.T) {
	b := NewBankSet(2, DefaultDDRTiming(), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Enqueue(Request{Bank: 5, Row: 0}, 0)
}

func TestPendingCount(t *testing.T) {
	b := NewBankSet(1, DefaultDDRTiming(), 8)
	b.Enqueue(Request{Bank: 0, Row: 0, OnDone: func(uint64) {}}, 0)
	if b.Pending() != 1 {
		t.Fatalf("pending = %d", b.Pending())
	}
}
