package network

import "testing"

// TestOccupancyCountersMatchScan floods the fabric with all-pairs traffic
// and cross-checks the O(1) occupancy counters (Drained, InFlight, the
// per-router queue masks the tick phases skip on) against a full scan at
// every network cycle. The counters are what both System.done() and the
// idle-aware scheduler trust, so drift here would silently corrupt
// simulated timing.
func TestOccupancyCountersMatchScan(t *testing.T) {
	f, cols := newTestFabric(t)
	want := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			p := NewPacket(f.NextID(), UpdateReq, s, d)
			for cyc := uint64(0); !f.Inject(s, p, cyc); cyc++ {
				f.Tick(cyc)
			}
			want++
		}
	}
	total := func() int {
		n := 0
		for _, c := range cols {
			n += len(c.got)
		}
		return n
	}
	check := func(cyc uint64) {
		if scan := f.InFlightScan(); scan != f.InFlight() {
			t.Fatalf("cycle %d: InFlight()=%d, scan=%d", cyc, f.InFlight(), scan)
		}
		if f.Drained() != (f.InFlightScan() == 0) {
			t.Fatalf("cycle %d: Drained()=%v disagrees with scan", cyc, f.Drained())
		}
		for _, r := range f.routers {
			in, inj := 0, 0
			var occ uint64
			for i := range r.in {
				in += r.in[i].len()
				if r.in[i].len() > 0 {
					occ |= 1 << uint(i)
				}
			}
			for i := range r.inj {
				inj += r.inj[i].len()
				if r.inj[i].len() > 0 {
					occ |= 1 << uint(r.ports*f.Cfg.VCs+i)
				}
			}
			if in != r.inCount || inj != r.injCount {
				t.Fatalf("cycle %d node %d: inCount=%d (scan %d), injCount=%d (scan %d)",
					cyc, r.node, r.inCount, in, r.injCount, inj)
			}
			if r.maskable && occ != r.occ {
				t.Fatalf("cycle %d node %d: occ mask %b, scan %b", cyc, r.node, r.occ, occ)
			}
		}
	}
	for cyc := uint64(0); total() < want && cyc < 100000; cyc++ {
		f.Tick(cyc)
		check(cyc)
	}
	if total() != want {
		t.Fatalf("delivered %d of %d packets", total(), want)
	}
	if !f.Drained() {
		t.Fatal("fabric should be drained")
	}
}

// TestFabricNextWork pins the idle-hint contract: an empty fabric is
// quiescent, a queued packet demands work on the next network clock edge,
// and a fully in-flight packet reports its arrival cycle.
func TestFabricNextWork(t *testing.T) {
	f, _ := newTestFabric(t)
	const never = ^uint64(0)
	if w := f.NextWork(7); w != never {
		t.Fatalf("empty fabric NextWork = %d, want Never", w)
	}
	p := NewPacket(f.NextID(), MemReadReq, 0, 15)
	if !f.Inject(0, p, 0) {
		t.Fatal("injection failed")
	}
	// ClockDiv=2: odd cycles must round up to the next even edge.
	if w := f.NextWork(3); w != 4 {
		t.Fatalf("queued-packet NextWork(3) = %d, want 4", w)
	}
	f.Tick(0) // injection queue drains onto the link
	if f.doms[0].queued != 0 {
		t.Fatalf("packet still queued after tick: %d", f.doms[0].queued)
	}
	w := f.NextWork(2)
	if w <= 2 || w == never {
		t.Fatalf("link-traversal NextWork = %d, want future arrival cycle", w)
	}
	for cyc := uint64(0); !f.Drained() && cyc < 1000; cyc++ {
		f.Tick(cyc)
	}
	if !f.Drained() {
		t.Fatal("fabric should drain")
	}
}
