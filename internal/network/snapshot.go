package network

import (
	"repro/internal/sim"
)

// Checkpoint support. A fabric snapshots only when fully drained with no
// staged cross-domain effects (SnapshotReady), so queues, arrival wheels
// and staging buffers are all empty and the surviving state is per-router
// arbitration/link-timing state plus the accounting counters.
//
// Credits are encoded at their effective value: a drained fabric has
// returned every downstream slot, but same-domain returns sit in
// pendingCredits until the domain's next tick — the encoder folds those in
// without mutating live state, and restore starts with the deferral queue
// empty, which is behaviorally identical (deferred credits would apply
// before any phase of the next tick anyway).
//
// Per-domain counters are encoded as merged totals and restored into
// domain 0. Every cross-domain merge in the collection path is a
// commutative sum, so a snapshot taken under one kernel partition restores
// exactly under another (sequential <-> sharded).

// SnapshotReady reports whether the fabric is in a checkpointable state.
func (f *Fabric) SnapshotReady() bool { return f.Drained() && !f.StagedWork() }

// Snapshot implements sim.Snapshotter for a drained fabric.
func (f *Fabric) Snapshot(e *sim.Enc) {
	e.Tag("fabric")
	e.Int(len(f.routers))
	e.Int(f.Cfg.VCs)

	// Effective credits: live credits plus deferred returns, computed in
	// scratch so the live machine is untouched.
	eff := make([][]int, len(f.routers))
	for i, r := range f.routers {
		eff[i] = append([]int(nil), r.credits...)
	}
	for _, d := range f.doms {
		for _, c := range d.pendingCredits {
			eff[c.node][c.idx]++
		}
		for _, c := range d.stagedCredits {
			eff[c.node][c.idx]++
		}
	}
	for i, r := range f.routers {
		e.Int(r.ports)
		e.Int(r.rrPort)
		for _, lb := range r.linkBusy {
			e.U64(lb)
		}
		for _, cr := range eff[i] {
			e.Int(cr)
		}
	}

	// Accounting, merged across domains (commutative sums).
	var hopBytes, delivered, injected, ejectStalled, nextID uint64
	var movement [4]uint64
	for _, d := range f.doms {
		hopBytes += d.HopBytes
		delivered += d.Delivered
		injected += d.Injected
		ejectStalled += d.ejectStalled
		nextID += d.nextID
		movement[0] += d.Movement.NormReq
		movement[1] += d.Movement.NormResp
		movement[2] += d.Movement.ActiveReq
		movement[3] += d.Movement.ActiveResp
	}
	e.U64(hopBytes)
	e.U64(delivered)
	e.U64(injected)
	e.U64(ejectStalled)
	e.U64(nextID)
	for _, m := range movement {
		e.U64(m)
	}
	f.MergedCounters().Snapshot(e)
}

// Restore implements sim.Snapshotter for a freshly constructed (traffic-
// free) fabric, possibly partitioned differently from the snapshot source.
func (f *Fabric) Restore(d *sim.Dec) {
	d.Tag("fabric")
	if n := d.Int(); d.Err() == nil && n != len(f.routers) {
		d.Fail("fabric router count mismatch: snapshot %d, machine %d", n, len(f.routers))
		return
	}
	if v := d.Int(); d.Err() == nil && v != f.Cfg.VCs {
		d.Fail("fabric VC count mismatch: snapshot %d, machine %d", v, f.Cfg.VCs)
		return
	}
	for _, r := range f.routers {
		if p := d.Int(); d.Err() == nil && p != r.ports {
			d.Fail("fabric node %d port count mismatch: snapshot %d, machine %d", r.node, p, r.ports)
			return
		}
		r.rrPort = d.Int()
		if nin := r.ports*f.Cfg.VCs + f.Cfg.VCs; r.rrPort < 0 || r.rrPort >= nin {
			d.Fail("fabric node %d rrPort %d out of range", r.node, r.rrPort)
			return
		}
		for p := range r.linkBusy {
			r.linkBusy[p] = d.U64()
		}
		for i := range r.credits {
			cr := d.Int()
			if cr < 0 || cr > f.Cfg.QueueDepth {
				d.Fail("fabric node %d credit %d out of range [0,%d]", r.node, cr, f.Cfg.QueueDepth)
				return
			}
			r.credits[i] = cr
		}
	}
	d0 := f.doms[0]
	d0.HopBytes = d.U64()
	d0.Delivered = d.U64()
	d0.Injected = d.U64()
	d0.ejectStalled = d.U64()
	d0.nextID = d.U64()
	d0.Movement.NormReq = d.U64()
	d0.Movement.NormResp = d.U64()
	d0.Movement.ActiveReq = d.U64()
	d0.Movement.ActiveResp = d.U64()
	d0.counters.Restore(d)
}
