package network

import "fmt"

// Topology describes node connectivity and deterministic minimal routing.
// Nodes are numbered 0..Nodes()-1; some nodes are fabric routers (cubes,
// NoC tiles) and some are edge endpoints (HMC controllers) attached by a
// single link to a host router.
type Topology interface {
	// Nodes is the total node count including edge endpoints.
	Nodes() int
	// Ports returns the number of link ports on node n.
	Ports(n int) int
	// Neighbor returns the peer node and peer port reached from node n's
	// port p, or ok=false for an unused port.
	Neighbor(n, p int) (peer, peerPort int, ok bool)
	// Route returns the output port at cur on a minimal path to dst. It
	// panics if cur == dst (the caller should have ejected the packet).
	Route(cur, dst int) int
	// HopClass returns the virtual-channel class (0 or 1) a packet
	// travelling cur→dst must use, for deadlock-free minimal routing.
	HopClass(cur, dst int) int
}

// PathLen walks the topology's route from src to dst and returns the hop
// count. It is used by tests and by the analytical energy model.
func PathLen(t Topology, src, dst int) int {
	hops := 0
	for cur := src; cur != dst; {
		p := t.Route(cur, dst)
		next, _, ok := t.Neighbor(cur, p)
		if !ok {
			panic(fmt.Sprintf("network: route from %d to %d via dead port %d", cur, dst, p))
		}
		cur = next
		hops++
		if hops > t.Nodes()+2 {
			panic(fmt.Sprintf("network: routing loop from %d to %d", src, dst))
		}
	}
	return hops
}

// NextHop returns the neighbor reached by following the minimal route from
// cur toward dst.
func NextHop(t Topology, cur, dst int) int {
	p := t.Route(cur, dst)
	next, _, ok := t.Neighbor(cur, p)
	if !ok {
		panic(fmt.Sprintf("network: next hop from %d to %d via dead port %d", cur, dst, p))
	}
	return next
}

// Mesh is a k×k 2D mesh with dimension-order (XY) routing. Optional edge
// endpoints attach to designated tiles (used for both the host NoC and the
// mesh-memory-network ablation).
type Mesh struct {
	k      int
	attach []int // attach[i] = tile hosting edge endpoint i
}

// NewMesh creates a k×k mesh. attach lists the tiles that receive one edge
// endpoint each; endpoint i becomes node k*k+i.
func NewMesh(k int, attach []int) *Mesh {
	for _, t := range attach {
		if t < 0 || t >= k*k {
			panic("network: mesh attach tile out of range")
		}
	}
	return &Mesh{k: k, attach: append([]int(nil), attach...)}
}

// K returns the mesh dimension.
func (m *Mesh) K() int { return m.k }

// Tiles returns the number of fabric tiles (k*k).
func (m *Mesh) Tiles() int { return m.k * m.k }

// EndpointNode returns the node id of edge endpoint i.
func (m *Mesh) EndpointNode(i int) int { return m.k*m.k + i }

// Nodes implements Topology.
func (m *Mesh) Nodes() int { return m.k*m.k + len(m.attach) }

// Mesh ports: 0=east, 1=west, 2=north, 3=south, 4=endpoint link.
const (
	meshEast = iota
	meshWest
	meshNorth
	meshSouth
	meshEdge
)

// Ports implements Topology.
func (m *Mesh) Ports(n int) int {
	if n >= m.Tiles() {
		return 1 // endpoint has a single link to its tile
	}
	return 5
}

// Neighbor implements Topology.
func (m *Mesh) Neighbor(n, p int) (int, int, bool) {
	if n >= m.Tiles() {
		if p != 0 {
			return 0, 0, false
		}
		return m.attach[n-m.Tiles()], meshEdge, true
	}
	x, y := n%m.k, n/m.k
	switch p {
	case meshEast:
		if x+1 < m.k {
			return n + 1, meshWest, true
		}
	case meshWest:
		if x > 0 {
			return n - 1, meshEast, true
		}
	case meshNorth:
		if y > 0 {
			return n - m.k, meshSouth, true
		}
	case meshSouth:
		if y+1 < m.k {
			return n + m.k, meshNorth, true
		}
	case meshEdge:
		for i, t := range m.attach {
			if t == n {
				return m.Tiles() + i, 0, true
			}
		}
	}
	return 0, 0, false
}

// Route implements Topology with XY dimension-order routing.
func (m *Mesh) Route(cur, dst int) int {
	if cur == dst {
		panic("network: Route called with cur == dst")
	}
	if cur >= m.Tiles() {
		return 0 // endpoint's only port
	}
	target := dst
	if dst >= m.Tiles() {
		target = m.attach[dst-m.Tiles()]
		if target == cur {
			return meshEdge
		}
	}
	cx, cy := cur%m.k, cur/m.k
	tx, ty := target%m.k, target/m.k
	switch {
	case tx > cx:
		return meshEast
	case tx < cx:
		return meshWest
	case ty < cy:
		return meshNorth
	default:
		return meshSouth
	}
}

// HopClass implements Topology. XY routing is deadlock free in one class.
func (m *Mesh) HopClass(cur, dst int) int { return 0 }

// Dragonfly is the 16-cube dragonfly memory network of Table 4.1: 4 groups
// of 4 routers, fully connected within a group, one global link per router
// for routers 0..2 (router r of group g connects to group (g+r+1) mod 4).
// Edge endpoints (HMC controllers) attach one per group.
type Dragonfly struct {
	groups  int // number of groups (4)
	size    int // routers per group (4)
	attach  []int
	nRouter int
}

// NewDragonfly creates the 4×4 dragonfly. attach lists the cube each edge
// endpoint (controller) connects to; endpoint i becomes node 16+i.
func NewDragonfly(attach []int) *Dragonfly {
	d := &Dragonfly{groups: 4, size: 4, attach: append([]int(nil), attach...)}
	d.nRouter = d.groups * d.size
	for _, c := range d.attach {
		if c < 0 || c >= d.nRouter {
			panic("network: dragonfly attach cube out of range")
		}
	}
	return d
}

// Cubes returns the number of cube routers (16).
func (d *Dragonfly) Cubes() int { return d.nRouter }

// EndpointNode returns the node id of edge endpoint i.
func (d *Dragonfly) EndpointNode(i int) int { return d.nRouter + i }

// Nodes implements Topology.
func (d *Dragonfly) Nodes() int { return d.nRouter + len(d.attach) }

// Dragonfly ports on a cube: 0..2 local links (to the other three group
// members in increasing router order), 3 global link, 4 endpoint link.
const (
	dfGlobal = 3
	dfEdge   = 4
)

func (d *Dragonfly) group(n int) int  { return n / d.size }
func (d *Dragonfly) router(n int) int { return n % d.size }

// localPort returns the port index at router r (within its group) leading
// to router q of the same group.
func (d *Dragonfly) localPort(r, q int) int {
	if q < r {
		return q
	}
	return q - 1
}

// globalPeer returns the (group, router) on the other end of router r of
// group g's global link, or ok=false when the router has none (router 3).
func (d *Dragonfly) globalPeer(g, r int) (pg, pr int, ok bool) {
	if r >= d.groups-1 {
		return 0, 0, false
	}
	pg = (g + r + 1) % d.groups
	pr = ((g-pg-1)%d.groups + d.groups) % d.groups
	return pg, pr, true
}

// gatewayRouter returns the router in group g whose global link reaches
// group tg.
func (d *Dragonfly) gatewayRouter(g, tg int) int {
	return ((tg-g-1)%d.groups + d.groups) % d.groups
}

// Ports implements Topology.
func (d *Dragonfly) Ports(n int) int {
	if n >= d.nRouter {
		return 1
	}
	return 5
}

// Neighbor implements Topology.
func (d *Dragonfly) Neighbor(n, p int) (int, int, bool) {
	if n >= d.nRouter {
		if p != 0 {
			return 0, 0, false
		}
		cube := d.attach[n-d.nRouter]
		return cube, dfEdge, true
	}
	g, r := d.group(n), d.router(n)
	switch {
	case p >= 0 && p < d.size-1:
		q := p
		if q >= r {
			q++
		}
		peer := g*d.size + q
		return peer, d.localPort(q, r), true
	case p == dfGlobal:
		pg, pr, ok := d.globalPeer(g, r)
		if !ok {
			return 0, 0, false
		}
		return pg*d.size + pr, dfGlobal, true
	case p == dfEdge:
		for i, c := range d.attach {
			if c == n {
				return d.nRouter + i, 0, true
			}
		}
	}
	return 0, 0, false
}

// Route implements Topology: minimal local-global-local routing.
func (d *Dragonfly) Route(cur, dst int) int {
	if cur == dst {
		panic("network: Route called with cur == dst")
	}
	if cur >= d.nRouter {
		return 0
	}
	target := dst
	if dst >= d.nRouter {
		target = d.attach[dst-d.nRouter]
		if target == cur {
			return dfEdge
		}
	}
	g, r := d.group(cur), d.router(cur)
	tg, tr := d.group(target), d.router(target)
	if g == tg {
		return d.localPort(r, tr)
	}
	gw := d.gatewayRouter(g, tg)
	if r == gw {
		return dfGlobal
	}
	return d.localPort(r, gw)
}

// HopClass implements Topology: class 0 in the source group, class 1 once
// the packet is in the destination group (standard minimal dragonfly
// deadlock avoidance).
func (d *Dragonfly) HopClass(cur, dst int) int {
	target := dst
	if dst >= d.nRouter {
		target = d.attach[dst-d.nRouter]
	}
	c := cur
	if cur >= d.nRouter {
		c = d.attach[cur-d.nRouter]
	}
	if d.group(c) == d.group(target) {
		return 1
	}
	return 0
}
