package network

import (
	"strings"
	"testing"
)

// TestPoolRoundTrip pins the basic contract: Get returns a packet
// indistinguishable from NewPacket, and released packets are reused.
func TestPoolRoundTrip(t *testing.T) {
	pl := NewPool()
	p := pl.Get(UpdateReq, 3, 7)
	ref := NewPacket(0, UpdateReq, 3, 7)
	if p.Kind != ref.Kind || p.Src != ref.Src || p.Dst != ref.Dst || p.Size != ref.Size {
		t.Fatalf("Get mismatch: %+v vs %+v", p, ref)
	}
	p.Value = 42
	p.Hops = 3
	pl.Put(p)
	q := pl.Get(MemReadReq, 1, 2)
	if q != p {
		t.Fatal("free list not reused")
	}
	if q.Value != 0 || q.Hops != 0 || q.Kind != MemReadReq || q.Size != MemReadReqBytes {
		t.Fatalf("reused packet not reset: %+v", q)
	}
}

// TestPoolDoubleReleaseGuard simulates the release-then-reuse lifecycle
// across two simulated cycles and asserts the alias guard fires on the
// double release. Run under -race in CI: cycle 1 releases the packet at
// its consumption point; cycle 2 re-acquires the same storage for a new
// packet while a stale alias from cycle 1 attempts a second release.
func TestPoolDoubleReleaseGuard(t *testing.T) {
	pl := NewPool()
	pl.SetGuard(true)

	// Cycle 1: a component consumes and releases its packet, but keeps a
	// stale alias (the bug class the guard exists for).
	stale := pl.Get(OperandResp, 0, 5)
	pl.Put(stale)

	// The double release must panic before cycle 2 can be corrupted.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("double release did not panic")
			}
			if !strings.Contains(r.(string), "double release") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		pl.Put(stale)
	}()

	// Cycle 2: with guard poisoning, the freed packet was defused (invalid
	// kind, negative destination), so a use of the stale alias trips the
	// fabric's own checks instead of corrupting a live packet.
	if stale.Dst >= 0 || stale.Kind != KindInvalid {
		t.Fatalf("guard did not poison released packet: %+v", stale)
	}

	// Reuse after release is legal and yields a fully reset packet.
	fresh := pl.Get(UpdateReq, 1, 2)
	if fresh.Kind != UpdateReq || fresh.Dst != 2 {
		t.Fatalf("reuse after release broken: %+v", fresh)
	}
}

// TestPoolAdoptsLoosePackets: packets built with NewPacket (tests, old call
// sites) enter the pool on their first release and get the same guard.
func TestPoolAdoptsLoosePackets(t *testing.T) {
	pl := NewPool()
	p := NewPacket(9, GatherReq, 0, 1)
	pl.Put(p)
	if pl.FreeLen() != 1 {
		t.Fatal("loose packet not adopted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double release of adopted packet did not panic")
		}
	}()
	pl.Put(p)
}

// TestDeliveredCountersSurviveSynchronousRelease pins the ownership rule at
// the ejection commit: real endpoints release the packet inside Deliver, so
// the fabric must read everything it still needs (the per-kind delivery
// counter key) before handing the packet over. Guard mode poisons released
// packets, which is what made the original after-Deliver read visible.
func TestDeliveredCountersSurviveSynchronousRelease(t *testing.T) {
	f := NewFabric(NewMesh(4, nil), DefaultNoCConfig())
	f.Pool.SetGuard(true)
	for n := 0; n < f.Topo.Nodes(); n++ {
		f.SetEndpoint(n, EndpointFunc(func(p *Packet, cycle uint64) bool {
			f.Pool.Put(p) // synchronous consumer, like the real endpoints
			return true
		}))
	}
	p := f.Pool.Get(MemReadReq, 0, 5)
	if !f.Inject(0, p, 0) {
		t.Fatal("inject refused")
	}
	for c := uint64(0); c < 200 && !f.Drained(); c++ {
		f.Tick(c)
	}
	if !f.Drained() {
		t.Fatal("packet never delivered")
	}
	if got := f.Counters.Get("delivered_mem_read_req"); got != 1 {
		t.Fatalf("delivered_mem_read_req = %d, want 1 (counter keyed after ownership transfer?)", got)
	}
}
