package network

import "fmt"

// Packet pool states (Packet.poolState).
const (
	poolLoose uint8 = iota // not pool-managed (NewPacket, tests); adopted on first Put
	poolLive               // acquired from a pool, owned by exactly one component
	poolFree               // sitting in a free list; any touch is a lifecycle bug
)

// Pool is a fabric-owned Packet free list. The simulator is single-threaded
// within one machine, so Get/Put are plain slice operations with no locking;
// separate System instances (sweep workers) each own separate pools.
//
// Ownership contract (DESIGN.md "Memory discipline"): a packet is acquired
// by the component that would have called NewPacket (cpu MI path, caches via
// PacketFor, HMC controller/cube, coordinator, ARE) and travels with exactly
// one owner at a time — the fabric between Inject and a successful endpoint
// Deliver, the endpoint afterwards. It is released exactly once, at its
// single point of final consumption: the ejection commit for synchronously
// consumed kinds, the reply completion for request/response pairs, or the
// decode commit for ARE-buffered active packets. A refused Deliver releases
// nothing (the fabric still owns the packet and re-offers it).
//
// Put panics on double release in every build. SetGuard(true) additionally
// poisons released packets so that a stale alias is caught at its next use
// (an Inject of a poisoned packet panics on the invalid destination) — the
// debug mode the pool contract tests run under.
type Pool struct {
	free  []*Packet
	guard bool

	// Gets/Puts/News count pool traffic (News is the slow path: Gets that
	// had to heap-allocate). Diagnostics only, not simulated state.
	Gets uint64
	Puts uint64
	News uint64
}

// NewPool returns an empty packet pool.
func NewPool() *Pool { return &Pool{} }

// SetGuard toggles alias poisoning on release (debug builds and tests).
func (pl *Pool) SetGuard(on bool) { pl.guard = on }

// Get returns a zeroed packet of kind k from src to dst, reusing a released
// packet when one is available. The returned packet is indistinguishable
// from NewPacket(0, k, src, dst).
//
//ar:hotpath
func (pl *Pool) Get(k Kind, src, dst int) *Packet {
	pl.Gets++
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
	} else {
		pl.News++
		p = &Packet{} //ar:exempt(hotpath) pool slow path: allocates only when the free list is empty, cold after warm-up
	}
	p.Kind, p.Src, p.Dst, p.Size = k, src, dst, SizeOf(k)
	p.poolState = poolLive
	return p
}

// Put releases a packet back to the free list. Releasing a packet that is
// already free is a lifecycle bug and panics; packets built with NewPacket
// (poolLoose) are adopted into the pool on their first release.
//
//ar:hotpath
func (pl *Pool) Put(p *Packet) {
	if p.poolState == poolFree {
		panic(fmt.Sprintf("network: double release of packet id=%d kind=%s", p.ID, p.Kind))
	}
	pl.Puts++
	p.poolState = poolFree
	if pl.guard {
		// Poison so a stale alias blows up at its next use instead of
		// silently corrupting a future packet: Kind 0 is invalid and the
		// negative destination fails Inject's range check.
		p.Kind = KindInvalid
		p.Dst = -1
		p.Src = -1
		p.Meta = nil
	}
	pl.free = append(pl.free, p) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
}

// FreeLen reports the current free-list length (tests).
func (pl *Pool) FreeLen() int { return len(pl.free) }
