package network

import (
	"fmt"
	"testing"
)

// fuzzSink records the exact delivery sequence at one node, with a
// scripted per-delivery refusal pattern so endpoint backpressure paths are
// exercised too. Sequences are compared per node: a node's deliveries (and
// their cycles) are the sharded kernel's observable contract, while the
// interleaving across nodes of one cycle is shard-local by construction.
type fuzzSink struct {
	node    int
	log     []string
	refuse  uint64 // bit i: refuse the i-th delivery attempt at this node
	attempt uint
}

func (c *fuzzSink) Deliver(p *Packet, cycle uint64) bool {
	i := c.attempt
	c.attempt++
	if i < 64 && c.refuse>>i&1 == 1 {
		return false
	}
	c.log = append(c.log, fmt.Sprintf("c%d k%d src%d tag%d", cycle, p.Kind, p.Src, p.Tag))
	return true
}

// buildFuzzFabric wires a fabric over the 16+4 dragonfly with fuzzSinks at
// every node. domains=1 reproduces the sequential kernel; domains>1
// partitions nodes round-robin and ticks per-domain with a commit after
// every cycle, exactly like the sharded conductor's wave schedule.
func buildFuzzFabric(domains int, refuse uint64) (*Fabric, []*fuzzSink) {
	topo := NewDragonfly([]int{0, 4, 8, 12})
	f := NewFabric(topo, DefaultMemNetConfig())
	n := topo.Nodes()
	if domains > 1 {
		if domains > n {
			domains = n
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i % domains
		}
		f.ShardNodes(assign, domains)
	}
	sinks := make([]*fuzzSink, n)
	for i := 0; i < n; i++ {
		sinks[i] = &fuzzSink{node: i, refuse: refuse >> uint(i%7)}
		f.SetEndpoint(i, sinks[i])
	}
	return f, sinks
}

// FuzzShardedFabricDelivery drives identical scripted traffic through a
// sequential (single-domain) fabric and a sharded (multi-domain) fabric
// and asserts the committed delivery sequences are identical — packet by
// packet, cycle by cycle, in order. This is the conservative-lookahead
// contract of the sharded kernel: staged cross-domain wheel pushes and
// deferred credits must reproduce the sequential landing cycles and
// per-edge FIFO order under arbitrary traffic, shard counts and endpoint
// refusal patterns.
func FuzzShardedFabricDelivery(f *testing.F) {
	f.Add(uint64(0x1234), uint8(4), uint8(40), uint64(0))
	f.Add(uint64(0xdead), uint8(2), uint8(80), uint64(0xf0f0))
	f.Add(uint64(7), uint8(7), uint8(120), uint64(0b1010101))
	f.Fuzz(func(t *testing.T, seed uint64, domains uint8, injections uint8, refuse uint64) {
		nd := int(domains%16) + 2 // 2..17 domains
		seq, seqSinks := buildFuzzFabric(1, refuse)
		shd, shdSinks := buildFuzzFabric(nd, refuse)

		// Scripted traffic: a deterministic xorshift stream of (cycle,
		// src, dst, kind) injection attempts, identical for both fabrics.
		rng := seed | 1
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		type inj struct {
			cycle    uint64
			src, dst int
			kind     Kind
			tag      uint64
		}
		kinds := []Kind{MemReadReq, MemReadResp, UpdateReq, OperandReq, GatherResp, ActiveStoreReq}
		script := make([]inj, int(injections))
		for i := range script {
			src := next(20)
			dst := next(20)
			if dst == src {
				dst = (dst + 1) % 20
			}
			script[i] = inj{
				cycle: uint64(next(64)) * 2, // memnet edges are even cycles
				src:   src,
				dst:   dst,
				kind:  kinds[next(len(kinds))],
				tag:   uint64(i),
			}
		}
		drive := func(fab *Fabric) {
			si := 0
			// Injections sorted by script order within a cycle loop: the
			// script's cycles are arbitrary, so attempt each injection at
			// its cycle (skips silently if the queue is full — identically
			// for both fabrics, since occupancy evolution is identical).
			for cycle := uint64(0); cycle < 600; cycle++ {
				for i := range script {
					if script[i].cycle == cycle {
						p := fab.PoolAt(script[i].src).Get(script[i].kind, script[i].src, script[i].dst)
						p.Tag = script[i].tag
						if !fab.Inject(script[i].src, p, cycle) {
							fab.PoolAt(script[i].src).Put(p)
						}
						si++
					}
				}
				if fab.Domains() == 1 {
					fab.Tick(cycle)
				} else {
					for d := 0; d < fab.Domains(); d++ {
						fab.Segment(d).Tick(cycle)
					}
					fab.CommitStaged()
				}
			}
		}
		drive(seq)
		drive(shd)
		for n := range seqSinks {
			a, b := seqSinks[n].log, shdSinks[n].log
			if len(a) != len(b) {
				t.Fatalf("node %d delivery counts differ: sequential %d, sharded(%d) %d", n, len(a), nd, len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d delivery %d differs: sequential %q, sharded(%d) %q", n, i, a[i], nd, b[i])
				}
			}
		}
		if seq.InFlight() != shd.InFlight() {
			t.Fatalf("in-flight differs after drive: %d vs %d", seq.InFlight(), shd.InFlight())
		}
	})
}
