package network

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Endpoint consumes packets that reach their destination node. Deliver
// returns false to refuse the packet (component backpressure); the fabric
// keeps it queued and re-offers it on later cycles, which is how Active-
// Routing Engine stalls propagate back into the network (Fig 5.2's stall
// component).
//
// A successful Deliver transfers packet ownership to the endpoint, which
// must release the packet to its domain's Pool at its single point of final
// consumption (see Pool and DESIGN.md "Memory discipline").
type Endpoint interface {
	Deliver(p *Packet, cycle uint64) bool
}

// EndpointFunc adapts a function to Endpoint.
type EndpointFunc func(p *Packet, cycle uint64) bool

// Deliver calls f.
func (f EndpointFunc) Deliver(p *Packet, cycle uint64) bool { return f(p, cycle) }

// Config carries the fabric parameters of Table 4.1. Queue depths double as
// the fixed ring-buffer capacities of the router input and injection queues
// (rounded up to powers of two), so the steady-state fabric never allocates.
type Config struct {
	VCs           int    // virtual channels (request/response × 2 hop classes)
	QueueDepth    int    // packets per (port, VC) input queue
	InjDepth      int    // packets per injection queue
	LinkLatency   uint64 // link traversal latency, network cycles
	LinkBandwidth int    // bytes per network cycle per link
	RouterDelay   uint64 // router pipeline latency, network cycles
	ClockDiv      uint64 // simulator cycles per network cycle
}

// DefaultMemNetConfig returns the memory-network parameters: 1 GHz network
// clock under a 2 GHz core clock, 16-lane 12.5 Gbps links (25 GB/s ≈ 25
// bytes per network cycle, rounded to 32 for the 1 GHz crossbar clock).
func DefaultMemNetConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   4,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      2,
	}
}

// DefaultNoCConfig returns the on-chip 4×4 mesh parameters (full core
// clock, wide links, short hops).
func DefaultNoCConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   1,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      1,
	}
}

// vcBase maps a packet kind to its VC class pair. Three classes break
// request-generates-request protocol deadlock: plain requests (updates,
// gathers, memory reads) may generate operand/active-store requests, which
// only generate responses — an acyclic class order, each class guaranteed
// to drain assuming the classes above it do.
func vcBase(k Kind) int {
	switch {
	case k.IsResponse():
		return 4
	case k == OperandReq || k == ActiveStoreReq:
		return 2
	default:
		return 0
	}
}

type arrival struct {
	p     *Packet
	port  int
	vc    int
	cycle uint64
}

type upstream struct {
	node int
	port int
}

// credRef names one deferred credit: input queue idx at router node.
type credRef struct {
	node int32
	idx  int32
}

// stagedPush is one cross-domain wheel push awaiting its serial commit:
// packet a lands at router node's arrival wheel slot t (network cycles).
type stagedPush struct {
	node int32
	t    uint64
	a    arrival
}

// link is a precomputed Topology.Neighbor result for one output port.
type link struct {
	peer     int
	peerPort int
	ok       bool
}

type router struct {
	node     int
	ports    int
	dom      *domain      // owning tick domain
	in       []packetRing // [port*VCs + vc]
	inj      []packetRing // [vc]
	up       []upstream   // [port] upstream node/port, node == -1 if unused
	credits  []int        // [port*VCs + vc] credits toward downstream input
	linkBusy []uint64     // [port] output link busy-until (simulator cycles)
	pending  arrivalWheel // in-flight packets heading to this router
	rrPort   int          // round-robin arbitration state

	// pendingMin is the earliest arrival cycle in pending (sim.Never when
	// empty), so the landing phase and the idle hint are O(1) while every
	// in-flight packet is still on the wire.
	pendingMin uint64

	// Precomputed topology views (the topology is immutable).
	links    []link // [port]
	routeTo  []int8 // [dst] output port, -1 for self
	hopClass []int8 // [dst]

	// Occupancy tracking so the tick phases touch only non-empty state.
	inCount  int    // packets across all input queues
	injCount int    // packets across all injection queues
	occ      uint64 // bit q set iff queue q non-empty; in queues at
	// [0, ports*VCs), injection queues at [ports*VCs, ports*VCs+VCs).
	// Valid only when maskable (nin <= 64); all our topologies qualify.
	maskable bool

	// Head metadata cache, maintained on every head change (push to an
	// empty queue, pop, landing): the arbitration loops compare small
	// integers instead of dereferencing the head packet per attempt.
	// headOut[q] is the output port the head routes to (-1 when the queue
	// is empty or the head ejects here); headVC[q] is its precomputed
	// downstream VC; ejectHead has bit q set iff the head's destination is
	// this node. wantCount[out] counts occupied queues whose head routes to
	// out, and wantMask mirrors it as a bitmask so forward() visits only
	// output ports some head actually wants.
	headOut   []int8 // [nin]
	headVC    []int8 // [nin]
	ejectHead uint64
	wantCount []uint16 // [ports]
	wantMask  uint64
}

// queueAt returns input queue idx (link inputs first, then injection).
func (r *router) queueAt(idx, vcs int) *packetRing {
	if idx >= r.ports*vcs {
		return &r.inj[idx-r.ports*vcs]
	}
	return &r.in[idx]
}

// updateHead refreshes the head metadata for queue idx.
func (f *Fabric) updateHead(r *router, idx int) {
	if old := r.headOut[idx]; old >= 0 {
		r.wantCount[old]--
		if r.wantCount[old] == 0 {
			r.wantMask &^= 1 << uint(old)
		}
	}
	q := r.queueAt(idx, f.Cfg.VCs)
	if q.len() == 0 {
		r.headOut[idx] = -1
		r.ejectHead &^= 1 << uint(idx)
		return
	}
	h := q.peek()
	if h.Dst == r.node {
		r.headOut[idx] = -1
		r.ejectHead |= 1 << uint(idx)
		return
	}
	r.ejectHead &^= 1 << uint(idx)
	out := r.routeTo[h.Dst]
	r.headOut[idx] = out
	r.headVC[idx] = int8(vcBase(h.Kind) + int(r.hopClass[h.Dst]))
	r.wantCount[out]++
	r.wantMask |= 1 << uint(out)
}

func (r *router) markIn(idx int)   { r.occ |= 1 << uint(idx) }
func (r *router) unmarkIn(idx int) { r.occ &^= 1 << uint(idx) }

// domain is the per-shard slice of fabric state: the routers a tick domain
// owns plus every counter, mask, pool and staging buffer those routers
// touch. The sequential kernel runs one domain holding every node; the
// sharded kernel partitions nodes so that each domain's tick (land, eject,
// forward) touches only its own state, staging cross-domain effects for a
// serial commit (DESIGN.md "Sharded kernel").
type domain struct {
	idx   int
	nodes []int // owned routers, ascending

	// pool is the domain's packet free list. Components attached to this
	// domain's nodes acquire and release packets here (PoolAt); ownership
	// transfer at a staged cross-domain edge means a packet may retire into
	// a different domain's pool than it was drawn from, which the free-list
	// semantics are indifferent to.
	pool *Pool

	// Occupancy: inflight counts packets owned by this domain (queued at
	// its routers, on wires toward them after commit, or awaiting commit in
	// its push stage); queued is the subset in input/injection queues.
	inflight int
	queued   int

	// Router-level occupancy masks, bit = global node id (valid while the
	// fabric is maskable): busyNodes marks owned routers holding queued
	// packets, pendingNodes owned routers with in-flight arrivals.
	busyNodes    uint64
	pendingNodes uint64

	// waker invalidates the scheduler's cached idle hint for this domain's
	// segment; Inject at an owned node and the serial push commit wake it.
	waker *sim.Waker

	// pendingCredits defers same-domain credit returns to the start of the
	// domain's next tick (1-cycle credit turnaround); stagedCredits holds
	// returns whose upstream router lives in another domain, bumped by the
	// serial commit. Both slices are reused; steady state allocates nothing.
	pendingCredits []credRef
	stagedCredits  []credRef

	// stagedPushes holds cross-domain wheel pushes in forward order,
	// committed serially in (domain, FIFO) order — exactly the per-edge
	// FIFO the sequential kernel produces, since any (dest, port) pair has
	// a single upstream router and therefore a single staging domain.
	stagedPushes []stagedPush

	// Counters for Fig 5.4 and the energy model (merged across domains at
	// collection time; every merge is a commutative sum).
	counters     *stats.Set
	deliveredH   [kindCount]stats.Handle
	HopBytes     uint64
	Delivered    uint64
	Injected     uint64
	Movement     stats.DataMovement
	ejectStalled uint64
	nextID       uint64
}

// Fabric is one interconnection network instance: topology + routers +
// endpoints, partitioned into one (sequential) or more (sharded) domains.
type Fabric struct {
	Topo Topology
	Cfg  Config

	// Pool aliases the first domain's packet free list — the whole fabric's
	// free list in the sequential kernel. Sharded components use PoolAt.
	Pool *Pool

	// Counters aliases the first domain's counter set; MergedCounters folds
	// every domain for export.
	Counters *stats.Set

	routers   []*router
	endpoints []Endpoint
	doms      []*domain

	nodeMaskable bool
	wheelHorizon uint64 // arrival-wheel capacity in network cycles

	// clockMask enables mask/shift arithmetic for the (common) power-of-two
	// ClockDiv: cycle%ClockDiv == cycle&clockMask. clockShift is
	// log2(ClockDiv); both are valid only when clockPow2.
	clockMask  uint64
	clockShift uint
	clockPow2  bool

	// classMask[c] selects input-queue occupancy bits whose VC belongs to
	// ejection class c (vc/2 == c); shared by all routers since the bit
	// layout has stride Cfg.VCs.
	classMask [3]uint64
}

// NewFabric builds a network over topo with a single tick domain (the
// sequential kernel). Endpoints are attached later with SetEndpoint; the
// sharded kernel repartitions with ShardNodes before any traffic flows.
func NewFabric(topo Topology, cfg Config) *Fabric {
	if cfg.VCs <= 0 || cfg.QueueDepth <= 0 || cfg.LinkBandwidth <= 0 || cfg.ClockDiv == 0 {
		panic("network: invalid fabric config")
	}
	f := &Fabric{Topo: topo, Cfg: cfg}
	n := topo.Nodes()
	f.nodeMaskable = n <= 64
	if cfg.ClockDiv&(cfg.ClockDiv-1) == 0 {
		f.clockPow2 = true
		f.clockMask = cfg.ClockDiv - 1
		for d := cfg.ClockDiv; d > 1; d >>= 1 {
			f.clockShift++
		}
	}
	// Size the arrival wheels to the worst-case wire latency in network
	// cycles: serialization of the largest packet plus link and router
	// pipeline latency (+1 slot of slack).
	maxSer := (maxPacketBytes + cfg.LinkBandwidth - 1) / cfg.LinkBandwidth
	wheelSlots := maxSer + int(cfg.LinkLatency) + int(cfg.RouterDelay) + 1
	f.wheelHorizon = uint64(wheelSlots)
	f.routers = make([]*router, n)
	f.endpoints = make([]Endpoint, n)
	for i := 0; i < n; i++ {
		ports := topo.Ports(i)
		r := &router{
			node:       i,
			ports:      ports,
			in:         make([]packetRing, ports*cfg.VCs),
			inj:        make([]packetRing, cfg.VCs),
			up:         make([]upstream, ports),
			credits:    make([]int, ports*cfg.VCs),
			linkBusy:   make([]uint64, ports),
			pending:    newArrivalWheel(wheelSlots),
			pendingMin: sim.Never,
			links:      make([]link, ports),
			routeTo:    make([]int8, n),
			hopClass:   make([]int8, n),
			maskable:   ports*cfg.VCs+cfg.VCs <= 64,
		}
		for q := range r.in {
			r.in[q] = newPacketRing(cfg.QueueDepth)
		}
		for q := range r.inj {
			r.inj[q] = newPacketRing(cfg.InjDepth)
		}
		nin := ports*cfg.VCs + cfg.VCs
		r.headOut = make([]int8, nin)
		r.headVC = make([]int8, nin)
		r.wantCount = make([]uint16, ports)
		for q := 0; q < nin; q++ {
			r.headOut[q] = -1
		}
		for p := 0; p < ports; p++ {
			r.up[p] = upstream{node: -1}
			peer, peerPort, ok := topo.Neighbor(i, p)
			r.links[p] = link{peer: peer, peerPort: peerPort, ok: ok}
		}
		for dst := 0; dst < n; dst++ {
			if dst == i {
				r.routeTo[dst] = -1
				continue
			}
			r.routeTo[dst] = int8(topo.Route(i, dst))
			r.hopClass[dst] = int8(topo.HopClass(i, dst))
		}
		f.routers[i] = r
	}
	for c := 0; c < 3; c++ {
		for idx := 0; idx < 64; idx++ {
			if (idx%cfg.VCs)/2 == c {
				f.classMask[c] |= 1 << uint(idx)
			}
		}
	}
	// Wire credits and upstream pointers.
	for i := 0; i < n; i++ {
		r := f.routers[i]
		for p := 0; p < r.ports; p++ {
			l := r.links[p]
			if !l.ok {
				continue
			}
			f.routers[l.peer].up[l.peerPort] = upstream{node: i, port: p}
			for vc := 0; vc < cfg.VCs; vc++ {
				r.credits[p*cfg.VCs+vc] = cfg.QueueDepth
			}
		}
	}
	// Single domain over every node: the sequential kernel.
	assign := make([]int, n)
	f.ShardNodes(assign, 1)
	return f
}

// newDomain builds an empty domain with its own pool and counter set.
func (f *Fabric) newDomain(idx int) *domain {
	d := &domain{idx: idx, pool: NewPool(), counters: stats.NewSet()}
	for k := Kind(0); k < kindCount; k++ {
		d.deliveredH[k] = d.counters.Register("delivered_" + k.String())
	}
	return d
}

// ShardNodes partitions the fabric's routers into n tick domains:
// assign[node] names the domain owning each node. It must run before any
// traffic flows (the constructor calls it with a single domain; the
// sharded system repartitions immediately after construction). Counters,
// masks, pools and staging buffers become domain-local; Pool and Counters
// re-alias domain 0.
func (f *Fabric) ShardNodes(assign []int, n int) {
	if len(assign) != len(f.routers) {
		panic("network: ShardNodes assignment length mismatch")
	}
	for _, d := range f.doms {
		if d.inflight != 0 {
			panic("network: ShardNodes with traffic in flight")
		}
	}
	f.doms = make([]*domain, n)
	for i := range f.doms {
		f.doms[i] = f.newDomain(i)
	}
	for node, di := range assign {
		if di < 0 || di >= n {
			panic("network: ShardNodes assignment out of range")
		}
		d := f.doms[di]
		d.nodes = append(d.nodes, node)
		f.routers[node].dom = d
	}
	f.Pool = f.doms[0].pool
	f.Counters = f.doms[0].counters
}

// Domains reports the current partition count.
func (f *Fabric) Domains() int { return len(f.doms) }

// DomainNodes reports how many routers domain i owns.
func (f *Fabric) DomainNodes(i int) int { return len(f.doms[i].nodes) }

// PoolAt returns the packet free list of the domain owning node. Components
// acquire and release packets through the pool of the node they are
// attached to, which keeps pool access single-threaded under the sharded
// kernel's wave schedule.
func (f *Fabric) PoolAt(node int) *Pool { return f.routers[node].dom.pool }

// SetEndpoint attaches the component that consumes packets at node n.
func (f *Fabric) SetEndpoint(n int, e Endpoint) { f.endpoints[n] = e }

// SetWaker implements sim.WakeSetter for the sequential kernel, where the
// whole fabric is one component: Inject is the fabric's only external entry
// point; everything else advances through its own Tick.
func (f *Fabric) SetWaker(w *sim.Waker) { f.doms[0].waker = w }

// NextID returns a fresh packet id (domain 0; diagnostics only).
func (f *Fabric) NextID() uint64 {
	f.doms[0].nextID++
	return f.doms[0].nextID
}

// InjectionFree reports the free injection slots for p's VC at node n.
func (f *Fabric) InjectionFree(n int, p *Packet) int {
	vc := vcBase(p.Kind) // injection queues keyed by base class only
	return f.Cfg.InjDepth - f.routers[n].inj[vc].len()
}

// Inject offers packet p for injection at node n; it reports false when the
// injection queue is full. Src is forced to n. Injection touches only the
// source node's domain, so components may inject at their own node from any
// wave.
func (f *Fabric) Inject(n int, p *Packet, cycle uint64) bool {
	if p.Dst < 0 || p.Dst >= f.Topo.Nodes() {
		panic(fmt.Sprintf("network: inject to invalid node %d", p.Dst))
	}
	if p.Dst == n {
		panic("network: inject to self; deliver locally instead")
	}
	r := f.routers[n]
	vc := vcBase(p.Kind)
	if r.inj[vc].len() >= f.Cfg.InjDepth {
		return false
	}
	p.Src = n
	if p.InjectCycle == 0 {
		p.InjectCycle = cycle
	}
	r.inj[vc].push(p)
	idx := r.ports*f.Cfg.VCs + vc
	r.markIn(idx)
	if r.inj[vc].len() == 1 {
		f.updateHead(r, idx)
	}
	r.injCount++
	d := r.dom
	d.busyNodes |= 1 << uint(n)
	d.waker.Wake()
	d.inflight++
	d.queued++
	d.Injected++
	f.account(d, p)
	return true
}

func (f *Fabric) account(d *domain, p *Packet) {
	sz := uint64(p.Size)
	switch {
	case p.Kind.Active() && p.Kind.IsResponse():
		d.Movement.ActiveResp += sz
	case p.Kind.Active():
		d.Movement.ActiveReq += sz
	case p.Kind.IsResponse():
		d.Movement.NormResp += sz
	default:
		d.Movement.NormReq += sz
	}
}

// Drained reports whether no packets remain anywhere in the fabric. It is a
// counter read per domain; the full-scan equivalent is InFlightScan.
func (f *Fabric) Drained() bool {
	for _, d := range f.doms {
		if d.inflight != 0 {
			return false
		}
	}
	return true
}

// InFlight counts packets currently inside the fabric (counter reads).
func (f *Fabric) InFlight() int {
	n := 0
	for _, d := range f.doms {
		n += d.inflight
	}
	return n
}

// InFlightScan recounts in-flight packets by walking every queue and stage.
// It exists to cross-check the occupancy counters in tests.
func (f *Fabric) InFlightScan() int {
	n := 0
	for _, r := range f.routers {
		n += r.pending.len()
		for i := range r.in {
			n += r.in[i].len()
		}
		for i := range r.inj {
			n += r.inj[i].len()
		}
	}
	for _, d := range f.doms {
		n += len(d.stagedPushes)
	}
	return n
}

// MovementTotal sums the Fig 5.4 data-movement split across domains.
func (f *Fabric) MovementTotal() stats.DataMovement {
	var m stats.DataMovement
	for _, d := range f.doms {
		m.NormReq += d.Movement.NormReq
		m.NormResp += d.Movement.NormResp
		m.ActiveReq += d.Movement.ActiveReq
		m.ActiveResp += d.Movement.ActiveResp
	}
	return m
}

// HopBytesTotal sums bytes × link traversals across domains (energy model).
func (f *Fabric) HopBytesTotal() uint64 {
	n := uint64(0)
	for _, d := range f.doms {
		n += d.HopBytes
	}
	return n
}

// DeliveredTotal sums delivered packets across domains.
func (f *Fabric) DeliveredTotal() uint64 {
	n := uint64(0)
	for _, d := range f.doms {
		n += d.Delivered
	}
	return n
}

// InjectedTotal sums injected packets across domains.
func (f *Fabric) InjectedTotal() uint64 {
	n := uint64(0)
	for _, d := range f.doms {
		n += d.Injected
	}
	return n
}

// EjectStalledTotal sums refused endpoint deliveries across domains.
func (f *Fabric) EjectStalledTotal() uint64 {
	n := uint64(0)
	for _, d := range f.doms {
		n += d.ejectStalled
	}
	return n
}

// MergedCounters folds every domain's delivery counters into one set.
func (f *Fabric) MergedCounters() *stats.Set {
	out := stats.NewSet()
	for _, d := range f.doms {
		out.Merge(d.counters)
	}
	return out
}

// NextWork implements sim.Idler for the sequential kernel (domain 0 is the
// whole fabric).
func (f *Fabric) NextWork(now uint64) uint64 {
	return f.domainNextWork(f.doms[0], now)
}

// domainNextWork reports the earliest cycle the domain's tick has work: the
// next clock edge while packets are queued at its routers, or the earliest
// in-flight arrival when everything it owns is on the wire.
func (f *Fabric) domainNextWork(d *domain, now uint64) uint64 {
	if d.inflight == 0 {
		return sim.Never
	}
	if d.queued > 0 {
		return f.alignUp(now)
	}
	next := sim.Never
	if f.nodeMaskable {
		for m := d.pendingNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if pm := f.routers[node].pendingMin; pm < next {
				next = pm
			}
		}
	} else {
		for _, node := range d.nodes {
			if pm := f.routers[node].pendingMin; pm < next {
				next = pm
			}
		}
	}
	if next <= now {
		return f.alignUp(now)
	}
	return f.alignUp(next)
}

// alignUp rounds c up to the next network clock edge.
func (f *Fabric) alignUp(c uint64) uint64 {
	if f.clockPow2 {
		return (c + f.clockMask) &^ f.clockMask
	}
	div := f.Cfg.ClockDiv
	if rem := c % div; rem != 0 {
		return c + div - rem
	}
	return c
}

// onEdge reports whether c is a network clock edge.
func (f *Fabric) onEdge(c uint64) bool {
	if f.clockPow2 {
		return c&f.clockMask == 0
	}
	return c%f.Cfg.ClockDiv == 0
}

// netCycle converts a (clock-edge) simulator cycle to network cycles.
func (f *Fabric) netCycle(c uint64) uint64 {
	if f.clockPow2 {
		return c >> f.clockShift
	}
	return c / f.Cfg.ClockDiv
}

// Tick advances the whole fabric by one simulator cycle (the sequential
// kernel: every node lives in domain 0).
//
//ar:hotpath
func (f *Fabric) Tick(cycle uint64) {
	f.tickDomain(f.doms[0], cycle)
}

// tickDomain advances one domain by one simulator cycle: apply deferred
// credits, then land, eject and forward its routers. Under the sharded
// kernel each domain's tick touches only domain-local state plus its own
// staging buffers, so domains tick concurrently; with one domain this is
// exactly the sequential fabric tick.
//
//ar:hotpath
func (f *Fabric) tickDomain(d *domain, cycle uint64) {
	if !f.onEdge(cycle) {
		return
	}
	if len(d.pendingCredits) > 0 {
		for _, c := range d.pendingCredits {
			f.routers[c.node].credits[c.idx]++
		}
		d.pendingCredits = d.pendingCredits[:0]
	}
	if d.inflight == 0 {
		return
	}
	// Phase 1: land arrivals into input queues (credits guaranteed space).
	// The scan compacts the ring in place; routers whose earliest arrival
	// is still on the wire are skipped entirely via pendingMin, and only
	// routers with any pending arrival are visited at all.
	if f.nodeMaskable {
		for m := d.pendingNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			f.land(f.routers[node], cycle)
		}
	} else {
		for _, node := range d.nodes {
			f.land(f.routers[node], cycle)
		}
	}
	// Phase 2: ejection — deliver packets that reached their destination.
	// Ejection handlers may synchronously inject new packets (marking more
	// routers busy), but injection never adds input-queue packets, so the
	// snapshot covers every router with ejectable state.
	if f.nodeMaskable {
		for m := d.busyNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if r := f.routers[node]; r.inCount > 0 {
				f.eject(r, cycle)
			}
		}
	} else {
		for _, node := range d.nodes {
			if r := f.routers[node]; r.inCount > 0 {
				f.eject(r, cycle)
			}
		}
	}
	// Phase 3: switch allocation and forwarding (forwarding moves packets
	// to same-domain pending wheels directly and stages cross-domain pushes
	// for the serial commit; the snapshot is complete).
	if f.nodeMaskable {
		for m := d.busyNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if r := f.routers[node]; r.inCount+r.injCount > 0 {
				f.forward(r, cycle)
			}
		}
	} else {
		for _, node := range d.nodes {
			if r := f.routers[node]; r.inCount+r.injCount > 0 {
				f.forward(r, cycle)
			}
		}
	}
}

// CommitStaged applies every domain's cross-domain effects — wheel pushes
// in (domain, FIFO) order and staged credit increments — and wakes the
// domains that received work. It runs in a serial section between waves;
// with a single domain it is never needed (nothing stages).
func (f *Fabric) CommitStaged() {
	for _, d := range f.doms {
		for i := range d.stagedPushes {
			sp := &d.stagedPushes[i]
			peer := f.routers[sp.node]
			pd := peer.dom
			peer.pending.push(sp.t, sp.a)
			if sp.a.cycle < peer.pendingMin {
				peer.pendingMin = sp.a.cycle
			}
			pd.pendingNodes |= 1 << uint(sp.node)
			d.inflight--
			pd.inflight++
			pd.waker.Wake()
			d.stagedPushes[i] = stagedPush{}
		}
		d.stagedPushes = d.stagedPushes[:0]
		for _, c := range d.stagedCredits {
			f.routers[c.node].credits[c.idx]++
		}
		d.stagedCredits = d.stagedCredits[:0]
	}
}

// land moves arrivals whose wire traversal has completed into their input
// queues by draining the due wheel buckets in time order.
func (f *Fabric) land(r *router, cycle uint64) {
	if r.pendingMin > cycle {
		return
	}
	d := r.dom
	nowNet := f.netCycle(cycle)
	for t := f.netCycle(r.pendingMin); t <= nowNet; t++ {
		b := r.pending.take(t)
		for i := range b {
			a := &b[i]
			idx := a.port*f.Cfg.VCs + a.vc
			r.in[idx].push(a.p)
			if r.in[idx].len() == 1 {
				f.updateHead(r, idx)
			}
			r.inCount++
			r.markIn(idx)
			d.queued++
		}
		r.pending.putBack(t, b)
	}
	d.busyNodes |= 1 << uint(r.node)
	if r.pending.len() == 0 {
		r.pendingMin = sim.Never
		d.pendingNodes &^= 1 << uint(r.node)
		return
	}
	for t := nowNet + 1; ; t++ {
		if len(r.pending.buckets[t&r.pending.mask]) > 0 {
			r.pendingMin = t * f.Cfg.ClockDiv
			return
		}
	}
}

// eject delivers destination packets at router r, higher traffic classes
// first (responses, then operand requests, then plain requests) so the
// drain order matches the deadlock-freedom argument. Each queue gets one
// delivery attempt per cycle; endpoint refusals backpressure the network.
// Ejection bandwidth is otherwise unbounded — a modeling simplification the
// simulated results depend on (see DESIGN.md). Only occupied (port, VC)
// queues are visited; the visit order (class descending, then port then VC
// ascending) matches the plain scan.
//
//ar:hotpath
func (f *Fabric) eject(r *router, cycle uint64) {
	ep := f.endpoints[r.node]
	for pass := 0; pass < 3; pass++ {
		class := 2 - pass // 2=response, 1=operand, 0=request
		if r.maskable {
			// Only queues whose cached head actually ejects here are
			// candidates; the plain scan's other visits were guaranteed
			// no-ops (head destined elsewhere).
			m := r.occ & f.classMask[class] & r.ejectHead
			for m != 0 {
				idx := bits.TrailingZeros64(m)
				m &= m - 1
				if idx >= r.ports*f.Cfg.VCs {
					break // injection-queue bits: not ejectable
				}
				f.ejectQueue(r, ep, idx, cycle)
			}
			continue
		}
		for port := 0; port < r.ports; port++ {
			for vc := 0; vc < f.Cfg.VCs; vc++ {
				if vc/2 != class {
					continue
				}
				f.ejectQueue(r, ep, port*f.Cfg.VCs+vc, cycle)
			}
		}
	}
}

// ejectQueue delivers at most one packet from input queue idx (each queue
// gets one ejection attempt per class pass, exactly like the plain scan);
// it reports whether a packet was popped. A successful Deliver is the
// ejection commit: ownership passes to the endpoint, which releases the
// packet to its domain pool at its final consumption point.
//
//ar:hotpath
func (f *Fabric) ejectQueue(r *router, ep Endpoint, idx int, cycle uint64) bool {
	q := &r.in[idx]
	if q.len() == 0 || q.peek().Dst != r.node {
		return false
	}
	p := q.peek()
	if ep == nil {
		panic(fmt.Sprintf("network: packet %s for node %d with no endpoint", p.Kind, r.node))
	}
	p.ArriveCycle = cycle
	// A successful Deliver transfers ownership — synchronous consumers
	// release the packet before returning — so everything the fabric still
	// needs must be read first.
	kind := p.Kind
	d := r.dom
	if !ep.Deliver(p, cycle) {
		d.ejectStalled++
		return false
	}
	q.pop()
	r.inCount--
	d.queued--
	d.inflight--
	if q.len() == 0 {
		r.unmarkIn(idx)
		if r.inCount+r.injCount == 0 {
			d.busyNodes &^= 1 << uint(r.node)
		}
	}
	f.updateHead(r, idx)
	f.returnCredit(r, idx/f.Cfg.VCs, idx%f.Cfg.VCs)
	d.Delivered++
	d.counters.IncH(d.deliveredH[kind])
	return true
}

// forward performs output-port arbitration: for every output port pick one
// eligible head packet (round-robin over inputs including injection). Only
// occupied queues are visited, in exactly the round-robin order of the
// plain scan.
//
//ar:hotpath
func (f *Fabric) forward(r *router, cycle uint64) {
	nin := r.ports*f.Cfg.VCs + f.Cfg.VCs // link inputs + injection queues
	for out := 0; out < r.ports; out++ {
		// Skip output ports no head currently wants. The mask is re-read
		// every iteration because a pop can promote a new head wanting a
		// later port this same cycle.
		if r.wantMask>>uint(out)&1 == 0 {
			continue
		}
		if r.linkBusy[out] > cycle {
			continue
		}
		l := r.links[out]
		if !l.ok {
			continue
		}
		if r.maskable {
			// Visit occupied queues in (rrPort + k) % nin order: the bits
			// at and above rrPort first, then the wrapped-around low bits.
			// The cached headOut filters ineligible queues with one int8
			// compare before any packet dereference.
			high := r.occ & (^uint64(0) << uint(r.rrPort))
			low := r.occ &^ (^uint64(0) << uint(r.rrPort))
			done := false
			for _, m := range [2]uint64{high, low} {
				for m != 0 {
					idx := bits.TrailingZeros64(m)
					m &= m - 1
					if int(r.headOut[idx]) != out {
						continue
					}
					// Cached head VC: refuse on missing credits without
					// touching the packet at all.
					if r.credits[out*f.Cfg.VCs+int(r.headVC[idx])] <= 0 {
						continue
					}
					if f.tryForward(r, out, idx, l, cycle, nin) {
						done = true
						break
					}
				}
				if done {
					break
				}
			}
			continue
		}
		for k := 0; k < nin; k++ {
			idx := (r.rrPort + k) % nin
			if f.tryForward(r, out, idx, l, cycle, nin) {
				break
			}
		}
	}
}

// tryForward attempts to transmit the head of input queue idx through
// output port out; it reports whether a packet was sent. On the maskable
// path the caller has already matched the cached headOut, so the plain
// checks below only run for the non-maskable fallback (and stay correct
// either way).
func (f *Fabric) tryForward(r *router, out, idx int, l link, cycle uint64, nin int) bool {
	q := r.queueAt(idx, f.Cfg.VCs)
	injected := idx >= r.ports*f.Cfg.VCs
	if q.len() == 0 {
		return false
	}
	p := q.peek()
	if p.Dst == r.node {
		return false // ejection handles it
	}
	if int(r.routeTo[p.Dst]) != out {
		return false
	}
	vc := vcBase(p.Kind) + int(r.hopClass[p.Dst])
	if r.credits[out*f.Cfg.VCs+vc] <= 0 {
		return false
	}
	// Transmit.
	d := r.dom
	q.pop()
	if q.len() == 0 {
		r.unmarkIn(idx)
	}
	f.updateHead(r, idx)
	if injected {
		r.injCount--
	} else {
		r.inCount--
		f.returnCredit(r, idx/f.Cfg.VCs, idx%f.Cfg.VCs)
	}
	if r.inCount+r.injCount == 0 {
		d.busyNodes &^= 1 << uint(r.node)
	}
	d.queued--
	r.credits[out*f.Cfg.VCs+vc]--
	ser := uint64((p.Size + f.Cfg.LinkBandwidth - 1) / f.Cfg.LinkBandwidth)
	busy := ser * f.Cfg.ClockDiv
	r.linkBusy[out] = cycle + busy
	arrive := cycle + (ser+f.Cfg.LinkLatency+f.Cfg.RouterDelay)*f.Cfg.ClockDiv
	p.Hops++
	d.HopBytes += uint64(p.Size)
	if ser+f.Cfg.LinkLatency+f.Cfg.RouterDelay >= f.wheelHorizon {
		panic("network: arrival beyond wheel horizon")
	}
	peer := f.routers[l.peer]
	a := arrival{p: p, port: l.peerPort, vc: vc, cycle: arrive}
	if peer.dom == d {
		peer.pending.push(f.netCycle(arrive), a)
		if arrive < peer.pendingMin {
			peer.pendingMin = arrive
		}
		d.pendingNodes |= 1 << uint(l.peer)
	} else {
		// Cross-domain wire: stage for the serial commit. The arrival is
		// strictly in the future (>= one network cycle of wire latency), so
		// committing at the barrier preserves the sequential landing cycle
		// and — with one upstream router per (dest, port) — the per-edge
		// FIFO order.
		d.stagedPushes = append(d.stagedPushes, stagedPush{node: int32(l.peer), t: f.netCycle(arrive), a: a}) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	}
	r.rrPort = (idx + 1) % nin
	return true
}

// returnCredit gives a buffer slot back to the upstream router feeding
// (port, vc) at r. The return is deferred: same-domain credits apply at the
// start of the domain's next tick and cross-domain credits at the serial
// commit — both visible at the next network cycle, modeling a 1-cycle
// credit turnaround and keeping per-router ticks independent within a
// cycle.
func (f *Fabric) returnCredit(r *router, port, vc int) {
	up := r.up[port]
	if up.node < 0 {
		return
	}
	ref := credRef{node: int32(up.node), idx: int32(up.port*f.Cfg.VCs + vc)}
	d := r.dom
	if f.routers[up.node].dom == d {
		d.pendingCredits = append(d.pendingCredits, ref) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	} else {
		d.stagedCredits = append(d.stagedCredits, ref) //ar:exempt(hotpath) append into a retained buffer whose capacity is reused across ticks
	}
}

// StagedWork reports whether any domain holds staged cross-domain effects
// (the serial commit's idle hint).
func (f *Fabric) StagedWork() bool {
	for _, d := range f.doms {
		if len(d.stagedPushes) > 0 || len(d.stagedCredits) > 0 {
			return true
		}
	}
	return false
}

// Segment is the per-domain scheduler handle of a sharded fabric: one
// Segment per domain registers with that domain's shard, ticking the
// domain's routers and carrying its idle hint and waker.
type Segment struct {
	f *Fabric
	d *domain
}

// Segment returns the scheduler handle for domain i.
func (f *Fabric) Segment(i int) *Segment { return &Segment{f: f, d: f.doms[i]} }

// Tick advances the segment's domain by one simulator cycle.
func (s *Segment) Tick(cycle uint64) { s.f.tickDomain(s.d, cycle) }

// NextWork implements sim.Idler for the domain.
func (s *Segment) NextWork(now uint64) uint64 { return s.f.domainNextWork(s.d, now) }

// SetWaker implements sim.WakeSetter: Inject at an owned node and the
// serial push commit wake the domain.
func (s *Segment) SetWaker(w *sim.Waker) { s.d.waker = w }

// DebugQueues renders non-empty queue occupancy with head packet info
// (debug tooling).
func (f *Fabric) DebugQueues() string {
	out := ""
	for _, r := range f.routers {
		for port := 0; port < r.ports; port++ {
			for vc := 0; vc < f.Cfg.VCs; vc++ {
				q := &r.in[port*f.Cfg.VCs+vc]
				if q.len() > 0 {
					h := q.peek()
					out += fmt.Sprintf("node %d in[p%d vc%d] len=%d head=%s dst=%d\n", r.node, port, vc, q.len(), h.Kind, h.Dst)
				}
			}
		}
		for vc := 0; vc < f.Cfg.VCs; vc++ {
			if r.inj[vc].len() > 0 {
				h := r.inj[vc].peek()
				out += fmt.Sprintf("node %d inj[vc%d] len=%d head=%s dst=%d\n", r.node, vc, r.inj[vc].len(), h.Kind, h.Dst)
			}
		}
		if r.pending.len() > 0 {
			out += fmt.Sprintf("node %d pending=%d\n", r.node, r.pending.len())
		}
	}
	return out
}
