package network

import (
	"fmt"

	"repro/internal/stats"
)

// Endpoint consumes packets that reach their destination node. Deliver
// returns false to refuse the packet (component backpressure); the fabric
// keeps it queued and re-offers it on later cycles, which is how Active-
// Routing Engine stalls propagate back into the network (Fig 5.2's stall
// component).
type Endpoint interface {
	Deliver(p *Packet, cycle uint64) bool
}

// EndpointFunc adapts a function to Endpoint.
type EndpointFunc func(p *Packet, cycle uint64) bool

// Deliver calls f.
func (f EndpointFunc) Deliver(p *Packet, cycle uint64) bool { return f(p, cycle) }

// Config carries the fabric parameters of Table 4.1.
type Config struct {
	VCs           int    // virtual channels (request/response × 2 hop classes)
	QueueDepth    int    // packets per (port, VC) input queue
	InjDepth      int    // packets per injection queue
	LinkLatency   uint64 // link traversal latency, network cycles
	LinkBandwidth int    // bytes per network cycle per link
	RouterDelay   uint64 // router pipeline latency, network cycles
	ClockDiv      uint64 // simulator cycles per network cycle
	EjectPerCycle int    // packets deliverable per node per network cycle
}

// DefaultMemNetConfig returns the memory-network parameters: 1 GHz network
// clock under a 2 GHz core clock, 16-lane 12.5 Gbps links (25 GB/s ≈ 25
// bytes per network cycle, rounded to 32 for the 1 GHz crossbar clock).
func DefaultMemNetConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   4,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      2,
		EjectPerCycle: 2,
	}
}

// DefaultNoCConfig returns the on-chip 4×4 mesh parameters (full core
// clock, wide links, short hops).
func DefaultNoCConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   1,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      1,
		EjectPerCycle: 4,
	}
}

// vcBase maps a packet kind to its VC class pair. Three classes break
// request-generates-request protocol deadlock: plain requests (updates,
// gathers, memory reads) may generate operand/active-store requests, which
// only generate responses — an acyclic class order, each class guaranteed
// to drain assuming the classes above it do.
func vcBase(k Kind) int {
	switch {
	case k.IsResponse():
		return 4
	case k == OperandReq || k == ActiveStoreReq:
		return 2
	default:
		return 0
	}
}

type packetQueue struct {
	q []*Packet
}

func (pq *packetQueue) len() int       { return len(pq.q) }
func (pq *packetQueue) head() *Packet  { return pq.q[0] }
func (pq *packetQueue) push(p *Packet) { pq.q = append(pq.q, p) }
func (pq *packetQueue) pop() *Packet {
	p := pq.q[0]
	copy(pq.q, pq.q[1:])
	pq.q = pq.q[:len(pq.q)-1]
	return p
}

type arrival struct {
	p     *Packet
	port  int
	vc    int
	cycle uint64
}

type upstream struct {
	node int
	port int
}

type router struct {
	node     int
	ports    int
	in       []packetQueue // [port*VCs + vc]
	inj      []packetQueue // [vc]
	up       []upstream    // [port] upstream node/port, node == -1 if unused
	credits  []int         // [port*VCs + vc] credits toward downstream input
	linkBusy []uint64      // [port] output link busy-until (simulator cycles)
	pending  []arrival     // in-flight packets heading to this router
	rrPort   int           // round-robin arbitration state
}

// Fabric is one interconnection network instance: topology + routers +
// endpoints.
type Fabric struct {
	Topo Topology
	Cfg  Config

	routers   []*router
	endpoints []Endpoint
	nextID    uint64

	// Counters for Fig 5.4 and the energy model.
	Counters     *stats.Set
	HopBytes     uint64 // bytes × link traversals (energy: 5 pJ/bit/hop)
	Delivered    uint64
	Injected     uint64
	Movement     stats.DataMovement
	ejectStalled uint64
}

// NewFabric builds a network over topo. Endpoints are attached later with
// SetEndpoint.
func NewFabric(topo Topology, cfg Config) *Fabric {
	if cfg.VCs <= 0 || cfg.QueueDepth <= 0 || cfg.LinkBandwidth <= 0 || cfg.ClockDiv == 0 {
		panic("network: invalid fabric config")
	}
	f := &Fabric{Topo: topo, Cfg: cfg, Counters: stats.NewSet()}
	n := topo.Nodes()
	f.routers = make([]*router, n)
	f.endpoints = make([]Endpoint, n)
	for i := 0; i < n; i++ {
		ports := topo.Ports(i)
		r := &router{
			node:     i,
			ports:    ports,
			in:       make([]packetQueue, ports*cfg.VCs),
			inj:      make([]packetQueue, cfg.VCs),
			up:       make([]upstream, ports),
			credits:  make([]int, ports*cfg.VCs),
			linkBusy: make([]uint64, ports),
		}
		for p := 0; p < ports; p++ {
			r.up[p] = upstream{node: -1}
		}
		f.routers[i] = r
	}
	// Wire credits and upstream pointers.
	for i := 0; i < n; i++ {
		r := f.routers[i]
		for p := 0; p < r.ports; p++ {
			peer, peerPort, ok := topo.Neighbor(i, p)
			if !ok {
				continue
			}
			f.routers[peer].up[peerPort] = upstream{node: i, port: p}
			for vc := 0; vc < cfg.VCs; vc++ {
				r.credits[p*cfg.VCs+vc] = cfg.QueueDepth
			}
		}
	}
	return f
}

// SetEndpoint attaches the component that consumes packets at node n.
func (f *Fabric) SetEndpoint(n int, e Endpoint) { f.endpoints[n] = e }

// NextID returns a fresh packet id.
func (f *Fabric) NextID() uint64 {
	f.nextID++
	return f.nextID
}

// InjectionFree reports the free injection slots for p's VC at node n.
func (f *Fabric) InjectionFree(n int, p *Packet) int {
	vc := vcBase(p.Kind) // injection queues keyed by base class only
	return f.Cfg.InjDepth - f.routers[n].inj[vc].len()
}

// Inject offers packet p for injection at node n; it reports false when the
// injection queue is full. Src is forced to n.
func (f *Fabric) Inject(n int, p *Packet, cycle uint64) bool {
	if p.Dst < 0 || p.Dst >= f.Topo.Nodes() {
		panic(fmt.Sprintf("network: inject to invalid node %d", p.Dst))
	}
	if p.Dst == n {
		panic("network: inject to self; deliver locally instead")
	}
	r := f.routers[n]
	vc := vcBase(p.Kind)
	if r.inj[vc].len() >= f.Cfg.InjDepth {
		return false
	}
	p.Src = n
	if p.InjectCycle == 0 {
		p.InjectCycle = cycle
	}
	r.inj[vc].push(p)
	f.Injected++
	f.account(p)
	return true
}

func (f *Fabric) account(p *Packet) {
	sz := uint64(p.Size)
	switch {
	case p.Kind.Active() && p.Kind.IsResponse():
		f.Movement.ActiveResp += sz
	case p.Kind.Active():
		f.Movement.ActiveReq += sz
	case p.Kind.IsResponse():
		f.Movement.NormResp += sz
	default:
		f.Movement.NormReq += sz
	}
}

// Drained reports whether no packets remain anywhere in the fabric.
func (f *Fabric) Drained() bool {
	for _, r := range f.routers {
		if len(r.pending) > 0 {
			return false
		}
		for i := range r.in {
			if r.in[i].len() > 0 {
				return false
			}
		}
		for i := range r.inj {
			if r.inj[i].len() > 0 {
				return false
			}
		}
	}
	return true
}

// InFlight counts packets currently inside the fabric.
func (f *Fabric) InFlight() int {
	n := 0
	for _, r := range f.routers {
		n += len(r.pending)
		for i := range r.in {
			n += r.in[i].len()
		}
		for i := range r.inj {
			n += r.inj[i].len()
		}
	}
	return n
}

// Tick advances the whole fabric by one simulator cycle.
func (f *Fabric) Tick(cycle uint64) {
	if cycle%f.Cfg.ClockDiv != 0 {
		return
	}
	// Phase 1: land arrivals into input queues (credits guaranteed space).
	for _, r := range f.routers {
		if len(r.pending) == 0 {
			continue
		}
		kept := r.pending[:0]
		for _, a := range r.pending {
			if a.cycle <= cycle {
				r.in[a.port*f.Cfg.VCs+a.vc].push(a.p)
			} else {
				kept = append(kept, a)
			}
		}
		r.pending = kept
	}
	// Phase 2: ejection — deliver packets that reached their destination.
	for _, r := range f.routers {
		f.eject(r, cycle)
	}
	// Phase 3: switch allocation and forwarding.
	for _, r := range f.routers {
		f.forward(r, cycle)
	}
}

// eject delivers up to EjectPerCycle destination packets at router r,
// higher traffic classes first (responses, then operand requests, then
// plain requests) so the drain order matches the deadlock-freedom
// argument.
func (f *Fabric) eject(r *router, cycle uint64) {
	ep := f.endpoints[r.node]
	budget := f.Cfg.EjectPerCycle
	for pass := 0; pass < 3 && budget > 0; pass++ {
		class := 2 - pass // 2=response, 1=operand, 0=request
		for port := 0; port < r.ports && budget > 0; port++ {
			for vc := 0; vc < f.Cfg.VCs && budget > 0; vc++ {
				if vc/2 != class {
					continue
				}
				q := &r.in[port*f.Cfg.VCs+vc]
				if q.len() == 0 || q.head().Dst != r.node {
					continue
				}
				p := q.head()
				if ep == nil {
					panic(fmt.Sprintf("network: packet %s for node %d with no endpoint", p.Kind, r.node))
				}
				p.ArriveCycle = cycle
				if !ep.Deliver(p, cycle) {
					f.ejectStalled++
					continue
				}
				q.pop()
				f.returnCredit(r, port, vc)
				f.Delivered++
				f.Counters.Inc("delivered_" + p.Kind.String())
			}
		}
	}
}

// forward performs output-port arbitration: for every output port pick one
// eligible head packet (round-robin over inputs including injection).
func (f *Fabric) forward(r *router, cycle uint64) {
	nin := r.ports*f.Cfg.VCs + f.Cfg.VCs // link inputs + injection queues
	for out := 0; out < r.ports; out++ {
		if r.linkBusy[out] > cycle {
			continue
		}
		peer, peerPort, ok := f.Topo.Neighbor(r.node, out)
		if !ok {
			continue
		}
		for k := 0; k < nin; k++ {
			idx := (r.rrPort + k) % nin
			var q *packetQueue
			injected := idx >= r.ports*f.Cfg.VCs
			if injected {
				q = &r.inj[idx-r.ports*f.Cfg.VCs]
			} else {
				q = &r.in[idx]
			}
			if q.len() == 0 {
				continue
			}
			p := q.head()
			if p.Dst == r.node {
				continue // ejection handles it
			}
			if f.Topo.Route(r.node, p.Dst) != out {
				continue
			}
			vc := vcBase(p.Kind) + f.Topo.HopClass(r.node, p.Dst)
			if r.credits[out*f.Cfg.VCs+vc] <= 0 {
				continue
			}
			// Transmit.
			q.pop()
			if !injected {
				f.returnCredit(r, idx/f.Cfg.VCs, idx%f.Cfg.VCs)
			}
			r.credits[out*f.Cfg.VCs+vc]--
			ser := uint64((p.Size + f.Cfg.LinkBandwidth - 1) / f.Cfg.LinkBandwidth)
			busy := ser * f.Cfg.ClockDiv
			r.linkBusy[out] = cycle + busy
			arrive := cycle + (ser+f.Cfg.LinkLatency+f.Cfg.RouterDelay)*f.Cfg.ClockDiv
			p.Hops++
			f.HopBytes += uint64(p.Size)
			f.routers[peer].pending = append(f.routers[peer].pending, arrival{
				p: p, port: peerPort, vc: vc, cycle: arrive,
			})
			r.rrPort = (idx + 1) % nin
			break
		}
	}
}

// returnCredit gives a buffer slot back to the upstream router feeding
// (port, vc) at r. Credit return is immediate — a simplification relative
// to real credit turnaround, noted in DESIGN.md.
func (f *Fabric) returnCredit(r *router, port, vc int) {
	up := r.up[port]
	if up.node < 0 {
		return
	}
	f.routers[up.node].credits[up.port*f.Cfg.VCs+vc]++
}

// DebugQueues renders non-empty queue occupancy with head packet info
// (debug tooling).
func (f *Fabric) DebugQueues() string {
	out := ""
	for _, r := range f.routers {
		for port := 0; port < r.ports; port++ {
			for vc := 0; vc < f.Cfg.VCs; vc++ {
				q := &r.in[port*f.Cfg.VCs+vc]
				if q.len() > 0 {
					h := q.head()
					out += fmt.Sprintf("node %d in[p%d vc%d] len=%d head=%s dst=%d\n", r.node, port, vc, q.len(), h.Kind, h.Dst)
				}
			}
		}
		for vc := 0; vc < f.Cfg.VCs; vc++ {
			if r.inj[vc].len() > 0 {
				h := r.inj[vc].head()
				out += fmt.Sprintf("node %d inj[vc%d] len=%d head=%s dst=%d\n", r.node, vc, r.inj[vc].len(), h.Kind, h.Dst)
			}
		}
		if len(r.pending) > 0 {
			out += fmt.Sprintf("node %d pending=%d\n", r.node, len(r.pending))
		}
	}
	return out
}
