package network

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Endpoint consumes packets that reach their destination node. Deliver
// returns false to refuse the packet (component backpressure); the fabric
// keeps it queued and re-offers it on later cycles, which is how Active-
// Routing Engine stalls propagate back into the network (Fig 5.2's stall
// component).
//
// A successful Deliver transfers packet ownership to the endpoint, which
// must release the packet to the fabric's Pool at its single point of final
// consumption (see Pool and DESIGN.md "Memory discipline").
type Endpoint interface {
	Deliver(p *Packet, cycle uint64) bool
}

// EndpointFunc adapts a function to Endpoint.
type EndpointFunc func(p *Packet, cycle uint64) bool

// Deliver calls f.
func (f EndpointFunc) Deliver(p *Packet, cycle uint64) bool { return f(p, cycle) }

// Config carries the fabric parameters of Table 4.1. Queue depths double as
// the fixed ring-buffer capacities of the router input and injection queues
// (rounded up to powers of two), so the steady-state fabric never allocates.
type Config struct {
	VCs           int    // virtual channels (request/response × 2 hop classes)
	QueueDepth    int    // packets per (port, VC) input queue
	InjDepth      int    // packets per injection queue
	LinkLatency   uint64 // link traversal latency, network cycles
	LinkBandwidth int    // bytes per network cycle per link
	RouterDelay   uint64 // router pipeline latency, network cycles
	ClockDiv      uint64 // simulator cycles per network cycle
}

// DefaultMemNetConfig returns the memory-network parameters: 1 GHz network
// clock under a 2 GHz core clock, 16-lane 12.5 Gbps links (25 GB/s ≈ 25
// bytes per network cycle, rounded to 32 for the 1 GHz crossbar clock).
func DefaultMemNetConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   4,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      2,
	}
}

// DefaultNoCConfig returns the on-chip 4×4 mesh parameters (full core
// clock, wide links, short hops).
func DefaultNoCConfig() Config {
	return Config{
		VCs:           6,
		QueueDepth:    8,
		InjDepth:      16,
		LinkLatency:   1,
		LinkBandwidth: 32,
		RouterDelay:   2,
		ClockDiv:      1,
	}
}

// vcBase maps a packet kind to its VC class pair. Three classes break
// request-generates-request protocol deadlock: plain requests (updates,
// gathers, memory reads) may generate operand/active-store requests, which
// only generate responses — an acyclic class order, each class guaranteed
// to drain assuming the classes above it do.
func vcBase(k Kind) int {
	switch {
	case k.IsResponse():
		return 4
	case k == OperandReq || k == ActiveStoreReq:
		return 2
	default:
		return 0
	}
}

type arrival struct {
	p     *Packet
	port  int
	vc    int
	cycle uint64
}

type upstream struct {
	node int
	port int
}

// link is a precomputed Topology.Neighbor result for one output port.
type link struct {
	peer     int
	peerPort int
	ok       bool
}

type router struct {
	node     int
	ports    int
	in       []packetRing // [port*VCs + vc]
	inj      []packetRing // [vc]
	up       []upstream   // [port] upstream node/port, node == -1 if unused
	credits  []int        // [port*VCs + vc] credits toward downstream input
	linkBusy []uint64     // [port] output link busy-until (simulator cycles)
	pending  arrivalWheel // in-flight packets heading to this router
	rrPort   int          // round-robin arbitration state

	// pendingMin is the earliest arrival cycle in pending (sim.Never when
	// empty), so the landing phase and the idle hint are O(1) while every
	// in-flight packet is still on the wire.
	pendingMin uint64

	// Precomputed topology views (the topology is immutable).
	links    []link // [port]
	routeTo  []int8 // [dst] output port, -1 for self
	hopClass []int8 // [dst]

	// Occupancy tracking so the tick phases touch only non-empty state.
	inCount  int    // packets across all input queues
	injCount int    // packets across all injection queues
	occ      uint64 // bit q set iff queue q non-empty; in queues at
	// [0, ports*VCs), injection queues at [ports*VCs, ports*VCs+VCs).
	// Valid only when maskable (nin <= 64); all our topologies qualify.
	maskable bool

	// Head metadata cache, maintained on every head change (push to an
	// empty queue, pop, landing): the arbitration loops compare small
	// integers instead of dereferencing the head packet per attempt.
	// headOut[q] is the output port the head routes to (-1 when the queue
	// is empty or the head ejects here); headVC[q] is its precomputed
	// downstream VC; ejectHead has bit q set iff the head's destination is
	// this node. wantCount[out] counts occupied queues whose head routes to
	// out, and wantMask mirrors it as a bitmask so forward() visits only
	// output ports some head actually wants.
	headOut   []int8 // [nin]
	headVC    []int8 // [nin]
	ejectHead uint64
	wantCount []uint16 // [ports]
	wantMask  uint64
}

// queueAt returns input queue idx (link inputs first, then injection).
func (r *router) queueAt(idx, vcs int) *packetRing {
	if idx >= r.ports*vcs {
		return &r.inj[idx-r.ports*vcs]
	}
	return &r.in[idx]
}

// updateHead refreshes the head metadata for queue idx.
func (f *Fabric) updateHead(r *router, idx int) {
	if old := r.headOut[idx]; old >= 0 {
		r.wantCount[old]--
		if r.wantCount[old] == 0 {
			r.wantMask &^= 1 << uint(old)
		}
	}
	q := r.queueAt(idx, f.Cfg.VCs)
	if q.len() == 0 {
		r.headOut[idx] = -1
		r.ejectHead &^= 1 << uint(idx)
		return
	}
	h := q.peek()
	if h.Dst == r.node {
		r.headOut[idx] = -1
		r.ejectHead |= 1 << uint(idx)
		return
	}
	r.ejectHead &^= 1 << uint(idx)
	out := r.routeTo[h.Dst]
	r.headOut[idx] = out
	r.headVC[idx] = int8(vcBase(h.Kind) + int(r.hopClass[h.Dst]))
	r.wantCount[out]++
	r.wantMask |= 1 << uint(out)
}

func (r *router) markIn(idx int)   { r.occ |= 1 << uint(idx) }
func (r *router) unmarkIn(idx int) { r.occ &^= 1 << uint(idx) }

// Fabric is one interconnection network instance: topology + routers +
// endpoints.
type Fabric struct {
	Topo Topology
	Cfg  Config

	// Pool is the fabric's packet free list. Components that inject into
	// this fabric acquire their packets here; the endpoint that finally
	// consumes a packet releases it here.
	Pool *Pool

	routers   []*router
	endpoints []Endpoint
	nextID    uint64

	// Occupancy counters: inflight is every packet anywhere in the fabric
	// (injected and not yet delivered), queued is the subset sitting in
	// input/injection queues (as opposed to traversing a link).
	inflight int
	queued   int

	// Router-level occupancy masks (valid when nodeMaskable, i.e. <= 64
	// nodes — all our topologies): busyNodes has bit n set iff router n
	// holds any queued packet, pendingNodes iff it has in-flight arrivals.
	// The tick phases then visit only live routers.
	busyNodes    uint64
	pendingNodes uint64
	nodeMaskable bool
	wheelHorizon uint64 // arrival-wheel capacity in network cycles

	// clockMask enables mask/shift arithmetic for the (common) power-of-two
	// ClockDiv: cycle%ClockDiv == cycle&clockMask. clockShift is
	// log2(ClockDiv); both are valid only when clockPow2.
	clockMask  uint64
	clockShift uint
	clockPow2  bool

	// waker invalidates the engine's cached idle hint; every external
	// entry point (Inject) wakes the fabric (sim.WakeSetter).
	waker *sim.Waker

	// classMask[c] selects input-queue occupancy bits whose VC belongs to
	// ejection class c (vc/2 == c); shared by all routers since the bit
	// layout has stride Cfg.VCs.
	classMask [3]uint64

	// Counters for Fig 5.4 and the energy model. deliveredH holds the
	// pre-registered dense handle for each kind's delivery counter so the
	// ejection hot path bumps a slot instead of hashing a string.
	Counters     *stats.Set
	deliveredH   [kindCount]stats.Handle
	HopBytes     uint64 // bytes × link traversals (energy: 5 pJ/bit/hop)
	Delivered    uint64
	Injected     uint64
	Movement     stats.DataMovement
	ejectStalled uint64
}

// NewFabric builds a network over topo. Endpoints are attached later with
// SetEndpoint.
func NewFabric(topo Topology, cfg Config) *Fabric {
	if cfg.VCs <= 0 || cfg.QueueDepth <= 0 || cfg.LinkBandwidth <= 0 || cfg.ClockDiv == 0 {
		panic("network: invalid fabric config")
	}
	f := &Fabric{Topo: topo, Cfg: cfg, Pool: NewPool(), Counters: stats.NewSet()}
	for k := Kind(0); k < kindCount; k++ {
		f.deliveredH[k] = f.Counters.Register("delivered_" + k.String())
	}
	n := topo.Nodes()
	f.nodeMaskable = n <= 64
	if cfg.ClockDiv&(cfg.ClockDiv-1) == 0 {
		f.clockPow2 = true
		f.clockMask = cfg.ClockDiv - 1
		for d := cfg.ClockDiv; d > 1; d >>= 1 {
			f.clockShift++
		}
	}
	// Size the arrival wheels to the worst-case wire latency in network
	// cycles: serialization of the largest packet plus link and router
	// pipeline latency (+1 slot of slack).
	maxSer := (maxPacketBytes + cfg.LinkBandwidth - 1) / cfg.LinkBandwidth
	wheelSlots := maxSer + int(cfg.LinkLatency) + int(cfg.RouterDelay) + 1
	f.wheelHorizon = uint64(wheelSlots)
	f.routers = make([]*router, n)
	f.endpoints = make([]Endpoint, n)
	for i := 0; i < n; i++ {
		ports := topo.Ports(i)
		r := &router{
			node:       i,
			ports:      ports,
			in:         make([]packetRing, ports*cfg.VCs),
			inj:        make([]packetRing, cfg.VCs),
			up:         make([]upstream, ports),
			credits:    make([]int, ports*cfg.VCs),
			linkBusy:   make([]uint64, ports),
			pending:    newArrivalWheel(wheelSlots),
			pendingMin: sim.Never,
			links:      make([]link, ports),
			routeTo:    make([]int8, n),
			hopClass:   make([]int8, n),
			maskable:   ports*cfg.VCs+cfg.VCs <= 64,
		}
		for q := range r.in {
			r.in[q] = newPacketRing(cfg.QueueDepth)
		}
		for q := range r.inj {
			r.inj[q] = newPacketRing(cfg.InjDepth)
		}
		nin := ports*cfg.VCs + cfg.VCs
		r.headOut = make([]int8, nin)
		r.headVC = make([]int8, nin)
		r.wantCount = make([]uint16, ports)
		for q := 0; q < nin; q++ {
			r.headOut[q] = -1
		}
		for p := 0; p < ports; p++ {
			r.up[p] = upstream{node: -1}
			peer, peerPort, ok := topo.Neighbor(i, p)
			r.links[p] = link{peer: peer, peerPort: peerPort, ok: ok}
		}
		for dst := 0; dst < n; dst++ {
			if dst == i {
				r.routeTo[dst] = -1
				continue
			}
			r.routeTo[dst] = int8(topo.Route(i, dst))
			r.hopClass[dst] = int8(topo.HopClass(i, dst))
		}
		f.routers[i] = r
	}
	for c := 0; c < 3; c++ {
		for idx := 0; idx < 64; idx++ {
			if (idx%cfg.VCs)/2 == c {
				f.classMask[c] |= 1 << uint(idx)
			}
		}
	}
	// Wire credits and upstream pointers.
	for i := 0; i < n; i++ {
		r := f.routers[i]
		for p := 0; p < r.ports; p++ {
			l := r.links[p]
			if !l.ok {
				continue
			}
			f.routers[l.peer].up[l.peerPort] = upstream{node: i, port: p}
			for vc := 0; vc < cfg.VCs; vc++ {
				r.credits[p*cfg.VCs+vc] = cfg.QueueDepth
			}
		}
	}
	return f
}

// SetEndpoint attaches the component that consumes packets at node n.
func (f *Fabric) SetEndpoint(n int, e Endpoint) { f.endpoints[n] = e }

// SetWaker implements sim.WakeSetter: Inject is the fabric's only external
// entry point; everything else advances through its own Tick.
func (f *Fabric) SetWaker(w *sim.Waker) { f.waker = w }

// NextID returns a fresh packet id.
func (f *Fabric) NextID() uint64 {
	f.nextID++
	return f.nextID
}

// InjectionFree reports the free injection slots for p's VC at node n.
func (f *Fabric) InjectionFree(n int, p *Packet) int {
	vc := vcBase(p.Kind) // injection queues keyed by base class only
	return f.Cfg.InjDepth - f.routers[n].inj[vc].len()
}

// Inject offers packet p for injection at node n; it reports false when the
// injection queue is full. Src is forced to n.
func (f *Fabric) Inject(n int, p *Packet, cycle uint64) bool {
	if p.Dst < 0 || p.Dst >= f.Topo.Nodes() {
		panic(fmt.Sprintf("network: inject to invalid node %d", p.Dst))
	}
	if p.Dst == n {
		panic("network: inject to self; deliver locally instead")
	}
	r := f.routers[n]
	vc := vcBase(p.Kind)
	if r.inj[vc].len() >= f.Cfg.InjDepth {
		return false
	}
	p.Src = n
	if p.InjectCycle == 0 {
		p.InjectCycle = cycle
	}
	r.inj[vc].push(p)
	idx := r.ports*f.Cfg.VCs + vc
	r.markIn(idx)
	if r.inj[vc].len() == 1 {
		f.updateHead(r, idx)
	}
	r.injCount++
	f.busyNodes |= 1 << uint(n)
	f.waker.Wake()
	f.inflight++
	f.queued++
	f.Injected++
	f.account(p)
	return true
}

func (f *Fabric) account(p *Packet) {
	sz := uint64(p.Size)
	switch {
	case p.Kind.Active() && p.Kind.IsResponse():
		f.Movement.ActiveResp += sz
	case p.Kind.Active():
		f.Movement.ActiveReq += sz
	case p.Kind.IsResponse():
		f.Movement.NormResp += sz
	default:
		f.Movement.NormReq += sz
	}
}

// Drained reports whether no packets remain anywhere in the fabric. It is a
// counter read, O(1); the full-scan equivalent is InFlightScan.
func (f *Fabric) Drained() bool { return f.inflight == 0 }

// InFlight counts packets currently inside the fabric (a counter read).
func (f *Fabric) InFlight() int { return f.inflight }

// InFlightScan recounts in-flight packets by walking every queue. It exists
// to cross-check the occupancy counters in tests.
func (f *Fabric) InFlightScan() int {
	n := 0
	for _, r := range f.routers {
		n += r.pending.len()
		for i := range r.in {
			n += r.in[i].len()
		}
		for i := range r.inj {
			n += r.inj[i].len()
		}
	}
	return n
}

// NextWork implements sim.Idler: the fabric needs its Tick only on network
// clock edges while packets are inside it; with every packet in flight on a
// link (none queued) the next work is the earliest arrival, a per-router
// counter read.
func (f *Fabric) NextWork(now uint64) uint64 {
	if f.inflight == 0 {
		return sim.Never
	}
	if f.queued > 0 {
		return f.alignUp(now)
	}
	next := sim.Never
	if f.nodeMaskable {
		for m := f.pendingNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if pm := f.routers[node].pendingMin; pm < next {
				next = pm
			}
		}
	} else {
		for _, r := range f.routers {
			if r.pendingMin < next {
				next = r.pendingMin
			}
		}
	}
	if next <= now {
		return f.alignUp(now)
	}
	return f.alignUp(next)
}

// alignUp rounds c up to the next network clock edge.
func (f *Fabric) alignUp(c uint64) uint64 {
	if f.clockPow2 {
		return (c + f.clockMask) &^ f.clockMask
	}
	div := f.Cfg.ClockDiv
	if rem := c % div; rem != 0 {
		return c + div - rem
	}
	return c
}

// onEdge reports whether c is a network clock edge.
func (f *Fabric) onEdge(c uint64) bool {
	if f.clockPow2 {
		return c&f.clockMask == 0
	}
	return c%f.Cfg.ClockDiv == 0
}

// netCycle converts a (clock-edge) simulator cycle to network cycles.
func (f *Fabric) netCycle(c uint64) uint64 {
	if f.clockPow2 {
		return c >> f.clockShift
	}
	return c / f.Cfg.ClockDiv
}

// Tick advances the whole fabric by one simulator cycle.
func (f *Fabric) Tick(cycle uint64) {
	if !f.onEdge(cycle) {
		return
	}
	if f.inflight == 0 {
		return
	}
	// Phase 1: land arrivals into input queues (credits guaranteed space).
	// The scan compacts the ring in place; routers whose earliest arrival
	// is still on the wire are skipped entirely via pendingMin, and only
	// routers with any pending arrival are visited at all.
	if f.nodeMaskable {
		for m := f.pendingNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			f.land(f.routers[node], cycle)
		}
	} else {
		for _, r := range f.routers {
			f.land(r, cycle)
		}
	}
	// Phase 2: ejection — deliver packets that reached their destination.
	// Ejection handlers may synchronously inject new packets (marking more
	// routers busy), but injection never adds input-queue packets, so the
	// snapshot covers every router with ejectable state.
	if f.nodeMaskable {
		for m := f.busyNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if r := f.routers[node]; r.inCount > 0 {
				f.eject(r, cycle)
			}
		}
	} else {
		for _, r := range f.routers {
			if r.inCount > 0 {
				f.eject(r, cycle)
			}
		}
	}
	// Phase 3: switch allocation and forwarding (forwarding moves packets
	// between routers' pending lists only; the snapshot is complete).
	if f.nodeMaskable {
		for m := f.busyNodes; m != 0; {
			node := bits.TrailingZeros64(m)
			m &= m - 1
			if r := f.routers[node]; r.inCount+r.injCount > 0 {
				f.forward(r, cycle)
			}
		}
	} else {
		for _, r := range f.routers {
			if r.inCount+r.injCount > 0 {
				f.forward(r, cycle)
			}
		}
	}
}

// land moves arrivals whose wire traversal has completed into their input
// queues by draining the due wheel buckets in time order.
func (f *Fabric) land(r *router, cycle uint64) {
	if r.pendingMin > cycle {
		return
	}
	nowNet := f.netCycle(cycle)
	for t := f.netCycle(r.pendingMin); t <= nowNet; t++ {
		b := r.pending.take(t)
		for i := range b {
			a := &b[i]
			idx := a.port*f.Cfg.VCs + a.vc
			r.in[idx].push(a.p)
			if r.in[idx].len() == 1 {
				f.updateHead(r, idx)
			}
			r.inCount++
			r.markIn(idx)
			f.queued++
		}
		r.pending.putBack(t, b)
	}
	f.busyNodes |= 1 << uint(r.node)
	if r.pending.len() == 0 {
		r.pendingMin = sim.Never
		f.pendingNodes &^= 1 << uint(r.node)
		return
	}
	for t := nowNet + 1; ; t++ {
		if len(r.pending.buckets[t&r.pending.mask]) > 0 {
			r.pendingMin = t * f.Cfg.ClockDiv
			return
		}
	}
}

// eject delivers destination packets at router r, higher traffic classes
// first (responses, then operand requests, then plain requests) so the
// drain order matches the deadlock-freedom argument. Each queue gets one
// delivery attempt per cycle; endpoint refusals backpressure the network.
// Ejection bandwidth is otherwise unbounded — a modeling simplification the
// simulated results depend on (see DESIGN.md). Only occupied (port, VC)
// queues are visited; the visit order (class descending, then port then VC
// ascending) matches the plain scan.
func (f *Fabric) eject(r *router, cycle uint64) {
	ep := f.endpoints[r.node]
	for pass := 0; pass < 3; pass++ {
		class := 2 - pass // 2=response, 1=operand, 0=request
		if r.maskable {
			// Only queues whose cached head actually ejects here are
			// candidates; the plain scan's other visits were guaranteed
			// no-ops (head destined elsewhere).
			m := r.occ & f.classMask[class] & r.ejectHead
			for m != 0 {
				idx := bits.TrailingZeros64(m)
				m &= m - 1
				if idx >= r.ports*f.Cfg.VCs {
					break // injection-queue bits: not ejectable
				}
				f.ejectQueue(r, ep, idx, cycle)
			}
			continue
		}
		for port := 0; port < r.ports; port++ {
			for vc := 0; vc < f.Cfg.VCs; vc++ {
				if vc/2 != class {
					continue
				}
				f.ejectQueue(r, ep, port*f.Cfg.VCs+vc, cycle)
			}
		}
	}
}

// ejectQueue delivers at most one packet from input queue idx (each queue
// gets one ejection attempt per class pass, exactly like the plain scan);
// it reports whether a packet was popped. A successful Deliver is the
// ejection commit: ownership passes to the endpoint, which releases the
// packet to f.Pool at its final consumption point.
func (f *Fabric) ejectQueue(r *router, ep Endpoint, idx int, cycle uint64) bool {
	q := &r.in[idx]
	if q.len() == 0 || q.peek().Dst != r.node {
		return false
	}
	p := q.peek()
	if ep == nil {
		panic(fmt.Sprintf("network: packet %s for node %d with no endpoint", p.Kind, r.node))
	}
	p.ArriveCycle = cycle
	// A successful Deliver transfers ownership — synchronous consumers
	// release the packet before returning — so everything the fabric still
	// needs must be read first.
	kind := p.Kind
	if !ep.Deliver(p, cycle) {
		f.ejectStalled++
		return false
	}
	q.pop()
	r.inCount--
	f.queued--
	f.inflight--
	if q.len() == 0 {
		r.unmarkIn(idx)
		if r.inCount+r.injCount == 0 {
			f.busyNodes &^= 1 << uint(r.node)
		}
	}
	f.updateHead(r, idx)
	f.returnCredit(r, idx/f.Cfg.VCs, idx%f.Cfg.VCs)
	f.Delivered++
	f.Counters.IncH(f.deliveredH[kind])
	return true
}

// forward performs output-port arbitration: for every output port pick one
// eligible head packet (round-robin over inputs including injection). Only
// occupied queues are visited, in exactly the round-robin order of the
// plain scan.
func (f *Fabric) forward(r *router, cycle uint64) {
	nin := r.ports*f.Cfg.VCs + f.Cfg.VCs // link inputs + injection queues
	for out := 0; out < r.ports; out++ {
		// Skip output ports no head currently wants. The mask is re-read
		// every iteration because a pop can promote a new head wanting a
		// later port this same cycle.
		if r.wantMask>>uint(out)&1 == 0 {
			continue
		}
		if r.linkBusy[out] > cycle {
			continue
		}
		l := r.links[out]
		if !l.ok {
			continue
		}
		if r.maskable {
			// Visit occupied queues in (rrPort + k) % nin order: the bits
			// at and above rrPort first, then the wrapped-around low bits.
			// The cached headOut filters ineligible queues with one int8
			// compare before any packet dereference.
			high := r.occ & (^uint64(0) << uint(r.rrPort))
			low := r.occ &^ (^uint64(0) << uint(r.rrPort))
			done := false
			for _, m := range [2]uint64{high, low} {
				for m != 0 {
					idx := bits.TrailingZeros64(m)
					m &= m - 1
					if int(r.headOut[idx]) != out {
						continue
					}
					// Cached head VC: refuse on missing credits without
					// touching the packet at all.
					if r.credits[out*f.Cfg.VCs+int(r.headVC[idx])] <= 0 {
						continue
					}
					if f.tryForward(r, out, idx, l, cycle, nin) {
						done = true
						break
					}
				}
				if done {
					break
				}
			}
			continue
		}
		for k := 0; k < nin; k++ {
			idx := (r.rrPort + k) % nin
			if f.tryForward(r, out, idx, l, cycle, nin) {
				break
			}
		}
	}
}

// tryForward attempts to transmit the head of input queue idx through
// output port out; it reports whether a packet was sent. On the maskable
// path the caller has already matched the cached headOut, so the plain
// checks below only run for the non-maskable fallback (and stay correct
// either way).
func (f *Fabric) tryForward(r *router, out, idx int, l link, cycle uint64, nin int) bool {
	q := r.queueAt(idx, f.Cfg.VCs)
	injected := idx >= r.ports*f.Cfg.VCs
	if q.len() == 0 {
		return false
	}
	p := q.peek()
	if p.Dst == r.node {
		return false // ejection handles it
	}
	if int(r.routeTo[p.Dst]) != out {
		return false
	}
	vc := vcBase(p.Kind) + int(r.hopClass[p.Dst])
	if r.credits[out*f.Cfg.VCs+vc] <= 0 {
		return false
	}
	// Transmit.
	q.pop()
	if q.len() == 0 {
		r.unmarkIn(idx)
	}
	f.updateHead(r, idx)
	if injected {
		r.injCount--
	} else {
		r.inCount--
		f.returnCredit(r, idx/f.Cfg.VCs, idx%f.Cfg.VCs)
	}
	if r.inCount+r.injCount == 0 {
		f.busyNodes &^= 1 << uint(r.node)
	}
	f.queued--
	r.credits[out*f.Cfg.VCs+vc]--
	ser := uint64((p.Size + f.Cfg.LinkBandwidth - 1) / f.Cfg.LinkBandwidth)
	busy := ser * f.Cfg.ClockDiv
	r.linkBusy[out] = cycle + busy
	arrive := cycle + (ser+f.Cfg.LinkLatency+f.Cfg.RouterDelay)*f.Cfg.ClockDiv
	p.Hops++
	f.HopBytes += uint64(p.Size)
	peer := f.routers[l.peer]
	if ser+f.Cfg.LinkLatency+f.Cfg.RouterDelay >= f.wheelHorizon {
		panic("network: arrival beyond wheel horizon")
	}
	peer.pending.push(f.netCycle(arrive), arrival{p: p, port: l.peerPort, vc: vc, cycle: arrive})
	if arrive < peer.pendingMin {
		peer.pendingMin = arrive
	}
	f.pendingNodes |= 1 << uint(l.peer)
	r.rrPort = (idx + 1) % nin
	return true
}

// returnCredit gives a buffer slot back to the upstream router feeding
// (port, vc) at r. Credit return is immediate — a simplification relative
// to real credit turnaround, noted in DESIGN.md.
func (f *Fabric) returnCredit(r *router, port, vc int) {
	up := r.up[port]
	if up.node < 0 {
		return
	}
	f.routers[up.node].credits[up.port*f.Cfg.VCs+vc]++
}

// DebugQueues renders non-empty queue occupancy with head packet info
// (debug tooling).
func (f *Fabric) DebugQueues() string {
	out := ""
	for _, r := range f.routers {
		for port := 0; port < r.ports; port++ {
			for vc := 0; vc < f.Cfg.VCs; vc++ {
				q := &r.in[port*f.Cfg.VCs+vc]
				if q.len() > 0 {
					h := q.peek()
					out += fmt.Sprintf("node %d in[p%d vc%d] len=%d head=%s dst=%d\n", r.node, port, vc, q.len(), h.Kind, h.Dst)
				}
			}
		}
		for vc := 0; vc < f.Cfg.VCs; vc++ {
			if r.inj[vc].len() > 0 {
				h := r.inj[vc].peek()
				out += fmt.Sprintf("node %d inj[vc%d] len=%d head=%s dst=%d\n", r.node, vc, r.inj[vc].len(), h.Kind, h.Dst)
			}
		}
		if r.pending.len() > 0 {
			out += fmt.Sprintf("node %d pending=%d\n", r.node, r.pending.len())
		}
	}
	return out
}
