package network

import (
	"testing"
)

// FuzzPacketRing drives a packetRing through arbitrary push/pop sequences
// (the low bits of each op byte choose the action) against a plain-slice
// reference queue, checking FIFO order, length accounting and wraparound
// behaviour. Capacities are taken from the seed byte the way the fabric
// sizes rings from Config (rounded up to a power of two).
func FuzzPacketRing(f *testing.F) {
	f.Add(uint8(8), []byte{0, 0, 1, 0, 1, 1})
	f.Add(uint8(1), []byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(16), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add(uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		capInt := int(capacity%64) + 1
		r := newPacketRing(capInt)
		ringCap := len(r.buf)
		if ringCap < capInt || ringCap&(ringCap-1) != 0 {
			t.Fatalf("capacity %d not rounded to a power of two >= request", ringCap)
		}
		var ref []*Packet
		next := uint64(1)
		for _, op := range ops {
			switch {
			case op&1 == 0 && len(ref) < ringCap:
				p := NewPacket(next, MemReadReq, 0, 1)
				next++
				r.push(p)
				ref = append(ref, p)
			case op&1 == 1 && len(ref) > 0:
				if got, want := r.pop(), ref[0]; got != want {
					t.Fatalf("pop returned id %d, want %d", got.ID, want.ID)
				}
				ref = ref[1:]
			}
			if r.len() != len(ref) {
				t.Fatalf("len %d, want %d", r.len(), len(ref))
			}
			if len(ref) > 0 && r.peek() != ref[0] {
				t.Fatalf("peek id %d, want %d", r.peek().ID, ref[0].ID)
			}
		}
	})
}

// FuzzArrivalWheel drives the calendar queue through arbitrary push/drain
// sequences, checking that every arrival lands in exactly the bucket of its
// network cycle and that counts balance.
func FuzzArrivalWheel(f *testing.F) {
	f.Add([]byte{3, 1, 9, 250, 17})
	f.Add([]byte{0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, deltas []byte) {
		const slots = 32
		w := newArrivalWheel(slots)
		now := uint64(0)
		pending := map[uint64]int{}
		total := 0
		for _, d := range deltas {
			if d < 200 { // push within the wheel horizon
				at := now + 1 + uint64(d%slots)
				if int(at-now) >= len(w.buckets) {
					continue
				}
				w.push(at, arrival{cycle: at})
				pending[at]++
				total++
			} else { // advance and drain a few cycles
				for step := 0; step < int(d%7)+1; step++ {
					now++
					b := w.take(now)
					for i := range b {
						if b[i].cycle != now {
							t.Fatalf("bucket %d held arrival for %d", now, b[i].cycle)
						}
					}
					if len(b) != pending[now] {
						t.Fatalf("cycle %d drained %d, want %d", now, len(b), pending[now])
					}
					total -= len(b)
					delete(pending, now)
					w.putBack(now, b)
				}
			}
			if w.len() != total {
				t.Fatalf("wheel count %d, want %d", w.len(), total)
			}
		}
	})
}
