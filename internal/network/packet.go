// Package network implements the packet-switched interconnect fabric used
// twice in the simulated machine: as the 4×4 mesh network-on-chip of the
// host CMP and as the 16-cube dragonfly memory network (Table 4.1). Routers
// use virtual cut-through switching at packet granularity, bounded input
// queues per virtual channel, and credit-based flow control, which is the
// level of detail the thesis's congestion results (static ART hotspot vs
// the ARF forests, Fig 5.1/5.2) depend on.
package network

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Kind identifies the packet type. Memory and operand traffic is routed
// end-to-end; active Update/Gather traffic is consumed and re-issued hop by
// hop by the Active-Routing Engines so that every cube on the path can
// maintain tree state.
type Kind uint8

// Packet kinds.
const (
	KindInvalid Kind = iota

	// Plain memory traffic (also used on the NoC for coherence payloads).
	MemReadReq
	MemWriteReq
	MemReadResp
	MemWriteAck

	// Active-Routing traffic (§3.3, Fig 3.4).
	UpdateReq
	GatherReq
	GatherResp
	OperandReq
	OperandResp

	// Active stores (mov / const_assign updates, see DESIGN.md).
	ActiveStoreReq
	ActiveStoreAck

	// Host-side messages tunneled over the NoC (coherence, MI traffic),
	// split into request and response classes for VC assignment.
	HostMsg
	HostMsgResp

	// kindCount bounds the Kind space for per-kind lookup tables.
	kindCount
)

// String returns the packet kind mnemonic.
func (k Kind) String() string {
	switch k {
	case MemReadReq:
		return "mem_read_req"
	case MemWriteReq:
		return "mem_write_req"
	case MemReadResp:
		return "mem_read_resp"
	case MemWriteAck:
		return "mem_write_ack"
	case UpdateReq:
		return "update_req"
	case GatherReq:
		return "gather_req"
	case GatherResp:
		return "gather_resp"
	case OperandReq:
		return "operand_req"
	case OperandResp:
		return "operand_resp"
	case ActiveStoreReq:
		return "active_store_req"
	case ActiveStoreAck:
		return "active_store_ack"
	case HostMsg:
		return "host_msg"
	case HostMsgResp:
		return "host_msg_resp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsResponse reports whether the kind travels in the response traffic class
// (separate virtual channels break request-response deadlock cycles).
func (k Kind) IsResponse() bool {
	switch k {
	case MemReadResp, MemWriteAck, GatherResp, OperandResp, ActiveStoreAck, HostMsgResp:
		return true
	}
	return false
}

// Active reports whether the packet belongs to Active-Routing traffic for
// the data-movement split of Fig 5.4.
func (k Kind) Active() bool {
	switch k {
	case UpdateReq, GatherReq, GatherResp, OperandReq, OperandResp,
		ActiveStoreReq, ActiveStoreAck:
		return true
	}
	return false
}

// Packet sizes in bytes: a 16-byte header plus payload. Update packets
// carry two operand addresses, a target and an opcode; operand responses
// carry one 8-byte word; memory responses carry a 64-byte block.
const (
	HeaderBytes      = 16
	MemReadReqBytes  = HeaderBytes
	MemWriteReqBytes = HeaderBytes + mem.BlockSize
	MemReadRespBytes = HeaderBytes + mem.BlockSize
	MemWriteAckBytes = HeaderBytes
	// Active packets use a packed flit encoding (48-bit addresses, opcode
	// folded into the header) so an update rides a single link cycle; the
	// thesis's fine-grained offloading depends on cheap update flits.
	UpdateReqBytes   = 32 // src1, src2, target (48-bit each), opcode+tree
	GatherReqBytes   = 24
	GatherRespBytes  = 24 // flow id + partial result
	OperandReqBytes  = 24
	OperandRespBytes = 24
	ActiveStoreBytes = 24
	ActiveAckBytes   = HeaderBytes
)

// maxPacketBytes bounds every wire size the fabric can carry (the largest
// is a block-carrying message: header + 64-byte block). The arrival wheels
// derive their worst-case serialization latency from it.
const maxPacketBytes = HeaderBytes + mem.BlockSize

// SizeOf returns the wire size in bytes for a packet kind.
func SizeOf(k Kind) int {
	switch k {
	case MemReadReq:
		return MemReadReqBytes
	case MemWriteReq:
		return MemWriteReqBytes
	case MemReadResp:
		return MemReadRespBytes
	case MemWriteAck:
		return MemWriteAckBytes
	case UpdateReq:
		return UpdateReqBytes
	case GatherReq:
		return GatherReqBytes
	case GatherResp:
		return GatherRespBytes
	case OperandReq:
		return OperandReqBytes
	case OperandResp:
		return OperandRespBytes
	case ActiveStoreReq:
		return ActiveStoreBytes
	case ActiveStoreAck:
		return ActiveAckBytes
	case HostMsg, HostMsgResp:
		return HeaderBytes + 8
	default:
		return HeaderBytes
	}
}

// FlowKey identifies one Active-Routing tree: the flow (the reduction
// target's virtual address, §3.2.2) plus the tree index within the forest
// (the controller port that rooted it; always 0 for ART).
type FlowKey struct {
	Flow uint64
	Tree uint8
}

// Packet is one network packet. A single struct covers all kinds; unused
// fields stay zero. Size is derived from Kind at construction.
type Packet struct {
	ID   uint64
	Kind Kind
	Src  int // source node id
	Dst  int // destination node id
	Size int // bytes on the wire

	// Memory / operand fields.
	Addr  mem.PAddr
	Value float64
	Tag   uint64 // request/response matching

	// Active-Routing fields.
	Flow   FlowKey
	Op     isa.ALUOp
	Count  int       // vectored update element count (0/1 = scalar)
	Src1   mem.PAddr // first operand physical address
	Src2   mem.PAddr // second operand physical address (0 = single-operand)
	Target mem.PAddr // physical address of the reduction target

	// Latency bookkeeping for Fig 5.2.
	InjectCycle  uint64
	ArriveCycle  uint64
	OperandCycle uint64

	Hops int

	// Origin is the node that must receive the final acknowledgement for
	// multi-hop transactions (active stores read at one cube and written
	// at another).
	Origin int

	// Meta tunnels host-side payloads (coherence messages) over the NoC.
	Meta any

	// poolState tracks the free-list lifecycle (see Pool); zero means the
	// packet was built outside any pool.
	poolState uint8
}

// NewPacket builds a packet of kind k from src to dst with the standard
// size for its kind.
func NewPacket(id uint64, k Kind, src, dst int) *Packet {
	return &Packet{ID: id, Kind: k, Src: src, Dst: dst, Size: SizeOf(k)}
}
