package network

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// packetRing is a fixed-capacity FIFO of packets backed by a power-of-two
// ring, replacing the append/copy churn of a slice queue: push and pop are
// O(1) index arithmetic and the backing array never grows after
// construction. Capacity is sized from the fabric Config (QueueDepth for
// input queues, InjDepth for injection queues) whose admission checks and
// credit accounting guarantee the ring can never overflow; push panics if
// that invariant is ever broken.
type packetRing struct {
	buf  []*Packet
	mask uint32
	head uint32
	tail uint32
}

// newPacketRing returns a ring holding at least capacity packets.
func newPacketRing(capacity int) packetRing {
	n := ceilPow2(capacity)
	return packetRing{buf: make([]*Packet, n), mask: uint32(n - 1)}
}

func (r *packetRing) len() int      { return int(r.tail - r.head) }
func (r *packetRing) peek() *Packet { return r.buf[r.head&r.mask] }

//ar:hotpath
func (r *packetRing) push(p *Packet) {
	if r.tail-r.head == uint32(len(r.buf)) {
		panic("network: packet ring overflow (queue admission invariant broken)")
	}
	r.buf[r.tail&r.mask] = p
	r.tail++
}

//ar:hotpath
func (r *packetRing) pop() *Packet {
	if r.head == r.tail {
		panic("network: pop from empty packet ring")
	}
	p := r.buf[r.head&r.mask]
	r.buf[r.head&r.mask] = nil
	r.head++
	return p
}

// arrivalWheel is a calendar queue of in-flight arrivals bucketed by
// network-cycle. Wire latency is bounded (serialization of the largest
// packet + link latency + router delay), so a power-of-two wheel at least
// that long never wraps onto live entries: pushing is an append into the
// target cycle's bucket and landing drains exactly one bucket wholesale —
// no per-cycle compaction or scan of not-yet-ready arrivals. Bucket slices
// retain their capacity, so the steady state allocates nothing.
//
// Same-queue arrivals are time-ordered by link serialization, and landing
// order across distinct input queues is commutative, so draining buckets in
// time order is bit-identical to the historical single-list scan.
type arrivalWheel struct {
	buckets [][]arrival
	mask    uint64 // len(buckets)-1
	count   int
}

func newArrivalWheel(slots int) arrivalWheel {
	n := ceilPow2(slots)
	return arrivalWheel{buckets: make([][]arrival, n), mask: uint64(n - 1)}
}

func (w *arrivalWheel) len() int { return w.count }

// push files a at its arrival network-cycle. netCycle must be within one
// wheel revolution of the current cycle (the fabric sizes the wheel from
// the worst-case wire latency and panics otherwise via the landing check).
//
//ar:hotpath
func (w *arrivalWheel) push(netCycle uint64, a arrival) {
	w.buckets[netCycle&w.mask] = append(w.buckets[netCycle&w.mask], a) //ar:exempt(hotpath) wheel bucket retains its capacity across laps; growth is amortized to the high-water mark
	w.count++
}

// take removes and returns the bucket for netCycle; the caller must recycle
// it via putBack after draining.
//
//ar:hotpath
func (w *arrivalWheel) take(netCycle uint64) []arrival {
	b := w.buckets[netCycle&w.mask]
	w.buckets[netCycle&w.mask] = nil
	w.count -= len(b)
	return b
}

// putBack returns a drained bucket's storage to its slot for reuse, unless
// a push during draining already started a new bucket there. Stale packet
// pointers in the retained capacity are not cleared: packets are pool-owned
// and live for the fabric's lifetime anyway.
//
//ar:hotpath
func (w *arrivalWheel) putBack(netCycle uint64, b []arrival) {
	if w.buckets[netCycle&w.mask] == nil {
		w.buckets[netCycle&w.mask] = b[:0]
	}
}
