package network

import (
	"testing"
	"testing/quick"
)

func TestMeshNeighborSymmetry(t *testing.T) {
	m := NewMesh(4, []int{0, 3, 12, 15})
	for n := 0; n < m.Nodes(); n++ {
		for p := 0; p < m.Ports(n); p++ {
			peer, peerPort, ok := m.Neighbor(n, p)
			if !ok {
				continue
			}
			back, backPort, ok2 := m.Neighbor(peer, peerPort)
			if !ok2 || back != n || backPort != p {
				t.Fatalf("asymmetric link %d.%d -> %d.%d", n, p, peer, peerPort)
			}
		}
	}
}

func TestMeshRoutingReachesEveryPair(t *testing.T) {
	m := NewMesh(4, []int{0, 3, 12, 15})
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			hops := PathLen(m, s, d)
			if hops <= 0 || hops > 8 {
				t.Fatalf("path %d->%d has %d hops", s, d, hops)
			}
		}
	}
}

func TestMeshXYRouteIsMinimal(t *testing.T) {
	m := NewMesh(4, nil)
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			want := abs(s%4-d%4) + abs(s/4-d/4)
			if got := PathLen(m, s, d); got != want {
				t.Fatalf("mesh %d->%d = %d hops, want %d", s, d, got, want)
			}
		}
	}
}

func TestDragonflyNeighborSymmetry(t *testing.T) {
	d := NewDragonfly([]int{0, 4, 8, 12})
	for n := 0; n < d.Nodes(); n++ {
		for p := 0; p < d.Ports(n); p++ {
			peer, peerPort, ok := d.Neighbor(n, p)
			if !ok {
				continue
			}
			back, backPort, ok2 := d.Neighbor(peer, peerPort)
			if !ok2 || back != n || backPort != p {
				t.Fatalf("asymmetric link %d.%d -> %d.%d (back %d.%d ok=%v)",
					n, p, peer, peerPort, back, backPort, ok2)
			}
		}
	}
}

func TestDragonflyMinimalPaths(t *testing.T) {
	d := NewDragonfly([]int{0, 4, 8, 12})
	for s := 0; s < 16; s++ {
		for dst := 0; dst < 16; dst++ {
			if s == dst {
				continue
			}
			hops := PathLen(d, s, dst)
			// Minimal dragonfly routing: at most local-global-local.
			if hops > 3 {
				t.Fatalf("dragonfly %d->%d took %d hops (> 3)", s, dst, hops)
			}
			if s/4 == dst/4 && hops != 1 {
				t.Fatalf("intra-group %d->%d took %d hops, want 1", s, dst, hops)
			}
		}
	}
}

func TestDragonflyControllerReach(t *testing.T) {
	d := NewDragonfly([]int{0, 4, 8, 12})
	for i := 0; i < 4; i++ {
		ctrl := d.EndpointNode(i)
		for cube := 0; cube < 16; cube++ {
			if h := PathLen(d, ctrl, cube); h > 4 {
				t.Fatalf("controller %d to cube %d: %d hops", i, cube, h)
			}
			if h := PathLen(d, cube, ctrl); h > 4 {
				t.Fatalf("cube %d to controller %d: %d hops", cube, i, h)
			}
		}
	}
}

func TestDragonflyHopClassMonotonic(t *testing.T) {
	d := NewDragonfly([]int{0, 4, 8, 12})
	for s := 0; s < 16; s++ {
		for dst := 0; dst < 16; dst++ {
			if s == dst {
				continue
			}
			cls := 0
			for cur := s; cur != dst; {
				c := d.HopClass(cur, dst)
				if c < cls {
					t.Fatalf("hop class decreased on %d->%d at %d", s, dst, cur)
				}
				cls = c
				cur = NextHop(d, cur, dst)
			}
		}
	}
}

func TestPacketSizes(t *testing.T) {
	if SizeOf(MemReadResp) != HeaderBytes+64 {
		t.Fatal("read response must carry a block")
	}
	if SizeOf(UpdateReq) <= HeaderBytes {
		t.Fatal("update packet must carry operands")
	}
	for k := MemReadReq; k <= HostMsgResp; k++ {
		if SizeOf(k) < HeaderBytes {
			t.Fatalf("kind %s smaller than header", k)
		}
	}
}

func TestKindClassification(t *testing.T) {
	resp := []Kind{MemReadResp, MemWriteAck, GatherResp, OperandResp, ActiveStoreAck, HostMsgResp}
	for _, k := range resp {
		if !k.IsResponse() {
			t.Fatalf("%s must be a response", k)
		}
	}
	req := []Kind{MemReadReq, MemWriteReq, UpdateReq, GatherReq, OperandReq, ActiveStoreReq, HostMsg}
	for _, k := range req {
		if k.IsResponse() {
			t.Fatalf("%s must not be a response", k)
		}
	}
	active := []Kind{UpdateReq, GatherReq, GatherResp, OperandReq, OperandResp, ActiveStoreReq, ActiveStoreAck}
	for _, k := range active {
		if !k.Active() {
			t.Fatalf("%s must be active traffic", k)
		}
	}
}

// collector is a test endpoint recording deliveries.
type collector struct {
	got []*Packet
}

func (c *collector) Deliver(p *Packet, cycle uint64) bool {
	c.got = append(c.got, p)
	return true
}

func newTestFabric(t *testing.T) (*Fabric, []*collector) {
	topo := NewDragonfly([]int{0, 4, 8, 12})
	f := NewFabric(topo, DefaultMemNetConfig())
	cols := make([]*collector, topo.Nodes())
	for i := range cols {
		cols[i] = &collector{}
		f.SetEndpoint(i, cols[i])
	}
	return f, cols
}

func TestFabricDeliversPacket(t *testing.T) {
	f, cols := newTestFabric(t)
	p := NewPacket(f.NextID(), MemReadReq, 0, 15)
	if !f.Inject(0, p, 0) {
		t.Fatal("injection failed")
	}
	for cyc := uint64(0); len(cols[15].got) == 0 && cyc < 1000; cyc++ {
		f.Tick(cyc)
	}
	if len(cols[15].got) != 1 {
		t.Fatal("packet not delivered")
	}
	if !f.Drained() {
		t.Fatal("fabric should be drained")
	}
	if cols[15].got[0].Hops == 0 {
		t.Fatal("hops not counted")
	}
}

func TestFabricAllPairsDelivery(t *testing.T) {
	f, cols := newTestFabric(t)
	want := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			p := NewPacket(f.NextID(), MemReadReq, s, d)
			for cyc := uint64(0); !f.Inject(s, p, cyc); cyc++ {
				f.Tick(cyc)
			}
			want++
		}
	}
	total := func() int {
		n := 0
		for _, c := range cols {
			n += len(c.got)
		}
		return n
	}
	for cyc := uint64(0); total() < want && cyc < 100000; cyc++ {
		f.Tick(cyc)
	}
	if total() != want {
		t.Fatalf("delivered %d of %d", total(), want)
	}
	for d, c := range cols {
		for _, p := range c.got {
			if p.Dst != d {
				t.Fatalf("packet for %d delivered at %d", p.Dst, d)
			}
		}
	}
}

func TestFabricFIFOPerPath(t *testing.T) {
	// Packets of the same class on the same route must stay in order —
	// the gather-never-overtakes-updates argument relies on this.
	f, cols := newTestFabric(t)
	const n = 50
	for i := 0; i < n; i++ {
		p := NewPacket(uint64(i+1), UpdateReq, 0, 15)
		p.Tag = uint64(i)
		for cyc := uint64(0); !f.Inject(0, p, cyc); cyc++ {
			f.Tick(cyc)
		}
		f.Tick(0)
	}
	for cyc := uint64(0); len(cols[15].got) < n && cyc < 100000; cyc++ {
		f.Tick(cyc)
	}
	if len(cols[15].got) != n {
		t.Fatalf("delivered %d of %d", len(cols[15].got), n)
	}
	for i, p := range cols[15].got {
		if p.Tag != uint64(i) {
			t.Fatalf("reordered: position %d has tag %d", i, p.Tag)
		}
	}
}

func TestFabricBackpressureRefusedEndpoint(t *testing.T) {
	topo := NewMesh(2, nil)
	f := NewFabric(topo, DefaultNoCConfig())
	refuse := true
	got := 0
	f.SetEndpoint(0, EndpointFunc(func(p *Packet, c uint64) bool { return false }))
	f.SetEndpoint(1, EndpointFunc(func(p *Packet, c uint64) bool {
		if refuse {
			return false
		}
		got++
		return true
	}))
	f.SetEndpoint(2, EndpointFunc(func(p *Packet, c uint64) bool { return false }))
	f.SetEndpoint(3, EndpointFunc(func(p *Packet, c uint64) bool { return false }))
	p := NewPacket(1, MemReadReq, 0, 1)
	if !f.Inject(0, p, 0) {
		t.Fatal("inject failed")
	}
	for cyc := uint64(0); cyc < 100; cyc++ {
		f.Tick(cyc)
	}
	if got != 0 {
		t.Fatal("refused endpoint received a packet")
	}
	if f.Drained() {
		t.Fatal("packet must still be queued")
	}
	refuse = false
	for cyc := uint64(100); cyc < 200 && got == 0; cyc++ {
		f.Tick(cyc)
	}
	if got != 1 {
		t.Fatal("packet not re-offered after backpressure cleared")
	}
}

func TestFabricInjectionBackpressure(t *testing.T) {
	f, _ := newTestFabric(t)
	n := 0
	for ; n < 1000; n++ {
		p := NewPacket(f.NextID(), MemReadReq, 0, 15)
		if !f.Inject(0, p, 0) {
			break
		}
	}
	if n == 0 || n >= 1000 {
		t.Fatalf("injection queue never filled (accepted %d)", n)
	}
}

func TestFabricCountsMovement(t *testing.T) {
	f, cols := newTestFabric(t)
	u := NewPacket(1, UpdateReq, 0, 5)
	r := NewPacket(2, MemReadResp, 0, 5)
	f.Inject(0, u, 0)
	f.Inject(0, r, 0)
	for cyc := uint64(0); len(cols[5].got) < 2 && cyc < 1000; cyc++ {
		f.Tick(cyc)
	}
	if f.MovementTotal().ActiveReq != uint64(SizeOf(UpdateReq)) {
		t.Fatalf("active req bytes = %d", f.MovementTotal().ActiveReq)
	}
	if f.MovementTotal().NormResp != uint64(SizeOf(MemReadResp)) {
		t.Fatalf("norm resp bytes = %d", f.MovementTotal().NormResp)
	}
	if f.HopBytesTotal() == 0 {
		t.Fatal("hop bytes not accumulated")
	}
}

func TestDragonflyRouteProperty(t *testing.T) {
	d := NewDragonfly([]int{0, 4, 8, 12})
	f := func(s, dst uint8) bool {
		a, b := int(s%20), int(dst%20)
		if a == b {
			return true
		}
		return PathLen(d, a, b) <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFabricRandomTrafficConservation is a property test: under random
// many-to-many traffic with random kinds, every injected packet is
// delivered to its destination exactly once.
func TestFabricRandomTrafficConservation(t *testing.T) {
	topo := NewDragonfly([]int{0, 4, 8, 12})
	f := NewFabric(topo, DefaultMemNetConfig())
	got := map[uint64]int{}
	for i := 0; i < topo.Nodes(); i++ {
		i := i
		f.SetEndpoint(i, EndpointFunc(func(p *Packet, c uint64) bool {
			if p.Dst != i {
				t.Fatalf("packet %d for %d delivered at %d", p.ID, p.Dst, i)
			}
			got[p.ID]++
			return true
		}))
	}
	kinds := []Kind{MemReadReq, MemReadResp, OperandReq, OperandResp, UpdateReq, GatherResp}
	rng := uint64(12345)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	const total = 400
	injected := 0
	var cycle uint64
	for injected < total {
		src := next(16)
		dst := next(topo.Nodes())
		if dst == src {
			dst = (dst + 1) % 16
		}
		p := NewPacket(uint64(injected+1), kinds[next(len(kinds))], src, dst)
		if f.Inject(src, p, cycle) {
			injected++
		}
		f.Tick(cycle)
		cycle++
	}
	for i := 0; i < 200000 && len(got) < total; i++ {
		f.Tick(cycle)
		cycle++
	}
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
	if !f.Drained() {
		t.Fatal("fabric not drained after delivery")
	}
}
