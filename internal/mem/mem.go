// Package mem implements the memory substrate shared by both machine
// configurations: virtual addressing with a page table (§3.4.1 of the
// thesis), a physical backing store holding real data values, and the
// physical address interleaving used by the DRAM and HMC systems.
//
// The simulator is functional as well as timed: loads, stores, near-data
// updates and in-network reductions all read and write real 64-bit values
// through this package, so every workload's result can be checked against a
// host-computed reference.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageSize is the virtual and physical page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// BlockSize is the cache block / memory access granularity in bytes.
const BlockSize = 64

// WordSize is the operand word granularity in bytes (double precision).
const WordSize = 8

// VAddr is a virtual address.
type VAddr uint64

// PAddr is a physical address.
type PAddr uint64

// BlockAlign rounds a physical address down to its cache block.
func BlockAlign(pa PAddr) PAddr { return pa &^ (BlockSize - 1) }

// Store is the physical backing store: sparse 4 KB pages allocated on first
// touch. All values are little-endian 64-bit words.
type Store struct {
	pages map[uint64]*[PageSize]byte
}

// NewStore returns an empty backing store.
func NewStore() *Store { return &Store{pages: make(map[uint64]*[PageSize]byte)} }

func (s *Store) page(pa PAddr) *[PageSize]byte {
	pn := uint64(pa) >> PageShift
	p, ok := s.pages[pn]
	if !ok {
		p = new([PageSize]byte)
		s.pages[pn] = p
	}
	return p
}

// Pages reports the number of touched physical pages.
func (s *Store) Pages() int { return len(s.pages) }

// ReadU64 reads the 64-bit word at pa. The address must be 8-byte aligned.
func (s *Store) ReadU64(pa PAddr) uint64 {
	off := uint64(pa) & (PageSize - 1)
	if off%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word read at %#x", uint64(pa)))
	}
	return binary.LittleEndian.Uint64(s.page(pa)[off : off+8])
}

// WriteU64 writes the 64-bit word at pa. The address must be 8-byte aligned.
func (s *Store) WriteU64(pa PAddr, v uint64) {
	off := uint64(pa) & (PageSize - 1)
	if off%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word write at %#x", uint64(pa)))
	}
	binary.LittleEndian.PutUint64(s.page(pa)[off:off+8], v)
}

// ReadF64 reads the float64 at pa.
func (s *Store) ReadF64(pa PAddr) float64 { return math.Float64frombits(s.ReadU64(pa)) }

// WriteF64 writes the float64 at pa.
func (s *Store) WriteF64(pa PAddr, v float64) { s.WriteU64(pa, math.Float64bits(v)) }

// HMCGeometry describes the die-stacked memory side of Table 4.1: 16 cubes
// of 4 GB, 32 vaults per cube, 8 banks per vault.
type HMCGeometry struct {
	Cubes         int
	VaultsPerCube int
	BanksPerVault int
}

// DefaultHMCGeometry is the Table 4.1 configuration.
func DefaultHMCGeometry() HMCGeometry {
	return HMCGeometry{Cubes: 16, VaultsPerCube: 32, BanksPerVault: 8}
}

// CubeOf returns the cube holding pa. Pages are interleaved across cubes at
// page granularity so consecutive pages of a large array spread over the
// memory network.
func (g HMCGeometry) CubeOf(pa PAddr) int {
	return int((uint64(pa) >> PageShift) % uint64(g.Cubes))
}

// VaultOf returns the vault within the cube holding pa. Blocks are
// interleaved across vaults at cache-block granularity for maximum
// vault-level parallelism.
func (g HMCGeometry) VaultOf(pa PAddr) int {
	return int((uint64(pa) >> 6) % uint64(g.VaultsPerCube))
}

// BankOf returns the bank within the vault holding pa.
func (g HMCGeometry) BankOf(pa PAddr) int {
	return int((uint64(pa) >> 16) % uint64(g.BanksPerVault))
}

// RowOf returns the DRAM row within the bank holding pa (2 KB rows).
func (g HMCGeometry) RowOf(pa PAddr) uint64 { return uint64(pa) >> 19 }

// DRAMGeometry describes the DDR baseline of Table 4.1: 4 memory
// controllers, 4 ranks per channel, 64 banks per rank.
type DRAMGeometry struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
}

// DefaultDRAMGeometry is the Table 4.1 configuration.
func DefaultDRAMGeometry() DRAMGeometry {
	return DRAMGeometry{Channels: 4, RanksPerChan: 4, BanksPerRank: 64}
}

// ChannelOf returns the channel holding pa (page interleaved).
func (g DRAMGeometry) ChannelOf(pa PAddr) int {
	return int((uint64(pa) >> PageShift) % uint64(g.Channels))
}

// RankOf returns the rank within the channel holding pa.
func (g DRAMGeometry) RankOf(pa PAddr) int {
	return int((uint64(pa) >> 14) % uint64(g.RanksPerChan))
}

// BankOf returns the bank within the rank holding pa.
func (g DRAMGeometry) BankOf(pa PAddr) int {
	return int((uint64(pa) >> 16) % uint64(g.BanksPerRank))
}

// RowOf returns the row within the bank (2 KB rows).
func (g DRAMGeometry) RowOf(pa PAddr) uint64 { return uint64(pa) >> 22 }

// AddrSpace is a process address space: a bump allocator over virtual pages
// and a page table mapping them to sequentially assigned physical frames.
// Active-Routing offload instructions translate through the same page table
// as normal loads and stores (§3.4.1).
type AddrSpace struct {
	brk       VAddr
	frames    []uint64 // vpage index -> physical frame number
	nextFrame uint64
}

// NewAddrSpace returns an empty address space. Both the virtual break and
// the physical frame allocator start at one page so that address 0 is never
// valid in either space: Update packets encode "no second operand" as a
// zero physical address (§3.1.1's nil src2).
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{brk: PageSize, nextFrame: 1}
}

// Alloc reserves n bytes aligned to align (a power of two, at least 8) and
// returns the starting virtual address. Pages are mapped eagerly.
func (as *AddrSpace) Alloc(n uint64, align uint64) VAddr {
	if align < WordSize {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic("mem: Alloc alignment must be a power of two")
	}
	start := (uint64(as.brk) + align - 1) &^ (align - 1)
	as.brk = VAddr(start + n)
	// Map every page the allocation touches.
	first := start >> PageShift
	last := (start + n - 1) >> PageShift
	for vp := first; vp <= last; vp++ {
		as.mapPage(vp)
	}
	return VAddr(start)
}

// mapPage assigns the physical frame for a virtual page. Frames preserve
// the page number (page-coloring allocation): the physical page keeps the
// virtual page's cube/channel interleave phase, which is what lets NUMA-
// conscious allocations co-locate paired arrays on the same cubes — the
// locality the thesis's near-data processing exploits. The thesis's
// ARF-addr imbalance discussion ("if the linear virtual memory space is
// not hashed well") corresponds to exactly this linear assignment.
func (as *AddrSpace) mapPage(vp uint64) {
	for uint64(len(as.frames)) <= vp {
		as.frames = append(as.frames, ^uint64(0))
	}
	if as.frames[vp] == ^uint64(0) {
		as.frames[vp] = vp
		as.nextFrame++
	}
}

// Translate converts a virtual address to a physical address. Accessing an
// unmapped page panics: workloads always allocate before touching memory,
// so a fault here is a simulator bug.
func (as *AddrSpace) Translate(va VAddr) PAddr {
	vp := uint64(va) >> PageShift
	if vp >= uint64(len(as.frames)) || as.frames[vp] == ^uint64(0) {
		panic(fmt.Sprintf("mem: page fault at va %#x", uint64(va)))
	}
	return PAddr(as.frames[vp]<<PageShift | uint64(va)&(PageSize-1))
}

// Mapped reports whether va's page is mapped.
func (as *AddrSpace) Mapped(va VAddr) bool {
	vp := uint64(va) >> PageShift
	return vp < uint64(len(as.frames)) && as.frames[vp] != ^uint64(0)
}

// MappedPages reports the number of mapped virtual pages.
func (as *AddrSpace) MappedPages() int {
	n := 0
	for _, f := range as.frames {
		if f != ^uint64(0) {
			n++
		}
	}
	return n
}
