package mem

import (
	"sort"

	"repro/internal/sim"
)

// Snapshot appends every touched page (sorted by page number, so the byte
// stream is independent of map iteration order) for checkpointing.
func (s *Store) Snapshot(e *sim.Enc) {
	e.Tag("mem.store")
	pns := make([]uint64, 0, len(s.pages))
	//ar:exempt(determinism) key collection only; the slice is sorted before use
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	e.Int(len(pns))
	for _, pn := range pns {
		e.U64(pn)
		e.B = append(e.B, s.pages[pn][:]...)
	}
}

// Restore replaces the store's contents with the snapshotted pages.
func (s *Store) Restore(d *sim.Dec) {
	d.Tag("mem.store")
	n := d.Len(d.Remaining()/PageSize+1, "store pages")
	if d.Err() != nil {
		return
	}
	pages := make(map[uint64]*[PageSize]byte, n)
	for i := 0; i < n; i++ {
		pn := d.U64()
		var pg [PageSize]byte
		if d.Err() != nil {
			return
		}
		if d.Remaining() < PageSize {
			d.Fail("truncated page %#x", pn)
			return
		}
		copy(pg[:], d.BytesAt(PageSize))
		pages[pn] = &pg
	}
	if d.Err() == nil {
		s.pages = pages
	}
}
