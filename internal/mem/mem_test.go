package mem

import (
	"testing"
	"testing/quick"
)

func TestStoreReadWriteU64(t *testing.T) {
	s := NewStore()
	s.WriteU64(0x1000, 0xDEADBEEF)
	if got := s.ReadU64(0x1000); got != 0xDEADBEEF {
		t.Fatalf("ReadU64 = %#x", got)
	}
	if got := s.ReadU64(0x2000); got != 0 {
		t.Fatalf("untouched word = %#x, want 0", got)
	}
}

func TestStoreF64RoundTrip(t *testing.T) {
	s := NewStore()
	f := func(addr uint32, v float64) bool {
		pa := PAddr(addr) &^ 7
		s.WriteF64(pa, v)
		return s.ReadF64(pa) == v || (v != v && s.ReadF64(pa) != s.ReadF64(pa))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned access")
		}
	}()
	NewStore().ReadU64(0x1003)
}

func TestStorePageAccounting(t *testing.T) {
	s := NewStore()
	s.WriteU64(0, 1)
	s.WriteU64(PageSize-8, 2)
	s.WriteU64(PageSize, 3)
	if s.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", s.Pages())
	}
}

func TestHMCGeometryMapping(t *testing.T) {
	g := DefaultHMCGeometry()
	// Consecutive pages rotate across cubes.
	for p := 0; p < 64; p++ {
		pa := PAddr(p * PageSize)
		if got, want := g.CubeOf(pa), p%16; got != want {
			t.Fatalf("CubeOf(page %d) = %d, want %d", p, got, want)
		}
	}
	// Consecutive blocks rotate across vaults.
	for b := 0; b < 64; b++ {
		pa := PAddr(b * BlockSize)
		if got, want := g.VaultOf(pa), b%32; got != want {
			t.Fatalf("VaultOf(block %d) = %d, want %d", b, got, want)
		}
	}
	if g.BankOf(0) < 0 || g.BankOf(0) >= g.BanksPerVault {
		t.Fatal("bank out of range")
	}
}

func TestHMCGeometryRanges(t *testing.T) {
	g := DefaultHMCGeometry()
	f := func(a uint64) bool {
		pa := PAddr(a)
		return g.CubeOf(pa) >= 0 && g.CubeOf(pa) < g.Cubes &&
			g.VaultOf(pa) >= 0 && g.VaultOf(pa) < g.VaultsPerCube &&
			g.BankOf(pa) >= 0 && g.BankOf(pa) < g.BanksPerVault
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMGeometryRanges(t *testing.T) {
	g := DefaultDRAMGeometry()
	f := func(a uint64) bool {
		pa := PAddr(a)
		return g.ChannelOf(pa) >= 0 && g.ChannelOf(pa) < g.Channels &&
			g.RankOf(pa) >= 0 && g.RankOf(pa) < g.RanksPerChan &&
			g.BankOf(pa) >= 0 && g.BankOf(pa) < g.BanksPerRank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceAllocTranslate(t *testing.T) {
	as := NewAddrSpace()
	va := as.Alloc(100, 8)
	if va == 0 {
		t.Fatal("allocation at address 0")
	}
	pa := as.Translate(va)
	pa2 := as.Translate(va + 8)
	if pa2 != pa+8 {
		t.Fatalf("intra-page translation not contiguous: %#x vs %#x", pa, pa2)
	}
}

func TestAddrSpaceAlignment(t *testing.T) {
	as := NewAddrSpace()
	as.Alloc(13, 8)
	va := as.Alloc(64, 64)
	if uint64(va)%64 != 0 {
		t.Fatalf("alignment violated: %#x", uint64(va))
	}
}

func TestAddrSpacePageFaultPanics(t *testing.T) {
	as := NewAddrSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("expected page fault panic")
		}
	}()
	as.Translate(0x100000000)
}

func TestAddrSpaceDistinctFrames(t *testing.T) {
	as := NewAddrSpace()
	a := as.Alloc(PageSize, PageSize)
	b := as.Alloc(PageSize, PageSize)
	if as.Translate(a)>>PageShift == as.Translate(b)>>PageShift {
		t.Fatal("two allocations share a frame")
	}
	if as.MappedPages() < 2 {
		t.Fatalf("mapped pages = %d", as.MappedPages())
	}
}

func TestAddrSpaceSpanningAllocMapsAllPages(t *testing.T) {
	as := NewAddrSpace()
	va := as.Alloc(3*PageSize+10, 8)
	for off := uint64(0); off <= 3*PageSize; off += PageSize {
		if !as.Mapped(va + VAddr(off)) {
			t.Fatalf("page at offset %d not mapped", off)
		}
	}
}

func TestBlockAlign(t *testing.T) {
	if BlockAlign(0x12345) != 0x12340 {
		t.Fatalf("BlockAlign(0x12345) = %#x", uint64(BlockAlign(0x12345)))
	}
	if BlockAlign(0x40) != 0x40 {
		t.Fatal("aligned address must be unchanged")
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	as := NewAddrSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	as.Alloc(8, 24)
}
