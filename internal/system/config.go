// Package system assembles the full simulated machine for each of the
// thesis's configuration schemes (§5.1): DRAM, HMC, ART, ARF-tid, ARF-addr,
// and the §5.4 ARF-tid-adaptive case study. It wires cores, the cache
// hierarchy and NoC, the memory side (DDR channels or the HMC dragonfly
// network with Active-Routing Engines), runs a workload to completion, and
// reports every statistic the evaluation figures need.
package system

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/hmc"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/workload"
)

// Scheme is one evaluated configuration (§5.1).
type Scheme int

// The six schemes.
const (
	SchemeDRAM Scheme = iota
	SchemeHMC
	SchemeART
	SchemeARFtid
	SchemeARFaddr
	SchemeARFtidAdaptive
	// SchemeARFea is the §6 energy-aware scheduling extension: forests
	// rooted at the port minimizing operand hop distance.
	SchemeARFea
)

// Schemes returns the five headline configurations in figure order.
func Schemes() []Scheme {
	return []Scheme{SchemeDRAM, SchemeHMC, SchemeART, SchemeARFtid, SchemeARFaddr}
}

// AllSchemes returns every evaluated configuration, including the §5.4
// adaptive case study and the §6 energy-aware extension.
func AllSchemes() []Scheme {
	return []Scheme{SchemeDRAM, SchemeHMC, SchemeART, SchemeARFtid,
		SchemeARFaddr, SchemeARFtidAdaptive, SchemeARFea}
}

// ParseScheme parses a scheme by its figure label (case-insensitive), the
// inverse of Scheme.String.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range AllSchemes() {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("system: unknown scheme %q (want one of DRAM, HMC, ART, ARF-tid, ARF-addr, ARF-tid-adaptive, ARF-ea)", name)
}

// String names the scheme as the figures label it.
func (s Scheme) String() string {
	switch s {
	case SchemeDRAM:
		return "DRAM"
	case SchemeHMC:
		return "HMC"
	case SchemeART:
		return "ART"
	case SchemeARFtid:
		return "ARF-tid"
	case SchemeARFaddr:
		return "ARF-addr"
	case SchemeARFtidAdaptive:
		return "ARF-tid-adaptive"
	case SchemeARFea:
		return "ARF-ea"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Active reports whether the scheme offloads with Active-Routing.
func (s Scheme) Active() bool { return s >= SchemeART }

// Mode returns the workload variant the scheme executes.
func (s Scheme) Mode() workload.Mode {
	switch s {
	case SchemeDRAM, SchemeHMC:
		return workload.ModeBaseline
	case SchemeARFtidAdaptive:
		return workload.ModeAdaptive
	default:
		return workload.ModeActive
	}
}

// Policy returns the coordinator's port policy for the scheme.
func (s Scheme) Policy() core.PortPolicy {
	switch s {
	case SchemeART:
		return core.PolicyStatic
	case SchemeARFaddr:
		return core.PolicyAddress
	case SchemeARFea:
		return core.PolicyEnergyAware
	default:
		return core.PolicyThreadID
	}
}

// MemTopology selects the memory network topology (dragonfly per Table
// 4.1; mesh is the ablation).
type MemTopology int

// Memory network topologies.
const (
	TopoDragonfly MemTopology = iota
	TopoMesh
)

// Config is the full machine configuration (Table 4.1, with cache sizes
// scaled alongside the scaled workload inputs — DESIGN.md).
type Config struct {
	Scheme  Scheme
	Threads int

	Core cpu.Config
	L1   cache.L1Config
	L2   cache.L2Config

	NoC    network.Config
	MemNet network.Config

	Cube    hmc.CubeConfig
	ARE     core.EngineConfig
	MemTopo MemTopology

	DRAMTiming dram.Timing
	DRAMGeom   mem.DRAMGeometry
	HMCGeom    mem.HMCGeometry

	CoordQueue int
	MIQueue    int
	MIWindow   int

	//ar:exempt(validate) every 64-bit seed keys a runnable machine
	Seed uint64
	//ar:prefix(cycle-inert) the budget caps how long the machine may run but never alters any cycle it does run, so points differing only in budget share every checkpoint
	MaxCycles uint64
	// IPCSampleCycles sets the Fig 5.8 sampling window.
	IPCSampleCycles uint64

	// Shards selects the sharded (multicore) simulation kernel: the machine
	// is partitioned into Shards tile groups plus Shards cube groups that
	// tick on a worker pool with bit-identical results to the sequential
	// kernel (DESIGN.md "Sharded kernel"). 0 (the default) runs the
	// sequential kernel; KernelAuto (-1) resolves from topology and host
	// occupancy at New time (ResolveKernel). Shards and Workers never
	// change simulated results and are excluded from Hash.
	//ar:exempt(hash) kernel choice is result-invariant (pinned by the sharded determinism tests); one cache entry serves every kernel
	Shards int
	// Workers bounds the sharded kernel's OS-thread pool; 0 defaults to
	// Shards, KernelAuto (-1) resolves alongside Shards. Ignored when
	// Shards is 0.
	//ar:exempt(hash) worker-pool width is result-invariant, same contract as Shards
	Workers int
}

// KernelAuto, assigned to Config.Shards or Config.Workers, asks the host to
// pick the kernel and pool size from topology, GOMAXPROCS, and — in the
// service — the worker budget's free capacity (ResolveKernel). Resolution
// happens outside the config hash, like every Shards/Workers choice.
const KernelAuto = -1

// ResolveKernel replaces KernelAuto in cfg.Shards/cfg.Workers with concrete
// values. slots bounds the CPUs this run should occupy (the caller's free
// worker-budget share; <= 0 means unconstrained) and is combined with
// GOMAXPROCS. With one available CPU the sequential kernel wins (the
// sharded kernel's single-worker mode is close, but never ahead); otherwise
// shards track the usable CPUs, capped by the tile-group limit and the
// topology (computePlan clamps to Threads, mirrored here so Workers lands
// on the resolved shard count).
func ResolveKernel(cfg *Config, slots int) {
	avail := runtime.GOMAXPROCS(0)
	if slots > 0 && slots < avail {
		avail = slots
	}
	if cfg.Shards == KernelAuto {
		if avail <= 1 {
			cfg.Shards = 0
		} else {
			s := avail
			if s > cfg.Threads {
				s = cfg.Threads
			}
			if s > 16 {
				s = 16
			}
			cfg.Shards = s
		}
	}
	if cfg.Workers == KernelAuto {
		if cfg.Shards <= 0 {
			cfg.Workers = 0
		} else {
			w := avail
			if w > cfg.Shards {
				w = cfg.Shards
			}
			if w < 1 {
				w = 1
			}
			cfg.Workers = w
		}
	}
}

// ResolvedWorkers reports the OS threads a run of this configuration will
// actually occupy — the sharded conductor's effective pool size after every
// clamp (shard count, topology, GOMAXPROCS), or 1 for the sequential
// kernel. KernelAuto resolves against an unconstrained host first. Used to
// weight worker-budget acquisition so concurrent sharded runs cannot
// oversubscribe the host.
func (c *Config) ResolvedWorkers() int {
	cfg := *c
	ResolveKernel(&cfg, 0)
	if cfg.Shards <= 0 {
		return 1
	}
	s := cfg.Shards
	if s > cfg.Threads {
		s = cfg.Threads
	}
	w := cfg.Workers
	if w <= 0 {
		w = s
	}
	if w > s {
		w = s
	}
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParseKernel parses a -shards / -workers style flag value: "auto" (or
// "-1") selects KernelAuto, anything else must be a non-negative integer.
func ParseKernel(s string) (int, error) {
	if s == "auto" {
		return KernelAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("system: kernel knob %q: want \"auto\" or a non-negative integer", s)
	}
	if n < KernelAuto {
		return 0, fmt.Errorf("system: kernel knob %d out of range", n)
	}
	return n, nil
}

// Validate rejects configurations the machine cannot be built or run with.
// It covers every field the sweep axes mutate plus the structural minima the
// assembly code assumes; DefaultConfig always validates.
func (c *Config) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{c.Scheme >= SchemeDRAM && c.Scheme <= SchemeARFea, "Scheme out of range"},
		{c.Threads > 0, "Threads must be positive"},
		{c.Core.IssueWidth > 0 && c.Core.CommitWidth > 0, "core issue/commit width must be positive"},
		{c.Core.ROBSize > 0, "core ROB size must be positive"},
		{c.L1.SizeBytes > 0 && c.L1.Ways > 0, "L1 geometry must be positive"},
		{c.L2.BankSizeBytes > 0 && c.L2.Ways > 0, "L2 geometry must be positive"},
		{c.NoC.LinkBandwidth > 0, "NoC.LinkBandwidth must be positive"},
		{c.NoC.VCs > 0 && c.NoC.QueueDepth > 0, "NoC queues must be positive"},
		{c.MemNet.LinkBandwidth > 0, "MemNet.LinkBandwidth must be positive"},
		{c.MemNet.VCs > 0 && c.MemNet.QueueDepth > 0, "MemNet queues must be positive"},
		{c.ARE.MaxFlows > 0, "ARE.MaxFlows must be positive"},
		{c.ARE.OperandBufs > 0, "ARE.OperandBufs must be positive"},
		{c.ARE.DecodeRate > 0 && c.ARE.ALURate > 0, "ARE decode/ALU rates must be positive"},
		{c.DRAMGeom.Channels > 0, "DRAM channels must be positive"},
		{c.HMCGeom.Cubes > 0 && c.HMCGeom.VaultsPerCube > 0, "HMC geometry must be positive"},
		{c.CoordQueue > 0, "CoordQueue must be positive"},
		{c.MIQueue > 0 && c.MIWindow > 0, "MI queue/window must be positive"},
		{c.Cube.VaultQueue > 0 && c.Cube.XbarRate > 0, "cube vault queue and crossbar rate must be positive"},
		{c.Cube.Geom.VaultsPerCube > 0 && c.Cube.Geom.BanksPerVault > 0, "cube geometry must be positive"},
		{c.Cube.Timing.CyclesPerTick > 0, "cube DRAM timing CyclesPerTick must be positive"},
		{c.MemTopo == TopoDragonfly || c.MemTopo == TopoMesh, "MemTopo out of range"},
		{c.DRAMTiming.CyclesPerTick > 0, "DRAM timing CyclesPerTick must be positive"},
		{c.DRAMTiming.BL > 0, "DRAM timing burst length must be positive"},
		{c.MaxCycles > 0, "MaxCycles must be positive"},
		{c.IPCSampleCycles > 0, "IPCSampleCycles must be positive"},
		{c.Shards >= KernelAuto && c.Shards <= 16, "Shards must be auto (-1) or in [0, 16]"},
		{c.Workers >= KernelAuto, "Workers must be auto (-1) or non-negative"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("system: invalid config: %s", ch.what)
		}
	}
	return nil
}

// cfgHashVersion salts Config.Hash. Bump it whenever the configuration
// schema changes shape, so results cached under the old schema (service
// result cache, sweep keys, the arserved disk store) can never collide
// with new ones. v2: the dead network EjectPerCycle knob was removed. v3:
// the sharded-kernel Shards/Workers knobs were added, zeroed before
// rendering. v4: the rendering switched from one whole-struct %#v to an
// explicit field-by-field enumeration so the hashcov analyzer can prove
// coverage per field — a new Config field that is not added here (or
// //ar:exempt(hash)-ed with a reviewed reason) now fails `arlint ./...`
// instead of silently fragmenting or poisoning the result cache.
const cfgHashVersion = "cfg/v4|"

// Hash returns a stable 64-bit digest of the full configuration, used to
// key cached and stored results: two runs share a hash iff every
// result-affecting configuration field (including nested component
// configs) is identical and the schema version matches. Every field is
// rendered explicitly — the hashcov analyzer enforces that this list and
// the Config struct never drift apart. Shards and Workers are the only
// exclusions: kernel choice is result-invariant (see the field
// exemptions), so one cache entry serves every kernel configuration of
// the same machine. The nested component configs are plain value types,
// so their %#v renderings are deterministic.
func (c *Config) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(cfgHashVersion))
	fmt.Fprintf(h, "%d|%d|", c.Scheme, c.Threads)
	fmt.Fprintf(h, "%#v|%#v|%#v|", c.Core, c.L1, c.L2)
	fmt.Fprintf(h, "%#v|%#v|", c.NoC, c.MemNet)
	fmt.Fprintf(h, "%#v|%#v|%d|", c.Cube, c.ARE, c.MemTopo)
	fmt.Fprintf(h, "%#v|%#v|%#v|", c.DRAMTiming, c.DRAMGeom, c.HMCGeom)
	fmt.Fprintf(h, "%d|%d|%d|", c.CoordQueue, c.MIQueue, c.MIWindow)
	fmt.Fprintf(h, "%d|%d|%d", c.Seed, c.MaxCycles, c.IPCSampleCycles)
	return fmt.Sprintf("%016x", h.Sum64())
}

// prefixHashVersion salts Config.PrefixHash, independently of
// cfgHashVersion: prefix keys address checkpoint blobs, not result records,
// and the two families must never collide even if the field renderings
// coincide. Bump it whenever the prefix rendering (or the snapshot wire
// format it keys) changes shape.
const prefixHashVersion = "prefix/v1|"

// PrefixHash returns a stable 64-bit digest of every configuration field
// that can influence the machine's first `cycle` cycles — the
// content-address of a checkpoint taken at that cycle. Two configurations
// share a prefix hash iff a checkpoint taken under one restores exactly
// under the other:
//
//   - MaxCycles is excluded: //ar:prefix(cycle-inert) the budget caps how
//     long the machine may run but never alters any cycle it does run, so
//     points that differ only in budget share every checkpoint.
//   - ARE.MaxFlows is zeroed before rendering: flow-table capacity only
//     matters once the table fills, and the sweep layer's fork-validity
//     guard (leader peak below the fork's capacity, zero capacity stalls)
//     refuses the warm start whenever the prefix could have noticed the
//     difference. Every other ARE field is prefix-live.
//   - Shards and Workers are excluded with the same justification as in
//     Hash: kernel choice is result-invariant, and checkpoints are
//     kernel-portable by construction (cross-kernel restore is pinned by
//     the checkpoint golden tests).
func (c *Config) PrefixHash(cycle uint64) uint64 {
	pc := *c
	pc.ARE.MaxFlows = 0
	h := fnv.New64a()
	h.Write([]byte(prefixHashVersion))
	fmt.Fprintf(h, "%d|", cycle)
	fmt.Fprintf(h, "%d|%d|", pc.Scheme, pc.Threads)
	fmt.Fprintf(h, "%#v|%#v|%#v|", pc.Core, pc.L1, pc.L2)
	fmt.Fprintf(h, "%#v|%#v|", pc.NoC, pc.MemNet)
	fmt.Fprintf(h, "%#v|%#v|%d|", pc.Cube, pc.ARE, pc.MemTopo)
	fmt.Fprintf(h, "%#v|%#v|%#v|", pc.DRAMTiming, pc.DRAMGeom, pc.HMCGeom)
	fmt.Fprintf(h, "%d|%d|%d|", pc.CoordQueue, pc.MIQueue, pc.MIWindow)
	fmt.Fprintf(h, "%d|%d", pc.Seed, pc.IPCSampleCycles)
	return h.Sum64()
}

// mcTiles are the NoC tiles hosting the four memory controllers (Table
// 4.1: "4 MC at 4 corners").
var mcTiles = [4]int{0, 3, 12, 15}

// ctrlCubes are the cubes each HMC controller attaches to: one per
// dragonfly group, so the ARF forests can root four disjoint trees
// (DESIGN.md).
var ctrlCubes = [4]int{0, 4, 8, 12}

// DefaultConfig returns the evaluation machine for a scheme. Cache
// capacities are scaled by the same factor as the workload inputs
// (16 MB -> 32 KB L2, 16 KB -> 4 KB L1) so that the paper's
// working-set-exceeds-cache regime is preserved.
func DefaultConfig(scheme Scheme) Config {
	l1 := cache.DefaultL1Config()
	l1.SizeBytes = 4 << 10
	l2 := cache.DefaultL2Config()
	l2.BankSizeBytes = 2 << 10
	l2.Ways = 4
	return Config{
		Scheme:          scheme,
		Threads:         16,
		Core:            cpu.DefaultConfig(),
		L1:              l1,
		L2:              l2,
		NoC:             network.DefaultNoCConfig(),
		MemNet:          network.DefaultMemNetConfig(),
		Cube:            hmc.DefaultCubeConfig(),
		ARE:             core.DefaultEngineConfig(),
		MemTopo:         TopoDragonfly,
		DRAMTiming:      dram.DefaultDDRTiming(),
		DRAMGeom:        mem.DefaultDRAMGeometry(),
		HMCGeom:         mem.DefaultHMCGeometry(),
		CoordQueue:      32,
		MIQueue:         16,
		MIWindow:        16,
		Seed:            42,
		MaxCycles:       200_000_000,
		IPCSampleCycles: 2048,
	}
}
