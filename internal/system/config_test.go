package system

import (
	"runtime"
	"strings"
	"testing"
)

func TestDefaultConfigValidates(t *testing.T) {
	for _, sch := range append(Schemes(), SchemeARFtidAdaptive, SchemeARFea) {
		cfg := DefaultConfig(sch)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: default config invalid: %v", sch, err)
		}
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero flows", func(c *Config) { c.ARE.MaxFlows = 0 }, "MaxFlows"},
		{"negative operand bufs", func(c *Config) { c.ARE.OperandBufs = -1 }, "OperandBufs"},
		{"zero link bw", func(c *Config) { c.MemNet.LinkBandwidth = 0 }, "LinkBandwidth"},
		{"zero threads", func(c *Config) { c.Threads = 0 }, "Threads"},
		{"zero max cycles", func(c *Config) { c.MaxCycles = 0 }, "MaxCycles"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(SchemeARFtid)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: invalid config accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestConfigHashStability(t *testing.T) {
	a := DefaultConfig(SchemeARFtid)
	b := DefaultConfig(SchemeARFtid)
	if a.Hash() != b.Hash() {
		t.Fatal("identical configs hash differently")
	}
	b.ARE.MaxFlows = 8
	if a.Hash() == b.Hash() {
		t.Fatal("mutated config shares hash with default")
	}
	c := DefaultConfig(SchemeHMC)
	if a.Hash() == c.Hash() {
		t.Fatal("different schemes share a hash")
	}
	if len(a.Hash()) != 16 {
		t.Fatalf("hash %q is not 16 hex digits", a.Hash())
	}
}

// v1ConfigHashes records Config.Hash() of DefaultConfig(scheme) as computed
// by the schema that still carried the dead network EjectPerCycle knob
// (captured immediately before its removal). Old cached results are keyed
// by these strings; the current schema must never reproduce them for the
// same logical configuration, or a stale cache entry could satisfy a new
// request.
var v1ConfigHashes = map[Scheme]string{
	SchemeDRAM:           "0ae7404317fc96ba",
	SchemeHMC:            "99a22cc2eddc34cb",
	SchemeART:            "0681a0f291a911a0",
	SchemeARFtid:         "ad1617d4bc073071",
	SchemeARFaddr:        "901165aa0cbb964e",
	SchemeARFtidAdaptive: "ffa61a612b89852f",
	SchemeARFea:          "588505d91deeca34",
}

// v2ConfigHashes records Config.Hash() of DefaultConfig(scheme) under the
// cfg/v2 schema (captured immediately before the sharded-kernel
// Shards/Workers fields were added).
var v2ConfigHashes = map[Scheme]string{
	SchemeDRAM:           "f79013d4ba39abed",
	SchemeHMC:            "a1daa1997fde10d4",
	SchemeART:            "3a9a0191849e4b77",
	SchemeARFtid:         "e065642d161113ce",
	SchemeARFaddr:        "41981c73c3f72cd1",
	SchemeARFtidAdaptive: "3ea0ba2b3c81f958",
	SchemeARFea:          "b88ab93de8b3155b",
}

// v3ConfigHashes records Config.Hash() of DefaultConfig(scheme) under the
// cfg/v3 schema (captured immediately before Hash moved from whole-struct
// %#v formatting to explicit field enumeration, the form the hashcov
// analyzer can prove complete).
var v3ConfigHashes = map[Scheme]string{
	SchemeDRAM:           "dbbfc17d1812ff00",
	SchemeHMC:            "6299e99ff69289e7",
	SchemeART:            "47f6a8b6d49cbeae",
	SchemeARFtid:         "59a5b0be4149884d",
	SchemeARFaddr:        "b31fc5fe3821b5b4",
	SchemeARFtidAdaptive: "65e9a231d5bf8f5b",
	SchemeARFea:          "38fcca9ba075b782",
}

// TestConfigHashDistinctFromOldSchemas pins the schema-versioning contract:
// after each schema change, otherwise-equal default configs hash
// differently from their ancestors, so stale cached results can never
// satisfy a new request.
func TestConfigHashDistinctFromOldSchemas(t *testing.T) {
	for _, s := range AllSchemes() {
		cfg := DefaultConfig(s)
		got := cfg.Hash()
		if old, ok := v1ConfigHashes[s]; !ok {
			t.Fatalf("missing v1 hash for %s", s)
		} else if got == old {
			t.Errorf("%s: hash %s collides with the v1 schema hash", s, got)
		}
		if old, ok := v2ConfigHashes[s]; !ok {
			t.Fatalf("missing v2 hash for %s", s)
		} else if got == old {
			t.Errorf("%s: hash %s collides with the v2 schema hash", s, got)
		}
		if old, ok := v3ConfigHashes[s]; !ok {
			t.Fatalf("missing v3 hash for %s", s)
		} else if got == old {
			t.Errorf("%s: hash %s collides with the v3 schema hash", s, got)
		}
	}
}

// TestConfigHashKernelInvariant pins the cache-key contract for the sharded
// kernel: Shards/Workers select an execution strategy with bit-identical
// results, so they must not fragment the result cache.
func TestConfigHashKernelInvariant(t *testing.T) {
	seq := DefaultConfig(SchemeARFtid)
	sh := seq
	sh.Shards, sh.Workers = 4, 4
	if seq.Hash() != sh.Hash() {
		t.Fatalf("sharded config hash %s differs from sequential %s", sh.Hash(), seq.Hash())
	}
}

// TestResolveKernelAuto pins the auto-tune resolution rules: one available
// CPU picks the sequential kernel; more pick shards = min(avail, Threads,
// 16) with workers matching; concrete values pass through untouched; the
// slots bound (free budget capacity) caps availability below GOMAXPROCS.
func TestResolveKernelAuto(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	cfg := DefaultConfig(SchemeARFtid)
	cfg.Shards, cfg.Workers = KernelAuto, KernelAuto
	if err := cfg.Validate(); err != nil {
		t.Fatalf("auto knobs must validate: %v", err)
	}

	// slots=1: sequential.
	c := cfg
	ResolveKernel(&c, 1)
	if c.Shards != 0 || c.Workers != 0 {
		t.Fatalf("slots=1: resolved to Shards=%d Workers=%d, want sequential", c.Shards, c.Workers)
	}

	// slots=4 on an 8-proc host: 4 shards, 4 workers.
	c = cfg
	ResolveKernel(&c, 4)
	if c.Shards != 4 || c.Workers != 4 {
		t.Fatalf("slots=4: resolved to Shards=%d Workers=%d, want 4/4", c.Shards, c.Workers)
	}

	// Unconstrained: bounded by GOMAXPROCS and the topology.
	c = cfg
	ResolveKernel(&c, 0)
	want := 8
	if cfg.Threads < want {
		want = cfg.Threads
	}
	if want > 16 {
		want = 16
	}
	if c.Shards != want || c.Workers != want {
		t.Fatalf("unconstrained: resolved to Shards=%d Workers=%d, want %d/%d", c.Shards, c.Workers, want, want)
	}

	// Concrete values pass through.
	c = cfg
	c.Shards, c.Workers = 2, 1
	ResolveKernel(&c, 0)
	if c.Shards != 2 || c.Workers != 1 {
		t.Fatalf("concrete knobs mutated: Shards=%d Workers=%d", c.Shards, c.Workers)
	}

	// Auto workers with concrete shards.
	c = cfg
	c.Shards, c.Workers = 3, KernelAuto
	ResolveKernel(&c, 2)
	if c.Shards != 3 || c.Workers != 2 {
		t.Fatalf("auto workers: Shards=%d Workers=%d, want 3/2", c.Shards, c.Workers)
	}
}

// TestResolvedWorkers pins the budget weight: the post-clamp pool size the
// conductor will actually use, not the declared knobs.
func TestResolvedWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	cfg := DefaultConfig(SchemeARFtid)
	cases := []struct {
		shards, workers, want int
	}{
		{0, 0, 1},            // sequential
		{4, 0, 4},            // workers default to shards
		{4, 2, 2},            // explicit worker bound
		{8, 16, 8},           // workers clamp to shards
		{KernelAuto, KernelAuto, 8}, // auto on an 8-proc host
	}
	for _, tc := range cases {
		c := cfg
		c.Shards, c.Workers = tc.shards, tc.workers
		if got := c.ResolvedWorkers(); got != tc.want {
			t.Errorf("Shards=%d Workers=%d: ResolvedWorkers=%d, want %d", tc.shards, tc.workers, got, tc.want)
		}
	}
}

// TestParseKernel pins the flag grammar shared by arsim/arbench/arsweep/
// arserved.
func TestParseKernel(t *testing.T) {
	if n, err := ParseKernel("auto"); err != nil || n != KernelAuto {
		t.Errorf("ParseKernel(auto) = %d, %v", n, err)
	}
	if n, err := ParseKernel("4"); err != nil || n != 4 {
		t.Errorf("ParseKernel(4) = %d, %v", n, err)
	}
	if n, err := ParseKernel("0"); err != nil || n != 0 {
		t.Errorf("ParseKernel(0) = %d, %v", n, err)
	}
	if _, err := ParseKernel("-2"); err == nil {
		t.Error("ParseKernel(-2) succeeded, want error")
	}
	if _, err := ParseKernel("many"); err == nil {
		t.Error("ParseKernel(many) succeeded, want error")
	}
}
