package system

import (
	"strings"
	"testing"
)

func TestDefaultConfigValidates(t *testing.T) {
	for _, sch := range append(Schemes(), SchemeARFtidAdaptive, SchemeARFea) {
		cfg := DefaultConfig(sch)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: default config invalid: %v", sch, err)
		}
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero flows", func(c *Config) { c.ARE.MaxFlows = 0 }, "MaxFlows"},
		{"negative operand bufs", func(c *Config) { c.ARE.OperandBufs = -1 }, "OperandBufs"},
		{"zero link bw", func(c *Config) { c.MemNet.LinkBandwidth = 0 }, "LinkBandwidth"},
		{"zero threads", func(c *Config) { c.Threads = 0 }, "Threads"},
		{"zero max cycles", func(c *Config) { c.MaxCycles = 0 }, "MaxCycles"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(SchemeARFtid)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: invalid config accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestConfigHashStability(t *testing.T) {
	a := DefaultConfig(SchemeARFtid)
	b := DefaultConfig(SchemeARFtid)
	if a.Hash() != b.Hash() {
		t.Fatal("identical configs hash differently")
	}
	b.ARE.MaxFlows = 8
	if a.Hash() == b.Hash() {
		t.Fatal("mutated config shares hash with default")
	}
	c := DefaultConfig(SchemeHMC)
	if a.Hash() == c.Hash() {
		t.Fatal("different schemes share a hash")
	}
	if len(a.Hash()) != 16 {
		t.Fatalf("hash %q is not 16 hex digits", a.Hash())
	}
}
