package system_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// runOnce builds and runs one machine.
func runOnce(t *testing.T, cfg system.Config, wl string) *system.Results {
	t.Helper()
	sys, err := system.New(cfg, wl, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShardedDeterminism is the sharded kernel's load-bearing invariant:
// for every suite workload under every scheme, a sharded run (Shards ∈ {2,
// 4}, 4 workers) produces a Results struct bit-identical to the sequential
// kernel's — every counter, heatmap, latency breakdown, energy figure,
// float series and cycle count. reflect.DeepEqual over the full struct
// means even a float reassociation introduced by the parallel schedule
// would fail the test.
func TestShardedDeterminism(t *testing.T) {
	for _, wl := range append(append([]string{}, workload.Benchmarks()...), workload.Microbenchmarks()...) {
		for _, sch := range system.AllSchemes() {
			wl, sch := wl, sch
			t.Run(wl+"/"+sch.String(), func(t *testing.T) {
				t.Parallel()
				ref := runOnce(t, system.DefaultConfig(sch), wl)
				for _, shards := range []int{2, 4} {
					cfg := system.DefaultConfig(sch)
					cfg.Shards, cfg.Workers = shards, 4
					got := runOnce(t, cfg, wl)
					if got.Cycles != ref.Cycles || got.Instructions != ref.Instructions {
						t.Errorf("shards=%d: cycles/insts = %d/%d, want %d/%d",
							shards, got.Cycles, got.Instructions, ref.Cycles, ref.Instructions)
						continue
					}
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("shards=%d: Results not bit-identical to the sequential kernel", shards)
					}
				}
			})
		}
	}
}

// TestShardedGoldenSlice re-runs a representative workload×scheme slice of
// the golden matrix under the sharded kernel with Shards ∈ {2, 4} and
// GOMAXPROCS ∈ {1, 4}, asserting bit-identical cycles/instructions against
// the sequential pins (the values in golden_test.go). GOMAXPROCS=1
// exercises the conductor's inline single-worker path; GOMAXPROCS=4 the
// true worker pool (on any host: Go multiplexes the threads).
func TestShardedGoldenSlice(t *testing.T) {
	slice := []struct {
		workload string
		scheme   system.Scheme
	}{
		{"backprop", system.SchemeDRAM},
		{"pagerank", system.SchemeHMC},
		{"reduce", system.SchemeART},
		{"sgemm", system.SchemeARFtid},
		{"spmv", system.SchemeARFaddr},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, g := range slice {
			ref := runOnce(t, system.DefaultConfig(g.scheme), g.workload)
			for _, shards := range []int{2, 4} {
				cfg := system.DefaultConfig(g.scheme)
				cfg.Shards, cfg.Workers = shards, 4
				got := runOnce(t, cfg, g.workload)
				if got.Cycles != ref.Cycles || got.Instructions != ref.Instructions {
					t.Errorf("GOMAXPROCS=%d %s/%s shards=%d: cycles/insts = %d/%d, want %d/%d",
						procs, g.workload, g.scheme, shards, got.Cycles, got.Instructions, ref.Cycles, ref.Instructions)
				}
			}
		}
	}
}

// TestShardedRaceSmoke is the focused sharded end-to-end run CI executes
// under -race: one active-scheme and one baseline workload at ScaleTiny
// with the worker pool forced on.
func TestShardedRaceSmoke(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, spec := range []struct {
		sch system.Scheme
		wl  string
	}{
		{system.SchemeARFtid, "pagerank"},
		{system.SchemeDRAM, "mac"},
	} {
		ref := runOnce(t, system.DefaultConfig(spec.sch), spec.wl)
		cfg := system.DefaultConfig(spec.sch)
		cfg.Shards, cfg.Workers = 4, 4
		got := runOnce(t, cfg, spec.wl)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s/%s: sharded Results not bit-identical", spec.sch, spec.wl)
		}
	}
}

// TestShardedNonDefaultConfig runs the sharded kernel on machines away
// from DefaultConfig — a query window narrower than the MI queue and a
// small coordinator queue — the scheduling shapes the default machine
// never exercises (a narrowed MIWindow once deadlocked the sharded
// drain/query hand-off; this is its regression test).
func TestShardedNonDefaultConfig(t *testing.T) {
	mutate := []func(*system.Config){
		func(c *system.Config) { c.MIWindow = 2 },
		func(c *system.Config) { c.MIWindow = 1; c.MIQueue = 4 },
		func(c *system.Config) { c.CoordQueue = 2 },
	}
	for i, mut := range mutate {
		for _, sch := range []system.Scheme{system.SchemeARFtid, system.SchemeART} {
			ref := system.DefaultConfig(sch)
			mut(&ref)
			want := runOnce(t, ref, "mac")
			cfg := ref
			cfg.Shards, cfg.Workers = 4, 4
			got := runOnce(t, cfg, "mac")
			if !reflect.DeepEqual(got, want) {
				t.Errorf("mutation %d %s: sharded Results not bit-identical", i, sch)
			}
		}
	}
}

// TestShardedWorkloadVerify runs the sharded kernel at a non-trivial shard
// count over every registered workload (including non-suite ones) and
// checks workload self-verification plus equality with the sequential
// kernel — the widest functional sweep.
func TestShardedWorkloadVerify(t *testing.T) {
	for _, wl := range workload.Registered() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			ref := runOnce(t, system.DefaultConfig(system.SchemeARFtid), wl)
			cfg := system.DefaultConfig(system.SchemeARFtid)
			cfg.Shards, cfg.Workers = 3, 2 // odd shard count: unbalanced groups
			got := runOnce(t, cfg, wl)
			if !reflect.DeepEqual(got, ref) {
				t.Error("sharded Results not bit-identical at shards=3")
			}
		})
	}
}
