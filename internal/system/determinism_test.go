package system_test

import (
	"reflect"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// TestDeterministicResults runs every registered workload under every
// scheme at ScaleTiny twice with the same seed and asserts the two Results
// are bit-identical — cycles, instruction counts, every counter, heatmap,
// latency breakdown, energy figure and IPC trace. This is the invariant
// the service layer's content-addressed cache depends on: a (Config,
// workload, scheme, scale) key may be served from cache only because a
// re-simulation could not produce anything different.
//
// reflect.DeepEqual covers the full Results struct, including the float64
// series: the simulator must be deterministic to the bit, not merely to a
// tolerance (the in-network reduction order is part of the machine
// definition, so even float reassociation differences would be a bug).
func TestDeterministicResults(t *testing.T) {
	for _, wl := range workload.Registered() {
		for _, sch := range system.AllSchemes() {
			wl, sch := wl, sch
			t.Run(wl+"/"+sch.String(), func(t *testing.T) {
				t.Parallel()
				runs := [2]*system.Results{}
				for i := range runs {
					sys, err := system.New(system.DefaultConfig(sch), wl, workload.ScaleTiny)
					if err != nil {
						t.Fatal(err)
					}
					runs[i], err = sys.Run()
					if err != nil {
						t.Fatal(err)
					}
				}
				if runs[0].Cycles != runs[1].Cycles {
					t.Errorf("cycles diverged across identical runs: %d vs %d", runs[0].Cycles, runs[1].Cycles)
				}
				if runs[0].Instructions != runs[1].Instructions {
					t.Errorf("instructions diverged: %d vs %d", runs[0].Instructions, runs[1].Instructions)
				}
				if !reflect.DeepEqual(runs[0], runs[1]) {
					t.Error("Results structs are not bit-identical across identical runs (nondeterministic counters, heatmaps or traces)")
				}
			})
		}
	}
}

// TestRegisteredConstructs keeps workload.Registered in sync with New's
// switch: every listed name must construct, and the suite lists must be
// subsets of the registry.
func TestRegisteredConstructs(t *testing.T) {
	reg := map[string]bool{}
	for _, name := range workload.Registered() {
		reg[name] = true
		if _, err := workload.New(name, workload.ScaleTiny, 16); err != nil {
			t.Errorf("registered workload %q does not construct: %v", name, err)
		}
	}
	for _, name := range append(workload.Benchmarks(), workload.Microbenchmarks()...) {
		if !reg[name] {
			t.Errorf("suite workload %q missing from Registered()", name)
		}
	}
}
