package system_test

import (
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// TestGoldenCycleCounts pins the simulated cycle and instruction counts of
// every scheme at ScaleTiny on one benchmark (backprop) and one
// microbenchmark (mac). The golden values were captured from the plain
// lockstep kernel before the idle-aware scheduler landed (PR 1); the
// idle-skip machinery, the fabric occupancy counters and every future
// performance change must keep them bit-identical — determinism is part of
// the machine definition. Run() also verifies each workload's final memory
// state against a host-computed reference, so a pass covers functional
// correctness too.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		workload string
		scheme   system.Scheme
		cycles   uint64
		insts    uint64
	}{
		{"backprop", system.SchemeDRAM, 3210, 5752},
		{"backprop", system.SchemeHMC, 2794, 5752},
		{"backprop", system.SchemeART, 5182, 4216},
		{"backprop", system.SchemeARFtid, 4318, 4216},
		{"backprop", system.SchemeARFaddr, 5182, 4216},
		{"backprop", system.SchemeARFtidAdaptive, 4318, 4216},
		{"backprop", system.SchemeARFea, 5182, 4216},
		{"mac", system.SchemeDRAM, 3618, 2576},
		{"mac", system.SchemeHMC, 1551, 2576},
		{"mac", system.SchemeART, 3046, 1040},
		{"mac", system.SchemeARFtid, 2060, 1040},
		{"mac", system.SchemeARFaddr, 3046, 1040},
		{"mac", system.SchemeARFtidAdaptive, 2060, 1040},
		{"mac", system.SchemeARFea, 3046, 1040},
	}
	for _, g := range golden {
		g := g
		t.Run(g.workload+"/"+g.scheme.String(), func(t *testing.T) {
			t.Parallel()
			sys, err := system.New(system.DefaultConfig(g.scheme), g.workload, workload.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != g.cycles {
				t.Errorf("cycles = %d, want golden %d (simulated timing diverged from the lockstep kernel)", res.Cycles, g.cycles)
			}
			if res.Instructions != g.insts {
				t.Errorf("instructions = %d, want golden %d", res.Instructions, g.insts)
			}
		})
	}
}
