package system_test

import (
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// TestGoldenCycleCounts pins the simulated cycle and instruction counts of
// every scheme × every suite workload (the five benchmarks and four
// microbenchmarks) at ScaleTiny — a scheme-coverage golden matrix. The
// backprop and mac rows were captured from the plain lockstep kernel before
// the idle-aware scheduler landed (PR 1); the remaining rows extend the
// matrix under the same kernel so a refactor can't silently perturb any
// scheme on any workload. Determinism is part of the machine definition:
// the idle-skip machinery, the fabric occupancy counters and every future
// performance change must keep these values bit-identical. Run() also
// verifies each workload's final memory state against a host-computed
// reference, so a pass covers functional correctness too.
//
// Refreshing these values is a machine-definition change: regenerate only
// when a PR deliberately alters simulated timing, and say so in DESIGN.md.
// Last regenerated for the sharded-kernel PR's two timing-model changes
// (DESIGN.md "Sharded kernel"): 1-cycle credit turnaround on fabric links
// and next-cycle barrier release.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		workload string
		scheme   system.Scheme
		cycles   uint64
		insts    uint64
	}{
		{"backprop", system.SchemeDRAM, 3156, 5752},
		{"backprop", system.SchemeHMC, 2706, 5752},
		{"backprop", system.SchemeART, 4786, 4216},
		{"backprop", system.SchemeARFtid, 4332, 4216},
		{"backprop", system.SchemeARFaddr, 4786, 4216},
		{"backprop", system.SchemeARFtidAdaptive, 4332, 4216},
		{"backprop", system.SchemeARFea, 4786, 4216},
		{"lud", system.SchemeDRAM, 2915, 5880},
		{"lud", system.SchemeHMC, 3691, 5880},
		{"lud", system.SchemeART, 8227, 4344},
		{"lud", system.SchemeARFtid, 8011, 4344},
		{"lud", system.SchemeARFaddr, 8227, 4344},
		{"lud", system.SchemeARFtidAdaptive, 8011, 4344},
		{"lud", system.SchemeARFea, 8227, 4344},
		{"pagerank", system.SchemeDRAM, 2575, 1804},
		{"pagerank", system.SchemeHMC, 1292, 1804},
		{"pagerank", system.SchemeART, 1683, 1740},
		{"pagerank", system.SchemeARFtid, 1681, 1740},
		{"pagerank", system.SchemeARFaddr, 1683, 1740},
		{"pagerank", system.SchemeARFtidAdaptive, 1681, 1740},
		{"pagerank", system.SchemeARFea, 1683, 1740},
		{"sgemm", system.SchemeDRAM, 2146, 8784},
		{"sgemm", system.SchemeHMC, 1053, 8784},
		{"sgemm", system.SchemeART, 12334, 3600},
		{"sgemm", system.SchemeARFtid, 10730, 3600},
		{"sgemm", system.SchemeARFaddr, 12334, 3600},
		{"sgemm", system.SchemeARFtidAdaptive, 10730, 3600},
		{"sgemm", system.SchemeARFea, 12334, 3600},
		{"spmv", system.SchemeDRAM, 2922, 1880},
		{"spmv", system.SchemeHMC, 948, 1880},
		{"spmv", system.SchemeART, 3202, 956},
		{"spmv", system.SchemeARFtid, 2992, 956},
		{"spmv", system.SchemeARFaddr, 3202, 956},
		{"spmv", system.SchemeARFtidAdaptive, 2992, 956},
		{"spmv", system.SchemeARFea, 3202, 956},
		{"reduce", system.SchemeDRAM, 2436, 1552},
		{"reduce", system.SchemeHMC, 1019, 1552},
		{"reduce", system.SchemeART, 1488, 1040},
		{"reduce", system.SchemeARFtid, 1242, 1040},
		{"reduce", system.SchemeARFaddr, 1488, 1040},
		{"reduce", system.SchemeARFtidAdaptive, 1242, 1040},
		{"reduce", system.SchemeARFea, 1488, 1040},
		{"rand_reduce", system.SchemeDRAM, 2591, 1552},
		{"rand_reduce", system.SchemeHMC, 1154, 1552},
		{"rand_reduce", system.SchemeART, 1432, 1040},
		{"rand_reduce", system.SchemeARFtid, 1080, 1040},
		{"rand_reduce", system.SchemeARFaddr, 1432, 1040},
		{"rand_reduce", system.SchemeARFtidAdaptive, 1080, 1040},
		{"rand_reduce", system.SchemeARFea, 1432, 1040},
		{"mac", system.SchemeDRAM, 3618, 2576},
		{"mac", system.SchemeHMC, 1551, 2576},
		{"mac", system.SchemeART, 3042, 1040},
		{"mac", system.SchemeARFtid, 2058, 1040},
		{"mac", system.SchemeARFaddr, 3042, 1040},
		{"mac", system.SchemeARFtidAdaptive, 2058, 1040},
		{"mac", system.SchemeARFea, 3042, 1040},
		{"rand_mac", system.SchemeDRAM, 6001, 2576},
		{"rand_mac", system.SchemeHMC, 1936, 2576},
		{"rand_mac", system.SchemeART, 2700, 1040},
		{"rand_mac", system.SchemeARFtid, 1462, 1040},
		{"rand_mac", system.SchemeARFaddr, 2700, 1040},
		{"rand_mac", system.SchemeARFtidAdaptive, 1462, 1040},
		{"rand_mac", system.SchemeARFea, 2700, 1040},
	}
	// The matrix must stay total: every scheme × every suite workload.
	wls := append(append([]string{}, workload.Benchmarks()...), workload.Microbenchmarks()...)
	if want := len(wls) * len(system.AllSchemes()); len(golden) != want {
		t.Fatalf("golden matrix has %d entries, want %d (schemes × suite workloads)", len(golden), want)
	}
	for _, g := range golden {
		g := g
		t.Run(g.workload+"/"+g.scheme.String(), func(t *testing.T) {
			t.Parallel()
			sys, err := system.New(system.DefaultConfig(g.scheme), g.workload, workload.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != g.cycles {
				t.Errorf("cycles = %d, want golden %d (simulated timing diverged from the lockstep kernel)", res.Cycles, g.cycles)
			}
			if res.Instructions != g.insts {
				t.Errorf("instructions = %d, want golden %d", res.Instructions, g.insts)
			}
		})
	}
}
