package system

import (
	"testing"

	"repro/internal/workload"
)

// runTiny builds and runs one tiny workload under one scheme, failing the
// test on timeout or verification mismatch.
func runTiny(t *testing.T, scheme Scheme, wl string) *Results {
	t.Helper()
	cfg := DefaultConfig(scheme)
	cfg.MaxCycles = 20_000_000
	sys, err := New(cfg, wl, workload.ScaleTiny)
	if err != nil {
		t.Fatalf("build %s/%s: %v", scheme, wl, err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run %s/%s: %v", scheme, wl, err)
	}
	return res
}

func TestEverySchemeRunsReduce(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res := runTiny(t, s, "reduce")
			if res.Cycles == 0 || res.Instructions == 0 {
				t.Fatalf("empty run: %+v", res)
			}
		})
	}
}

func TestEverySchemeRunsMAC(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res := runTiny(t, s, "mac")
			if s.Active() && res.Coord.Updates == 0 {
				t.Fatalf("active scheme issued no updates")
			}
			if s.Active() && res.Engine.UpdatesCommitted != res.Coord.Updates {
				t.Fatalf("committed %d updates, offloaded %d",
					res.Engine.UpdatesCommitted, res.Coord.Updates)
			}
		})
	}
}

func TestAllWorkloadsBaselineHMC(t *testing.T) {
	names := append(workload.Benchmarks(), workload.Microbenchmarks()...)
	for _, wl := range names {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			runTiny(t, SchemeHMC, wl)
		})
	}
}

func TestAllWorkloadsActiveARFtid(t *testing.T) {
	names := append(workload.Benchmarks(), workload.Microbenchmarks()...)
	names = append(names, "lud_phase")
	for _, wl := range names {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			res := runTiny(t, SchemeARFtid, wl)
			if res.Coord.Updates+res.Coord.ActiveStores == 0 {
				t.Fatalf("no offloads for %s", wl)
			}
		})
	}
}
