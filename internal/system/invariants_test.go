package system

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// TestDeterminism: identical configuration and seed must produce identical
// cycle counts and statistics — the simulator has no hidden nondeterminism.
func TestDeterminism(t *testing.T) {
	run := func() *Results {
		cfg := DefaultConfig(SchemeARFtid)
		cfg.MaxCycles = 20_000_000
		sys, err := New(cfg, "rand_mac", workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/insts",
			a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	if a.Engine.UpdatesCommitted != b.Engine.UpdatesCommitted {
		t.Fatal("nondeterministic update counts")
	}
	if a.Movement != b.Movement {
		t.Fatal("nondeterministic data movement")
	}
}

// TestSchemesComputeIdenticalResults: every scheme must produce the same
// functional result for the same seed — the central correctness claim that
// in-network reduction is semantics-preserving. Verify() inside Run already
// checks against the reference; this additionally diversifies seeds.
func TestSchemesComputeIdenticalResults(t *testing.T) {
	f := func(seed16 uint16) bool {
		seed := uint64(seed16) + 1
		for _, sch := range []Scheme{SchemeHMC, SchemeARFtid} {
			cfg := DefaultConfig(sch)
			cfg.Seed = seed
			cfg.MaxCycles = 20_000_000
			sys, err := New(cfg, "mac", workload.ScaleTiny)
			if err != nil {
				t.Log(err)
				return false
			}
			if _, err := sys.Run(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateConservation: every offloaded update must commit exactly once
// in the network, and every flow must be torn down.
func TestUpdateConservation(t *testing.T) {
	for _, wl := range []string{"mac", "sgemm", "pagerank"} {
		for _, sch := range []Scheme{SchemeART, SchemeARFtid, SchemeARFaddr} {
			res := runTiny(t, sch, wl)
			if res.Engine.UpdatesCommitted != res.Coord.Updates {
				t.Fatalf("%s/%s: %d updates offloaded, %d committed",
					sch, wl, res.Coord.Updates, res.Engine.UpdatesCommitted)
			}
			if res.Coord.FlowsComplete == 0 {
				t.Fatalf("%s/%s: no flows completed", sch, wl)
			}
			// Every gather request sent down a tree edge gets exactly one
			// response back up.
			if res.Engine.GatherReqs == 0 {
				t.Fatalf("%s/%s: no gather requests processed", sch, wl)
			}
		}
	}
}

// TestSingleOpBypassUsed: reduce is the single-operand kernel; the §3.2.3
// bypass must cover all of its updates.
func TestSingleOpBypassUsed(t *testing.T) {
	res := runTiny(t, SchemeARFtid, "reduce")
	if res.Engine.SingleOpBypasses != res.Engine.UpdatesCommitted {
		t.Fatalf("bypasses %d != committed %d", res.Engine.SingleOpBypasses, res.Engine.UpdatesCommitted)
	}
	if res.Engine.PeakOperandInUse != 0 {
		t.Fatalf("reduce should hold no operand buffers, peak %d", res.Engine.PeakOperandInUse)
	}
	mac := runTiny(t, SchemeARFtid, "mac")
	if mac.Engine.PeakOperandInUse == 0 {
		t.Fatal("mac must use operand buffers")
	}
}

// TestARTUsesSinglePort: the static scheme roots every tree at port 0, so
// updates only enter through the port-0 entry cube.
func TestARTUsesSinglePort(t *testing.T) {
	res := runTiny(t, SchemeART, "rand_mac")
	// Every tree has Tree index 0; the entry cube of port 0 is cube 0, so
	// cube 0 must have seen every update first (committed or forwarded).
	seen := res.Engine.UpdatesCommitted + res.Engine.UpdatesForwarded
	if seen < res.Coord.Updates {
		t.Fatalf("ART updates seen %d < offloaded %d", seen, res.Coord.Updates)
	}
	// ARF spreads load: its update distribution must be strictly more
	// balanced than ART's.
	arf := runTiny(t, SchemeARFtid, "rand_mac")
	if arf.UpdatesHeat.Imbalance() > res.UpdatesHeat.Imbalance() {
		t.Fatalf("ARF imbalance %.2f worse than ART %.2f",
			arf.UpdatesHeat.Imbalance(), res.UpdatesHeat.Imbalance())
	}
}

// TestBackInvalQueriesIssued: every offload must have performed its §3.4.2
// directory query.
func TestBackInvalQueriesIssued(t *testing.T) {
	res := runTiny(t, SchemeARFtid, "mac")
	if res.Cache.BackInvalQ == 0 {
		t.Fatal("no back-invalidation queries issued")
	}
	if res.Cache.BackInvalQ < res.Coord.Updates {
		t.Fatalf("queries %d < updates %d", res.Cache.BackInvalQ, res.Coord.Updates)
	}
}

// TestEnergyAccountingSane: active schemes must report network energy;
// the DRAM baseline must not.
func TestEnergyAccountingSane(t *testing.T) {
	dram := runTiny(t, SchemeDRAM, "mac")
	if dram.Energy.NetworkJ != 0 {
		t.Fatal("DRAM baseline has no memory network")
	}
	if dram.Energy.MemoryJ == 0 || dram.Energy.CacheJ == 0 {
		t.Fatalf("missing energy components: %+v", dram.Energy)
	}
	ar := runTiny(t, SchemeARFtid, "mac")
	if ar.Energy.NetworkJ == 0 {
		t.Fatal("Active-Routing run must burn network energy")
	}
	if ar.EDP <= 0 || dram.EDP <= 0 {
		t.Fatal("EDP must be positive")
	}
}

// TestMovementSplit: baseline schemes move no active bytes; active schemes
// move both classes.
func TestMovementSplit(t *testing.T) {
	hmc := runTiny(t, SchemeHMC, "mac")
	if hmc.Movement.ActiveReq != 0 || hmc.Movement.ActiveResp != 0 {
		t.Fatalf("HMC baseline reports active traffic: %+v", hmc.Movement)
	}
	if hmc.Movement.NormReq == 0 || hmc.Movement.NormResp == 0 {
		t.Fatalf("HMC baseline missing normal traffic: %+v", hmc.Movement)
	}
	ar := runTiny(t, SchemeARFtid, "mac")
	if ar.Movement.ActiveReq == 0 {
		t.Fatalf("AR run missing active traffic: %+v", ar.Movement)
	}
}

// TestLatencyBreakdownPopulated: Fig 5.2's three components exist and sum
// to the total for active runs.
func TestLatencyBreakdownPopulated(t *testing.T) {
	res := runTiny(t, SchemeARFtid, "rand_mac")
	if res.Breakdown.Count == 0 {
		t.Fatal("no latency samples")
	}
	req, stall, resp := res.Breakdown.Means()
	if req <= 0 || resp <= 0 {
		t.Fatalf("breakdown means: req=%v stall=%v resp=%v", req, stall, resp)
	}
	if req+stall+resp != res.Breakdown.TotalMean() {
		t.Fatal("breakdown components do not sum")
	}
}

// TestAdaptiveBetweenHostAndOffload: the §5.4 knob must land between
// pure-HMC and pure-ARF behaviour in offload volume.
func TestAdaptiveBetweenHostAndOffload(t *testing.T) {
	full := runTiny(t, SchemeARFtid, "lud_phase")
	adaptive := runTiny(t, SchemeARFtidAdaptive, "lud_phase")
	if adaptive.Coord.Updates == 0 {
		t.Fatal("adaptive scheme offloaded nothing")
	}
	if adaptive.Coord.Updates >= full.Coord.Updates {
		t.Fatalf("adaptive offloaded %d >= full %d", adaptive.Coord.Updates, full.Coord.Updates)
	}
	if adaptive.CoreStats.Loads == 0 {
		t.Fatal("adaptive scheme ran nothing on the host")
	}
}

// TestMeshMemoryNetworkAblation: the mesh memory network must also run to
// completion with verification.
func TestMeshMemoryNetworkAblation(t *testing.T) {
	cfg := DefaultConfig(SchemeARFtid)
	cfg.MemTopo = TopoMesh
	cfg.MaxCycles = 20_000_000
	sys, err := New(cfg, "rand_mac", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFlowTablePeakBounded: the batching bound (gatherBatch x threads
// concurrent flows) keeps the per-cube flow table far from its capacity,
// so exhaustion deadlock is impossible by construction.
func TestFlowTablePeakBounded(t *testing.T) {
	res := runTiny(t, SchemeARFtid, "sgemm")
	if res.FlowPeak == 0 {
		t.Fatal("no flow table activity")
	}
	if res.FlowPeak > 256 {
		t.Fatalf("flow table peak %d exceeds capacity", res.FlowPeak)
	}
}

// TestVectoredOffloadRuns: the §6 granularity extension must verify and
// offload fewer packets than the scalar variant for the same work.
func TestVectoredOffloadRuns(t *testing.T) {
	vec := runTiny(t, SchemeARFtid, "mac_vec")
	scalar := runTiny(t, SchemeARFtid, "mac")
	if vec.Coord.Updates >= scalar.Coord.Updates {
		t.Fatalf("vectored offload sent %d packets, scalar %d", vec.Coord.Updates, scalar.Coord.Updates)
	}
	if vec.Engine.UpdatesCommitted != scalar.Engine.UpdatesCommitted {
		t.Fatalf("vectored commits %d != scalar %d (same element count expected)",
			vec.Engine.UpdatesCommitted, scalar.Engine.UpdatesCommitted)
	}
}

// TestEnergyAwareSchemeRuns: the §6 energy-aware scheduling extension must
// verify and spend no more network hop-bytes than ARF-tid.
func TestEnergyAwareSchemeRuns(t *testing.T) {
	ea := runTiny(t, SchemeARFea, "rand_mac")
	tid := runTiny(t, SchemeARFtid, "rand_mac")
	if ea.NetHopByte > tid.NetHopByte {
		t.Fatalf("energy-aware hop-bytes %d exceed ARF-tid %d", ea.NetHopByte, tid.NetHopByte)
	}
}
