package system_test

import (
	"regexp"
	"testing"

	"repro/internal/system"
)

// mutate builds a config by splattering arbitrary fuzz values over the
// fields Validate checks (and a few it doesn't), starting from a valid
// default so the fuzzer explores the boundary rather than only the
// everything-zero region.
func mutate(scheme int, threads, issue, rob, l1Size, l1Ways, l2Size, l2Ways,
	nocBW, memBW, vcs, depth, maxFlows, opBufs, coordQ, miQ int,
	seed, maxCycles, ipcWindow uint64) system.Config {
	cfg := system.DefaultConfig(system.SchemeARFtid)
	cfg.Scheme = system.Scheme(scheme)
	cfg.Threads = threads
	cfg.Core.IssueWidth = issue
	cfg.Core.ROBSize = rob
	cfg.L1.SizeBytes = l1Size
	cfg.L1.Ways = l1Ways
	cfg.L2.BankSizeBytes = l2Size
	cfg.L2.Ways = l2Ways
	cfg.NoC.LinkBandwidth = nocBW
	cfg.NoC.VCs = vcs
	cfg.NoC.QueueDepth = depth
	cfg.MemNet.LinkBandwidth = memBW
	cfg.ARE.MaxFlows = maxFlows
	cfg.ARE.OperandBufs = opBufs
	cfg.CoordQueue = coordQ
	cfg.MIQueue = miQ
	cfg.Seed = seed
	cfg.MaxCycles = maxCycles
	cfg.IPCSampleCycles = ipcWindow
	return cfg
}

// FuzzConfigValidate asserts Validate never panics on arbitrary field
// mutations, is pure (same verdict twice, no config mutation — pinned by
// hashing before and after), and accepts every DefaultConfig.
func FuzzConfigValidate(f *testing.F) {
	f.Add(3, 16, 4, 128, 4096, 4, 2048, 4, 16, 16, 4, 8, 512, 64, 32, 16,
		uint64(42), uint64(200_000_000), uint64(2048))
	f.Add(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, uint64(0), uint64(0), uint64(0))
	f.Add(-1, -7, 1, -128, 1<<30, 1, -2048, 93, 1, -16, 4, 8, -512, 64, 32, 16,
		uint64(1), uint64(1), uint64(1))
	f.Add(99, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, scheme, threads, issue, rob, l1Size, l1Ways, l2Size, l2Ways,
		nocBW, memBW, vcs, depth, maxFlows, opBufs, coordQ, miQ int,
		seed, maxCycles, ipcWindow uint64) {
		cfg := mutate(scheme, threads, issue, rob, l1Size, l1Ways, l2Size, l2Ways,
			nocBW, memBW, vcs, depth, maxFlows, opBufs, coordQ, miQ,
			seed, maxCycles, ipcWindow)
		before := cfg.Hash()
		err1 := cfg.Validate()
		err2 := cfg.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Validate is not pure: first %v, second %v", err1, err2)
		}
		if after := cfg.Hash(); after != before {
			t.Fatalf("Validate mutated the config: hash %s -> %s", before, after)
		}
	})
}

var hashShape = regexp.MustCompile(`^[0-9a-f]{16}$`)

// FuzzConfigHash asserts Hash never panics, always renders the 16-hex-digit
// form, is a pure function of the config value (an identical copy hashes
// identically; repeated calls agree), and is stable across a Validate
// round-trip — the property the service cache key relies on.
func FuzzConfigHash(f *testing.F) {
	f.Add(3, 16, 4, 128, 4096, 4, 2048, 4, 16, 16, 4, 8, 512, 64, 32, 16,
		uint64(42), uint64(200_000_000), uint64(2048))
	f.Add(2, 8, 2, 64, 1024, 2, 512, 8, 8, 4, 2, 4, 64, 16, 8, 8,
		uint64(7), uint64(1000), uint64(64))
	f.Fuzz(func(t *testing.T, scheme, threads, issue, rob, l1Size, l1Ways, l2Size, l2Ways,
		nocBW, memBW, vcs, depth, maxFlows, opBufs, coordQ, miQ int,
		seed, maxCycles, ipcWindow uint64) {
		cfg := mutate(scheme, threads, issue, rob, l1Size, l1Ways, l2Size, l2Ways,
			nocBW, memBW, vcs, depth, maxFlows, opBufs, coordQ, miQ,
			seed, maxCycles, ipcWindow)
		h := cfg.Hash()
		if !hashShape.MatchString(h) {
			t.Fatalf("Hash() = %q, want 16 lowercase hex digits", h)
		}
		if h2 := cfg.Hash(); h2 != h {
			t.Fatalf("Hash not stable across calls: %s vs %s", h, h2)
		}
		cp := cfg
		if hc := cp.Hash(); hc != h {
			t.Fatalf("identical config copies hash differently: %s vs %s", h, hc)
		}
		_ = cfg.Validate()
		if hv := cfg.Hash(); hv != h {
			t.Fatalf("Hash changed across a Validate round-trip: %s vs %s", h, hv)
		}
	})
}
