package system

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/sim"
)

// Sharded-kernel wiring: the machine is partitioned into Shards tile groups
// (core + L1 + L2 + MI + NoC router per tile; the four corner tiles add
// their memory controller port, DDR channel or HMC controller, and the
// controller's memory-network router) plus Shards cube groups (cube + ARE +
// memory-network router per cube). The groups tick concurrently on a
// sim.Sharded conductor through three waves per cycle:
//
//	wave 0  tile groups: cores, L1s, L2s, MI queries, NoC routers,
//	        MC ports, DDR channels, HMC controllers
//	serial  core effect logs (core order), MI drains (tile order),
//	        NoC staged commit, coordinator
//	wave 1  memory-network routers (controller nodes in their corner
//	        tile's group, cube nodes in their cube group)
//	serial  memory-network staged commit, staged coordinator callbacks
//	        (controller order)
//	wave 2  cubes
//	serial  IPC sampler, barrier flush
//
// Every component ticks at the exact projection of the sequential
// registration order onto its shard, every cross-shard interaction is
// either staged (fabric wires, credits, coordinator callbacks, core store
// effects, barrier arrivals) or serial (MI drains, coordinator), and the
// commit orders reproduce the sequential interleaving — so results are
// bit-identical to the sequential kernel (pinned by the sharded golden and
// determinism tests, under -race).

// shardPlan is the machine partition for one sharded run.
type shardPlan struct {
	S         int   // group count per side (tile groups and cube groups)
	workers   int   // conductor pool size
	tileGroup []int // [tile] -> group
	cubeGroup []int // [cube] -> group
	nocAssign []int // [tile] -> NoC fabric domain (== tileGroup)
	memAssign []int // [memnet node] -> fabric domain: ctrl i -> its corner
	// tile's group, cube c -> S + cubeGroup[c]
}

// dealGroups assigns items to groups round-robin, priority items first, so
// the heavy components (corner tiles, controller entry cubes) spread across
// groups before the rest fill in. Deterministic.
func dealGroups(n, groups int, priority []int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	next := 0
	for _, p := range priority {
		out[p] = next % groups
		next++
	}
	for i := 0; i < n; i++ {
		if out[i] < 0 {
			out[i] = next % groups
			next++
		}
	}
	return out
}

// computePlan builds the partition for cfg (cfg.Shards > 0).
func computePlan(cfg Config) *shardPlan {
	s := cfg.Shards
	if s > cfg.Threads {
		s = cfg.Threads
	}
	p := &shardPlan{S: s, workers: cfg.Workers}
	if p.workers <= 0 {
		p.workers = s
	}
	p.tileGroup = dealGroups(16, s, mcTiles[:])
	p.nocAssign = p.tileGroup
	if cfg.Scheme != SchemeDRAM {
		cubes := cfg.HMCGeom.Cubes
		p.cubeGroup = dealGroups(cubes, s, ctrlCubes[:])
		p.memAssign = make([]int, cubes+4)
		for c := 0; c < cubes; c++ {
			p.memAssign[c] = s + p.cubeGroup[c]
		}
		for i := 0; i < 4; i++ {
			p.memAssign[cubes+i] = p.tileGroup[mcTiles[i]]
		}
	}
	return p
}

// coordCall is one staged coordinator callback from an HMC controller
// (scalars copied out of the delivered packet, which retires normally).
type coordCall struct {
	isAck bool
	flow  mem.PAddr
	value float64
	tag   uint64
}

// miQueryTicker adapts the MI's query half to the tile wave (drains run in
// the serial section via miDrainHook).
type miQueryTicker struct{ mi *MessageInterface }

func (q miQueryTicker) Tick(cycle uint64) { q.mi.TickQueries(cycle) }

func (q miQueryTicker) NextWork(now uint64) uint64 { return q.mi.QueryWork(now) }

func (q miQueryTicker) SetWaker(w *sim.Waker) { q.mi.SetWaker(w) }

// fxFlushHook applies every core's staged effects in core order (serial,
// before anything that reads the backing store ticks).
type fxFlushHook struct{ s *System }

func (h fxFlushHook) Tick(uint64) {
	for _, fx := range h.s.fx {
		fx.Flush()
	}
}

func (h fxFlushHook) NextWork(now uint64) uint64 {
	for _, fx := range h.s.fx {
		if fx.Pending() {
			return now
		}
	}
	return never
}

// miDrainHook forwards cleared MI heads to the coordinator in tile order —
// the coordinator queue-fill order of the sequential kernel.
type miDrainHook struct{ s *System }

func (h miDrainHook) Tick(cycle uint64) {
	for _, mi := range h.s.mis {
		mi.TickDrain(cycle)
	}
}

func (h miDrainHook) NextWork(now uint64) uint64 {
	for _, mi := range h.s.mis {
		if mi.DrainWork() {
			return now
		}
	}
	return never
}

// fabricCommitHook applies a fabric's staged cross-domain pushes and
// credits at the barrier.
type fabricCommitHook struct{ f *network.Fabric }

func (h fabricCommitHook) Tick(uint64) { h.f.CommitStaged() }

func (h fabricCommitHook) NextWork(now uint64) uint64 {
	if h.f.StagedWork() {
		return now
	}
	return never
}

// coordCallHook commits staged controller callbacks in controller order —
// the order the sequential memory-network ejection pass produces.
type coordCallHook struct{ s *System }

func (h coordCallHook) Tick(cycle uint64) {
	for i := range h.s.coordStage {
		for _, c := range h.s.coordStage[i] {
			if c.isAck {
				h.s.coord.CompleteActiveAck(c.tag, cycle)
			} else {
				h.s.coord.FoldGatherResp(c.flow, c.value, cycle)
			}
		}
		h.s.coordStage[i] = h.s.coordStage[i][:0]
	}
}

func (h coordCallHook) NextWork(now uint64) uint64 {
	for i := range h.s.coordStage {
		if len(h.s.coordStage[i]) > 0 {
			return now
		}
	}
	return never
}

// registerSharded wires every component into the conductor's wave schedule,
// mirroring register()'s sequential order as per-shard projections.
func (s *System) registerSharded() {
	p := s.plan
	s.cond = sim.NewSharded(p.workers)
	tileSh := make([]*sim.Shard, p.S)
	cubeSh := make([]*sim.Shard, p.S)
	for g := 0; g < p.S; g++ {
		tileSh[g] = s.cond.AddShard(fmt.Sprintf("tiles.%d", g))
	}
	if s.memnet != nil {
		for g := 0; g < p.S; g++ {
			cubeSh[g] = s.cond.AddShard(fmt.Sprintf("cubes.%d", g))
		}
	}

	// Core effect logs: global side effects stage per core and commit in
	// core order at the serial point.
	s.fx = make([]*cpu.EffectLog, len(s.cores))
	for i, c := range s.cores {
		s.fx[i] = cpu.NewEffectLog(s.env.Store, s.barrier)
		c.SetEffectLog(s.fx[i])
	}

	// Staged coordinator callbacks (active schemes).
	if s.coord != nil {
		s.coordStage = make([][]coordCall, len(s.hmcCtrls))
		for i, ctrl := range s.hmcCtrls {
			i := i
			ctrl.OnGatherResp = func(pk *network.Packet, cycle uint64) {
				s.coordStage[i] = append(s.coordStage[i],
					coordCall{flow: mem.PAddr(pk.Flow.Flow), value: pk.Value})
			}
			ctrl.OnActiveAck = func(pk *network.Packet, cycle uint64) {
				s.coordStage[i] = append(s.coordStage[i], coordCall{isAck: true, tag: pk.Tag})
			}
		}
	}

	inGroup := func(tile, g int) bool { return p.tileGroup[tile] == g }

	// --- Wave 0: tile-side components, projected type-major per group.
	for g := 0; g < p.S; g++ {
		sh := tileSh[g]
		for i, c := range s.cores {
			if inGroup(i, g) {
				c := c
				sh.Register(fmt.Sprintf("core%d", i), c)
				s.busyChecks = append(s.busyChecks, func() bool { return !c.Finished() })
			}
		}
		for i, l1 := range s.l1s {
			if inGroup(i, g) {
				l1 := l1
				sh.Register(fmt.Sprintf("l1.%d", i), l1)
				s.busyChecks = append(s.busyChecks, l1.Busy)
			}
		}
		for i, l2 := range s.l2s {
			if inGroup(i, g) {
				l2 := l2
				sh.Register(fmt.Sprintf("l2.%d", i), l2)
				s.busyChecks = append(s.busyChecks, l2.Busy)
			}
		}
		for i, mi := range s.mis {
			if mi != nil && inGroup(i, g) {
				mi := mi
				sh.Register(fmt.Sprintf("mi.%d", i), miQueryTicker{mi})
				s.busyChecks = append(s.busyChecks, mi.Busy)
			}
		}
		sh.Register(fmt.Sprintf("noc.%d", g), s.noc.Segment(g))
		for i, mc := range s.mcs {
			if inGroup(mc.tile, g) {
				mc := mc
				sh.Register(fmt.Sprintf("mc.%d", i), mc)
				s.busyChecks = append(s.busyChecks, func() bool { return mc.queued() > 0 })
			}
		}
		for i, d := range s.dramCtrls {
			if inGroup(mcTiles[i], g) {
				d := d
				sh.Register(fmt.Sprintf("dram.%d", i), d)
				s.busyChecks = append(s.busyChecks, func() bool { return d.Banks.Pending() > 0 })
			}
		}
		for i, h := range s.hmcCtrls {
			if inGroup(mcTiles[i], g) {
				h := h
				sh.Register(fmt.Sprintf("hmcctrl.%d", i), h)
				s.busyChecks = append(s.busyChecks, h.Busy)
			}
		}
	}
	s.busyChecks = append(s.busyChecks, func() bool { return !s.noc.Drained() })

	// --- Serial 0: effect logs, MI drains, NoC commit, coordinator.
	// Execution-fed by wave 0 only: effect logs are staged by core ticks,
	// MI drain work is created by core-side pushes and unblocked by wave-0
	// hub deliveries (a capacity-blocked drain keeps claiming work itself),
	// and NoC staging happens only in wave-0 router ticks (Inject is always
	// domain-local). The coordinator is wake-aware, so it is exempt from
	// the feed contract; within-section producers are seen by later slots
	// of the same runSegment pass or by the section's own next-cycle
	// re-poll, exactly like the sequential order.
	ser0 := s.cond.SerialShard(0)
	s.cond.FedBy(0, []int{0}, nil)
	ser0.Register("fx-flush", fxFlushHook{s})
	if s.coord != nil {
		ser0.Register("mi-drain", miDrainHook{s})
	}
	ser0.Register("noc-commit", fabricCommitHook{s.noc})
	if s.coord != nil {
		ser0.Register("coordinator", s.coord)
		s.busyChecks = append(s.busyChecks, s.coord.Busy)
	}

	// --- Wave 1: memory-network routers.
	if s.memnet != nil {
		for g := 0; g < p.S; g++ {
			tileSh[g].NextSegment()
			cubeSh[g].NextSegment()
		}
		for g := 0; g < p.S; g++ {
			if s.memnet.DomainNodes(g) > 0 {
				tileSh[g].Register(fmt.Sprintf("memnet.ctrl.%d", g), s.memnet.Segment(g))
			}
		}
		for g := 0; g < p.S; g++ {
			if s.memnet.DomainNodes(p.S+g) > 0 {
				cubeSh[g].Register(fmt.Sprintf("memnet.cubes.%d", g), s.memnet.Segment(p.S+g))
			}
		}
		s.busyChecks = append(s.busyChecks, func() bool { return !s.memnet.Drained() })

		// --- Serial 1: memory-network commit, staged coordinator calls.
		// Execution-fed by wave 1 only: cross-domain pushes and credits
		// stage in wave-1 memnet router ticks (cube and controller Inject
		// calls are domain-local), and the coordinator callback stage is
		// appended at wave-1 ejection delivery.
		ser1 := s.cond.SerialShard(1)
		s.cond.FedBy(1, []int{1}, nil)
		ser1.Register("memnet-commit", fabricCommitHook{s.memnet})
		if s.coord != nil {
			ser1.Register("coord-calls", coordCallHook{s})
		}

		// --- Wave 2: cubes.
		for g := 0; g < p.S; g++ {
			tileSh[g].NextSegment()
			cubeSh[g].NextSegment()
		}
		for g := 0; g < p.S; g++ {
			for i, c := range s.cubes {
				if p.cubeGroup[i] == g {
					c := c
					cubeSh[g].Register(fmt.Sprintf("cube%d", i), c)
					s.busyChecks = append(s.busyChecks, c.Busy)
				}
			}
		}
	}

	// --- Final serial section: sampler and barrier flush (the last slots
	// of the sequential registration order).
	last := 1
	if s.memnet != nil {
		last = 2
	}
	// Execution-fed by serial 0 only: in the sharded kernel every
	// Barrier.Arrive routes through the core effect logs, applied at the
	// serial-0 flush (the coordinator never arrives at the barrier), and
	// the IPC sampler is wake-aware.
	serLast := s.cond.SerialShard(last)
	s.cond.FedBy(last, nil, []int{0})
	serLast.Register("ipc-sampler", ipcSampler{s})
	serLast.Register("barrier-flush", barrierFlush{s.barrier})
	s.cond.Seal()
}
