package system

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Machine-state checkpointing (DESIGN.md "Checkpointing").
//
// A snapshot is taken only at a quiescent point: a cycle boundary where
// every cross-component transient has drained — networks empty with no
// staged effects, caches idle, no outstanding memory accesses, ARE and
// coordinator holding only mid-construction flow state, cores blocked
// solely on fences or timed compute completions. At such a point the
// machine is plain data: no closure needs serializing, because every live
// callback is recoverable from structure (compute completions from the
// ROB timed-call list, fence wakes from recorded fence provenance).
//
// Restore never rebases the clock: the kernel restarts at the snapshot
// cycle (StartAt), so absolute-cycle state — DRAM freeAt/activatedAt,
// link busy horizons, core lastSeen, timed-call deadlines — serializes
// verbatim. Snapshots are kernel-portable: per-domain fabric counters are
// merged on encode, so a snapshot taken under the sequential kernel
// restores exactly under the sharded kernel and vice versa.

// snapshotVersion is the wire-format version of a system snapshot blob.
// Bump on any layout change; restore rejects other versions.
const snapshotVersion = 1

// Snapshotable reports whether the machine is at a quiescent point where
// Snapshot can capture it exactly.
func (s *System) Snapshotable() bool {
	if !s.noc.SnapshotReady() {
		return false
	}
	if s.memnet != nil && !s.memnet.SnapshotReady() {
		return false
	}
	for _, l1 := range s.l1s {
		if l1.Busy() {
			return false
		}
	}
	for _, l2 := range s.l2s {
		if l2.Busy() {
			return false
		}
	}
	for _, mi := range s.mis {
		if mi != nil && (mi.Busy() || len(mi.byTag) > 0) {
			return false
		}
	}
	for _, h := range s.hubs {
		if len(h.pendingMem) > 0 {
			return false
		}
	}
	for _, mc := range s.mcs {
		if mc.queued() > 0 {
			return false
		}
	}
	for _, d := range s.dramCtrls {
		if d.Banks.Pending() > 0 {
			return false
		}
	}
	for _, h := range s.hmcCtrls {
		if !h.SnapshotReady() {
			return false
		}
	}
	for _, c := range s.cubes {
		if !c.SnapshotReady() {
			return false
		}
	}
	if s.coord != nil && !s.coord.SnapshotReady() {
		return false
	}
	if s.barrier.Pending() {
		return false
	}
	for _, fx := range s.fx {
		if fx.Pending() {
			return false
		}
	}
	for _, stage := range s.coordStage {
		if len(stage) > 0 {
			return false
		}
	}
	for _, c := range s.cores {
		if !c.Snapshotable() {
			return false
		}
	}
	return true
}

// Snapshot appends the machine's complete quiescent-point state to buf
// (allocation-free when buf has capacity) and returns the extended slice.
// The caller must have checked Snapshotable.
func (s *System) Snapshot(buf []byte) []byte {
	cycle := s.now()
	e := &sim.Enc{B: buf}
	e.Tag("arsys")
	e.Int(snapshotVersion)
	e.U64(cycle)
	e.U64(s.cfg.PrefixHash(cycle))
	e.Int(int(s.cfg.Scheme))
	e.Str(s.wl.Name())
	e.Int(s.cfg.Threads)
	e.Int(len(s.hubs))
	e.U64(s.env.Rand.State())
	s.env.Store.Snapshot(e)
	for _, t := range s.memTags {
		e.U64(t)
	}
	e.U64(s.lastRetired)
	e.Int(len(s.ipcTrace))
	for _, p := range s.ipcTrace {
		e.U64(p.Insts)
		e.F64(p.IPC)
	}
	e.U64(s.barrier.Crossings)
	for _, c := range s.cores {
		c.Snapshot(e)
	}
	for _, l1 := range s.l1s {
		l1.Snapshot(e)
	}
	for _, l2 := range s.l2s {
		l2.Snapshot(e)
	}
	for _, mi := range s.mis {
		if mi != nil {
			e.Tag("mi")
			e.U64(mi.nextTag)
			e.U64(mi.QueriesSent)
			e.U64(mi.UpdatesSent)
			e.U64(mi.GathersSent)
			e.U64(mi.QueueFullRej)
		}
	}
	s.noc.Snapshot(e)
	for _, d := range s.dramCtrls {
		d.Banks.Snapshot(e)
	}
	for _, h := range s.hmcCtrls {
		h.Snapshot(e)
	}
	if s.coord != nil {
		s.coord.Snapshot(e)
	}
	if s.memnet != nil {
		s.memnet.Snapshot(e)
	}
	for _, c := range s.cubes {
		c.Snapshot(e)
	}
	// Integrity trailer over the encoded region: the structural validation
	// in the decoders catches torn or truncated blobs, but a bit flip in a
	// raw payload (a stored float, a page byte) would otherwise decode as a
	// different-but-valid snapshot.
	e.U64(snapshotSum(e.B[len(buf):]))
	return e.B
}

// snapshotSum digests an encoded snapshot region for the integrity
// trailer.
func snapshotSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Restore rebuilds a freshly constructed, never-run machine from a
// snapshot blob. The machine must have been built with a prefix-compatible
// configuration (PrefixHash at the snapshot cycle matches) and the same
// workload; the kernel (sequential or sharded) may differ from the
// snapshot source's. On success the clock stands at the snapshot cycle and
// RunCtx continues bit-identically to the run the snapshot was taken from.
func (s *System) Restore(data []byte) error {
	if s.now() != 0 {
		return fmt.Errorf("system: restore target has already run (cycle %d)", s.now())
	}
	if len(data) < 8 {
		return fmt.Errorf("system: snapshot too short (%d bytes)", len(data))
	}
	body := data[:len(data)-8]
	if want := sim.NewDec(data[len(data)-8:]).U64(); snapshotSum(body) != want {
		return fmt.Errorf("system: snapshot integrity checksum mismatch")
	}
	d := sim.NewDec(body)
	d.Tag("arsys")
	if v := d.Int(); d.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("system: snapshot version %d, this build reads %d", v, snapshotVersion)
	}
	cycle := d.U64()
	prefix := d.U64()
	if d.Err() == nil && prefix != s.cfg.PrefixHash(cycle) {
		return fmt.Errorf("system: snapshot prefix hash %016x does not match this configuration at cycle %d", prefix, cycle)
	}
	if sc := d.Int(); d.Err() == nil && sc != int(s.cfg.Scheme) {
		return fmt.Errorf("system: snapshot scheme %d, machine %d", sc, int(s.cfg.Scheme))
	}
	if name := d.Str(); d.Err() == nil && name != s.wl.Name() {
		return fmt.Errorf("system: snapshot workload %q, machine %q", name, s.wl.Name())
	}
	if th := d.Int(); d.Err() == nil && th != s.cfg.Threads {
		return fmt.Errorf("system: snapshot threads %d, machine %d", th, s.cfg.Threads)
	}
	if tiles := d.Int(); d.Err() == nil && tiles != len(s.hubs) {
		return fmt.Errorf("system: snapshot tiles %d, machine %d", tiles, len(s.hubs))
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.env.Rand.SetState(d.U64())
	s.env.Store.Restore(d)
	for i := range s.memTags {
		s.memTags[i] = d.U64()
	}
	s.lastRetired = d.U64()
	npts := d.Len(1<<30, "ipc trace points")
	s.ipcTrace = s.ipcTrace[:0]
	for i := 0; i < npts && d.Err() == nil; i++ {
		s.ipcTrace = append(s.ipcTrace, stats.IPCPoint{Insts: d.U64(), IPC: d.F64()})
	}
	s.barrier.Crossings = d.U64()
	for _, c := range s.cores {
		c.Restore(d)
	}
	for _, l1 := range s.l1s {
		l1.Restore(d)
	}
	for _, l2 := range s.l2s {
		l2.Restore(d)
	}
	for _, mi := range s.mis {
		if mi != nil {
			d.Tag("mi")
			mi.nextTag = d.U64()
			mi.QueriesSent = d.U64()
			mi.UpdatesSent = d.U64()
			mi.GathersSent = d.U64()
			mi.QueueFullRej = d.U64()
		}
	}
	s.noc.Restore(d)
	for _, dc := range s.dramCtrls {
		dc.Banks.Restore(d)
	}
	for _, h := range s.hmcCtrls {
		h.Restore(d)
	}
	if s.coord != nil {
		s.coord.Restore(d)
	}
	if s.memnet != nil {
		s.memnet.Restore(d)
	}
	for _, c := range s.cubes {
		c.Restore(d)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("system: %d trailing bytes after snapshot", n)
	}

	// Re-arm fences in core-ID order: barrier fences re-arrive (wake order
	// is commutative, so arrival order never shows), gather fences
	// re-attach to their coordinator flow's thread barrier.
	attach := func(target mem.PAddr, wake func(cycle uint64)) bool {
		return s.coord != nil && s.coord.AttachGatherWake(target, wake)
	}
	for _, c := range s.cores {
		if !c.RearmFence(attach) {
			return fmt.Errorf("system: core %d fence cannot be re-armed (inconsistent snapshot)", c.ID)
		}
	}
	if s.barrier.Pending() {
		// Every snapshot-time barrier count is strictly below the thread
		// count (a full barrier releases within the same cycle's flush), so
		// re-arrival can never complete a crossing.
		return fmt.Errorf("system: restored barrier crossed during re-arm (inconsistent snapshot)")
	}

	// Restart the clock at the snapshot cycle. All cached idle hints are
	// discarded; the first step re-polls every component exactly.
	if s.cond != nil {
		s.cond.StartAt(cycle)
	} else {
		s.engine.StartAt(cycle)
	}
	return nil
}

// RunToCheckpoint simulates until the first quiescent point at or after
// cycle `at` and captures a snapshot there (appended to buf). When the
// machine finishes (or hits its cycle budget) before reaching such a
// point, it returns snap == nil and the run is complete — the caller can
// collect Results via RunCtx, which will return immediately.
//
// The snapshot cycle may exceed `at`: the kernels fast-forward over
// quiescent stretches, and the machine stops at the first cycle it
// actually examines that satisfies the predicate.
func (s *System) RunToCheckpoint(ctx context.Context, at uint64, buf []byte) (snap []byte, err error) {
	checkpointed := false
	pred := func() bool {
		if s.done() {
			return true
		}
		if s.now() >= at && s.Snapshotable() {
			checkpointed = true
			return true
		}
		return false
	}
	kernel := func() (uint64, error) {
		if s.cond != nil {
			return s.cond.RunUntilCtx(ctx, pred, s.remainingBudget())
		}
		return s.engine.RunUntilCtx(ctx, pred, s.remainingBudget())
	}
	if _, err := kernel(); err != nil {
		return nil, fmt.Errorf("system: %s/%s: %w", s.cfg.Scheme, s.wl.Name(), err)
	}
	if !checkpointed {
		return nil, nil
	}
	return s.Snapshot(buf), nil
}

// FlowTableDemand reports the machine's flow-table pressure so far: the
// peak concurrent-flow count across every ARE and the total number of
// cycles an update stalled on a full table. Immediately after
// RunToCheckpoint or Restore this is the demand at the snapshot cycle —
// the fork-validity guard for prefix-shared sweeps: a prefix run is
// bit-identical under a different ARE.MaxFlows iff the table never
// influenced behavior, i.e. stalls == 0 and peak fits the fork's capacity.
func (s *System) FlowTableDemand() (peak int, stalls uint64) {
	for _, c := range s.cubes {
		if are := c.ARE(); are != nil {
			if are.Flows.Peak > peak {
				peak = are.Flows.Peak
			}
			stalls += are.Stats.FlowTableStalls
		}
	}
	return peak, stalls
}

// SnapshotKey is the content address of a checkpoint in the snapshot
// store: every configuration sharing it can restore the same blob
// (PrefixHash covers all prefix-live knobs; workload, scheme and scale pin
// the simulated program). The cycle is the REQUESTED checkpoint cycle, not
// the possibly-later quiescent cycle the snapshot lands on — lookups must
// compute the same key without running anything.
func SnapshotKey(cfg *Config, cycle uint64, workload, scale string) string {
	return fmt.Sprintf("snap|%016x|%d|%s|%s|%s", cfg.PrefixHash(cycle), cycle, workload, cfg.Scheme, scale)
}

// remainingBudget is the cycle budget left under cfg.MaxCycles for a
// machine whose clock stands at now() — MaxCycles for a fresh machine, the
// difference for a restored or checkpointed one, so a resumed run times
// out at exactly the same absolute cycle as a straight-through run.
func (s *System) remainingBudget() uint64 {
	now := s.now()
	if now >= s.cfg.MaxCycles {
		return 0
	}
	return s.cfg.MaxCycles - now
}
