package system

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/hmc"
	"repro/internal/mem"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Results carries everything the evaluation figures report for one run.
type Results struct {
	Scheme       Scheme
	Workload     string
	Cycles       uint64
	Instructions uint64
	IPC          float64

	// Fig 5.2: update roundtrip latency breakdown (ARE-cycle means).
	Breakdown stats.LatencyBreakdown
	// Fig 5.4: off-chip data movement split.
	Movement stats.DataMovement
	// Fig 5.3 heatmaps (per cube).
	UpdatesHeat *stats.Heatmap
	OperandHeat *stats.Heatmap
	StallHeat   *stats.Heatmap
	// Fig 5.5-5.7 energy model.
	Energy power.Breakdown
	PowerW power.Breakdown
	EDP    float64
	// Fig 5.8 aggregate IPC trace (cycle-windowed machine-wide sampler).
	IPCTrace []stats.IPCPoint
	// CoreIPC is each core's instruction-windowed IPC series (per-thread
	// phase traces; window = 2^14 instructions).
	CoreIPC [][]stats.IPCPoint

	Cache      cache.Stats
	Coord      core.CoordStats
	Engine     core.EngineStats
	CoreStats  cpu.Stats
	FlowPeak   int
	VaultAcc   uint64
	DRAMAcc    uint64
	NetHopByte uint64
}

// System is one assembled machine bound to one workload instance.
type System struct {
	cfg Config
	wl  workload.Workload
	env *workload.Env

	engine *sim.Engine
	noc    *network.Fabric
	memnet *network.Fabric

	cores []*cpu.Core
	l1s   []*cache.L1
	l2s   []*cache.L2Bank
	mis   []*MessageInterface
	hubs  []*tileHub
	mcs   []*mcPort

	dramCtrls []*dram.Controller
	hmcCtrls  []*hmc.Controller
	cubes     []*hmc.Cube
	coord     *core.Coordinator
	barrier   *cpu.Barrier

	// msgPools holds one coherence-message free list per tile; every
	// component of a tile acquires messages from its own tile's pool and a
	// message retires into the pool of the tile that finally consumes it.
	// Per-tile pools keep pool access single-threaded under the sharded
	// kernel (pool identity never affects simulated behavior).
	msgPools []*cache.MsgPool

	// memTags holds one memory-transaction tag counter per tile (tags are
	// already tile-scoped: tile<<40 | counter).
	memTags []uint64

	// Sharded-kernel state (nil/empty under the sequential kernel).
	cond       *sim.Sharded
	plan       *shardPlan
	fx         []*cpu.EffectLog
	coordStage [][]coordCall

	// IPC sampling.
	lastRetired uint64
	ipcTrace    []stats.IPCPoint

	// busyChecks holds one O(1) drain probe per component; lastBusy
	// memoizes the index that most recently reported busy so the common
	// done() poll is a single check.
	busyChecks []func() bool
	lastBusy   int
}

// never aliases the sim.Idler "quiescent until external input" sentinel.
const never = sim.Never

// tileHub is the NoC endpoint at one mesh tile, demultiplexing coherence
// messages to the tile's components.
type tileHub struct {
	sys        *System
	tile       int
	pendingMem map[uint64]func(cycle uint64)
}

// Deliver implements network.Endpoint for the NoC. An accepted packet has
// served its purpose as a message wrapper and is released here (the NoC
// packet's single point of final consumption); the payload message travels
// on under the Msg ownership contract.
func (h *tileHub) Deliver(p *network.Packet, cycle uint64) bool {
	m, ok := p.Meta.(*cache.Msg)
	if !ok {
		panic(fmt.Sprintf("system: NoC packet without coherence payload at tile %d", h.tile))
	}
	if !h.deliverMsg(m, cycle, true) {
		return false
	}
	p.Meta = nil
	h.sys.noc.PoolAt(h.tile).Put(p)
	return true
}

// deliverMsg demultiplexes a coherence message. Acceptance (true) transfers
// message ownership: the L1/L2 release it after their handle() commit,
// while the hub's own terminal cases (back-inval done, memory traffic)
// consume the message synchronously and release it here. viaFabric
// distinguishes NoC ejection (which happens after every non-fabric tile
// component's tick-order slot) from a direct same-tile send — the MI uses
// it to reproduce the sequential drain timing of back-inval acks.
func (h *tileHub) deliverMsg(m *cache.Msg, cycle uint64, viaFabric bool) bool {
	s := h.sys
	switch m.Type {
	case cache.MsgGetS, cache.MsgGetX, cache.MsgPutM, cache.MsgInvAck,
		cache.MsgFetchResp, cache.MsgBackInvalQ:
		return s.l2s[h.tile].Deliver(m, cycle)
	case cache.MsgData, cache.MsgInval, cache.MsgFetch, cache.MsgFetchInv:
		return s.l1s[h.tile].Deliver(m, cycle)
	case cache.MsgBackInvalD:
		s.mis[h.tile].OnBackInvalDone(m.Tag, viaFabric, cycle)
		s.msgPools[h.tile].Put(m)
		return true
	case cache.MsgMemRead, cache.MsgMemWrite:
		for _, mc := range s.mcs {
			if mc.tile == h.tile {
				if !mc.deliver(m, cycle) {
					return false
				}
				s.msgPools[h.tile].Put(m)
				return true
			}
		}
		panic(fmt.Sprintf("system: memory message at non-MC tile %d", h.tile))
	case cache.MsgMemResp:
		done, ok := h.pendingMem[m.Tag]
		if !ok {
			panic(fmt.Sprintf("system: memory response with unknown tag %d at tile %d", m.Tag, h.tile))
		}
		delete(h.pendingMem, m.Tag)
		done(cycle)
		s.msgPools[h.tile].Put(m)
		return true
	default:
		panic(fmt.Sprintf("system: unroutable message %s at tile %d", m.Type, h.tile))
	}
}

// mcPort bridges an MC tile to the memory backend (a DDR channel or an HMC
// controller). Its retry outbox is drained by head index instead of
// re-slicing so the steady state allocates nothing.
type mcPort struct {
	sys     *System
	tile    int
	index   int
	access  func(pa mem.PAddr, write bool, done func(uint64)) bool
	outbox  []mcOut
	outHead int
	waker   *sim.Waker
}

// SetWaker implements sim.WakeSetter: the only external input is a refused
// response send queued from a memory completion callback.
func (mc *mcPort) SetWaker(w *sim.Waker) { mc.waker = w }

type mcOut struct {
	dst int
	m   *cache.Msg
}

func (mc *mcPort) queued() int { return len(mc.outbox) - mc.outHead }

func (mc *mcPort) deliver(m *cache.Msg, cycle uint64) bool {
	write := m.Type == cache.MsgMemWrite
	from, tag, block := m.From, m.Tag, m.Block
	return mc.access(m.Block, write, func(cyc uint64) { //ar:exempt(hotpath) one completion closure per DRAM access; allocation is dwarfed by the access latency it tracks
		resp := mc.sys.msgPools[mc.tile].Get(cache.MsgMemResp, block, mc.tile)
		resp.Tag = tag
		if !mc.sys.sendFrom(mc.tile, from, resp) {
			mc.outbox = append(mc.outbox, mcOut{from, resp})
			mc.waker.Wake()
		}
	})
}

// NextWork implements sim.Idler: Tick only retries refused response sends.
func (mc *mcPort) NextWork(now uint64) uint64 {
	if mc.queued() > 0 {
		return now
	}
	return never
}

// Tick retries queued response sends in FIFO order.
//
//ar:hotpath
func (mc *mcPort) Tick(cycle uint64) {
	for mc.outHead < len(mc.outbox) {
		o := mc.outbox[mc.outHead]
		if !mc.sys.sendFrom(mc.tile, o.dst, o.m) {
			return
		}
		mc.outbox[mc.outHead] = mcOut{}
		mc.outHead++
	}
	mc.outbox = mc.outbox[:0]
	mc.outHead = 0
}

// New builds a machine for cfg running the named workload at the given
// scale.
func New(cfg Config, wlName string, scale workload.Scale) (*System, error) {
	wl, err := workload.New(wlName, scale, cfg.Threads)
	if err != nil {
		return nil, err
	}
	return NewWith(cfg, wl)
}

// NewWith builds a machine around an existing workload value.
func NewWith(cfg Config, wl workload.Workload) (*System, error) {
	// Auto kernel knobs resolve here, against the bare host (callers with a
	// shared worker budget — the service, sweeps — resolve earlier with
	// their free-slot share and we see concrete values).
	ResolveKernel(&cfg, 0)
	s := &System{cfg: cfg, wl: wl}
	s.env = workload.NewEnv(cfg.Threads, cfg.Seed)
	wl.Init(s.env)
	if cfg.Shards > 0 {
		s.plan = computePlan(cfg)
	} else {
		s.engine = sim.NewEngine()
	}

	// --- Host NoC: 4x4 mesh, every tile hosts a core+L1 and an L2 bank.
	meshTopo := network.NewMesh(4, nil)
	s.noc = network.NewFabric(meshTopo, cfg.NoC)
	tiles := meshTopo.Tiles()
	if s.plan != nil {
		s.noc.ShardNodes(s.plan.nocAssign, s.plan.S)
	}
	s.msgPools = make([]*cache.MsgPool, tiles)
	for t := range s.msgPools {
		s.msgPools[t] = cache.NewMsgPool()
	}
	s.memTags = make([]uint64, tiles)
	s.hubs = make([]*tileHub, tiles)
	for t := 0; t < tiles; t++ {
		s.hubs[t] = &tileHub{sys: s, tile: t, pendingMem: make(map[uint64]func(uint64))}
		s.noc.SetEndpoint(t, s.hubs[t])
	}

	// --- Memory side.
	if cfg.Scheme == SchemeDRAM {
		s.dramCtrls = make([]*dram.Controller, cfg.DRAMGeom.Channels)
		for ch := range s.dramCtrls {
			s.dramCtrls[ch] = dram.NewController(ch, cfg.DRAMGeom, cfg.DRAMTiming, 32)
		}
	} else {
		var topo network.Topology
		switch cfg.MemTopo {
		case TopoMesh:
			topo = network.NewMesh(4, ctrlCubes[:])
		default:
			topo = network.NewDragonfly(ctrlCubes[:])
		}
		s.memnet = network.NewFabric(topo, cfg.MemNet)
		if s.plan != nil {
			s.memnet.ShardNodes(s.plan.memAssign, 2*s.plan.S)
		}
		s.cubes = make([]*hmc.Cube, cfg.HMCGeom.Cubes)
		for c := range s.cubes {
			s.cubes[c] = hmc.NewCube(c, cfg.Cube, s.memnet, s.env.Store)
			if cfg.Scheme.Active() {
				s.cubes[c].AttachARE(cfg.ARE)
			}
		}
		s.hmcCtrls = make([]*hmc.Controller, 4)
		ports := make([]core.Port, 4)
		for i := range s.hmcCtrls {
			node := cfg.HMCGeom.Cubes + i
			s.hmcCtrls[i] = hmc.NewController(i, node, ctrlCubes[i], cfg.HMCGeom, s.memnet, 32)
			ports[i] = s.hmcCtrls[i]
		}
		if cfg.Scheme.Active() {
			coordPool := s.memnet.Pool
			if s.plan != nil {
				coordPool = nil // private pool: the coordinator runs serially
			}
			s.coord = core.NewCoordinator(cfg.Scheme.Policy(), cfg.HMCGeom, ports, s.env.Store, coordPool, cfg.CoordQueue)
			memTopo := topo
			s.coord.SetDistanceFn(func(port, cube int) int {
				entry := ctrlCubes[port]
				if entry == cube {
					return 0
				}
				return network.PathLen(memTopo, entry, cube)
			})
			for _, ctrl := range s.hmcCtrls {
				ctrl.OnGatherResp = s.coord.OnGatherResp
				ctrl.OnActiveAck = s.coord.OnActiveAck
			}
		}
	}

	// --- Memory controller ports on the NoC corners.
	s.mcs = make([]*mcPort, 4)
	for i := range s.mcs {
		mc := &mcPort{sys: s, tile: mcTiles[i], index: i}
		if cfg.Scheme == SchemeDRAM {
			ctrl := s.dramCtrls[i]
			mc.access = func(pa mem.PAddr, write bool, done func(uint64)) bool {
				return ctrl.Access(pa, write, s.now(), done)
			}
		} else {
			ctrl := s.hmcCtrls[i]
			mc.access = func(pa mem.PAddr, write bool, done func(uint64)) bool {
				return ctrl.Access(pa, write, done)
			}
		}
		s.mcs[i] = mc
	}

	// --- Cache hierarchy.
	s.l2s = make([]*cache.L2Bank, tiles)
	for t := 0; t < tiles; t++ {
		tile := t
		memPort := func(block mem.PAddr, write bool, done func(uint64)) bool {
			var idx int
			if cfg.Scheme == SchemeDRAM {
				idx = cfg.DRAMGeom.ChannelOf(block)
			} else {
				idx = cfg.HMCGeom.CubeOf(block) * 4 / cfg.HMCGeom.Cubes
			}
			s.memTags[tile]++
			tag := uint64(tile)<<40 | s.memTags[tile]
			kind := cache.MsgMemRead
			if write {
				kind = cache.MsgMemWrite
			}
			m := s.msgPools[tile].Get(kind, block, tile)
			m.Tag = tag
			if !s.sendFrom(tile, mcTiles[idx], m) {
				s.msgPools[tile].Put(m)
				return false
			}
			s.hubs[tile].pendingMem[tag] = done
			return true
		}
		s.l2s[t] = cache.NewL2Bank(t, cfg.L2, s.senderFor(t), memPort, s.msgPools[t])
	}
	s.l1s = make([]*cache.L1, tiles)
	for t := 0; t < tiles; t++ {
		s.l1s[t] = cache.NewL1(t, cfg.L1, s.senderFor(t),
			func(block mem.PAddr) int { return cache.BankOf(block, tiles) }, s.msgPools[t])
	}

	// --- Message interfaces (Active-Routing schemes only).
	s.mis = make([]*MessageInterface, tiles)
	if cfg.Scheme.Active() {
		for t := 0; t < tiles; t++ {
			s.mis[t] = NewMessageInterface(t, s.senderFor(t), s.coord, s.msgPools[t], cfg.MIQueue, cfg.MIWindow)
		}
	}

	// --- Cores.
	streams := s.wl.Streams(cfg.Scheme.Mode())
	if len(streams) != cfg.Threads {
		return nil, fmt.Errorf("system: workload produced %d streams for %d threads", len(streams), cfg.Threads)
	}
	s.barrier = cpu.NewBarrier(cfg.Threads)
	barrier := s.barrier
	s.cores = make([]*cpu.Core, cfg.Threads)
	for i := range s.cores {
		var off cpu.OffloadPort
		if s.mis[i] != nil {
			off = s.mis[i]
		}
		s.cores[i] = cpu.NewCore(i, cfg.Core, streams[i], s.l1s[i], off, s.env.Store, s.env.AS, barrier)
	}

	if s.plan != nil {
		s.registerSharded()
	} else {
		s.register()
	}
	return s, nil
}

// now reports the current simulation cycle under either kernel.
func (s *System) now() uint64 {
	if s.cond != nil {
		return s.cond.Cycle()
	}
	return s.engine.Cycle()
}

// senderFor builds the NoC message sender for a tile. Same-tile messages
// bypass the network.
func (s *System) senderFor(tile int) cache.Sender {
	return func(dst int, m *cache.Msg) bool { return s.sendFrom(tile, dst, m) }
}

func (s *System) sendFrom(src, dst int, m *cache.Msg) bool {
	if src == dst {
		return s.hubs[dst].deliverMsg(m, s.now(), false)
	}
	pool := s.noc.PoolAt(src)
	p := cache.PacketFor(pool, m, src, dst)
	if !s.noc.Inject(src, p, s.now()) {
		// The wrapper never entered the fabric; the caller keeps the
		// message and retries, so only the packet returns to the pool.
		p.Meta = nil
		pool.Put(p)
		return false
	}
	return true
}

// register wires every component into the tick order. Components are
// registered directly (not wrapped in sim.TickFunc) so the engine sees
// their sim.Idler hints; the drain probe for each is installed in the same
// pass, mirroring the old whole-machine done() scan order.
func (s *System) register() {
	for i, c := range s.cores {
		c := c
		s.engine.Register(fmt.Sprintf("core%d", i), c)
		s.busyChecks = append(s.busyChecks, func() bool { return !c.Finished() })
	}
	for i, l1 := range s.l1s {
		l1 := l1
		s.engine.Register(fmt.Sprintf("l1.%d", i), l1)
		s.busyChecks = append(s.busyChecks, l1.Busy)
	}
	for i, l2 := range s.l2s {
		l2 := l2
		s.engine.Register(fmt.Sprintf("l2.%d", i), l2)
		s.busyChecks = append(s.busyChecks, l2.Busy)
	}
	for i, mi := range s.mis {
		if mi != nil {
			mi := mi
			s.engine.Register(fmt.Sprintf("mi.%d", i), mi)
			s.busyChecks = append(s.busyChecks, mi.Busy)
		}
	}
	s.engine.Register("noc", s.noc)
	s.busyChecks = append(s.busyChecks, func() bool { return !s.noc.Drained() })
	for i, mc := range s.mcs {
		mc := mc
		s.engine.Register(fmt.Sprintf("mc.%d", i), mc)
		s.busyChecks = append(s.busyChecks, func() bool { return mc.queued() > 0 })
	}
	for i, d := range s.dramCtrls {
		d := d
		s.engine.Register(fmt.Sprintf("dram.%d", i), d)
		s.busyChecks = append(s.busyChecks, func() bool { return d.Banks.Pending() > 0 })
	}
	for i, h := range s.hmcCtrls {
		h := h
		s.engine.Register(fmt.Sprintf("hmcctrl.%d", i), h)
		s.busyChecks = append(s.busyChecks, h.Busy)
	}
	if s.coord != nil {
		s.engine.Register("coordinator", s.coord)
		s.busyChecks = append(s.busyChecks, s.coord.Busy)
	}
	if s.memnet != nil {
		s.engine.Register("memnet", s.memnet)
		s.busyChecks = append(s.busyChecks, func() bool { return !s.memnet.Drained() })
	}
	for i, c := range s.cubes {
		c := c
		s.engine.Register(fmt.Sprintf("cube%d", i), c)
		s.busyChecks = append(s.busyChecks, c.Busy)
	}
	s.engine.Register("ipc-sampler", ipcSampler{s})
	s.engine.Register("barrier-flush", barrierFlush{s.barrier})
}

// barrierFlush fires deferred barrier releases at the end of every cycle
// (the last slot in the tick order), so a crossing completed during cycle c
// resumes every waiter at c+1 regardless of tick-order position. It is a
// plain (non-cacheable) idler: the pending check is one length read.
type barrierFlush struct{ b *cpu.Barrier }

func (f barrierFlush) Tick(uint64) { f.b.Flush() }

func (f barrierFlush) NextWork(now uint64) uint64 {
	if f.b.Pending() {
		return now
	}
	return never
}

// ipcSampler adapts the Fig 5.8 IPC probe to the engine with an idle hint:
// its only work is on sampling boundaries.
type ipcSampler struct{ s *System }

func (p ipcSampler) Tick(cycle uint64) { p.s.sampleIPC(cycle) }

// SetWaker implements sim.WakeSetter trivially: the sampler's idle hint is
// a pure function of time, so its cached wake needs no invalidation.
func (p ipcSampler) SetWaker(*sim.Waker) {}

func (p ipcSampler) NextWork(now uint64) uint64 {
	iv := p.s.cfg.IPCSampleCycles
	if iv&(iv-1) == 0 { // power of two: avoid the hardware divide
		return (now + iv - 1) &^ (iv - 1)
	}
	if rem := now % iv; rem != 0 {
		return now + iv - rem
	}
	return now
}

// sampleIPC records the machine-wide IPC trace for Fig 5.8.
func (s *System) sampleIPC(cycle uint64) {
	if cycle == 0 || cycle%s.cfg.IPCSampleCycles != 0 {
		return
	}
	var total uint64
	for _, c := range s.cores {
		total += c.Stats.Retired
	}
	delta := total - s.lastRetired
	s.lastRetired = total
	s.ipcTrace = append(s.ipcTrace, stats.IPCPoint{
		Insts: total,
		IPC:   float64(delta) / float64(s.cfg.IPCSampleCycles),
	})
}

// done reports whether the machine has fully drained. Every probe is an
// O(1) counter read, and the component that blocked completion last time is
// re-checked first, so the per-cycle poll is O(1) until the machine is
// nearly drained (the full sweep then confirms quiescence once).
func (s *System) done() bool {
	if s.lastBusy < len(s.busyChecks) && s.busyChecks[s.lastBusy]() {
		return false
	}
	for i, busy := range s.busyChecks {
		if busy() {
			s.lastBusy = i
			return false
		}
	}
	return true
}

// Run simulates to completion, verifies the workload's final memory state,
// and returns the collected results.
func (s *System) Run() (*Results, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: the kernel polls ctx on an
// amortized stride (sim.RunUntilCtx), so a cancelled or expired context
// abandons a running simulation within a bounded number of steps instead
// of burning its full cycle budget. Cancellation never produces partial
// Results — the return is (nil, error wrapping ctx.Err()).
func (s *System) RunCtx(ctx context.Context) (*Results, error) {
	// The budget is relative to the current clock so a run resumed from a
	// checkpoint times out at the same absolute cycle as a straight-through
	// run (remainingBudget == MaxCycles on a fresh machine).
	var err error
	if s.cond != nil {
		_, err = s.cond.RunUntilCtx(ctx, s.done, s.remainingBudget())
	} else {
		_, err = s.engine.RunUntilCtx(ctx, s.done, s.remainingBudget())
	}
	if err != nil {
		return nil, fmt.Errorf("system: %s/%s: %w", s.cfg.Scheme, s.wl.Name(), err)
	}
	if err := s.wl.Verify(); err != nil {
		return nil, fmt.Errorf("system: %s/%s verification: %w", s.cfg.Scheme, s.wl.Name(), err)
	}
	return s.collect(), nil
}

// collect gathers every figure's statistics.
func (s *System) collect() *Results {
	r := &Results{
		Scheme:   s.cfg.Scheme,
		Workload: s.wl.Name(),
		Cycles:   s.now(),
		IPCTrace: s.ipcTrace,
	}
	for _, c := range s.cores {
		r.CoreIPC = append(r.CoreIPC, append([]stats.IPCPoint(nil), c.IPC.Points...))
		r.Instructions += c.Stats.Retired
		r.CoreStats.Retired += c.Stats.Retired
		r.CoreStats.Loads += c.Stats.Loads
		r.CoreStats.Stores += c.Stats.Stores
		r.CoreStats.Updates += c.Stats.Updates
		r.CoreStats.Gathers += c.Stats.Gathers
		r.CoreStats.Computes += c.Stats.Computes
		r.CoreStats.ROBFullCycles += c.Stats.ROBFullCycles
		r.CoreStats.OffloadStalls += c.Stats.OffloadStalls
		r.CoreStats.MemStalls += c.Stats.MemStalls
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	for _, l1 := range s.l1s {
		r.Cache.Merge(l1.Stats)
	}
	for _, l2 := range s.l2s {
		r.Cache.Merge(l2.Stats)
	}
	ncubes := s.cfg.HMCGeom.Cubes
	r.UpdatesHeat = stats.NewHeatmap("update distribution", ncubes, 4)
	r.OperandHeat = stats.NewHeatmap("operand distribution", ncubes, 4)
	r.StallHeat = stats.NewHeatmap("operand buffer stalls", ncubes, 4)
	for i, cube := range s.cubes {
		r.VaultAcc += cube.Stats.VaultAccesses
		r.OperandHeat.Add(i, cube.Stats.OperandServes)
		if are := cube.ARE(); are != nil {
			r.UpdatesHeat.Add(i, are.Stats.UpdatesCommitted)
			r.OperandHeat.Add(i, are.Stats.VaultAccessesSent)
			r.StallHeat.Add(i, are.Stats.OperandBufStalls)
			r.Breakdown.Merge(are.Breakdown)
			mergeEngineStats(&r.Engine, are.Stats)
			if are.Flows.Peak > r.FlowPeak {
				r.FlowPeak = are.Flows.Peak
			}
		}
	}
	if s.coord != nil {
		r.Coord = s.coord.Stats
	}
	if s.memnet != nil {
		r.Movement = s.memnet.MovementTotal()
		r.NetHopByte = s.memnet.HopBytesTotal()
	}
	for _, d := range s.dramCtrls {
		r.DRAMAcc += d.Banks.Stats.Reads + d.Banks.Stats.Writes
		// Synthesize the equivalent request/response byte movement so Fig
		// 5.4 can compare DRAM against the packetized schemes.
		r.Movement.NormReq += d.Banks.Stats.Reads*network.MemReadReqBytes +
			d.Banks.Stats.Writes*network.MemWriteReqBytes
		r.Movement.NormResp += d.Banks.Stats.Reads*network.MemReadRespBytes +
			d.Banks.Stats.Writes*network.MemWriteAckBytes
	}
	e := power.Energy(power.Inputs{
		L1Accesses:   r.Cache.L1Accesses,
		L2Accesses:   r.Cache.L2Accesses,
		HMCAccesses:  r.VaultAcc,
		DRAMAccesses: r.DRAMAcc,
		NetHopBytes:  r.NetHopByte,
		Cycles:       r.Cycles,
	})
	r.Energy = e
	r.PowerW = power.Power(e, r.Cycles, 2)
	r.EDP = power.EDP(e, r.Cycles, 2)
	return r
}

func mergeEngineStats(dst *core.EngineStats, src core.EngineStats) {
	dst.UpdatesCommitted += src.UpdatesCommitted
	dst.UpdatesForwarded += src.UpdatesForwarded
	dst.OperandReqsSent += src.OperandReqsSent
	dst.OperandBufStalls += src.OperandBufStalls
	dst.FlowTableStalls += src.FlowTableStalls
	dst.InjectStalls += src.InjectStalls
	dst.GatherReqs += src.GatherReqs
	dst.GatherResps += src.GatherResps
	dst.FlowsCompleted += src.FlowsCompleted
	dst.SingleOpBypasses += src.SingleOpBypasses
	dst.DecodedPackets += src.DecodedPackets
	dst.VaultAccessesSent += src.VaultAccessesSent
	if src.PeakOperandInUse > dst.PeakOperandInUse {
		dst.PeakOperandInUse = src.PeakOperandInUse
	}
}

// Engine exposes the sequential simulation engine (tests and tooling); it
// is nil under the sharded kernel, where Conductor is the scheduler.
func (s *System) Engine() *sim.Engine { return s.engine }

// Conductor exposes the sharded kernel's scheduler (nil under the
// sequential kernel).
func (s *System) Conductor() *sim.Sharded { return s.cond }

// SchedCounters snapshots the sharded conductor's scheduling counters
// (waves run/fused/skipped, barriers elided, park events). ok is false
// under the sequential kernel. The counters are scheduler diagnostics, not
// simulated state — they are deliberately kept out of Results so sharded
// and sequential runs stay bit-identical.
func (s *System) SchedCounters() (sim.SchedCounters, bool) {
	if s.cond == nil {
		return sim.SchedCounters{}, false
	}
	return s.cond.Counters(), true
}

// Env exposes the workload environment (tests).
func (s *System) Env() *workload.Env { return s.env }

// Workload exposes the bound workload.
func (s *System) Workload() workload.Workload { return s.wl }

// DebugDigest summarizes per-cycle observable state for kernel-equivalence
// debugging (tests and tooling only).
func (s *System) DebugDigest() string {
	var retired, fence, stalls uint64
	for _, c := range s.cores {
		retired += c.Stats.Retired
		fence += c.Stats.FenceCycles
		stalls += c.Stats.OffloadStalls
	}
	var miq, mid uint64
	for _, mi := range s.mis {
		if mi != nil {
			miq += mi.QueriesSent
			mid += mi.UpdatesSent + mi.GathersSent
		}
	}
	d := fmt.Sprintf("ret=%d fence=%d ostall=%d miq=%d mid=%d noc=%d", retired, fence, stalls, miq, mid, s.noc.InFlight())
	if s.memnet != nil {
		d += fmt.Sprintf(" mem=%d", s.memnet.InFlight())
	}
	if s.coord != nil {
		d += fmt.Sprintf(" coord={u=%d g=%d ps=%d er=%d flows=%d}", s.coord.Stats.Updates, s.coord.Stats.Gathers, s.coord.Stats.PortStalls, s.coord.Stats.EnqueueRejects, s.coord.LiveFlows())
	}
	return d
}
