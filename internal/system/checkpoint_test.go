package system_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// buildSys constructs a fresh machine for a checkpoint test case.
func buildSys(t *testing.T, scheme system.Scheme, wl string, shards int) *system.System {
	t.Helper()
	cfg := system.DefaultConfig(scheme)
	cfg.Shards = shards
	sys, err := system.New(cfg, wl, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runStraight simulates a fresh machine to completion.
func runStraight(t *testing.T, scheme system.Scheme, wl string, shards int) *system.Results {
	t.Helper()
	res, err := buildSys(t, scheme, wl, shards).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointRoundTrip is the tentpole equivalence property: snapshot a
// run at a mid-run quiescent point, restore into a fresh machine, run to
// completion, and require Results bit-identical (reflect.DeepEqual) to the
// straight-through run — for every scheme shape (DRAM backend, plain HMC,
// Active-Routing) and under both kernels, including cross-kernel restores
// (sequential snapshot into a sharded machine and vice versa).
func TestCheckpointRoundTrip(t *testing.T) {
	cases := []struct {
		workload string
		scheme   system.Scheme
	}{
		// lud has barrier-phase drain points under the DRAM backend; a
		// workload that streams memory continuously (e.g. mac) never
		// quiesces mid-run there, and RunToCheckpoint correctly reports no
		// checkpoint (the cold-run fallback path, covered below).
		{"lud", system.SchemeDRAM},
		{"mac", system.SchemeHMC},
		{"mac", system.SchemeARFtid},
		{"rand_mac", system.SchemeART},
		{"reduce", system.SchemeARFaddr},
		{"backprop", system.SchemeARFtid},
		{"pagerank", system.SchemeARFtid},
	}
	kernels := []struct {
		name               string
		snapShards, resume int
	}{
		{"seq-seq", 0, 0},
		{"shard4-shard4", 4, 4},
		{"seq-shard4", 0, 4},
		{"shard4-seq", 4, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload+"/"+c.scheme.String(), func(t *testing.T) {
			t.Parallel()
			want := runStraight(t, c.scheme, c.workload, 0)
			at := want.Cycles / 2
			for _, k := range kernels {
				k := k
				t.Run(k.name, func(t *testing.T) {
					src := buildSys(t, c.scheme, c.workload, k.snapShards)
					snap, err := src.RunToCheckpoint(context.Background(), at, nil)
					if err != nil {
						t.Fatal(err)
					}
					if snap == nil {
						t.Fatalf("no quiescent point found at or after cycle %d", at)
					}
					dst := buildSys(t, c.scheme, c.workload, k.resume)
					if err := dst.Restore(snap); err != nil {
						t.Fatal(err)
					}
					got, err := dst.Run()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("restored run diverged from straight-through run:\n got: %+v\nwant: %+v", got, want)
					}
				})
			}
		})
	}
}

// TestCheckpointSourceContinues checks that taking a snapshot does not
// perturb the source machine: after RunToCheckpoint, the same machine runs
// on to completion with Results identical to a straight-through run.
func TestCheckpointSourceContinues(t *testing.T) {
	want := runStraight(t, system.SchemeARFtid, "mac", 0)
	src := buildSys(t, system.SchemeARFtid, "mac", 0)
	snap, err := src.RunToCheckpoint(context.Background(), want.Cycles/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint found")
	}
	got, err := src.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("source run diverged after snapshot:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestCheckpointFinishBeforePoint checks the finished-first path: a
// checkpoint requested past the end of the run returns nil and the run is
// simply complete.
func TestCheckpointFinishBeforePoint(t *testing.T) {
	want := runStraight(t, system.SchemeHMC, "mac", 0)
	src := buildSys(t, system.SchemeHMC, "mac", 0)
	snap, err := src.RunToCheckpoint(context.Background(), want.Cycles*10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("got a checkpoint past the end of the run")
	}
	got, err := src.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("finished run diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRestoreRejectsMismatch checks restore validation: wrong workload,
// wrong scheme and a prefix-incompatible configuration are all refused.
func TestRestoreRejectsMismatch(t *testing.T) {
	src := buildSys(t, system.SchemeARFtid, "mac", 0)
	snap, err := src.RunToCheckpoint(context.Background(), 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint found")
	}

	if err := buildSys(t, system.SchemeARFtid, "reduce", 0).Restore(snap); err == nil {
		t.Error("restore into a different workload succeeded")
	}
	if err := buildSys(t, system.SchemeART, "mac", 0).Restore(snap); err == nil {
		t.Error("restore into a different scheme succeeded")
	}
	cfg := system.DefaultConfig(system.SchemeARFtid)
	cfg.Seed = 7 // prefix-live knob
	other, err := system.New(cfg, "mac", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("restore under a prefix-incompatible configuration succeeded")
	}

	// A divergence-tolerant knob (ARE.MaxFlows) restores fine.
	cfg = system.DefaultConfig(system.SchemeARFtid)
	cfg.ARE.MaxFlows = 512
	fork, err := system.New(cfg, "mac", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(snap); err != nil {
		t.Errorf("restore under a larger flow table failed: %v", err)
	}
}

// TestRestoreRejectsCorrupt checks that a truncated or bit-flipped
// snapshot never restores (it must error, not panic or silently succeed).
func TestRestoreRejectsCorrupt(t *testing.T) {
	src := buildSys(t, system.SchemeARFtid, "mac", 0)
	snap, err := src.RunToCheckpoint(context.Background(), 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint found")
	}
	for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
		if err := buildSys(t, system.SchemeARFtid, "mac", 0).Restore(snap[:cut]); err == nil {
			t.Errorf("truncation to %d bytes restored successfully", cut)
		}
	}
}
