package system

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// TestConfigHashCoversEveryField is the runtime counterpart of the hashcov
// analyzer: arlint proves statically that Hash() reads every non-exempt
// field, this test proves dynamically that mutating such a field actually
// changes the hash (a field could be read but formatted into nothing), and
// that mutating a hash-exempt field leaves the cache key alone. The exempt
// set is parsed from config.go itself, so the test can never drift from the
// annotations the analyzer enforces.
func TestConfigHashCoversEveryField(t *testing.T) {
	exempt := hashExemptFields(t)
	if len(exempt) == 0 {
		t.Fatal("no //ar:exempt(hash) fields parsed from config.go; the parser is broken")
	}

	base := DefaultConfig(SchemeARFtid)
	baseHash := base.Hash()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		cfg := base
		if !mutateLeaf(reflect.ValueOf(&cfg).Elem().Field(i)) {
			t.Fatalf("field %s has no mutable primitive leaf", name)
		}
		changed := cfg.Hash() != baseHash
		if exempt[name] && changed {
			t.Errorf("field %s is //ar:exempt(hash) but mutating it changed the hash: "+
				"the annotation and the implementation disagree", name)
		}
		if !exempt[name] && !changed {
			t.Errorf("field %s is not hash-exempt but mutating it left the hash "+
				"unchanged: a config differing only in %s would reuse a stale "+
				"cached result", name, name)
		}
	}
}

// hashExemptFields parses config.go and returns the Config field names whose
// declarations carry an //ar:exempt(hash) annotation (trailing or on the
// line above, the same coverage rule the analyzer applies).
func hashExemptFields(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "config.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var st *ast.StructType
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if ok && ts.Name.Name == "Config" {
			st, _ = ts.Type.(*ast.StructType)
			return false
		}
		return true
	})
	if st == nil {
		t.Fatal("type Config not found in config.go")
	}
	isExempt := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "ar:exempt(hash)") {
				return true
			}
		}
		return false
	}
	out := make(map[string]bool)
	for _, field := range st.Fields.List {
		if isExempt(field.Doc) || isExempt(field.Comment) {
			for _, name := range field.Names {
				out[name.Name] = true
			}
		}
	}
	return out
}

// mutateLeaf flips the first primitive leaf reachable inside v, descending
// into nested structs, and reports whether it found one.
func mutateLeaf(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
		return true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
		return true
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
		return true
	case reflect.String:
		v.SetString(v.String() + "x")
		return true
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() && mutateLeaf(f) {
				return true
			}
		}
	}
	return false
}
