package system_test

import (
	"context"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// FuzzSnapshotDecode asserts Restore never panics and never reports
// success on arbitrary bytes — torn, bit-flipped or adversarial snapshot
// blobs must all fail cleanly. Seeds include a genuine snapshot (so the
// fuzzer mutates from the real wire format, exercising deep decode paths
// past the header) and its systematic corruptions.
func FuzzSnapshotDecode(f *testing.F) {
	cfg := system.DefaultConfig(system.SchemeARFtid)
	src, err := system.New(cfg, "mac", workload.ScaleTiny)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := src.RunToCheckpoint(context.Background(), 500, nil)
	if err != nil || snap == nil {
		f.Fatalf("no seed checkpoint (err=%v)", err)
	}

	f.Add([]byte(nil))
	f.Add([]byte("arsys"))
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	for _, off := range []int{8, len(snap) / 3, len(snap) - 2} {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := system.New(cfg, "mac", workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Restore(data); err == nil {
			// The only bytes that may restore are a byte-identical valid
			// snapshot; anything else succeeding means a validation hole.
			if len(data) != len(snap) {
				t.Fatalf("corrupt snapshot of %d bytes restored successfully", len(data))
			}
			for i := range data {
				if data[i] != snap[i] {
					t.Fatalf("mutated snapshot (first diff at byte %d) restored successfully", i)
				}
			}
		}
	})
}
