package system

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// MessageInterface is the per-core MI of Fig 3.1 (§3.1.2): it accepts
// Update/Gather instructions from the core, performs the §3.4.2 coherence
// query (a back-invalidation probe at the block's directory bank) for each
// offload, and forwards commands to the flow coordinator in program order —
// a Gather can never overtake its thread's earlier Updates.
type MessageInterface struct {
	tile  int
	send  cache.Sender
	coord *core.Coordinator

	queue     []*miEntry
	cap       int
	window    int
	nextTag   uint64
	byTag     map[uint64]*miEntry
	unqueried int // updates whose coherence query has not been sent yet

	// Stats.
	QueriesSent  uint64
	UpdatesSent  uint64
	GathersSent  uint64
	QueueFullRej uint64
}

type miEntry struct {
	upd     core.UpdateCmd
	gather  *core.GatherCmd
	queried bool
	cleared bool
	tag     uint64
}

// NewMessageInterface builds the MI for the core at tile.
func NewMessageInterface(tile int, send cache.Sender, coord *core.Coordinator, capacity, window int) *MessageInterface {
	if capacity <= 0 {
		capacity = 16
	}
	if window <= 0 {
		window = 8
	}
	return &MessageInterface{
		tile:   tile,
		send:   send,
		coord:  coord,
		cap:    capacity,
		window: window,
		byTag:  make(map[uint64]*miEntry),
	}
}

var _ cpu.OffloadPort = (*MessageInterface)(nil)

// Update implements cpu.OffloadPort; false stalls the core (offload
// backpressure).
func (mi *MessageInterface) Update(cmd core.UpdateCmd, cycle uint64) bool {
	if len(mi.queue) >= mi.cap {
		mi.QueueFullRej++
		return false
	}
	mi.queue = append(mi.queue, &miEntry{upd: cmd})
	mi.unqueried++
	return true
}

// Gather implements cpu.OffloadPort.
func (mi *MessageInterface) Gather(cmd core.GatherCmd, cycle uint64) bool {
	if len(mi.queue) >= mi.cap {
		mi.QueueFullRej++
		return false
	}
	g := cmd
	mi.queue = append(mi.queue, &miEntry{gather: &g})
	return true
}

// Busy reports queued offloads.
func (mi *MessageInterface) Busy() bool { return len(mi.queue) > 0 }

// NextWork implements sim.Idler. The MI is quiescent when its queue is
// empty, and also while every update in the query window has been queried
// and the head is still waiting for its back-invalidation ack (which
// arrives via OnBackInvalDone).
func (mi *MessageInterface) NextWork(now uint64) uint64 {
	if len(mi.queue) == 0 {
		return never
	}
	head := mi.queue[0]
	if head.gather != nil || head.cleared {
		return now
	}
	if mi.unqueried > 0 {
		window := mi.window
		if window > len(mi.queue) {
			window = len(mi.queue)
		}
		for _, e := range mi.queue[:window] {
			if e.gather == nil && !e.queried {
				return now
			}
		}
	}
	return never
}

// queryAddr picks the address whose directory bank is probed before the
// offload proceeds (§3.4.2).
func queryAddr(cmd core.UpdateCmd) mem.PAddr {
	if cmd.Src1 != 0 {
		return cmd.Src1
	}
	return cmd.Target
}

// Tick issues coherence queries (up to the window) and drains cleared
// commands to the coordinator in FIFO order.
func (mi *MessageInterface) Tick(cycle uint64) {
	// Issue queries for the leading window of un-queried updates.
	seen := 0
	for _, e := range mi.queue {
		if seen >= mi.window {
			break
		}
		seen++
		if e.gather != nil || e.queried {
			continue
		}
		block := mem.BlockAlign(queryAddr(e.upd))
		mi.nextTag++
		tag := uint64(mi.tile)<<40 | mi.nextTag
		m := &cache.Msg{Type: cache.MsgBackInvalQ, Block: block, From: mi.tile, Tag: tag}
		if !mi.send(cache.BankOf(block, 16), m) {
			break
		}
		e.queried = true
		e.tag = tag
		mi.byTag[tag] = e
		mi.unqueried--
		mi.QueriesSent++
	}
	// Forward cleared heads.
	for len(mi.queue) > 0 {
		e := mi.queue[0]
		if e.gather != nil {
			if !mi.coord.EnqueueGather(*e.gather, cycle) {
				return
			}
			mi.GathersSent++
		} else {
			if !e.cleared {
				return
			}
			if !mi.coord.EnqueueUpdate(e.upd, cycle) {
				return
			}
			mi.UpdatesSent++
		}
		mi.queue = mi.queue[1:]
	}
}

// OnBackInvalDone clears the queried entry so it can be forwarded.
func (mi *MessageInterface) OnBackInvalDone(tag uint64) {
	if e, ok := mi.byTag[tag]; ok {
		e.cleared = true
		delete(mi.byTag, tag)
	}
}
