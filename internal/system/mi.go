package system

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MessageInterface is the per-core MI of Fig 3.1 (§3.1.2): it accepts
// Update/Gather instructions from the core, performs the §3.4.2 coherence
// query (a back-invalidation probe at the block's directory bank) for each
// offload, and forwards commands to the flow coordinator in program order —
// a Gather can never overtake its thread's earlier Updates.
type MessageInterface struct {
	tile  int
	send  cache.Sender
	coord *core.Coordinator
	pool  *cache.MsgPool

	queue     sim.FIFO[*miEntry]
	free      []*miEntry // recycled queue entries
	cap       int
	window    int
	nextTag   uint64
	byTag     map[uint64]*miEntry
	unqueried int // updates whose coherence query has not been sent yet
	// scanFrom is the queue offset of the first unqueried update: queries
	// are issued strictly front to back, so every earlier entry is already
	// queried (or a gather) and the per-tick window scan starts here.
	scanFrom int

	// waker invalidates the engine's cached idle hint on external input
	// (Update/Gather from the core, OnBackInvalDone from the directory).
	waker *sim.Waker

	// Stats.
	QueriesSent  uint64
	UpdatesSent  uint64
	GathersSent  uint64
	QueueFullRej uint64
}

type miEntry struct {
	upd      core.UpdateCmd
	gather   core.GatherCmd
	isGather bool
	queried  bool
	cleared  bool
	// lateCleared/clearedAt reproduce the sequential drain timing under the
	// sharded kernel: a clear that arrives after the MI's tick-order slot
	// (i.e. during the NoC ejection pass) is drainable only from the next
	// cycle on, exactly as the sequential kernel's already-past drain loop
	// would have it.
	lateCleared bool
	clearedAt   uint64
	tag         uint64
}

// NewMessageInterface builds the MI for the core at tile. pool is the
// machine's shared coherence-message free list.
func NewMessageInterface(tile int, send cache.Sender, coord *core.Coordinator, pool *cache.MsgPool, capacity, window int) *MessageInterface {
	if capacity <= 0 {
		capacity = 16
	}
	if window <= 0 {
		window = 8
	}
	if pool == nil {
		pool = cache.NewMsgPool()
	}
	return &MessageInterface{
		tile:   tile,
		send:   send,
		coord:  coord,
		pool:   pool,
		cap:    capacity,
		window: window,
		byTag:  make(map[uint64]*miEntry),
	}
}

// getEntry returns a recycled (or fresh) queue entry.
func (mi *MessageInterface) getEntry() *miEntry {
	if n := len(mi.free); n > 0 {
		e := mi.free[n-1]
		mi.free = mi.free[:n-1]
		*e = miEntry{}
		return e
	}
	return &miEntry{}
}

var _ cpu.OffloadPort = (*MessageInterface)(nil)

// SetWaker implements sim.WakeSetter.
func (mi *MessageInterface) SetWaker(w *sim.Waker) { mi.waker = w }

// Update implements cpu.OffloadPort; false stalls the core (offload
// backpressure).
func (mi *MessageInterface) Update(cmd core.UpdateCmd, cycle uint64) bool {
	if mi.queue.Len() >= mi.cap {
		mi.QueueFullRej++
		return false
	}
	e := mi.getEntry()
	e.upd = cmd
	mi.queue.Push(e)
	mi.unqueried++
	mi.waker.Wake()
	return true
}

// Gather implements cpu.OffloadPort.
func (mi *MessageInterface) Gather(cmd core.GatherCmd, cycle uint64) bool {
	if mi.queue.Len() >= mi.cap {
		mi.QueueFullRej++
		return false
	}
	e := mi.getEntry()
	e.gather = cmd
	e.isGather = true
	mi.queue.Push(e)
	mi.waker.Wake()
	return true
}

// Busy reports queued offloads.
func (mi *MessageInterface) Busy() bool { return mi.queue.Len() > 0 }

// NextWork implements sim.Idler. The MI is quiescent when its queue is
// empty, and also while every update in the query window has been queried
// and the head is still waiting for its back-invalidation ack (which
// arrives via OnBackInvalDone).
func (mi *MessageInterface) NextWork(now uint64) uint64 {
	if mi.queue.Len() == 0 {
		return never
	}
	head := mi.queue.Peek()
	if head.isGather || head.cleared {
		return now
	}
	if mi.unqueried > 0 && mi.scanFrom < mi.window {
		return now // an unqueried update sits inside the query window
	}
	return never
}

// QueryWork reports whether TickQueries has work (the sharded kernel's
// tile-wave idle hint; drains are checked by DrainWork).
func (mi *MessageInterface) QueryWork(now uint64) uint64 {
	if mi.unqueried > 0 && mi.scanFrom < mi.window && mi.scanFrom < mi.queue.Len() {
		return now
	}
	return never
}

// DrainWork reports whether TickDrain can make progress.
func (mi *MessageInterface) DrainWork() bool {
	if mi.queue.Len() == 0 {
		return false
	}
	head := mi.queue.Peek()
	return head.isGather || head.cleared
}

// queryAddr picks the address whose directory bank is probed before the
// offload proceeds (§3.4.2).
func queryAddr(cmd core.UpdateCmd) mem.PAddr {
	if cmd.Src1 != 0 {
		return cmd.Src1
	}
	return cmd.Target
}

// Tick issues coherence queries (up to the window) and drains cleared
// commands to the coordinator in FIFO order. The sharded kernel runs the
// two halves separately: TickQueries in the tile wave (tile-local sends)
// and TickDrain in the serial section (the coordinator's queue-fill order
// across MIs is part of the machine definition). Queries never read
// coordinator state and drains never touch tile state another MI can see,
// so all-queries-then-all-drains is interleaving-equivalent to the
// sequential per-MI tick.
//
//ar:hotpath
func (mi *MessageInterface) Tick(cycle uint64) {
	mi.TickQueries(cycle)
	mi.TickDrain(cycle)
}

// TickQueries issues coherence queries for the leading window of un-queried
// updates, starting at the cursor (everything before it is already
// queried).
//
//ar:hotpath
func (mi *MessageInterface) TickQueries(cycle uint64) {
	limit := mi.window
	if limit > mi.queue.Len() {
		limit = mi.queue.Len()
	}
	for i := mi.scanFrom; i < limit; i++ {
		e := mi.queue.At(i)
		if e.isGather || e.queried {
			mi.scanFrom = i + 1
			continue
		}
		block := mem.BlockAlign(queryAddr(e.upd))
		mi.nextTag++
		tag := uint64(mi.tile)<<40 | mi.nextTag
		m := mi.pool.Get(cache.MsgBackInvalQ, block, mi.tile)
		m.Tag = tag
		if !mi.send(cache.BankOf(block, 16), m) {
			mi.pool.Put(m)
			break
		}
		e.queried = true
		e.tag = tag
		mi.byTag[tag] = e
		mi.unqueried--
		mi.scanFrom = i + 1
		mi.QueriesSent++
	}
}

// TickDrain forwards cleared heads to the coordinator, recycling forwarded
// entries.
//
//ar:hotpath
func (mi *MessageInterface) TickDrain(cycle uint64) {
	for mi.queue.Len() > 0 {
		e := mi.queue.Peek()
		if e.isGather {
			if !mi.coord.EnqueueGather(e.gather, cycle) {
				return
			}
			mi.GathersSent++
		} else {
			if !e.cleared {
				return
			}
			if e.lateCleared && e.clearedAt == cycle {
				// Cleared after this cycle's sequential drain slot: the
				// sequential kernel would forward it next cycle.
				return
			}
			if !mi.coord.EnqueueUpdate(e.upd, cycle) {
				return
			}
			mi.UpdatesSent++
		}
		mi.queue.Pop()
		if mi.scanFrom > 0 {
			mi.scanFrom--
			// The pop slid the query window forward: un-queried updates
			// beyond it may now be queryable. Under the sharded kernel the
			// drain runs in a serial section while the query ticker may be
			// parked on a cached Never, so the window change must wake it
			// (serial sections may wake any shard; in the sequential kernel
			// the wake is a harmless re-poll).
			if mi.unqueried > 0 {
				mi.waker.Wake()
			}
		}
		mi.free = append(mi.free, e) //ar:exempt(hotpath) free list reaches steady-state capacity; append stops growing after warm-up
	}
}

// OnBackInvalDone clears the queried entry so it can be forwarded. late
// reports whether the ack arrived through NoC ejection — a point in the
// cycle that lies after the MI's sequential tick-order slot — in which
// case the entry is drainable only from the next cycle on, under either
// kernel (in the sequential kernel the same-cycle drain has already run,
// so the stamp is naturally a no-op there).
func (mi *MessageInterface) OnBackInvalDone(tag uint64, late bool, cycle uint64) {
	if e, ok := mi.byTag[tag]; ok {
		e.cleared = true
		if late {
			e.lateCleared = true
			e.clearedAt = cycle
		}
		delete(mi.byTag, tag)
		mi.waker.Wake()
	}
}
