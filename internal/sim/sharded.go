// Sharded simulation kernel: the machine is partitioned into shard tick
// domains that advance through a fixed per-cycle schedule of parallel waves
// separated by barriers, with serial sections between waves for work whose
// sequential order is part of the machine definition (drains into shared
// queues, staged cross-shard commits).
//
// The conductor guarantees bit-identical results to the lockstep Engine by
// construction (DESIGN.md "Sharded kernel"):
//
//   - Within a shard, components tick in registration order — the exact
//     projection of the sequential tick order onto the shard.
//   - Across shards within one wave, components may only touch shard-local
//     state or append to staging buffers committed later; every cross-shard
//     interaction with same-cycle visibility in the sequential kernel runs
//     in a serial section at its sequential position.
//   - The idle protocol (Idler/WakeSetter/Waker) is per-shard, preserving
//     the Engine's semantics slot by slot, and the conductor advances the
//     clock past globally quiescent stretches in one step exactly like the
//     Engine. A wave is skipped outright — no barrier paid — while every
//     shard's cached segment horizon for it is in the future.
//
// Coordination-cost machinery on top of that contract:
//
//   - Serial feeder declarations (FedBy): the machine declares which waves
//     and serial sections can create work for each serial section. Its
//     plain (non-wake-aware) idlers then park like wake-aware ones, and
//     the conductor re-activates them by stamping the section whenever a
//     declared feeder executes — so a quiescent serial section costs two
//     loads per cycle instead of an O(components) NextWork scan.
//   - Wave fusion: consecutive waves whose intervening serial sections are
//     provably inert this cycle (no due work, not fed by any batch wave)
//     run back-to-back under one barrier.
//   - Barrier elision: when every shard due in a batch falls on a single
//     worker, the conductor runs the batch inline with no barrier at all.
//   - Single-worker fast path: with one effective worker the conductor
//     keeps per-wave need aggregates (punched by Waker.Wake and the park
//     sweep) so idle waves cost one load per cycle.
//   - Adaptive waiting: barrier waits spin briefly, yield for a while,
//     then park on a condvar — oversubscribed hosts degrade gracefully
//     instead of burning a core per barrier.
//
// Wake discipline: during a parallel wave a component may only Wake
// components of its own shard; serial sections (which run with every worker
// parked at a barrier) may wake any shard. The engine-side wake state is
// per-shard, so this discipline keeps the kernel free of data races, and
// the race detector verifies it in the sharded test suite.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Shard is one tick domain: an ordered slice of the machine's components,
// partitioned into wave segments. Registration mirrors Engine.Register;
// NextSegment closes the current segment so subsequent registrations run in
// the next wave. All methods except the conductor-driven runSegment are
// wiring-time only.
type Shard struct {
	name  string
	slots []slot
	wakeTable
	names []string
	// segStart[w] is the first slot of segment w; len == waves+1 once
	// sealed. segHorizon[w] is the earliest cycle segment w can have real
	// work (jump decisions); segNext in the wakeTable is the earliest cycle
	// it must be re-polled (wave skipping) — the two differ for plain
	// (non-wake-aware) idlers, whose idle claims hold for one cycle only.
	segStart   []int
	segHorizon []uint64
	// minWake is the earliest cached wakeAt among parked slots; sweptAt
	// guards the once-per-cycle re-activation sweep.
	minWake uint64
	sweptAt uint64
	// ranAt is cycle+1 of the last cycle any slot ticked (read by the
	// conductor after the wave barrier for the jump decision).
	ranAt uint64

	// eventCleared (serial shards with declared feeds only): plain-idler
	// quiescence claims persist until a declared feeder executes, so those
	// slots park and are re-activated by conductor stamps instead of being
	// re-polled every cycle. feedWaves/feedSerials are the declared feeder
	// bitmasks (all-ones when undeclared: the conservative pre-fusion
	// behavior); plainSlots lists the slots a stamp re-activates.
	eventCleared bool
	feedWaves    uint64
	feedSerials  uint64
	plainSlots   []int32

	// condPark (single-worker conductor only) aliases the conductor's park
	// horizon: a park must lower it so the conductor's sweep-skip check
	// stays conservative.
	condPark *uint64

	// SkippedTicks counts suppressed component ticks (diagnostics).
	SkippedTicks uint64
}

// Register appends a component to the shard's tick order (the sharded
// equivalent of Engine.Register). Idlers that do not implement WakeSetter
// must have time-pure NextWork implementations or be re-armed from a serial
// section; their idle claims are trusted for one cycle only — unless the
// shard is a serial section with declared feeds (FedBy), in which case the
// claims persist until a feeder executes.
func (sh *Shard) Register(name string, t Ticker) {
	if t == nil {
		panic("sim: Register called with nil ticker")
	}
	idler, _ := t.(Idler)
	sh.slots = append(sh.slots, slot{t: t, i: idler})
	sh.wakeAt = append(sh.wakeAt, 0)
	sh.names = append(sh.names, name)
	i := len(sh.slots) - 1
	for len(sh.active) <= i>>6 {
		sh.active = append(sh.active, 0)
	}
	sh.active[i>>6] |= 1 << uint(i&63)
	sh.segOf = append(sh.segOf, int32(len(sh.segStart)-1))
	sh.minWake = 0
	if ws, ok := t.(WakeSetter); ok && idler != nil {
		sh.slots[i].cacheable = true
		ws.SetWaker(&Waker{t: &sh.wakeTable, idx: i})
	}
}

// NextSegment closes the current wave segment: components registered after
// the call tick in the next wave.
func (sh *Shard) NextSegment() {
	sh.segStart = append(sh.segStart, len(sh.slots))
}

// Components reports how many tickers the shard holds.
func (sh *Shard) Components() int { return len(sh.slots) }

// sweep re-activates every parked slot whose cached wake cycle has arrived
// and recomputes the park horizon. It runs at most once per cycle, either
// eagerly from the conductor's prologue (parallel shards) or lazily at the
// shard's first executed segment (serial shards).
//
//ar:hotpath
func (sh *Shard) sweep(c uint64) {
	min := Never
	for i, wa := range sh.wakeAt {
		if sh.active[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		if wa <= c {
			sh.active[i>>6] |= 1 << uint(i&63)
			if s := sh.segOf[i]; sh.segNext[s] > c {
				sh.segNext[s] = c
				if sh.condNeed != nil {
					sh.condNeed[s] = c
				}
			}
		} else if wa < min {
			min = wa
		}
	}
	sh.minWake = min
}

// runSegment advances segment seg by one cycle, skipping components that
// report no work, and refreshes the segment's re-poll (segNext) and work
// (segHorizon) hints. It must only run on the shard's owning worker, or on
// the conductor for serial shards and elided batches.
//
// Parked-slot re-activation is the CALLER's job: parallel shards are swept
// eagerly by the conductor's sweepDue prologue, serial shards lazily by
// runSerial — keeping the entry of this very hot function branch-free.
//
//ar:hotpath
func (sh *Shard) runSegment(seg int, c uint64) {
	lo, hi := sh.segStart[seg], sh.segStart[seg+1]
	// hot: earliest cycle the segment must be re-polled. horizon: earliest
	// cycle it can have real work. Parked slots contribute their cached
	// wake to both — folded only when the segment is going quiet (the
	// common hot-segment call skips that O(slots) pass entirely); plain
	// idlers keep the segment hot every cycle but push the horizon out, so
	// wave polling stays exact while whole-machine jumps remain possible.
	// On event-cleared serial shards plain idlers park like wake-aware
	// ones: a feeder stamp re-activates them.
	hot, horizon := Never, Never
	ticked := false
	loWord, hiWord := lo>>6, (hi-1)>>6
	for w := loWord; w <= hiWord; w++ {
		rangeMask := ^uint64(0)
		if w == loWord {
			rangeMask &= ^uint64(0) << uint(lo&63)
		}
		if w == hiWord && hi&63 != 0 {
			rangeMask &= (1 << uint(hi&63)) - 1
		}
		// The word is re-read every iteration so a component woken by an
		// earlier tick in the same cycle is still visited at its own slot
		// position; done masks positions at or below the last visited bit,
		// so backward wakes wait for the next cycle (Engine.step semantics).
		var done uint64
		for {
			m := sh.active[w] & rangeMask &^ done
			if m == 0 {
				break
			}
			b := m & (-m)
			i := w<<6 + bits.TrailingZeros64(m)
			done |= b<<1 - 1
			s := &sh.slots[i]
			if s.i != nil {
				if wk := s.i.NextWork(c); wk > c {
					if wk < horizon {
						horizon = wk
					}
					if s.parkable {
						if wk > c+1 {
							sh.wakeAt[i] = wk
							sh.active[w] &^= b
							if wk < sh.minWake {
								sh.minWake = wk
								if sh.condPark != nil && wk < *sh.condPark {
									*sh.condPark = wk
								}
							}
						}
						if wk < hot {
							hot = wk
						}
					} else if c+1 < hot {
						// Plain idler: the claim holds for this cycle only;
						// re-poll next cycle.
						hot = c + 1
					}
					sh.SkippedTicks++
					continue
				}
			}
			s.t.Tick(c)
			ticked = true
			hot, horizon = c+1, c+1
		}
	}
	if ticked {
		sh.ranAt = c + 1
	}
	if hot > c+1 {
		// Going quiet: fold the parked slots' cached wakes so the segment
		// re-arms at the right cycle.
		for i := lo; i < hi; i++ {
			if sh.active[i>>6]&(1<<uint(i&63)) == 0 {
				if wa := sh.wakeAt[i]; wa < hot {
					hot = wa
					if wa < horizon {
						horizon = wa
					}
				}
			}
		}
	}
	sh.segNext[seg] = hot
	sh.segHorizon[seg] = horizon
}

// waveEntry is one parallel shard's membership in a wave's scan list.
type waveEntry struct {
	sh  *Shard
	wkr int32
}

// stamp re-arms one serial section when a declared feeder executes: add is
// 0 when the feeder precedes the section in the cycle schedule (same-cycle
// visibility) and 1 when it follows it (next cycle).
type stamp struct {
	sh  *Shard
	add uint64
}

// applyStamps re-activates every stamped section's parked plain idlers and
// lowers its re-poll hint. Over-stamping is safe (the re-poll finds no
// work and re-parks); missing a stamp is not, which is why undeclared
// sections never park their plain idlers in the first place.
//
//ar:hotpath
func applyStamps(list []stamp, c uint64) {
	for k := range list {
		st := &list[k]
		sh := st.sh
		if x := c + st.add; x < sh.segNext[0] {
			sh.segNext[0] = x
		}
		for _, si := range sh.plainSlots {
			w := int(si) >> 6
			b := uint64(1) << uint(si&63)
			if sh.active[w]&b == 0 {
				sh.active[w] |= b
				sh.wakeAt[si] = 0
			}
		}
	}
}

// SchedCounters are the conductor's per-run scheduling counters: how many
// waves executed, how many rode a fused barrier, how many were skipped
// outright, how many barriers were elided by running a single-owner batch
// inline, and how often a barrier wait fell through to a condvar park.
// They are diagnostics of the scheduler, not simulated state — they never
// enter Results, so sharded and sequential runs stay bit-identical.
type SchedCounters struct {
	WavesRun       uint64 `json:"waves_run"`
	WavesFused     uint64 `json:"waves_fused"`
	WavesSkipped   uint64 `json:"waves_skipped"`
	BarriersElided uint64 `json:"barriers_elided"`
	ParkEvents     uint64 `json:"park_events"`
}

// Sharded is the parallel conductor: it owns the clock, a worker pool, the
// parallel shards and the serial sections, and advances the whole machine
// through the per-cycle wave schedule.
type Sharded struct {
	cycle   uint64
	workers int
	par     []*Shard
	serial  []*Shard // serial[w] runs after wave w (nil when unused)
	waves   int
	sealed  bool

	// nw is the effective pool size (conductor included); par shard i runs
	// on worker i % nw.
	nw      int
	started bool

	// Wave hand-off: the conductor publishes (curWave, curEnd, cycle) then
	// bumps gen; workers run their shards' segments for the whole batch
	// and bump doneCnt. Cumulative counts avoid reset races. stop asks
	// workers to exit (published via gen) and exited acknowledges.
	gen     atomic.Uint64
	doneCnt atomic.Uint64
	exited  atomic.Uint64
	expect  uint64
	curWave int
	curEnd  int
	stop    atomic.Bool

	// Adaptive waiting: after a bounded spin, workers park on genCond and
	// the conductor on doneCond (both guarded by mu). sleepers/doneWait
	// tell the signalling side whether a broadcast is needed at all, so
	// the uncontended barrier stays lock-free.
	mu       sync.Mutex
	genCond  *sync.Cond
	doneCond *sync.Cond
	sleepers atomic.Int32
	doneWait atomic.Int32

	// Single-worker fast path: need[w] is the earliest cycle any parallel
	// shard's segment w must be re-polled (the min of their segNext[w]),
	// punched by Waker.Wake and the park sweep; needPark is the earliest
	// parked wake across parallel shards, gating the re-activation sweep.
	need     []uint64
	needPark uint64

	// Feeder stamps, built at Seal from FedBy declarations: stampOnWave[w]
	// is applied when wave w executes, stampOnSerial[v] when serial
	// section v ticks.
	stampOnWave   [][]stamp
	stampOnSerial [][]stamp

	// waveSh[w] lists the parallel shards whose segment w is nonempty,
	// with the owning worker precomputed (built at Seal).
	waveSh [][]waveEntry

	ctr        SchedCounters
	parkEvents atomic.Uint64

	// JumpedCycles counts clock advances beyond one cycle per step
	// (diagnostics; SkippedTicks lives on the shards).
	JumpedCycles uint64
}

// Barrier waits spin for spinOnly iterations, yield until parkAfter, then
// park on a condvar. The spin covers back-to-back waves on dedicated
// cores; the park covers oversubscribed hosts (several sharded runs
// sharing the machine), where spinning a core per barrier is the failure
// mode this replaces.
const (
	spinOnly  = 64
	parkAfter = 512
)

// NewSharded returns a conductor that will run parallel waves on up to
// workers OS threads (the calling goroutine counts as one). workers < 1 is
// clamped to 1.
func NewSharded(workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	return &Sharded{workers: workers}
}

// AddShard appends a parallel tick domain. Wiring-time only.
func (s *Sharded) AddShard(name string) *Shard {
	if s.sealed {
		panic("sim: AddShard after Seal")
	}
	sh := &Shard{name: name, segStart: []int{0}}
	s.par = append(s.par, sh)
	return sh
}

// SerialShard returns the serial section that runs after parallel wave w
// (creating it on first use). Its components tick on the conductor
// goroutine, between the wave-w barrier and wave w+1, in registration
// order — the place for work whose cross-shard order is part of the
// machine definition.
func (s *Sharded) SerialShard(w int) *Shard {
	if s.sealed {
		panic("sim: SerialShard after Seal")
	}
	for len(s.serial) <= w {
		s.serial = append(s.serial, nil)
	}
	if s.serial[w] == nil {
		s.serial[w] = &Shard{name: fmt.Sprintf("serial%d", w), segStart: []int{0}}
	}
	return s.serial[w]
}

// FedBy declares the execution-feed set of serial section v: its plain
// idlers' NextWork results may only become earlier as a consequence of one
// of the listed waves or serial sections executing (or of the section's
// own tick, which is always assumed). In exchange the conductor parks the
// section's plain idlers while quiescent and re-activates them by stamp
// when a feeder executes, instead of re-polling their NextWork every
// cycle. Undeclared sections keep the conservative every-cycle re-poll, so
// FedBy is purely an optimization contract — but a wrong (too small)
// declaration changes simulated results, exactly like a wrong NextWork.
// Empty lists are valid: the section then only ever re-arms via its
// wake-aware slots, timed wakes, or its own ticks. Wiring-time only.
func (s *Sharded) FedBy(v int, waves, serials []int) {
	sh := s.SerialShard(v)
	sh.eventCleared = true
	for _, u := range waves {
		if u < 0 || u > 63 {
			panic("sim: FedBy wave index out of range")
		}
		sh.feedWaves |= 1 << uint(u)
	}
	for _, u := range serials {
		if u < 0 || u > 63 {
			panic("sim: FedBy serial index out of range")
		}
		if u != v {
			sh.feedSerials |= 1 << uint(u)
		}
	}
}

// Seal freezes the wiring: every shard's segment list is padded to the
// common wave count, the per-segment horizons are initialized, and the
// feeder-stamp tables and single-worker aggregates are built.
func (s *Sharded) Seal() {
	if s.sealed {
		panic("sim: Seal called twice")
	}
	s.sealed = true
	for _, sh := range s.par {
		// The open segment (slots after the last NextSegment) counts.
		if n := len(sh.segStart); n > s.waves {
			s.waves = n
		}
	}
	if len(s.serial) > s.waves {
		s.waves = len(s.serial)
	}
	for len(s.serial) < s.waves {
		s.serial = append(s.serial, nil)
	}
	seal := func(sh *Shard, waves int) {
		for len(sh.segStart)-1 < waves {
			sh.segStart = append(sh.segStart, len(sh.slots))
		}
		sh.segNext = make([]uint64, waves)
		sh.segHorizon = make([]uint64, waves)
		// Empty segments can never have work: park them permanently so the
		// per-cycle wave scans skip the shard without ever calling in.
		for w := 0; w < waves; w++ {
			if sh.segStart[w+1] == sh.segStart[w] {
				sh.segNext[w] = Never
				sh.segHorizon[w] = Never
			}
		}
	}
	for _, sh := range s.par {
		seal(sh, s.waves)
	}
	for _, sh := range s.serial {
		if sh != nil {
			seal(sh, 1)
		}
	}
	s.nw = s.workers
	if s.nw > len(s.par) {
		s.nw = len(s.par)
	}
	// More spinning workers than OS-schedulable threads is pure overhead
	// (results are identical for every pool size by construction): clamp to
	// GOMAXPROCS. On a single-CPU host the conductor runs every shard
	// inline, with no goroutines and no atomics on the cycle path.
	if p := runtime.GOMAXPROCS(0); s.nw > p {
		s.nw = p
	}
	if s.nw < 1 {
		s.nw = 1
	}
	s.genCond = sync.NewCond(&s.mu)
	s.doneCond = sync.NewCond(&s.mu)

	// Feeder stamps. Undeclared serial sections are treated as fed by
	// everything: their plain idlers never park (pre-fusion behavior), so
	// they need no stamps, but the all-ones mask blocks fusion across them.
	s.stampOnWave = make([][]stamp, s.waves)
	s.stampOnSerial = make([][]stamp, s.waves)
	for v, ser := range s.serial {
		if ser == nil {
			continue
		}
		if !ser.eventCleared {
			ser.feedWaves = ^uint64(0)
			ser.feedSerials = ^uint64(0)
			continue
		}
		for i := range ser.slots {
			if ser.slots[i].i != nil && !ser.slots[i].cacheable {
				ser.plainSlots = append(ser.plainSlots, int32(i))
			}
		}
		for u := 0; u < s.waves; u++ {
			if ser.feedWaves&(1<<uint(u)) != 0 {
				add := uint64(0)
				if u > v {
					add = 1
				}
				s.stampOnWave[u] = append(s.stampOnWave[u], stamp{sh: ser, add: add})
			}
			if u != v && s.serial[u] != nil && ser.feedSerials&(1<<uint(u)) != 0 {
				add := uint64(0)
				if u > v {
					add = 1
				}
				s.stampOnSerial[u] = append(s.stampOnSerial[u], stamp{sh: ser, add: add})
			}
		}
	}

	// Single-worker aggregates: the need array is shared with every
	// parallel shard's wake table so Waker.Wake and the park sweep punch
	// it directly. Installed only when one goroutine runs everything —
	// with real workers the plain stores would race.
	s.need = make([]uint64, s.waves)
	if s.nw == 1 {
		for _, sh := range s.par {
			sh.condNeed = s.need
			sh.condPark = &s.needPark
		}
	}

	// Per-wave shard lists: only shards with a nonempty segment for the
	// wave, with their owning worker precomputed — the per-cycle scans
	// visit exactly the shards that can matter.
	s.waveSh = make([][]waveEntry, s.waves)
	for w := 0; w < s.waves; w++ {
		for i, sh := range s.par {
			if sh.segStart[w+1] > sh.segStart[w] {
				s.waveSh[w] = append(s.waveSh[w], waveEntry{sh: sh, wkr: int32(i % s.nw)})
			}
		}
	}

	// Fold the per-slot poll branch (`cacheable || shard.eventCleared`)
	// into one precomputed bit.
	mark := func(sh *Shard) {
		for i := range sh.slots {
			sh.slots[i].parkable = sh.slots[i].cacheable || sh.eventCleared
		}
	}
	for _, sh := range s.par {
		mark(sh)
	}
	for _, sh := range s.serial {
		if sh != nil {
			mark(sh)
		}
	}
}

// Cycle reports the current cycle.
func (s *Sharded) Cycle() uint64 { return s.cycle }

// Waves reports the sealed wave count (tests).
func (s *Sharded) Waves() int { return s.waves }

// Workers reports the effective worker-pool size, conductor included.
func (s *Sharded) Workers() int { return s.nw }

// Counters snapshots the scheduling counters.
func (s *Sharded) Counters() SchedCounters {
	c := s.ctr
	c.ParkEvents = s.parkEvents.Load()
	return c
}

// Components reports the total registered tickers across all shards.
func (s *Sharded) Components() int {
	n := 0
	for _, sh := range s.par {
		n += len(sh.slots)
	}
	for _, sh := range s.serial {
		if sh != nil {
			n += len(sh.slots)
		}
	}
	return n
}

// SkippedTicks sums the per-shard suppressed-tick counters (diagnostics).
func (s *Sharded) SkippedTicks() uint64 {
	n := uint64(0)
	for _, sh := range s.par {
		n += sh.SkippedTicks
	}
	for _, sh := range s.serial {
		if sh != nil {
			n += sh.SkippedTicks
		}
	}
	return n
}

// startWorkers launches the pool (workers 1..nw-1; the conductor goroutine
// is worker 0).
func (s *Sharded) startWorkers() {
	if s.started || s.nw <= 1 {
		s.started = true
		return
	}
	s.started = true
	base := s.gen.Load() // captured before any wave can bump gen
	for wk := 1; wk < s.nw; wk++ {
		go s.workerLoop(wk, base)
	}
}

// waitGen waits for the conductor to publish a generation different from
// last and returns it: bounded spin, then cooperative yielding, then a
// condvar park. The sleepers counter tells the conductor whether a
// broadcast is needed; both sides use sequentially consistent atomics, so
// the publish (gen.Add then sleepers.Load) and the park entry
// (sleepers.Add then gen.Load) can never both miss each other.
func (s *Sharded) waitGen(last uint64) uint64 {
	for i := 0; i < parkAfter; i++ {
		if g := s.gen.Load(); g != last {
			return g
		}
		if i >= spinOnly {
			runtime.Gosched()
		}
	}
	s.parkEvents.Add(1)
	s.sleepers.Add(1)
	s.mu.Lock()
	for s.gen.Load() == last {
		s.genCond.Wait()
	}
	s.mu.Unlock()
	s.sleepers.Add(-1)
	return s.gen.Load()
}

// waitDone waits until doneCnt reaches target, with the same
// spin/yield/park ladder as waitGen (doneWait flags the parked conductor
// to the workers' broadcast check).
func (s *Sharded) waitDone(target uint64) {
	for i := 0; i < parkAfter; i++ {
		if s.doneCnt.Load() == target {
			return
		}
		if i >= spinOnly {
			runtime.Gosched()
		}
	}
	s.parkEvents.Add(1)
	s.doneWait.Add(1)
	s.mu.Lock()
	for s.doneCnt.Load() != target {
		s.doneCond.Wait()
	}
	s.mu.Unlock()
	s.doneWait.Add(-1)
}

// wakeDone broadcasts to a parked conductor if there is one (worker side
// of waitDone).
func (s *Sharded) wakeDone() {
	if s.doneWait.Load() != 0 {
		s.mu.Lock()
		s.doneCond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *Sharded) workerLoop(wk int, last uint64) {
	for {
		last = s.waitGen(last)
		if s.stop.Load() {
			s.exited.Add(1)
			s.wakeDone()
			return
		}
		s.runAssigned(wk, s.curWave, s.curEnd, s.cycle)
		s.doneCnt.Add(1)
		s.wakeDone()
	}
}

// runAssigned runs worker wk's shards' segments for the wave batch [w, e)
// at cycle c, skipping shards whose segment re-poll hint is in the future.
// The conductor's prologue sweep has already re-activated due parked
// slots, so segNext alone decides. Shard-major order is sound: a batch
// only exists where the intervening serial sections are inert, and within
// one shard segments still run in wave order.
//
//ar:hotpath
func (s *Sharded) runAssigned(wk, w, e int, c uint64) {
	for i := wk; i < len(s.par); i += s.nw {
		sh := s.par[i]
		for v := w; v < e; v++ {
			if sh.segNext[v] <= c {
				sh.runSegment(v, c)
			}
		}
	}
}

// runBatchInline runs the whole batch on the conductor goroutine — the
// barrier-elision path, taken when every due shard falls on one worker.
//
//ar:hotpath
func (s *Sharded) runBatchInline(w, e int, c uint64) {
	for _, sh := range s.par {
		for v := w; v < e; v++ {
			if sh.segNext[v] <= c {
				sh.runSegment(v, c)
			}
		}
	}
}

// sweepDue re-activates every due parked slot on every parallel shard and
// refolds the conductor's park horizon. Serial shards keep the lazy
// per-segment sweep (their run check still consults minWake directly).
// Running eagerly on the conductor, before any wave is published, is what
// lets the per-shard wave checks drop to a single segNext load.
//
//ar:hotpath
func (s *Sharded) sweepDue(c uint64) {
	min := Never
	for _, sh := range s.par {
		if sh.minWake <= c && sh.sweptAt != c+1 {
			sh.sweptAt = c + 1
			sh.sweep(c)
		}
		if sh.minWake < min {
			min = sh.minWake
		}
	}
	s.needPark = min
}

// runSerial runs serial section v at cycle c if it is due, stamping its
// dependent sections when it ticks.
//
//ar:hotpath
func (s *Sharded) runSerial(v int, c uint64) bool {
	ser := s.serial[v]
	if ser == nil {
		return false
	}
	// Lazy park sweep (runSegment itself no longer sweeps): after it, due
	// work from arrived wakes is fully reflected in segNext.
	if ser.minWake <= c && ser.sweptAt != c+1 {
		ser.sweptAt = c + 1
		ser.sweep(c)
	}
	if ser.segNext[0] <= c {
		ser.runSegment(0, c)
		if ser.ranAt == c+1 {
			applyStamps(s.stampOnSerial[v], c)
			return true
		}
	}
	return false
}

// scanWave counts the parallel shards due for wave w at cycle c and
// reports the worker owning them: -1 when none is due, the worker index
// when they all fall on one worker, -2 when they spread across workers.
//
//ar:hotpath
func (s *Sharded) scanWave(w int, c uint64) (hot, owner int) {
	owner = -1
	for _, en := range s.waveSh[w] {
		if en.sh.segNext[w] <= c {
			hot++
			o := int(en.wkr)
			if owner == -1 {
				owner = o
			} else if owner != o {
				owner = -2
			}
		}
	}
	return hot, owner
}

// serialInert reports whether serial section v provably has no work at
// cycle c and cannot acquire any from the executing batch that started at
// wave wStart: nothing is due now, and its declared feeders exclude every
// wave in [wStart, v]. Waves after v feed it for the next cycle only
// (their stamp carries add=1 and is applied after the batch), so they
// never block fusion. An executing wave can wake later segments of its own
// shard, which is why every batch wave — hot at scan time or not — counts
// as potentially executing.
//
//ar:hotpath
func (s *Sharded) serialInert(v, wStart int, c uint64) bool {
	ser := s.serial[v]
	if ser == nil {
		return true
	}
	if ser.segNext[0] <= c || ser.minWake <= c {
		return false
	}
	mask := (uint64(1)<<uint(v+1) - 1) &^ (uint64(1)<<uint(wStart) - 1)
	return ser.feedWaves&mask == 0
}

// stepSeq advances one cycle with a single effective worker: no barriers,
// no atomics, and per-wave need aggregates so a cold wave costs one load.
// Reports whether any component ticked (jump decision).
//
//ar:hotpath
func (s *Sharded) stepSeq(c uint64) bool {
	ticked := false
	if s.needPark <= c {
		s.sweepDue(c)
	}
	for w := 0; w < s.waves; w++ {
		if s.need[w] <= c {
			min := Never
			due := false
			for _, en := range s.waveSh[w] {
				sh := en.sh
				if sh.segNext[w] <= c {
					due = true
					sh.runSegment(w, c)
					if sh.ranAt == c+1 {
						ticked = true
					}
				}
				if sh.segNext[w] < min {
					min = sh.segNext[w]
				}
			}
			s.need[w] = min
			if due {
				s.ctr.WavesRun++
				applyStamps(s.stampOnWave[w], c)
			} else {
				s.ctr.WavesSkipped++
			}
		} else {
			s.ctr.WavesSkipped++
		}
		if s.runSerial(w, c) {
			ticked = true
		}
	}
	return ticked
}

// stepPar advances one cycle on the worker pool: waves are batched across
// provably inert serial sections (fusion, one barrier per batch) and a
// batch whose due shards all fall on one worker runs inline on the
// conductor (elision, no barrier).
//
//ar:hotpath
func (s *Sharded) stepPar(c uint64) bool {
	ticked := false
	s.sweepDue(c)
	w := 0
	for w < s.waves {
		hot, owner := s.scanWave(w, c)
		if hot == 0 {
			s.ctr.WavesSkipped++
			if s.runSerial(w, c) {
				ticked = true
			}
			w++
			continue
		}
		e := w + 1
		hotWaves := 1
		for e < s.waves && s.serialInert(e-1, w, c) {
			h2, o2 := s.scanWave(e, c)
			if h2 > 0 {
				hotWaves++
				if o2 == -2 || (owner != -1 && o2 != owner) {
					owner = -2
				} else if owner == -1 {
					owner = o2
				}
			}
			e++
		}
		if owner >= 0 {
			s.runBatchInline(w, e, c)
			s.ctr.BarriersElided++
		} else {
			s.curWave, s.curEnd = w, e
			s.gen.Add(1)
			if s.sleepers.Load() != 0 {
				s.mu.Lock()
				s.genCond.Broadcast()
				s.mu.Unlock()
			}
			s.runAssigned(0, w, e, c)
			s.expect += uint64(s.nw - 1)
			s.waitDone(s.expect) //ar:exempt(hotpath) one barrier wait per batch, amortized over every packet in the batch
		}
		s.ctr.WavesRun += uint64(hotWaves)
		s.ctr.WavesSkipped += uint64(e - w - hotWaves)
		s.ctr.WavesFused += uint64(hotWaves - 1)
		for v := w; v < e; v++ {
			applyStamps(s.stampOnWave[v], c)
			if !ticked {
				for _, en := range s.waveSh[v] {
					if en.sh.ranAt == c+1 {
						ticked = true
						break
					}
				}
			}
		}
		if s.runSerial(e-1, c) {
			ticked = true
		}
		w = e
	}
	return ticked
}

// step advances the whole machine one cycle and reports the earliest cycle
// at which any component has future work; the return value exceeds the
// post-increment clock only when nothing ticked at all (Engine.step
// contract), in which case the clock may jump.
//
//ar:hotpath
func (s *Sharded) step() uint64 {
	c := s.cycle
	var ticked bool
	if s.nw == 1 {
		ticked = s.stepSeq(c)
	} else {
		ticked = s.stepPar(c)
	}
	s.cycle++
	if ticked {
		return s.cycle
	}
	// Fully idle cycle: fold every shard's horizon for the jump decision.
	next := Never
	for _, sh := range s.par {
		next = foldHorizon(sh, next)
	}
	for _, sh := range s.serial {
		if sh != nil {
			next = foldHorizon(sh, next)
		}
	}
	return next
}

// foldHorizon accumulates a shard's work horizon into the conductor's jump
// decision.
func foldHorizon(sh *Shard, next uint64) uint64 {
	if sh.minWake < next {
		next = sh.minWake
	}
	for _, h := range sh.segHorizon {
		if h < next {
			next = h
		}
	}
	return next
}

// Step advances the machine by exactly one cycle.
func (s *Sharded) Step() { s.step() }

// RunUntil steps the machine until done() reports true or maxCycles
// elapse, jumping fully quiescent stretches exactly like Engine.RunUntil.
// Workers are started on first use and parked on return. The timeout error
// is a *TimeoutError identical to the sequential kernel's for the same
// machine state.
func (s *Sharded) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	return s.RunUntilCtx(context.Background(), done, maxCycles)
}

// RunUntilCtx is RunUntil with cooperative cancellation on the same
// amortized stride as Engine.RunUntilCtx; the context is polled only on the
// conductor goroutine, between steps, so workers never observe a torn
// abandon — park() still fences every worker out before return.
func (s *Sharded) RunUntilCtx(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	if !s.sealed {
		panic("sim: RunUntil before Seal")
	}
	s.startWorkers()
	defer s.park()
	start := s.cycle
	poll := cancelStride
	for !done() {
		if s.cycle-start >= maxCycles {
			return s.cycle - start, s.timeoutError(maxCycles)
		}
		if poll--; poll <= 0 {
			poll = cancelStride
			if err := ctx.Err(); err != nil {
				return s.cycle - start, fmt.Errorf("sim: run abandoned at cycle %d: %w", s.cycle, err)
			}
		}
		wake := s.step()
		if wake > s.cycle {
			// Nothing ticked and nothing will until wake: fast-forward
			// (Engine.RunUntil semantics, including budget saturation).
			limit := start + maxCycles
			if limit < start {
				limit = Never
			}
			if wake >= limit {
				if limit > s.cycle {
					s.JumpedCycles += limit - s.cycle
					s.cycle = limit
				}
				return s.cycle - start, s.timeoutError(maxCycles)
			}
			s.JumpedCycles += wake - s.cycle
			s.cycle = wake
		}
	}
	return s.cycle - start, nil
}

// park stops the worker pool and waits for every worker to acknowledge, so
// no goroutine is left touching shard state; a later RunUntil restarts the
// pool.
func (s *Sharded) park() {
	if s.nw <= 1 || !s.started {
		s.started = false
		return
	}
	target := s.exited.Load() + uint64(s.nw-1)
	s.stop.Store(true)
	s.gen.Add(1)
	if s.sleepers.Load() != 0 {
		s.mu.Lock()
		s.genCond.Broadcast()
		s.mu.Unlock()
	}
	for i := 0; ; i++ {
		if s.exited.Load() == target {
			break
		}
		if i >= parkAfter {
			s.doneWait.Add(1)
			s.mu.Lock()
			for s.exited.Load() != target {
				s.doneCond.Wait()
			}
			s.mu.Unlock()
			s.doneWait.Add(-1)
			break
		}
		if i >= spinOnly {
			runtime.Gosched()
		}
	}
	s.stop.Store(false)
	s.started = false
}
