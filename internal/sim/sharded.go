// Sharded simulation kernel: the machine is partitioned into shard tick
// domains that advance through a fixed per-cycle schedule of parallel waves
// separated by barriers, with serial sections between waves for work whose
// sequential order is part of the machine definition (drains into shared
// queues, staged cross-shard commits).
//
// The conductor guarantees bit-identical results to the lockstep Engine by
// construction (DESIGN.md "Sharded kernel"):
//
//   - Within a shard, components tick in registration order — the exact
//     projection of the sequential tick order onto the shard.
//   - Across shards within one wave, components may only touch shard-local
//     state or append to staging buffers committed later; every cross-shard
//     interaction with same-cycle visibility in the sequential kernel runs
//     in a serial section at its sequential position.
//   - The idle protocol (Idler/WakeSetter/Waker) is per-shard, preserving
//     the Engine's semantics slot by slot, and the conductor advances the
//     clock past globally quiescent stretches in one step exactly like the
//     Engine. A wave is skipped outright — no barrier paid — while every
//     shard's cached segment horizon for it is in the future.
//
// Wake discipline: during a parallel wave a component may only Wake
// components of its own shard; serial sections (which run with every worker
// parked at a barrier) may wake any shard. The engine-side wake state is
// per-shard, so this discipline keeps the kernel free of data races, and
// the race detector verifies it in the sharded test suite.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Shard is one tick domain: an ordered slice of the machine's components,
// partitioned into wave segments. Registration mirrors Engine.Register;
// NextSegment closes the current segment so subsequent registrations run in
// the next wave. All methods except the conductor-driven runSegment are
// wiring-time only.
type Shard struct {
	name  string
	slots []slot
	wakeTable
	names []string
	// segStart[w] is the first slot of segment w; len == waves+1 once
	// sealed. segHorizon[w] is the earliest cycle segment w can have real
	// work (jump decisions); segNext in the wakeTable is the earliest cycle
	// it must be re-polled (wave skipping) — the two differ for plain
	// (non-wake-aware) idlers, whose idle claims hold for one cycle only.
	segStart   []int
	segHorizon []uint64
	// minWake is the earliest cached wakeAt among parked slots; sweptAt
	// guards the once-per-cycle re-activation sweep.
	minWake uint64
	sweptAt uint64
	// ranAt is cycle+1 of the last cycle any slot ticked (read by the
	// conductor after the wave barrier for the jump decision).
	ranAt uint64

	// SkippedTicks counts suppressed component ticks (diagnostics).
	SkippedTicks uint64
}

// Register appends a component to the shard's tick order (the sharded
// equivalent of Engine.Register). Idlers that do not implement WakeSetter
// must have time-pure NextWork implementations or be re-armed from a serial
// section; their idle claims are trusted for one cycle only.
func (sh *Shard) Register(name string, t Ticker) {
	if t == nil {
		panic("sim: Register called with nil ticker")
	}
	idler, _ := t.(Idler)
	sh.slots = append(sh.slots, slot{t: t, i: idler})
	sh.wakeAt = append(sh.wakeAt, 0)
	sh.names = append(sh.names, name)
	i := len(sh.slots) - 1
	for len(sh.active) <= i>>6 {
		sh.active = append(sh.active, 0)
	}
	sh.active[i>>6] |= 1 << uint(i&63)
	sh.segOf = append(sh.segOf, int32(len(sh.segStart)-1))
	sh.minWake = 0
	if ws, ok := t.(WakeSetter); ok && idler != nil {
		sh.slots[i].cacheable = true
		ws.SetWaker(&Waker{t: &sh.wakeTable, idx: i})
	}
}

// NextSegment closes the current wave segment: components registered after
// the call tick in the next wave.
func (sh *Shard) NextSegment() {
	sh.segStart = append(sh.segStart, len(sh.slots))
}

// Components reports how many tickers the shard holds.
func (sh *Shard) Components() int { return len(sh.slots) }

// sweep re-activates every parked slot whose cached wake cycle has arrived
// and recomputes the park horizon. It runs at most once per cycle, at the
// shard's first executed segment.
//
//ar:hotpath
func (sh *Shard) sweep(c uint64) {
	min := Never
	for i, wa := range sh.wakeAt {
		if sh.active[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		if wa <= c {
			sh.active[i>>6] |= 1 << uint(i&63)
			if s := sh.segOf[i]; sh.segNext[s] > c {
				sh.segNext[s] = c
			}
		} else if wa < min {
			min = wa
		}
	}
	sh.minWake = min
}

// runSegment advances segment seg by one cycle, skipping components that
// report no work, and refreshes the segment's re-poll (segNext) and work
// (segHorizon) hints. It must only run on the shard's owning worker, or on
// the conductor for serial shards.
//
//ar:hotpath
func (sh *Shard) runSegment(seg int, c uint64) {
	if c >= sh.minWake && sh.sweptAt != c+1 {
		sh.sweptAt = c + 1
		sh.sweep(c)
	}
	lo, hi := sh.segStart[seg], sh.segStart[seg+1]
	// hot: earliest cycle the segment must be re-polled. horizon: earliest
	// cycle it can have real work. Parked slots contribute their cached
	// wake to both — folded only when the segment is going quiet (the
	// common hot-segment call skips that O(slots) pass entirely); plain
	// idlers keep the segment hot every cycle but push the horizon out, so
	// wave polling stays exact while whole-machine jumps remain possible.
	hot, horizon := Never, Never
	loWord, hiWord := lo>>6, (hi-1)>>6
	for w := loWord; w <= hiWord; w++ {
		rangeMask := ^uint64(0)
		if w == loWord {
			rangeMask &= ^uint64(0) << uint(lo&63)
		}
		if w == hiWord && hi&63 != 0 {
			rangeMask &= (1 << uint(hi&63)) - 1
		}
		// The word is re-read every iteration so a component woken by an
		// earlier tick in the same cycle is still visited at its own slot
		// position; done masks positions at or below the last visited bit,
		// so backward wakes wait for the next cycle (Engine.step semantics).
		var done uint64
		for {
			m := sh.active[w] & rangeMask &^ done
			if m == 0 {
				break
			}
			b := m & (-m)
			i := w<<6 + bits.TrailingZeros64(m)
			done |= b<<1 - 1
			s := &sh.slots[i]
			if s.i != nil {
				if wk := s.i.NextWork(c); wk > c {
					if wk < horizon {
						horizon = wk
					}
					if s.cacheable {
						if wk > c+1 {
							sh.wakeAt[i] = wk
							sh.active[w] &^= b
							if wk < sh.minWake {
								sh.minWake = wk
							}
						}
						if wk < hot {
							hot = wk
						}
					} else if c+1 < hot {
						// Plain idler: the claim holds for this cycle only;
						// re-poll next cycle.
						hot = c + 1
					}
					sh.SkippedTicks++
					continue
				}
			}
			s.t.Tick(c)
			sh.ranAt = c + 1
			hot, horizon = c+1, c+1
		}
	}
	if hot > c+1 {
		// Going quiet: fold the parked slots' cached wakes so the segment
		// re-arms at the right cycle.
		for i := lo; i < hi; i++ {
			if sh.active[i>>6]&(1<<uint(i&63)) == 0 {
				if wa := sh.wakeAt[i]; wa < hot {
					hot = wa
					if wa < horizon {
						horizon = wa
					}
				}
			}
		}
	}
	sh.segNext[seg] = hot
	sh.segHorizon[seg] = horizon
}

// Sharded is the parallel conductor: it owns the clock, a worker pool, the
// parallel shards and the serial sections, and advances the whole machine
// through the per-cycle wave schedule.
type Sharded struct {
	cycle   uint64
	workers int
	par     []*Shard
	serial  []*Shard // serial[w] runs after wave w (nil when unused)
	waves   int
	sealed  bool

	// nw is the effective pool size (conductor included); par shard i runs
	// on worker i % nw.
	nw      int
	started bool

	// Wave hand-off: the conductor publishes (curWave, cycle) then bumps
	// gen; workers run their shards and bump doneCnt. Cumulative counts
	// avoid reset races. stop asks workers to exit (published via gen) and
	// exited acknowledges.
	gen     atomic.Uint64
	doneCnt atomic.Uint64
	exited  atomic.Uint64
	expect  uint64
	curWave int
	stop    atomic.Bool

	// JumpedCycles counts clock advances beyond one cycle per step
	// (diagnostics; SkippedTicks lives on the shards).
	JumpedCycles uint64
}

// NewSharded returns a conductor that will run parallel waves on up to
// workers OS threads (the calling goroutine counts as one). workers < 1 is
// clamped to 1.
func NewSharded(workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	return &Sharded{workers: workers}
}

// AddShard appends a parallel tick domain. Wiring-time only.
func (s *Sharded) AddShard(name string) *Shard {
	if s.sealed {
		panic("sim: AddShard after Seal")
	}
	sh := &Shard{name: name, segStart: []int{0}}
	s.par = append(s.par, sh)
	return sh
}

// SerialShard returns the serial section that runs after parallel wave w
// (creating it on first use). Its components tick on the conductor
// goroutine, between the wave-w barrier and wave w+1, in registration
// order — the place for work whose cross-shard order is part of the
// machine definition.
func (s *Sharded) SerialShard(w int) *Shard {
	if s.sealed {
		panic("sim: SerialShard after Seal")
	}
	for len(s.serial) <= w {
		s.serial = append(s.serial, nil)
	}
	if s.serial[w] == nil {
		s.serial[w] = &Shard{name: fmt.Sprintf("serial%d", w), segStart: []int{0}}
	}
	return s.serial[w]
}

// Seal freezes the wiring: every shard's segment list is padded to the
// common wave count and the per-segment horizons are initialized.
func (s *Sharded) Seal() {
	if s.sealed {
		panic("sim: Seal called twice")
	}
	s.sealed = true
	for _, sh := range s.par {
		// The open segment (slots after the last NextSegment) counts.
		if n := len(sh.segStart); n > s.waves {
			s.waves = n
		}
	}
	if len(s.serial) > s.waves {
		s.waves = len(s.serial)
	}
	for len(s.serial) < s.waves {
		s.serial = append(s.serial, nil)
	}
	seal := func(sh *Shard, waves int) {
		for len(sh.segStart)-1 < waves {
			sh.segStart = append(sh.segStart, len(sh.slots))
		}
		sh.segNext = make([]uint64, waves)
		sh.segHorizon = make([]uint64, waves)
	}
	for _, sh := range s.par {
		seal(sh, s.waves)
	}
	for _, sh := range s.serial {
		if sh != nil {
			seal(sh, 1)
		}
	}
	s.nw = s.workers
	if s.nw > len(s.par) {
		s.nw = len(s.par)
	}
	// More spinning workers than OS-schedulable threads is pure overhead
	// (results are identical for every pool size by construction): clamp to
	// GOMAXPROCS. On a single-CPU host the conductor runs every shard
	// inline, with no goroutines and no atomics on the cycle path.
	if p := runtime.GOMAXPROCS(0); s.nw > p {
		s.nw = p
	}
	if s.nw < 1 {
		s.nw = 1
	}
}

// Cycle reports the current cycle.
func (s *Sharded) Cycle() uint64 { return s.cycle }

// Waves reports the sealed wave count (tests).
func (s *Sharded) Waves() int { return s.waves }

// Workers reports the effective worker-pool size, conductor included.
func (s *Sharded) Workers() int { return s.nw }

// Components reports the total registered tickers across all shards.
func (s *Sharded) Components() int {
	n := 0
	for _, sh := range s.par {
		n += len(sh.slots)
	}
	for _, sh := range s.serial {
		if sh != nil {
			n += len(sh.slots)
		}
	}
	return n
}

// SkippedTicks sums the per-shard suppressed-tick counters (diagnostics).
func (s *Sharded) SkippedTicks() uint64 {
	n := uint64(0)
	for _, sh := range s.par {
		n += sh.SkippedTicks
	}
	for _, sh := range s.serial {
		if sh != nil {
			n += sh.SkippedTicks
		}
	}
	return n
}

// startWorkers launches the pool (workers 1..nw-1; the conductor goroutine
// is worker 0).
func (s *Sharded) startWorkers() {
	if s.started || s.nw <= 1 {
		s.started = true
		return
	}
	s.started = true
	base := s.gen.Load() // captured before any wave can bump gen
	for wk := 1; wk < s.nw; wk++ {
		go s.workerLoop(wk, base)
	}
}

// spinWait spins on cond with a Gosched fallback so progress is guaranteed
// even when GOMAXPROCS is smaller than the worker count.
func spinWait(cond func() bool) {
	for i := 0; ; i++ {
		if cond() {
			return
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
}

func (s *Sharded) workerLoop(wk int, last uint64) {
	for {
		spinWait(func() bool { return s.gen.Load() != last })
		last = s.gen.Load()
		if s.stop.Load() {
			s.exited.Add(1)
			return
		}
		s.runAssigned(wk, s.curWave, s.cycle)
		s.doneCnt.Add(1)
	}
}

// runAssigned runs worker wk's shards' segments for wave w at cycle c,
// skipping shards whose segment re-poll hint is in the future.
//
//ar:hotpath
func (s *Sharded) runAssigned(wk, w int, c uint64) {
	for i := wk; i < len(s.par); i += s.nw {
		sh := s.par[i]
		if sh.segNext[w] <= c || sh.minWake <= c {
			sh.runSegment(w, c)
		}
	}
}

// runWave executes parallel wave w at cycle c with a full barrier, unless
// no shard needs polling for it this cycle, in which case it returns
// without synchronizing at all.
//
//ar:hotpath
func (s *Sharded) runWave(w int, c uint64) {
	hasWork := false
	for _, sh := range s.par {
		if sh.segNext[w] <= c || sh.minWake <= c {
			hasWork = true
			break
		}
	}
	if !hasWork {
		return
	}
	if s.nw == 1 {
		s.runAssigned(0, w, c)
		return
	}
	s.curWave = w
	s.gen.Add(1)
	s.runAssigned(0, w, c)
	s.expect += uint64(s.nw - 1)
	spinWait(func() bool { return s.doneCnt.Load() == s.expect }) //ar:exempt(hotpath) one spin predicate per wave barrier, amortized over every packet in the wave
}

// step advances the whole machine one cycle and reports the earliest cycle
// at which any component has future work; the return value exceeds the
// post-increment clock only when nothing ticked at all (Engine.step
// contract), in which case the clock may jump.
//
//ar:hotpath
func (s *Sharded) step() uint64 {
	c := s.cycle
	for w := 0; w < s.waves; w++ {
		s.runWave(w, c)
		if ser := s.serial[w]; ser != nil && (ser.segNext[0] <= c || ser.minWake <= c) {
			ser.runSegment(0, c)
		}
	}
	s.cycle++
	ran := false
	next := Never
	for _, sh := range s.par {
		ran, next = foldShard(sh, c, ran, next)
	}
	for _, sh := range s.serial {
		if sh != nil {
			ran, next = foldShard(sh, c, ran, next)
		}
	}
	if ran {
		return s.cycle
	}
	return next
}

// foldShard accumulates a shard's ran flag and work horizon into the
// conductor's jump decision.
func foldShard(sh *Shard, c uint64, ran bool, next uint64) (bool, uint64) {
	if sh.ranAt == c+1 {
		ran = true
	}
	if sh.minWake < next {
		next = sh.minWake
	}
	for _, h := range sh.segHorizon {
		if h < next {
			next = h
		}
	}
	return ran, next
}

// Step advances the machine by exactly one cycle.
func (s *Sharded) Step() { s.step() }

// RunUntil steps the machine until done() reports true or maxCycles
// elapse, jumping fully quiescent stretches exactly like Engine.RunUntil.
// Workers are started on first use and parked on return. The timeout error
// is a *TimeoutError identical to the sequential kernel's for the same
// machine state.
func (s *Sharded) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	return s.RunUntilCtx(context.Background(), done, maxCycles)
}

// RunUntilCtx is RunUntil with cooperative cancellation on the same
// amortized stride as Engine.RunUntilCtx; the context is polled only on the
// conductor goroutine, between steps, so workers never observe a torn
// abandon — park() still fences every worker out before return.
func (s *Sharded) RunUntilCtx(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	if !s.sealed {
		panic("sim: RunUntil before Seal")
	}
	s.startWorkers()
	defer s.park()
	start := s.cycle
	poll := cancelStride
	for !done() {
		if s.cycle-start >= maxCycles {
			return s.cycle - start, s.timeoutError(maxCycles)
		}
		if poll--; poll <= 0 {
			poll = cancelStride
			if err := ctx.Err(); err != nil {
				return s.cycle - start, fmt.Errorf("sim: run abandoned at cycle %d: %w", s.cycle, err)
			}
		}
		wake := s.step()
		if wake > s.cycle {
			// Nothing ticked and nothing will until wake: fast-forward
			// (Engine.RunUntil semantics, including budget saturation).
			limit := start + maxCycles
			if limit < start {
				limit = Never
			}
			if wake >= limit {
				if limit > s.cycle {
					s.JumpedCycles += limit - s.cycle
					s.cycle = limit
				}
				return s.cycle - start, s.timeoutError(maxCycles)
			}
			s.JumpedCycles += wake - s.cycle
			s.cycle = wake
		}
	}
	return s.cycle - start, nil
}

// park stops the worker pool and waits for every worker to acknowledge, so
// no goroutine is left touching shard state; a later RunUntil restarts the
// pool.
func (s *Sharded) park() {
	if s.nw <= 1 || !s.started {
		s.started = false
		return
	}
	target := s.exited.Load() + uint64(s.nw-1)
	s.stop.Store(true)
	s.gen.Add(1)
	spinWait(func() bool { return s.exited.Load() == target })
	s.stop.Store(false)
	s.started = false
}
