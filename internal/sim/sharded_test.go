package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// pinger is a test component: every interval cycles it increments its
// counter and, optionally, sends a unit of work to a peer mailbox with a
// fixed delivery latency (staged through the harness below when the peer
// lives in another shard). It is wake-aware.
type pinger struct {
	interval uint64
	until    uint64
	count    uint64
	inbox    []uint64 // delivery cycles, drained on tick
	recv     uint64
	waker    *Waker
	out      func(cycle uint64) // nil: no sends
}

func (p *pinger) SetWaker(w *Waker) { p.waker = w }

func (p *pinger) deliver(at uint64) {
	p.inbox = append(p.inbox, at)
	p.waker.Wake()
}

func (p *pinger) NextWork(now uint64) uint64 {
	next := Never
	if now < p.until {
		if r := now % p.interval; r == 0 {
			return now
		} else if now+p.interval-r < next {
			next = now + p.interval - r
		}
	}
	for _, at := range p.inbox {
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}

func (p *pinger) Tick(cycle uint64) {
	if cycle < p.until && cycle%p.interval == 0 {
		p.count++
		if p.out != nil {
			p.out(cycle)
		}
	}
	kept := p.inbox[:0]
	for _, at := range p.inbox {
		if at <= cycle {
			p.recv++
		} else {
			kept = append(kept, at)
		}
	}
	p.inbox = kept
}

// mailStage is a cross-shard staging buffer: sends append during parallel
// waves (each sender owns its own slice entry), and the serial commit
// delivers them in deterministic sender order.
type mailStage struct {
	perSender [][]uint64 // delivery cycles staged by each sender
	dest      []*pinger  // destination per sender
}

func (ms *mailStage) Tick(cycle uint64) {
	for i, list := range ms.perSender {
		for _, at := range list {
			ms.dest[i].deliver(at)
		}
		ms.perSender[i] = ms.perSender[i][:0]
	}
}

func (ms *mailStage) NextWork(now uint64) uint64 {
	for _, list := range ms.perSender {
		if len(list) > 0 {
			return now
		}
	}
	return Never
}

// buildMachine wires n pingers (pinger i sends to pinger (i+1)%n with
// latency 3) plus the staging commit, onto either the lockstep engine or a
// sharded conductor with the given shard and worker counts. It returns the
// pingers and a runner.
func buildMachine(n, shards, workers int, until uint64) ([]*pinger, func(max uint64) uint64) {
	ps := make([]*pinger, n)
	ms := &mailStage{perSender: make([][]uint64, n), dest: make([]*pinger, n)}
	for i := range ps {
		ps[i] = &pinger{interval: uint64(2 + i%3), until: until}
	}
	for i := range ps {
		i := i
		ms.dest[i] = ps[(i+1)%n]
		ps[i].out = func(cycle uint64) {
			ms.perSender[i] = append(ms.perSender[i], cycle+3)
		}
	}
	if shards == 0 {
		e := NewEngine()
		for i, p := range ps {
			e.Register("p", p)
			_ = i
		}
		e.Register("commit", ms)
		return ps, func(max uint64) uint64 {
			cycles, _ := e.RunUntil(func() bool {
				for _, p := range ps {
					if len(p.inbox) > 0 || p.NextWork(e.Cycle()) != Never {
						return false
					}
				}
				return ms.NextWork(e.Cycle()) == Never
			}, max)
			return cycles
		}
	}
	c := NewSharded(workers)
	shs := make([]*Shard, shards)
	for g := range shs {
		shs[g] = c.AddShard("g")
	}
	for i, p := range ps {
		shs[i%shards].Register("p", p)
	}
	c.SerialShard(0).Register("commit", ms)
	c.Seal()
	return ps, func(max uint64) uint64 {
		cycles, _ := c.RunUntil(func() bool {
			for _, p := range ps {
				if len(p.inbox) > 0 || p.NextWork(c.Cycle()) != Never {
					return false
				}
			}
			return ms.NextWork(c.Cycle()) == Never
		}, max)
		return cycles
	}
}

// TestShardedMatchesEngine checks that the sharded conductor produces the
// exact per-component state and final cycle of the lockstep engine across
// shard and worker counts (including workers > GOMAXPROCS).
func TestShardedMatchesEngine(t *testing.T) {
	const n = 13
	const until = 200
	ref, runRef := buildMachine(n, 0, 0, until)
	refCycles := runRef(100000)
	for _, shards := range []int{1, 2, 4, 13} {
		for _, workers := range []int{1, 2, 4, 8} {
			got, run := buildMachine(n, shards, workers, until)
			cycles := run(100000)
			if cycles != refCycles {
				t.Fatalf("shards=%d workers=%d: cycles=%d want %d", shards, workers, cycles, refCycles)
			}
			for i := range ref {
				if got[i].count != ref[i].count || got[i].recv != ref[i].recv {
					t.Fatalf("shards=%d workers=%d pinger %d: count/recv = %d/%d, want %d/%d",
						shards, workers, i, got[i].count, got[i].recv, ref[i].count, ref[i].recv)
				}
			}
		}
	}
}

// TestShardedJumpsIdleStretches checks that a machine with sparse timed
// work advances the clock in jumps rather than cycle-by-cycle.
func TestShardedJumpsIdleStretches(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	p := &pinger{interval: 1000, until: 5000}
	a.Register("p", p)
	c.Seal()
	cycles, err := c.RunUntil(func() bool { return p.count == 5 }, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || p.count != 5 {
		t.Fatalf("cycles=%d count=%d", cycles, p.count)
	}
	if c.JumpedCycles < 3000 {
		t.Fatalf("JumpedCycles = %d, want most of the idle stretch skipped", c.JumpedCycles)
	}
}

// TestShardedTimeoutParity checks the deadlock timeout contract matches the
// engine's: both kernels must return the identical structured *TimeoutError
// for the same machine — same message, same pending-work snapshot.
func TestShardedTimeoutParity(t *testing.T) {
	build := func(reg func(name string, tk Ticker)) {
		reg("busy", TickFunc(func(uint64) {}))
		reg("timed", &pinger{interval: 1000, until: 1 << 50})
	}
	c := NewSharded(1)
	a := c.AddShard("a")
	build(a.Register)
	c.Seal()
	_, err := c.RunUntil(func() bool { return false }, 100)
	if err == nil {
		t.Fatal("want timeout error")
	}
	e := NewEngine()
	build(e.Register)
	_, eerr := e.RunUntil(func() bool { return false }, 100)
	if eerr == nil || err.Error() != eerr.Error() {
		t.Fatalf("timeout error mismatch: sharded %q engine %q", err, eerr)
	}
	var st, et *TimeoutError
	if !errors.As(err, &st) || !errors.As(eerr, &et) {
		t.Fatalf("timeout errors are not *TimeoutError: %T / %T", err, eerr)
	}
	if st.MaxCycles != 100 || et.MaxCycles != 100 {
		t.Fatalf("MaxCycles = %d/%d, want 100", st.MaxCycles, et.MaxCycles)
	}
	if !reflect.DeepEqual(st.Pending, et.Pending) {
		t.Fatalf("pending snapshots differ: sharded %+v engine %+v", st.Pending, et.Pending)
	}
	// The always-busy TickFunc must be named as an immediate suspect and the
	// timed pinger with its future wake hint.
	if len(st.Pending) != 2 || st.Pending[0].Name != "busy" || st.Pending[1].Name != "timed" {
		t.Fatalf("pending = %+v, want [busy timed]", st.Pending)
	}
	if st.Pending[0].NextWork > st.Cycle {
		t.Fatalf("busy component reported future work %d at cycle %d", st.Pending[0].NextWork, st.Cycle)
	}
	if st.Pending[1].NextWork <= st.Cycle {
		t.Fatalf("timed component reported immediate work %d at cycle %d", st.Pending[1].NextWork, st.Cycle)
	}
}

// TestShardedCancellation checks a cancelled context abandons a sharded run
// within the amortized poll stride, with the workers parked on return.
func TestShardedCancellation(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	a.Register("busy", TickFunc(func(uint64) {}))
	c.Seal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cycles, err := c.RunUntilCtx(ctx, func() bool { return false }, Never)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cycles > 2*cancelStride {
		t.Fatalf("ran %d cycles after cancellation, want <= one poll stride", cycles)
	}
}

// TestShardedWaveSkipping checks that a multi-wave machine with one hot
// segment does not pay for the idle waves (no ticks are attempted there).
func TestShardedWaveSkipping(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	b := c.AddShard("b")
	hot := &pinger{interval: 1, until: 100}
	a.Register("hot", hot)
	a.NextSegment()
	b.NextSegment()
	cold := &pinger{interval: 1, until: 0} // never has work
	b.Register("cold", cold)
	c.Seal()
	if c.Waves() != 2 {
		t.Fatalf("waves = %d", c.Waves())
	}
	if _, err := c.RunUntil(func() bool { return hot.count == 100 }, 10000); err != nil {
		t.Fatal(err)
	}
	if cold.count != 0 {
		t.Fatalf("cold ticked %d times", cold.count)
	}
}
