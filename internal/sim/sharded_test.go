package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
)

// pinger is a test component: every interval cycles it increments its
// counter and, optionally, sends a unit of work to a peer mailbox with a
// fixed delivery latency (staged through the harness below when the peer
// lives in another shard). It is wake-aware.
type pinger struct {
	interval uint64
	until    uint64
	count    uint64
	inbox    []uint64 // delivery cycles, drained on tick
	recv     uint64
	waker    *Waker
	out      func(cycle uint64) // nil: no sends
}

func (p *pinger) SetWaker(w *Waker) { p.waker = w }

func (p *pinger) deliver(at uint64) {
	p.inbox = append(p.inbox, at)
	p.waker.Wake()
}

func (p *pinger) NextWork(now uint64) uint64 {
	next := Never
	if now < p.until {
		if r := now % p.interval; r == 0 {
			return now
		} else if now+p.interval-r < next {
			next = now + p.interval - r
		}
	}
	for _, at := range p.inbox {
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}

func (p *pinger) Tick(cycle uint64) {
	if cycle < p.until && cycle%p.interval == 0 {
		p.count++
		if p.out != nil {
			p.out(cycle)
		}
	}
	kept := p.inbox[:0]
	for _, at := range p.inbox {
		if at <= cycle {
			p.recv++
		} else {
			kept = append(kept, at)
		}
	}
	p.inbox = kept
}

// mailStage is a cross-shard staging buffer: sends append during parallel
// waves (each sender owns its own slice entry), and the serial commit
// delivers them in deterministic sender order.
type mailStage struct {
	perSender [][]uint64 // delivery cycles staged by each sender
	dest      []*pinger  // destination per sender
}

func (ms *mailStage) Tick(cycle uint64) {
	for i, list := range ms.perSender {
		for _, at := range list {
			ms.dest[i].deliver(at)
		}
		ms.perSender[i] = ms.perSender[i][:0]
	}
}

func (ms *mailStage) NextWork(now uint64) uint64 {
	for _, list := range ms.perSender {
		if len(list) > 0 {
			return now
		}
	}
	return Never
}

// buildMachine wires n pingers (pinger i sends to pinger (i+1)%n with
// latency 3) plus the staging commit, onto either the lockstep engine or a
// sharded conductor with the given shard and worker counts. It returns the
// pingers and a runner.
func buildMachine(n, shards, workers int, until uint64) ([]*pinger, func(max uint64) uint64) {
	ps := make([]*pinger, n)
	ms := &mailStage{perSender: make([][]uint64, n), dest: make([]*pinger, n)}
	for i := range ps {
		ps[i] = &pinger{interval: uint64(2 + i%3), until: until}
	}
	for i := range ps {
		i := i
		ms.dest[i] = ps[(i+1)%n]
		ps[i].out = func(cycle uint64) {
			ms.perSender[i] = append(ms.perSender[i], cycle+3)
		}
	}
	if shards == 0 {
		e := NewEngine()
		for i, p := range ps {
			e.Register("p", p)
			_ = i
		}
		e.Register("commit", ms)
		return ps, func(max uint64) uint64 {
			cycles, _ := e.RunUntil(func() bool {
				for _, p := range ps {
					if len(p.inbox) > 0 || p.NextWork(e.Cycle()) != Never {
						return false
					}
				}
				return ms.NextWork(e.Cycle()) == Never
			}, max)
			return cycles
		}
	}
	c := NewSharded(workers)
	shs := make([]*Shard, shards)
	for g := range shs {
		shs[g] = c.AddShard("g")
	}
	for i, p := range ps {
		shs[i%shards].Register("p", p)
	}
	c.SerialShard(0).Register("commit", ms)
	c.Seal()
	return ps, func(max uint64) uint64 {
		cycles, _ := c.RunUntil(func() bool {
			for _, p := range ps {
				if len(p.inbox) > 0 || p.NextWork(c.Cycle()) != Never {
					return false
				}
			}
			return ms.NextWork(c.Cycle()) == Never
		}, max)
		return cycles
	}
}

// TestShardedMatchesEngine checks that the sharded conductor produces the
// exact per-component state and final cycle of the lockstep engine across
// shard and worker counts (including workers > GOMAXPROCS).
func TestShardedMatchesEngine(t *testing.T) {
	const n = 13
	const until = 200
	ref, runRef := buildMachine(n, 0, 0, until)
	refCycles := runRef(100000)
	for _, shards := range []int{1, 2, 4, 13} {
		for _, workers := range []int{1, 2, 4, 8} {
			got, run := buildMachine(n, shards, workers, until)
			cycles := run(100000)
			if cycles != refCycles {
				t.Fatalf("shards=%d workers=%d: cycles=%d want %d", shards, workers, cycles, refCycles)
			}
			for i := range ref {
				if got[i].count != ref[i].count || got[i].recv != ref[i].recv {
					t.Fatalf("shards=%d workers=%d pinger %d: count/recv = %d/%d, want %d/%d",
						shards, workers, i, got[i].count, got[i].recv, ref[i].count, ref[i].recv)
				}
			}
		}
	}
}

// TestShardedJumpsIdleStretches checks that a machine with sparse timed
// work advances the clock in jumps rather than cycle-by-cycle.
func TestShardedJumpsIdleStretches(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	p := &pinger{interval: 1000, until: 5000}
	a.Register("p", p)
	c.Seal()
	cycles, err := c.RunUntil(func() bool { return p.count == 5 }, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || p.count != 5 {
		t.Fatalf("cycles=%d count=%d", cycles, p.count)
	}
	if c.JumpedCycles < 3000 {
		t.Fatalf("JumpedCycles = %d, want most of the idle stretch skipped", c.JumpedCycles)
	}
}

// TestShardedTimeoutParity checks the deadlock timeout contract matches the
// engine's: both kernels must return the identical structured *TimeoutError
// for the same machine — same message, same pending-work snapshot.
func TestShardedTimeoutParity(t *testing.T) {
	build := func(reg func(name string, tk Ticker)) {
		reg("busy", TickFunc(func(uint64) {}))
		reg("timed", &pinger{interval: 1000, until: 1 << 50})
	}
	c := NewSharded(1)
	a := c.AddShard("a")
	build(a.Register)
	c.Seal()
	_, err := c.RunUntil(func() bool { return false }, 100)
	if err == nil {
		t.Fatal("want timeout error")
	}
	e := NewEngine()
	build(e.Register)
	_, eerr := e.RunUntil(func() bool { return false }, 100)
	if eerr == nil || err.Error() != eerr.Error() {
		t.Fatalf("timeout error mismatch: sharded %q engine %q", err, eerr)
	}
	var st, et *TimeoutError
	if !errors.As(err, &st) || !errors.As(eerr, &et) {
		t.Fatalf("timeout errors are not *TimeoutError: %T / %T", err, eerr)
	}
	if st.MaxCycles != 100 || et.MaxCycles != 100 {
		t.Fatalf("MaxCycles = %d/%d, want 100", st.MaxCycles, et.MaxCycles)
	}
	if !reflect.DeepEqual(st.Pending, et.Pending) {
		t.Fatalf("pending snapshots differ: sharded %+v engine %+v", st.Pending, et.Pending)
	}
	// The always-busy TickFunc must be named as an immediate suspect and the
	// timed pinger with its future wake hint.
	if len(st.Pending) != 2 || st.Pending[0].Name != "busy" || st.Pending[1].Name != "timed" {
		t.Fatalf("pending = %+v, want [busy timed]", st.Pending)
	}
	if st.Pending[0].NextWork > st.Cycle {
		t.Fatalf("busy component reported future work %d at cycle %d", st.Pending[0].NextWork, st.Cycle)
	}
	if st.Pending[1].NextWork <= st.Cycle {
		t.Fatalf("timed component reported immediate work %d at cycle %d", st.Pending[1].NextWork, st.Cycle)
	}
}

// TestShardedCancellation checks a cancelled context abandons a sharded run
// within the amortized poll stride, with the workers parked on return.
func TestShardedCancellation(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	a.Register("busy", TickFunc(func(uint64) {}))
	c.Seal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cycles, err := c.RunUntilCtx(ctx, func() bool { return false }, Never)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cycles > 2*cancelStride {
		t.Fatalf("ran %d cycles after cancellation, want <= one poll stride", cycles)
	}
}

// TestShardedWaveSkipping checks that a multi-wave machine with one hot
// segment does not pay for the idle waves (no ticks are attempted there).
func TestShardedWaveSkipping(t *testing.T) {
	c := NewSharded(2)
	a := c.AddShard("a")
	b := c.AddShard("b")
	hot := &pinger{interval: 1, until: 100}
	a.Register("hot", hot)
	a.NextSegment()
	b.NextSegment()
	cold := &pinger{interval: 1, until: 0} // never has work
	b.Register("cold", cold)
	c.Seal()
	if c.Waves() != 2 {
		t.Fatalf("waves = %d", c.Waves())
	}
	if _, err := c.RunUntil(func() bool { return hot.count == 100 }, 10000); err != nil {
		t.Fatal(err)
	}
	if cold.count != 0 {
		t.Fatalf("cold ticked %d times", cold.count)
	}
}

// recorder is a plain (non-wake-aware) idler that records every tick cycle.
// Registered on a serial shard it models the commit hooks the real machine
// parks under FedBy: NextWork claims work exactly when a feeder flag is
// raised. Wave-side feeders each own one perSender slot (the staging
// discipline: parallel components may only write state they own); serial
// feeders use the scalar flag.
type recorder struct {
	perSender  []bool
	serialFlag bool
	log        []uint64
}

func (r *recorder) Tick(cycle uint64) {
	for i := range r.perSender {
		r.perSender[i] = false
	}
	r.serialFlag = false
	r.log = append(r.log, cycle)
}

func (r *recorder) NextWork(now uint64) uint64 {
	if r.serialFlag {
		return now
	}
	for _, f := range r.perSender {
		if f {
			return now
		}
	}
	return Never
}

func (r *recorder) pending() bool { return r.NextWork(0) == 0 }

// buildFedMachine wires a two-wave machine with a feeder-declared serial
// topology: wave-0 senders raise a flag consumed by the serial-0 recorder
// (FedBy wave 0), wave-1 pingers tick independently, and the serial-1
// recorder is fed by serial 0 (FedBy serial 0, raised by recorder 0's
// tick). declare=false leaves the sections undeclared (conservative
// re-poll); shards=0 builds the lockstep engine reference with the same
// sequential order.
func buildFedMachine(n, shards, workers int, until uint64, declare bool) ([]*pinger, []*recorder, func(max uint64) uint64, *Sharded) {
	w0 := make([]*pinger, n)
	w1 := make([]*pinger, n)
	rec0 := &recorder{perSender: make([]bool, n)}
	rec1 := &recorder{}
	for i := range w0 {
		i := i
		w0[i] = &pinger{interval: uint64(2 + i%3), until: until, out: func(uint64) { rec0.perSender[i] = true }}
		w1[i] = &pinger{interval: uint64(3 + i%2), until: until}
	}
	ps := append(append([]*pinger{}, w0...), w1...)
	done := func(now uint64) bool {
		for _, p := range ps {
			if p.NextWork(now) != Never {
				return false
			}
		}
		return !rec0.pending() && !rec1.pending()
	}
	if shards == 0 {
		e := NewEngine()
		for _, p := range w0 {
			e.Register("w0", p)
		}
		e.Register("rec0", tickFeeder{rec0, rec1})
		for _, p := range w1 {
			e.Register("w1", p)
		}
		e.Register("rec1", rec1)
		return ps, []*recorder{rec0, rec1}, func(max uint64) uint64 {
			cycles, _ := e.RunUntil(func() bool { return done(e.Cycle()) }, max)
			return cycles
		}, nil
	}
	c := NewSharded(workers)
	shs := make([]*Shard, shards)
	for g := range shs {
		shs[g] = c.AddShard("g")
	}
	for i, p := range w0 {
		shs[i%shards].Register("w0", p)
	}
	for _, sh := range shs {
		sh.NextSegment()
	}
	for i, p := range w1 {
		shs[i%shards].Register("w1", p)
	}
	c.SerialShard(0).Register("rec0", tickFeeder{rec0, rec1})
	c.SerialShard(1).Register("rec1", rec1)
	if declare {
		c.FedBy(0, []int{0}, nil)
		c.FedBy(1, nil, []int{0})
	}
	c.Seal()
	return ps, []*recorder{rec0, rec1}, func(max uint64) uint64 {
		cycles, _ := c.RunUntil(func() bool { return done(c.Cycle()) }, max)
		return cycles
	}, c
}

// tickFeeder wraps rec so that every tick raises next's pending flag (a
// serial section whose execution creates work for a later serial section).
type tickFeeder struct {
	rec  *recorder
	next *recorder
}

func (t tickFeeder) Tick(cycle uint64) {
	t.rec.Tick(cycle)
	t.next.serialFlag = true
}

func (t tickFeeder) NextWork(now uint64) uint64 { return t.rec.NextWork(now) }

// TestShardedFeedDeclarations checks that feeder-declared serial sections
// (event-cleared plain idlers, conductor stamps) produce the exact engine
// behavior — same final cycle, same per-component counts, same serial tick
// traces — across shard/worker counts and with/without declarations, at
// GOMAXPROCS values that exercise both the single-worker and pooled
// conductors.
func TestShardedFeedDeclarations(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 7
	const until = 120
	refPs, refRec, runRef, _ := buildFedMachine(n, 0, 0, until, false)
	refCycles := runRef(100000)
	if len(refRec[0].log) == 0 || len(refRec[1].log) == 0 {
		t.Fatalf("reference recorders never ticked: %d/%d", len(refRec[0].log), len(refRec[1].log))
	}
	for _, declare := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4, 7} {
			for _, workers := range []int{1, 2, 4} {
				ps, rec, run, _ := buildFedMachine(n, shards, workers, until, declare)
				cycles := run(100000)
				if cycles != refCycles {
					t.Fatalf("declare=%v shards=%d workers=%d: cycles=%d want %d", declare, shards, workers, cycles, refCycles)
				}
				for i := range refPs {
					if ps[i].count != refPs[i].count {
						t.Fatalf("declare=%v shards=%d workers=%d pinger %d: count=%d want %d",
							declare, shards, workers, i, ps[i].count, refPs[i].count)
					}
				}
				for k := range rec {
					if !reflect.DeepEqual(rec[k].log, refRec[k].log) {
						t.Fatalf("declare=%v shards=%d workers=%d recorder %d tick trace diverged:\n got %v\nwant %v",
							declare, shards, workers, k, rec[k].log, refRec[k].log)
					}
				}
			}
		}
	}
}

// TestShardedFusionCounters checks that wave fusion actually fires on a
// machine whose serial sections are declared unfed (provably inert), and
// never fires when they are undeclared — with identical simulated results
// either way.
func TestShardedFusionCounters(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	build := func(declare bool) (*pinger, *pinger, *Sharded) {
		c := NewSharded(2)
		a := c.AddShard("a")
		b := c.AddShard("b")
		p0 := &pinger{interval: 1, until: 50}
		p1 := &pinger{interval: 1, until: 50}
		a.Register("p0", p0)
		a.NextSegment()
		b.NextSegment()
		b.Register("p1", p1)
		// A timed serial component between the waves: parked except every
		// 10th cycle.
		c.SerialShard(0).Register("timed", &pinger{interval: 10, until: 50})
		if declare {
			c.FedBy(0, nil, nil)
		}
		c.Seal()
		return p0, p1, c
	}
	for _, declare := range []bool{true, false} {
		p0, p1, c := build(declare)
		if c.Workers() != 2 {
			t.Skipf("effective workers = %d (GOMAXPROCS too low for the pooled conductor)", c.Workers())
		}
		if _, err := c.RunUntil(func() bool { return p0.count == 50 && p1.count == 50 }, 10000); err != nil {
			t.Fatal(err)
		}
		ctr := c.Counters()
		if declare && ctr.WavesFused == 0 {
			t.Fatalf("declared-inert serial: WavesFused = 0, want fusion to fire (counters %+v)", ctr)
		}
		if !declare && ctr.WavesFused != 0 {
			t.Fatalf("undeclared serial: WavesFused = %d, want 0 (conservative re-poll blocks fusion)", ctr.WavesFused)
		}
		if ctr.WavesRun == 0 {
			t.Fatalf("WavesRun = 0 (counters %+v)", ctr)
		}
	}
}

// TestShardedBarrierElision checks that a wave whose due shards all fall on
// one worker runs inline on the conductor (no barrier), and that a wave
// spread across workers does not elide.
func TestShardedBarrierElision(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// Shards a (worker 0) and b (worker 1); only a is ever hot.
	c := NewSharded(2)
	a := c.AddShard("a")
	b := c.AddShard("b")
	hot := &pinger{interval: 1, until: 100}
	a.Register("hot", hot)
	cold := &pinger{interval: 1, until: 0}
	b.Register("cold", cold)
	c.Seal()
	if c.Workers() != 2 {
		t.Skipf("effective workers = %d", c.Workers())
	}
	if _, err := c.RunUntil(func() bool { return hot.count == 100 }, 10000); err != nil {
		t.Fatal(err)
	}
	ctr := c.Counters()
	if ctr.BarriersElided == 0 {
		t.Fatalf("BarriersElided = 0, want the single-owner wave inlined (counters %+v)", ctr)
	}

	// Both workers hot: no elision.
	c2 := NewSharded(2)
	a2 := c2.AddShard("a")
	b2 := c2.AddShard("b")
	h1 := &pinger{interval: 1, until: 100}
	h2 := &pinger{interval: 1, until: 100}
	a2.Register("h1", h1)
	b2.Register("h2", h2)
	c2.Seal()
	if c2.Workers() != 2 {
		t.Skipf("effective workers = %d", c2.Workers())
	}
	if _, err := c2.RunUntil(func() bool { return h1.count == 100 && h2.count == 100 }, 10000); err != nil {
		t.Fatal(err)
	}
	if ctr2 := c2.Counters(); ctr2.BarriersElided != 0 {
		t.Fatalf("BarriersElided = %d with both workers hot, want 0 (counters %+v)", ctr2.BarriersElided, ctr2)
	}
}

// TestShardedFusionPreservesRegistration is the property test that feed
// declarations and fusion never alter the sealed wave schedule or the
// registration order the schedule is built from: Waves(), per-shard
// Components() and the name tables are identical with and without
// declarations, and the serial tick traces (the observable projection of
// registration order) match the engine exactly.
func TestShardedFusionPreservesRegistration(t *testing.T) {
	const n = 5
	const until = 60
	_, plainRec, runPlain, plain := buildFedMachine(n, 2, 2, until, false)
	_, fedRec, runFed, fed := buildFedMachine(n, 2, 2, until, true)
	if plain.Waves() != fed.Waves() {
		t.Fatalf("Waves() changed by declarations: %d vs %d", plain.Waves(), fed.Waves())
	}
	if plain.Components() != fed.Components() {
		t.Fatalf("Components() changed by declarations: %d vs %d", plain.Components(), fed.Components())
	}
	for i := range plain.par {
		if !reflect.DeepEqual(plain.par[i].names, fed.par[i].names) {
			t.Fatalf("shard %d registration order changed: %v vs %v", i, plain.par[i].names, fed.par[i].names)
		}
		if !reflect.DeepEqual(plain.par[i].segStart, fed.par[i].segStart) {
			t.Fatalf("shard %d segment starts changed: %v vs %v", i, plain.par[i].segStart, fed.par[i].segStart)
		}
	}
	pc := runPlain(100000)
	fc := runFed(100000)
	if pc != fc {
		t.Fatalf("cycles diverged: %d vs %d", pc, fc)
	}
	for k := range plainRec {
		if !reflect.DeepEqual(plainRec[k].log, fedRec[k].log) {
			t.Fatalf("recorder %d trace diverged:\n plain %v\n fed   %v", k, plainRec[k].log, fedRec[k].log)
		}
	}
}

// TestShardedAdaptiveParking checks a pooled run completes with workers
// parked on the condvar path (forced by a tiny spin budget being exceeded
// during long serial stretches) and still matches the reference counts.
func TestShardedAdaptiveParking(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// Sparse timed work separated by long idle jumps: every resumption of
	// the worker pool crosses the spin budget, so parking must engage and
	// wake correctly many times.
	c := NewSharded(2)
	a := c.AddShard("a")
	b := c.AddShard("b")
	pa := &pinger{interval: 1, until: 2000}
	pb := &pinger{interval: 1, until: 2000}
	a.Register("pa", pa)
	b.Register("pb", pb)
	c.Seal()
	if c.Workers() != 2 {
		t.Skipf("effective workers = %d", c.Workers())
	}
	if _, err := c.RunUntil(func() bool { return pa.count == 2000 && pb.count == 2000 }, 100000); err != nil {
		t.Fatal(err)
	}
	if pa.count != 2000 || pb.count != 2000 {
		t.Fatalf("counts %d/%d", pa.count, pb.count)
	}
	// ParkEvents is scheduling-dependent (may be zero on a fast host); it
	// must at least be readable and consistent after the run.
	_ = c.Counters().ParkEvents
}
