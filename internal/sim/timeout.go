package sim

import (
	"fmt"
	"sort"
	"strings"
)

// PendingWork describes one non-quiescent component at the moment a cycle
// budget expired: its registration name and the earliest cycle at which it
// reports work. NextWork <= the error's Cycle means the component claims
// immediate work every cycle yet the machine never drains (the classic
// deadlock suspect); a future NextWork is a timed event the budget cut off.
// Components whose NextWork is Never (quiescent until external input) are
// not listed — in a cross-component deadlock the Pending list is empty and
// the error says so explicitly.
type PendingWork struct {
	Name     string
	NextWork uint64
}

// maxPendingReport caps the components named in the error string; the full
// snapshot stays available on the TimeoutError value.
const maxPendingReport = 8

// TimeoutError is the structured "no completion" error both kernels return
// when RunUntil exhausts its cycle budget. The message keeps the historical
// "sim: no completion after %d cycles (deadlock or undersized budget)"
// prefix and appends a per-component pending-work snapshot so a deadlocked
// configuration (the flowtable study found real ones) is diagnosable from
// the error alone.
type TimeoutError struct {
	// MaxCycles is the exhausted cycle budget.
	MaxCycles uint64
	// Cycle is the absolute clock value at which the run gave up.
	Cycle uint64
	// Pending lists every component with claimed work, sorted by name.
	Pending []PendingWork
}

// Error renders the snapshot; names beyond maxPendingReport collapse into a
// count so deeply wedged machines still produce a readable line.
func (e *TimeoutError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: no completion after %d cycles (deadlock or undersized budget)", e.MaxCycles)
	if len(e.Pending) == 0 {
		b.WriteString("; every component quiescent awaiting external input (cross-component deadlock)")
		return b.String()
	}
	b.WriteString("; pending: ")
	n := len(e.Pending)
	shown := n
	if shown > maxPendingReport {
		shown = maxPendingReport
	}
	for i, p := range e.Pending[:shown] {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.NextWork <= e.Cycle {
			fmt.Fprintf(&b, "%s(now)", p.Name)
		} else {
			fmt.Fprintf(&b, "%s(@%d)", p.Name, p.NextWork)
		}
	}
	if n > shown {
		fmt.Fprintf(&b, " and %d more", n-shown)
	}
	return b.String()
}

// appendPending collects one scheduler domain's non-quiescent slots.
// NextWork is side-effect-free by the Idler contract, so probing every slot
// (including parked wake-aware ones) cannot change simulated state; slots
// without an idle hint are always potentially busy and report now.
func appendPending(dst []PendingWork, slots []slot, names []string, now uint64) []PendingWork {
	for i := range slots {
		s := &slots[i]
		if s.i == nil {
			dst = append(dst, PendingWork{Name: names[i], NextWork: now})
			continue
		}
		if wk := s.i.NextWork(now); wk != Never {
			dst = append(dst, PendingWork{Name: names[i], NextWork: wk})
		}
	}
	return dst
}

// newTimeoutError finalizes a snapshot. Sorting by name makes the error
// independent of the kernel's internal slot layout, so the sequential and
// sharded kernels produce the identical structured error for the same
// machine state (asserted by TestShardedTimeoutParity).
func newTimeoutError(pending []PendingWork, maxCycles, cycle uint64) *TimeoutError {
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Name != pending[j].Name {
			return pending[i].Name < pending[j].Name
		}
		return pending[i].NextWork < pending[j].NextWork
	})
	return &TimeoutError{MaxCycles: maxCycles, Cycle: cycle, Pending: pending}
}

// timeoutError snapshots the engine's pending work at the current clock.
func (e *Engine) timeoutError(maxCycles uint64) *TimeoutError {
	return newTimeoutError(appendPending(nil, e.slots, e.names, e.cycle), maxCycles, e.cycle)
}

// timeoutError snapshots pending work across every shard. It runs on the
// conductor while the workers are parked at the hand-off spin (they only
// touch shard state between a gen bump and their doneCnt add), so the reads
// are race-free.
func (s *Sharded) timeoutError(maxCycles uint64) *TimeoutError {
	var p []PendingWork
	for _, sh := range s.par {
		p = appendPending(p, sh.slots, sh.names, s.cycle)
	}
	for _, sh := range s.serial {
		if sh != nil {
			p = appendPending(p, sh.slots, sh.names, s.cycle)
		}
	}
	return newTimeoutError(p, maxCycles, s.cycle)
}
