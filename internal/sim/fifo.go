package sim

// FIFO is a slice-backed queue drained by head index instead of re-slicing,
// so the backing array's capacity is reused forever: after warm-up, a
// steady-state push/pop workload never calls growslice. Popped slots are
// zeroed so the queue never pins dead references.
//
// It exists for the simulator's many small component queues (input queues,
// outboxes, command queues) whose historical `q = append(q, x)` /
// `q = q[1:]` pattern lost the freed capacity on the left and re-grew the
// slice perpetually.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len reports the queued element count.
func (q *FIFO[T]) Len() int { return len(q.buf) - q.head }

// Empty reports whether no elements are queued.
func (q *FIFO[T]) Empty() bool { return q.head == len(q.buf) }

// Push appends v.
//
//ar:hotpath
func (q *FIFO[T]) Push(v T) {
	// Reclaim the drained prefix before growing past capacity: slide the
	// live elements down instead of allocating a bigger array.
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		var zero T
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v) //ar:exempt(hotpath) ring growth doubles capacity; amortized O(1) and flat at steady state
}

// Peek returns the oldest element; it panics on an empty queue.
func (q *FIFO[T]) Peek() T { return q.buf[q.head] }

// At returns the i-th oldest element (0 = head).
func (q *FIFO[T]) At(i int) T { return q.buf[q.head+i] }

// PtrAt returns a pointer to the i-th oldest element for in-place updates.
func (q *FIFO[T]) PtrAt(i int) *T { return &q.buf[q.head+i] }

// Pop removes and returns the oldest element; it panics on an empty queue.
//
//ar:hotpath
func (q *FIFO[T]) Pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}
