package sim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot codec: a flat little-endian byte stream with an append-style
// encoder writing into a caller-owned buffer and a sticky-error decoder.
// Components implement Snapshotter to serialize exactly the state that
// survives a quiescent point (DESIGN.md "Checkpointing"); everything
// rebuilt by construction (pools, free lists, wiring, closures) is omitted
// and restored structurally fresh.

// Snapshotter is the component snapshot protocol. Snapshot appends the
// component's quiescent-point state to e; Restore reads the same fields
// back in the same order into a freshly constructed component. Restore
// must validate every decoded count and index against the live structure
// (via Dec.Fail) so corrupt bytes surface as a decode error, never as a
// panic or an out-of-range write.
type Snapshotter interface {
	Snapshot(e *Enc)
	Restore(d *Dec)
}

// Enc appends snapshot fields to a caller-owned buffer. The zero value is
// ready to use; reusing a buffer across snapshots (Enc{B: buf[:0]}) makes
// steady-state encoding allocation-free once the buffer has grown to the
// snapshot's working size.
type Enc struct {
	B []byte
}

// U64 appends v.
func (e *Enc) U64(v uint64) {
	e.B = binary.LittleEndian.AppendUint64(e.B, v)
}

// U32 appends v.
func (e *Enc) U32(v uint32) {
	e.B = binary.LittleEndian.AppendUint32(e.B, v)
}

// I64 appends v.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends v as a 64-bit integer.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// Bool appends v as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.B = append(e.B, 1)
	} else {
		e.B = append(e.B, 0)
	}
}

// F64 appends v by bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.B = append(e.B, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.B = append(e.B, s...)
}

// Tag appends a fixed section marker. Decoders check it with Dec.Tag,
// turning any field-order drift or torn write into a decode error at the
// section boundary instead of silently misinterpreted state downstream.
func (e *Enc) Tag(t string) { e.Str(t) }

// Dec reads snapshot fields back in encode order. Errors are sticky: the
// first underflow or validation failure latches and every later read
// returns zero values, so Restore implementations can decode straight
// through and check Err once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err reports the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Fail latches a validation failure (no-op if one is already latched).
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sim: snapshot decode: "+format, args...)
	}
}

// Remaining reports undecoded bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.Fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads one uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads one uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads one int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads one int encoded by Enc.Int.
func (d *Dec) Int() int { return int(int64(d.U64())) }

// Bool reads one bool.
func (d *Dec) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// F64 reads one float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a length prefix and validates it against max (an upper bound
// implied by the live structure the caller restores into).
func (d *Dec) Len(max int, what string) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(max) {
		d.Fail("%s count %d exceeds limit %d", what, n, max)
		return 0
	}
	return int(n)
}

// BytesView reads a length-prefixed byte slice as a view into the decode
// buffer (valid until the buffer is reused).
func (d *Dec) BytesView() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.Fail("byte slice length %d exceeds remaining %d", n, d.Remaining())
		return nil
	}
	return d.take(int(n))
}

// BytesAt reads exactly n raw bytes (no length prefix) as a view into the
// decode buffer.
func (d *Dec) BytesAt(n int) []byte { return d.take(n) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.BytesView()) }

// Tag reads a section marker and fails unless it matches want.
func (d *Dec) Tag(want string) {
	got := d.Str()
	if d.err == nil && got != want {
		d.Fail("section tag mismatch: have %q, want %q", got, want)
	}
}

// State exposes the generator state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a snapshotted generator state.
func (r *Rand) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15 // xorshift all-zero fixed point, as in NewRand
	}
	r.state = s
}

// StartAt moves the engine clock to cycle and discards every cached idle
// hint, so the next step re-polls all components. Polls are side-effect
// free and exact, so starting from a restored machine state reproduces the
// straight-through run bit-identically (only the SkippedTicks/JumpedCycles
// diagnostics may differ). Call only between runs.
func (e *Engine) StartAt(cycle uint64) {
	e.cycle = cycle
	e.minWake = 0
	for i := range e.wakeAt {
		e.wakeAt[i] = 0
		e.active[i>>6] |= 1 << uint(i&63)
	}
}

// StartAt moves the conductor clock to cycle and discards every cached
// idle hint on every shard (parallel and serial), mirroring Engine.StartAt
// for the sharded kernel. Call only between runs (workers parked).
func (s *Sharded) StartAt(cycle uint64) {
	s.cycle = cycle
	reset := func(sh *Shard) {
		if sh == nil {
			return
		}
		sh.minWake = 0
		sh.sweptAt = 0
		sh.ranAt = 0
		for i := range sh.wakeAt {
			sh.wakeAt[i] = 0
			sh.active[i>>6] |= 1 << uint(i&63)
		}
		for i := range sh.segNext {
			if sh.segStart[i+1] > sh.segStart[i] {
				sh.segNext[i] = 0
				sh.segHorizon[i] = 0
			} else {
				// Empty segments stay permanently parked (Seal invariant).
				sh.segNext[i] = Never
				sh.segHorizon[i] = Never
			}
		}
	}
	for _, sh := range s.par {
		reset(sh)
	}
	for _, sh := range s.serial {
		reset(sh)
	}
	for i := range s.need {
		s.need[i] = 0
	}
	s.needPark = 0
}
