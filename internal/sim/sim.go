// Package sim provides the discrete-cycle simulation kernel shared by every
// timing model in the repository: a global cycle clock, a ticker registry,
// and a deterministic random number generator.
//
// The kernel is deliberately simple: all components advance in lockstep, one
// call to Tick per cycle, in registration order. Registration order is part
// of the simulated machine's definition (e.g. routers tick before cores so
// that responses delivered this cycle are visible next cycle), so it is kept
// deterministic. Components that are idle return quickly; the workloads in
// this repository are sized so that full runs complete in seconds.
package sim

import "fmt"

// Ticker is a hardware component that advances by one clock cycle per call.
type Ticker interface {
	// Tick advances the component to the given cycle.
	Tick(cycle uint64)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(cycle uint64)

// Tick calls f(cycle).
func (f TickFunc) Tick(cycle uint64) { f(cycle) }

// Engine owns the global clock and the ordered set of tickers.
type Engine struct {
	cycle   uint64
	tickers []Ticker
	names   []string
}

// NewEngine returns an engine at cycle zero with no registered components.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order. The name is used in
// diagnostics only.
func (e *Engine) Register(name string, t Ticker) {
	if t == nil {
		panic("sim: Register called with nil ticker")
	}
	e.tickers = append(e.tickers, t)
	e.names = append(e.names, name)
}

// Cycle reports the current cycle (the number of completed steps).
func (e *Engine) Cycle() uint64 { return e.cycle }

// Components reports how many tickers are registered.
func (e *Engine) Components() int { return len(e.tickers) }

// Step advances the whole machine by one cycle.
func (e *Engine) Step() {
	c := e.cycle
	for _, t := range e.tickers {
		t.Tick(c)
	}
	e.cycle++
}

// RunUntil steps the machine until done() reports true or maxCycles elapse.
// It returns the number of cycles executed and an error on timeout.
func (e *Engine) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, fmt.Errorf("sim: no completion after %d cycles (deadlock or undersized budget)", maxCycles)
		}
		e.Step()
	}
	return e.cycle - start, nil
}

// RunFor steps the machine exactly n cycles.
func (e *Engine) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// Rand is a deterministic xorshift64* pseudo-random generator. It is used
// instead of math/rand so that simulation results are bit-identical across
// Go releases; determinism is asserted by tests.
type Rand struct{ state uint64 }

// NewRand seeds a generator. A zero seed is remapped to a fixed non-zero
// constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
