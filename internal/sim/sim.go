// Package sim provides the discrete-cycle simulation kernel shared by every
// timing model in the repository: a global cycle clock, a ticker registry,
// and a deterministic random number generator.
//
// All components advance in lockstep, one call to Tick per cycle, in
// registration order. Registration order is part of the simulated machine's
// definition (e.g. routers tick before cores so that responses delivered
// this cycle are visible next cycle), so it is kept deterministic.
//
// The kernel is idle-aware: a component may additionally implement Idler to
// report quiescence. The engine then skips the component's Tick for cycles
// in which it provably has no work, and when every registered component is
// quiescent it advances the clock straight to the earliest future event in
// one step. Both skips are exact — a correct NextWork implementation only
// ever suppresses Ticks that would have been no-ops — so simulated results
// are bit-identical to the plain lockstep kernel (see DESIGN.md for the
// idle/wake protocol contract).
package sim

import (
	"context"
	"fmt"
	"math/bits"
)

// cancelStride is how many RunUntil iterations pass between context polls.
// One iteration is one whole-machine step (or one multi-cycle idle jump),
// so the amortized cost is a counter decrement per step — invisible next to
// a step's component scan, and pinned by the CI allocs/op ceiling — while a
// cancelled run is still abandoned within a bounded, small number of steps.
const cancelStride = 4096

// Ticker is a hardware component that advances by one clock cycle per call.
type Ticker interface {
	// Tick advances the component to the given cycle.
	Tick(cycle uint64)
}

// TickFunc adapts a plain function to the Ticker interface. Note that a
// TickFunc never implements Idler: wrapping a component's Tick method in a
// TickFunc hides its idle hints, so components that can quiesce should be
// registered directly.
type TickFunc func(cycle uint64)

// Tick calls f(cycle).
func (f TickFunc) Tick(cycle uint64) { f(cycle) }

// Never is the NextWork return value of a component that cannot make
// progress until some other component hands it new input.
const Never = ^uint64(0)

// Idler is the optional quiescence protocol. A component implementing it
// promises that NextWork is side-effect-free on simulated state and that
// whenever NextWork(now) > now, Tick(now) would have been a no-op.
//
// The engine evaluates NextWork at the component's exact slot in the tick
// order, so the implementation sees precisely the state its Tick would have
// seen — including writes made earlier in the same cycle by components that
// tick before it. Returning now when unsure is always safe; returning a
// future cycle (or Never) when work exists changes simulated results.
type Idler interface {
	// NextWork reports the earliest cycle >= now at which Tick must run:
	// now itself when the component has immediate work, a later cycle when
	// its next work is a purely internal timed event, or Never when it is
	// quiescent until external input (a delivered packet, a callback)
	// arrives. For plain idlers NextWork is re-evaluated every engine
	// step, so Never is a per-cycle claim, not a permanent one; wake-aware
	// components (WakeSetter) instead have the result cached until their
	// Waker fires or the reported cycle arrives.
	NextWork(now uint64) uint64
}

// wakeTable is the wake-state shared between the Waker handle and its
// owning scheduler (the lockstep Engine or one Shard of the sharded
// kernel): the cached-idle array, the active bitmask, and — for shards —
// the per-segment work horizon a wake must also reset.
type wakeTable struct {
	// wakeAt[i] caches slot i's last future NextWork result (wake-aware
	// components only): while cycle < wakeAt[i] the scheduler skips the
	// poll. It lives in its own dense array so the per-cycle scan touches
	// eight bytes per component instead of a whole slot.
	wakeAt []uint64
	// active is a bitmask over slots: bit i set means slot i must be
	// polled/ticked this cycle. Cached-quiescent components clear their bit
	// and are re-activated either by Waker.Wake or by the minWake sweep
	// when their cached cycle arrives. Iterating set bits ascending
	// preserves registration (tick) order exactly.
	active []uint64
	// segOf/segNext (sharded kernel only, nil on the Engine): segOf[i] is
	// the wave segment slot i belongs to, segNext[s] the earliest cycle at
	// which segment s can have work — the conductor skips a whole wave (and
	// its barrier) while every shard's segment horizon is in the future.
	segOf   []int32
	segNext []uint64
	// condNeed (single-worker sharded kernel only) aliases the conductor's
	// per-wave need aggregate: a wake must also invalidate the aggregate,
	// or the conductor's wave-skip check would miss the woken shard. It is
	// installed only when every wake runs on the conductor goroutine (one
	// effective worker), so plain stores suffice.
	condNeed []uint64
}

// Waker is the scheduler-side handle a wake-aware component uses to
// invalidate its cached idle hint. Wake is cheap (a few stores) and safe to
// call redundantly or on a nil receiver.
type Waker struct {
	t   *wakeTable
	idx int
}

// Wake marks the component's cached quiescence stale so the scheduler
// re-polls its NextWork on the next step. Components call it from every
// entry point through which the outside world hands them new work (a
// Deliver, an Access, a completion callback).
func (w *Waker) Wake() {
	if w != nil {
		t := w.t
		t.wakeAt[w.idx] = 0
		t.active[w.idx>>6] |= 1 << uint(w.idx&63)
		if t.segOf != nil {
			sg := t.segOf[w.idx]
			t.segNext[sg] = 0
			if t.condNeed != nil {
				t.condNeed[sg] = 0
			}
		}
	}
}

// WakeSetter is the opt-in contract for engine-side idle-hint caching. A
// component implementing it promises that between two of its Ticks, the
// value it returned from NextWork can only become earlier as a result of an
// event that calls the provided Waker — so the engine may cache a future
// NextWork result and skip re-polling until that cycle arrives or Wake is
// called. Time-only idlers (samplers) satisfy the contract trivially and
// may ignore the waker.
type WakeSetter interface {
	SetWaker(w *Waker)
}

// slot pairs a ticker with its idle hint so the per-cycle scheduling loop
// walks one contiguous slice (idler is nil when the ticker does not
// implement Idler).
type slot struct {
	t         Ticker
	i         Idler
	cacheable bool
	// parkable (sharded kernel, set at Seal) folds `cacheable ||
	// shard.eventCleared` into one load for the per-slot poll branch.
	parkable bool
}

// Engine owns the global clock and the ordered set of tickers.
type Engine struct {
	cycle uint64
	slots []slot
	// wakeTable holds the wakeAt cache and active bitmask shared with the
	// Waker handles this engine hands out (segOf/segNext stay nil).
	wakeTable
	// minWake is the earliest cached wakeAt among inactive slots; when the
	// clock reaches it the engine sweeps wakeAt to re-activate due slots.
	minWake uint64
	names   []string

	// SkippedTicks counts component Ticks suppressed by idle hints and
	// JumpedCycles counts clock advances beyond one cycle per step
	// (diagnostics for the idle-aware scheduler; not simulated state).
	SkippedTicks uint64
	JumpedCycles uint64
}

// NewEngine returns an engine at cycle zero with no registered components.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order. The name is used in
// diagnostics only. If the component implements Idler its idle hints are
// used to skip no-op Ticks.
func (e *Engine) Register(name string, t Ticker) {
	if t == nil {
		panic("sim: Register called with nil ticker")
	}
	idler, _ := t.(Idler)
	e.slots = append(e.slots, slot{t: t, i: idler})
	e.wakeAt = append(e.wakeAt, 0)
	e.names = append(e.names, name)
	i := len(e.slots) - 1
	for len(e.active) <= i>>6 {
		e.active = append(e.active, 0)
	}
	e.active[i>>6] |= 1 << uint(i&63)
	e.minWake = 0
	if ws, ok := t.(WakeSetter); ok && idler != nil {
		e.slots[i].cacheable = true
		ws.SetWaker(&Waker{t: &e.wakeTable, idx: i})
	}
}

// Cycle reports the current cycle (the number of completed steps).
func (e *Engine) Cycle() uint64 { return e.cycle }

// Components reports how many tickers are registered.
func (e *Engine) Components() int { return len(e.slots) }

// step advances the whole machine by one cycle, skipping components that
// report no work. It returns the earliest cycle at which any skipped
// component has future work; the return value exceeds e.cycle (post
// increment) only when no component ticked at all, in which case no
// simulated state changed this cycle and the clock may be advanced to the
// returned cycle directly.
//
//ar:hotpath
func (e *Engine) step() uint64 {
	c := e.cycle
	if c >= e.minWake {
		// A cached wake is due (or the mask is stale): re-activate every
		// slot whose cached cycle has arrived and recompute the horizon.
		min := Never
		for i, wa := range e.wakeAt {
			if e.active[i>>6]&(1<<uint(i&63)) != 0 {
				continue
			}
			if wa <= c {
				e.active[i>>6] |= 1 << uint(i&63)
			} else if wa < min {
				min = wa
			}
		}
		e.minWake = min
	}
	next := e.minWake
	ran := false
	for w := range e.active {
		// The word is re-read every iteration so a component woken by an
		// earlier tick in the same cycle is still visited at its own slot
		// position — exactly like the historical whole-slice scan. done
		// masks every position at or below the last visited bit, so wakes
		// pointing backward wait for the next cycle (also like the scan).
		var done uint64
		for {
			m := e.active[w] &^ done
			if m == 0 {
				break
			}
			b := m & (-m)
			i := w<<6 + bits.TrailingZeros64(m)
			done |= b<<1 - 1
			s := &e.slots[i]
			if s.i != nil {
				if wk := s.i.NextWork(c); wk > c {
					if wk < next {
						next = wk
					}
					if s.cacheable && wk > c+1 {
						// Park the slot: no polls until wk or a Wake. A
						// one-cycle wait is cheaper to re-poll than to
						// park (parking would trigger a re-activation
						// sweep on the very next step).
						e.wakeAt[i] = wk
						e.active[w] &^= b
						if wk < e.minWake {
							e.minWake = wk
						}
					}
					e.SkippedTicks++
					continue
				}
			}
			s.t.Tick(c)
			ran = true
		}
	}
	e.cycle++
	if ran {
		return e.cycle
	}
	return next
}

// Step advances the whole machine by exactly one cycle.
func (e *Engine) Step() { e.step() }

// RunUntil steps the machine until done() reports true or maxCycles elapse.
// It returns the number of cycles executed and an error on timeout. When
// every component is quiescent the clock jumps to the next pending event in
// O(1) instead of stepping the gap cycle by cycle. The timeout error is a
// *TimeoutError carrying a per-component pending-work snapshot.
func (e *Engine) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	return e.RunUntilCtx(context.Background(), done, maxCycles)
}

// RunUntilCtx is RunUntil with cooperative cancellation: ctx is polled on an
// amortized stride (every cancelStride steps), so a cancelled or expired
// context abandons the run within a bounded number of steps at no hot-path
// cost. The cancellation error wraps ctx.Err() for errors.Is dispatch.
func (e *Engine) RunUntilCtx(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	poll := cancelStride
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, e.timeoutError(maxCycles)
		}
		if poll--; poll <= 0 {
			poll = cancelStride
			if err := ctx.Err(); err != nil {
				return e.cycle - start, fmt.Errorf("sim: run abandoned at cycle %d: %w", e.cycle, err)
			}
		}
		wake := e.step()
		if wake > e.cycle {
			// Nothing ticked and nothing will until wake: the machine is
			// fully quiescent, so the skipped stretch is free of events and
			// done() cannot change within it. A Never wake means permanent
			// quiescence (deadlock); a wake at or past the budget means the
			// machine times out first. Either way fast-forward to the
			// budget and report the timeout the lockstep kernel would have
			// reached cycle by cycle. The saturation guard keeps a
			// near-MaxUint64 budget from wrapping the clock backward.
			limit := start + maxCycles
			if limit < start {
				limit = Never // budget overflows the clock: saturate
			}
			if wake >= limit {
				if limit > e.cycle {
					e.JumpedCycles += limit - e.cycle
					e.cycle = limit
				}
				return e.cycle - start, e.timeoutError(maxCycles)
			}
			e.JumpedCycles += wake - e.cycle
			e.cycle = wake
		}
	}
	return e.cycle - start, nil
}

// RunFor steps the machine exactly n cycles.
func (e *Engine) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// Rand is a deterministic xorshift64* pseudo-random generator. It is used
// instead of math/rand so that simulation results are bit-identical across
// Go releases; determinism is asserted by tests.
type Rand struct{ state uint64 }

// NewRand seeds a generator. A zero seed is remapped to a fixed non-zero
// constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
