package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStepOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register("a", TickFunc(func(uint64) { order = append(order, "a") }))
	e.Register("b", TickFunc(func(uint64) { order = append(order, "b") }))
	e.Step()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("tick order = %v, want [a b]", order)
	}
	if e.Cycle() != 1 {
		t.Fatalf("cycle = %d, want 1", e.Cycle())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register("c", TickFunc(func(uint64) { count++ }))
	n, err := e.RunUntil(func() bool { return count >= 10 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || count != 10 {
		t.Fatalf("ran %d cycles, count %d, want 10", n, count)
	}
}

func TestEngineRunUntilTimeout(t *testing.T) {
	e := NewEngine()
	if _, err := e.RunUntil(func() bool { return false }, 5); err == nil {
		t.Fatal("expected timeout error")
	}
	if e.Cycle() != 5 {
		t.Fatalf("cycle = %d, want 5", e.Cycle())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	e.RunFor(7)
	if e.Cycle() != 7 {
		t.Fatalf("cycle = %d, want 7", e.Cycle())
	}
}

func TestEngineRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Register("bad", nil)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestRandZeroSeedOK(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandDistributionRough(t *testing.T) {
	r := NewRand(13)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, b := range buckets {
		if b < n/8-n/40 || b > n/8+n/40 {
			t.Fatalf("bucket %d heavily skewed: %d of %d", i, b, n)
		}
	}
}
