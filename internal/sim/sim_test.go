package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineStepOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register("a", TickFunc(func(uint64) { order = append(order, "a") }))
	e.Register("b", TickFunc(func(uint64) { order = append(order, "b") }))
	e.Step()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("tick order = %v, want [a b]", order)
	}
	if e.Cycle() != 1 {
		t.Fatalf("cycle = %d, want 1", e.Cycle())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Register("c", TickFunc(func(uint64) { count++ }))
	n, err := e.RunUntil(func() bool { return count >= 10 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || count != 10 {
		t.Fatalf("ran %d cycles, count %d, want 10", n, count)
	}
}

func TestEngineRunUntilTimeout(t *testing.T) {
	e := NewEngine()
	if _, err := e.RunUntil(func() bool { return false }, 5); err == nil {
		t.Fatal("expected timeout error")
	}
	if e.Cycle() != 5 {
		t.Fatalf("cycle = %d, want 5", e.Cycle())
	}
}

// TestEngineTimeoutErrorStructure checks the timeout error is typed and
// lists non-quiescent components with their NextWork hints.
func TestEngineTimeoutErrorStructure(t *testing.T) {
	e := NewEngine()
	e.Register("spinner", TickFunc(func(uint64) {}))
	e.Register("timer", &pinger{interval: 1000, until: 1 << 50})
	_, err := e.RunUntil(func() bool { return false }, 7)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if te.MaxCycles != 7 || te.Cycle != 7 {
		t.Fatalf("MaxCycles/Cycle = %d/%d, want 7/7", te.MaxCycles, te.Cycle)
	}
	if len(te.Pending) != 2 || te.Pending[0].Name != "spinner" || te.Pending[1].Name != "timer" {
		t.Fatalf("pending = %+v, want [spinner timer] sorted by name", te.Pending)
	}
	if te.Pending[1].NextWork != 1000 {
		t.Fatalf("timer hint = %d, want 1000", te.Pending[1].NextWork)
	}
	for _, want := range []string{"no completion after 7 cycles", "spinner(now)", "timer(@1000)"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

// TestEngineRunUntilCtxCancel checks a cancelled context abandons the run
// within the amortized poll stride and the error wraps context.Canceled.
func TestEngineRunUntilCtxCancel(t *testing.T) {
	e := NewEngine()
	e.Register("busy", TickFunc(func(uint64) {}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cycles, err := e.RunUntilCtx(ctx, func() bool { return false }, Never)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cycles > 2*cancelStride {
		t.Fatalf("ran %d cycles after cancellation, want <= one poll stride", cycles)
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	e.RunFor(7)
	if e.Cycle() != 7 {
		t.Fatalf("cycle = %d, want 7", e.Cycle())
	}
}

func TestEngineRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Register("bad", nil)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestRandZeroSeedOK(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandDistributionRough(t *testing.T) {
	r := NewRand(13)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, b := range buckets {
		if b < n/8-n/40 || b > n/8+n/40 {
			t.Fatalf("bucket %d heavily skewed: %d of %d", i, b, n)
		}
	}
}
