package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/system"
)

// ErrNoWorkers wraps service.ErrOverloaded: a job arrived while every
// registered worker was dead (or none ever registered). The transport maps
// it to 503 + Retry-After; cached results keep serving regardless.
var ErrNoWorkers = fmt.Errorf("cluster: no live workers: %w", service.ErrOverloaded)

// errGaveUp is returned when a single job burned through MaxAttempts
// leases without any worker completing it.
var errGaveUp = errors.New("cluster: job exceeded max dispatch attempts")

// CoordinatorOptions tunes the dispatcher. The zero value is usable for
// tests; cmd/arserved derives LeaseTTL and AttemptTimeout from its flags.
type CoordinatorOptions struct {
	// LeaseTTL is how long a dispatched lease lives without a renewing
	// heartbeat; <= 0 means 10s. Workers are told to heartbeat at TTL/3.
	LeaseTTL time.Duration
	// AttemptTimeout caps one attempt's total lease lifetime: heartbeats
	// renew a lease only up to dispatch time + AttemptTimeout, after which
	// it expires even from a live (slow) worker and the job re-dispatches —
	// speculative retry for stragglers. 0 means uncapped (a heartbeating
	// worker keeps its lease forever). Derived from -job-timeout.
	AttemptTimeout time.Duration
	// SuspectAfter/DeadAfter drive the health state machine from heartbeat
	// recency; <= 0 means LeaseTTL and 3×LeaseTTL respectively.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// BreakerThreshold opens a worker's dispatch circuit breaker after this
	// many consecutive dispatch failures; <= 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker holds dispatches off a
	// worker; <= 0 means 2×LeaseTTL.
	BreakerCooldown time.Duration
	// MaxAttempts bounds how many leases one job may burn before Execute
	// gives up; <= 0 means 5.
	MaxAttempts int
	// HTTP overrides the dispatch client (tests inject chaos transports).
	HTTP *http.Client
}

// lease is one outstanding job: dispatched (worker != "") or waiting for
// re-dispatch. Owned by Coordinator.mu except the channels, which the
// owning Execute goroutine drains.
type lease struct {
	id  string
	key string
	req []byte // marshaled dispatchRequest, rebuilt once

	worker     string // current owner, "" when unassigned
	prev       string // previous owner; re-dispatch prefers someone else
	deadline   time.Time
	attemptCap time.Time // zero when AttemptTimeout is 0
	attempts   int

	done       chan leaseResult // buffered 1; first completion wins
	redispatch chan struct{}    // buffered 1; janitor/release/re-register signal
}

type leaseResult struct {
	raw []byte
	err error
}

// workerState is one registered worker's supervision record.
type workerState struct {
	id       string
	addr     string
	capacity int
	// leases this worker currently owns. A set, not a counter: lease
	// expiry removes membership, so a late completion from the old owner
	// can never double-free a slot.
	leases       map[string]struct{}
	lastBeat     time.Time
	consecFails  int
	breakerUntil time.Time
}

type healthState int

const (
	stateAlive healthState = iota
	stateSuspect
	stateDead
)

func (h healthState) String() string {
	switch h {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Coordinator dispatches jobs to a worker fleet. It implements
// service.Executor (plus QueueReporter and ClusterReporter), so the
// scheduler, result cache, figures and sweeps are exactly the
// single-process code paths — only where the simulation runs changes.
type Coordinator struct {
	opts   CoordinatorOptions
	client *http.Client
	nonce  string
	seq    atomic.Uint64

	mu      sync.Mutex
	workers map[string]*workerState
	leases  map[string]*lease

	// recentDone maps committed lease ids to their result fingerprint so a
	// late duplicate completion can be cross-checked for divergence. A
	// bounded FIFO ring (recentOrder evicts oldest).
	recentDone  map[string]uint64
	recentOrder []string

	dispatched      uint64
	completed       uint64
	redispatched    uint64
	returned        uint64
	late            uint64
	divergent       uint64
	dispatchRetries uint64

	waiting atomic.Int64 // Execute calls blocked on fleet capacity

	// capSignal wakes one capacity-waiter when slots may have freed.
	capSignal chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	janitorWG sync.WaitGroup
}

const recentDoneCap = 1024

// NewCoordinator starts a dispatcher (and its lease janitor; Close stops
// it).
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = opts.LeaseTTL
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 3 * opts.LeaseTTL
	}
	if opts.DeadAfter < opts.SuspectAfter {
		opts.DeadAfter = opts.SuspectAfter
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * opts.LeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	client := opts.HTTP
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	var nb [4]byte
	_, _ = rand.Read(nb[:])
	c := &Coordinator{
		opts:       opts,
		client:     client,
		nonce:      hex.EncodeToString(nb[:]),
		workers:    make(map[string]*workerState),
		leases:     make(map[string]*lease),
		recentDone: make(map[string]uint64),
		capSignal:  make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}
	c.janitorWG.Add(1)
	go c.janitor()
	return c
}

// Close stops the lease janitor. Outstanding Execute calls are not
// cancelled (their contexts are).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.janitorWG.Wait()
}

// heartbeatInterval is what registering workers are told: a third of the
// lease TTL, so two missed beats still leave renewal room.
func (c *Coordinator) heartbeatInterval() time.Duration {
	hb := c.opts.LeaseTTL / 3
	if hb < 50*time.Millisecond {
		hb = 50 * time.Millisecond
	}
	return hb
}

// Ready reports whether the fleet can take new work: at least one worker
// not (yet) declared dead. Suspect workers count — their leases are still
// being honored — so readiness flaps only on confirmed fleet loss.
func (c *Coordinator) Ready() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked(time.Now()) > 0
}

// Waiting implements service.QueueReporter: jobs blocked on fleet
// capacity.
func (c *Coordinator) Waiting() int { return int(c.waiting.Load()) }

// Execute implements service.Executor: lease the job to a worker, wait for
// its completion, re-dispatching on lease expiry, drain handback or
// dispatch failure. The result is decoded from the worker's bytes; the
// scheduler's cache layer above makes the cluster-wide singleflight — at
// most one completed simulation per content-addressed key.
func (c *Coordinator) Execute(ctx context.Context, job service.Job) (*system.Results, error) {
	raw, err := c.execute(ctx, job)
	if err != nil {
		return nil, err
	}
	var res system.Results
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("cluster: decoding worker result: %w", err)
	}
	return &res, nil
}

func (c *Coordinator) execute(ctx context.Context, job service.Job) ([]byte, error) {
	cfgRaw, err := json.Marshal(job.Config)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding job config: %w", err)
	}
	l := &lease{
		id:         fmt.Sprintf("%s-%d", c.nonce, c.seq.Add(1)),
		key:        job.Key(),
		done:       make(chan leaseResult, 1),
		redispatch: make(chan struct{}, 1),
	}
	l.req, err = json.Marshal(dispatchRequest{
		Lease: l.id,
		Key:   l.key,
		Job: wireJob{
			Workload: job.Workload,
			Scheme:   job.Scheme.String(),
			Scale:    job.Scale.String(),
			Config:   cfgRaw,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding dispatch: %w", err)
	}
	c.mu.Lock()
	c.leases[l.id] = l
	c.mu.Unlock()
	defer c.dropLease(l)

	finish := func(r leaseResult) ([]byte, error) {
		if r.err != nil {
			return nil, fmt.Errorf("cluster: worker reported: %w", r.err)
		}
		return r.raw, nil
	}
	for {
		// A completion may have raced the re-dispatch signal (the janitor
		// expired the lease in the same instant a worker committed it).
		// Prefer the committed result: re-booking an already-completed
		// lease would run the simulation again for nothing.
		select {
		case r := <-l.done:
			return finish(r)
		default:
		}
		addr, err := c.assign(ctx, l)
		if err != nil {
			return nil, err
		}
		if !c.send(addr, l) {
			continue // dispatch failed; breaker updated, lease unassigned
		}
		select {
		case r := <-l.done:
			return finish(r)
		case <-l.redispatch:
			continue
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// assign picks a worker and books the lease onto it, blocking while the
// fleet is at capacity. Returns the worker's dispatch address, ErrNoWorkers
// when every worker is dead, or errGaveUp past the attempt budget.
func (c *Coordinator) assign(ctx context.Context, l *lease) (string, error) {
	for {
		c.mu.Lock()
		now := time.Now()
		if l.attempts >= c.opts.MaxAttempts {
			c.mu.Unlock()
			return "", fmt.Errorf("%w (job %s, %d attempts)", errGaveUp, l.key, l.attempts)
		}
		if w := c.pickLocked(now, l.prev); w != nil {
			l.attempts++
			l.worker = w.id
			l.deadline = now.Add(c.opts.LeaseTTL)
			if c.opts.AttemptTimeout > 0 {
				l.attemptCap = now.Add(c.opts.AttemptTimeout)
				if l.deadline.After(l.attemptCap) {
					l.deadline = l.attemptCap
				}
			}
			w.leases[l.id] = struct{}{}
			addr := w.addr
			c.mu.Unlock()
			return addr, nil
		}
		live := c.liveLocked(now)
		c.mu.Unlock()
		if live == 0 {
			return "", ErrNoWorkers
		}
		// Fleet is live but saturated (or breakers are open): wait for a
		// capacity signal, with a poll floor so breaker expiry and health
		// transitions are noticed without a dedicated signal.
		c.waiting.Add(1)
		select {
		case <-c.capSignal:
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			c.waiting.Add(-1)
			return "", ctx.Err()
		}
		c.waiting.Add(-1)
	}
}

// pickLocked chooses the dispatch target: alive, breaker closed, has a
// free advertised slot; most free slots wins, lowest id breaks ties (so
// dispatch order is deterministic given equal fleets). A lease's previous
// owner is avoided when any other candidate exists — re-leasing a
// straggler's job back to the straggler defeats the speculative retry.
func (c *Coordinator) pickLocked(now time.Time, avoid string) *workerState {
	var best, fallback *workerState
	bestFree := 0
	for _, w := range c.workers {
		if c.stateLocked(w, now) != stateAlive || now.Before(w.breakerUntil) {
			continue
		}
		free := w.capacity - len(w.leases)
		if free <= 0 {
			continue
		}
		if w.id == avoid {
			fallback = w
			continue
		}
		if best == nil || free > bestFree || (free == bestFree && w.id < best.id) {
			best, bestFree = w, free
		}
	}
	if best == nil {
		return fallback
	}
	return best
}

func (c *Coordinator) stateLocked(w *workerState, now time.Time) healthState {
	since := now.Sub(w.lastBeat)
	switch {
	case since < c.opts.SuspectAfter:
		return stateAlive
	case since < c.opts.DeadAfter:
		return stateSuspect
	default:
		return stateDead
	}
}

// liveLocked counts workers not yet declared dead (alive or suspect).
func (c *Coordinator) liveLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if c.stateLocked(w, now) != stateDead {
			n++
		}
	}
	return n
}

// send POSTs the dispatch to the worker. On any failure (transport error
// or non-202) the lease is unassigned for retry and the worker's breaker
// advances; on success the failure streak resets.
func (c *Coordinator) send(addr string, l *lease) bool {
	resp, err := c.client.Post(addr+"/worker/run", "application/json", bytes.NewReader(l.req))
	ok := err == nil && resp.StatusCode == http.StatusAccepted
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[l.worker]
	if ok {
		if w != nil {
			w.consecFails = 0
		}
		c.dispatched++
		return true
	}
	if w != nil {
		delete(w.leases, l.id)
		w.consecFails++
		if w.consecFails >= c.opts.BreakerThreshold {
			w.breakerUntil = time.Now().Add(c.opts.BreakerCooldown)
		}
	}
	l.prev, l.worker = l.worker, ""
	c.dispatchRetries++
	return false
}

// dropLease removes a lease when its owning Execute returns. The worker
// lease-set cleanup runs even when the lease already left the table: a
// completion that raced a re-dispatch removes the table entry, but the
// re-dispatch may have re-booked the lease onto a worker afterwards —
// without this sweep that set entry would leak a phantom in-flight slot
// forever.
func (c *Coordinator) dropLease(l *lease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.leases, l.id)
	if l.worker != "" {
		if w := c.workers[l.worker]; w != nil {
			delete(w.leases, l.id)
		}
	}
	c.signalCapLocked()
}

// signalCapLocked wakes one capacity waiter (non-blocking; the waiters
// also poll).
func (c *Coordinator) signalCapLocked() {
	select {
	case c.capSignal <- struct{}{}:
	default:
	}
}

// janitor expires leases whose deadline passed — the owning worker
// stopped heartbeating (crash, partition) or ran past its attempt cap
// (straggler) — and signals their Execute goroutines to re-dispatch.
func (c *Coordinator) janitor() {
	defer c.janitorWG.Done()
	tick := c.opts.LeaseTTL / 4
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		now := time.Now()
		expired := false
		for id, l := range c.leases {
			if l.worker == "" || now.Before(l.deadline) {
				continue
			}
			if w := c.workers[l.worker]; w != nil {
				delete(w.leases, id)
			}
			l.prev, l.worker = l.worker, ""
			c.redispatched++
			expired = true
			select {
			case l.redispatch <- struct{}{}:
			default:
			}
		}
		if expired {
			c.signalCapLocked()
		}
		c.mu.Unlock()
	}
}

// rememberLocked records a committed lease's result fingerprint for
// late-duplicate divergence checks, evicting the oldest past the cap.
func (c *Coordinator) rememberLocked(leaseID string, h uint64) {
	if len(c.recentOrder) >= recentDoneCap {
		old := c.recentOrder[0]
		c.recentOrder = c.recentOrder[1:]
		delete(c.recentDone, old)
	}
	c.recentDone[leaseID] = h
	c.recentOrder = append(c.recentOrder, leaseID)
}

// Register mounts the coordinator's internal protocol under /cluster/ on
// mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/register", c.handleRegister)
	mux.HandleFunc("/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/cluster/complete", c.handleComplete)
	mux.HandleFunc("/cluster/release", c.handleRelease)
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.ID == "" || req.Addr == "" || req.Capacity <= 0 {
		http.Error(w, "register needs id, addr and positive capacity", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	now := time.Now()
	if old, ok := c.workers[req.ID]; ok {
		// A re-registering id is a restarted process: whatever it was
		// running is gone. Expire its leases immediately instead of
		// waiting out their TTLs.
		for id := range old.leases {
			l, ok := c.leases[id]
			if !ok || l.worker != req.ID {
				continue
			}
			l.prev, l.worker = l.worker, ""
			c.redispatched++
			select {
			case l.redispatch <- struct{}{}:
			default:
			}
		}
	}
	c.workers[req.ID] = &workerState{
		id:       req.ID,
		addr:     req.Addr,
		capacity: req.Capacity,
		leases:   make(map[string]struct{}),
		lastBeat: now,
	}
	c.signalCapLocked()
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registerResponse{
		LeaseTTLMS:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.heartbeatInterval().Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.ID]
	if !ok {
		c.mu.Unlock()
		// Unknown id: the coordinator restarted (or evicted the record).
		// 404 tells the worker to re-register.
		http.Error(w, "unknown worker", http.StatusNotFound)
		return
	}
	now := time.Now()
	ws.lastBeat = now
	for _, id := range req.Leases {
		l, held := c.leases[id]
		if !held || l.worker != req.ID {
			continue
		}
		l.deadline = now.Add(c.opts.LeaseTTL)
		if !l.attemptCap.IsZero() && l.deadline.After(l.attemptCap) {
			l.deadline = l.attemptCap
		}
	}
	c.signalCapLocked() // a worker back from suspect reopens capacity
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	l, ok := c.leases[req.Lease]
	if !ok {
		// Late completion: the lease was already committed by another
		// attempt, expired past MaxAttempts, or its Execute was cancelled.
		// Harmless — but if we remember the committed result, cross-check
		// determinism: a divergent duplicate would mean retries can change
		// answers, which the whole design forbids.
		c.late++
		if h, seen := c.recentDone[req.Lease]; seen && req.Error == "" && resultHash(req.Results) != h {
			c.divergent++
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
		return
	}
	// First completion wins. Free the current owner's slot even when the
	// reporter is a previous owner (re-dispatch raced a slow success): the
	// result is deterministic either way, and the lease set removal keeps
	// slot accounting exact.
	if l.worker != "" {
		if ws := c.workers[l.worker]; ws != nil {
			delete(ws.leases, req.Lease)
		}
	}
	delete(c.leases, req.Lease)
	c.completed++
	res := leaseResult{}
	if req.Error != "" {
		res.err = errors.New(req.Error)
	} else {
		res.raw = append([]byte(nil), req.Results...)
		c.rememberLocked(req.Lease, resultHash(req.Results))
	}
	c.signalCapLocked()
	c.mu.Unlock()
	select {
	case l.done <- res:
	default:
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	for _, id := range req.Leases {
		l, ok := c.leases[id]
		if !ok || l.worker != req.ID {
			continue
		}
		if ws := c.workers[req.ID]; ws != nil {
			delete(ws.leases, id)
		}
		l.prev, l.worker = l.worker, ""
		c.returned++
		select {
		case l.redispatch <- struct{}{}:
		default:
		}
	}
	c.signalCapLocked()
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// ClusterStats implements service.ClusterReporter.
func (c *Coordinator) ClusterStats() *service.ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := &service.ClusterStats{
		JobsDispatched:   c.dispatched,
		JobsCompleted:    c.completed,
		JobsRedispatched: c.redispatched,
		JobsReturned:     c.returned,
		JobsLate:         c.late,
		JobsDivergent:    c.divergent,
		DispatchRetries:  c.dispatchRetries,
		LeasesActive:     len(c.leases),
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		state := c.stateLocked(ws, now)
		switch state {
		case stateAlive:
			st.WorkersAlive++
			st.CapacitySlots += ws.capacity
		case stateSuspect:
			st.WorkersSuspect++
			st.CapacitySlots += ws.capacity
		default:
			st.WorkersDead++
		}
		st.LeasedSlots += len(ws.leases)
		st.Workers = append(st.Workers, service.WorkerStatus{
			ID:              ws.id,
			Addr:            ws.addr,
			State:           state.String(),
			Capacity:        ws.capacity,
			InFlight:        len(ws.leases),
			ConsecFailures:  ws.consecFails,
			BreakerOpen:     now.Before(ws.breakerUntil),
			LastHeartbeatMS: now.Sub(ws.lastBeat).Milliseconds(),
		})
	}
	return st
}
