package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// ID names the worker to the coordinator; empty generates a random id.
	// Re-using an id after a restart expires the old incarnation's leases
	// immediately.
	ID string
	// Coordinator is the coordinator's base URL (required), e.g.
	// http://host:8090.
	Coordinator string
	// Advertise is the base URL the coordinator should dispatch to
	// (required) — this worker's own listener as the coordinator reaches it.
	Advertise string
	// Workers bounds simulation parallelism (the local budget); <= 0 means
	// GOMAXPROCS.
	Workers int
	// Capacity is the slot count advertised to the coordinator; 0 means
	// the budget cap. Advertising more than the budget overcommits: the
	// coordinator pipelines extra dispatches that queue on the local
	// budget (accepted but unstarted — exactly what a drain hands back),
	// while the budget stays the authoritative backpressure.
	Capacity int
	// SimShards is applied to jobs that did not pin a kernel, exactly as
	// service.Options.SimShards in single-process mode.
	SimShards int
	// JobTimeout bounds one job's simulation; 0 means none. A timed-out
	// job is abandoned silently: the coordinator's lease expiry (attempt
	// cap) is the authoritative straggler policy, and reporting a local
	// timeout as failure would turn a slow worker into a wrong answer.
	JobTimeout time.Duration
	// Heartbeat overrides the coordinator-advertised heartbeat interval
	// (tests); 0 uses what registration returns.
	Heartbeat time.Duration
	// HTTP overrides the control-plane client.
	HTTP *http.Client
	// JobDelay injects a fixed delay after a job acquires its budget slots
	// and before it simulates — the chaos harness's slow-worker knob.
	JobDelay time.Duration
}

// wlease tracks one accepted dispatch on the worker side.
type wlease struct {
	id      string
	started bool
	cancel  context.CancelFunc
}

// Worker accepts leased jobs from a coordinator, runs them on a local
// budget via the same service.Local execution core as single-process mode
// (bit-identical results by construction), and reports completions. It
// registers itself with exponential backoff, heartbeats its held leases,
// and on Drain hands unstarted leases back while finishing in-flight ones.
type Worker struct {
	opts   WorkerOptions
	id     string
	budget *sweep.Budget
	client *http.Client

	ctx      context.Context
	cancel   context.CancelFunc
	draining atomic.Bool

	mu         sync.Mutex
	leases     map[string]*wlease
	hbInterval time.Duration

	jobs sync.WaitGroup

	jobsAccepted atomic.Uint64
	jobsRun      atomic.Uint64
	jobsFailed   atomic.Uint64
}

// NewWorker builds a worker; Start launches its control loop.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" || opts.Advertise == "" {
		return nil, errors.New("cluster: worker needs Coordinator and Advertise URLs")
	}
	id := opts.ID
	if id == "" {
		var b [4]byte
		_, _ = rand.Read(b[:])
		id = "w-" + hex.EncodeToString(b[:])
	}
	client := opts.HTTP
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = time.Second // placeholder until registration advertises one
	}
	return &Worker{
		opts:       opts,
		id:         id,
		budget:     sweep.NewBudget(opts.Workers),
		client:     client,
		leases:     make(map[string]*wlease),
		hbInterval: hb,
	}, nil
}

// ID reports the worker's identity.
func (w *Worker) ID() string { return w.id }

// Start launches the register/heartbeat control loop. The loop (and every
// accepted job) stops when ctx is cancelled — an abrupt stop, as a crash
// would be; call Drain first for a graceful one.
func (w *Worker) Start(ctx context.Context) {
	w.ctx, w.cancel = context.WithCancel(ctx)
	go w.controlLoop()
}

// Stop abandons everything immediately (the chaos tests' kill -9).
func (w *Worker) Stop() {
	if w.cancel != nil {
		w.cancel()
	}
}

// controlLoop registers (with exponential backoff on a refusing or absent
// coordinator), then heartbeats; heartbeat 404 means the coordinator
// forgot us (restart) and triggers immediate re-registration, repeated
// heartbeat transport failures fall back to the registration backoff.
func (w *Worker) controlLoop() {
	const (
		backoffStart = time.Second
		backoffMax   = 30 * time.Second
	)
	backoff := backoffStart
	registered := false
	hbFails := 0
	for {
		if !registered {
			if err := w.register(); err != nil {
				select {
				case <-w.ctx.Done():
					return
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > backoffMax {
					backoff = backoffMax
				}
				continue
			}
			registered = true
			backoff = backoffStart
			hbFails = 0
		}
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(w.heartbeatInterval()):
		}
		switch err := w.heartbeat(); {
		case err == nil:
			hbFails = 0
		case errors.Is(err, errUnknownWorker):
			registered = false
		default:
			if hbFails++; hbFails >= 3 {
				registered = false
			}
		}
	}
}

func (w *Worker) heartbeatInterval() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hbInterval
}

func (w *Worker) register() error {
	capacity := w.opts.Capacity
	if capacity <= 0 {
		capacity = w.budget.Cap()
	}
	body, _ := json.Marshal(registerRequest{
		ID:       w.id,
		Addr:     w.opts.Advertise,
		Capacity: capacity,
	})
	resp, err := w.post("/cluster/register", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: register: %s", resp.Status)
	}
	var rr registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return fmt.Errorf("cluster: register response: %w", err)
	}
	if w.opts.Heartbeat <= 0 && rr.HeartbeatMS > 0 {
		w.mu.Lock()
		w.hbInterval = time.Duration(rr.HeartbeatMS) * time.Millisecond
		w.mu.Unlock()
	}
	return nil
}

var errUnknownWorker = errors.New("cluster: coordinator does not know this worker")

func (w *Worker) heartbeat() error {
	w.mu.Lock()
	leases := make([]string, 0, len(w.leases))
	for id := range w.leases {
		leases = append(leases, id)
	}
	w.mu.Unlock()
	body, _ := json.Marshal(heartbeatRequest{ID: w.id, Leases: leases})
	resp, err := w.post("/cluster/heartbeat", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusNotFound:
		return errUnknownWorker
	default:
		return fmt.Errorf("cluster: heartbeat: %s", resp.Status)
	}
}

func (w *Worker) post(path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client.Do(req)
}

// Register mounts the worker's dispatch surface on mux: the coordinator's
// /worker/run target plus liveness/readiness for process supervisors.
func (w *Worker) Register(mux *http.ServeMux) {
	mux.HandleFunc("/worker/run", w.handleRun)
	ok := func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"status":"ok"}` + "\n"))
	}
	mux.HandleFunc("/healthz", ok)
	mux.HandleFunc("/worker/healthz", ok)
	ready := func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		if w.draining.Load() {
			rw.Header().Set("Retry-After", "1")
			rw.WriteHeader(http.StatusServiceUnavailable)
			rw.Write([]byte(`{"status":"draining"}` + "\n"))
			return
		}
		rw.Write([]byte(`{"status":"ready"}` + "\n"))
	}
	mux.HandleFunc("/readyz", ready)
	mux.HandleFunc("/worker/readyz", ready)
}

// Handler returns a mux with the worker surface mounted.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	w.Register(mux)
	return mux
}

// handleRun accepts one leased job: validate, book the lease, run it
// asynchronously, 202. Draining workers refuse (503 + Retry-After) so the
// coordinator's breaker steers dispatches elsewhere during shutdown.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, "worker draining", http.StatusServiceUnavailable)
		return
	}
	var req dispatchRequest
	if !decodeInto(rw, r, &req) {
		return
	}
	job, err := w.decodeJob(req.Job)
	if err != nil {
		http.Error(rw, "bad job: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithCancel(w.ctx)
	l := &wlease{id: req.Lease, cancel: cancel}
	w.mu.Lock()
	if _, dup := w.leases[req.Lease]; dup {
		w.mu.Unlock()
		cancel()
		rw.WriteHeader(http.StatusAccepted) // idempotent re-dispatch
		return
	}
	w.leases[req.Lease] = l
	w.mu.Unlock()
	w.jobsAccepted.Add(1)
	w.jobs.Add(1)
	go w.runJob(ctx, l, job, req.Key)
	rw.WriteHeader(http.StatusAccepted)
}

// decodeJob revalidates a wire job through the same gate single-process
// requests pass (service.Job.Normalized).
func (w *Worker) decodeJob(wj wireJob) (service.Job, error) {
	scheme, err := system.ParseScheme(wj.Scheme)
	if err != nil {
		return service.Job{}, err
	}
	scale, err := workload.ParseScale(wj.Scale)
	if err != nil {
		return service.Job{}, err
	}
	var cfg *system.Config
	if len(wj.Config) > 0 && string(wj.Config) != "null" {
		cfg = new(system.Config)
		if err := json.Unmarshal(wj.Config, cfg); err != nil {
			return service.Job{}, fmt.Errorf("config: %w", err)
		}
	}
	job := service.Job{Workload: wj.Workload, Scheme: scheme, Scale: scale, Config: cfg}
	return job.Normalized()
}

// jobObserver marks the lease started (the drain boundary: started jobs
// finish, unstarted ones hand back) and applies the chaos delay. It fires
// between budget acquisition and machine construction inside
// service.Local.Execute.
type jobObserver struct {
	w *Worker
	l *wlease
}

func (o *jobObserver) JobStarted() {
	o.w.mu.Lock()
	o.l.started = true
	o.w.mu.Unlock()
	if d := o.w.opts.JobDelay; d > 0 {
		time.Sleep(d)
	}
}

func (o *jobObserver) JobCompleted(sim.SchedCounters) {}

// runJob executes one lease through the shared execution core and reports
// the outcome. Context-cancellation errors are not reported: they mean
// this worker is dying or drained the lease away, and the coordinator's
// lease machinery — not a completion — decides what happens next.
func (w *Worker) runJob(ctx context.Context, l *wlease, job service.Job, key string) {
	defer w.jobs.Done()
	defer l.cancel()
	if w.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.opts.JobTimeout)
		defer cancel()
	}
	exec := &service.Local{
		Budget:    w.budget,
		SimShards: w.opts.SimShards,
		Observer:  &jobObserver{w: w, l: l},
	}
	res, err := exec.Execute(ctx, job)

	w.mu.Lock()
	_, tracked := w.leases[l.id]
	delete(w.leases, l.id)
	w.mu.Unlock()
	if !tracked {
		return // drained away: the coordinator already re-dispatched it
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return // abandoned, not failed: let the lease expire and re-dispatch
	}
	cr := completeRequest{ID: w.id, Lease: l.id, Key: key}
	if err != nil {
		w.jobsFailed.Add(1)
		cr.Error = err.Error()
	} else {
		w.jobsRun.Add(1)
		raw, merr := json.Marshal(res)
		if merr != nil {
			cr.Error = fmt.Sprintf("cluster: encoding result: %v", merr)
		} else {
			cr.Results = raw
		}
	}
	w.complete(cr)
}

// complete reports a finished job, retrying briefly: a lost completion
// only costs a redundant re-simulation (the lease expires and the job
// re-runs deterministically), but the retry makes that rare.
func (w *Worker) complete(cr completeRequest) {
	body, _ := json.Marshal(cr)
	for attempt := 0; ; attempt++ {
		resp, err := w.post("/cluster/complete", body)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if attempt >= 2 || w.ctx.Err() != nil {
			return
		}
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// Drain begins graceful shutdown: refuse new dispatches, cancel and hand
// back every lease whose simulation has not started, then wait (bounded
// by ctx) for in-flight simulations to finish and report. After Drain the
// worker still heartbeats until its context is cancelled, so completions
// sent during the drain window stay fresh at the coordinator.
func (w *Worker) Drain(ctx context.Context) {
	w.draining.Store(true)
	w.mu.Lock()
	var handback []string
	for id, l := range w.leases {
		if l.started {
			continue
		}
		l.cancel()
		delete(w.leases, id)
		handback = append(handback, id)
	}
	w.mu.Unlock()
	if len(handback) > 0 {
		body, _ := json.Marshal(releaseRequest{ID: w.id, Leases: handback})
		if resp, err := w.post("/cluster/release", body); err == nil {
			resp.Body.Close()
		}
		// Best effort: if the release is lost, the leases expire anyway.
	}
	done := make(chan struct{})
	go func() {
		w.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}
