// Chaos tests: scripted worker failures against an in-process
// coordinator/worker fleet — abrupt kill mid-sweep, heartbeat blackholes,
// slow-worker stragglers, graceful drains and total fleet loss — asserting
// the contract the design pins: sweeps complete bit-identically to
// single-process runs, retries never produce divergent results, and a
// degraded coordinator keeps serving cached traffic.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/system"
	"repro/internal/workload"
)

// testCluster is a coordinator with its full service surface on an
// httptest listener.
type testCluster struct {
	coord *Coordinator
	svc   *service.Server
	front *httptest.Server
}

func newTestCluster(t *testing.T, copts CoordinatorOptions, sopts service.Options) *testCluster {
	t.Helper()
	if copts.LeaseTTL <= 0 {
		copts.LeaseTTL = 250 * time.Millisecond
	}
	coord := NewCoordinator(copts)
	sopts.Executor = coord
	svc := service.New(sopts)
	mux := http.NewServeMux()
	svc.Register(mux)
	coord.Register(mux)
	front := httptest.NewServer(mux)
	t.Cleanup(func() {
		front.Close()
		coord.Close()
	})
	return &testCluster{coord: coord, svc: svc, front: front}
}

// testWorker is one worker process stand-in: its own listener and
// lifecycle context, killable without ceremony.
type testWorker struct {
	w      *Worker
	srv    *httptest.Server
	cancel context.CancelFunc
}

func newTestWorker(t *testing.T, coordURL string, opts WorkerOptions) *testWorker {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	opts.Coordinator = coordURL
	opts.Advertise = srv.URL
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Register(mux)
	ctx, cancel := context.WithCancel(context.Background())
	w.Start(ctx)
	tw := &testWorker{w: w, srv: srv, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		srv.Close()
	})
	return tw
}

// kill is the chaos harness's kill -9: the worker's goroutines die
// mid-job, its listener drops every connection, nothing drains and nothing
// says goodbye.
func (tw *testWorker) kill() {
	tw.cancel()
	tw.srv.CloseClientConnections()
	tw.srv.Close()
}

// waitFor polls until cond or the deadline; chaos timings are generous so
// slow CI only makes the tests slower, not flakier.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitAlive(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d alive workers", n), func() bool {
		return c.ClusterStats().WorkersAlive >= n
	})
}

func postBody(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func TestClusterRunMatchesLocal(t *testing.T) {
	tc := newTestCluster(t, CoordinatorOptions{}, service.Options{})
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w1", Workers: 2})
	waitAlive(t, tc.coord, 1)

	client := service.NewClient(tc.front.URL)
	got, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}

	sys, err := system.New(system.DefaultConfig(system.SchemeARFtid), "mac", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Results.Cycles != ref.Cycles || got.Results.Instructions != ref.Instructions {
		t.Fatalf("cluster run diverged from direct run: cycles %d vs %d", got.Results.Cycles, ref.Cycles)
	}

	// Cluster-wide singleflight: the same key again is a cache hit, no
	// second dispatch.
	before := tc.coord.ClusterStats().JobsDispatched
	again, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("second identical run must be a cache hit")
	}
	if after := tc.coord.ClusterStats().JobsDispatched; after != before {
		t.Fatalf("cache hit dispatched a job: %d -> %d", before, after)
	}
	if err := client.Readyz(context.Background()); err != nil {
		t.Fatalf("readyz with a live worker: %v", err)
	}
}

func TestWorkerKillMidSweepRedispatch(t *testing.T) {
	// Reference: the same sweep on a plain single-process server.
	refSvc := service.New(service.Options{Workers: 4})
	refSrv := httptest.NewServer(refSvc.Handler())
	defer refSrv.Close()
	const sweepReq = `{"study":"flowtable","scale":"tiny"}`
	refCode, _, refBody := postBody(t, refSrv.URL+"/sweep", sweepReq)
	if refCode != http.StatusOK {
		t.Fatalf("reference sweep: %d %s", refCode, refBody)
	}

	tc := newTestCluster(t, CoordinatorOptions{LeaseTTL: 250 * time.Millisecond}, service.Options{})
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w1", Workers: 2, JobDelay: 100 * time.Millisecond})
	w2 := newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w2", Workers: 2, JobDelay: 100 * time.Millisecond})
	waitAlive(t, tc.coord, 2)

	type sweepOut struct {
		code int
		body []byte
	}
	done := make(chan sweepOut, 1)
	go func() {
		code, _, body := postBody(t, tc.front.URL+"/sweep", sweepReq)
		done <- sweepOut{code, body}
	}()

	// Kill w2 once it has ACCEPTED a lease (worker-side state, not the
	// coordinator's booking — a booked-but-undelivered dispatch fails at
	// send and retries, which is not the lease-expiry path this test
	// pins). The JobDelay window guarantees the accepted job is still
	// running when the kill lands.
	waitFor(t, "w2 to accept a lease", func() bool {
		w2.w.mu.Lock()
		defer w2.w.mu.Unlock()
		return len(w2.w.leases) > 0
	})
	w2.kill()

	out := <-done
	if out.code != http.StatusOK {
		t.Fatalf("sweep after worker kill: %d %s", out.code, out.body)
	}
	if !bytes.Equal(out.body, refBody) {
		t.Fatalf("sweep result diverged from single-process run after worker kill:\ncluster: %s\nlocal:   %s", out.body, refBody)
	}
	st := tc.coord.ClusterStats()
	if st.JobsRedispatched == 0 {
		t.Fatal("killing a lease-holding worker must re-dispatch its leases")
	}
	if st.JobsDivergent != 0 {
		t.Fatalf("jobs_divergent = %d, want 0 — retries changed an answer", st.JobsDivergent)
	}
}

// blackholeTransport drops heartbeat traffic while armed: the worker is
// healthy and simulating, but the coordinator cannot know it.
type blackholeTransport struct {
	drop atomic.Bool
}

func (b *blackholeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if b.drop.Load() && strings.HasSuffix(req.URL.Path, "/cluster/heartbeat") {
		return nil, errors.New("blackholed")
	}
	return http.DefaultTransport.RoundTrip(req)
}

func TestHeartbeatBlackholeRedispatchesWithoutDivergence(t *testing.T) {
	bh := &blackholeTransport{}
	tc := newTestCluster(t, CoordinatorOptions{
		LeaseTTL:  200 * time.Millisecond,
		DeadAfter: 10 * time.Second, // keep the lone worker out of "dead" during the blackhole
	}, service.Options{})
	newTestWorker(t, tc.front.URL, WorkerOptions{
		ID: "w1", Workers: 2,
		JobDelay: 700 * time.Millisecond,
		HTTP:     &http.Client{Transport: bh, Timeout: 2 * time.Second},
	})
	waitAlive(t, tc.coord, 1)

	client := service.NewClient(tc.front.URL)
	type runOut struct {
		resp *service.RunResponse
		err  error
	}
	done := make(chan runOut, 1)
	go func() {
		r, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
		done <- runOut{r, err}
	}()
	waitFor(t, "job dispatch", func() bool { return tc.coord.ClusterStats().LeasesActive > 0 })
	bh.drop.Store(true)

	// The lease must expire with no renewing heartbeats even though the
	// worker is mid-simulation.
	waitFor(t, "lease expiry re-dispatch", func() bool {
		return tc.coord.ClusterStats().JobsRedispatched > 0
	})
	bh.drop.Store(false)

	out := <-done
	if out.err != nil {
		t.Fatalf("run through heartbeat blackhole: %v", out.err)
	}
	sys, _ := system.New(system.DefaultConfig(system.SchemeARFtid), "mac", workload.ScaleTiny)
	ref, _ := sys.Run()
	if out.resp.Results.Cycles != ref.Cycles {
		t.Fatalf("blackholed run diverged: cycles %d vs %d", out.resp.Results.Cycles, ref.Cycles)
	}
	if st := tc.coord.ClusterStats(); st.JobsDivergent != 0 {
		t.Fatalf("jobs_divergent = %d, want 0", st.JobsDivergent)
	}
}

func TestSlowWorkerStragglerSpeculativeRetry(t *testing.T) {
	tc := newTestCluster(t, CoordinatorOptions{
		LeaseTTL:       200 * time.Millisecond,
		AttemptTimeout: 300 * time.Millisecond,
	}, service.Options{})
	// "a" wins the tie-break, so the job lands on the straggler first.
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "a-slow", Workers: 2, JobDelay: 5 * time.Second})
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "b-fast", Workers: 2})
	waitAlive(t, tc.coord, 2)

	client := service.NewClient(tc.front.URL)
	start := time.Now()
	resp, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("run waited out the straggler (%v); speculative retry never happened", elapsed)
	}
	sys, _ := system.New(system.DefaultConfig(system.SchemeARFtid), "mac", workload.ScaleTiny)
	ref, _ := sys.Run()
	if resp.Results.Cycles != ref.Cycles {
		t.Fatalf("speculative-retry result diverged: cycles %d vs %d", resp.Results.Cycles, ref.Cycles)
	}
	st := tc.coord.ClusterStats()
	if st.JobsRedispatched == 0 {
		t.Fatal("straggler's lease must expire at the attempt cap and re-dispatch")
	}
	if st.JobsDivergent != 0 {
		t.Fatalf("jobs_divergent = %d, want 0", st.JobsDivergent)
	}
}

func TestZeroWorkersDegradesGracefully(t *testing.T) {
	tc := newTestCluster(t, CoordinatorOptions{
		LeaseTTL:  150 * time.Millisecond,
		DeadAfter: 450 * time.Millisecond,
	}, service.Options{})
	const runReq = `{"workload":"mac","scheme":"ARF-tid","scale":"tiny"}`

	// Before any worker exists: new-simulation traffic sheds with a retry
	// hint; liveness stays green, readiness red.
	code, hdr, _ := postBody(t, tc.front.URL+"/run", runReq)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("empty fleet /run: code=%d Retry-After=%q, want 503 with hint", code, hdr.Get("Retry-After"))
	}
	if resp, err := http.Get(tc.front.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness must stay green with zero workers: %v %v", err, resp)
	}
	if resp, err := http.Get(tc.front.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness must be 503 with zero workers: %v %v", err, resp)
	}

	// A worker joins; the job computes and caches.
	w1 := newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w1", Workers: 2})
	waitAlive(t, tc.coord, 1)
	waitFor(t, "readyz to recover", func() bool {
		resp, err := http.Get(tc.front.URL + "/readyz")
		return err == nil && resp.StatusCode == http.StatusOK
	})
	code, _, _ = postBody(t, tc.front.URL+"/run", runReq)
	if code != http.StatusOK {
		t.Fatalf("run with live worker: %d", code)
	}

	// The fleet dies. Cached results keep serving; only new simulations shed.
	w1.kill()
	waitFor(t, "fleet to be declared dead", func() bool {
		st := tc.coord.ClusterStats()
		return st.WorkersAlive == 0 && st.WorkersSuspect == 0
	})
	code, _, body := postBody(t, tc.front.URL+"/run", runReq)
	if code != http.StatusOK || !strings.Contains(string(body), `"cache_hit": true`) {
		t.Fatalf("cached run during fleet loss: code=%d body=%s", code, body)
	}
	code, hdr, _ = postBody(t, tc.front.URL+"/run", `{"workload":"reduce","scheme":"HMC","scale":"tiny"}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("new simulation during fleet loss: code=%d, want 503+Retry-After", code)
	}

	// A replacement worker restores full service.
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w2", Workers: 2})
	waitAlive(t, tc.coord, 1)
	code, _, _ = postBody(t, tc.front.URL+"/run", `{"workload":"reduce","scheme":"HMC","scale":"tiny"}`)
	if code != http.StatusOK {
		t.Fatalf("run after fleet recovery: %d", code)
	}
}

func TestWorkerDrainHandsBackUnstartedLeases(t *testing.T) {
	tc := newTestCluster(t, CoordinatorOptions{LeaseTTL: 300 * time.Millisecond}, service.Options{})
	// One budget slot but two advertised: the coordinator pipelines a
	// second dispatch that queues on the worker's budget — accepted but
	// unstarted, the exact state a drain must hand back.
	w1 := newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w1", Workers: 1, Capacity: 2, JobDelay: 400 * time.Millisecond})
	waitAlive(t, tc.coord, 1)

	client := service.NewClient(tc.front.URL)
	type runOut struct {
		resp *service.RunResponse
		err  error
	}
	// Job A takes the only budget slot and starts simulating (JobDelay
	// holds it); job B queues behind it on the worker.
	outA := make(chan runOut, 1)
	go func() {
		r, err := client.Run(context.Background(), service.RunRequest{Workload: "mac", Scheme: "ARF-tid", Scale: "tiny"})
		outA <- runOut{r, err}
	}()
	waitFor(t, "job A to start", func() bool {
		for _, w := range tc.coord.ClusterStats().Workers {
			if w.ID == "w1" && w.InFlight > 0 {
				return true
			}
		}
		return false
	})
	outB := make(chan runOut, 1)
	go func() {
		r, err := client.Run(context.Background(), service.RunRequest{Workload: "reduce", Scheme: "ARF-tid", Scale: "tiny"})
		outB <- runOut{r, err}
	}()
	// Wait for worker-side acceptance, not just coordinator-side booking:
	// the drain's 503 must not race the dispatch POST.
	waitFor(t, "job B to be accepted by w1", func() bool {
		w1.w.mu.Lock()
		defer w1.w.mu.Unlock()
		return len(w1.w.leases) >= 2
	})

	// The relief worker joins, then w1 drains: A finishes on w1, B's
	// unstarted lease hands back and re-dispatches to w2.
	newTestWorker(t, tc.front.URL, WorkerOptions{ID: "w2", Workers: 2})
	waitAlive(t, tc.coord, 2)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w1.w.Drain(drainCtx)

	a := <-outA
	if a.err != nil {
		t.Fatalf("in-flight job during drain: %v", a.err)
	}
	b := <-outB
	if b.err != nil {
		t.Fatalf("handed-back job: %v", b.err)
	}
	st := tc.coord.ClusterStats()
	if st.JobsReturned == 0 {
		t.Fatal("drain must hand unstarted leases back (jobs_returned)")
	}
	if st.JobsDivergent != 0 {
		t.Fatalf("jobs_divergent = %d, want 0", st.JobsDivergent)
	}

	// A draining worker refuses new dispatches.
	resp, err := http.Post(w1.srv.URL+"/worker/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker accepted a dispatch: %d", resp.StatusCode)
	}
}
