// Package cluster turns arserved into a fault-tolerant coordinator/worker
// fleet. A Coordinator owns the HTTP surface and the durable result store
// (it plugs into internal/service as the Executor), dispatching simulation
// jobs to worker processes over a small HTTP/JSON internal protocol; a
// Worker registers with the coordinator, runs jobs under its local budget,
// and reports results back.
//
// Fault tolerance rests on three mechanisms (DESIGN.md "Cluster &
// supervision"):
//
//   - Job leases. Every dispatched job carries a lease with a deadline;
//     worker heartbeats renew the leases they hold. The coordinator's
//     janitor re-dispatches expired leases to other workers. Because the
//     simulator is deterministic and jobs are content-addressed, a
//     re-dispatch can never produce a divergent result — the coordinator
//     cross-checks duplicate completions and counts jobs_divergent (pinned
//     to zero by the chaos tests).
//
//   - Worker supervision. Heartbeat recency drives a per-worker
//     alive → suspect → dead state machine; dispatch failures feed a
//     consecutive-failure circuit breaker; dispatch picks the live worker
//     with the most free advertised slots.
//
//   - Graceful degradation. With zero live workers the coordinator keeps
//     serving cached results and sheds only new-simulation traffic
//     (Executor.Ready → /readyz 503 + Retry-After). Workers drain on
//     SIGTERM: unstarted leases are handed back for immediate re-dispatch,
//     in-flight simulations finish and report.
//
// All protocol requests are POSTed JSON under /cluster/* (coordinator
// side) and /worker/* (worker side). The protocol is internal: both ends
// are the same binary, so there is no version negotiation — a mismatched
// field fails validation loudly.
package cluster

import (
	"encoding/json"
	"hash/fnv"
)

// registerRequest announces a worker to the coordinator. Re-registering an
// existing id replaces its record and expires any leases the previous
// incarnation held (a restarted worker lost its in-flight work).
type registerRequest struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`     // base URL for dispatches, e.g. http://host:port
	Capacity int    `json:"capacity"` // advertised budget slots (GOMAXPROCS-derived)
}

// registerResponse tells the worker the coordinator's timing contract.
type registerResponse struct {
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// heartbeatRequest proves liveness and renews the listed leases.
type heartbeatRequest struct {
	ID     string   `json:"id"`
	Leases []string `json:"leases"`
}

// completeRequest reports one finished job. Either Results (raw
// system.Results JSON — kept opaque so the coordinator can hash and return
// it without a decode/re-encode round trip) or Error is set.
type completeRequest struct {
	ID      string          `json:"id"`
	Lease   string          `json:"lease"`
	Key     string          `json:"key"`
	Results json.RawMessage `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// releaseRequest hands unstarted leases back during a worker drain.
type releaseRequest struct {
	ID     string   `json:"id"`
	Leases []string `json:"leases"`
}

// dispatchRequest carries one leased job to a worker.
type dispatchRequest struct {
	Lease string  `json:"lease"`
	Key   string  `json:"key"`
	Job   wireJob `json:"job"`
}

// wireJob is service.Job flattened for the wire: enums travel as their
// canonical strings and the config as its full JSON form, so the worker
// revalidates everything through Job.Normalized before running.
type wireJob struct {
	Workload string          `json:"workload"`
	Scheme   string          `json:"scheme"`
	Scale    string          `json:"scale"`
	Config   json.RawMessage `json:"config"`
}

// resultHash fingerprints a completion's result bytes for divergence
// detection. Workers marshal system.Results identically (deterministic
// struct order), so two correct executions of one job hash equal.
func resultHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
